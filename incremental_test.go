package ralin

// Op-by-op incremental replay of the committed scenario corpus: every corpus
// entry is re-grown one operation at a time through core.CheckRAExtend over a
// shared warm session, and the verdict of EVERY prefix is compared against a
// from-scratch check of a clone of that prefix. This is the acceptance gate
// of the incremental checker — byte-identical verdicts along the whole
// growth curve, certificate replays or not. The CI workflow runs this test
// under the race detector.

import (
	"testing"

	"ralin/internal/core"
	"ralin/internal/search"
)

// corpusPrefixBuckets groups the entry history's direct visibility edges by
// the step at which both endpoints exist (the larger insertion rank) — the
// order a live monitor would have observed them.
func corpusPrefixBuckets(t *testing.T, h *core.History) [][]core.VisEdge {
	t.Helper()
	buckets := make([][]core.VisEdge, h.Len())
	h.DirectVisEdges(func(from, to uint64) {
		rf, okf := h.RankOf(from)
		rt, okt := h.RankOf(to)
		if !okf || !okt {
			t.Fatalf("edge endpoint missing from history (%d -> %d)", from, to)
		}
		k := rf
		if rt > k {
			k = rt
		}
		buckets[k] = append(buckets[k], core.VisEdge{From: from, To: to})
	})
	return buckets
}

// TestScenarioCorpusIncrementalReplay replays every corpus entry through the
// incremental checker and asserts from-scratch verdict parity at every
// prefix, plus the recorded corpus verdict for the full history.
func TestScenarioCorpusIncrementalReplay(t *testing.T) {
	entries, paths := loadCorpus(t)
	sess := search.NewSession()
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		opts := plan.Options
		opts.Strategies = nil // force the search, so certificates matter
		opts.Exhaustive = true
		opts.Engine = core.EnginePruned
		opts.Parallelism = 1
		opts.DebugMemo = true

		buckets := corpusPrefixBuckets(t, h)
		g := core.NewHistory()
		var last core.Result
		replayed := 0
		for k := 0; k < h.Len(); k++ {
			l := h.LabelAt(k)
			if err := g.Add(l); err != nil {
				t.Fatalf("%s: replaying op %d: %v", paths[i], k, err)
			}
			for _, edge := range buckets[k] {
				if err := g.AddVis(edge.From, edge.To); err != nil {
					t.Fatalf("%s: replaying edges of op %d: %v", paths[i], k, err)
				}
			}
			incOpts := opts
			incOpts.Session = sess
			res := core.CheckRAExtend(g, plan.Spec, []*core.Label{l}, incOpts)
			fresh := core.CheckRA(g.Clone(), plan.Spec, opts)
			if res.Verdict != fresh.Verdict || res.OK != fresh.OK || res.Complete != fresh.Complete {
				t.Fatalf("%s: prefix %d/%d: incremental verdict %v (OK=%v, replayed=%v) diverges from from-scratch %v (OK=%v)",
					paths[i], k+1, h.Len(), res.Verdict, res.OK, res.WitnessReplayed, fresh.Verdict, fresh.OK)
			}
			if res.WitnessReplayed {
				replayed++
			}
			last = res
		}
		if last.OK != e.RALinearizable {
			t.Errorf("%s: final incremental verdict %v does not match corpus record %v", paths[i], last.OK, e.RALinearizable)
		}
		if h.Len() > 1 && replayed == 0 {
			t.Errorf("%s: no prefix replayed its certificate over %d ops — the incremental path never engaged", paths[i], h.Len())
		}
	}
}
