module ralin

go 1.24
