// Shopping cart: the Section 3.3 client-reasoning exercise on a realistic
// workload. A shopping cart is an OR-Set replicated at two data centres; one
// session adds and then removes an item while another session concurrently
// re-adds it. The paper's post-condition "if the first session still sees the
// item, so does the second" (a ∈ X ⇒ a ∈ Y) is verified over every possible
// delivery schedule, and every schedule's history is checked
// RA-linearizable — exactly the reasoning the paper carries out at the level
// of the sequential specification.
//
//	go run ./examples/shopping-cart
package main

import (
	"fmt"
	"log"

	"ralin/internal/core"
	"ralin/internal/crdt/orset"
	"ralin/internal/harness"
)

func main() {
	d := orset.Descriptor()

	// Data centre 0: customer adds "umbrella", support removes it, the
	// session then renders the cart (X = read()).
	// Data centre 1: the customer concurrently re-adds "umbrella" and renders
	// the cart (Y = read()).
	program := harness.Program{
		{
			{Method: "add", Args: []core.Value{"umbrella"}},
			{Method: "remove", Args: []core.Value{"umbrella"}},
			{Method: "read"},
		},
		{
			{Method: "add", Args: []core.Value{"umbrella"}},
			{Method: "read"},
		},
	}

	schedules, violations, nonLinearizable := 0, 0, 0
	_, err := harness.ExploreSchedules(d, program, 0, func(run harness.Run) bool {
		schedules++
		x := run.Label(0, 2).Ret.([]string)
		y := run.Label(1, 1).Ret.([]string)
		if contains(x, "umbrella") && !contains(y, "umbrella") {
			violations++
			fmt.Printf("POST-CONDITION VIOLATION under schedule %v\n", run.Schedule)
		}
		res := core.CheckRA(run.System.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			nonLinearizable++
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shopping-cart client reasoning (Section 3.3)")
	fmt.Println("  program:  dc0: add(umbrella) · remove(umbrella) · X=read")
	fmt.Println("            dc1: add(umbrella) · Y=read")
	fmt.Println("  post-condition: umbrella ∈ X ⇒ umbrella ∈ Y")
	fmt.Printf("  schedules explored:            %d\n", schedules)
	fmt.Printf("  post-condition violations:     %d\n", violations)
	fmt.Printf("  non-RA-linearizable histories: %d\n", nonLinearizable)
	if violations == 0 && nonLinearizable == 0 {
		fmt.Println("  => the invariant holds in every execution, as derived in the paper from Spec(OR-Set)")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
