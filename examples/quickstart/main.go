// Quickstart: replicate an OR-Set over three replicas, run a few concurrent
// operations, converge, and check the resulting history for
// replication-aware linearizability against Spec(OR-Set).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ralin/internal/core"
	"ralin/internal/crdt/orset"
	"ralin/internal/runtime"

	// Activates the pruned search engine for core.CheckRA.
	_ "ralin/internal/search"
)

func main() {
	// An OR-Set deployment with three replicas. The descriptor bundles the
	// implementation, its sequential specification, the query-update
	// rewriting and the linearization strategy used by the checker.
	d := orset.Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 3})

	// Replica r0 adds "milk"; replica r1 concurrently adds and then removes
	// "eggs"; replica r2 reads before receiving anything.
	must(sys.Invoke(0, "add", "milk"))
	must(sys.Invoke(1, "add", "eggs"))
	must(sys.Invoke(1, "remove", "eggs"))
	early := mustLabel(sys.Invoke(2, "read"))
	fmt.Printf("replica r2 before delivery: read() => %v\n", early.Ret)

	// Deliver every effector everywhere and read again: all replicas agree.
	if err := sys.DeliverAll(); err != nil {
		log.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		l := mustLabel(sys.Invoke(r, "read"))
		fmt.Printf("replica %s after delivery:  read() => %v\n", r, l.Ret)
	}
	fmt.Printf("replicas converged: %v\n\n", sys.Converged())

	// Check the whole history for RA-linearizability. The OR-Set linearizes
	// in execution order after its remove operations are split into
	// readIds · removeIds (the query-update rewriting of the paper).
	history := sys.History()
	result := core.CheckRA(history, d.Spec, d.CheckOptions())
	fmt.Printf("history has %d operations\n", history.Len())
	fmt.Printf("RA-linearizable: %v (witness strategy: %v)\n", result.OK, result.Strategy)
	if result.OK {
		fmt.Println("witness linearization:")
		fmt.Println(" ", core.FormatLabels(result.Linearization))
	}
}

func must(_ *core.Label, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustLabel(l *core.Label, err error) *core.Label {
	if err != nil {
		log.Fatal(err)
	}
	return l
}
