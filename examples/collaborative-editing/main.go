// Collaborative editing: the text-editing scenario that motivates the RGA in
// the paper's introduction. Two users type into the same document from two
// replicas; conflicting insertions at the same position are resolved by
// timestamps; a deletion issued concurrently with an insertion after the
// deleted character still works thanks to tombstones. The resulting history
// is checked RA-linearizable against Spec(RGA) with a timestamp-order
// witness.
//
//	go run ./examples/collaborative-editing
package main

import (
	"fmt"
	"log"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt/rga"
	"ralin/internal/runtime"

	// Activates the pruned search engine for core.CheckRA.
	_ "ralin/internal/search"
)

const (
	alice = clock.ReplicaID(0)
	bob   = clock.ReplicaID(1)
)

func main() {
	d := rga.Descriptor()
	doc := d.NewOpSystem(runtime.Config{Replicas: 2})

	// Alice types "abef".
	type insertion struct{ after, char string }
	for _, ins := range []insertion{
		{rga.Root, "a"}, {"a", "b"}, {"b", "e"}, {"e", "f"},
	} {
		invoke(doc, alice, "addAfter", ins.after, ins.char)
	}
	sync(doc)
	fmt.Printf("shared document:        %s\n", render(doc, bob))

	// Alice inserts "c" after "b" while Bob concurrently inserts "d" after
	// "b" — the introduction's running example.
	invoke(doc, alice, "addAfter", "b", "c")
	invoke(doc, bob, "addAfter", "b", "d")
	fmt.Printf("Alice sees:             %s\n", render(doc, alice))
	fmt.Printf("Bob sees:               %s\n", render(doc, bob))
	sync(doc)
	fmt.Printf("after synchronisation:  %s (both replicas agree: %v)\n", render(doc, alice), doc.Converged())

	// Bob deletes "e" while Alice concurrently inserts "x" after "e": the
	// tombstone keeps the deleted character addressable.
	invoke(doc, bob, "remove", "e")
	invoke(doc, alice, "addAfter", "e", "x")
	sync(doc)
	fmt.Printf("after delete/insert:    %s\n\n", render(doc, bob))

	// The whole editing session is RA-linearizable w.r.t. the sequential
	// list specification, using timestamp-order linearizations.
	res := core.CheckRA(doc.History(), d.Spec, d.CheckOptions())
	fmt.Printf("session RA-linearizable: %v (strategy %v, %d candidate(s) tried)\n",
		res.OK, res.Strategy, res.Tried)
}

func invoke(sys *runtime.System, replica clock.ReplicaID, method string, args ...core.Value) {
	if _, err := sys.Invoke(replica, method, args...); err != nil {
		log.Fatal(err)
	}
}

func render(sys *runtime.System, replica clock.ReplicaID) string {
	l, err := sys.Invoke(replica, "read")
	if err != nil {
		log.Fatal(err)
	}
	return strings.Join(l.Ret.([]string), "")
}

func sync(sys *runtime.System) {
	if err := sys.DeliverAll(); err != nil {
		log.Fatal(err)
	}
}
