// Composition: a small storefront built from two CRDT objects — an OR-Set of
// cart items and a PN-Counter of loyalty points — replicated at two sites.
// The example contrasts the unrestricted composition ⊗ with the shared
// timestamp generator composition ⊗ts (Section 5): the composed history
// respects the client's cross-object causality (a read of the counter that
// follows a cart update sees it), and it is RA-linearizable with respect to
// the interleaving of the two sequential specifications.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"log"

	"ralin/internal/clock"
	"ralin/internal/compose"
	"ralin/internal/core"
	"ralin/internal/crdt/orset"
	"ralin/internal/crdt/pncounter"

	// Activates the pruned search engine for core.CheckRA.
	_ "ralin/internal/search"
)

func main() {
	for _, mode := range []compose.Mode{compose.Unrestricted, compose.SharedTimestamps} {
		run(mode)
		fmt.Println()
	}
}

func run(mode compose.Mode) {
	store, err := compose.NewSystem(mode, 2,
		compose.Object{Name: "cart", Descriptor: orset.Descriptor()},
		compose.Object{Name: "points", Descriptor: pncounter.Descriptor()},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Site 0: the customer puts a book in the cart and earns a loyalty point.
	// The point increment is issued after the cart update on the same
	// replica, so it is causally after it even though the objects differ.
	mustInvoke(store, "cart", 0, "add", "book")
	mustInvoke(store, "points", 0, "inc")
	// Site 1: a concurrent session adds a pen and redeems a point.
	mustInvoke(store, "cart", 1, "add", "pen")
	mustInvoke(store, "points", 1, "dec")

	if err := store.DeliverAll(); err != nil {
		log.Fatal(err)
	}
	cart := mustInvoke(store, "cart", 1, "read")
	points := mustInvoke(store, "points", 0, "read")
	fmt.Printf("composition %s\n", mode)
	fmt.Printf("  cart after convergence:   %v\n", cart.Ret)
	fmt.Printf("  points after convergence: %v\n", points.Ret)

	// Cross-object causality is part of the composed history: the cart add at
	// site 0 is visible to the later points increment at site 0.
	h := store.History()
	labels := h.Labels()
	fmt.Printf("  cart add visible to points inc (same session): %v\n", h.Vis(labels[0].ID, labels[1].ID))

	// The composed history is RA-linearizable with respect to
	// Spec(OR-Set) ⊗ Spec(Counter).
	res := core.CheckRA(h, compose.SpecOf(store), compose.CheckOptions(store))
	fmt.Printf("  composed history RA-linearizable: %v (strategy %v)\n", res.OK, res.Strategy)
}

func mustInvoke(s *compose.System, object string, replica clock.ReplicaID, method string, args ...core.Value) *core.Label {
	l, err := s.Invoke(object, replica, method, args...)
	if err != nil {
		log.Fatal(err)
	}
	return l
}
