package scenario

import "fmt"

// PartitionHeal is the split-brain classic: an OR-Set warms up connected,
// splits into {r0} vs {r1, r2} while both sides add and remove a hot element,
// then heals and settles. Checked naively (removes as plain Set updates, as
// in Figure 5a), the concurrent add/remove races the partition manufactures
// are refuted — the anomaly uniform random generation only stumbles into.
func PartitionHeal() Scenario {
	return Scenario{
		Name:        "partition-heal",
		Description: "split-brain OR-Set add/remove races over a two-element alphabet, healed and read everywhere",
		CRDT:        "OR-Set",
		Replicas:    3,
		// The naive-Set refutation needs a cross-race over two elements
		// (Figure 5a's shape: one side orders add(b) before remove(a), the
		// other add(a) before remove(b)), so the alphabet is exactly {a, b}
		// and no hot-element skew thins either element out.
		Elems: []string{"a", "b"},
		Mode:  ModeNaive,
		Phases: []Phase{
			{Name: "warm", Ops: 2, DeliverProb: 50},
			{
				Name: "split", Ops: 12,
				Partition:   [][]int{{0}, {1, 2}},
				DeliverProb: 80,
				Heal:        true, ReadAll: true,
			},
			{Name: "settle", Ops: 2, DeliverProb: 60},
		},
	}
}

// RollingRestart pauses one PN-Counter replica at a time while the survivors
// keep counting over a lossy link, then heals. Each restarted replica
// re-enters with a stale frontier, so the history's visibility relation is a
// braid of wide antichains: the exhaustive check explores far more prefixes
// than on a uniform workload of the same size.
func RollingRestart() Scenario {
	return Scenario{
		Name:        "rolling-restart",
		Description: "PN-Counter replica churn: one replica down per phase over a lossy link",
		CRDT:        "PN-Counter",
		Replicas:    3,
		Mode:        ModeExhaustive,
		Phases: []Phase{
			{Name: "r0-down", Ops: 4, Paused: []int{0}, DeliverProb: 25, DropProb: 30},
			{Name: "r1-down", Ops: 4, Paused: []int{1}, DeliverProb: 25, DropProb: 30},
			{Name: "r2-down", Ops: 4, Paused: []int{2}, DeliverProb: 25, DropProb: 30, Heal: true, ReadAll: true},
		},
	}
}

// HotKey skews an HLC-timestamped LWW-Element-Set towards one element while
// a minority partition and per-replica clock skew stretch the timestamp
// order away from the delivery order. The designated timestamp-order
// strategy must still find witnesses (the HLC preserves the generator
// contract); the history's clustered add/remove conflicts on the hot element
// are what make its exhaustive probe expensive.
func HotKey() Scenario {
	return Scenario{
		Name:        "hot-key",
		Description: "LWW-Element-Set updates skewed onto one key under HLC clock skew and a minority partition",
		CRDT:        "LWW-Element Set",
		Replicas:    3,
		UseHLC:      true,
		ClockSkew:   4,
		Mode:        ModeDesignated,
		Phases: []Phase{
			{Name: "drift", Ops: 5, DeliverProb: 20, HotElem: "a", HotElemBias: 80},
			{
				Name: "contend", Ops: 5,
				Partition:   [][]int{{0, 1}, {2}},
				DeliverProb: 20,
				HotElem:     "a", HotElemBias: 80,
				Heal: true,
			},
			{Name: "read", Ops: 3, DeliverProb: 60},
		},
	}
}

// LongForkAttempt drives a two-replica multi-value register through a full
// partition while both sides write, then heals and reads: the merged state
// holds incomparably-versioned values, so reads return multiple values.
// Checked naively against the single-value register specification, every
// such read is a refutation — the long-fork anomaly made flesh.
func LongForkAttempt() Scenario {
	return Scenario{
		Name:        "long-fork-attempt",
		Description: "fully partitioned MV-Register writes, healed into multi-value reads",
		CRDT:        "Multi-Value Reg.",
		Replicas:    2,
		Mode:        ModeNaive,
		Phases: []Phase{
			{
				Name: "fork", Ops: 6,
				Partition:   [][]int{{0}, {1}},
				DeliverProb: 40, // attempted, but no link crosses the fork
				Heal:        true, ReadAll: true,
			},
			{Name: "observe", Ops: 3, DeliverProb: 70},
		},
	}
}

// ConvergenceStorm starves an RGA of deliveries while every replica inserts
// concurrently, then heals all at once — the convergence storm. The healed
// reads pin down a merged order over a near-total antichain of inserts, which
// is the worst case for the exhaustive search's frontier exploration.
func ConvergenceStorm() Scenario {
	return Scenario{
		Name:        "convergence-storm",
		Description: "RGA inserts with deliveries starved, then healed at once into reads",
		CRDT:        "RGA",
		Replicas:    3,
		Mode:        ModeExhaustive,
		Phases: []Phase{
			{Name: "storm", Ops: 7, DeliverProb: 5, Heal: true, ReadAll: true},
			{Name: "read", Ops: 2, DeliverProb: 70},
		},
	}
}

// All returns every named scenario in library order.
func All() []Scenario {
	return []Scenario{
		PartitionHeal(),
		RollingRestart(),
		HotKey(),
		LongForkAttempt(),
		ConvergenceStorm(),
	}
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, error) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q", name)
}

// Names lists the scenario names in library order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.Name
	}
	return out
}
