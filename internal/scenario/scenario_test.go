package scenario

import (
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
)

// TestRunDeterministic asserts the engine's central contract: the same
// scenario and seed yield a byte-identical history, run after run.
func TestRunDeterministic(t *testing.T) {
	for _, sc := range All() {
		for _, seed := range []int64{1, 42, 7919} {
			a, err := Run(sc, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sc.Name, seed, err)
			}
			b, err := Run(sc, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sc.Name, seed, err)
			}
			if a.String() != b.String() {
				t.Errorf("%s seed %d: two runs produced different histories:\n%s\n--- vs ---\n%s",
					sc.Name, seed, a, b)
			}
		}
	}
}

// TestScenarioHistoriesWellFormed sanity-checks every library scenario: it
// runs, produces a non-empty history, and its plan resolves.
func TestScenarioHistoriesWellFormed(t *testing.T) {
	for _, sc := range All() {
		h, err := Run(sc, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if h.Len() == 0 {
			t.Errorf("%s: empty history", sc.Name)
		}
		if _, err := sc.Plan(); err != nil {
			t.Errorf("%s: plan: %v", sc.Name, err)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("Lookup(%q) returned %q", name, sc.Name)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup of an unknown scenario did not fail")
	}
}

// TestGeneratorDeterministicAcrossWorkers runs each scenario through the
// harness batch pipeline sequentially and with four workers and asserts the
// verdicts are identical — batch parallelism must not leak into results.
func TestGeneratorDeterministicAcrossWorkers(t *testing.T) {
	const trials = 8
	for _, sc := range All() {
		plan, err := sc.Plan()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		opts := plan.Options
		opts.Parallelism = 1 // keep per-history node counts deterministic
		gen := Generator{Scenario: sc, Seed: 1}
		var runs []harness.HistoryCheck
		for _, workers := range []int{1, 1, 4} {
			res, err := harness.CheckGeneratedAgainst(sc.Name, plan.Spec, opts, gen, trials,
				harness.Options{BatchWorkers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sc.Name, workers, err)
			}
			runs = append(runs, res)
		}
		// Sequential reruns must agree exactly.
		if runs[0].Histories != runs[1].Histories || runs[0].Linearizable != runs[1].Linearizable ||
			runs[0].Nodes != runs[1].Nodes || runs[0].FailureExample != runs[1].FailureExample {
			t.Errorf("%s: sequential reruns disagree: %+v vs %+v", sc.Name, runs[0], runs[1])
		}
		// Parallel batch checking must not change any verdict.
		for _, r := range runs[1:] {
			if r.Histories != runs[0].Histories || r.Linearizable != runs[0].Linearizable ||
				r.Operations != runs[0].Operations || r.FailureExample != runs[0].FailureExample {
				t.Errorf("%s: worker counts disagree: %+v vs %+v", sc.Name, runs[0], r)
			}
		}
	}
}

// TestHLCGeneratorContract asserts that HLC-timestamped scenario histories
// keep the paper's timestamp generator contract (Figure 7): every timestamped
// label is strictly above every timestamped label visible to it. The
// timestamp-order linearization strategy (Theorem 4.6) is only sound under
// this contract.
func TestHLCGeneratorContract(t *testing.T) {
	sc, err := Lookup("hot-key")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.UseHLC {
		t.Fatal("hot-key no longer uses the HLC; the contract test needs an HLC scenario")
	}
	for seed := int64(1); seed <= 20; seed++ {
		h, err := Run(sc, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		labels := h.Labels()
		for _, a := range labels {
			if a.TS.IsBottom() {
				continue
			}
			for _, b := range labels {
				if b.TS.IsBottom() || !h.Vis(a.ID, b.ID) {
					continue
				}
				if !a.TS.Less(b.TS) {
					t.Fatalf("seed %d: visible %v (ts %v) not below %v (ts %v)", seed, a, a.TS, b, b.TS)
				}
			}
		}
	}
}

// TestHotKeyDesignatedStrategyHolds asserts the point of the hot-key
// scenario: the timestamp-order strategy still finds witnesses on
// HLC-timestamped histories under clock skew, partitions and key contention.
func TestHotKeyDesignatedStrategyHolds(t *testing.T) {
	sc, err := Lookup("hot-key")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	gen := Generator{Scenario: sc, Seed: 1}
	res, err := harness.CheckGeneratedAgainst(sc.Name, plan.Spec, plan.Options, gen, 15, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable != res.Histories {
		t.Fatalf("hot-key histories not RA-linearizable under the designated strategy: %+v", res)
	}
}

// TestNaiveScenariosRefute asserts that each naive-mode scenario actually
// provokes the anomaly it was designed around within its fixed seed window.
func TestNaiveScenariosRefute(t *testing.T) {
	for name, trials := range map[string]int{
		"partition-heal":    40,
		"long-fork-attempt": 10,
	} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sc.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if !plan.ExpectRefutations {
			t.Fatalf("%s is no longer a naive-mode scenario", name)
		}
		gen := Generator{Scenario: sc, Seed: 1}
		res, err := harness.CheckGeneratedAgainst(sc.Name, plan.Spec, plan.Options, gen, trials, harness.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Linearizable == res.Histories {
			t.Errorf("%s: no refutations in %d trials; the fault schedule no longer provokes its anomaly", name, trials)
		}
	}
}

// probeMetrics aggregates the comparison probe's hardness counters.
type probeMetrics struct {
	refuted       int
	nodes         int
	pruned        int
	tried         int
	observedRaces int
}

// observedRaces counts pairs of concurrent updates that some query sees
// merged: the conflicts whose resolution the history actually pins down, and
// therefore the visibility patterns the checker has to explain. Uniform
// random workloads leave most of their concurrency unobserved (replicas
// rarely converge); a fault schedule's heal-and-read phases are built to
// force these observations.
func observedRaces(h *core.History) int {
	labels := h.Labels()
	n := 0
	for i, a := range labels {
		if a.Kind == core.KindQuery {
			continue
		}
		for _, b := range labels[i+1:] {
			if b.Kind == core.KindQuery || h.Vis(a.ID, b.ID) || h.Vis(b.ID, a.ID) {
				continue
			}
			for _, q := range labels {
				if q.Kind == core.KindQuery && h.Vis(a.ID, q.ID) && h.Vis(b.ID, q.ID) {
					n++
					break
				}
			}
		}
	}
	return n
}

func (m *probeMetrics) add(res core.Result) {
	if !res.OK {
		m.refuted++
	}
	m.nodes += res.Nodes
	m.pruned += res.Pruned
	m.tried += res.Tried
}

// scenarioMetrics checks trials scenario histories under a sequential
// exhaustive probe and returns the hardness counters, plus the per-trial
// label counts (for generating a fair uniform baseline).
func scenarioMetrics(t *testing.T, sc Scenario, trials int) (probeMetrics, []int) {
	t.Helper()
	plan, err := sc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	opts := probeOptions(plan.Options)
	var m probeMetrics
	var labelCounts []int
	for i := 0; i < trials; i++ {
		seed := int64(1 + i*7919)
		h, err := Run(sc, seed)
		if err != nil {
			t.Fatalf("%s seed %d: %v", sc.Name, seed, err)
		}
		if plan.Transform != nil {
			h = plan.Transform(h)
		}
		labelCounts = append(labelCounts, h.Len())
		m.observedRaces += observedRaces(h)
		m.add(core.CheckRA(h, plan.Spec, opts))
	}
	return m, labelCounts
}

// uniformMetrics checks uniform random histories of the scenario's descriptor
// under the same probe, with the same per-trial operation counts and alphabet.
func uniformMetrics(t *testing.T, sc Scenario, labelCounts []int) probeMetrics {
	t.Helper()
	d, err := registry.Lookup(sc.CRDT)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sc.Plan()
	if err != nil {
		t.Fatal(err)
	}
	opts := probeOptions(plan.Options)
	var m probeMetrics
	for i, ops := range labelCounts {
		cfg := harness.WorkloadConfig{
			Seed:         int64(1 + i*7919),
			Ops:          ops,
			Replicas:     sc.Replicas,
			Elems:        sc.Elems,
			DeliveryProb: 40,
		}
		h, err := harness.RunRandom(d, cfg)
		if err != nil {
			t.Fatalf("%s uniform trial %d: %v", sc.Name, i, err)
		}
		if plan.Transform != nil {
			h = plan.Transform(h)
		}
		m.observedRaces += observedRaces(h)
		m.add(core.CheckRA(h, plan.Spec, opts))
	}
	return m
}

// probeOptions makes the comparison probe: sequential pruned exhaustive
// search with no constructive strategies, so node counts measure how hard the
// history is rather than how lucky a strategy got.
func probeOptions(opts core.CheckOptions) core.CheckOptions {
	opts.Strategies = nil
	opts.Exhaustive = true
	opts.Engine = core.EnginePruned
	opts.Parallelism = 1
	return opts
}

// TestScenariosBeatUniformRandom is the acceptance comparison against
// uniform random generation with matched per-trial operation counts and
// alphabets, under a common sequential exhaustive probe.
//
// Two different effects are asserted. Refutation-driving (naive-mode)
// scenarios must refute strictly more often — and on at least one descriptor
// also drive the search through strictly more nodes — than uniform random.
// The positive scenarios check constructively no matter the workload (a
// query's return is explained by its visible updates alone, so a witness is
// found on the first descent and Nodes ≈ labels+1 for any linearizable
// history); their measurable product is structure, so they must pile up
// strictly more concurrent label pairs than uniform random does.
func TestScenariosBeatUniformRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison sweep is slow")
	}
	// partition-heal's cross-race is rare (a few percent of seeds), so its
	// window is wider than the default.
	trialsFor := map[string]int{"partition-heal": 40}
	nodesAndRefutations := false
	for _, sc := range All() {
		trials := 25
		if n, ok := trialsFor[sc.Name]; ok {
			trials = n
		}
		s, counts := scenarioMetrics(t, sc, trials)
		u := uniformMetrics(t, sc, counts)
		t.Logf("%-20s scenario: %3d refuted %7d nodes %7d observed races | uniform: %3d refuted %7d nodes %7d observed races",
			sc.Name, s.refuted, s.nodes, s.observedRaces, u.refuted, u.nodes, u.observedRaces)
		plan, err := sc.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if plan.ExpectRefutations {
			if s.refuted <= u.refuted {
				t.Errorf("%s: scenario refuted %d times, uniform random %d — the fault schedule is not provoking its anomaly",
					sc.Name, s.refuted, u.refuted)
			}
			if s.refuted > u.refuted && s.nodes > u.nodes {
				nodesAndRefutations = true
			}
		} else if s.observedRaces <= u.observedRaces {
			t.Errorf("%s: scenario forced %d observed races, uniform random %d — the fault schedule is not pinning down its conflicts",
				sc.Name, s.observedRaces, u.observedRaces)
		}
	}
	if !nodesAndRefutations {
		t.Error("no scenario beat uniform random on both refutations and search nodes")
	}
}

// TestCorpusRoundTrip pushes each scenario's (transformed) history through
// the corpus codec and back, asserting byte-identical reconstruction.
func TestCorpusRoundTrip(t *testing.T) {
	for _, sc := range All() {
		plan, err := sc.Plan()
		if err != nil {
			t.Fatal(err)
		}
		h, err := Run(sc, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if plan.Transform != nil {
			h = plan.Transform(h)
		}
		labels, vis, err := EncodeHistory(h)
		if err != nil {
			t.Fatalf("%s: encode: %v", sc.Name, err)
		}
		e := Entry{
			Scenario: sc.Name, CRDT: sc.CRDT, Mode: string(sc.Mode), Spec: plan.SpecName,
			Seed: 1, Labels: labels, Vis: vis,
		}
		back, err := e.History()
		if err != nil {
			t.Fatalf("%s: decode: %v", sc.Name, err)
		}
		if h.String() != back.String() {
			t.Errorf("%s: corpus round trip changed the history:\n%s\n--- vs ---\n%s", sc.Name, h, back)
		}
	}
}

// TestCorpusFileRoundTrip exercises the file layer: write an entry, read it
// back, replay the check, and require the recorded verdict.
func TestCorpusFileRoundTrip(t *testing.T) {
	sc, err := Lookup("long-fork-attempt")
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := Harvest(sc, 1, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("harvest kept no entries")
	}
	dir := t.TempDir()
	for _, e := range entries {
		path := dir + "/" + e.Scenario + ".json"
		if err := WriteEntry(path, e); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEntry(path)
		if err != nil {
			t.Fatal(err)
		}
		h, err := got.History()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := got.Plan()
		if err != nil {
			t.Fatal(err)
		}
		opts := plan.Options
		opts.Parallelism = 1
		res := core.CheckRA(h, plan.Spec, opts)
		if res.OK != got.RALinearizable {
			t.Errorf("replayed verdict %v, corpus recorded %v", res.OK, got.RALinearizable)
		}
	}
}
