package scenario

import (
	"fmt"
	"strings"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/spec"
)

// Mode selects how a scenario's histories are checked.
type Mode string

const (
	// ModeDesignated checks against the descriptor's specification with its
	// designated linearization strategy (the normal positive check; the
	// scenario's value is exercising the strategy under faults, e.g. the
	// timestamp-order strategy on HLC-timestamped histories).
	ModeDesignated Mode = "designated"
	// ModeExhaustive checks against the descriptor's specification with the
	// constructive strategies disabled, so every history drives the full
	// search engine — the near-miss high-Nodes probe.
	ModeExhaustive Mode = "exhaustive"
	// ModeNaive reinterprets the history over a naive specification that
	// ignores the CRDT's conflict-resolution identifiers (Figure 5a's
	// exercise): refutations are expected findings, witnessing exactly the
	// anomalies the fault schedule was designed to provoke.
	ModeNaive Mode = "naive"
)

// CheckPlan is everything needed to check one scenario history: the
// specification, the checker options and an optional history reinterpretation
// applied before checking (ModeNaive).
type CheckPlan struct {
	// Spec is the specification checked against.
	Spec core.Spec
	// SpecName names it for reports and corpus entries.
	SpecName string
	// Options is the per-history checker configuration.
	Options core.CheckOptions
	// Transform reinterprets the raw scenario history before checking (nil
	// for identity). Corpus entries store the transformed history, so replay
	// must not re-apply it.
	Transform func(*core.History) *core.History
	// ExpectRefutations documents that non-linearizable verdicts are the
	// scenario's findings, not failures (ModeNaive).
	ExpectRefutations bool
}

// Plan resolves the scenario's check plan from its CRDT and Mode.
func (sc Scenario) Plan() (CheckPlan, error) { return planFor(sc.CRDT, sc.Mode) }

func planFor(crdtName string, mode Mode) (CheckPlan, error) {
	d, err := registry.Lookup(crdtName)
	if err != nil {
		return CheckPlan{}, err
	}
	switch mode {
	case ModeDesignated, "":
		return CheckPlan{Spec: d.Spec, SpecName: d.Spec.Name(), Options: d.CheckOptions()}, nil
	case ModeExhaustive:
		opts := d.CheckOptions()
		opts.Strategies = nil
		return CheckPlan{Spec: d.Spec, SpecName: d.Spec.Name(), Options: opts}, nil
	case ModeNaive:
		// The naive reinterpretations produce plain update labels, so no
		// query-update rewriting is needed; the search is purely exhaustive,
		// as in the Figure 5a experiment.
		opts := core.CheckOptions{Exhaustive: true, MaxExtensions: 200000}
		switch crdtName {
		case "OR-Set":
			return CheckPlan{
				Spec: spec.Set{}, SpecName: spec.Set{}.Name(), Options: opts,
				Transform: NaiveSetHistory, ExpectRefutations: true,
			}, nil
		case "Multi-Value Reg.":
			return CheckPlan{
				Spec: spec.Register{}, SpecName: spec.Register{}.Name(), Options: opts,
				Transform: NaiveRegisterHistory, ExpectRefutations: true,
			}, nil
		default:
			return CheckPlan{}, fmt.Errorf("scenario: no naive specification for %s", crdtName)
		}
	default:
		return CheckPlan{}, fmt.Errorf("scenario: unknown check mode %q", mode)
	}
}

// NaiveSetHistory reinterprets an OR-Set history over the plain Set
// specification, as in Figure 5a: removes become ordinary updates and the
// unique identifiers are dropped. Concurrent add/remove races that the OR-Set
// resolves by identifier become unexplainable, so the check refutes exactly
// on the anomalies a split-brain schedule provokes.
func NaiveSetHistory(h *core.History) *core.History {
	naive := h.Clone()
	for _, l := range naive.Labels() {
		switch l.Method {
		case "add":
			l.Ret = nil
		case "remove":
			l.Kind = core.KindUpdate
			l.Ret = nil
		}
	}
	return naive
}

// NaiveRegisterHistory reinterprets a multi-value register history over the
// single-value register specification: writes drop their version-vector
// identifiers and a read observing k concurrent values returns their
// "|"-join — a value no single write produced — so the check refutes exactly
// on genuine multi-value (long-fork-style) anomalies. Reads of zero or one
// value translate faithfully ("" is the register's unwritten initial value).
func NaiveRegisterHistory(h *core.History) *core.History {
	naive := h.Clone()
	for _, l := range naive.Labels() {
		switch l.Method {
		case "write":
			l.Ret = nil
		case "read":
			vs, ok := l.Ret.([]string)
			if !ok {
				continue
			}
			switch len(vs) {
			case 0:
				l.Ret = ""
			case 1:
				l.Ret = vs[0]
			default:
				l.Ret = strings.Join(vs, "|")
			}
		}
	}
	return naive
}

// Generator adapts a scenario to the harness batch pipeline
// (harness.HistoryGenerator): trial i runs the scenario with seed
// Seed + i·7919 and applies the check plan's reinterpretation, so the
// returned history is ready to check against Plan().Spec with
// Plan().Options.
type Generator struct {
	// Scenario is the fault schedule to run.
	Scenario Scenario
	// Seed is the base seed; trial i derives Seed + i·7919.
	Seed int64
}

// Generate runs one trial of the scenario.
func (g Generator) Generate(trial int) (*core.History, int64, error) {
	seed := g.Seed + int64(trial)*7919
	plan, err := g.Scenario.Plan()
	if err != nil {
		return nil, seed, err
	}
	h, err := Run(g.Scenario, seed)
	if err != nil {
		return nil, seed, err
	}
	if plan.Transform != nil {
		h = plan.Transform(h)
	}
	return h, seed, nil
}
