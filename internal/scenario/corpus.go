package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"ralin/internal/clock"
	"ralin/internal/core"
)

// Entry is one corpus file under testdata/corpus/: a scenario-generated
// history (already reinterpreted by its mode's transform, so replay checks it
// directly), the scenario provenance, and the verdict recorded at harvest
// time. The regression suite replays every entry and asserts the verdict is
// stable; the engine differential test asserts the pruned and legacy engines
// agree on it.
type Entry struct {
	// Scenario is the generating scenario's name.
	Scenario string `json:"scenario"`
	// CRDT is the registry name of the data type.
	CRDT string `json:"crdt"`
	// Mode is the check mode the history was harvested under.
	Mode string `json:"mode"`
	// Spec names the specification the verdict is against.
	Spec string `json:"spec"`
	// Seed is the scenario seed that produced the history.
	Seed int64 `json:"seed"`
	// RALinearizable is the verdict (pruned engine, sequential search).
	RALinearizable bool `json:"ra_linearizable"`
	// Nodes is the pruned engine's sequential search-node count at harvest
	// time — informational, a measure of how hard the entry is.
	Nodes int `json:"nodes"`
	// Labels are the history's labels in insertion order.
	Labels []corpusLabel `json:"labels"`
	// Vis is the generating edge set of the visibility relation
	// (History.DirectVisEdges), as [from, to] identifier pairs.
	Vis [][2]uint64 `json:"vis"`
}

type corpusLabel struct {
	ID        uint64        `json:"id"`
	Object    string        `json:"object,omitempty"`
	Method    string        `json:"method"`
	Args      []corpusValue `json:"args,omitempty"`
	Ret       *corpusValue  `json:"ret,omitempty"`
	TSTime    uint64        `json:"ts_time,omitempty"`
	TSReplica int           `json:"ts_replica,omitempty"`
	Kind      string        `json:"kind"`
	Origin    int           `json:"origin"`
	GenSeq    uint64        `json:"gen_seq"`
}

// corpusValue is a tagged encoding of the core.Value types that appear on
// labels: "nil", "string", "int", "int64", "uint64", "bool", "strings" (a
// string slice), "pair"/"pairs" (core.Pair), and "vv" (clock.VersionVector).
// Unknown dynamic types are a loud error, not a silent null — the harvest
// skips histories it cannot encode faithfully.
type corpusValue struct {
	T  string            `json:"t"`
	S  string            `json:"s,omitempty"`
	I  int64             `json:"i,omitempty"`
	U  uint64            `json:"u,omitempty"`
	B  bool              `json:"b,omitempty"`
	SS []string          `json:"ss,omitempty"`
	PS []corpusPair      `json:"ps,omitempty"`
	VV map[string]uint64 `json:"vv,omitempty"`
}

type corpusPair struct {
	Elem string `json:"elem"`
	ID   uint64 `json:"id"`
}

func encodeValue(v core.Value) (corpusValue, error) {
	switch x := v.(type) {
	case nil:
		return corpusValue{T: "nil"}, nil
	case string:
		return corpusValue{T: "string", S: x}, nil
	case int:
		return corpusValue{T: "int", I: int64(x)}, nil
	case int64:
		return corpusValue{T: "int64", I: x}, nil
	case uint64:
		return corpusValue{T: "uint64", U: x}, nil
	case bool:
		return corpusValue{T: "bool", B: x}, nil
	case []string:
		ss := x
		if ss == nil {
			ss = []string{}
		}
		return corpusValue{T: "strings", SS: ss}, nil
	case core.Pair:
		return corpusValue{T: "pair", S: x.Elem, U: x.ID}, nil
	case []core.Pair:
		ps := make([]corpusPair, len(x))
		for i, p := range x {
			ps[i] = corpusPair{Elem: p.Elem, ID: p.ID}
		}
		return corpusValue{T: "pairs", PS: ps}, nil
	case clock.VersionVector:
		vv := make(map[string]uint64, len(x))
		for r, n := range x {
			vv[strconv.Itoa(int(r))] = n
		}
		return corpusValue{T: "vv", VV: vv}, nil
	default:
		return corpusValue{}, fmt.Errorf("corpus: unencodable value type %T", v)
	}
}

func decodeValue(cv corpusValue) (core.Value, error) {
	switch cv.T {
	case "nil":
		return nil, nil
	case "string":
		return cv.S, nil
	case "int":
		return int(cv.I), nil
	case "int64":
		return cv.I, nil
	case "uint64":
		return cv.U, nil
	case "bool":
		return cv.B, nil
	case "strings":
		if cv.SS == nil {
			return []string{}, nil
		}
		return cv.SS, nil
	case "pair":
		return core.Pair{Elem: cv.S, ID: cv.U}, nil
	case "pairs":
		ps := make([]core.Pair, len(cv.PS))
		for i, p := range cv.PS {
			ps[i] = core.Pair{Elem: p.Elem, ID: p.ID}
		}
		return ps, nil
	case "vv":
		vv := make(clock.VersionVector, len(cv.VV))
		for r, n := range cv.VV {
			ri, err := strconv.Atoi(r)
			if err != nil {
				return nil, fmt.Errorf("corpus: bad version vector replica %q", r)
			}
			vv[clock.ReplicaID(ri)] = n
		}
		return vv, nil
	default:
		return nil, fmt.Errorf("corpus: unknown value tag %q", cv.T)
	}
}

func encodeKind(k core.Kind) string {
	switch k {
	case core.KindQuery:
		return "query"
	case core.KindUpdate:
		return "update"
	case core.KindQueryUpdate:
		return "query-update"
	default:
		return "unknown"
	}
}

func decodeKind(s string) (core.Kind, error) {
	switch s {
	case "query":
		return core.KindQuery, nil
	case "update":
		return core.KindUpdate, nil
	case "query-update":
		return core.KindQueryUpdate, nil
	default:
		return 0, fmt.Errorf("corpus: unknown label kind %q", s)
	}
}

// EncodeHistory serializes a history into corpus form: labels in insertion
// order plus the generating visibility edges.
func EncodeHistory(h *core.History) ([]corpusLabel, [][2]uint64, error) {
	var labels []corpusLabel
	for _, l := range h.Labels() {
		cl := corpusLabel{
			ID:        l.ID,
			Object:    l.Object,
			Method:    l.Method,
			TSTime:    l.TS.Time,
			TSReplica: int(l.TS.Replica),
			Kind:      encodeKind(l.Kind),
			Origin:    int(l.Origin),
			GenSeq:    l.GenSeq,
		}
		for _, a := range l.Args {
			cv, err := encodeValue(a)
			if err != nil {
				return nil, nil, fmt.Errorf("label %d arg: %w", l.ID, err)
			}
			cl.Args = append(cl.Args, cv)
		}
		if l.Ret != nil {
			cv, err := encodeValue(l.Ret)
			if err != nil {
				return nil, nil, fmt.Errorf("label %d ret: %w", l.ID, err)
			}
			cl.Ret = &cv
		}
		labels = append(labels, cl)
	}
	vis := [][2]uint64{}
	h.DirectVisEdges(func(from, to uint64) {
		vis = append(vis, [2]uint64{from, to})
	})
	return labels, vis, nil
}

// History reconstructs the entry's history.
func (e Entry) History() (*core.History, error) {
	h := core.NewHistory()
	for _, cl := range e.Labels {
		kind, err := decodeKind(cl.Kind)
		if err != nil {
			return nil, err
		}
		l := &core.Label{
			ID:     cl.ID,
			Object: cl.Object,
			Method: cl.Method,
			TS:     clock.Timestamp{Time: cl.TSTime, Replica: clock.ReplicaID(cl.TSReplica)},
			Kind:   kind,
			Origin: clock.ReplicaID(cl.Origin),
			GenSeq: cl.GenSeq,
		}
		for _, cv := range cl.Args {
			v, err := decodeValue(cv)
			if err != nil {
				return nil, fmt.Errorf("label %d arg: %w", cl.ID, err)
			}
			l.Args = append(l.Args, v)
		}
		if cl.Ret != nil {
			v, err := decodeValue(*cl.Ret)
			if err != nil {
				return nil, fmt.Errorf("label %d ret: %w", cl.ID, err)
			}
			l.Ret = v
		}
		if err := h.Add(l); err != nil {
			return nil, err
		}
	}
	for _, edge := range e.Vis {
		if err := h.AddVis(edge[0], edge[1]); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Plan resolves the checker plan for replaying the entry. The stored history
// is already reinterpreted, so replay must use the plan's Spec and Options
// but NOT its Transform.
func (e Entry) Plan() (CheckPlan, error) { return planFor(e.CRDT, Mode(e.Mode)) }

// WriteEntry writes one corpus entry as indented JSON.
func WriteEntry(path string, e Entry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadEntry reads one corpus entry.
func ReadEntry(path string) (Entry, error) {
	var e Entry
	data, err := os.ReadFile(path)
	if err != nil {
		return e, err
	}
	if err := json.Unmarshal(data, &e); err != nil {
		return e, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// LoadCorpus reads every *.json entry in dir, sorted by file name. A missing
// directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Entry, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	var entries []Entry
	for _, p := range paths {
		e, err := ReadEntry(p)
		if err != nil {
			return nil, nil, err
		}
		entries = append(entries, e)
	}
	return entries, paths, nil
}

// Harvest runs trials seeds of the scenario, checks every history under the
// scenario's plan (pruned engine, sequential search, so node counts are
// deterministic), and returns the keep most interesting entries: refutations
// first, then the highest node counts, ties broken by seed. Entries are
// filtered to those the legacy engine decides identically within a bounded
// enumeration budget — a corpus entry that only the pruned engine can finish
// would make the engine differential test unaffordable — and to histories the
// corpus codec can encode faithfully; nothing is dropped silently, the counts
// are reported in the returned summary.
func Harvest(sc Scenario, baseSeed int64, trials, keep int) ([]Entry, string, error) {
	plan, err := sc.Plan()
	if err != nil {
		return nil, "", err
	}
	prunedOpts := plan.Options
	prunedOpts.Engine = core.EnginePruned
	prunedOpts.Parallelism = 1
	// Score hardness by the exhaustive search even for strategy-first modes:
	// a constructive witness reports zero nodes, which would make every
	// candidate look equally easy.
	prunedOpts.Strategies = nil
	legacyOpts := plan.Options
	legacyOpts.Engine = core.EngineLegacy
	legacyOpts.Strategies = nil
	legacyOpts.Exhaustive = true
	legacyOpts.MaxExtensions = 500000

	var candidates []Entry
	skippedCodec, skippedLegacy, skippedUndecided := 0, 0, 0
	undecidedReasons := map[core.IncompleteReason]int{}
	for i := 0; i < trials; i++ {
		seed := baseSeed + int64(i)*7919
		h, err := Run(sc, seed)
		if err != nil {
			return nil, "", err
		}
		if plan.Transform != nil {
			h = plan.Transform(h)
		}
		res := core.CheckRA(h, plan.Spec, prunedOpts)
		if res.Verdict == core.VerdictUnknown {
			// Undecided within budget (node/memory budget, deadline, panic);
			// useless as a regression verdict, recorded with its reason.
			skippedUndecided++
			if res.Incomplete != nil {
				undecidedReasons[res.Incomplete.Reason]++
			}
			continue
		}
		leg := core.CheckRA(h, plan.Spec, legacyOpts)
		if leg.Verdict == core.VerdictUnknown {
			skippedLegacy++
			continue
		}
		if leg.OK != res.OK {
			return nil, "", fmt.Errorf("scenario %s seed %d: pruned verdict %v but legacy verdict %v", sc.Name, seed, res.OK, leg.OK)
		}
		labels, vis, err := EncodeHistory(h)
		if err != nil {
			skippedCodec++
			continue
		}
		candidates = append(candidates, Entry{
			Scenario:       sc.Name,
			CRDT:           sc.CRDT,
			Mode:           string(sc.Mode),
			Spec:           plan.SpecName,
			Seed:           seed,
			RALinearizable: res.OK,
			Nodes:          res.Nodes,
			Labels:         labels,
			Vis:            vis,
		})
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.RALinearizable != b.RALinearizable {
			return !a.RALinearizable // refutations first
		}
		if a.Nodes != b.Nodes {
			return a.Nodes > b.Nodes
		}
		return a.Seed < b.Seed
	})
	if keep > 0 && len(candidates) > keep {
		candidates = candidates[:keep]
	}
	undecided := fmt.Sprintf("%d skipped: undecided", skippedUndecided)
	if len(undecidedReasons) > 0 {
		reasons := make([]string, 0, len(undecidedReasons))
		for r := range undecidedReasons {
			reasons = append(reasons, string(r))
		}
		sort.Strings(reasons)
		for i, r := range reasons {
			sep := " ["
			if i > 0 {
				sep = ", "
			}
			undecided += fmt.Sprintf("%s%s: %d", sep, r, undecidedReasons[core.IncompleteReason(r)])
		}
		undecided += "]"
	}
	summary := fmt.Sprintf("%d trials, %d candidates kept (%s, %d skipped: legacy budget, %d skipped: codec)",
		trials, len(candidates), undecided, skippedLegacy, skippedCodec)
	return candidates, summary, nil
}
