// Package scenario is the fault-schedule workload engine: it drives the
// operation-based (runtime.System) and state-based (runtime.SBSystem)
// executors under an explicit, seed-deterministic schedule of faults —
// network partitions (split-brain then heal), per-link message delay, drop
// and duplication, replica churn (pause/resume) and hot-key skew — and
// extracts the induced visibility histories for RA-linearizability checking.
//
// Uniform random workloads (harness.RunRandom) spread concurrency evenly;
// real replicated stores cluster it. A partition accumulates two divergent
// sets of updates and releases them at once on heal; a paused replica falls
// behind and re-enters with a stale frontier; a hot key focuses conflicting
// updates on one element. Those clustered shapes are exactly what drives the
// checker into its expensive regions (wide antichains, deep exhaustive
// refutations), so the named scenarios in this package (see library.go)
// produce higher search-node counts and more naive-specification refutations
// than uniform generation at the same operation count.
//
// Scenarios plug into the harness batch pipeline through Generator, which
// implements harness.HistoryGenerator; the histories a scenario produces are
// checked according to its Mode (see check.go) and the hardest ones are
// serialized to testdata/corpus/ (see corpus.go) as a regression set.
package scenario

import (
	"fmt"
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/runtime"
)

// Phase is one stage of a fault schedule. Ops operations are issued at
// non-paused replicas, interleaved with propagation steps that respect the
// phase's partition, pause set and per-link fault probabilities; when Heal is
// set, the phase ends by reconnecting everything and delivering every pending
// message (the convergence storm).
type Phase struct {
	// Name identifies the phase in diagnostics.
	Name string
	// Ops is the number of operations issued during the phase.
	Ops int
	// Partition groups replica indices into disjoint connection components;
	// messages only propagate within a component. Replicas not listed in any
	// group form singleton components (fully isolated). A nil Partition
	// connects everything.
	Partition [][]int
	// Paused lists replicas that are down for the phase: they issue no
	// operations and neither send nor receive.
	Paused []int
	// DeliverProb is the per-operation probability (percent) of attempting
	// one propagation step after the operation.
	DeliverProb int
	// DropProb is the probability (percent) that an attempted propagation
	// step loses its message. For operation-based objects causal delivery
	// makes true loss unrepresentable, so a drop is a delay: the effector
	// stays pending. For state-based objects the state snapshot is sent but
	// not received; idempotent merge lets the duplication path re-deliver it
	// later, so a drop doubles as delayed delivery.
	DropProb int
	// DupProb is the probability (percent) that a propagation step
	// re-delivers a previously sent state snapshot instead of sending a
	// fresh one (state-based objects only; operation-based effectors are
	// applied at most once per replica by the semantics of Figure 7).
	DupProb int
	// HotElem, when HotElemBias > 0, is the element the workload skews
	// towards: with probability HotElemBias percent an operation draws its
	// element from {HotElem} instead of the scenario alphabet.
	HotElem string
	// HotElemBias is the hot-element skew in percent.
	HotElemBias int
	// HotReplica, when HotReplicaBias > 0, is the replica the workload skews
	// towards: with probability HotReplicaBias percent an operation is
	// issued there instead of at a uniformly chosen active replica.
	HotReplica int
	// HotReplicaBias is the hot-replica skew in percent.
	HotReplicaBias int
	// Heal reconnects all replicas (including paused ones) at the end of the
	// phase and delivers everything pending.
	Heal bool
	// ReadAll issues a read at every replica after the phase's operations
	// (and after Heal, if set), pinning down what each replica observed at
	// that point — the observation a refutation or a wide-frontier search
	// hinges on, which random operation draws would only sometimes make.
	ReadAll bool
}

// Scenario is a named fault schedule over one CRDT.
type Scenario struct {
	// Name identifies the scenario (for the -scenario flags and the corpus).
	Name string
	// Description is a one-line summary for -list-scenarios.
	Description string
	// CRDT is the registry name of the data type the scenario drives.
	CRDT string
	// Replicas is the deployment size (default 3).
	Replicas int
	// Elems is the element alphabet (default a, b, c). It must not contain
	// "|", which the naive register transform uses as a join marker.
	Elems []string
	// Phases is the fault schedule.
	Phases []Phase
	// UseHLC timestamps the execution with a hybrid logical clock whose
	// physical component advances one tick per issued operation, skewed per
	// replica by up to ClockSkew ticks — realistic clock behaviour for the
	// timestamp-order linearization strategy to chew on.
	UseHLC bool
	// ClockSkew bounds the per-replica physical clock skew (in ticks) when
	// UseHLC is set.
	ClockSkew uint64
	// Mode selects how the scenario's histories are checked (see check.go).
	Mode Mode
}

// Run executes the scenario once under the given seed and returns the induced
// history. Runs are deterministic: one seeded generator drives every choice
// (operations, delivery, faults, clock skew), all candidate sets are built in
// sorted replica/message order, and no wall-clock input exists, so the same
// scenario and seed yield a byte-identical history.
func Run(sc Scenario, seed int64) (*core.History, error) {
	d, err := registry.Lookup(sc.CRDT)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if sc.Replicas <= 0 {
		sc.Replicas = 3
	}
	elems := sc.Elems
	if len(elems) == 0 {
		elems = []string{"a", "b", "c"}
	}
	e := &engine{
		d:     d,
		n:     sc.Replicas,
		elems: elems,
		rng:   rand.New(rand.NewSource(seed)),
		ts:    make(map[uint64]clock.Timestamp),
	}
	cfg := runtime.Config{Replicas: sc.Replicas}
	if sc.UseHLC {
		skew := make([]uint64, sc.Replicas)
		for i := range skew {
			if sc.ClockSkew > 0 {
				skew[i] = uint64(e.rng.Int63n(int64(sc.ClockSkew) + 1))
			}
		}
		e.hlc = clock.NewHLC(func(r clock.ReplicaID) uint64 {
			return e.steps + skew[int(r)]
		})
		cfg.Clock = e.hlc
	}
	if d.OpType != nil {
		e.op = d.NewOpSystem(cfg)
	} else {
		e.sb = d.NewSBSystem(cfg)
	}
	for i := range sc.Phases {
		p := &sc.Phases[i]
		if err := e.runPhase(p); err != nil {
			return nil, fmt.Errorf("scenario %s, phase %s: %w", sc.Name, p.Name, err)
		}
	}
	if e.op != nil {
		return e.op.History(), nil
	}
	return e.sb.History(), nil
}

// engine is the per-run state of the scenario executor.
type engine struct {
	d     crdt.Descriptor
	n     int
	elems []string
	rng   *rand.Rand
	op    *runtime.System
	sb    *runtime.SBSystem
	hlc   *clock.HLC
	// steps is the physical clock: it advances one tick per issued
	// operation, so HLC physical components track execution progress instead
	// of wall time (which would break determinism).
	steps uint64
	// ts records the timestamp generated by each invocation, so deliveries
	// can report it to the HLC (preserving the Figure 7 generator contract:
	// fresh timestamps dominate everything visible at the origin).
	ts map[uint64]clock.Timestamp
}

// groupsOf maps each replica index to its connection component under the
// phase's partition.
func groupsOf(p *Phase, n int) []int {
	g := make([]int, n)
	if len(p.Partition) == 0 {
		return g // all zero: one component
	}
	for i := range g {
		g[i] = -1
	}
	for gi, grp := range p.Partition {
		for _, r := range grp {
			if r >= 0 && r < n {
				g[r] = gi
			}
		}
	}
	next := len(p.Partition)
	for i := range g {
		if g[i] == -1 {
			g[i] = next // unlisted replicas are isolated
			next++
		}
	}
	return g
}

func (e *engine) runPhase(p *Phase) error {
	groups := groupsOf(p, e.n)
	paused := make([]bool, e.n)
	for _, r := range p.Paused {
		if r >= 0 && r < e.n {
			paused[r] = true
		}
	}
	var active []clock.ReplicaID
	for r := 0; r < e.n; r++ {
		if !paused[r] {
			active = append(active, clock.ReplicaID(r))
		}
	}
	if p.Ops > 0 && len(active) == 0 {
		return fmt.Errorf("every replica is paused but the phase issues operations")
	}
	for i := 0; i < p.Ops; i++ {
		e.steps++
		r := active[e.rng.Intn(len(active))]
		if p.HotReplicaBias > 0 && e.rng.Intn(100) < p.HotReplicaBias {
			hot := clock.ReplicaID(p.HotReplica)
			if int(hot) < e.n && !paused[hot] {
				r = hot
			}
		}
		if err := e.invoke(p, r); err != nil {
			return err
		}
		if e.rng.Intn(100) < p.DeliverProb {
			e.propagate(p, groups, paused)
		}
	}
	if p.Heal {
		if err := e.heal(); err != nil {
			return err
		}
	}
	if p.ReadAll {
		for r := 0; r < e.n; r++ {
			e.steps++
			var l *core.Label
			var err error
			if e.op != nil {
				l, err = e.op.Invoke(clock.ReplicaID(r), "read")
			} else {
				l, err = e.sb.Invoke(clock.ReplicaID(r), "read")
			}
			if err != nil {
				return fmt.Errorf("read at replica %d: %w", r, err)
			}
			if e.hlc != nil && l != nil && !l.TS.IsBottom() {
				e.ts[l.ID] = l.TS
			}
		}
	}
	return nil
}

// pinned restricts an invoker to a single replica, so the descriptor's
// RandomOp issues its operation exactly where the schedule decided.
type pinned struct {
	crdt.Invoker
	r clock.ReplicaID
}

// Replicas returns only the pinned replica.
func (p pinned) Replicas() []clock.ReplicaID { return []clock.ReplicaID{p.r} }

func (e *engine) invoke(p *Phase, r clock.ReplicaID) error {
	elems := e.elems
	if p.HotElemBias > 0 && p.HotElem != "" && e.rng.Intn(100) < p.HotElemBias {
		elems = []string{p.HotElem}
	}
	var sys crdt.Invoker
	if e.op != nil {
		sys = pinned{Invoker: e.op, r: r}
	} else {
		sys = pinned{Invoker: e.sb, r: r}
	}
	l, err := e.d.RandomOp(e.rng, sys, elems)
	if err != nil {
		return fmt.Errorf("%s operation at replica %d: %w", e.d.Name, r, err)
	}
	if e.hlc != nil && l != nil && !l.TS.IsBottom() {
		e.ts[l.ID] = l.TS
	}
	return nil
}

// propagate attempts one propagation step under the phase's faults.
func (e *engine) propagate(p *Phase, groups []int, paused []bool) {
	if e.op != nil {
		e.propagateOp(p, groups, paused)
	} else {
		e.propagateSB(p, groups, paused)
	}
}

// propagateOp delivers one pending effector whose origin and destination are
// connected (same partition component, neither paused). A drop leaves the
// effector pending — causal delivery makes op-based loss indistinguishable
// from delay.
func (e *engine) propagateOp(p *Phase, groups []int, paused []bool) {
	if p.DropProb > 0 && e.rng.Intn(100) < p.DropProb {
		return
	}
	type choice struct {
		r  clock.ReplicaID
		id uint64
	}
	var choices []choice
	for _, r := range e.op.Replicas() {
		if paused[int(r)] {
			continue
		}
		for _, l := range e.op.Pending(r) {
			if !e.op.Deliverable(r, l.ID) {
				continue
			}
			if paused[int(l.Origin)] || groups[int(l.Origin)] != groups[int(r)] {
				continue
			}
			choices = append(choices, choice{r, l.ID})
		}
	}
	if len(choices) == 0 {
		return
	}
	c := choices[e.rng.Intn(len(choices))]
	if err := e.op.Deliver(c.r, c.id); err == nil {
		e.observe(c.r, c.id)
	}
}

// propagateSB exchanges state between one connected ordered pair, subject to
// drop (snapshot sent, never received) and duplication (an old snapshot from
// a connected sender is re-delivered; merge idempotence makes this safe and
// turns earlier drops into delays).
func (e *engine) propagateSB(p *Phase, groups []int, paused []bool) {
	type pair struct{ from, to clock.ReplicaID }
	var pairs []pair
	for _, a := range e.sb.Replicas() {
		if paused[int(a)] {
			continue
		}
		for _, b := range e.sb.Replicas() {
			if a == b || paused[int(b)] || groups[int(a)] != groups[int(b)] {
				continue
			}
			pairs = append(pairs, pair{a, b})
		}
	}
	if len(pairs) == 0 {
		return
	}
	pr := pairs[e.rng.Intn(len(pairs))]
	if p.DupProb > 0 && e.rng.Intn(100) < p.DupProb {
		var olds []uint64
		for _, id := range e.sb.Messages() {
			m := e.sb.Message(id)
			from := int(m.From)
			if m.From == pr.to || paused[from] || groups[from] != groups[int(pr.to)] {
				continue
			}
			olds = append(olds, id)
		}
		if len(olds) > 0 {
			id := olds[e.rng.Intn(len(olds))]
			if err := e.sb.Receive(pr.to, id); err == nil {
				e.observeMsg(pr.to, id)
			}
			return
		}
	}
	m, err := e.sb.Send(pr.from)
	if err != nil {
		return
	}
	if p.DropProb > 0 && e.rng.Intn(100) < p.DropProb {
		return
	}
	if err := e.sb.Receive(pr.to, m.ID); err == nil {
		e.observeMsg(pr.to, m.ID)
	}
}

// heal reconnects everything (ending partitions and pauses) and delivers
// every pending message, reporting each delivery to the HLC.
func (e *engine) heal() error {
	if e.op != nil {
		for {
			progress := false
			for _, r := range e.op.Replicas() {
				for {
					delivered := false
					for _, l := range e.op.Pending(r) {
						if !e.op.Deliverable(r, l.ID) {
							continue
						}
						if err := e.op.Deliver(r, l.ID); err != nil {
							return err
						}
						e.observe(r, l.ID)
						delivered = true
						progress = true
						break
					}
					if !delivered {
						break
					}
				}
			}
			if !progress {
				return nil
			}
		}
	}
	rs := e.sb.Replicas()
	for round := 0; round <= len(rs); round++ {
		if e.sb.Converged() {
			return nil
		}
		for _, r := range rs {
			m, err := e.sb.Send(r)
			if err != nil {
				return err
			}
			for _, to := range rs {
				if to == r {
					continue
				}
				if err := e.sb.Receive(to, m.ID); err != nil {
					return err
				}
				e.observeMsg(to, m.ID)
			}
		}
	}
	return nil
}

// observe reports a delivered effector's timestamp to the HLC.
func (e *engine) observe(r clock.ReplicaID, id uint64) {
	if e.hlc == nil {
		return
	}
	if ts, ok := e.ts[id]; ok {
		e.hlc.Observe(r, ts)
	}
}

// observeMsg reports every timestamp carried by a merged state snapshot to
// the HLC.
func (e *engine) observeMsg(r clock.ReplicaID, msgID uint64) {
	if e.hlc == nil {
		return
	}
	m := e.sb.Message(msgID)
	if m == nil {
		return
	}
	for id := range m.Labels {
		if ts, ok := e.ts[id]; ok {
			e.hlc.Observe(r, ts)
		}
	}
}
