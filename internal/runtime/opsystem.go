package runtime

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"ralin/internal/clock"
	"ralin/internal/core"
)

// Config configures a simulated object deployment.
type Config struct {
	// Replicas is the number of replicas (identified 0..Replicas-1).
	Replicas int
	// Object is the object name recorded on labels (may be empty for
	// single-object histories).
	Object string
	// Clock is the timestamp generator; nil means a fresh private counter
	// (the unrestricted composition ⊗). Sharing one generator across several
	// systems implements the shared timestamp generator composition ⊗ts.
	Clock clock.Generator
	// RecordEvents enables the event log consumed by the verification
	// harness. Figure reproduction and benchmarks leave it off.
	RecordEvents bool
	// IDs is the label-identifier source; nil means a fresh private source.
	// Sharing one source across systems keeps identifiers unique in composed
	// histories.
	IDs *clock.IDSource
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Clock == nil {
		c.Clock = clock.NewCounter()
	}
	if c.IDs == nil {
		c.IDs = clock.NewIDSource()
	}
}

// opReplica is the local configuration (L, σ) of one replica.
type opReplica struct {
	state State
	seen  map[uint64]bool
}

// System simulates an operation-based CRDT object following the semantics of
// Figure 7: operations execute their generator (and effector) at the origin
// replica, and effectors are delivered to the other replicas under causal
// delivery.
type System struct {
	typ       OpType
	cfg       Config
	methods   map[string]MethodInfo
	replicas  map[clock.ReplicaID]*opReplica
	hist      *core.History
	effectors map[uint64]Effector
	genSeq    uint64
	events    []Event
	// visScratch buffers the seen-set of the invoking replica so the
	// visibility edges of each new label are inserted in descending
	// identifier order: the maximal seen operations go in first and the
	// history's reachability index reduces every edge they imply to a single
	// bit probe (AddVis skips transitively implied edges). Sorting also makes
	// the recorded direct adjacency deterministic where map iteration order
	// is not.
	visScratch []uint64
}

// NewSystem creates a simulated deployment of the given operation-based CRDT.
func NewSystem(typ OpType, cfg Config) *System {
	cfg.fill()
	s := &System{
		typ:       typ,
		cfg:       cfg,
		methods:   MethodTable(typ.Methods()),
		replicas:  make(map[clock.ReplicaID]*opReplica, cfg.Replicas),
		hist:      core.NewHistory(),
		effectors: make(map[uint64]Effector),
	}
	for i := 0; i < cfg.Replicas; i++ {
		s.replicas[clock.ReplicaID(i)] = &opReplica{state: typ.Init(), seen: make(map[uint64]bool)}
	}
	return s
}

// Type returns the simulated CRDT type.
func (s *System) Type() OpType { return s.typ }

// Replicas returns the replica identifiers in increasing order.
func (s *System) Replicas() []clock.ReplicaID {
	out := make([]clock.ReplicaID, 0, len(s.replicas))
	for r := range s.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Invoke executes method with the given arguments at replica r: the OPERATION
// rule of Figure 7. It returns the operation label (already part of the
// history) or an error when the replica is unknown, the method is unknown, or
// the generator's precondition fails.
func (s *System) Invoke(r clock.ReplicaID, method string, args ...core.Value) (*core.Label, error) {
	rep, ok := s.replicas[r]
	if !ok {
		return nil, fmt.Errorf("%s: unknown replica %s", s.typ.Name(), r)
	}
	info, ok := s.methods[method]
	if !ok {
		return nil, fmt.Errorf("%s: unknown method %q", s.typ.Name(), method)
	}
	ts := clock.Bottom
	if info.GeneratesTimestamp {
		ts = s.cfg.Clock.Next(r)
	}
	ret, eff, err := s.typ.Generate(rep.state, method, args, ts)
	if err != nil {
		return nil, fmt.Errorf("%s.%s at %s: %w", s.typ.Name(), method, r, err)
	}
	if info.Kind != core.KindQuery && eff == nil {
		return nil, fmt.Errorf("%s.%s: non-query method produced no effector", s.typ.Name(), method)
	}
	s.genSeq++
	l := &core.Label{
		ID:     s.cfg.IDs.Next(),
		Object: s.cfg.Object,
		Method: method,
		Args:   append([]core.Value(nil), args...),
		Ret:    ret,
		TS:     ts,
		Kind:   info.Kind,
		Origin: r,
		GenSeq: s.genSeq,
	}
	if err := s.hist.Add(l); err != nil {
		return nil, err
	}
	s.visScratch = AppendSeenDescending(s.visScratch[:0], rep.seen)
	for _, id := range s.visScratch {
		if err := s.hist.AddVis(id, l.ID); err != nil {
			return nil, err
		}
	}
	pre := rep.state
	if eff != nil {
		s.effectors[l.ID] = eff
		rep.state = eff.Apply(rep.state)
	}
	rep.seen[l.ID] = true
	if s.cfg.RecordEvents {
		s.events = append(s.events, Event{
			Kind:     EventGenerator,
			Replica:  r,
			Label:    l,
			Pre:      pre.CloneState(),
			Post:     rep.state.CloneState(),
			GenState: pre.CloneState(),
		})
	}
	return l, nil
}

// AppendSeenDescending appends the identifiers of seen to dst in descending
// order. Identifiers increase monotonically with generation, so descending
// order visits the latest — most likely vis-maximal — seen operations first:
// once their edges are in, History.AddVis disposes of every edge they imply
// with a single reachability bit probe. Allocation-free given capacity in
// dst; shared with the composed-system runtime, which inserts seen-set
// edges the same way.
func AppendSeenDescending(dst []uint64, seen map[uint64]bool) []uint64 {
	for id := range seen {
		dst = append(dst, id)
	}
	slices.Sort(dst)
	slices.Reverse(dst)
	return dst
}

// MustInvoke is Invoke for scripted scenarios where a precondition failure is
// a programming error.
func (s *System) MustInvoke(r clock.ReplicaID, method string, args ...core.Value) *core.Label {
	l, err := s.Invoke(r, method, args...)
	if err != nil {
		panic(err)
	}
	return l
}

// Pending returns the labels whose effectors have not yet been applied at
// replica r, in generation order. Queries have identity effectors and are
// never pending.
func (s *System) Pending(r clock.ReplicaID) []*core.Label {
	rep := s.replicas[r]
	if rep == nil {
		return nil
	}
	var out []*core.Label
	for _, l := range s.hist.Labels() {
		if l.IsQuery() || rep.seen[l.ID] {
			continue
		}
		out = append(out, l)
	}
	return out
}

// Deliverable reports whether the effector of label id can be delivered at
// replica r right now under causal delivery: it has not been applied yet and
// every non-query operation visible to it has already been applied at r.
func (s *System) Deliverable(r clock.ReplicaID, id uint64) bool {
	rep := s.replicas[r]
	l := s.hist.Label(id)
	if rep == nil || l == nil || l.IsQuery() || rep.seen[id] {
		return false
	}
	for _, p := range s.hist.VisibleTo(l) {
		if p.IsQuery() {
			continue
		}
		if !rep.seen[p.ID] {
			return false
		}
	}
	return true
}

// Deliver applies the effector of the operation with the given label
// identifier at replica r: the EFFECTOR rule of Figure 7. It fails when the
// delivery would violate causal delivery or the effector was already applied.
func (s *System) Deliver(r clock.ReplicaID, id uint64) error {
	rep, ok := s.replicas[r]
	if !ok {
		return fmt.Errorf("%s: unknown replica %s", s.typ.Name(), r)
	}
	l := s.hist.Label(id)
	if l == nil {
		return fmt.Errorf("%s: unknown label %d", s.typ.Name(), id)
	}
	if l.IsQuery() {
		return fmt.Errorf("%s: label %v is a query and has no effector to deliver", s.typ.Name(), l)
	}
	if rep.seen[id] {
		return fmt.Errorf("%s: effector of %v already applied at %s", s.typ.Name(), l, r)
	}
	if !s.Deliverable(r, id) {
		return fmt.Errorf("%s: delivering %v at %s violates causal delivery", s.typ.Name(), l, r)
	}
	eff := s.effectors[id]
	pre := rep.state
	rep.state = eff.Apply(rep.state)
	rep.seen[id] = true
	if s.cfg.RecordEvents {
		s.events = append(s.events, Event{
			Kind:    EventEffector,
			Replica: r,
			Label:   l,
			Pre:     pre.CloneState(),
			Post:    rep.state.CloneState(),
		})
	}
	return nil
}

// DeliverAllTo delivers every pending effector to replica r in a causal
// order.
func (s *System) DeliverAllTo(r clock.ReplicaID) error {
	for {
		progressed := false
		for _, l := range s.Pending(r) {
			if s.Deliverable(r, l.ID) {
				if err := s.Deliver(r, l.ID); err != nil {
					return err
				}
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	if rest := s.Pending(r); len(rest) > 0 {
		return fmt.Errorf("%s: %d effectors remain undeliverable at %s", s.typ.Name(), len(rest), r)
	}
	return nil
}

// DeliverAll delivers every pending effector to every replica.
func (s *System) DeliverAll() error {
	for _, r := range s.Replicas() {
		if err := s.DeliverAllTo(r); err != nil {
			return err
		}
	}
	return nil
}

// DeliverRandom delivers one randomly chosen deliverable effector to a
// randomly chosen replica, if any. It reports whether a delivery happened.
func (s *System) DeliverRandom(rng *rand.Rand) bool {
	type choice struct {
		r  clock.ReplicaID
		id uint64
	}
	var choices []choice
	for _, r := range s.Replicas() {
		for _, l := range s.Pending(r) {
			if s.Deliverable(r, l.ID) {
				choices = append(choices, choice{r: r, id: l.ID})
			}
		}
	}
	if len(choices) == 0 {
		return false
	}
	c := choices[rng.Intn(len(choices))]
	if err := s.Deliver(c.r, c.id); err != nil {
		panic(err) // Deliverable was just checked; this is a bug.
	}
	return true
}

// ReplicaState returns a copy of the current state of replica r.
func (s *System) ReplicaState(r clock.ReplicaID) State {
	rep := s.replicas[r]
	if rep == nil {
		return nil
	}
	return rep.state.CloneState()
}

// Seen returns the identifiers of the operations applied (or originated) at
// replica r — the L component of its local configuration.
func (s *System) Seen(r clock.ReplicaID) map[uint64]bool {
	rep := s.replicas[r]
	if rep == nil {
		return nil
	}
	out := make(map[uint64]bool, len(rep.seen))
	for id := range rep.seen {
		out[id] = true
	}
	return out
}

// History returns a copy of the history (L, vis) of the execution so far.
func (s *System) History() *core.History { return s.hist.Clone() }

// EffectorOf returns the effector produced by the operation with the given
// label identifier (nil for queries).
func (s *System) EffectorOf(id uint64) Effector { return s.effectors[id] }

// Events returns the recorded execution events (empty unless RecordEvents was
// set).
func (s *System) Events() []Event { return append([]Event(nil), s.events...) }

// Converged reports whether all replicas have applied all effectors and hold
// equal states — the convergence property of CRDTs after a quiescent period.
func (s *System) Converged() bool {
	var first State
	for _, r := range s.Replicas() {
		if len(s.Pending(r)) > 0 {
			return false
		}
		st := s.replicas[r].state
		if first == nil {
			first = st
			continue
		}
		if !first.EqualState(st) {
			return false
		}
	}
	return true
}
