package runtime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ralin/internal/clock"
)

// randomCounterExecution drives a random op-based counter deployment and
// returns the system (without a final full delivery).
func randomCounterExecution(rng *rand.Rand, replicas, ops int) *System {
	sys := NewSystem(testCounter{}, Config{Replicas: replicas})
	for i := 0; i < ops; i++ {
		r := clock.ReplicaID(rng.Intn(replicas))
		switch rng.Intn(3) {
		case 0:
			sys.MustInvoke(r, "inc")
		case 1:
			sys.MustInvoke(r, "dec")
		default:
			sys.MustInvoke(r, "read")
		}
		if rng.Intn(2) == 0 {
			sys.DeliverRandom(rng)
		}
	}
	return sys
}

func TestOpSystemVisibilityIsCausallyClosed(t *testing.T) {
	// Whatever is visible to an operation is also visible to every operation
	// that sees it (transitivity through replica states under causal
	// delivery).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomCounterExecution(rng, 3, 10)
		h := sys.History()
		for _, a := range h.Labels() {
			for _, b := range h.Labels() {
				for _, c := range h.Labels() {
					if h.Vis(a.ID, b.ID) && h.Vis(b.ID, c.ID) && !h.Vis(a.ID, c.ID) {
						return false
					}
				}
			}
		}
		return h.IsAcyclic()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOpSystemSameReplicaOperationsAreOrdered(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomCounterExecution(rng, 3, 10)
		h := sys.History()
		labels := h.Labels()
		for i := 0; i < len(labels); i++ {
			for j := i + 1; j < len(labels); j++ {
				a, b := labels[i], labels[j]
				if a.Origin == b.Origin && a.GenSeq < b.GenSeq && !h.Vis(a.ID, b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOpSystemConvergenceAfterFullDelivery(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomCounterExecution(rng, 2+rng.Intn(3), 12)
		if err := sys.DeliverAll(); err != nil {
			return false
		}
		return sys.Converged()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOpSystemCounterValueMatchesOperationBalance(t *testing.T) {
	// After convergence, every replica's value equals #inc − #dec: delivery
	// is exactly-once regardless of the random delivery schedule.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomCounterExecution(rng, 3, 15)
		if err := sys.DeliverAll(); err != nil {
			return false
		}
		balance := int64(0)
		for _, l := range sys.History().Labels() {
			switch l.Method {
			case "inc":
				balance++
			case "dec":
				balance--
			}
		}
		for _, r := range sys.Replicas() {
			if got := sys.MustInvoke(r, "read").Ret.(int64); got != balance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOpSystemTimestampsConsistentWithVisibility(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := NewSystem(tsType{}, Config{Replicas: 3})
		for i := 0; i < 10; i++ {
			sys.MustInvoke(clock.ReplicaID(rng.Intn(3)), "op")
			if rng.Intn(2) == 0 {
				sys.DeliverRandom(rng)
			}
		}
		h := sys.History()
		for _, a := range h.Labels() {
			for _, b := range h.Labels() {
				if h.Vis(a.ID, b.ID) && !a.TS.Less(b.TS) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSBSystemMergeToleratesAnyMessagePattern(t *testing.T) {
	// Random sends, duplicate and out-of-order deliveries never lose updates:
	// after a final all-to-all exchange every replica holds the maximum of
	// all written values.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := NewSBSystem(testMaxReg{}, Config{Replicas: 3})
		max := int64(0)
		for i := 0; i < 12; i++ {
			v := int64(rng.Intn(100))
			if v > max {
				max = v
			}
			sys.MustInvoke(clock.ReplicaID(rng.Intn(3)), "write", v)
			for k := 0; k < rng.Intn(3); k++ {
				sys.ExchangeRandom(rng)
			}
		}
		if err := sys.DeliverAll(); err != nil {
			return false
		}
		if !sys.Converged() {
			return false
		}
		for _, r := range sys.Replicas() {
			if sys.MustInvoke(r, "read").Ret.(int64) != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
