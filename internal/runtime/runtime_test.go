package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
)

// --- a minimal op-based counter used only by the runtime tests ---

type ctrState int64

func (s ctrState) CloneState() State       { return s }
func (s ctrState) EqualState(o State) bool { c, ok := o.(ctrState); return ok && c == s }
func (s ctrState) String() string          { return fmt.Sprintf("%d", int64(s)) }

type testCounter struct{}

func (testCounter) Name() string { return "TestCounter" }

func (testCounter) Methods() []MethodInfo {
	return []MethodInfo{
		{Name: "inc", Kind: core.KindUpdate},
		{Name: "dec", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

func (testCounter) Init() State { return ctrState(0) }

func (testCounter) Generate(s State, method string, args []core.Value, ts clock.Timestamp) (core.Value, Effector, error) {
	switch method {
	case "inc":
		return nil, EffectorFunc{Name: "inc", F: func(st State) State { return st.(ctrState) + 1 }}, nil
	case "dec":
		return nil, EffectorFunc{Name: "dec", F: func(st State) State { return st.(ctrState) - 1 }}, nil
	case "read":
		return int64(s.(ctrState)), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown method %q", method)
	}
}

// --- a minimal state-based max register used only by the runtime tests ---

type maxState int64

func (s maxState) CloneState() State       { return s }
func (s maxState) EqualState(o State) bool { m, ok := o.(maxState); return ok && m == s }
func (s maxState) String() string          { return fmt.Sprintf("%d", int64(s)) }

type testMaxReg struct{}

func (testMaxReg) Name() string { return "TestMaxReg" }

func (testMaxReg) Methods() []MethodInfo {
	return []MethodInfo{
		{Name: "write", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

func (testMaxReg) Init() State { return maxState(0) }

func (testMaxReg) Apply(s State, method string, args []core.Value, ts clock.Timestamp, r clock.ReplicaID) (core.Value, State, error) {
	switch method {
	case "write":
		v := args[0].(int64)
		if maxState(v) > s.(maxState) {
			return nil, maxState(v), nil
		}
		return nil, s, nil
	case "read":
		return int64(s.(maxState)), s, nil
	default:
		return nil, nil, fmt.Errorf("unknown method %q", method)
	}
}

func (testMaxReg) Merge(a, b State) State {
	if a.(maxState) > b.(maxState) {
		return a
	}
	return b
}

func (testMaxReg) Leq(a, b State) bool { return a.(maxState) <= b.(maxState) }

// --- operation-based system tests ---

func TestOpSystemLocalExecutionAndVisibility(t *testing.T) {
	s := NewSystem(testCounter{}, Config{Replicas: 2})
	inc := s.MustInvoke(0, "inc")
	read := s.MustInvoke(0, "read")
	if read.Ret != int64(1) {
		t.Fatalf("read at origin must see the local inc, got %v", read.Ret)
	}
	// The other replica has not received the effector yet.
	other := s.MustInvoke(1, "read")
	if other.Ret != int64(0) {
		t.Fatalf("read at the other replica must still be 0, got %v", other.Ret)
	}
	h := s.History()
	if !h.Vis(inc.ID, read.ID) {
		t.Fatal("local inc must be visible to the later local read")
	}
	if h.Vis(inc.ID, other.ID) {
		t.Fatal("undelivered inc must not be visible at the other replica")
	}
}

func TestOpSystemDeliveryAndConvergence(t *testing.T) {
	s := NewSystem(testCounter{}, Config{Replicas: 3})
	s.MustInvoke(0, "inc")
	s.MustInvoke(1, "inc")
	s.MustInvoke(2, "dec")
	if s.Converged() {
		t.Fatal("system must not be converged before delivery")
	}
	if err := s.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if !s.Converged() {
		t.Fatal("system must converge after full delivery")
	}
	for _, r := range s.Replicas() {
		read := s.MustInvoke(r, "read")
		if read.Ret != int64(1) {
			t.Fatalf("replica %s read %v, want 1", r, read.Ret)
		}
	}
}

func TestOpSystemCausalDelivery(t *testing.T) {
	s := NewSystem(testCounter{}, Config{Replicas: 2})
	a := s.MustInvoke(0, "inc")
	b := s.MustInvoke(0, "inc") // causally after a
	// Delivering b before a at replica 1 must be rejected.
	if err := s.Deliver(1, b.ID); err == nil {
		t.Fatal("causal delivery violation must be rejected")
	}
	if !s.Deliverable(1, a.ID) || s.Deliverable(1, b.ID) {
		t.Fatal("Deliverable must respect causal order")
	}
	if err := s.Deliver(1, a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Deliver(1, b.ID); err != nil {
		t.Fatal(err)
	}
	// Re-delivery must be rejected (exactly-once application).
	if err := s.Deliver(1, a.ID); err == nil {
		t.Fatal("double delivery must be rejected")
	}
}

func TestOpSystemDeliverRejectsQueriesAndUnknowns(t *testing.T) {
	s := NewSystem(testCounter{}, Config{Replicas: 2})
	q := s.MustInvoke(0, "read")
	if err := s.Deliver(1, q.ID); err == nil {
		t.Fatal("queries have no effector to deliver")
	}
	if err := s.Deliver(1, 999); err == nil {
		t.Fatal("unknown label must be rejected")
	}
	if err := s.Deliver(99, q.ID); err == nil {
		t.Fatal("unknown replica must be rejected")
	}
	if _, err := s.Invoke(0, "frobnicate"); err == nil {
		t.Fatal("unknown method must be rejected")
	}
	if _, err := s.Invoke(42, "inc"); err == nil {
		t.Fatal("unknown replica must be rejected")
	}
}

func TestOpSystemEventsRecorded(t *testing.T) {
	s := NewSystem(testCounter{}, Config{Replicas: 2, RecordEvents: true})
	s.MustInvoke(0, "inc")
	if err := s.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	if len(events) != 2 {
		t.Fatalf("expected 2 events (generator + effector), got %d", len(events))
	}
	if events[0].Kind != EventGenerator || events[1].Kind != EventEffector {
		t.Fatalf("unexpected event kinds %v %v", events[0].Kind, events[1].Kind)
	}
	if !events[0].Pre.EqualState(ctrState(0)) || !events[0].Post.EqualState(ctrState(1)) {
		t.Fatal("generator event must record pre/post states")
	}
	if !events[1].Post.EqualState(ctrState(1)) {
		t.Fatal("effector event must record the post state")
	}
}

func TestOpSystemDeliverRandomEventuallyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSystem(testCounter{}, Config{Replicas: 3})
	for i := 0; i < 9; i++ {
		s.MustInvoke(clock.ReplicaID(i%3), "inc")
	}
	for s.DeliverRandom(rng) {
	}
	if !s.Converged() {
		t.Fatal("random delivery to fixpoint must converge")
	}
	read := s.MustInvoke(0, "read")
	if read.Ret != int64(9) {
		t.Fatalf("converged value %v, want 9", read.Ret)
	}
}

func TestOpSystemTimestampsMonotonePerHistory(t *testing.T) {
	// A type whose single method generates timestamps.
	s := NewSystem(tsType{}, Config{Replicas: 2})
	a := s.MustInvoke(0, "op")
	if err := s.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	b := s.MustInvoke(1, "op")
	if !a.TS.Less(b.TS) {
		t.Fatalf("timestamp of a later operation must be larger: %v vs %v", a.TS, b.TS)
	}
}

// tsType is a trivial op-based type whose op records nothing but generates a
// timestamp; it exists to test timestamp plumbing.
type tsType struct{}

func (tsType) Name() string { return "TsType" }
func (tsType) Methods() []MethodInfo {
	return []MethodInfo{{Name: "op", Kind: core.KindUpdate, GeneratesTimestamp: true}}
}
func (tsType) Init() State { return ctrState(0) }
func (tsType) Generate(s State, method string, args []core.Value, ts clock.Timestamp) (core.Value, Effector, error) {
	if ts.IsBottom() {
		return nil, nil, fmt.Errorf("expected a timestamp")
	}
	return nil, EffectorFunc{Name: "op", F: func(st State) State { return st }}, nil
}

func TestMethodTable(t *testing.T) {
	tbl := MethodTable(testCounter{}.Methods())
	if len(tbl) != 3 || tbl["inc"].Kind != core.KindUpdate || tbl["read"].Kind != core.KindQuery {
		t.Fatalf("method table wrong: %v", tbl)
	}
}

func TestEventKindString(t *testing.T) {
	if EventGenerator.String() != "generator" || EventEffector.String() != "effector" ||
		EventMerge.String() != "merge" || EventKind(9).String() != "unknown" {
		t.Fatal("event kind rendering wrong")
	}
}

// --- state-based system tests ---

func TestSBSystemLocalAndMerge(t *testing.T) {
	s := NewSBSystem(testMaxReg{}, Config{Replicas: 2})
	s.MustInvoke(0, "write", int64(5))
	s.MustInvoke(1, "write", int64(3))
	r0 := s.MustInvoke(0, "read")
	r1 := s.MustInvoke(1, "read")
	if r0.Ret != int64(5) || r1.Ret != int64(3) {
		t.Fatalf("local reads wrong: %v %v", r0.Ret, r1.Ret)
	}
	if err := s.Broadcast(0); err != nil {
		t.Fatal(err)
	}
	r1b := s.MustInvoke(1, "read")
	if r1b.Ret != int64(5) {
		t.Fatalf("after merge replica 1 must read 5, got %v", r1b.Ret)
	}
	// Visibility: replica 1's later read must see replica 0's write.
	h := s.History()
	w0 := h.Labels()[0]
	if !h.Vis(w0.ID, r1b.ID) {
		t.Fatal("merged write must become visible")
	}
}

func TestSBSystemDuplicateAndReorderedMessages(t *testing.T) {
	s := NewSBSystem(testMaxReg{}, Config{Replicas: 3})
	s.MustInvoke(0, "write", int64(7))
	m1, err := s.Send(0)
	if err != nil {
		t.Fatal(err)
	}
	s.MustInvoke(0, "write", int64(9))
	m2, err := s.Send(0)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the newer message first, then the older one twice: the state
	// must remain the maximum.
	for _, id := range []uint64{m2.ID, m1.ID, m1.ID} {
		if err := s.Receive(1, id); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MustInvoke(1, "read").Ret; got != int64(9) {
		t.Fatalf("stale and duplicate messages must not regress the state, got %v", got)
	}
	if err := s.Receive(1, 424242); err == nil {
		t.Fatal("unknown message must be rejected")
	}
	if err := s.Receive(99, m1.ID); err == nil {
		t.Fatal("unknown replica must be rejected")
	}
}

func TestSBSystemDeliverAllConverges(t *testing.T) {
	s := NewSBSystem(testMaxReg{}, Config{Replicas: 4})
	for i := 0; i < 4; i++ {
		s.MustInvoke(clock.ReplicaID(i), "write", int64(i*10))
	}
	if s.Converged() {
		t.Fatal("must not be converged before exchange")
	}
	if err := s.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if !s.Converged() {
		t.Fatal("must be converged after DeliverAll")
	}
	for _, r := range s.Replicas() {
		if got := s.MustInvoke(r, "read").Ret; got != int64(30) {
			t.Fatalf("replica %s read %v, want 30", r, got)
		}
	}
}

func TestSBSystemExchangeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSBSystem(testMaxReg{}, Config{Replicas: 3})
	s.MustInvoke(0, "write", int64(11))
	for i := 0; i < 50; i++ {
		s.ExchangeRandom(rng)
	}
	for _, r := range s.Replicas() {
		if got := s.MustInvoke(r, "read").Ret; got != int64(11) {
			t.Fatalf("replica %s read %v, want 11", r, got)
		}
	}
}

func TestSBSystemEventsRecorded(t *testing.T) {
	s := NewSBSystem(testMaxReg{}, Config{Replicas: 2, RecordEvents: true})
	s.MustInvoke(0, "write", int64(2))
	if err := s.Broadcast(0); err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	if len(events) != 2 {
		t.Fatalf("expected 2 events, got %d", len(events))
	}
	if events[0].Kind != EventGenerator || events[1].Kind != EventMerge {
		t.Fatalf("unexpected event kinds: %v %v", events[0].Kind, events[1].Kind)
	}
	if events[1].Incoming == nil || !events[1].Incoming.EqualState(maxState(2)) {
		t.Fatal("merge event must record the incoming state")
	}
}

func TestSBSystemErrors(t *testing.T) {
	s := NewSBSystem(testMaxReg{}, Config{Replicas: 2})
	if _, err := s.Invoke(5, "write", int64(1)); err == nil {
		t.Fatal("unknown replica must be rejected")
	}
	if _, err := s.Invoke(0, "nope"); err == nil {
		t.Fatal("unknown method must be rejected")
	}
	if _, err := s.Send(9); err == nil {
		t.Fatal("unknown replica must be rejected on send")
	}
	if s.ReplicaState(9) != nil || s.Seen(9) != nil {
		t.Fatal("unknown replica state must be nil")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := NewSystem(testCounter{}, Config{})
	if len(s.Replicas()) != 2 {
		t.Fatal("default replica count must be 2")
	}
	if s.ReplicaState(0) == nil || s.ReplicaState(5) != nil {
		t.Fatal("replica state lookup wrong")
	}
	if s.Seen(5) != nil {
		t.Fatal("unknown replica seen set must be nil")
	}
}
