// Package runtime implements the operational semantics of CRDT objects used
// throughout the paper: the operation-based semantics of Figure 7 (generators,
// effectors, causal delivery, visibility) and the state-based semantics of
// Appendix D (local updates, state-carrying messages, merge). The runtimes are
// in-process simulators; every trace they produce is a trace of the paper's
// labelled transition systems.
package runtime

import (
	"ralin/internal/clock"
	"ralin/internal/core"
)

// State is a replica state σ. Implementations are concrete per CRDT; the
// runtime only needs to copy, compare and print them.
type State interface {
	// CloneState returns an independent deep copy of the state.
	CloneState() State
	// EqualState reports whether two states are equal.
	EqualState(State) bool
	// String renders the state for diagnostics and figures.
	String() string
}

// Effector is a replica state transformer δ produced by the generator of an
// operation and applied at every replica (operation-based CRDTs).
type Effector interface {
	// Apply returns the state resulting from applying the effector to s. It
	// must not modify s.
	Apply(s State) State
	// String renders the effector for diagnostics.
	String() string
}

// EffectorFunc adapts a function and a description to the Effector interface.
type EffectorFunc struct {
	// Name describes the effector, for example "eff-addAfter(a,3@r1,b)".
	Name string
	// F is the state transformer.
	F func(State) State
}

// Apply applies the wrapped function.
func (e EffectorFunc) Apply(s State) State { return e.F(s) }

// String returns the description.
func (e EffectorFunc) String() string { return e.Name }

// MethodInfo describes one method of a CRDT object's interface.
type MethodInfo struct {
	// Name is the method name.
	Name string
	// Kind classifies the method as query, update or query-update
	// (Section 3.1).
	Kind core.Kind
	// GeneratesTimestamp reports whether invocations of the method consume a
	// fresh timestamp from the object's timestamp generator (also used as the
	// unique identifier for methods such as OR-Set add).
	GeneratesTimestamp bool
}

// OpType is an operation-based CRDT object type: the payload declaration and
// the generator/effector code of Listings 1–5 of the paper.
type OpType interface {
	// Name identifies the data type (for example "RGA").
	Name() string
	// Methods lists the interface of the data type.
	Methods() []MethodInfo
	// Init returns the initial replica state σ0.
	Init() State
	// Generate executes the generator of method with the given arguments on
	// the origin replica state s. ts is the fresh timestamp allocated for the
	// invocation (⊥ for methods that do not generate one). It returns the
	// operation's return value and the effector to apply at every replica
	// (nil for queries). A precondition violation is reported as an error.
	// Generate must not modify s.
	Generate(s State, method string, args []core.Value, ts clock.Timestamp) (ret core.Value, eff Effector, err error)
}

// SBType is a state-based CRDT object type following Listing 6: methods
// execute locally and replicas exchange states, merged through the join
// semilattice's least upper bound.
type SBType interface {
	// Name identifies the data type (for example "PN-Counter").
	Name() string
	// Methods lists the interface of the data type.
	Methods() []MethodInfo
	// Init returns the initial replica state σ0.
	Init() State
	// Apply executes method at replica r on state s and returns the return
	// value and the successor state. ts is a fresh timestamp for methods that
	// generate one (⊥ otherwise). Apply must not modify s.
	Apply(s State, method string, args []core.Value, ts clock.Timestamp, r clock.ReplicaID) (ret core.Value, next State, err error)
	// Merge returns the least upper bound of the two states.
	Merge(a, b State) State
	// Leq reports whether a ≤ b in the join semilattice (the compare method
	// of Listing 6).
	Leq(a, b State) bool
}

// MethodTable indexes a method list by name.
func MethodTable(ms []MethodInfo) map[string]MethodInfo {
	t := make(map[string]MethodInfo, len(ms))
	for _, m := range ms {
		t[m.Name] = m
	}
	return t
}

// EventKind distinguishes the kinds of recorded execution events.
type EventKind int

const (
	// EventGenerator records the execution of an operation's generator (and,
	// for op-based objects, the immediate application of its effector) at the
	// origin replica.
	EventGenerator EventKind = iota
	// EventEffector records the delivery of an effector at a non-origin
	// replica (op-based objects).
	EventEffector
	// EventMerge records the application of a received state message
	// (state-based objects).
	EventMerge
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EventGenerator:
		return "generator"
	case EventEffector:
		return "effector"
	case EventMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// Event is one recorded step of an execution. Pre and Post are deep copies of
// the replica state before and after the step; Incoming is the merged remote
// state for EventMerge events.
type Event struct {
	Kind    EventKind
	Replica clock.ReplicaID
	// Label is the operation label for generator and effector events, and the
	// nil label for merge events.
	Label *core.Label
	// Pre is the replica state before the step.
	Pre State
	// Post is the replica state after the step.
	Post State
	// Incoming is the remote state being merged (merge events only).
	Incoming State
	// GenState is, for generator events, the origin state the generator read
	// (identical to Pre). It is kept separately for readability in verify.
	GenState State
}
