package runtime

import (
	"fmt"
	"math/rand"
	"sort"

	"ralin/internal/clock"
	"ralin/internal/core"
)

// Message is a state-carrying message of a state-based CRDT: the local
// configuration (L, σ) of the sending replica at the time of sending
// (Appendix D). Messages may be delivered to any replica, any number of
// times, in any order, or not at all.
type Message struct {
	// ID identifies the message.
	ID uint64
	// From is the sending replica.
	From clock.ReplicaID
	// Labels are the identifiers of the operations the sender had seen.
	Labels map[uint64]bool
	// State is a snapshot of the sender's state.
	State State
}

// SBSystem simulates a state-based CRDT object following the semantics of
// Appendix D: methods execute locally, replicas exchange state snapshots, and
// received snapshots are merged with the local state.
type SBSystem struct {
	typ      SBType
	cfg      Config
	methods  map[string]MethodInfo
	replicas map[clock.ReplicaID]*opReplica
	hist     *core.History
	messages map[uint64]*Message
	genSeq   uint64
	nextMsg  uint64
	events   []Event
	// visScratch plays the same role as System.visScratch: seen-set edges are
	// inserted in descending identifier order so the reachability index skips
	// the implied ones with one bit probe each.
	visScratch []uint64
}

// NewSBSystem creates a simulated deployment of the given state-based CRDT.
func NewSBSystem(typ SBType, cfg Config) *SBSystem {
	cfg.fill()
	s := &SBSystem{
		typ:      typ,
		cfg:      cfg,
		methods:  MethodTable(typ.Methods()),
		replicas: make(map[clock.ReplicaID]*opReplica, cfg.Replicas),
		hist:     core.NewHistory(),
		messages: make(map[uint64]*Message),
	}
	for i := 0; i < cfg.Replicas; i++ {
		s.replicas[clock.ReplicaID(i)] = &opReplica{state: typ.Init(), seen: make(map[uint64]bool)}
	}
	return s
}

// Type returns the simulated CRDT type.
func (s *SBSystem) Type() SBType { return s.typ }

// Replicas returns the replica identifiers in increasing order.
func (s *SBSystem) Replicas() []clock.ReplicaID {
	out := make([]clock.ReplicaID, 0, len(s.replicas))
	for r := range s.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Invoke executes method with the given arguments at replica r: the OPERATION
// rule of the state-based semantics.
func (s *SBSystem) Invoke(r clock.ReplicaID, method string, args ...core.Value) (*core.Label, error) {
	rep, ok := s.replicas[r]
	if !ok {
		return nil, fmt.Errorf("%s: unknown replica %s", s.typ.Name(), r)
	}
	info, ok := s.methods[method]
	if !ok {
		return nil, fmt.Errorf("%s: unknown method %q", s.typ.Name(), method)
	}
	ts := clock.Bottom
	if info.GeneratesTimestamp {
		ts = s.cfg.Clock.Next(r)
	}
	ret, next, err := s.typ.Apply(rep.state, method, args, ts, r)
	if err != nil {
		return nil, fmt.Errorf("%s.%s at %s: %w", s.typ.Name(), method, r, err)
	}
	s.genSeq++
	l := &core.Label{
		ID:     s.cfg.IDs.Next(),
		Object: s.cfg.Object,
		Method: method,
		Args:   append([]core.Value(nil), args...),
		Ret:    ret,
		TS:     ts,
		Kind:   info.Kind,
		Origin: r,
		GenSeq: s.genSeq,
	}
	if err := s.hist.Add(l); err != nil {
		return nil, err
	}
	s.visScratch = AppendSeenDescending(s.visScratch[:0], rep.seen)
	for _, id := range s.visScratch {
		if err := s.hist.AddVis(id, l.ID); err != nil {
			return nil, err
		}
	}
	pre := rep.state
	rep.state = next
	rep.seen[l.ID] = true
	if s.cfg.RecordEvents {
		s.events = append(s.events, Event{
			Kind:     EventGenerator,
			Replica:  r,
			Label:    l,
			Pre:      pre.CloneState(),
			Post:     rep.state.CloneState(),
			GenState: pre.CloneState(),
		})
	}
	return l, nil
}

// MustInvoke is Invoke for scripted scenarios.
func (s *SBSystem) MustInvoke(r clock.ReplicaID, method string, args ...core.Value) *core.Label {
	l, err := s.Invoke(r, method, args...)
	if err != nil {
		panic(err)
	}
	return l
}

// Send snapshots the local configuration of replica r into a new message
// (the GENERATE rule). The message stays available for delivery any number of
// times.
func (s *SBSystem) Send(r clock.ReplicaID) (*Message, error) {
	rep, ok := s.replicas[r]
	if !ok {
		return nil, fmt.Errorf("%s: unknown replica %s", s.typ.Name(), r)
	}
	s.nextMsg++
	labels := make(map[uint64]bool, len(rep.seen))
	for id := range rep.seen {
		labels[id] = true
	}
	m := &Message{ID: s.nextMsg, From: r, Labels: labels, State: rep.state.CloneState()}
	s.messages[m.ID] = m
	return m, nil
}

// Receive merges the message with the given identifier into replica r (the
// APPLY rule). Receiving the same message several times is allowed; the merge
// must be idempotent.
func (s *SBSystem) Receive(r clock.ReplicaID, msgID uint64) error {
	rep, ok := s.replicas[r]
	if !ok {
		return fmt.Errorf("%s: unknown replica %s", s.typ.Name(), r)
	}
	m, ok := s.messages[msgID]
	if !ok {
		return fmt.Errorf("%s: unknown message %d", s.typ.Name(), msgID)
	}
	pre := rep.state
	rep.state = s.typ.Merge(rep.state, m.State.CloneState())
	for id := range m.Labels {
		rep.seen[id] = true
	}
	if s.cfg.RecordEvents {
		s.events = append(s.events, Event{
			Kind:     EventMerge,
			Replica:  r,
			Pre:      pre.CloneState(),
			Post:     rep.state.CloneState(),
			Incoming: m.State.CloneState(),
		})
	}
	return nil
}

// Messages returns the identifiers of all messages sent so far, in sending
// order.
func (s *SBSystem) Messages() []uint64 {
	out := make([]uint64, 0, len(s.messages))
	for id := range s.messages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Message returns the message with the given identifier, or nil.
func (s *SBSystem) Message(id uint64) *Message { return s.messages[id] }

// Broadcast sends the state of replica r and delivers it to every other
// replica.
func (s *SBSystem) Broadcast(r clock.ReplicaID) error {
	m, err := s.Send(r)
	if err != nil {
		return err
	}
	for _, other := range s.Replicas() {
		if other == r {
			continue
		}
		if err := s.Receive(other, m.ID); err != nil {
			return err
		}
	}
	return nil
}

// DeliverAll repeatedly exchanges states between all replicas until no
// replica state changes, bringing the system to a converged configuration.
func (s *SBSystem) DeliverAll() error {
	for round := 0; round <= len(s.replicas); round++ {
		changed := false
		for _, r := range s.Replicas() {
			before := make(map[clock.ReplicaID]State)
			for _, other := range s.Replicas() {
				before[other] = s.replicas[other].state
			}
			if err := s.Broadcast(r); err != nil {
				return err
			}
			for _, other := range s.Replicas() {
				if !before[other].EqualState(s.replicas[other].state) {
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// ExchangeRandom performs one random communication step (a randomly chosen
// replica sends its state to another randomly chosen replica, possibly
// re-delivering an old message). It reports whether anything happened.
func (s *SBSystem) ExchangeRandom(rng *rand.Rand) bool {
	reps := s.Replicas()
	if len(reps) < 2 {
		return false
	}
	from := reps[rng.Intn(len(reps))]
	to := reps[rng.Intn(len(reps))]
	for to == from {
		to = reps[rng.Intn(len(reps))]
	}
	// With probability 1/4, re-deliver an old message instead of a fresh one
	// to exercise duplication and reordering tolerance.
	if ids := s.Messages(); len(ids) > 0 && rng.Intn(4) == 0 {
		if err := s.Receive(to, ids[rng.Intn(len(ids))]); err != nil {
			panic(err)
		}
		return true
	}
	m, err := s.Send(from)
	if err != nil {
		panic(err)
	}
	if err := s.Receive(to, m.ID); err != nil {
		panic(err)
	}
	return true
}

// ReplicaState returns a copy of the current state of replica r.
func (s *SBSystem) ReplicaState(r clock.ReplicaID) State {
	rep := s.replicas[r]
	if rep == nil {
		return nil
	}
	return rep.state.CloneState()
}

// Seen returns the identifiers of the operations visible at replica r.
func (s *SBSystem) Seen(r clock.ReplicaID) map[uint64]bool {
	rep := s.replicas[r]
	if rep == nil {
		return nil
	}
	out := make(map[uint64]bool, len(rep.seen))
	for id := range rep.seen {
		out[id] = true
	}
	return out
}

// History returns a copy of the history (L, vis) of the execution so far.
func (s *SBSystem) History() *core.History { return s.hist.Clone() }

// Events returns the recorded execution events (empty unless RecordEvents was
// set).
func (s *SBSystem) Events() []Event { return append([]Event(nil), s.events...) }

// Converged reports whether all replicas have seen every state-modifying
// operation and hold equal states. Queries are local and do not count against
// convergence.
func (s *SBSystem) Converged() bool {
	var updates []uint64
	for _, l := range s.hist.Labels() {
		if !l.IsQuery() {
			updates = append(updates, l.ID)
		}
	}
	var first State
	for _, r := range s.Replicas() {
		rep := s.replicas[r]
		for _, id := range updates {
			if !rep.seen[id] {
				return false
			}
		}
		if first == nil {
			first = rep.state
			continue
		}
		if !first.EqualState(rep.state) {
			return false
		}
	}
	return true
}
