// Package compose implements the object compositions of Section 5: the
// unrestricted composition ⊗, in which every object generates timestamps
// independently, and the shared timestamp generator composition ⊗ts, in which
// all objects draw timestamps from one generator. It builds composed
// histories (with the cross-object visibility relation), composed sequential
// specifications (interleavings of the per-object specifications), composed
// query-update rewritings, and helpers for checking whether per-object
// RA-linearizations can be combined into a global one (the Figure 9 and
// Figure 10 experiments).
package compose

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
)

// Mode selects the composition operator.
type Mode int

const (
	// Unrestricted is the ⊗ composition of Section 5.1: independent
	// timestamp generators.
	Unrestricted Mode = iota
	// SharedTimestamps is the ⊗ts composition of Section 5.3: one timestamp
	// generator shared by every object.
	SharedTimestamps
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Unrestricted:
		return "⊗"
	case SharedTimestamps:
		return "⊗ts"
	default:
		return "?"
	}
}

// Object names one component of a composition.
type Object struct {
	// Name is the object name recorded on its labels (for example "o1").
	Name string
	// Descriptor is the CRDT type of the object.
	Descriptor crdt.Descriptor
	// Clock optionally overrides the object's timestamp generator in the
	// unrestricted composition (used to reproduce scripted figures). It is
	// ignored under SharedTimestamps.
	Clock clock.Generator
}

// objectRuntime is the per-object deployment.
type objectRuntime struct {
	desc crdt.Descriptor
	op   *runtime.System
	sb   *runtime.SBSystem
}

func (o *objectRuntime) seen(r clock.ReplicaID) map[uint64]bool {
	if o.op != nil {
		return o.op.Seen(r)
	}
	return o.sb.Seen(r)
}

// System is a composed deployment: several CRDT objects replicated over the
// same set of replicas.
type System struct {
	mode     Mode
	replicas int
	order    []string
	objects  map[string]*objectRuntime
	hist     *core.History
	genSeq   uint64
	// visScratch buffers the global seen-set per Invoke (see
	// runtime.AppendSeenDescending).
	visScratch []uint64
}

// NewSystem builds a composed deployment of the given objects over the given
// number of replicas.
func NewSystem(mode Mode, replicas int, objects ...Object) (*System, error) {
	if replicas <= 0 {
		replicas = 2
	}
	if len(objects) == 0 {
		return nil, fmt.Errorf("compose: no objects")
	}
	ids := clock.NewIDSource()
	shared := clock.NewCounter()
	s := &System{
		mode:     mode,
		replicas: replicas,
		objects:  make(map[string]*objectRuntime, len(objects)),
		hist:     core.NewHistory(),
	}
	for _, o := range objects {
		if o.Name == "" {
			return nil, fmt.Errorf("compose: object without a name")
		}
		if _, dup := s.objects[o.Name]; dup {
			return nil, fmt.Errorf("compose: duplicate object name %q", o.Name)
		}
		gen := o.Clock
		if mode == SharedTimestamps {
			gen = shared
		} else if gen == nil {
			gen = clock.NewCounter()
		}
		cfg := runtime.Config{Replicas: replicas, Object: o.Name, Clock: gen, IDs: ids}
		rt := &objectRuntime{desc: o.Descriptor}
		switch {
		case o.Descriptor.OpType != nil:
			rt.op = runtime.NewSystem(o.Descriptor.OpType, cfg)
		case o.Descriptor.SBType != nil:
			rt.sb = runtime.NewSBSystem(o.Descriptor.SBType, cfg)
		default:
			return nil, fmt.Errorf("compose: object %q has no implementation", o.Name)
		}
		s.objects[o.Name] = rt
		s.order = append(s.order, o.Name)
	}
	return s, nil
}

// MustNewSystem is NewSystem for scripted scenarios.
func MustNewSystem(mode Mode, replicas int, objects ...Object) *System {
	s, err := NewSystem(mode, replicas, objects...)
	if err != nil {
		panic(err)
	}
	return s
}

// Mode returns the composition mode.
func (s *System) Mode() Mode { return s.mode }

// Objects returns the object names in declaration order.
func (s *System) Objects() []string { return append([]string(nil), s.order...) }

// Replicas returns the replica identifiers.
func (s *System) Replicas() []clock.ReplicaID {
	out := make([]clock.ReplicaID, s.replicas)
	for i := range out {
		out[i] = clock.ReplicaID(i)
	}
	return out
}

// Descriptor returns the descriptor of the named object.
func (s *System) Descriptor(object string) (crdt.Descriptor, error) {
	rt, ok := s.objects[object]
	if !ok {
		return crdt.Descriptor{}, fmt.Errorf("compose: unknown object %q", object)
	}
	return rt.desc, nil
}

// globalSeen returns the identifiers of all operations (of every object) whose
// effect has been applied at replica r.
func (s *System) globalSeen(r clock.ReplicaID) map[uint64]bool {
	out := map[uint64]bool{}
	for _, name := range s.order {
		for id := range s.objects[name].seen(r) {
			out[id] = true
		}
	}
	return out
}

// Invoke performs one operation on the named object at replica r and records
// the cross-object visibility edges of the composed history.
func (s *System) Invoke(object string, r clock.ReplicaID, method string, args ...core.Value) (*core.Label, error) {
	rt, ok := s.objects[object]
	if !ok {
		return nil, fmt.Errorf("compose: unknown object %q", object)
	}
	before := s.globalSeen(r)
	var l *core.Label
	var err error
	if rt.op != nil {
		l, err = rt.op.Invoke(r, method, args...)
	} else {
		l, err = rt.sb.Invoke(r, method, args...)
	}
	if err != nil {
		return nil, err
	}
	s.genSeq++
	g := l.Clone()
	g.GenSeq = s.genSeq
	if err := s.hist.Add(g); err != nil {
		return nil, err
	}
	// Descending identifier order inserts the most recent — most likely
	// vis-maximal — seen operations first, so the history's reachability
	// index reduces every transitively implied edge to one bit probe (and
	// the recorded direct adjacency is deterministic).
	s.visScratch = runtime.AppendSeenDescending(s.visScratch[:0], before)
	for _, id := range s.visScratch {
		if err := s.hist.AddVis(id, g.ID); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustInvoke is Invoke for scripted scenarios.
func (s *System) MustInvoke(object string, r clock.ReplicaID, method string, args ...core.Value) *core.Label {
	l, err := s.Invoke(object, r, method, args...)
	if err != nil {
		panic(err)
	}
	return l
}

// Deliver delivers the effector of the operation with the given label to
// replica r (operation-based objects) — the label must belong to object.
func (s *System) Deliver(object string, r clock.ReplicaID, id uint64) error {
	rt, ok := s.objects[object]
	if !ok {
		return fmt.Errorf("compose: unknown object %q", object)
	}
	if rt.op == nil {
		return fmt.Errorf("compose: object %q is state-based; use Broadcast", object)
	}
	return rt.op.Deliver(r, id)
}

// Broadcast propagates the state of replica r of the named state-based object
// to every other replica.
func (s *System) Broadcast(object string, r clock.ReplicaID) error {
	rt, ok := s.objects[object]
	if !ok {
		return fmt.Errorf("compose: unknown object %q", object)
	}
	if rt.sb == nil {
		return fmt.Errorf("compose: object %q is operation-based; use Deliver", object)
	}
	return rt.sb.Broadcast(r)
}

// DeliverAll brings every object of the composition to a converged state.
func (s *System) DeliverAll() error {
	for _, name := range s.order {
		rt := s.objects[name]
		if rt.op != nil {
			if err := rt.op.DeliverAll(); err != nil {
				return err
			}
			continue
		}
		if err := rt.sb.DeliverAll(); err != nil {
			return err
		}
	}
	return nil
}

// DeliverRandom performs one random propagation step on a random object.
func (s *System) DeliverRandom(rng *rand.Rand) bool {
	names := append([]string(nil), s.order...)
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	for _, name := range names {
		rt := s.objects[name]
		if rt.op != nil {
			if rt.op.DeliverRandom(rng) {
				return true
			}
			continue
		}
		if rt.sb.ExchangeRandom(rng) {
			return true
		}
	}
	return false
}

// RandomOp performs one random operation on a random object.
func (s *System) RandomOp(rng *rand.Rand, elems []string) (*core.Label, error) {
	name := s.order[rng.Intn(len(s.order))]
	rt := s.objects[name]
	inv := &composedInvoker{sys: s, object: name, rt: rt}
	return rt.desc.RandomOp(rng, inv, elems)
}

// composedInvoker adapts one object of the composition to the crdt.Invoker
// interface so the per-CRDT workload generators can be reused.
type composedInvoker struct {
	sys    *System
	object string
	rt     *objectRuntime
}

func (c *composedInvoker) Replicas() []clock.ReplicaID { return c.sys.Replicas() }

func (c *composedInvoker) ReplicaState(r clock.ReplicaID) runtime.State {
	if c.rt.op != nil {
		return c.rt.op.ReplicaState(r)
	}
	return c.rt.sb.ReplicaState(r)
}

func (c *composedInvoker) Invoke(r clock.ReplicaID, method string, args ...core.Value) (*core.Label, error) {
	return c.sys.Invoke(c.object, r, method, args...)
}

// History returns the composed history: all labels of all objects with the
// global visibility relation.
func (s *System) History() *core.History { return s.hist.Clone() }

// Converged reports whether every object of the composition has converged.
func (s *System) Converged() bool {
	for _, name := range s.order {
		rt := s.objects[name]
		if rt.op != nil {
			if !rt.op.Converged() {
				return false
			}
			continue
		}
		if !rt.sb.Converged() {
			return false
		}
	}
	return true
}

// Spec is the composed sequential specification Spec1 ⊗ Spec2 ⊗ …: a sequence
// is admitted when its projection onto each object's labels is admitted by
// that object's specification (Section 5.1). The abstract state is the tuple
// of per-object abstract states.
type Spec struct {
	names []string
	specs map[string]core.Spec
}

// NewSpec builds the composed specification of the given objects.
func NewSpec(objects ...Object) *Spec {
	s := &Spec{specs: map[string]core.Spec{}}
	for _, o := range objects {
		s.names = append(s.names, o.Name)
		s.specs[o.Name] = o.Descriptor.Spec
	}
	sort.Strings(s.names)
	return s
}

// SpecOf builds the composed specification of an existing composed system.
func SpecOf(sys *System) *Spec {
	s := &Spec{specs: map[string]core.Spec{}}
	for _, name := range sys.Objects() {
		s.names = append(s.names, name)
		s.specs[name] = sys.objects[name].desc.Spec
	}
	sort.Strings(s.names)
	return s
}

// Name identifies the composed specification.
func (s *Spec) Name() string {
	parts := make([]string, len(s.names))
	for i, n := range s.names {
		parts[i] = s.specs[n].Name()
	}
	return strings.Join(parts, " ⊗ ")
}

// ProductState is the composed abstract state: one component per object.
type ProductState map[string]core.AbsState

// CloneAbs deep-copies every component.
func (p ProductState) CloneAbs() core.AbsState {
	c := make(ProductState, len(p))
	for k, v := range p {
		c[k] = v.CloneAbs()
	}
	return c
}

// EqualAbs compares component-wise.
func (p ProductState) EqualAbs(o core.AbsState) bool {
	q, ok := o.(ProductState)
	if !ok || len(p) != len(q) {
		return false
	}
	for k, v := range p {
		w, ok := q[k]
		if !ok || !v.EqualAbs(w) {
			return false
		}
	}
	return true
}

// String renders the components in name order.
func (p ProductState) String() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%s", n, p[n])
	}
	return "⟨" + strings.Join(parts, " ") + "⟩"
}

// StateKey returns the canonical key (component keys in name order), enabling
// search memoization. A composition is keyable only when every component is.
func (p ProductState) StateKey() (string, bool) {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		keyer, ok := p[n].(core.StateKeyer)
		if !ok {
			return "", false
		}
		key, ok := keyer.StateKey()
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "%s=%q;", n, key)
	}
	return b.String(), true
}

// Init returns the tuple of initial states.
func (s *Spec) Init() core.AbsState {
	p := ProductState{}
	for name, sub := range s.specs {
		p[name] = sub.Init()
	}
	return p
}

// Step dispatches the label to its object's specification.
func (s *Spec) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return s.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path): the touched component's successors are
// stepped through its own specification's fast path directly into dst's tail
// and then wrapped into product states in place, so no intermediate slice is
// allocated per transition.
func (s *Spec) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	p, ok := phi.(ProductState)
	if !ok {
		return dst
	}
	sub, ok := s.specs[l.Object]
	if !ok {
		return dst
	}
	base := len(dst)
	dst = core.StepInto(sub, dst, p[l.Object], l)
	for i := base; i < len(dst); i++ {
		np := p.CloneAbs().(ProductState)
		np[l.Object] = dst[i]
		dst[i] = np
	}
	return dst
}

// composedRewriting rewrites each label by its own object's rewriting. It is
// a comparable value carrying the system it was built for — *not* a closure —
// so an engine session's rewrite cache can key on it without aliasing the
// rewritings of two different composed systems (same function body, different
// per-system object tables).
type composedRewriting struct {
	sys *System
}

// Rewrite implements core.Rewriting.
func (r composedRewriting) Rewrite(l *core.Label) ([]*core.Label, error) {
	var rw core.Rewriting
	if obj, ok := r.sys.objects[l.Object]; ok {
		rw = obj.desc.Rewriting
	}
	if rw == nil {
		rw = core.IdentityRewriting{}
	}
	return rw.Rewrite(l)
}

// RewritingOf is the composed query-update rewriting: each label is rewritten
// by its own object's rewriting.
func RewritingOf(sys *System) core.Rewriting {
	return composedRewriting{sys: sys}
}

// CheckOptions returns checker options for a composed system: the composed
// rewriting, both constructive strategies and a bounded exhaustive fallback.
func CheckOptions(sys *System) core.CheckOptions {
	return core.CheckOptions{
		Rewriting:     RewritingOf(sys),
		Strategies:    []core.Strategy{core.StrategyExecutionOrder, core.StrategyTimestampOrder},
		Exhaustive:    true,
		MaxExtensions: 200000,
	}
}

// CombinePerObject reports whether the given per-object linearizations can be
// combined into a global RA-linearization of the (already rewritten) history
// h: a linear extension of the visibility relation whose projection onto each
// object equals the given sequence and which satisfies Definition 3.5 for the
// composed specification. It is used to reproduce the Figure 9 discussion.
func CombinePerObject(h *core.History, perObject map[string][]*core.Label, spec core.Spec) (ok bool, witness []*core.Label, err error) {
	// Add the per-object orders as extra ordering constraints and enumerate
	// the linear extensions of the augmented relation; each candidate is then
	// validated against the original history.
	augmented := h.Clone()
	for obj, seq := range perObject {
		for i := 0; i+1 < len(seq); i++ {
			from, to := seq[i], seq[i+1]
			if augmented.Label(from.ID) == nil || augmented.Label(to.ID) == nil {
				return false, nil, fmt.Errorf("compose: per-object sequence of %q mentions a label not in the history", obj)
			}
			if augmented.Vis(from.ID, to.ID) {
				continue
			}
			if aerr := augmented.AddVis(from.ID, to.ID); aerr != nil {
				// The per-object order contradicts the visibility relation:
				// no combination exists.
				return false, nil, nil
			}
		}
	}
	found := false
	var lin []*core.Label
	core.LinearExtensions(augmented, 0, func(seq []*core.Label) bool {
		// Map back to the original history's labels.
		orig := make([]*core.Label, len(seq))
		for i, l := range seq {
			orig[i] = h.Label(l.ID)
		}
		if core.IsRALinearization(h, orig, spec) == nil {
			found = true
			lin = orig
			return false
		}
		return true
	})
	return found, lin, nil
}
