package compose

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt/counter"
	"ralin/internal/crdt/orset"
	"ralin/internal/crdt/pncounter"
	"ralin/internal/crdt/rga"
	"ralin/internal/crdt/twopset"
)

func twoORSets() []Object {
	return []Object{
		{Name: "o1", Descriptor: orset.Descriptor()},
		{Name: "o2", Descriptor: orset.Descriptor()},
	}
}

func TestComposeBasicsAndErrors(t *testing.T) {
	if _, err := NewSystem(Unrestricted, 2); err == nil {
		t.Fatal("composition without objects must fail")
	}
	if _, err := NewSystem(Unrestricted, 2, Object{Descriptor: orset.Descriptor()}); err == nil {
		t.Fatal("object without a name must fail")
	}
	if _, err := NewSystem(Unrestricted, 2, twoORSets()[0], twoORSets()[0]); err == nil {
		t.Fatal("duplicate object names must fail")
	}
	sys := MustNewSystem(Unrestricted, 2, twoORSets()...)
	if len(sys.Objects()) != 2 || len(sys.Replicas()) != 2 {
		t.Fatal("composition shape wrong")
	}
	if _, err := sys.Invoke("o3", 0, "add", "x"); err == nil {
		t.Fatal("unknown object must fail")
	}
	if _, err := sys.Descriptor("o3"); err == nil {
		t.Fatal("unknown object must fail")
	}
	if err := sys.Deliver("o3", 0, 1); err == nil {
		t.Fatal("unknown object must fail")
	}
	if err := sys.Broadcast("o1", 0); err == nil {
		t.Fatal("broadcast on an operation-based object must fail")
	}
	if Unrestricted.String() != "⊗" || SharedTimestamps.String() != "⊗ts" || Mode(9).String() != "?" {
		t.Fatal("mode rendering wrong")
	}
}

func TestComposeCrossObjectVisibility(t *testing.T) {
	sys := MustNewSystem(Unrestricted, 2, twoORSets()...)
	a := sys.MustInvoke("o1", 0, "add", "x")
	b := sys.MustInvoke("o2", 0, "add", "y") // same replica: sees a across objects
	c := sys.MustInvoke("o2", 1, "add", "z") // other replica: sees nothing
	h := sys.History()
	if !h.Vis(a.ID, b.ID) {
		t.Fatal("cross-object visibility on the same replica missing")
	}
	if h.Vis(a.ID, c.ID) || h.Vis(b.ID, c.ID) {
		t.Fatal("unexpected visibility to the other replica")
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	d := sys.MustInvoke("o1", 1, "read")
	h = sys.History()
	if !h.Vis(a.ID, d.ID) || !h.Vis(c.ID, d.ID) {
		t.Fatal("visibility after delivery missing")
	}
	if !sys.Converged() {
		t.Fatal("composition must converge after delivery")
	}
}

func TestComposeMixedOpAndStateBased(t *testing.T) {
	sys := MustNewSystem(SharedTimestamps, 2,
		Object{Name: "cart", Descriptor: orset.Descriptor()},
		Object{Name: "hits", Descriptor: pncounter.Descriptor()},
	)
	sys.MustInvoke("cart", 0, "add", "book")
	sys.MustInvoke("hits", 0, "inc")
	sys.MustInvoke("hits", 1, "inc")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustInvoke("hits", 1, "read").Ret; got != int64(2) {
		t.Fatalf("composed counter read %v, want 2", got)
	}
	if got := sys.MustInvoke("cart", 1, "read").Ret; !core.ValueEqual(got, []string{"book"}) {
		t.Fatalf("composed set read %v, want [book]", got)
	}
	res := core.CheckRA(sys.History(), SpecOf(sys), CheckOptions(sys))
	if !res.OK {
		t.Fatalf("mixed composition must be RA-linearizable: %v", res.LastErr)
	}
	if err := sys.Deliver("hits", 0, 1); err == nil {
		t.Fatal("Deliver on a state-based object must fail")
	}
}

func TestComposedSpecInterleavings(t *testing.T) {
	objs := []Object{
		{Name: "c1", Descriptor: counter.Descriptor()},
		{Name: "c2", Descriptor: counter.Descriptor()},
	}
	spec := NewSpec(objs...)
	if spec.Name() != "Spec(Counter) ⊗ Spec(Counter)" {
		t.Fatalf("composed spec name wrong: %q", spec.Name())
	}
	seq := []*core.Label{
		{ID: 1, Object: "c1", Method: "inc", Kind: core.KindUpdate},
		{ID: 2, Object: "c2", Method: "inc", Kind: core.KindUpdate},
		{ID: 3, Object: "c1", Method: "read", Ret: int64(1), Kind: core.KindQuery},
		{ID: 4, Object: "c2", Method: "read", Ret: int64(1), Kind: core.KindQuery},
	}
	if !core.Admits(spec, seq) {
		t.Fatal("interleaving must be admitted")
	}
	bad := []*core.Label{
		{ID: 1, Object: "c1", Method: "inc", Kind: core.KindUpdate},
		{ID: 2, Object: "c2", Method: "read", Ret: int64(1), Kind: core.KindQuery},
	}
	if core.Admits(spec, bad) {
		t.Fatal("cross-object effects must not leak")
	}
	if core.Admits(spec, []*core.Label{{ID: 1, Object: "c9", Method: "inc"}}) {
		t.Fatal("label of an unknown object must be rejected")
	}
	// Product state helpers.
	init := spec.Init().(ProductState)
	if !init.CloneAbs().EqualAbs(init) {
		t.Fatal("product state clone/equality wrong")
	}
	if init.EqualAbs(ProductState{"c1": init["c1"]}) {
		t.Fatal("product states of different shape must differ")
	}
	if init.String() == "" {
		t.Fatal("product state rendering empty")
	}
}

// fig9System reproduces the Figure 9 history: two OR-Sets, two replicas, no
// delivery, so every operation is visible only at its origin.
func fig9System(t *testing.T) *System {
	t.Helper()
	sys := MustNewSystem(Unrestricted, 2, twoORSets()...)
	sys.MustInvoke("o1", 0, "add", "d")
	sys.MustInvoke("o2", 0, "add", "a")
	sys.MustInvoke("o2", 1, "add", "b")
	sys.MustInvoke("o1", 1, "add", "c")
	return sys
}

func TestFig9CompositionOfExecutionOrderObjects(t *testing.T) {
	sys := fig9System(t)
	h := sys.History()
	spec := SpecOf(sys)
	opts := CheckOptions(sys)

	// The composed history is RA-linearizable (Theorem 5.3)…
	res := core.CheckRA(h, spec, opts)
	if !res.OK {
		t.Fatalf("Figure 9 history must be RA-linearizable: %v", res.LastErr)
	}

	// …but the specific per-object linearizations o1: add(c)·add(d) and
	// o2: add(a)·add(b) cannot be combined into a global one.
	rew, err := core.RewriteHistory(h, opts.Rewriting)
	if err != nil {
		t.Fatal(err)
	}
	rh := rew.History
	byArg := func(object, elem string) *core.Label {
		for _, l := range rh.Labels() {
			if l.Object == object && l.Method == "add" && l.Args[0] == elem {
				return l
			}
		}
		t.Fatalf("label %s.add(%s) not found", object, elem)
		return nil
	}
	badPerObject := map[string][]*core.Label{
		"o1": {byArg("o1", "c"), byArg("o1", "d")},
		"o2": {byArg("o2", "a"), byArg("o2", "b")},
	}
	ok, _, err := CombinePerObject(rh, badPerObject, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the Figure 9 per-object linearizations must not combine")
	}

	// Choosing the other linearization of o1 (add(d)·add(c)) does combine.
	goodPerObject := map[string][]*core.Label{
		"o1": {byArg("o1", "d"), byArg("o1", "c")},
		"o2": {byArg("o2", "a"), byArg("o2", "b")},
	}
	ok, witness, err := CombinePerObject(rh, goodPerObject, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(witness) != 4 {
		t.Fatal("the compatible per-object linearizations must combine")
	}
}

// fig10System reproduces the Figure 10 history: two RGAs over three replicas
// under the unrestricted composition, with timestamp orders that conflict
// across the objects.
func fig10System(t *testing.T) (*System, *core.History) {
	t.Helper()
	// o1's generator is scripted so that the write generated later (a) gets
	// the smaller timestamp, as in the figure (ts'1 < ts'2).
	o1Clock := clock.NewScripted(
		clock.Timestamp{Time: 2, Replica: 1}, // ts'2 for b (generated first)
		clock.Timestamp{Time: 1, Replica: 2}, // ts'1 for a (generated second)
	)
	sys := MustNewSystem(Unrestricted, 3,
		Object{Name: "o1", Descriptor: rga.Descriptor(), Clock: o1Clock},
		Object{Name: "o2", Descriptor: rga.Descriptor()},
	)
	c := sys.MustInvoke("o2", 0, "addAfter", rga.Root, "c") // ts1
	b := sys.MustInvoke("o1", 1, "addAfter", rga.Root, "b") // ts'2
	d := sys.MustInvoke("o2", 1, "addAfter", rga.Root, "d") // ts2
	sys.MustInvoke("o2", 2, "addAfter", rga.Root, "e")      // ts3
	sys.MustInvoke("o1", 2, "addAfter", rga.Root, "a")      // ts'1 < ts'2
	// Replica r3 receives c, d (object o2) and b (object o1), then reads.
	if err := sys.Deliver("o2", 2, c.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver("o2", 2, d.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver("o1", 2, b.ID); err != nil {
		t.Fatal(err)
	}
	readO2 := sys.MustInvoke("o2", 2, "read")
	readO1 := sys.MustInvoke("o1", 2, "read")
	if !core.ValueEqual(readO2.Ret, []string{"e", "d", "c"}) {
		t.Fatalf("o2 read %v, want [e d c]", readO2.Ret)
	}
	if !core.ValueEqual(readO1.Ret, []string{"b", "a"}) {
		t.Fatalf("o1 read %v, want [b a]", readO1.Ret)
	}
	return sys, sys.History()
}

func TestFig10UnrestrictedCompositionNotRALinearizable(t *testing.T) {
	sys, h := fig10System(t)
	res := core.CheckRA(h, SpecOf(sys), CheckOptions(sys))
	if res.OK {
		t.Fatalf("Figure 10 history must not be RA-linearizable under ⊗; witness: %s",
			core.FormatLabels(res.Linearization))
	}
	if !res.Complete {
		t.Fatal("the negative verdict must be complete")
	}
}

func TestFig10SharedTimestampCompositionIsRALinearizable(t *testing.T) {
	// Under ⊗ts the same program order cannot produce the conflicting
	// timestamps: the resulting history is RA-linearizable (Theorem 5.5).
	sys := MustNewSystem(SharedTimestamps, 3,
		Object{Name: "o1", Descriptor: rga.Descriptor()},
		Object{Name: "o2", Descriptor: rga.Descriptor()},
	)
	c := sys.MustInvoke("o2", 0, "addAfter", rga.Root, "c")
	b := sys.MustInvoke("o1", 1, "addAfter", rga.Root, "b")
	d := sys.MustInvoke("o2", 1, "addAfter", rga.Root, "d")
	sys.MustInvoke("o2", 2, "addAfter", rga.Root, "e")
	sys.MustInvoke("o1", 2, "addAfter", rga.Root, "a")
	for _, step := range []struct {
		obj string
		id  uint64
	}{{"o2", c.ID}, {"o2", d.ID}, {"o1", b.ID}} {
		if err := sys.Deliver(step.obj, 2, step.id); err != nil {
			t.Fatal(err)
		}
	}
	sys.MustInvoke("o2", 2, "read")
	sys.MustInvoke("o1", 2, "read")
	res := core.CheckRA(sys.History(), SpecOf(sys), CheckOptions(sys))
	if !res.OK {
		t.Fatalf("⊗ts composition must be RA-linearizable: %v", res.LastErr)
	}
}

func TestComposeRandomWorkloadSharedTimestampsRALinearizable(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		sys := MustNewSystem(SharedTimestamps, 2,
			Object{Name: "s", Descriptor: orset.Descriptor()},
			Object{Name: "l", Descriptor: rga.Descriptor()},
		)
		for i := 0; i < 6; i++ {
			if _, err := sys.RandomOp(rng, []string{"a", "b"}); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				sys.DeliverRandom(rng)
			}
		}
		res := core.CheckRA(sys.History(), SpecOf(sys), CheckOptions(sys))
		if !res.OK {
			t.Fatalf("trial %d: composed random history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}

func TestCombinePerObjectErrors(t *testing.T) {
	sys := fig9System(t)
	h := sys.History()
	foreign := &core.Label{ID: 999, Object: "o1", Method: "add", Kind: core.KindUpdate}
	if _, _, err := CombinePerObject(h, map[string][]*core.Label{"o1": {foreign, foreign}}, SpecOf(sys)); err == nil {
		t.Fatal("foreign labels must be rejected")
	}
}

func TestComposeRandomWorkloadExecutionOrderObjectsUnrestricted(t *testing.T) {
	// Theorem 5.3: compositions of execution-order objects are RA-linearizable
	// even under the unrestricted composition ⊗.
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 5; trial++ {
		sys := MustNewSystem(Unrestricted, 2,
			Object{Name: "s1", Descriptor: orset.Descriptor()},
			Object{Name: "s2", Descriptor: twopset.Descriptor()},
		)
		for i := 0; i < 6; i++ {
			if _, err := sys.RandomOp(rng, []string{"a", "b"}); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				sys.DeliverRandom(rng)
			}
		}
		res := core.CheckRA(sys.History(), SpecOf(sys), CheckOptions(sys))
		if !res.OK {
			t.Fatalf("trial %d: ⊗ composition of execution-order objects not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}

// TestComposedSpecStepAppendMatchesStep fuzzes the product specification's
// core.StepAppender fast path against Step on random labels of both objects
// (admitted and rejected), checking successor-for-successor agreement and
// that the dst prefix survives untouched.
func TestComposedSpecStepAppendMatchesStep(t *testing.T) {
	objects := []Object{
		{Name: "c", Descriptor: counter.Descriptor()},
		{Name: "s", Descriptor: twopset.Descriptor()},
	}
	sp := NewSpec(objects...)
	sentinel := core.AbsState(ProductState{})
	rng := rand.New(rand.NewSource(5))
	phi := sp.Init()
	admitted := 0
	for step := 0; step < 60; step++ {
		var l *core.Label
		switch rng.Intn(4) {
		case 0:
			l = &core.Label{Object: "c", Method: "inc", Kind: core.KindUpdate}
		case 1:
			l = &core.Label{Object: "c", Method: "read", Ret: int64(rng.Intn(4)), Kind: core.KindQuery}
		case 2:
			l = &core.Label{Object: "s", Method: "add", Args: []core.Value{"x"}, Kind: core.KindUpdate}
		default:
			l = &core.Label{Object: "nope", Method: "inc", Kind: core.KindUpdate}
		}
		want := sp.Step(phi, l)
		got := sp.StepAppend([]core.AbsState{sentinel}, phi, l)
		if len(got) != len(want)+1 || !got[0].EqualAbs(sentinel) {
			t.Fatalf("step %d %v: dst prefix clobbered (len %d)", step, l, len(got))
		}
		for i, w := range want {
			if !got[i+1].EqualAbs(w) {
				t.Fatalf("step %d %v: successor %d differs: %v vs %v", step, l, i, w, got[i+1])
			}
		}
		if len(want) > 0 {
			admitted++
			phi = want[rng.Intn(len(want))]
		}
	}
	if admitted == 0 {
		t.Fatal("no admitted transitions — generator too weak")
	}
}
