package clock

import "testing"

func TestHLCMonotonicPerReplica(t *testing.T) {
	h := NewHLC(nil)
	var prev Timestamp
	for i := 0; i < 100; i++ {
		ts := h.Next(0)
		if i > 0 && !prev.Less(ts) {
			t.Fatalf("step %d: %v not strictly above %v", i, ts, prev)
		}
		prev = ts
	}
}

func TestHLCDominatesObserved(t *testing.T) {
	h := NewHLC(nil)
	remote := Timestamp{Time: 500, Replica: 1}
	h.Observe(0, remote)
	ts := h.Next(0)
	if !remote.Less(ts) {
		t.Fatalf("timestamp %v does not dominate observed %v", ts, remote)
	}
	// Observing something older than what r already issued must not rewind.
	h.Observe(0, Timestamp{Time: 3, Replica: 2})
	if next := h.Next(0); !ts.Less(next) {
		t.Fatalf("timestamp %v regressed after observing an old timestamp (prev %v)", next, ts)
	}
}

func TestHLCObserveBottomIgnored(t *testing.T) {
	h := NewHLC(nil)
	h.Observe(0, Timestamp{})
	if ts := h.Next(0); ts.Time != 1 {
		t.Fatalf("bottom observation moved the clock: got %v", ts)
	}
}

func TestHLCTracksPhysicalClock(t *testing.T) {
	var now uint64
	h := NewHLC(func(ReplicaID) uint64 { return now })
	now = 7
	ts := h.Next(0)
	if Physical(ts) != 7 || Logical(ts) != 0 {
		t.Fatalf("expected physical 7, logical 0, got physical %d logical %d (%v)", Physical(ts), Logical(ts), ts)
	}
	// With the physical clock frozen, causally related events advance the
	// logical counter within the same physical tick.
	ts2 := h.Next(0)
	if Physical(ts2) != 7 || Logical(ts2) != 1 {
		t.Fatalf("expected physical 7, logical 1, got physical %d logical %d (%v)", Physical(ts2), Logical(ts2), ts2)
	}
	// A lagging physical clock never rewinds the timestamp.
	now = 2
	ts3 := h.Next(0)
	if !ts2.Less(ts3) {
		t.Fatalf("timestamp %v regressed under a lagging physical clock (prev %v)", ts3, ts2)
	}
}

func TestHLCSkewedReplicasStayUnique(t *testing.T) {
	skew := []uint64{0, 5}
	var step uint64
	h := NewHLC(func(r ReplicaID) uint64 { return step + skew[int(r)] })
	seen := make(map[Timestamp]bool)
	for i := 0; i < 50; i++ {
		step++
		for r := ReplicaID(0); r < 2; r++ {
			ts := h.Next(r)
			if seen[ts] {
				t.Fatalf("duplicate timestamp %v", ts)
			}
			seen[ts] = true
		}
	}
}
