package clock

import "sync"

// hlcCounterBits is the width of the logical-counter field packed into the low
// bits of an HLC timestamp's Time: the physical component occupies the high
// bits, so up to 2^16 causally related events can share one physical tick
// before the logical counter overflows into the next one.
const hlcCounterBits = 16

// HLC is a hybrid logical clock (Kulkarni et al.): each replica's next
// timestamp is the maximum of its physical clock reading (shifted into the
// high bits) and one past the largest timestamp it has issued or observed.
// Plugged into runtime.Config.Clock it preserves the paper's timestamp
// generator contract — every generated timestamp is strictly larger than all
// timestamps visible at the origin (provided deliveries are reported through
// Observe) and globally unique via the replica tiebreak in Timestamp — while
// tracking a physical clock that different replicas may read with skew. The
// timestamp-order linearization strategy (Theorem 4.6) therefore stays sound
// on HLC-timestamped histories, which is how the scenario engine exercises it
// under realistic clock behaviour.
type HLC struct {
	mu sync.Mutex
	// phys reads the physical clock of a replica. It may be skewed per
	// replica and need not be monotonic; correctness only relies on the
	// logical component below.
	phys func(ReplicaID) uint64
	// last is the largest Time each replica has issued or observed.
	last map[ReplicaID]uint64
}

// NewHLC returns a hybrid logical clock over the given physical clock
// function. A nil phys behaves as a constant zero physical clock, reducing
// the HLC to a per-replica Lamport clock.
func NewHLC(phys func(ReplicaID) uint64) *HLC {
	if phys == nil {
		phys = func(ReplicaID) uint64 { return 0 }
	}
	return &HLC{phys: phys, last: make(map[ReplicaID]uint64)}
}

// Next issues a fresh timestamp at replica r: strictly larger than every
// timestamp r has issued or observed, and at least the current physical
// reading.
func (h *HLC) Next(r ReplicaID) Timestamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.last[r] + 1
	if p := h.phys(r) << hlcCounterBits; p > t {
		t = p
	}
	h.last[r] = t
	return Timestamp{Time: t, Replica: r}
}

// Observe records that replica r has seen ts (a delivered effector's or a
// merged state's timestamp), so r's subsequent timestamps are strictly larger
// than it.
func (h *HLC) Observe(r ReplicaID, ts Timestamp) {
	if ts.IsBottom() {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if ts.Time > h.last[r] {
		h.last[r] = ts.Time
	}
}

// Physical extracts the physical component of an HLC timestamp.
func Physical(ts Timestamp) uint64 { return ts.Time >> hlcCounterBits }

// Logical extracts the logical-counter component of an HLC timestamp.
func Logical(ts Timestamp) uint64 { return ts.Time & (1<<hlcCounterBits - 1) }
