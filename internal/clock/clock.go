// Package clock provides the timing and identity primitives used by every
// CRDT in this repository: replica identifiers, totally ordered timestamps
// (with a distinguished ⊥ element), timestamp generators (per-object and
// shared, as required by the ⊗ts composition of Section 5.3 of the paper),
// version vectors (used by the Multi-Value Register), and a source of unique
// operation identifiers.
package clock

import (
	"fmt"
	"sort"
	"sync"
)

// ReplicaID identifies a replica of a CRDT object. Replica identifiers are
// also used to break ties between timestamps generated with the same counter
// value, which gives the strict total order assumed by the paper.
type ReplicaID int

// String renders the replica identifier as "r<N>".
func (r ReplicaID) String() string { return fmt.Sprintf("r%d", r) }

// Timestamp is a replica-tagged Lamport timestamp. The zero value is the
// distinguished minimal element ⊥ used for operations that do not generate a
// timestamp (for example RGA's remove).
type Timestamp struct {
	// Time is the logical clock value. Zero means ⊥.
	Time uint64
	// Replica is the replica that generated the timestamp. It is used only
	// to break ties between equal Time values.
	Replica ReplicaID
}

// Bottom is the minimal timestamp ⊥.
var Bottom = Timestamp{}

// IsBottom reports whether the timestamp is ⊥.
func (t Timestamp) IsBottom() bool { return t.Time == 0 }

// Less reports whether t < u in the strict total order on timestamps.
// ⊥ is smaller than every non-⊥ timestamp and is not smaller than itself.
func (t Timestamp) Less(u Timestamp) bool {
	if t.IsBottom() {
		return !u.IsBottom()
	}
	if u.IsBottom() {
		return false
	}
	if t.Time != u.Time {
		return t.Time < u.Time
	}
	return t.Replica < u.Replica
}

// Compare returns -1, 0 or +1 according to the total order on timestamps.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Less(u):
		return -1
	case u.Less(t):
		return 1
	default:
		return 0
	}
}

// Max returns the larger of t and u.
func (t Timestamp) Max(u Timestamp) Timestamp {
	if t.Less(u) {
		return u
	}
	return t
}

// String renders the timestamp as "⊥" or "<time>@r<replica>".
func (t Timestamp) String() string {
	if t.IsBottom() {
		return "⊥"
	}
	return fmt.Sprintf("%d@%s", t.Time, t.Replica)
}

// MaxTimestamp returns the maximum of a set of timestamps, or ⊥ if the set is
// empty.
func MaxTimestamp(ts []Timestamp) Timestamp {
	max := Bottom
	for _, t := range ts {
		max = max.Max(t)
	}
	return max
}

// Generator produces timestamps for operations. The operational semantics of
// Figure 7 requires each freshly generated timestamp to be strictly larger
// than every timestamp visible to the origin replica and globally unique.
// Implementations in this package satisfy both properties by construction.
type Generator interface {
	// Next returns a fresh timestamp for an operation originating at replica r.
	Next(r ReplicaID) Timestamp
}

// Counter is the standard timestamp generator: a monotonically increasing
// counter tagged with the origin replica. A single Counter shared between
// several objects implements the shared timestamp generator composition ⊗ts
// of Section 5.3; a Counter per object implements the unrestricted
// composition ⊗ of Section 5.1.
type Counter struct {
	mu   sync.Mutex
	next uint64
}

// NewCounter returns a counter generator starting at 1 (so that the first
// generated timestamp is distinct from ⊥).
func NewCounter() *Counter { return &Counter{} }

// Next returns the next timestamp for replica r.
func (c *Counter) Next(r ReplicaID) Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	return Timestamp{Time: c.next, Replica: r}
}

// Scripted is a timestamp generator that replays a fixed sequence of
// timestamps. It is used to reconstruct the exact executions of the paper's
// worked figures (for example Figure 8 and Figure 10, which rely on specific
// timestamp orders).
type Scripted struct {
	mu     sync.Mutex
	queue  []Timestamp
	backup *Counter
}

// NewScripted returns a generator that yields the given timestamps in order
// and falls back to a fresh counter once they are exhausted.
func NewScripted(ts ...Timestamp) *Scripted {
	return &Scripted{queue: append([]Timestamp(nil), ts...), backup: NewCounter()}
}

// Next returns the next scripted timestamp, or a counter-generated one when
// the script is exhausted.
func (s *Scripted) Next(r ReplicaID) Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) > 0 {
		t := s.queue[0]
		s.queue = s.queue[1:]
		return t
	}
	return s.backup.Next(r)
}

// IDSource produces unique operation identifiers (the "i" tag of operation
// labels) and unique element identifiers (for example the identifiers the
// OR-Set attaches to added elements).
type IDSource struct {
	mu   sync.Mutex
	next uint64
}

// NewIDSource returns an identifier source starting at 1.
func NewIDSource() *IDSource { return &IDSource{} }

// Next returns a fresh unique identifier.
func (s *IDSource) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return s.next
}

// VersionVector maps replica identifiers to counters. Version vectors are the
// conflict-detection metadata of the state-based Multi-Value Register
// (Listing 7 / Appendix E.1).
type VersionVector map[ReplicaID]uint64

// NewVersionVector returns an empty version vector (the ⊥ of the vector
// lattice: every component is zero).
func NewVersionVector() VersionVector { return VersionVector{} }

// Copy returns a deep copy of the vector.
func (v VersionVector) Copy() VersionVector {
	c := make(VersionVector, len(v))
	for r, n := range v {
		c[r] = n
	}
	return c
}

// Get returns the component for replica r (zero if absent).
func (v VersionVector) Get(r ReplicaID) uint64 { return v[r] }

// Set sets the component for replica r.
func (v VersionVector) Set(r ReplicaID, n uint64) {
	if n == 0 {
		delete(v, r)
		return
	}
	v[r] = n
}

// Increment increments the component for replica r and returns the vector.
func (v VersionVector) Increment(r ReplicaID) VersionVector {
	v[r]++
	return v
}

// Leq reports whether v ≤ u component-wise.
func (v VersionVector) Leq(u VersionVector) bool {
	for r, n := range v {
		if n > u[r] {
			return false
		}
	}
	return true
}

// Less reports whether v < u, that is v ≤ u and v ≠ u.
func (v VersionVector) Less(u VersionVector) bool {
	return v.Leq(u) && !u.Leq(v)
}

// Equal reports whether v and u have identical components.
func (v VersionVector) Equal(u VersionVector) bool {
	return v.Leq(u) && u.Leq(v)
}

// Concurrent reports whether v and u are incomparable in the component-wise
// order.
func (v VersionVector) Concurrent(u VersionVector) bool {
	return !v.Leq(u) && !u.Leq(v)
}

// Merge returns the component-wise maximum of v and u (the least upper bound
// in the vector lattice).
func (v VersionVector) Merge(u VersionVector) VersionVector {
	out := v.Copy()
	for r, n := range u {
		if n > out[r] {
			out[r] = n
		}
	}
	return out
}

// String renders the vector with replicas in increasing order, for stable
// output in tests and figures.
func (v VersionVector) String() string {
	replicas := make([]ReplicaID, 0, len(v))
	for r := range v {
		replicas = append(replicas, r)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	s := "["
	for i, r := range replicas {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", r, v[r])
	}
	return s + "]"
}
