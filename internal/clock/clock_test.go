package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimestampBottom(t *testing.T) {
	if !Bottom.IsBottom() {
		t.Fatal("Bottom should report IsBottom")
	}
	if Bottom.Less(Bottom) {
		t.Fatal("⊥ must not be less than itself")
	}
	ts := Timestamp{Time: 1, Replica: 0}
	if !Bottom.Less(ts) {
		t.Fatal("⊥ must be less than every non-⊥ timestamp")
	}
	if ts.Less(Bottom) {
		t.Fatal("non-⊥ timestamp must not be less than ⊥")
	}
	if Bottom.String() != "⊥" {
		t.Fatalf("unexpected string %q", Bottom.String())
	}
}

func TestTimestampOrderTotal(t *testing.T) {
	a := Timestamp{Time: 3, Replica: 1}
	b := Timestamp{Time: 3, Replica: 2}
	c := Timestamp{Time: 4, Replica: 0}
	if !a.Less(b) {
		t.Fatal("equal times must be ordered by replica")
	}
	if !b.Less(c) || !a.Less(c) {
		t.Fatal("larger time must dominate")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare inconsistent with Less")
	}
	if a.Max(c) != c || c.Max(a) != c {
		t.Fatal("Max must return the larger timestamp")
	}
}

func TestTimestampOrderProperties(t *testing.T) {
	gen := func(seed int64) Timestamp {
		r := rand.New(rand.NewSource(seed))
		ts := Timestamp{Time: uint64(r.Intn(5)), Replica: ReplicaID(r.Intn(4))}
		if ts.IsBottom() {
			// ⊥ is a single semantic value: canonicalise the replica tag.
			return Bottom
		}
		return ts
	}
	// Antisymmetry and totality.
	prop := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// Transitivity.
	trans := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTimestamp(t *testing.T) {
	if MaxTimestamp(nil) != Bottom {
		t.Fatal("max of empty set must be ⊥")
	}
	ts := []Timestamp{{Time: 1, Replica: 2}, {Time: 5, Replica: 0}, {Time: 3, Replica: 1}}
	if MaxTimestamp(ts) != (Timestamp{Time: 5, Replica: 0}) {
		t.Fatal("wrong maximum")
	}
}

func TestCounterMonotoneAndUnique(t *testing.T) {
	c := NewCounter()
	seen := map[Timestamp]bool{}
	prev := Bottom
	for i := 0; i < 100; i++ {
		ts := c.Next(ReplicaID(i % 3))
		if !prev.Less(ts) {
			t.Fatalf("counter not monotone: %v then %v", prev, ts)
		}
		if seen[ts] {
			t.Fatalf("duplicate timestamp %v", ts)
		}
		seen[ts] = true
		prev = ts
	}
}

func TestScriptedGenerator(t *testing.T) {
	a := Timestamp{Time: 7, Replica: 1}
	b := Timestamp{Time: 9, Replica: 2}
	g := NewScripted(a, b)
	if got := g.Next(0); got != a {
		t.Fatalf("got %v want %v", got, a)
	}
	if got := g.Next(0); got != b {
		t.Fatalf("got %v want %v", got, b)
	}
	// After the script is exhausted the generator falls back to a counter.
	c1 := g.Next(3)
	c2 := g.Next(3)
	if !c1.Less(c2) {
		t.Fatal("fallback counter must be monotone")
	}
}

func TestIDSourceUnique(t *testing.T) {
	s := NewIDSource()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if id == 0 {
			t.Fatal("identifier zero is reserved")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestVersionVectorBasics(t *testing.T) {
	v := NewVersionVector()
	u := NewVersionVector()
	if !v.Equal(u) || !v.Leq(u) || v.Less(u) {
		t.Fatal("empty vectors must be equal")
	}
	v.Increment(1)
	if !u.Less(v) || !u.Leq(v) || v.Leq(u) {
		t.Fatal("incremented vector must dominate the empty one")
	}
	u.Increment(2)
	if !v.Concurrent(u) {
		t.Fatal("vectors incremented at different replicas must be concurrent")
	}
	m := v.Merge(u)
	if !v.Leq(m) || !u.Leq(m) {
		t.Fatal("merge must be an upper bound")
	}
	if m.Get(1) != 1 || m.Get(2) != 1 {
		t.Fatal("merge must take component-wise maximum")
	}
}

func TestVersionVectorCopyIndependent(t *testing.T) {
	v := NewVersionVector()
	v.Increment(1)
	c := v.Copy()
	c.Increment(1)
	if v.Get(1) != 1 || c.Get(1) != 2 {
		t.Fatal("Copy must be independent of the original")
	}
}

func TestVersionVectorSetZeroDeletes(t *testing.T) {
	v := NewVersionVector()
	v.Set(3, 5)
	v.Set(3, 0)
	if len(v) != 0 {
		t.Fatal("setting zero must remove the component")
	}
}

func TestVersionVectorLatticeProperties(t *testing.T) {
	gen := func(seed int64) VersionVector {
		r := rand.New(rand.NewSource(seed))
		v := NewVersionVector()
		for i := 0; i < 4; i++ {
			v.Set(ReplicaID(i), uint64(r.Intn(3)))
		}
		return v
	}
	// Merge is commutative, idempotent and an upper bound.
	prop := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		m1 := a.Merge(b)
		m2 := b.Merge(a)
		return m1.Equal(m2) && a.Leq(m1) && b.Leq(m1) && a.Merge(a).Equal(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// Merge is the least upper bound: any other upper bound dominates it.
	lub := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if a.Leq(c) && b.Leq(c) {
			return a.Merge(b).Leq(c)
		}
		return true
	}
	if err := quick.Check(lub, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionVectorString(t *testing.T) {
	v := NewVersionVector()
	v.Set(2, 1)
	v.Set(1, 3)
	if got := v.String(); got != "[r1:3 r2:1]" {
		t.Fatalf("unexpected rendering %q", got)
	}
}
