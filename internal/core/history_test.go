package core

import (
	"strings"
	"testing"

	"ralin/internal/clock"
)

func mkLabel(id uint64, method string, kind Kind) *Label {
	return &Label{ID: id, Method: method, Kind: kind, GenSeq: id}
}

func TestHistoryAddAndLookup(t *testing.T) {
	h := NewHistory()
	a := mkLabel(1, "add", KindUpdate)
	if err := h.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(a); err == nil {
		t.Fatal("duplicate identifier must be rejected")
	}
	if err := h.Add(nil); err == nil {
		t.Fatal("nil label must be rejected")
	}
	if h.Label(1) != a || h.Label(2) != nil {
		t.Fatal("Label lookup wrong")
	}
	if h.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestHistoryVisibilityClosure(t *testing.T) {
	h := NewHistory()
	for i := uint64(1); i <= 4; i++ {
		h.MustAdd(mkLabel(i, "op", KindUpdate))
	}
	h.MustAddVis(1, 2)
	h.MustAddVis(2, 3)
	// Transitive closure: 1 must be visible to 3.
	if !h.Vis(1, 3) {
		t.Fatal("visibility must be transitively closed")
	}
	if h.Vis(3, 1) || h.Vis(1, 4) {
		t.Fatal("unexpected visibility edges")
	}
	if !h.Concurrent(3, 4) || h.Concurrent(1, 3) || h.Concurrent(2, 2) {
		t.Fatal("Concurrent wrong")
	}
	if !h.IsAcyclic() {
		t.Fatal("history must be acyclic")
	}
	// Edges that would create cycles are rejected.
	if err := h.AddVis(3, 1); err == nil {
		t.Fatal("cycle must be rejected")
	}
	if err := h.AddVis(1, 1); err == nil {
		t.Fatal("reflexive edge must be rejected")
	}
	if err := h.AddVis(1, 99); err == nil {
		t.Fatal("unknown label must be rejected")
	}
}

func TestHistoryVisibleToAndSeenBy(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(mkLabel(1, "a", KindUpdate))
	b := h.MustAdd(mkLabel(2, "b", KindUpdate))
	c := h.MustAdd(mkLabel(3, "c", KindQuery))
	h.MustAddVis(a.ID, c.ID)
	h.MustAddVis(b.ID, c.ID)
	vt := h.VisibleTo(c)
	if len(vt) != 2 || vt[0] != a || vt[1] != b {
		t.Fatalf("VisibleTo wrong: %v", vt)
	}
	sb := h.SeenBy(a)
	if len(sb) != 1 || sb[0] != c {
		t.Fatalf("SeenBy wrong: %v", sb)
	}
}

func TestHistoryCloneAndProject(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Object: "o1", Method: "add", Kind: KindUpdate})
	b := h.MustAdd(&Label{ID: 2, Object: "o2", Method: "add", Kind: KindUpdate})
	c := h.MustAdd(&Label{ID: 3, Object: "o1", Method: "read", Kind: KindQuery})
	h.MustAddVis(a.ID, c.ID)
	h.MustAddVis(b.ID, c.ID)

	clone := h.Clone()
	if clone.Len() != 3 || !clone.Vis(1, 3) || !clone.Vis(2, 3) {
		t.Fatal("clone lost structure")
	}
	clone.Label(1).Method = "mutated"
	if h.Label(1).Method != "add" {
		t.Fatal("clone must not alias the original labels")
	}

	p := h.ProjectObject("o1")
	if p.Len() != 2 || p.Label(2) != nil || !p.Vis(1, 3) {
		t.Fatal("projection wrong")
	}
	objs := h.Objects()
	if len(objs) != 2 || objs[0] != "o1" || objs[1] != "o2" {
		t.Fatalf("Objects wrong: %v", objs)
	}
}

func TestHistoryTimestamp(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Method: "addAfter", Kind: KindUpdate, TS: clock.Timestamp{Time: 1, Replica: 1}})
	b := h.MustAdd(&Label{ID: 2, Method: "addAfter", Kind: KindUpdate, TS: clock.Timestamp{Time: 2, Replica: 2}})
	r := h.MustAdd(&Label{ID: 3, Method: "read", Kind: KindQuery})
	lonely := h.MustAdd(&Label{ID: 4, Method: "read", Kind: KindQuery})
	h.MustAddVis(a.ID, r.ID)
	h.MustAddVis(b.ID, r.ID)

	if got := h.HistoryTimestamp(a); got != a.TS {
		t.Fatalf("own timestamp must win, got %v", got)
	}
	if got := h.HistoryTimestamp(r); got != b.TS {
		t.Fatalf("virtual timestamp must be the maximal visible one, got %v", got)
	}
	if got := h.HistoryTimestamp(lonely); !got.IsBottom() {
		t.Fatalf("virtual timestamp with empty past must be ⊥, got %v", got)
	}
}

func TestConsistentWithVis(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(mkLabel(1, "a", KindUpdate))
	b := h.MustAdd(mkLabel(2, "b", KindUpdate))
	c := h.MustAdd(mkLabel(3, "c", KindUpdate))
	h.MustAddVis(a.ID, b.ID)

	if err := h.ConsistentWithVis([]*Label{a, b, c}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	if err := h.ConsistentWithVis([]*Label{c, a, b}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	if err := h.ConsistentWithVis([]*Label{b, a, c}); err == nil {
		t.Fatal("order against visibility must be rejected")
	}
	if err := h.ConsistentWithVis([]*Label{a, b}); err == nil {
		t.Fatal("short sequence must be rejected")
	}
	if err := h.ConsistentWithVis([]*Label{a, a, b}); err == nil {
		t.Fatal("repeated label must be rejected")
	}
	other := mkLabel(9, "x", KindUpdate)
	if err := h.ConsistentWithVis([]*Label{a, b, other}); err == nil {
		t.Fatal("foreign label must be rejected")
	}
}

func TestHistoryString(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Method: "add", Args: []Value{"x"}, Kind: KindUpdate, Origin: 1})
	b := h.MustAdd(&Label{ID: 2, Method: "read", Ret: []string{"x"}, Kind: KindQuery, Origin: 2})
	h.MustAddVis(a.ID, b.ID)
	s := h.String()
	if !strings.Contains(s, "add(x)") || !strings.Contains(s, "sees 1") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
}
