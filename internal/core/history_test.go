package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ralin/internal/clock"
)

func mkLabel(id uint64, method string, kind Kind) *Label {
	return &Label{ID: id, Method: method, Kind: kind, GenSeq: id}
}

func TestHistoryAddAndLookup(t *testing.T) {
	h := NewHistory()
	a := mkLabel(1, "add", KindUpdate)
	if err := h.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(a); err == nil {
		t.Fatal("duplicate identifier must be rejected")
	}
	if err := h.Add(nil); err == nil {
		t.Fatal("nil label must be rejected")
	}
	if h.Label(1) != a || h.Label(2) != nil {
		t.Fatal("Label lookup wrong")
	}
	if h.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestHistoryVisibilityClosure(t *testing.T) {
	h := NewHistory()
	for i := uint64(1); i <= 4; i++ {
		h.MustAdd(mkLabel(i, "op", KindUpdate))
	}
	h.MustAddVis(1, 2)
	h.MustAddVis(2, 3)
	// Transitive closure: 1 must be visible to 3.
	if !h.Vis(1, 3) {
		t.Fatal("visibility must be transitively closed")
	}
	if h.Vis(3, 1) || h.Vis(1, 4) {
		t.Fatal("unexpected visibility edges")
	}
	if !h.Concurrent(3, 4) || h.Concurrent(1, 3) || h.Concurrent(2, 2) {
		t.Fatal("Concurrent wrong")
	}
	if !h.IsAcyclic() {
		t.Fatal("history must be acyclic")
	}
	// Edges that would create cycles are rejected.
	if err := h.AddVis(3, 1); err == nil {
		t.Fatal("cycle must be rejected")
	}
	if err := h.AddVis(1, 1); err == nil {
		t.Fatal("reflexive edge must be rejected")
	}
	if err := h.AddVis(1, 99); err == nil {
		t.Fatal("unknown label must be rejected")
	}
}

func TestHistoryVisibleToAndSeenBy(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(mkLabel(1, "a", KindUpdate))
	b := h.MustAdd(mkLabel(2, "b", KindUpdate))
	c := h.MustAdd(mkLabel(3, "c", KindQuery))
	h.MustAddVis(a.ID, c.ID)
	h.MustAddVis(b.ID, c.ID)
	vt := h.VisibleTo(c)
	if len(vt) != 2 || vt[0] != a || vt[1] != b {
		t.Fatalf("VisibleTo wrong: %v", vt)
	}
	sb := h.SeenBy(a)
	if len(sb) != 1 || sb[0] != c {
		t.Fatalf("SeenBy wrong: %v", sb)
	}
}

func TestHistoryCloneAndProject(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Object: "o1", Method: "add", Kind: KindUpdate})
	b := h.MustAdd(&Label{ID: 2, Object: "o2", Method: "add", Kind: KindUpdate})
	c := h.MustAdd(&Label{ID: 3, Object: "o1", Method: "read", Kind: KindQuery})
	h.MustAddVis(a.ID, c.ID)
	h.MustAddVis(b.ID, c.ID)

	clone := h.Clone()
	if clone.Len() != 3 || !clone.Vis(1, 3) || !clone.Vis(2, 3) {
		t.Fatal("clone lost structure")
	}
	clone.Label(1).Method = "mutated"
	if h.Label(1).Method != "add" {
		t.Fatal("clone must not alias the original labels")
	}

	p := h.ProjectObject("o1")
	if p.Len() != 2 || p.Label(2) != nil || !p.Vis(1, 3) {
		t.Fatal("projection wrong")
	}
	objs := h.Objects()
	if len(objs) != 2 || objs[0] != "o1" || objs[1] != "o2" {
		t.Fatalf("Objects wrong: %v", objs)
	}
}

func TestHistoryTimestamp(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Method: "addAfter", Kind: KindUpdate, TS: clock.Timestamp{Time: 1, Replica: 1}})
	b := h.MustAdd(&Label{ID: 2, Method: "addAfter", Kind: KindUpdate, TS: clock.Timestamp{Time: 2, Replica: 2}})
	r := h.MustAdd(&Label{ID: 3, Method: "read", Kind: KindQuery})
	lonely := h.MustAdd(&Label{ID: 4, Method: "read", Kind: KindQuery})
	h.MustAddVis(a.ID, r.ID)
	h.MustAddVis(b.ID, r.ID)

	if got := h.HistoryTimestamp(a); got != a.TS {
		t.Fatalf("own timestamp must win, got %v", got)
	}
	if got := h.HistoryTimestamp(r); got != b.TS {
		t.Fatalf("virtual timestamp must be the maximal visible one, got %v", got)
	}
	if got := h.HistoryTimestamp(lonely); !got.IsBottom() {
		t.Fatalf("virtual timestamp with empty past must be ⊥, got %v", got)
	}
}

func TestConsistentWithVis(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(mkLabel(1, "a", KindUpdate))
	b := h.MustAdd(mkLabel(2, "b", KindUpdate))
	c := h.MustAdd(mkLabel(3, "c", KindUpdate))
	h.MustAddVis(a.ID, b.ID)

	if err := h.ConsistentWithVis([]*Label{a, b, c}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	if err := h.ConsistentWithVis([]*Label{c, a, b}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	if err := h.ConsistentWithVis([]*Label{b, a, c}); err == nil {
		t.Fatal("order against visibility must be rejected")
	}
	if err := h.ConsistentWithVis([]*Label{a, b}); err == nil {
		t.Fatal("short sequence must be rejected")
	}
	if err := h.ConsistentWithVis([]*Label{a, a, b}); err == nil {
		t.Fatal("repeated label must be rejected")
	}
	other := mkLabel(9, "x", KindUpdate)
	if err := h.ConsistentWithVis([]*Label{a, b, other}); err == nil {
		t.Fatal("foreign label must be rejected")
	}
}

// legacyVisOracle is the History representation this package used before the
// rank/bitset reachability index: labels in insertion order plus the
// visibility relation stored eagerly transitively closed as map-of-maps,
// with AddVis rescanning the full relation per inserted edge. It is kept
// verbatim — same closure maintenance, same error messages — as the
// differential oracle for the closure-free representation, and lives only in
// the test binary.
type legacyVisOracle struct {
	labels map[uint64]*Label
	order  []uint64
	vis    map[uint64]map[uint64]bool
}

func newLegacyVisOracle() *legacyVisOracle {
	return &legacyVisOracle{
		labels: make(map[uint64]*Label),
		vis:    make(map[uint64]map[uint64]bool),
	}
}

func (o *legacyVisOracle) add(l *Label) error {
	if l == nil {
		return fmt.Errorf("history: nil label")
	}
	if _, ok := o.labels[l.ID]; ok {
		return fmt.Errorf("history: duplicate label id %d", l.ID)
	}
	o.labels[l.ID] = l
	o.order = append(o.order, l.ID)
	return nil
}

func (o *legacyVisOracle) addVis(from, to uint64) error {
	if from == to {
		return fmt.Errorf("history: visibility edge %d -> %d is reflexive", from, to)
	}
	if _, ok := o.labels[from]; !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", from)
	}
	if _, ok := o.labels[to]; !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", to)
	}
	if o.visible(to, from) {
		return fmt.Errorf("history: visibility edge %d -> %d creates a cycle", from, to)
	}
	preds := append(o.predecessorIDs(from), from)
	succs := append(o.successorIDs(to), to)
	for _, p := range preds {
		for _, s := range succs {
			if p == s {
				continue
			}
			if o.vis[p] == nil {
				o.vis[p] = make(map[uint64]bool)
			}
			o.vis[p][s] = true
		}
	}
	return nil
}

func (o *legacyVisOracle) predecessorIDs(id uint64) []uint64 {
	var out []uint64
	for from, tos := range o.vis {
		if tos[id] {
			out = append(out, from)
		}
	}
	return out
}

func (o *legacyVisOracle) successorIDs(id uint64) []uint64 {
	var out []uint64
	for to := range o.vis[id] {
		out = append(out, to)
	}
	return out
}

func (o *legacyVisOracle) visible(from, to uint64) bool { return o.vis[from][to] }

func (o *legacyVisOracle) concurrent(a, b uint64) bool {
	return a != b && !o.visible(a, b) && !o.visible(b, a)
}

// visibleTo returns vis⁻¹(id) in insertion order, seenBy vis(id) likewise —
// the identifier projections of the History methods they mirror.
func (o *legacyVisOracle) visibleTo(id uint64) []uint64 {
	var out []uint64
	for _, from := range o.order {
		if o.visible(from, id) {
			out = append(out, from)
		}
	}
	return out
}

func (o *legacyVisOracle) seenBy(id uint64) []uint64 {
	var out []uint64
	for _, to := range o.order {
		if o.visible(id, to) {
			out = append(out, to)
		}
	}
	return out
}

func (o *legacyVisOracle) visEdges() map[[2]uint64]bool {
	out := make(map[[2]uint64]bool)
	for from, tos := range o.vis {
		for to := range tos {
			out[[2]uint64{from, to}] = true
		}
	}
	return out
}

// assertPredMirror asserts the predecessor mirror is exactly the transpose
// of the reachability index: pred[r] has bit s iff reach[s] has bit r, for
// every ordered pair of ranks. The mirror is maintained by its own
// propagation walk (propagatePred/flushPred), so any divergence between the
// two walks shows up here before it can skew VisibleTo or indegree setup.
func assertPredMirror(t *testing.T, h *History) {
	t.Helper()
	n := h.Len()
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			if got, want := h.pred[r].test(s), h.reach[s].test(r); got != want {
				t.Fatalf("pred mirror diverged at (pred[%d] bit %d) = %v, transpose wants %v\n%s", r, s, got, want, h)
			}
		}
	}
}

// assertMatchesOracle compares every visibility query of h against the
// map-closure oracle: Vis and Concurrent over all ordered pairs (including
// identifiers outside the history), VisibleTo/SeenBy sequences per label,
// and the VisEdges edge set (which must also be duplicate-free). It also
// asserts h's internal predecessor mirror is the exact transpose of its
// reachability index.
func assertMatchesOracle(t *testing.T, h *History, o *legacyVisOracle) {
	t.Helper()
	assertPredMirror(t, h)
	if h.Len() != len(o.order) {
		t.Fatalf("label count diverged: %d vs %d", h.Len(), len(o.order))
	}
	probe := append(append([]uint64(nil), o.order...), 0, ^uint64(0))
	for _, a := range probe {
		for _, b := range probe {
			if got, want := h.Vis(a, b), o.visible(a, b); got != want {
				t.Fatalf("Vis(%d, %d) = %v, oracle %v\n%s", a, b, got, want, h)
			}
			if got, want := h.Concurrent(a, b), o.concurrent(a, b); got != want {
				t.Fatalf("Concurrent(%d, %d) = %v, oracle %v", a, b, got, want)
			}
		}
	}
	for _, id := range o.order {
		l := h.Label(id)
		if l == nil {
			t.Fatalf("label %d missing", id)
		}
		if got, want := labelIDs(h.VisibleTo(l)), o.visibleTo(id); !equalIDs(got, want) {
			t.Fatalf("VisibleTo(%d) = %v, oracle %v", id, got, want)
		}
		if got, want := labelIDs(h.SeenBy(l)), o.seenBy(id); !equalIDs(got, want) {
			t.Fatalf("SeenBy(%d) = %v, oracle %v", id, got, want)
		}
	}
	want := o.visEdges()
	got := make(map[[2]uint64]bool, len(want))
	h.VisEdges(func(from, to uint64) {
		e := [2]uint64{from, to}
		if got[e] {
			t.Fatalf("VisEdges emitted %v twice", e)
		}
		got[e] = true
	})
	if len(got) != len(want) {
		t.Fatalf("VisEdges emitted %d edges, oracle closure has %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("VisEdges missed closure edge %v", e)
		}
	}
	if !h.IsAcyclic() {
		t.Fatal("AddVis-built history must be acyclic")
	}
}

func labelIDs(ls []*Label) []uint64 {
	out := make([]uint64, len(ls))
	for i, l := range ls {
		out[i] = l.ID
	}
	return out
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyEdgeDifferential feeds one AddVis to both representations — plus the
// same edge as a one-element AddVisBatch to the batch twin hb, when one is
// supplied — and asserts every representation returns the same verdict (nil,
// or the identical error message).
func applyEdgeDifferential(t *testing.T, h, hb *History, o *legacyVisOracle, from, to uint64) {
	t.Helper()
	errNew := h.AddVis(from, to)
	errOld := o.addVis(from, to)
	switch {
	case errNew == nil && errOld == nil:
	case errNew != nil && errOld != nil && errNew.Error() == errOld.Error():
	default:
		t.Fatalf("AddVis(%d, %d) verdicts diverged: bitset %v, oracle %v", from, to, errNew, errOld)
	}
	if hb == nil {
		return
	}
	errBatch := hb.AddVisBatch([]VisEdge{{From: from, To: to}})
	switch {
	case errBatch == nil && errOld == nil:
	case errBatch != nil && errOld != nil && errBatch.Error() == errOld.Error():
	default:
		t.Fatalf("AddVisBatch(%d, %d) verdicts diverged: batch %v, oracle %v", from, to, errBatch, errOld)
	}
}

// TestHistoryBitsetMatchesLegacyOracle drives the rank/bitset index and the
// map-closure oracle through random DAG edge sequences of characteristic
// shapes — dense layered DAGs, sparse pairs, chains, fan-in, fan-out, and
// unrestricted random pairs that also exercise reflexive, unknown-label and
// cycle errors — asserting every query agrees after every insertion round.
func TestHistoryBitsetMatchesLegacyOracle(t *testing.T) {
	type shape struct {
		name  string
		edges func(rng *rand.Rand, n int) [][2]uint64
	}
	shapes := []shape{
		{"dense", func(rng *rand.Rand, n int) [][2]uint64 {
			var es [][2]uint64
			for i := 2; i <= n; i++ {
				for j := 1; j < i; j++ {
					if rng.Intn(2) == 0 {
						es = append(es, [2]uint64{uint64(j), uint64(i)})
					}
				}
			}
			return es
		}},
		{"sparse", func(rng *rand.Rand, n int) [][2]uint64 {
			var es [][2]uint64
			for i := 1; i+1 <= n; i += 2 {
				es = append(es, [2]uint64{uint64(i), uint64(i + 1)})
			}
			return es
		}},
		{"chain", func(rng *rand.Rand, n int) [][2]uint64 {
			var es [][2]uint64
			for i := 1; i < n; i++ {
				es = append(es, [2]uint64{uint64(i), uint64(i + 1)})
			}
			return es
		}},
		{"fan-in", func(rng *rand.Rand, n int) [][2]uint64 {
			var es [][2]uint64
			for i := 1; i < n; i++ {
				es = append(es, [2]uint64{uint64(i), uint64(n)})
			}
			return es
		}},
		{"fan-out", func(rng *rand.Rand, n int) [][2]uint64 {
			var es [][2]uint64
			for i := 2; i <= n; i++ {
				es = append(es, [2]uint64{1, uint64(i)})
			}
			return es
		}},
		{"random", func(rng *rand.Rand, n int) [][2]uint64 {
			var es [][2]uint64
			for k := 0; k < 4*n; k++ {
				// Ids beyond n exercise unknown-label errors; unordered pairs
				// exercise the cycle check from both sides.
				es = append(es, [2]uint64{uint64(rng.Intn(n + 2)), uint64(rng.Intn(n + 2))})
			}
			return es
		}},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 3 + rng.Intn(14)
				h := NewHistory()
				hb := NewHistory()
				o := newLegacyVisOracle()
				for i := 1; i <= n; i++ {
					l := mkLabel(uint64(i), "op", KindUpdate)
					h.MustAdd(l)
					hb.MustAdd(mkLabel(uint64(i), "op", KindUpdate))
					if err := o.add(l); err != nil {
						t.Fatal(err)
					}
				}
				edges := s.edges(rng, n)
				rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
				var applied []VisEdge
				for k, e := range edges {
					applyEdgeDifferential(t, h, hb, o, e[0], e[1])
					if h.Vis(e[0], e[1]) {
						// Accepted (or already implied): part of the prefix a
						// chunked AddVisBatch replay must reproduce exactly.
						applied = append(applied, VisEdge{From: e[0], To: e[1]})
					}
					// Full-query comparison every few edges and at the end —
					// per-edge on the last one so divergence is caught at the
					// smallest counterexample.
					if k%5 == 4 || k == len(edges)-1 {
						assertMatchesOracle(t, h, o)
						assertMatchesOracle(t, hb, o)
					}
				}
				assertMatchesOracle(t, h, o)
				assertMatchesOracle(t, hb, o)
				// Chunked-batch variant: replay the accepted edges through
				// AddVisBatch in arbitrary chunks (runs split mid-stream) and
				// assert the result matches the oracle too — any chunking of a
				// sequence must be equivalent to its sequential application.
				hc := NewHistory()
				for i := 1; i <= n; i++ {
					hc.MustAdd(mkLabel(uint64(i), "op", KindUpdate))
				}
				for len(applied) > 0 {
					chunk := 1 + rng.Intn(5)
					if chunk > len(applied) {
						chunk = len(applied)
					}
					if err := hc.AddVisBatch(applied[:chunk]); err != nil {
						t.Fatalf("chunked AddVisBatch replay of accepted edges errored: %v", err)
					}
					applied = applied[chunk:]
				}
				assertMatchesOracle(t, hc, o)
			}
		})
	}
}

// TestHistoryCloneProjectMatchOracle covers the derived constructors: clones
// must preserve the exact closure, and projections must restrict the closure
// (keeping paths through dropped labels).
func TestHistoryCloneProjectMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		h := NewHistory()
		o := newLegacyVisOracle()
		for i := 1; i <= n; i++ {
			l := &Label{ID: uint64(i), Method: "op", Kind: KindUpdate, GenSeq: uint64(i), Object: []string{"o1", "o2"}[i%2]}
			h.MustAdd(l)
			if err := o.add(l); err != nil {
				t.Fatal(err)
			}
		}
		for i := 2; i <= n; i++ {
			for j := 1; j < i; j++ {
				if rng.Intn(3) == 0 {
					applyEdgeDifferential(t, h, nil, o, uint64(j), uint64(i))
				}
			}
		}
		assertMatchesOracle(t, h.Clone(), o)
		p := h.ProjectObject("o1")
		for a := uint64(1); a <= uint64(n); a++ {
			for b := uint64(1); b <= uint64(n); b++ {
				inP := p.Label(a) != nil && p.Label(b) != nil
				if got, want := p.Vis(a, b), inP && o.visible(a, b); got != want {
					t.Fatalf("projected Vis(%d, %d) = %v, oracle restriction %v", a, b, got, want)
				}
			}
		}
	}
}

func TestHistoryString(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Method: "add", Args: []Value{"x"}, Kind: KindUpdate, Origin: 1})
	b := h.MustAdd(&Label{ID: 2, Method: "read", Ret: []string{"x"}, Kind: KindQuery, Origin: 2})
	h.MustAddVis(a.ID, b.ID)
	s := h.String()
	if !strings.Contains(s, "add(x)") || !strings.Contains(s, "sees 1") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
}
