package core

// This file holds the chunked per-history arenas backing the visibility
// index. Before them, every AddVis edge paid ~3 small heap allocations: the
// first adjacency entry of a rank allocated its slice, the mirrored entry
// allocated the reverse slice, and the first reachability bit of a rank
// allocated its bitset row. The arenas carve all three out of chunked backing
// arrays owned by the history, so edge insertion allocates only when a chunk
// fills — amortized to ~0 allocations per edge (BenchmarkAddVisSparse gates
// the drop). Carved regions are never recycled: a row that outgrows its
// carve is re-carved with doubled capacity and the old region becomes dead
// weight inside its chunk, which stays reachable only while some row still
// points into it. That waste is bounded by the doubling and is the price of
// keeping rows ordinary slices (no indirection on the read path).

// arenaChunkWords is the allocation unit of wordArena: 8 KiB of row words.
const arenaChunkWords = 1024

// arenaChunkEdges is the allocation unit of int32Arena: 4 KiB of adjacency
// entries.
const arenaChunkEdges = 1024

// wordArena carves []uint64 rows (bitset backing) out of chunked arrays. The
// zero value is ready to use; the arena itself only holds the current chunk —
// finished chunks are kept alive by the rows carved from them.
type wordArena struct {
	cur []uint64
}

// carve returns a zero-length row with capacity n words. The row is
// three-index sliced, so appending beyond n cannot bleed into a neighbouring
// carve — it falls back to an ordinary heap grow instead.
func (a *wordArena) carve(n int) []uint64 {
	if len(a.cur)+n > cap(a.cur) {
		size := arenaChunkWords
		if n > size {
			size = n
		}
		a.cur = make([]uint64, 0, size)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	return a.cur[off : off : off+n]
}

// int32Arena carves []int32 adjacency rows out of chunked arrays; same
// contract as wordArena.
type int32Arena struct {
	cur []int32
}

// carve returns a zero-length row with capacity n entries.
func (a *int32Arena) carve(n int) []int32 {
	if len(a.cur)+n > cap(a.cur) {
		size := arenaChunkEdges
		if n > size {
			size = n
		}
		a.cur = make([]int32, 0, size)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	return a.cur[off : off : off+n]
}

// appendEdge appends v to an arena-backed adjacency row, re-carving with
// doubled capacity when the row is full (the old carve becomes chunk-internal
// waste, bounded by the doubling).
func (a *int32Arena) appendEdge(row []int32, v int32) []int32 {
	if len(row) == cap(row) {
		want := 2 * len(row)
		if want < 4 {
			want = 4
		}
		fresh := a.carve(want)[:len(row)]
		copy(fresh, row)
		row = fresh
	}
	return append(row, v)
}
