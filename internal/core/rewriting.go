package core

import (
	"fmt"
	"slices"
)

// Rewriting is a query-update rewriting γ (Definition 3.7). It maps every
// label to either one label (queries and updates, whose kind must be
// preserved) or a pair of labels (query-updates, split into a query followed
// by an update). Returned labels need not carry unique identifiers or
// generator sequence numbers; RewriteHistory assigns fresh ones.
type Rewriting interface {
	// Rewrite maps a label to its γ-image: a slice of length one or two.
	Rewrite(l *Label) ([]*Label, error)
}

// IdentityRewriting leaves every label unchanged. It is only applicable to
// histories without query-update labels.
type IdentityRewriting struct{}

// Rewrite returns the label itself.
func (IdentityRewriting) Rewrite(l *Label) ([]*Label, error) {
	return []*Label{l.Clone()}, nil
}

// RewriteFunc adapts a function to the Rewriting interface.
type RewriteFunc func(l *Label) ([]*Label, error)

// Rewrite calls the function.
func (f RewriteFunc) Rewrite(l *Label) ([]*Label, error) { return f(l) }

// rewrittenPair records the γ-image of a label inside a rewritten history:
// the query part and the update part (equal for singleton images).
type rewrittenPair struct {
	qry uint64
	upd uint64
}

// RewrittenHistory is the γ-rewriting γ(h) of a history together with the
// mapping from original label identifiers to the identifiers of their images.
type RewrittenHistory struct {
	// History is the rewritten history (L', vis'). For the identity fast
	// path (nil rewriting, no query-updates) it aliases the input history.
	History *History
	// images maps each original label identifier to its query/update parts;
	// nil means the identity rewriting, whose images are the labels
	// themselves.
	images map[uint64]rewrittenPair
	// nextID is the last image identifier assigned on the cloning path, kept
	// so ExtendRewriting continues the sequence exactly where a from-scratch
	// rewrite of the longer history would.
	nextID uint64
}

// Aliased reports whether the rewriting took the identity fast path: History
// aliases the checked input instead of being a rewritten clone.
func (r *RewrittenHistory) Aliased() bool { return r.images == nil }

// QueryPart returns the rewritten label playing the role qry(γ(ℓ)) for the
// original label identifier id.
func (r *RewrittenHistory) QueryPart(id uint64) *Label {
	if r.images == nil {
		return r.History.Label(id)
	}
	return r.History.Label(r.images[id].qry)
}

// UpdatePart returns the rewritten label playing the role upd(γ(ℓ)) for the
// original label identifier id.
func (r *RewrittenHistory) UpdatePart(id uint64) *Label {
	if r.images == nil {
		return r.History.Label(id)
	}
	return r.History.Label(r.images[id].upd)
}

// RewriteHistory builds the γ-rewriting of h following Definition 3.7:
//
//   - every label ℓ is replaced by γ(ℓ) (one or two labels);
//   - for pairs (ℓ1, ℓ2), the query ℓ1 is ordered before the update ℓ2;
//   - whenever (ℓ, ℓ') ∈ vis, (upd(γ(ℓ)), qry(γ(ℓ'))) ∈ vis'.
//
// Kinds are validated: queries map to queries, updates to updates, and
// query-updates to a (query, update) pair.
func RewriteHistory(h *History, g Rewriting) (*RewrittenHistory, error) {
	if g == nil {
		// A nil rewriting declares γ = id. On a history without query-update
		// labels the identity rewriting only relabels (fresh IDs, doubled
		// GenSeq) without changing structure, kinds, the GenSeq order or the
		// visibility relation, so alias the input instead of cloning it —
		// this is the whole per-history rewrite cost of an identity-
		// rewritten batch check. Query-updates are still rejected exactly
		// like IdentityRewriting would, walking insertion order so the error
		// deterministically names the first offending label. The scan uses
		// the internal rank slice directly — h.Labels() would copy the
		// whole label slice on a path whose point is paying nothing per
		// history.
		//
		// Aliasing is only taken when the GenSeqs are pairwise distinct:
		// candidate orders break GenSeq *ties* on label ID, which under
		// aliasing is the original ID rather than the fresh insertion-order
		// ID cloning would assign, so a tied history could linearize its tied
		// labels in a different order than the cloned run. The same scan
		// watches for ties — GenSeqs issued by the runtimes increase along
		// insertion order, so the common case stays a single allocation-free
		// pass, and only an out-of-order history pays for a duplicate check —
		// and a tie falls back to the cloning path below, keeping aliased and
		// cloned runs byte-identical on every input.
		monotone := true
		var prev uint64
		for k, l := range h.seq {
			if l.IsQueryUpdate() {
				return nil, fmt.Errorf("rewrite %v: query-update must map to a (query, update) pair", l)
			}
			if k > 0 && l.GenSeq <= prev {
				monotone = false
			}
			prev = l.GenSeq
		}
		if !monotone && hasGenSeqTie(h) {
			g = IdentityRewriting{}
		} else {
			return &RewrittenHistory{History: h}, nil
		}
	}
	out := &RewrittenHistory{History: NewHistory(), images: make(map[uint64]rewrittenPair, len(h.seq))}
	out.History.reserve(2 * len(h.seq))
	for _, l := range h.seq {
		if err := out.appendImage(l, g); err != nil {
			return nil, err
		}
	}
	// Transport the visibility relation: only the DIRECT edges move — for
	// (ℓ, ℓ') directly inserted, (upd(γ(ℓ)), qry(γ(ℓ'))) is inserted into
	// vis', whose own reachability index re-derives the closure. Transporting
	// the closure edge by edge (the previous representation's only option —
	// it stored nothing else) made the transport itself Θ(|vis⁺|) AddVis
	// calls; the generating set is what the original construction actually
	// inserted, typically Θ(n). The closures agree because every transitive
	// source path ℓ → ℓ₁ → … → ℓ' transports to a vis' path through the
	// per-pair qry→upd edges added above. Target ranks are sorted per source
	// so the transport (and any error it surfaces) is deterministic for a
	// given history.
	var tos []int32
	for rf, outs := range h.adjOut {
		if len(outs) == 0 {
			continue
		}
		tos = append(tos[:0], outs...)
		slices.Sort(tos)
		from := h.seq[rf]
		updFrom := out.images[from.ID].upd
		for _, rt := range tos {
			to := h.seq[rt]
			if err := out.History.AddVis(updFrom, out.images[to.ID].qry); err != nil {
				return nil, fmt.Errorf("rewrite visibility %v -> %v: %w", from, to, err)
			}
		}
	}
	return out, nil
}

// appendImage clones l's γ-image into the rewritten history on the cloning
// path, assigning the next fresh identifier(s) and the doubled GenSeqs, and
// records the image pair. Identifier assignment depends only on the labels
// appended before this one, so appending through ExtendRewriting reproduces
// exactly the labels a from-scratch rewrite of the longer history would
// build.
func (r *RewrittenHistory) appendImage(l *Label, g Rewriting) error {
	imgs, err := g.Rewrite(l)
	if err != nil {
		return fmt.Errorf("rewrite %v: %w", l, err)
	}
	switch len(imgs) {
	case 1:
		img := imgs[0].Clone()
		if l.IsQueryUpdate() {
			return fmt.Errorf("rewrite %v: query-update must map to a (query, update) pair", l)
		}
		if img.Kind != l.Kind {
			return fmt.Errorf("rewrite %v: image kind %v differs from original kind %v", l, img.Kind, l.Kind)
		}
		r.nextID++
		img.ID = r.nextID
		img.Origin = l.Origin
		img.GenSeq = l.GenSeq * 2
		if err := r.History.Add(img); err != nil {
			return err
		}
		r.images[l.ID] = rewrittenPair{qry: img.ID, upd: img.ID}
	case 2:
		if !l.IsQueryUpdate() {
			return fmt.Errorf("rewrite %v: only query-updates may map to pairs", l)
		}
		q, u := imgs[0].Clone(), imgs[1].Clone()
		if !q.IsQuery() || !u.IsUpdate() {
			return fmt.Errorf("rewrite %v: pair must be (query, update), got (%v, %v)", l, q.Kind, u.Kind)
		}
		r.nextID++
		q.ID = r.nextID
		q.Origin = l.Origin
		q.GenSeq = l.GenSeq * 2
		r.nextID++
		u.ID = r.nextID
		u.Origin = l.Origin
		u.GenSeq = l.GenSeq*2 + 1
		if err := r.History.Add(q); err != nil {
			return err
		}
		if err := r.History.Add(u); err != nil {
			return err
		}
		if err := r.History.AddVis(q.ID, u.ID); err != nil {
			return err
		}
		r.images[l.ID] = rewrittenPair{qry: q.ID, upd: u.ID}
	default:
		return fmt.Errorf("rewrite %v: image must have one or two labels, got %d", l, len(imgs))
	}
	return nil
}

// ExtendRewriting appends the γ-images of h's labels from rank oldLen onward
// to rew — which must be the (cloning-path) rewriting of h's first oldLen
// labels under g — and transports the direct visibility edges targeting the
// new labels. The caller guarantees the incremental edge discipline: every
// direct edge recorded in h since rew was built has its target among the new
// ranks (old→new or new→new). Under that precondition the extended rew is
// label-for-label and closure-identical to RewriteHistory(h, g); on any error
// rew may hold a partial extension and must be discarded and rebuilt.
func ExtendRewriting(rew *RewrittenHistory, h *History, oldLen int, g Rewriting) error {
	if rew.images == nil {
		return fmt.Errorf("rewrite: cannot extend an aliased identity rewriting")
	}
	if g == nil {
		g = IdentityRewriting{}
	}
	for _, l := range h.seq[oldLen:] {
		if err := rew.appendImage(l, g); err != nil {
			return err
		}
	}
	// Transport the new direct edges. From-scratch transport iterates sources
	// in rank order with sorted targets; here the new edges are found per
	// target instead (sorted sources), which inserts the same generating set —
	// the closures, and therefore every check-visible query, agree.
	var froms []int32
	for rt := oldLen; rt < len(h.seq); rt++ {
		ins := h.adjIn[rt]
		if len(ins) == 0 {
			continue
		}
		froms = append(froms[:0], ins...)
		slices.Sort(froms)
		to := h.seq[rt]
		qryTo := rew.images[to.ID].qry
		for _, rf := range froms {
			from := h.seq[rf]
			if err := rew.History.AddVis(rew.images[from.ID].upd, qryTo); err != nil {
				return fmt.Errorf("rewrite visibility %v -> %v: %w", from, to, err)
			}
		}
	}
	return nil
}

// hasGenSeqTie reports whether two labels of h share a generator sequence
// number. Only called on the nil-rewriting fast path after the cheap
// monotonicity scan failed, so the map is off the common path.
func hasGenSeqTie(h *History) bool {
	seen := make(map[uint64]struct{}, len(h.seq))
	for _, l := range h.seq {
		gs := l.GenSeq
		if _, dup := seen[gs]; dup {
			return true
		}
		seen[gs] = struct{}{}
	}
	return false
}
