package core

import (
	"fmt"
	"testing"
)

func TestAdmitsCounter(t *testing.T) {
	spec := counterSpec{}
	seq := []*Label{
		{ID: 1, Method: "inc", Kind: KindUpdate},
		{ID: 2, Method: "inc", Kind: KindUpdate},
		{ID: 3, Method: "dec", Kind: KindUpdate},
		{ID: 4, Method: "read", Ret: int64(1), Kind: KindQuery},
	}
	if !Admits(spec, seq) {
		t.Fatal("sequence must be admitted")
	}
	bad := append(append([]*Label(nil), seq[:3]...), &Label{ID: 5, Method: "read", Ret: int64(7), Kind: KindQuery})
	if Admits(spec, bad) {
		t.Fatal("wrong read value must be rejected")
	}
	if idx := FirstRejected(spec, bad); idx != 3 {
		t.Fatalf("FirstRejected = %d, want 3", idx)
	}
	if idx := FirstRejected(spec, seq); idx != -1 {
		t.Fatalf("FirstRejected on admitted sequence = %d, want -1", idx)
	}
}

func TestAdmitsEmptySequence(t *testing.T) {
	if !Admits(counterSpec{}, nil) {
		t.Fatal("empty sequence must be admitted")
	}
	states := StatesAfter(counterSpec{}, nil)
	if len(states) != 1 || !states[0].EqualAbs(counterState(0)) {
		t.Fatal("empty sequence must yield the initial state")
	}
}

func TestAdmitsUnknownMethod(t *testing.T) {
	if Admits(counterSpec{}, []*Label{{ID: 1, Method: "frobnicate"}}) {
		t.Fatal("unknown method must be rejected")
	}
}

func TestNondeterministicSpecFollowsAllBranches(t *testing.T) {
	spec := choiceSpec{}
	// After flip, the state is 1 or 2; a read of either value must be
	// admitted, a read of 3 must not.
	base := []*Label{{ID: 1, Method: "flip", Kind: KindUpdate}}
	for _, v := range []int64{1, 2} {
		seq := append(append([]*Label(nil), base...), &Label{ID: 2, Method: "read", Ret: v, Kind: KindQuery})
		if !Admits(spec, seq) {
			t.Fatalf("read %d must be admitted", v)
		}
	}
	seq := append(append([]*Label(nil), base...), &Label{ID: 2, Method: "read", Ret: int64(3), Kind: KindQuery})
	if Admits(spec, seq) {
		t.Fatal("read 3 must be rejected")
	}
	// Both branches survive as reachable states.
	states := StatesAfter(spec, base)
	if len(states) != 2 {
		t.Fatalf("expected 2 reachable states, got %d", len(states))
	}
}

func TestStatesAfterDeduplicates(t *testing.T) {
	spec := choiceSpec{}
	seq := []*Label{
		{ID: 1, Method: "flip", Kind: KindUpdate},
		{ID: 2, Method: "flip", Kind: KindUpdate},
	}
	states := StatesAfter(spec, seq)
	// Two flips from two branches give four successor states, but only the
	// two distinct values must remain.
	if len(states) != 2 {
		t.Fatalf("expected deduplicated states, got %d", len(states))
	}
}

func TestSetSpec(t *testing.T) {
	spec := setSpec{}
	seq := []*Label{
		{ID: 1, Method: "add", Args: []Value{"a"}, Kind: KindUpdate},
		{ID: 2, Method: "add", Args: []Value{"b"}, Kind: KindUpdate},
		{ID: 3, Method: "remove", Args: []Value{"a"}, Kind: KindUpdate},
		{ID: 4, Method: "read", Ret: []string{"b"}, Kind: KindQuery},
	}
	if !Admits(spec, seq) {
		t.Fatal("set sequence must be admitted")
	}
	seq[3].Ret = []string{"a", "b"}
	if Admits(spec, seq) {
		t.Fatal("stale read must be rejected")
	}
}

// keyedState implements StateKeyer for the DedupStates fast-path test.
type keyedState int64

func (s keyedState) CloneAbs() AbsState       { return s }
func (s keyedState) EqualAbs(o AbsState) bool { c, ok := o.(keyedState); return ok && c == s }
func (s keyedState) String() string           { return fmt.Sprintf("%d", int64(s)) }
func (s keyedState) StateKey() (string, bool) { return s.String(), true }

// TestDedupStatesKeyedFastPath drives DedupStates over the key-map threshold
// with keyable states: the result must keep exactly the distinct states in
// first-occurrence order, matching the EqualAbs fallback.
func TestDedupStatesKeyedFastPath(t *testing.T) {
	var states []AbsState
	for i := 0; i < 3*dedupKeyedThreshold; i++ {
		states = append(states, keyedState(i%5))
	}
	out := DedupStates(states)
	if len(out) != 5 {
		t.Fatalf("expected 5 distinct states, got %d", len(out))
	}
	for i, s := range out {
		if s.(keyedState) != keyedState(i) {
			t.Fatalf("first-occurrence order broken at %d: %v", i, out)
		}
	}
}

// TestDedupStatesUnkeyedFallback checks the EqualAbs fallback still dedups
// large sets of states without canonical keys.
func TestDedupStatesUnkeyedFallback(t *testing.T) {
	var states []AbsState
	for i := 0; i < 3*dedupKeyedThreshold; i++ {
		states = append(states, counterState(i%4))
	}
	if out := DedupStates(states); len(out) != 4 {
		t.Fatalf("expected 4 distinct states, got %d", len(out))
	}
}

// TestDedupStatesSmallSets covers the short-circuit paths.
func TestDedupStatesSmallSets(t *testing.T) {
	if out := DedupStates(nil); len(out) != 0 {
		t.Fatalf("empty input must stay empty, got %v", out)
	}
	one := []AbsState{keyedState(7)}
	if out := DedupStates(one); len(out) != 1 || out[0].(keyedState) != 7 {
		t.Fatalf("singleton must pass through, got %v", out)
	}
}
