package core

// Toy specifications used by the core package tests only. The real
// specifications of the paper's data types live in internal/spec; these exist
// so the checker can be exercised independently.

import "fmt"

// counterState is an integer abstract state.
type counterState int64

func (s counterState) CloneAbs() AbsState       { return s }
func (s counterState) EqualAbs(o AbsState) bool { c, ok := o.(counterState); return ok && c == s }
func (s counterState) String() string           { return fmt.Sprintf("%d", int64(s)) }

// counterSpec is the Spec(Counter) of Example 3.2: inc, dec, read.
type counterSpec struct{}

func (counterSpec) Name() string   { return "Spec(TestCounter)" }
func (counterSpec) Init() AbsState { return counterState(0) }

func (counterSpec) Step(phi AbsState, l *Label) []AbsState {
	s := phi.(counterState)
	switch l.Method {
	case "inc":
		return []AbsState{s + 1}
	case "dec":
		return []AbsState{s - 1}
	case "read":
		if ret, ok := l.Ret.(int64); ok && ret == int64(s) {
			return []AbsState{s}
		}
		return nil
	default:
		return nil
	}
}

// setState is a plain set of strings.
type setState map[string]bool

func (s setState) CloneAbs() AbsState {
	c := make(setState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s setState) EqualAbs(o AbsState) bool {
	t, ok := o.(setState)
	if !ok || len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

func (s setState) String() string {
	return FormatValue(s.elems())
}

func (s setState) elems() []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	return SortedSet(out)
}

// setSpec is a naive sequential Set specification: add(a), remove(a),
// read() ⇒ sorted contents. It is the specification against which the
// Figure 5a execution is shown not to be linearizable.
type setSpec struct{}

func (setSpec) Name() string   { return "Spec(TestSet)" }
func (setSpec) Init() AbsState { return setState{} }

func (setSpec) Step(phi AbsState, l *Label) []AbsState {
	s := phi.(setState)
	switch l.Method {
	case "add":
		n := s.CloneAbs().(setState)
		n[l.Args[0].(string)] = true
		return []AbsState{n}
	case "remove":
		n := s.CloneAbs().(setState)
		delete(n, l.Args[0].(string))
		return []AbsState{n}
	case "read":
		want, ok := l.Ret.([]string)
		if ok && ValueEqual(want, s.elems()) {
			return []AbsState{s}
		}
		return nil
	default:
		return nil
	}
}

// choiceSpec is a deliberately nondeterministic specification used to test
// that the checker follows all branches: "flip" moves to either 1 or 2, and
// "read" succeeds only in the state matching its return value.
type choiceSpec struct{}

func (choiceSpec) Name() string   { return "Spec(TestChoice)" }
func (choiceSpec) Init() AbsState { return counterState(0) }

func (choiceSpec) Step(phi AbsState, l *Label) []AbsState {
	s := phi.(counterState)
	switch l.Method {
	case "flip":
		return []AbsState{counterState(1), counterState(2)}
	case "read":
		if ret, ok := l.Ret.(int64); ok && ret == int64(s) {
			return []AbsState{s}
		}
		return nil
	default:
		return nil
	}
}

// pairSetState is a set of element-identifier pairs, the abstract state of
// the OR-Set style specification of Example 3.4.
type pairSetState map[Pair]bool

func (s pairSetState) CloneAbs() AbsState {
	c := make(pairSetState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s pairSetState) EqualAbs(o AbsState) bool {
	t, ok := o.(pairSetState)
	if !ok || len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

func (s pairSetState) String() string { return FormatValue(s.pairs()) }

func (s pairSetState) pairs() []Pair {
	var out []Pair
	for p := range s {
		out = append(out, p)
	}
	return SortPairs(out)
}

func (s pairSetState) elems() []string {
	var out []string
	for p := range s {
		out = append(out, p.Elem)
	}
	return SortedSet(out)
}

// pairSetSpec implements the rewritten OR-Set specification used by the
// checker tests: add(a, id), removeIds(R), readIds(a) ⇒ R, read() ⇒ A.
type pairSetSpec struct{}

func (pairSetSpec) Name() string   { return "Spec(TestORSet)" }
func (pairSetSpec) Init() AbsState { return pairSetState{} }

func (pairSetSpec) Step(phi AbsState, l *Label) []AbsState {
	s := phi.(pairSetState)
	switch l.Method {
	case "add":
		p := Pair{Elem: l.Args[0].(string), ID: l.Args[1].(uint64)}
		if s[p] {
			return nil
		}
		n := s.CloneAbs().(pairSetState)
		n[p] = true
		return []AbsState{n}
	case "removeIds":
		n := s.CloneAbs().(pairSetState)
		for _, p := range l.Args[0].([]Pair) {
			delete(n, p)
		}
		return []AbsState{n}
	case "readIds":
		elem := l.Args[0].(string)
		var want []Pair
		for p := range s {
			if p.Elem == elem {
				want = append(want, p)
			}
		}
		if ValueEqual(SortPairs(want), l.Ret) {
			return []AbsState{s}
		}
		return nil
	case "read":
		if ValueEqual(s.elems(), l.Ret) {
			return []AbsState{s}
		}
		return nil
	default:
		return nil
	}
}

// pairSetRewriting tags adds with their label identifier and splits removes
// into readIds · removeIds.
var pairSetRewriting = RewriteFunc(func(l *Label) ([]*Label, error) {
	switch l.Method {
	case "add":
		c := l.Clone()
		c.Args = []Value{l.Args[0], l.ID}
		return []*Label{c}, nil
	case "remove":
		q := l.Clone()
		q.Method = "readIds"
		q.Kind = KindQuery
		u := l.Clone()
		u.Method = "removeIds"
		u.Args = []Value{l.Ret}
		u.Ret = nil
		u.Kind = KindUpdate
		return []*Label{q, u}, nil
	default:
		return []*Label{l.Clone()}, nil
	}
})
