package core

// AbsState is an abstract state ϕ of a sequential specification.
// Implementations are immutable from the checker's point of view: Step must
// not modify its input state.
type AbsState interface {
	// CloneAbs returns an independent copy of the state.
	CloneAbs() AbsState
	// EqualAbs reports whether two abstract states are equal.
	EqualAbs(AbsState) bool
	// String renders the state for diagnostics and figures.
	String() string
}

// Spec is an operational sequential specification (Definition 3.1, presented
// operationally as in Section 3.2): a transition relation over abstract
// states indexed by operation labels. Step returns the set of successor
// states, which is empty when the label is not admitted in the given state
// (precondition failure or mismatching return value) and may contain several
// states for nondeterministic specifications such as Wooki's addBetween.
type Spec interface {
	// Name identifies the specification (for example "Spec(RGA)").
	Name() string
	// Init returns the initial abstract state ϕ0.
	Init() AbsState
	// Step applies label l in state phi and returns all possible successor
	// states. It must not modify phi.
	Step(phi AbsState, l *Label) []AbsState
}

// StateKeyer is implemented by abstract states that expose a canonical,
// collision-free key: two states of the same specification must return equal
// keys exactly when EqualAbs holds. The pruned search engine memoizes visited
// (frontier-set, spec-state) pairs only for specifications whose states
// implement it; the second return value allows composite states to report
// that one of their components is not keyable.
type StateKeyer interface {
	// StateKey returns the canonical key and whether one is available.
	StateKey() (string, bool)
}

// StepAppender is the allocation-free fast path of a specification: instead
// of materializing a fresh successor slice per transition the way Spec.Step
// does, StepAppend appends the successor states of phi under l to dst and
// returns the extended slice. It must behave exactly like Step otherwise —
// same successors in the same order, dst[:len(dst)] left untouched, and no
// mutation of phi — so callers may use whichever surface they hold. The
// pruned search engine's hot loop steps through this interface with a reused
// scratch buffer, falling back to Step for foreign specifications.
type StepAppender interface {
	StepAppend(dst []AbsState, phi AbsState, l *Label) []AbsState
}

// StepInto applies label l to phi through the StepAppend fast path when the
// specification provides one, and through Step (with an appending copy)
// otherwise. The returned slice is dst extended with the successors.
func StepInto(s Spec, dst []AbsState, phi AbsState, l *Label) []AbsState {
	if sa, ok := s.(StepAppender); ok {
		return sa.StepAppend(dst, phi, l)
	}
	return append(dst, s.Step(phi, l)...)
}

// Admits reports whether the sequence of labels is admitted by the
// specification, that is, whether the labels can be applied in order starting
// from the initial state.
func Admits(s Spec, seq []*Label) bool {
	return len(StatesAfter(s, seq)) > 0
}

// StatesAfter returns the set of abstract states reachable by applying seq
// from the initial state, with duplicates removed. An empty result means the
// sequence is not admitted.
func StatesAfter(s Spec, seq []*Label) []AbsState {
	return statesFrom(s, []AbsState{s.Init()}, seq)
}

func statesFrom(s Spec, states []AbsState, seq []*Label) []AbsState {
	for _, l := range seq {
		var next []AbsState
		for _, phi := range states {
			next = StepInto(s, next, phi, l)
		}
		states = DedupStates(next)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}

// dedupKeyedThreshold is the set size above which DedupStates leaves the
// quadratic EqualAbs scan: below it the key machinery costs more than the
// handful of comparisons it saves.
const dedupKeyedThreshold = 8

// dedupHashedThreshold is the set size above which keyed deduplication
// switches from the stack-buffered hash scan to the map: the hash tier's
// fixed-size buffers hold 64 states, and past that the map's allocation
// amortizes anyway.
const dedupHashedThreshold = 64

// DedupStates removes duplicates from a set of abstract states, preserving
// first occurrences. Sets up to dedupKeyedThreshold use the pairwise EqualAbs
// scan (cheapest for a handful of states). Above it, sets whose states all
// expose canonical keys (StateKeyer) are deduplicated by key: mid-size sets
// (≤ dedupHashedThreshold) through an allocation-free word-hash scan over
// stack buffers, larger ones through a map. States without keys always fall
// back to the EqualAbs scan. The input slice may be reused as the result's
// backing storage. (The pruned search engine goes further and
// dedups by interned compact-ID bitset; this is the shared slow-path used by
// the legacy enumerator and the Admits/StatesAfter helpers.)
func DedupStates(states []AbsState) []AbsState {
	if len(states) <= 1 {
		return states
	}
	if len(states) > dedupKeyedThreshold {
		if len(states) <= dedupHashedThreshold {
			if out, ok := dedupByHash(states); ok {
				return out
			}
		} else if out, ok := dedupByKey(states); ok {
			return out
		}
	}
	var out []AbsState
	for _, s := range states {
		dup := false
		for _, t := range out {
			if t.EqualAbs(s) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// dedupByHash removes duplicates by canonical state key without allocating:
// each key is folded to a 64-bit hash in a stack array, candidates are
// compared hash-first (one word compare per prior state) and key-verified
// only on a hash match. Capacity is dedupHashedThreshold states; callers
// route larger sets to dedupByKey. Reports false as soon as any state does
// not expose a key.
func dedupByHash(states []AbsState) ([]AbsState, bool) {
	var hashes [dedupHashedThreshold]uint64
	var keys [dedupHashedThreshold]string
	n := 0
	w := 0
	for _, s := range states {
		keyer, ok := s.(StateKeyer)
		if !ok {
			return nil, false
		}
		key, ok := keyer.StateKey()
		if !ok {
			return nil, false
		}
		h := foldKey(key)
		dup := false
		for i := 0; i < n; i++ {
			if hashes[i] == h && keys[i] == key {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		hashes[n], keys[n] = h, key
		n++
		states[w] = s
		w++
	}
	return states[:w], true
}

// foldKey hashes a canonical state key to 64 bits: 8-byte little-endian
// chunks (plus a length-padded tail) mixed through splitmix64-style rounds,
// seeded by the key length so prefixes of one another do not collide
// trivially.
func foldKey(key string) uint64 {
	h := uint64(len(key)) ^ 0x9e3779b97f4a7c15
	i := 0
	for ; i+8 <= len(key); i += 8 {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(key[i+b]) << (8 * b)
		}
		h = foldMix(h ^ w)
	}
	if i < len(key) {
		var w uint64
		for b := 0; i+b < len(key); b++ {
			w |= uint64(key[i+b]) << (8 * b)
		}
		h = foldMix(h ^ w)
	}
	return h
}

// foldMix is one splitmix64 finalization round.
func foldMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// dedupByKey removes duplicates by canonical state key in O(n). It reports
// false — leaving the caller to the EqualAbs fallback — as soon as any state
// does not expose a key.
func dedupByKey(states []AbsState) ([]AbsState, bool) {
	seen := make(map[string]struct{}, len(states))
	out := make([]AbsState, 0, len(states))
	for _, s := range states {
		keyer, ok := s.(StateKeyer)
		if !ok {
			return nil, false
		}
		key, ok := keyer.StateKey()
		if !ok {
			return nil, false
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, s)
	}
	return out, true
}

// FirstRejected returns the index of the first label of seq that cannot be
// applied (following any nondeterministic branch), or -1 if the whole
// sequence is admitted. It is a diagnostic helper used in error messages.
func FirstRejected(s Spec, seq []*Label) int {
	states := []AbsState{s.Init()}
	for i, l := range seq {
		var next []AbsState
		for _, phi := range states {
			next = StepInto(s, next, phi, l)
		}
		states = DedupStates(next)
		if len(states) == 0 {
			return i
		}
	}
	return -1
}
