package core

import "math/bits"

// bitset is a dense bit vector over history ranks, the row type of the
// visibility reachability index. Rows grow lazily — a rank that reaches
// nothing holds no words at all — and only ever grow, so reslicing never
// resurfaces stale bits.
type bitset []uint64

// test reports whether bit i is set. Bits beyond the allocated words are
// unset by definition, so test never grows the row.
func (b bitset) test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// grow extends the row to at least words words, zero-filling the extension.
func (b *bitset) grow(words int) {
	if len(*b) >= words {
		return
	}
	if cap(*b) >= words {
		old := len(*b)
		*b = (*b)[:words]
		clear((*b)[old:])
		return
	}
	grown := make(bitset, words, max(words, 2*cap(*b)))
	copy(grown, *b)
	*b = grown
}

// set sets bit i and reports whether it was previously clear.
func (b *bitset) set(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	b.grow(w + 1)
	if (*b)[w]&m != 0 {
		return false
	}
	(*b)[w] |= m
	return true
}

// orInto ORs src into b, growing b as needed, and reports whether any bit of
// b changed. This is the closure-maintenance kernel: propagating a new edge
// ORs the target's successor row into every predecessor's in word-sized
// strides instead of per-pair map inserts.
func (b *bitset) orInto(src bitset) bool {
	b.grow(len(src))
	dst := *b
	changed := false
	for w, s := range src {
		if s&^dst[w] != 0 {
			dst[w] |= s
			changed = true
		}
	}
	return changed
}

// forEach calls fn for every set bit in ascending order.
func (b bitset) forEach(fn func(i int)) {
	for w, word := range b {
		base := w << 6
		for word != 0 {
			fn(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// clone returns an independent copy of the row.
func (b bitset) clone() bitset {
	if len(b) == 0 {
		return nil
	}
	return append(bitset(nil), b...)
}
