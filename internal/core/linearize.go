package core

import (
	"sort"
)

// ExecutionOrderLinearization returns the labels of h ordered by the order in
// which their generators executed at the origin replicas (Section 4.1). For
// rewritten histories the query part of a query-update precedes its update
// part, because RewriteHistory numbers them consecutively.
func ExecutionOrderLinearization(h *History) []*Label {
	seq := h.Labels()
	sort.SliceStable(seq, func(i, j int) bool {
		if seq[i].GenSeq != seq[j].GenSeq {
			return seq[i].GenSeq < seq[j].GenSeq
		}
		return seq[i].ID < seq[j].ID
	})
	return seq
}

// TimestampOrderLinearization returns the labels of h ordered primarily by
// their history timestamp ts_h (own timestamp, or the maximal visible one for
// operations that do not generate timestamps) and secondarily by generator
// execution order (Section 4.2).
func TimestampOrderLinearization(h *History) []*Label {
	seq := h.Labels()
	sort.SliceStable(seq, func(i, j int) bool {
		ti, tj := h.HistoryTimestamp(seq[i]), h.HistoryTimestamp(seq[j])
		if c := ti.Compare(tj); c != 0 {
			return c < 0
		}
		if seq[i].GenSeq != seq[j].GenSeq {
			return seq[i].GenSeq < seq[j].GenSeq
		}
		return seq[i].ID < seq[j].ID
	})
	return seq
}

// LinearExtensions enumerates linear extensions of the visibility relation of
// h (total orders of the labels consistent with visibility) and calls fn for
// each. Enumeration stops when fn returns false or when limit extensions have
// been produced (limit <= 0 means unlimited). It returns the number of
// extensions produced and whether the enumeration was stopped early because
// of the limit.
func LinearExtensions(h *History, limit int, fn func(seq []*Label) bool) (produced int, truncated bool) {
	labels := h.Labels()
	n := len(labels)
	// indegree[i] counts visibility predecessors of labels[i] not yet placed.
	indegree := make(map[uint64]int, n)
	for _, l := range labels {
		indegree[l.ID] = len(h.VisibleTo(l))
	}
	placed := make([]*Label, 0, n)
	used := make(map[uint64]bool, n)
	stop := false

	var rec func()
	rec = func() {
		if stop {
			return
		}
		if len(placed) == n {
			produced++
			if !fn(append([]*Label(nil), placed...)) {
				stop = true
			}
			if limit > 0 && produced >= limit {
				truncated = true
				stop = true
			}
			return
		}
		for _, l := range labels {
			if used[l.ID] || indegree[l.ID] != 0 {
				continue
			}
			used[l.ID] = true
			placed = append(placed, l)
			for _, s := range h.SeenBy(l) {
				indegree[s.ID]--
			}
			rec()
			for _, s := range h.SeenBy(l) {
				indegree[s.ID]++
			}
			placed = placed[:len(placed)-1]
			used[l.ID] = false
			if stop {
				return
			}
		}
	}
	rec()
	return produced, truncated
}

// filterLabels returns the labels of seq satisfying keep, preserving order.
func filterLabels(seq []*Label, keep func(*Label) bool) []*Label {
	var out []*Label
	for _, l := range seq {
		if keep(l) {
			out = append(out, l)
		}
	}
	return out
}
