package core

import (
	"testing"

	"ralin/internal/clock"
)

// counterHistory builds a small concurrent counter history:
//
//	r1: inc (1) · read ⇒ 1 (3)
//	r2: inc (2)
//
// where the read sees only r1's inc.
func counterHistory() *History {
	h := NewHistory()
	inc1 := h.MustAdd(&Label{ID: 1, Method: "inc", Kind: KindUpdate, Origin: 1, GenSeq: 1})
	h.MustAdd(&Label{ID: 2, Method: "inc", Kind: KindUpdate, Origin: 2, GenSeq: 2})
	read := h.MustAdd(&Label{ID: 3, Method: "read", Ret: int64(1), Kind: KindQuery, Origin: 1, GenSeq: 3})
	h.MustAddVis(inc1.ID, read.ID)
	return h
}

func TestIsRALinearizationCounter(t *testing.T) {
	h := counterHistory()
	spec := counterSpec{}
	seq := []*Label{h.Label(1), h.Label(2), h.Label(3)}
	if err := IsRALinearization(h, seq, spec); err != nil {
		t.Fatalf("valid RA-linearization rejected: %v", err)
	}
	// The read ignores the concurrent inc (it is not visible), so ordering
	// the second inc before the read is still fine; ordering the read before
	// its visible inc is not consistent with visibility.
	bad := []*Label{h.Label(3), h.Label(1), h.Label(2)}
	if err := IsRALinearization(h, bad, spec); err == nil {
		t.Fatal("sequence against visibility must be rejected")
	}
}

func TestIsRALinearizationRejectsWrongQuery(t *testing.T) {
	h := counterHistory()
	h.Label(3).Ret = int64(2) // the read saw only one inc, so 2 is unjustifiable
	spec := counterSpec{}
	seq := []*Label{h.Label(1), h.Label(2), h.Label(3)}
	if err := IsRALinearization(h, seq, spec); err == nil {
		t.Fatal("unjustifiable query must be rejected")
	}
}

func TestIsRALinearizationRejectsQueryUpdates(t *testing.T) {
	h := NewHistory()
	h.MustAdd(&Label{ID: 1, Method: "remove", Kind: KindQueryUpdate})
	if err := IsRALinearization(h, h.Labels(), setSpec{}); err == nil {
		t.Fatal("query-update labels must be rejected before rewriting")
	}
}

func TestCheckRACounter(t *testing.T) {
	h := counterHistory()
	res := CheckRA(h, counterSpec{}, DefaultCheckOptions())
	if !res.OK {
		t.Fatalf("history must be RA-linearizable: %v", res.LastErr)
	}
	if res.Strategy == nil || *res.Strategy != StrategyExecutionOrder {
		t.Fatalf("expected execution-order witness, got %v", res.Strategy)
	}
	if len(res.Linearization) != 3 {
		t.Fatalf("witness has %d labels", len(res.Linearization))
	}
}

func TestCheckRAExhaustiveFallback(t *testing.T) {
	// A history where the execution order is NOT a valid linearization but
	// some other order is: a read that does not see an earlier-generated
	// concurrent inc, and whose value requires the inc to come later.
	h := NewHistory()
	h.MustAdd(&Label{ID: 1, Method: "inc", Kind: KindUpdate, Origin: 2, GenSeq: 1})
	h.MustAdd(&Label{ID: 2, Method: "read", Ret: int64(0), Kind: KindQuery, Origin: 1, GenSeq: 2})
	// No visibility: the read saw nothing.
	opts := CheckOptions{Exhaustive: true}
	res := CheckRA(h, counterSpec{}, opts)
	if !res.OK {
		t.Fatalf("history must be RA-linearizable by some extension: %v", res.LastErr)
	}
	// With only the execution-order strategy and no exhaustive search the
	// verdict must be inconclusive (read⇒0 is fine actually: the read does not
	// see the inc, so even execution order works). Make the read see the inc
	// to force a genuine failure.
	h2 := NewHistory()
	inc := h2.MustAdd(&Label{ID: 1, Method: "inc", Kind: KindUpdate, Origin: 2, GenSeq: 1})
	read := h2.MustAdd(&Label{ID: 2, Method: "read", Ret: int64(0), Kind: KindQuery, Origin: 1, GenSeq: 2})
	h2.MustAddVis(inc.ID, read.ID)
	res2 := CheckRA(h2, counterSpec{}, DefaultCheckOptions())
	if res2.OK {
		t.Fatal("read⇒0 seeing an inc must not be RA-linearizable")
	}
	if !res2.Complete {
		t.Fatal("small search space must be exhausted")
	}
}

func TestCheckRANotLinearizableIsComplete(t *testing.T) {
	h := NewHistory()
	inc := h.MustAdd(&Label{ID: 1, Method: "inc", Kind: KindUpdate, Origin: 1, GenSeq: 1})
	read := h.MustAdd(&Label{ID: 2, Method: "read", Ret: int64(5), Kind: KindQuery, Origin: 1, GenSeq: 2})
	h.MustAddVis(inc.ID, read.ID)
	res := CheckRA(h, counterSpec{}, DefaultCheckOptions())
	if res.OK || !res.Complete {
		t.Fatalf("expected complete negative verdict, got %+v", res)
	}
	if res.LastErr == nil {
		t.Fatal("negative verdict must carry an explanation")
	}
}

func TestCheckRATruncatedSearchIsIncomplete(t *testing.T) {
	// Many concurrent unjustifiable reads: with a tiny extension cap the
	// search must report an incomplete verdict.
	h := NewHistory()
	var id uint64
	for i := 0; i < 6; i++ {
		id++
		h.MustAdd(&Label{ID: id, Method: "inc", Kind: KindUpdate, Origin: clock.ReplicaID(i), GenSeq: id})
	}
	id++
	bad := h.MustAdd(&Label{ID: id, Method: "read", Ret: int64(99), Kind: KindQuery, Origin: 0, GenSeq: id})
	for i := uint64(1); i <= 6; i++ {
		h.MustAddVis(i, bad.ID)
	}
	res := CheckRA(h, counterSpec{}, CheckOptions{Exhaustive: true, MaxExtensions: 3})
	if res.OK {
		t.Fatal("unjustifiable read cannot be linearized")
	}
	if res.Complete {
		t.Fatal("truncated search must be reported as incomplete")
	}
}

func TestCheckRAWithQueryUpdateRewriting(t *testing.T) {
	// OR-Set style scenario on the naive set spec via rewriting: the remove
	// observed only the first add, the concurrent add survives.
	h := NewHistory()
	add1 := h.MustAdd(&Label{ID: 1, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, Origin: 1, GenSeq: 1})
	add2 := h.MustAdd(&Label{ID: 2, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, Origin: 2, GenSeq: 2})
	rem := h.MustAdd(&Label{ID: 3, Method: "remove", Args: []Value{"a"}, Ret: []Pair{{Elem: "a", ID: 1}}, Kind: KindQueryUpdate, Origin: 1, GenSeq: 3})
	read := h.MustAdd(&Label{ID: 4, Method: "read", Ret: []string{"a"}, Kind: KindQuery, Origin: 2, GenSeq: 4})
	h.MustAddVis(add1.ID, rem.ID)
	h.MustAddVis(add1.ID, read.ID)
	h.MustAddVis(add2.ID, read.ID)
	h.MustAddVis(rem.ID, read.ID)

	// Specification over pairs: add(a) with identifier, removeIds(R), read.
	spec := pairSetSpec{}
	opts := DefaultCheckOptions()
	opts.Rewriting = pairSetRewriting
	res := CheckRA(h, spec, opts)
	if !res.OK {
		t.Fatalf("rewritten OR-Set style history must be RA-linearizable: %v", res.LastErr)
	}
	if res.Rewritten.Len() != 5 {
		t.Fatalf("rewritten history must have 5 labels, got %d", res.Rewritten.Len())
	}
}

func TestCheckStrongLinearizable(t *testing.T) {
	// The same counter history is strongly linearizable…
	res := CheckStrongLinearizable(counterHistory(), counterSpec{}, CheckOptions{})
	if !res.OK {
		t.Fatalf("counter history must be strongly linearizable: %v", res.LastErr)
	}
	// …but a read that sees both incs yet returns 1 is not.
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Method: "inc", Kind: KindUpdate, Origin: 1, GenSeq: 1})
	b := h.MustAdd(&Label{ID: 2, Method: "inc", Kind: KindUpdate, Origin: 2, GenSeq: 2})
	r := h.MustAdd(&Label{ID: 3, Method: "read", Ret: int64(1), Kind: KindQuery, Origin: 1, GenSeq: 3})
	h.MustAddVis(a.ID, r.ID)
	h.MustAddVis(b.ID, r.ID)
	res2 := CheckStrongLinearizable(h, counterSpec{}, CheckOptions{})
	if res2.OK || !res2.Complete {
		t.Fatal("read⇒1 seeing two incs must not be strongly linearizable")
	}
	// RA-linearizability is weaker only through the sub-sequence relaxation
	// for queries; here the read sees both updates so it must fail too.
	res3 := CheckRA(h, counterSpec{}, DefaultCheckOptions())
	if res3.OK {
		t.Fatal("read⇒1 seeing two incs must not be RA-linearizable either")
	}
}

func TestLinearExtensionsCountAndOrder(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(mkLabel(1, "a", KindUpdate))
	b := h.MustAdd(mkLabel(2, "b", KindUpdate))
	c := h.MustAdd(mkLabel(3, "c", KindUpdate))
	h.MustAddVis(a.ID, b.ID)
	_ = c

	var seen [][]uint64
	n, truncated := LinearExtensions(h, 0, func(seq []*Label) bool {
		ids := make([]uint64, len(seq))
		for i, l := range seq {
			ids[i] = l.ID
		}
		seen = append(seen, ids)
		return true
	})
	if truncated {
		t.Fatal("unbounded enumeration must not truncate")
	}
	// Three labels with one order constraint: 3!/2 = 3 extensions.
	if n != 3 || len(seen) != 3 {
		t.Fatalf("expected 3 extensions, got %d", n)
	}
	for _, ids := range seen {
		posA, posB := -1, -1
		for i, id := range ids {
			if id == 1 {
				posA = i
			}
			if id == 2 {
				posB = i
			}
		}
		if posA > posB {
			t.Fatalf("extension %v violates visibility", ids)
		}
	}
	// Early stop.
	n2, _ := LinearExtensions(h, 0, func(seq []*Label) bool { return false })
	if n2 != 1 {
		t.Fatalf("early stop must produce exactly one extension, got %d", n2)
	}
	// Limit.
	n3, truncated3 := LinearExtensions(h, 2, func(seq []*Label) bool { return true })
	if n3 != 2 || !truncated3 {
		t.Fatalf("limit must truncate at 2, got %d truncated=%v", n3, truncated3)
	}
}

func TestExecutionAndTimestampOrderLinearizations(t *testing.T) {
	h := NewHistory()
	// Generated later but with a smaller timestamp.
	b := h.MustAdd(&Label{ID: 1, Method: "addAfter", Kind: KindUpdate, GenSeq: 1, TS: clock.Timestamp{Time: 2, Replica: 1}})
	a := h.MustAdd(&Label{ID: 2, Method: "addAfter", Kind: KindUpdate, GenSeq: 2, TS: clock.Timestamp{Time: 1, Replica: 2}})
	r := h.MustAdd(&Label{ID: 3, Method: "read", Kind: KindQuery, GenSeq: 3})
	h.MustAddVis(a.ID, r.ID)
	h.MustAddVis(b.ID, r.ID)

	eo := ExecutionOrderLinearization(h)
	if eo[0] != b || eo[1] != a || eo[2] != r {
		t.Fatalf("execution order wrong: %s", FormatLabels(eo))
	}
	to := TimestampOrderLinearization(h)
	// a has the smaller timestamp; the read's virtual timestamp equals b's
	// timestamp (the maximum it sees) and the read was generated after b.
	if to[0] != a || to[1] != b || to[2] != r {
		t.Fatalf("timestamp order wrong: %s", FormatLabels(to))
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyExecutionOrder.String() != "execution-order" ||
		StrategyTimestampOrder.String() != "timestamp-order" {
		t.Fatal("strategy rendering wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy must still render")
	}
}
