package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ralin/internal/clock"
)

// randomHistory builds a random acyclic history with n labels: each label may
// see a random subset of the earlier ones (closed under transitivity by the
// History implementation itself).
func randomHistory(rng *rand.Rand, n int) *History {
	h := NewHistory()
	for i := 1; i <= n; i++ {
		kind := KindUpdate
		if rng.Intn(3) == 0 {
			kind = KindQuery
		}
		l := &Label{ID: uint64(i), Method: "op", Kind: kind, GenSeq: uint64(i), Origin: clock.ReplicaID(rng.Intn(3))}
		if rng.Intn(2) == 0 {
			l.TS = clock.Timestamp{Time: uint64(rng.Intn(20) + 1), Replica: l.Origin}
		}
		h.MustAdd(l)
		for j := 1; j < i; j++ {
			if rng.Intn(3) == 0 {
				h.MustAddVis(uint64(j), uint64(i))
			}
		}
	}
	return h
}

func TestHistoryVisibilityIsStrictPartialOrder(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 2+rng.Intn(7))
		labels := h.Labels()
		for _, a := range labels {
			if h.Vis(a.ID, a.ID) {
				return false // irreflexive
			}
			for _, b := range labels {
				if h.Vis(a.ID, b.ID) && h.Vis(b.ID, a.ID) {
					return false // asymmetric
				}
				for _, c := range labels {
					if h.Vis(a.ID, b.ID) && h.Vis(b.ID, c.ID) && !h.Vis(a.ID, c.ID) {
						return false // transitive
					}
				}
			}
		}
		return h.IsAcyclic()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryConcurrentIsSymmetricAndExclusive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 2+rng.Intn(7))
		labels := h.Labels()
		for _, a := range labels {
			for _, b := range labels {
				if a.ID == b.ID {
					continue
				}
				if h.Concurrent(a.ID, b.ID) != h.Concurrent(b.ID, a.ID) {
					return false
				}
				related := h.Vis(a.ID, b.ID) || h.Vis(b.ID, a.ID)
				if related == h.Concurrent(a.ID, b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearExtensionsAreConsistentWithVisibility(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 2+rng.Intn(5))
		ok := true
		LinearExtensions(h, 200, func(seq []*Label) bool {
			if err := h.ConsistentWithVis(seq); err != nil {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearExtensionsAreDistinct(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 2+rng.Intn(5))
		seen := map[string]bool{}
		ok := true
		LinearExtensions(h, 500, func(seq []*Label) bool {
			key := ""
			for _, l := range seq {
				key += FormatValue(l.ID) + "·"
			}
			if seen[key] {
				ok = false
				return false
			}
			seen[key] = true
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructiveLinearizationsPreserveLabelSets(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 1+rng.Intn(8))
		eo := ExecutionOrderLinearization(h)
		to := TimestampOrderLinearization(h)
		if len(eo) != h.Len() || len(to) != h.Len() {
			return false
		}
		seenEO := map[uint64]bool{}
		for _, l := range eo {
			seenEO[l.ID] = true
		}
		for _, l := range to {
			if !seenEO[l.ID] {
				return false
			}
		}
		// Execution order is sorted by generator sequence.
		for i := 1; i < len(eo); i++ {
			if eo[i-1].GenSeq > eo[i].GenSeq {
				return false
			}
		}
		// Timestamp order is sorted by the history timestamp.
		for i := 1; i < len(to); i++ {
			if h.HistoryTimestamp(to[i]).Less(h.HistoryTimestamp(to[i-1])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampOrderRespectsVisibilityWhenTimestampsDo(t *testing.T) {
	// When every label's timestamp order is consistent with visibility (as
	// guaranteed by the runtime's monotone generators), the timestamp-order
	// linearization is consistent with visibility.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistory()
		n := 2 + rng.Intn(6)
		for i := 1; i <= n; i++ {
			l := &Label{
				ID: uint64(i), Method: "op", Kind: KindUpdate, GenSeq: uint64(i),
				TS: clock.Timestamp{Time: uint64(i), Replica: 0},
			}
			h.MustAdd(l)
			for j := 1; j < i; j++ {
				if rng.Intn(3) == 0 {
					h.MustAddVis(uint64(j), uint64(i))
				}
			}
		}
		return h.ConsistentWithVis(TimestampOrderLinearization(h)) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectPreservesVisibility(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 2+rng.Intn(7))
		p := h.Project(func(l *Label) bool { return l.ID%2 == 0 })
		for _, a := range p.Labels() {
			for _, b := range p.Labels() {
				if p.Vis(a.ID, b.ID) != h.Vis(a.ID, b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteHistoryPreservesStructure(t *testing.T) {
	// Identity-rewritten histories keep their labels, kinds and visibility.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, 1+rng.Intn(7))
		rew, err := RewriteHistory(h, nil)
		if err != nil {
			return false
		}
		if rew.History.Len() != h.Len() {
			return false
		}
		if !rew.History.IsAcyclic() {
			return false
		}
		for _, a := range h.Labels() {
			img := rew.QueryPart(a.ID)
			if img == nil || img.Kind != a.Kind || img.Method != a.Method {
				return false
			}
			for _, b := range h.Labels() {
				if a.ID == b.ID {
					continue
				}
				if h.Vis(a.ID, b.ID) && !rew.History.Vis(rew.UpdatePart(a.ID).ID, rew.QueryPart(b.ID).ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedSetIdempotentAndSorted(t *testing.T) {
	prop := func(elems []string) bool {
		once := SortedSet(elems)
		twice := SortedSet(once)
		if !ValueEqual(once, twice) {
			return false
		}
		for i := 1; i < len(once); i++ {
			if once[i-1] >= once[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
