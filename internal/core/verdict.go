package core

import (
	"context"
	"fmt"
)

// Verdict is the three-valued outcome of an RA-linearizability check. The
// boolean pair (OK, Complete) the checker grew up with conflates "searched
// everything and found no witness" with "ran out of budget before deciding";
// a checker running under deadlines and memory budgets must keep them apart,
// because the second answer is not a refutation. The zero value is
// VerdictUnknown, so a Result that never reached a decision reports honestly
// by default.
type Verdict int

const (
	// VerdictUnknown: the check was truncated — by a deadline, a node or
	// memory budget, caller cancellation, or a recovered panic — before it
	// could decide. Result.Incomplete carries the reason. Unknown is always a
	// sound answer: it never has the wrong polarity.
	VerdictUnknown Verdict = iota
	// VerdictValid: a witness RA-linearization was found.
	VerdictValid
	// VerdictInvalid: the search space was exhausted and no witness exists.
	VerdictInvalid
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictValid:
		return "valid"
	case VerdictInvalid:
		return "invalid"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// IncompleteReason classifies why a check returned VerdictUnknown.
type IncompleteReason string

const (
	// ReasonDeadline: the Context's deadline expired mid-check.
	ReasonDeadline IncompleteReason = "deadline"
	// ReasonCancelled: the Context was cancelled by the caller.
	ReasonCancelled IncompleteReason = "cancelled"
	// ReasonNodeBudget: the node budget (MaxNodes, or the MaxExtensions cap
	// of the legacy enumerator) truncated the search.
	ReasonNodeBudget IncompleteReason = "node-budget"
	// ReasonMemBudget: the session memory budget tripped, the search degraded
	// to memo-less mode, and the degraded search then could not finish within
	// its node budget.
	ReasonMemBudget IncompleteReason = "mem-budget"
	// ReasonPanic: a worker (or the trial itself) panicked; the panic was
	// recovered, its stack captured, and the check converted into this
	// per-check outcome instead of crashing the process.
	ReasonPanic IncompleteReason = "panic"
	// ReasonNoSearch: every configured constructive strategy failed and the
	// exhaustive search is disabled (CheckOptions.Exhaustive false), so no
	// definitive negative answer is possible.
	ReasonNoSearch IncompleteReason = "strategies-exhausted"
)

// Incomplete explains a VerdictUnknown result.
type Incomplete struct {
	// Reason classifies the truncation.
	Reason IncompleteReason
	// Detail is a human-readable elaboration (budget values, the panic
	// message, the context error).
	Detail string
	// Stack is the captured goroutine stack when Reason is ReasonPanic.
	Stack string
}

// String renders the reason and detail on one line (the stack is omitted).
func (inc *Incomplete) String() string {
	if inc == nil {
		return ""
	}
	if inc.Detail == "" {
		return string(inc.Reason)
	}
	return fmt.Sprintf("%s: %s", inc.Reason, inc.Detail)
}

// ContextIncomplete translates a Context's error state into an Incomplete:
// nil while the context is live (or nil), ReasonDeadline after expiry and
// ReasonCancelled after cancellation. The search engine and the batch pool
// use it so every layer reports the same reason for the same interruption.
func ContextIncomplete(ctx context.Context) *Incomplete {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if err == context.DeadlineExceeded {
		return &Incomplete{Reason: ReasonDeadline, Detail: err.Error()}
	}
	return &Incomplete{Reason: ReasonCancelled, Detail: err.Error()}
}

// finalizeVerdict derives the three-valued verdict from the boolean outcome
// fields and guarantees an Unknown result carries a populated Incomplete.
// Every public checker entry point funnels its Result through here.
func (r *Result) finalizeVerdict() {
	switch {
	case r.OK:
		r.Verdict = VerdictValid
		r.Incomplete = nil
	case r.Complete:
		r.Verdict = VerdictInvalid
		r.Incomplete = nil
	default:
		r.Verdict = VerdictUnknown
		if r.Incomplete == nil {
			r.Incomplete = &Incomplete{Reason: ReasonNodeBudget, Detail: "exhaustive search truncated"}
		}
	}
}
