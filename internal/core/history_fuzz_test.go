package core

import (
	"testing"
)

// FuzzHistoryVis is the fuzz face of the bitset/oracle differential: the
// input bytes decode into an AddVis sequence over a small label set
// (including out-of-range identifiers and reflexive and cycle-forming
// edges), and every insertion verdict plus every visibility query — of both
// the AddVis history and an AddVisBatch-driven twin — must match the legacy
// map-closure oracle exactly, predecessor mirror included. CI runs it as a
// bounded smoke (`go test -fuzz=FuzzHistoryVis -fuzztime=30s`) on top of the
// seed corpus.
func FuzzHistoryVis(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 2, 3, 3, 1})          // chain plus a cycle attempt
	f.Add(uint8(6), []byte{1, 6, 2, 6, 3, 6, 6, 1})    // fan-in plus a back edge
	f.Add(uint8(3), []byte{0, 1, 1, 9, 1, 1, 2, 1})    // unknown ids, reflexive, back edge
	f.Add(uint8(8), []byte{1, 3, 3, 5, 5, 7, 1, 5, 3}) // transitive skips, odd tail byte
	f.Fuzz(func(t *testing.T, n uint8, data []byte) {
		labels := 2 + int(n%24)
		h := NewHistory()
		hb := NewHistory()
		o := newLegacyVisOracle()
		for i := 1; i <= labels; i++ {
			l := mkLabel(uint64(i), "op", KindUpdate)
			h.MustAdd(l)
			hb.MustAdd(mkLabel(uint64(i), "op", KindUpdate))
			if err := o.add(l); err != nil {
				t.Fatal(err)
			}
		}
		// Each byte pair is one edge; ids are taken modulo labels+2 so 0 and
		// labels+1 probe the unknown-label path. The batch twin hb applies
		// every edge as a one-element AddVisBatch, so the deferred-flush path
		// sees the same error-heavy sequences as AddVis.
		for i := 0; i+1 < len(data) && i < 128; i += 2 {
			from := uint64(int(data[i]) % (labels + 2))
			to := uint64(int(data[i+1]) % (labels + 2))
			applyEdgeDifferential(t, h, hb, o, from, to)
		}
		assertMatchesOracle(t, h, o)
		assertMatchesOracle(t, hb, o)
	})
}
