package core

import (
	"reflect"
	"sync"
)

// rewriteCacheCap bounds the number of histories a RewriteCache pins. Batch
// pipelines insert every history they check; without a cap a long batch would
// keep all of them (plus their rewritten clones) live for the whole session,
// where the uncached pipeline lets each trial's history become garbage as soon
// as its fold is done. Re-check workloads — the cache's target — cycle a small
// working set, so generation-style eviction (drop everything, start over) is
// both simple and sufficient.
const rewriteCacheCap = 256

// RewriteCache memoizes γ-rewritings per input history: a history checked
// several times through one engine session (differential runs, repeated
// figure reproductions, re-checked batches) clones and re-derives its
// rewritten form once instead of once per check. Entries are keyed by history
// *identity* (the pointer), matching the aliasing fast path's contract that a
// History is immutable while checks reference it; the cached RewrittenHistory
// is shared by every subsequent Result.Rewritten the same way the aliased
// input history already is.
//
// A cached entry is only returned for the same rewriting it was built with
// (see rewritingToken). The zero value is ready to use; all methods are safe
// for concurrent callers.
type RewriteCache struct {
	mu      sync.Mutex
	entries map[*History]rewriteEntry
	hits    int64
	misses  int64
}

type rewriteEntry struct {
	token any
	rew   *RewrittenHistory
}

// RewritingTokener is an optional interface for rewritings that cannot be
// compared as values — RewriteFunc-style closures, rewritings carrying
// slices or maps — but still want RewriteCache hits across the checks of a
// session. RewritingToken must return a comparable value identifying the
// rewriting's semantics: two rewritings returning equal tokens (and sharing
// a dynamic type) are served each other's cached γ(h), so captured state
// that changes the rewriting's output must be part of the token. Returning
// nil opts out of caching for this value (the RewriteFunc default).
type RewritingTokener interface {
	Rewriting
	// RewritingToken returns a comparable semantic identity, or nil to
	// bypass the cache.
	RewritingToken() any
}

// explicitToken wraps a RewritingTokener's token together with the
// rewriting's dynamic type, so an explicit token can never collide with the
// value identity of a comparable rewriting type, or with an equal token
// returned by a rewriting of a different type.
type explicitToken struct {
	rtype reflect.Type
	token any
}

// rewritingToken derives a comparable identity for a rewriting, so the cache
// can tell "same γ again" from "different γ for the same history".
// Rewritings implementing RewritingTokener choose their own identity (nil
// opts out). Otherwise only rewritings of comparable types get one: their
// value is the identity (the descriptor rewritings are zero-size named
// types, composed rewritings carry their *System). Function-typed rewritings
// (RewriteFunc) have no usable implicit identity — a code pointer would
// alias closures over the same body whose captured state differs, which is
// exactly how composed-system rewritings used to be built — so without an
// explicit token they report ok=false and bypass the cache entirely.
func rewritingToken(g Rewriting) (any, bool) {
	if g == nil {
		return nil, true
	}
	if tr, ok := g.(RewritingTokener); ok {
		tok := tr.RewritingToken()
		if tok == nil {
			return nil, false
		}
		return explicitToken{rtype: reflect.TypeOf(g), token: tok}, true
	}
	if t := reflect.TypeOf(g); t.Comparable() {
		return g, true
	}
	return nil, false
}

// tokensEqual compares two tokens, treating a comparison panic as "not
// equal". A token's static type being comparable does not make every value
// safely comparable — a struct whose interface field holds a func at run time
// panics under == — and a cache keyed on user-supplied rewritings must not
// crash the check over it.
func tokensEqual(a, b any) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// lookup returns the cached rewriting of h under the rewriting identified by
// token, or nil.
func (c *RewriteCache) lookup(h *History, token any) *RewrittenHistory {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[h]; ok && tokensEqual(e.token, token) {
		c.hits++
		return e.rew
	}
	c.misses++
	return nil
}

// store records the rewriting of h, evicting the whole current generation
// when the cache is full. An existing entry for h wins — concurrent checks of
// the same history may race to store, and keeping the first published entry
// keeps the cached pointer stable for everyone who already read it.
func (c *RewriteCache) store(h *History, token any, rew *RewrittenHistory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[*History]rewriteEntry)
	}
	if e, ok := c.entries[h]; ok && tokensEqual(e.token, token) {
		return
	}
	if len(c.entries) >= rewriteCacheCap {
		clear(c.entries)
	}
	c.entries[h] = rewriteEntry{token: token, rew: rew}
}

// Invalidate drops the cached rewriting of one history. The incremental
// extension path calls it when an in-place extension of the cached clone
// fails partway: the cache is keyed by history identity under an immutability
// assumption, so once h has grown past what the cached clone reflects the
// entry is stale and must not be served to a later from-scratch check.
func (c *RewriteCache) Invalidate(h *History) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, h)
}

// Clear drops every cached rewriting (the hit/miss counters are kept). The
// search session's memory-budget eviction calls it so a tripped session
// releases the pinned histories and clones along with its other caches.
func (c *RewriteCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
}

// Stats returns the lookup hit/miss counters.
func (c *RewriteCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached rewritings.
func (c *RewriteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// RewriteCacher is implemented by engine sessions that carry a rewrite cache
// (search.Session does). CheckRA consults it before deriving a rewriting, so
// batches that thread a session re-clone each distinct history at most once.
type RewriteCacher interface {
	RewriteCache() *RewriteCache
}

// RewriteForCheck derives the γ-rewriting of h exactly the way CheckRA with
// the same options would — including the session rewrite-cache probe and the
// nil-rewriting aliasing fast path — and reports whether it was served from
// the cache. Engine sessions implementing the incremental Extender entry use
// it to capture the same RewrittenHistory pointer the preceding from-scratch
// check worked on, so extending that clone in place keeps the cache coherent.
func RewriteForCheck(h *History, opts CheckOptions) (*RewrittenHistory, bool, error) {
	return rewriteForCheck(h, opts)
}

// RewritingIdentity returns a comparable value identifying the semantics of a
// rewriting, or ok=false when the rewriting has no usable identity (the
// RewriteFunc default). Two rewritings with equal identities produce the same
// γ(h) for every h; incremental extension compares identities across calls to
// decide whether the cached rewritten clone may be grown in place.
func RewritingIdentity(g Rewriting) (any, bool) { return rewritingToken(g) }

// rewriteForCheck is CheckRA's entry into the rewriting: the session's
// rewrite cache when one is available and applicable (non-nil rewriting with
// a usable identity — the nil rewriting's aliasing fast path is already
// cheaper than a cache probe), and a plain RewriteHistory otherwise. The
// second result reports whether the rewriting was served from the cache.
func rewriteForCheck(h *History, opts CheckOptions) (*RewrittenHistory, bool, error) {
	if opts.Rewriting == nil || opts.Session == nil {
		rew, err := RewriteHistory(h, opts.Rewriting)
		return rew, false, err
	}
	rc, ok := opts.Session.(RewriteCacher)
	if !ok {
		rew, err := RewriteHistory(h, opts.Rewriting)
		return rew, false, err
	}
	cache := rc.RewriteCache()
	token, ok := rewritingToken(opts.Rewriting)
	if cache == nil || !ok {
		rew, err := RewriteHistory(h, opts.Rewriting)
		return rew, false, err
	}
	if rew := cache.lookup(h, token); rew != nil {
		return rew, true, nil
	}
	rew, err := RewriteHistory(h, opts.Rewriting)
	if err != nil {
		return nil, false, err
	}
	cache.store(h, token, rew)
	return rew, false, nil
}
