package core

import (
	"fmt"
	"testing"
)

// addVisLabels populates a fresh history with n update labels, the shared
// setup of the AddVis benchmarks (label insertion is untimed — the
// benchmarks isolate relation maintenance).
func addVisLabels(n int) *History {
	h := NewHistory()
	for i := 1; i <= n; i++ {
		h.MustAdd(&Label{ID: uint64(i), Method: "add", Kind: KindUpdate, GenSeq: uint64(i)})
	}
	return h
}

// BenchmarkAddVisDense measures incremental reachability maintenance on the
// densest closure a chain produces: edge i -> i+1 appended in rank order, so
// every insertion propagates the new sink to every predecessor (the
// worst-case reverse walk) and the final closure holds n·(n-1)/2 pairs.
// Under the previous map-of-maps closure each edge rescanned the whole
// relation for predecessors and inserted the new closure pairs one map entry
// at a time; the index ORs word-sized strides instead. The batch variant
// replays the same edges through AddVisBatch — a chain is all one-edge runs,
// so it bounds the batch API's per-edge overhead rather than its merging.
func BenchmarkAddVisDense(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				for id := 1; id < n; id++ {
					h.MustAddVis(uint64(id), uint64(id+1))
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/batch", n), func(b *testing.B) {
			edges := make([]VisEdge, 0, n-1)
			for id := 1; id < n; id++ {
				edges = append(edges, VisEdge{From: uint64(id), To: uint64(id + 1)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				if err := h.AddVisBatch(edges); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAddVisSparse measures the disjoint-pairs extreme: n/2 independent
// edges, no transitive consequences, so the cost is the direct-edge append
// plus one single-bit propagation each — the floor of AddVis, and the shape
// whose ~3 allocations/edge the chunked arenas eliminate. The batch variant
// replays the same pairs through AddVisBatch.
func BenchmarkAddVisSparse(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				for id := 1; id+1 <= n; id += 2 {
					h.MustAddVis(uint64(id), uint64(id+1))
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/batch", n), func(b *testing.B) {
			edges := make([]VisEdge, 0, n/2)
			for id := 1; id+1 <= n; id += 2 {
				edges = append(edges, VisEdge{From: uint64(id), To: uint64(id + 1)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				if err := h.AddVisBatch(edges); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// layeredEdges returns the edges of a layered DAG over n labels in layers of
// width w: every label of one layer visible to every label of the next,
// grouped by source — long same-source runs, the shape whose propagation
// AddVisBatch merges (one reverse and one forward flush per source instead
// of per edge).
func layeredEdges(n, w int) []VisEdge {
	var edges []VisEdge
	for base := 1; base+w <= n; base += w {
		next := base + w
		width := w
		if next+width-1 > n {
			width = n - next + 1
		}
		for u := base; u < base+w; u++ {
			for v := next; v < next+width; v++ {
				edges = append(edges, VisEdge{From: uint64(u), To: uint64(v)})
			}
		}
	}
	return edges
}

// BenchmarkAddVisLayered measures the run-merging payoff on a layered DAG
// (width 16): the sequential variant pays the full propagation walk per
// edge, the batch variant one merged flush per source.
func BenchmarkAddVisLayered(b *testing.B) {
	const width = 16
	for _, n := range []int{256, 1024} {
		edges := layeredEdges(n, width)
		b.Run(fmt.Sprintf("n=%d/seq", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				for _, e := range edges {
					h.MustAddVis(e.From, e.To)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/batch", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				if err := h.AddVisBatch(edges); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
