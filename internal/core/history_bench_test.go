package core

import (
	"fmt"
	"testing"
)

// addVisLabels populates a fresh history with n update labels, the shared
// setup of the AddVis benchmarks (label insertion is untimed — the
// benchmarks isolate relation maintenance).
func addVisLabels(n int) *History {
	h := NewHistory()
	for i := 1; i <= n; i++ {
		h.MustAdd(&Label{ID: uint64(i), Method: "add", Kind: KindUpdate, GenSeq: uint64(i)})
	}
	return h
}

// BenchmarkAddVisDense measures incremental reachability maintenance on the
// densest closure a chain produces: edge i -> i+1 appended in rank order, so
// every insertion propagates the new sink to every predecessor (the
// worst-case reverse walk) and the final closure holds n·(n-1)/2 pairs.
// Under the previous map-of-maps closure each edge rescanned the whole
// relation for predecessors and inserted the new closure pairs one map entry
// at a time; the index ORs word-sized strides instead.
func BenchmarkAddVisDense(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				for id := 1; id < n; id++ {
					h.MustAddVis(uint64(id), uint64(id+1))
				}
			}
		})
	}
}

// BenchmarkAddVisSparse measures the disjoint-pairs extreme: n/2 independent
// edges, no transitive consequences, so the cost is the direct-edge append
// plus one single-bit propagation each — the floor of AddVis.
func BenchmarkAddVisSparse(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := addVisLabels(n)
				b.StartTimer()
				for id := 1; id+1 <= n; id += 2 {
					h.MustAddVis(uint64(id), uint64(id+1))
				}
			}
		})
	}
}
