package core

import (
	"errors"
	"fmt"
)

// Strategy selects a constructive linearization to try before (or instead of)
// the exhaustive search over linear extensions.
type Strategy int

const (
	// StrategyExecutionOrder builds the execution-order linearization
	// (Section 4.1): labels ordered as their generators executed.
	StrategyExecutionOrder Strategy = iota
	// StrategyTimestampOrder builds the timestamp-order linearization
	// (Section 4.2): labels ordered by their (virtual) timestamps.
	StrategyTimestampOrder
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyExecutionOrder:
		return "execution-order"
	case StrategyTimestampOrder:
		return "timestamp-order"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CheckOptions configures the RA-linearizability checker.
type CheckOptions struct {
	// Rewriting is the query-update rewriting γ to apply before checking.
	// A nil rewriting is the identity (only valid when the history has no
	// query-update labels).
	Rewriting Rewriting
	// Strategies are constructive linearizations tried first, in order.
	Strategies []Strategy
	// Exhaustive enables the fallback search over all linear extensions of
	// the visibility relation when the constructive strategies fail (or when
	// no strategy is given).
	Exhaustive bool
	// MaxExtensions caps the number of linear extensions explored by the
	// exhaustive search. Zero means no cap.
	MaxExtensions int
}

// DefaultCheckOptions tries both constructive strategies and then falls back
// to a bounded exhaustive search.
func DefaultCheckOptions() CheckOptions {
	return CheckOptions{
		Strategies:    []Strategy{StrategyExecutionOrder, StrategyTimestampOrder},
		Exhaustive:    true,
		MaxExtensions: 200000,
	}
}

// Result is the outcome of an RA-linearizability check.
type Result struct {
	// OK reports whether an RA-linearization was found.
	OK bool
	// Linearization is a witness RA-linearization of the rewritten history
	// when OK is true.
	Linearization []*Label
	// Rewritten is the γ-rewriting of the checked history.
	Rewritten *History
	// Strategy records which constructive strategy produced the witness
	// (nil when the witness came from the exhaustive search or none found).
	Strategy *Strategy
	// Tried is the number of candidate sequences examined.
	Tried int
	// Complete reports whether the verdict is definitive: either a witness
	// was found, or every linear extension was examined and rejected. When
	// false, the exhaustive search was truncated by MaxExtensions.
	Complete bool
	// LastErr explains why the most recent candidate was rejected.
	LastErr error
}

// ErrNotRALinearizable is wrapped by errors reporting a definitive negative
// verdict.
var ErrNotRALinearizable = errors.New("history is not RA-linearizable")

// IsRALinearization checks conditions (i)–(iii) of Definition 3.5 for the
// sequence seq on the (already rewritten) history h with respect to spec.
// It returns nil when seq is an RA-linearization of h.
func IsRALinearization(h *History, seq []*Label, spec Spec) error {
	// The definition applies to histories of queries and updates only.
	for _, l := range h.Labels() {
		if l.IsQueryUpdate() {
			return fmt.Errorf("label %v is a query-update; apply a rewriting first", l)
		}
	}
	// (i) seq is consistent with the visibility relation.
	if err := h.ConsistentWithVis(seq); err != nil {
		return fmt.Errorf("condition (i): %w", err)
	}
	// (ii) the projection of seq to updates is admitted by the specification.
	updates := filterLabels(seq, (*Label).IsUpdate)
	if !Admits(spec, updates) {
		i := FirstRejected(spec, updates)
		return fmt.Errorf("condition (ii): update projection rejected by %s at %v",
			spec.Name(), updates[i])
	}
	// (iii) each query is justified by the visible updates in sequence order.
	for _, q := range seq {
		if !q.IsQuery() {
			continue
		}
		visible := filterLabels(updates, func(u *Label) bool { return h.Vis(u.ID, q.ID) })
		justification := append(append([]*Label(nil), visible...), q)
		if !Admits(spec, justification) {
			return fmt.Errorf("condition (iii): query %v not justified by its visible updates %s",
				q, FormatLabels(visible))
		}
	}
	return nil
}

// CheckRA checks whether the history h is RA-linearizable with respect to
// spec (Definition 3.7): it applies the query-update rewriting, tries the
// configured constructive strategies, and optionally searches all linear
// extensions of the visibility relation.
func CheckRA(h *History, spec Spec, opts CheckOptions) Result {
	res := Result{}
	rew, err := RewriteHistory(h, opts.Rewriting)
	if err != nil {
		res.LastErr = err
		res.Complete = true
		return res
	}
	res.Rewritten = rew.History
	if !rew.History.IsAcyclic() {
		res.LastErr = fmt.Errorf("%w: visibility relation is cyclic", ErrNotRALinearizable)
		res.Complete = true
		return res
	}

	try := func(seq []*Label) error {
		res.Tried++
		return IsRALinearization(rew.History, seq, spec)
	}

	for _, s := range opts.Strategies {
		var seq []*Label
		switch s {
		case StrategyExecutionOrder:
			seq = ExecutionOrderLinearization(rew.History)
		case StrategyTimestampOrder:
			seq = TimestampOrderLinearization(rew.History)
		default:
			continue
		}
		if err := try(seq); err == nil {
			strategy := s
			res.OK = true
			res.Complete = true
			res.Linearization = seq
			res.Strategy = &strategy
			return res
		} else {
			res.LastErr = err
		}
	}

	if !opts.Exhaustive {
		res.Complete = false
		return res
	}

	found := false
	var witness []*Label
	_, truncated := LinearExtensions(rew.History, opts.MaxExtensions, func(seq []*Label) bool {
		if err := try(seq); err == nil {
			found = true
			witness = seq
			return false
		} else {
			res.LastErr = err
		}
		return true
	})
	if found {
		res.OK = true
		res.Complete = true
		res.Linearization = witness
		return res
	}
	res.Complete = !truncated
	if res.Complete && res.LastErr != nil {
		res.LastErr = fmt.Errorf("%w: %v", ErrNotRALinearizable, res.LastErr)
	}
	return res
}

// CheckStrongLinearizable checks a stricter criterion used for the Figure 5a
// separation: no query-update rewriting is applied, and every query must be
// justified by the full prefix of updates preceding it in the linearization
// (not only the visible ones). This corresponds to the "standard definition
// of linearizability ... assuming a standard Set specification" discussed in
// Section 2.2, adapted to visibility-based histories.
func CheckStrongLinearizable(h *History, spec Spec, maxExtensions int) Result {
	res := Result{Rewritten: h}
	if !h.IsAcyclic() {
		res.Complete = true
		res.LastErr = fmt.Errorf("visibility relation is cyclic")
		return res
	}
	check := func(seq []*Label) error {
		// The whole sequence, with query-updates treated as updates and
		// queries evaluated against the full preceding prefix, must be
		// admitted by the specification.
		var prefixUpdates []*Label
		for _, l := range seq {
			if l.IsQuery() {
				justification := append(append([]*Label(nil), prefixUpdates...), l)
				if !Admits(spec, justification) {
					return fmt.Errorf("query %v not justified by the preceding updates", l)
				}
				continue
			}
			prefixUpdates = append(prefixUpdates, l)
			if !Admits(spec, prefixUpdates) {
				return fmt.Errorf("update prefix rejected at %v", l)
			}
		}
		return nil
	}
	found := false
	var witness []*Label
	_, truncated := LinearExtensions(h, maxExtensions, func(seq []*Label) bool {
		res.Tried++
		if err := check(seq); err == nil {
			found = true
			witness = seq
			return false
		} else {
			res.LastErr = err
		}
		return true
	})
	if found {
		res.OK = true
		res.Complete = true
		res.Linearization = witness
		return res
	}
	res.Complete = !truncated
	return res
}
