package core

import (
	"context"
	"errors"
	"fmt"
)

// Strategy selects a constructive linearization to try before (or instead of)
// the exhaustive search over linear extensions.
type Strategy int

const (
	// StrategyExecutionOrder builds the execution-order linearization
	// (Section 4.1): labels ordered as their generators executed.
	StrategyExecutionOrder Strategy = iota
	// StrategyTimestampOrder builds the timestamp-order linearization
	// (Section 4.2): labels ordered by their (virtual) timestamps.
	StrategyTimestampOrder
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyExecutionOrder:
		return "execution-order"
	case StrategyTimestampOrder:
		return "timestamp-order"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Engine selects the algorithm used by the exhaustive phase of the checker.
type Engine int

const (
	// EngineAuto uses the pruned backtracking engine when one is registered
	// (importing internal/search registers it) and falls back to the legacy
	// enumerator otherwise.
	EngineAuto Engine = iota
	// EnginePruned selects the incremental pruned DFS over linear extensions.
	// Falls back to the legacy enumerator when no engine is registered.
	EnginePruned
	// EngineLegacy selects the generate-then-test enumerator that validates
	// every complete linear extension from scratch. Kept as the oracle for
	// differential testing of the pruned engine.
	EngineLegacy
)

// String renders the engine name.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EnginePruned:
		return "pruned"
	case EngineLegacy:
		return "legacy"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses an engine name as accepted by the cmd/ralin-* flags.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "pruned":
		return EnginePruned, nil
	case "legacy", "exhaustive":
		return EngineLegacy, nil
	default:
		return EngineAuto, fmt.Errorf("unknown engine %q (want auto, pruned or legacy)", s)
	}
}

// Guidance selects how the pruned engine orders the sibling branches of a DFS
// node (ROADMAP direction 4, after Empc's path prioritization). Ordering is a
// search heuristic, never a semantics change: every Guidance value explores
// the same configuration space and produces the same verdict; only Nodes and
// wall-clock may differ.
type Guidance int

const (
	// GuidanceAuto resolves to GuidanceRankOrder: branch ordering stays a
	// deterministic function of the history alone, so batches through warm and
	// fresh sessions report identical node counts. Guided mode is opt-in
	// because its signals (interner novelty, session success scores) depend on
	// session warmth.
	GuidanceAuto Guidance = iota
	// GuidanceRankOrder explores sibling branches in generator-sequence rank
	// order — the historical behaviour, and the reference side of the
	// differential gate on guided mode.
	GuidanceRankOrder
	// GuidanceGuided enables heuristic exploration: enabled queries are placed
	// immediately (their justification is final once every visible update is
	// placed, so committing to them is a sound reduction in RA mode), and the
	// remaining candidates are ordered by a composite score — novel spec
	// states first, then pending-query justification counts, then a per-label
	// success score learned across a session's batch. Verdicts are identical
	// to rank order; Nodes and wall-clock may change.
	GuidanceGuided
)

// String renders the guidance mode name as accepted by ParseGuidance.
func (g Guidance) String() string {
	switch g {
	case GuidanceAuto:
		return "auto"
	case GuidanceRankOrder:
		return "rank-order"
	case GuidanceGuided:
		return "guided"
	default:
		return fmt.Sprintf("Guidance(%d)", int(g))
	}
}

// ParseGuidance parses a guidance mode name as accepted by the cmd/ralin-*
// -guidance flag.
func ParseGuidance(s string) (Guidance, error) {
	switch s {
	case "auto", "":
		return GuidanceAuto, nil
	case "rank-order", "rank":
		return GuidanceRankOrder, nil
	case "guided":
		return GuidanceGuided, nil
	default:
		return GuidanceAuto, fmt.Errorf("unknown guidance %q (want auto, rank-order or guided)", s)
	}
}

// ResolveGuidance reports which branch-ordering mode a CheckOptions.Guidance
// value selects: GuidanceAuto resolves to GuidanceRankOrder, everything else
// is itself. Tools use it to report the mode that actually runs.
func ResolveGuidance(g Guidance) Guidance {
	if g == GuidanceGuided {
		return GuidanceGuided
	}
	return GuidanceRankOrder
}

// EngineSession is an opaque handle to cross-check state owned by a search
// engine: interned state IDs, memo-table arenas and pooled scratch that one
// batch of checks (for example a harness.CheckRandomHistories run) reuses
// instead of rebuilding per history. Sessions are created by the engine
// package (search.NewSession) and threaded through CheckOptions.Session or
// CheckRAWith; a nil session gives every check fresh state, which is always
// correct, just slower for batches. Implementations must be safe for
// concurrent use by multiple checks.
type EngineSession interface {
	// EngineSessionKind names the engine the session belongs to; an engine
	// ignores sessions of a kind it does not recognize.
	EngineSessionKind() string
}

// CheckOptions configures the RA-linearizability checker.
type CheckOptions struct {
	// Context carries the caller's deadline and cancellation into the check.
	// When it expires or is cancelled, every layer — the constructive
	// strategies, the legacy enumerator, and the pruned engine's worker pool —
	// stops at its next node and the Result reports VerdictUnknown with
	// ReasonDeadline or ReasonCancelled. Nil means no deadline and no
	// cancellation, at zero per-node cost.
	Context context.Context
	// Rewriting is the query-update rewriting γ to apply before checking.
	// A nil rewriting is the identity (only valid when the history has no
	// query-update labels).
	Rewriting Rewriting
	// Strategies are constructive linearizations tried first, in order.
	Strategies []Strategy
	// Exhaustive enables the fallback search over all linear extensions of
	// the visibility relation when the constructive strategies fail (or when
	// no strategy is given).
	Exhaustive bool
	// MaxExtensions caps the number of linear extensions explored by the
	// exhaustive search. Zero means no cap.
	MaxExtensions int
	// Engine selects the algorithm used for the exhaustive phase.
	Engine Engine
	// Guidance selects the pruned engine's branch ordering: rank order (the
	// deterministic default, also what GuidanceAuto resolves to) or guided
	// heuristic ordering. Guidance never changes a verdict — only Nodes and
	// wall-clock. See the Guidance constants.
	Guidance Guidance
	// Parallelism bounds the number of worker goroutines the pruned engine
	// fans the top-level branches across. Zero means GOMAXPROCS; one forces a
	// sequential search.
	Parallelism int
	// MaxNodes caps the number of prefix nodes the pruned engine explores.
	// Zero derives a budget from MaxExtensions (3× — an unpruned prefix tree
	// has at most e·n! nodes against n! complete extensions); a negative
	// value means unlimited.
	MaxNodes int
	// DisableMemo turns off the pruned engine's memoization of visited
	// (frontier-set, spec-state) pairs.
	DisableMemo bool
	// DebugMemo makes the pruned engine store the full interned-ID tuple of
	// every memoized configuration alongside its 128-bit hash and panic if
	// two distinct tuples ever share a hash — turning the ~2⁻⁶⁴ hash-
	// compaction collision risk into a checked invariant. Costs one tuple
	// allocation per memoized node; meant for differential and soak runs,
	// not production checking.
	DebugMemo bool
	// Session optionally carries engine state shared across the checks of a
	// batch (interner, memo arena, pooled buffers). Nil means fresh state per
	// check. See CheckRAWith.
	Session EngineSession
}

// DefaultCheckOptions tries both constructive strategies and then falls back
// to a bounded exhaustive search.
func DefaultCheckOptions() CheckOptions {
	return CheckOptions{
		Strategies:    []Strategy{StrategyExecutionOrder, StrategyTimestampOrder},
		Exhaustive:    true,
		MaxExtensions: 200000,
	}
}

// Result is the outcome of an RA-linearizability check.
type Result struct {
	// OK reports whether an RA-linearization was found.
	OK bool
	// Linearization is a witness RA-linearization of the rewritten history
	// when OK is true.
	Linearization []*Label
	// Rewritten is the γ-rewriting of the checked history.
	Rewritten *History
	// Strategy records which constructive strategy produced the witness
	// (nil when the witness came from the exhaustive search or none found).
	Strategy *Strategy
	// Tried is the number of candidate sequences examined.
	Tried int
	// Complete reports whether the verdict is definitive: either a witness
	// was found, or every linear extension was examined and rejected. When
	// false, the exhaustive search was truncated by MaxExtensions (legacy
	// engine) or MaxNodes (pruned engine).
	Complete bool
	// LastErr explains why the most recent candidate was rejected.
	LastErr error
	// Engine records which engine ran the exhaustive phase. Meaningful only
	// when the exhaustive search actually ran (the constructive strategies
	// did not produce a witness).
	Engine Engine
	// Nodes is the number of prefix nodes explored by the pruned engine.
	Nodes int
	// Pruned is the number of subtrees the pruned engine cut off at an
	// inadmissible or unjustifiable prefix.
	Pruned int
	// MemoHits is the number of subtrees the pruned engine skipped because an
	// equivalent (frontier-set, spec-state) pair had already been claimed in
	// the shared memo table by some worker.
	MemoHits int
	// Steals is the number of donated frontier branches executed by a worker
	// other than the one that published them (the pruned engine schedules by
	// work-stealing; always zero for a sequential search).
	Steals int
	// Shards is the stripe count of the pruned engine's shared lock-striped
	// memo table (zero when memoization was disabled).
	Shards int
	// Workers is the number of goroutines the pruned engine used.
	Workers int
	// PlanReused reports that the pruned engine drew this check's prepared
	// history plan (the preds/succs/affected/order index arrays) from the
	// session's plan pool instead of allocating it.
	PlanReused bool
	// RewriteCached reports that the γ-rewriting was served from the
	// session's rewrite cache instead of being re-derived (Rewritten then
	// aliases the cached clone).
	RewriteCached bool
	// Verdict is the three-valued outcome: Valid (witness found), Invalid
	// (search space exhausted, no witness) or Unknown (truncated before a
	// decision). It is derived from OK and Complete, which remain populated
	// for callers that predate it.
	Verdict Verdict
	// Incomplete explains the truncation when Verdict is VerdictUnknown, and
	// is nil otherwise.
	Incomplete *Incomplete
	// MemDegraded reports that the session memory budget tripped during this
	// check and the search finished (or truncated) in memo-less degraded
	// mode. A degraded check's verdict is still sound; only Nodes and
	// wall-clock are affected.
	MemDegraded bool
	// Extended reports that this verdict was produced by the incremental
	// extension path (CheckRAExtend through a session that had already
	// checked a prefix of the history): the prepared plan was grown in place
	// instead of rebuilt. The verdict itself is byte-identical to a
	// from-scratch check either way.
	Extended bool
	// WitnessReplayed reports that the extension validated the previous
	// check's cached witness as a certificate — the new operations were
	// appended to the stored linearization and re-justified without any
	// search. Implies Extended.
	WitnessReplayed bool
}

// EngineOutcome is what a registered search engine reports back to CheckRA
// and CheckStrongLinearizable.
type EngineOutcome struct {
	// OK reports whether a witness linearization was found.
	OK bool
	// Witness is the linearization found when OK is true.
	Witness []*Label
	// Complete reports whether the search space was exhausted (or a witness
	// found); false means the node budget truncated the search.
	Complete bool
	// LastErr describes a representative rejected prefix.
	LastErr error
	// Leaves is the number of complete candidate sequences reached.
	Leaves int
	// Nodes is the number of prefix nodes explored.
	Nodes int
	// Pruned is the number of subtrees cut off at an inadmissible prefix.
	Pruned int
	// MemoHits is the number of subtrees skipped by memoization.
	MemoHits int
	// Steals is the number of stolen work items (donated branches run by a
	// different worker than their donor).
	Steals int
	// Shards is the stripe count of the shared memo table (zero when
	// memoization was disabled).
	Shards int
	// Workers is the number of goroutines used.
	Workers int
	// PlanReused reports that the prepared history plan came from the
	// session's plan pool.
	PlanReused bool
	// Incomplete explains why the search truncated (deadline, cancellation,
	// node budget, memory budget, recovered panic); nil when Complete.
	Incomplete *Incomplete
	// MemDegraded reports that the session memory budget tripped and the
	// search ran (partly) in memo-less degraded mode.
	MemDegraded bool
}

// PrunedEngineFunc is the entry point of a pruned search engine. The history
// must already be rewritten (RA mode) and acyclic. strong selects the
// strong-linearizability variant used by CheckStrongLinearizable.
type PrunedEngineFunc func(h *History, spec Spec, strong bool, opts CheckOptions) EngineOutcome

// prunedEngine is installed by internal/search's init; core cannot import the
// engine package directly without creating an import cycle.
var prunedEngine PrunedEngineFunc

// RegisterPrunedEngine installs the pruned search engine used for
// EngineAuto/EnginePruned. It is called from internal/search's init, so any
// package importing internal/search (directly or blank) activates it.
func RegisterPrunedEngine(f PrunedEngineFunc) { prunedEngine = f }

// resolveEngine maps the requested engine to the one that will actually run.
func resolveEngine(e Engine) Engine {
	if e == EngineLegacy || prunedEngine == nil {
		return EngineLegacy
	}
	return EnginePruned
}

// ResolveEngine reports which engine a CheckOptions.Engine value selects in
// this binary: EngineLegacy when requested — or when no pruned engine is
// registered — and EnginePruned otherwise. Tools use it to report the engine
// that actually runs rather than the flag value.
func ResolveEngine(e Engine) Engine { return resolveEngine(e) }

// ErrNotRALinearizable is wrapped by errors reporting a definitive negative
// verdict.
var ErrNotRALinearizable = errors.New("history is not RA-linearizable")

// IsRALinearization checks conditions (i)–(iii) of Definition 3.5 for the
// sequence seq on the (already rewritten) history h with respect to spec.
// It returns nil when seq is an RA-linearization of h.
func IsRALinearization(h *History, seq []*Label, spec Spec) error {
	// The definition applies to histories of queries and updates only.
	for _, l := range h.Labels() {
		if l.IsQueryUpdate() {
			return fmt.Errorf("label %v is a query-update; apply a rewriting first", l)
		}
	}
	// (i) seq is consistent with the visibility relation.
	if err := h.ConsistentWithVis(seq); err != nil {
		return fmt.Errorf("condition (i): %w", err)
	}
	// (ii) the projection of seq to updates is admitted by the specification.
	updates := filterLabels(seq, (*Label).IsUpdate)
	if !Admits(spec, updates) {
		i := FirstRejected(spec, updates)
		return fmt.Errorf("condition (ii): update projection rejected by %s at %v",
			spec.Name(), updates[i])
	}
	// (iii) each query is justified by the visible updates in sequence order.
	for _, q := range seq {
		if !q.IsQuery() {
			continue
		}
		visible := filterLabels(updates, func(u *Label) bool { return h.Vis(u.ID, q.ID) })
		justification := append(append([]*Label(nil), visible...), q)
		if !Admits(spec, justification) {
			return fmt.Errorf("condition (iii): query %v not justified by its visible updates %s",
				q, FormatLabels(visible))
		}
	}
	return nil
}

// CheckRA checks whether the history h is RA-linearizable with respect to
// spec (Definition 3.7): it applies the query-update rewriting, tries the
// configured constructive strategies, and optionally searches all linear
// extensions of the visibility relation.
func CheckRA(h *History, spec Spec, opts CheckOptions) Result {
	res := checkRA(h, spec, opts)
	res.finalizeVerdict()
	return res
}

// checkRA is CheckRA without the final verdict derivation; every return path
// leaves OK/Complete (and Incomplete, when truncated) consistent.
func checkRA(h *History, spec Spec, opts CheckOptions) Result {
	res := Result{}
	if inc := ContextIncomplete(opts.Context); inc != nil {
		res.Incomplete = inc
		return res
	}
	rew, cached, err := rewriteForCheck(h, opts)
	if err != nil {
		res.LastErr = err
		res.Complete = true
		return res
	}
	res.Rewritten = rew.History
	res.RewriteCached = cached
	if !rew.History.IsAcyclic() {
		res.LastErr = fmt.Errorf("%w: visibility relation is cyclic", ErrNotRALinearizable)
		res.Complete = true
		return res
	}

	for _, s := range opts.Strategies {
		if inc := ContextIncomplete(opts.Context); inc != nil {
			res.Incomplete = inc
			res.Complete = false
			return res
		}
		var seq []*Label
		switch s {
		case StrategyExecutionOrder:
			seq = ExecutionOrderLinearization(rew.History)
		case StrategyTimestampOrder:
			seq = TimestampOrderLinearization(rew.History)
		default:
			continue
		}
		res.Tried++
		if err := IsRALinearization(rew.History, seq, spec); err == nil {
			strategy := s
			res.OK = true
			res.Complete = true
			res.Linearization = seq
			res.Strategy = &strategy
			return res
		} else {
			res.LastErr = err
		}
	}

	if !opts.Exhaustive {
		res.Complete = false
		res.Incomplete = &Incomplete{
			Reason: ReasonNoSearch,
			Detail: "constructive strategies found no witness and the exhaustive search is disabled",
		}
		return res
	}

	res.Engine = resolveEngine(opts.Engine)
	if res.Engine == EnginePruned {
		out := prunedEngine(rew.History, spec, false, opts)
		applyEngineOutcome(&res, out)
		if res.Complete && !res.OK && res.LastErr != nil {
			res.LastErr = fmt.Errorf("%w: %v", ErrNotRALinearizable, res.LastErr)
		}
		return res
	}

	found := false
	var witness []*Label
	var ctxInc *Incomplete
	_, truncated := LinearExtensions(rew.History, opts.MaxExtensions, func(seq []*Label) bool {
		if ctxInc = ContextIncomplete(opts.Context); ctxInc != nil {
			return false
		}
		res.Tried++
		if err := IsRALinearization(rew.History, seq, spec); err == nil {
			found = true
			witness = seq
			return false
		} else {
			res.LastErr = err
		}
		return true
	})
	if found {
		res.OK = true
		res.Complete = true
		res.Linearization = witness
		return res
	}
	if ctxInc != nil {
		res.Complete = false
		res.Incomplete = ctxInc
		return res
	}
	res.Complete = !truncated
	if truncated {
		res.Incomplete = &Incomplete{
			Reason: ReasonNodeBudget,
			Detail: fmt.Sprintf("legacy enumeration truncated at MaxExtensions=%d", opts.MaxExtensions),
		}
	}
	if res.Complete && res.LastErr != nil {
		res.LastErr = fmt.Errorf("%w: %v", ErrNotRALinearizable, res.LastErr)
	}
	return res
}

// Extender is the optional incremental-extension interface an EngineSession
// may implement (search.Session does). Extend re-checks a history the session
// has seen before after newOps were appended to it, reusing the previous
// verdict's witness as a certificate and growing the session's prepared plan
// in place; it degrades to a warm from-scratch check whenever the incremental
// preconditions fail, so the verdict is byte-identical to CheckRA either way.
type Extender interface {
	EngineSession
	// Extend checks h (which already contains newOps as its final labels)
	// incrementally against the session's cached state for h's prefix. The
	// returned Result is finalized — Verdict and Incomplete are populated.
	Extend(h *History, spec Spec, newOps []*Label, opts CheckOptions) Result
}

// CheckRAExtend is the incremental entry point of the checker: h grew by
// newOps (already appended — they are h's final labels) since the session in
// opts.Session last checked it. When the session supports extension and the
// pruned engine is selected, the check reuses the previous verdict as a
// certificate and costs ~the marginal work of the new operations; otherwise
// it falls back to a plain CheckRA. Verdicts are byte-identical to CheckRA on
// the full history in every case — only Result.Extended/WitnessReplayed and
// the engine statistics differ.
func CheckRAExtend(h *History, spec Spec, newOps []*Label, opts CheckOptions) Result {
	if ext, ok := opts.Session.(Extender); ok && resolveEngine(opts.Engine) == EnginePruned {
		return ext.Extend(h, spec, newOps, opts)
	}
	return CheckRA(h, spec, opts)
}

// Finalize derives Verdict and Incomplete from OK/Complete (the exported
// counterpart of the internal derivation CheckRA applies; engine packages
// implementing Extender use it to finalize the Results they build).
func (r *Result) Finalize() { r.finalizeVerdict() }

// CheckRAWith is CheckRA with an explicit engine session: the check reuses
// the session's interned state IDs and pooled search scratch instead of
// rebuilding them, which amortizes warm-up across the histories of a batch.
// A nil session is the same as CheckRA. The session must outlive the call and
// may be shared by concurrent checks.
func CheckRAWith(h *History, spec Spec, opts CheckOptions, session EngineSession) Result {
	opts.Session = session
	return CheckRA(h, spec, opts)
}

// applyEngineOutcome folds a search engine's outcome into a Result.
func applyEngineOutcome(res *Result, out EngineOutcome) {
	res.Tried += out.Leaves
	res.Nodes = out.Nodes
	res.Pruned = out.Pruned
	res.MemoHits = out.MemoHits
	res.Steals = out.Steals
	res.Shards = out.Shards
	res.Workers = out.Workers
	res.PlanReused = out.PlanReused
	res.MemDegraded = out.MemDegraded
	if out.LastErr != nil {
		res.LastErr = out.LastErr
	}
	if out.OK {
		res.OK = true
		res.Complete = true
		res.Linearization = out.Witness
		return
	}
	res.Complete = out.Complete
	if !out.Complete {
		res.Incomplete = out.Incomplete
	}
}

// CheckStrongLinearizable checks a stricter criterion used for the Figure 5a
// separation: no query-update rewriting is applied, and every query must be
// justified by the full prefix of updates preceding it in the linearization
// (not only the visible ones). This corresponds to the "standard definition
// of linearizability ... assuming a standard Set specification" discussed in
// Section 2.2, adapted to visibility-based histories. Only the Engine,
// Guidance, Parallelism, MaxExtensions, MaxNodes and DisableMemo options are
// consulted; strategies and rewritings do not apply. In strong mode guided
// ordering applies without the query-commit reduction (a strong-mode query is
// judged against the full preceding prefix, so its justification is not final
// at enablement).
func CheckStrongLinearizable(h *History, spec Spec, opts CheckOptions) Result {
	res := checkStrongLinearizable(h, spec, opts)
	res.finalizeVerdict()
	return res
}

func checkStrongLinearizable(h *History, spec Spec, opts CheckOptions) Result {
	res := Result{Rewritten: h}
	if inc := ContextIncomplete(opts.Context); inc != nil {
		res.Incomplete = inc
		return res
	}
	if !h.IsAcyclic() {
		res.Complete = true
		res.LastErr = fmt.Errorf("visibility relation is cyclic")
		return res
	}
	res.Engine = resolveEngine(opts.Engine)
	if res.Engine == EnginePruned {
		applyEngineOutcome(&res, prunedEngine(h, spec, true, opts))
		return res
	}
	check := func(seq []*Label) error {
		// The whole sequence, with query-updates treated as updates and
		// queries evaluated against the full preceding prefix, must be
		// admitted by the specification.
		var prefixUpdates []*Label
		for _, l := range seq {
			if l.IsQuery() {
				justification := append(append([]*Label(nil), prefixUpdates...), l)
				if !Admits(spec, justification) {
					return fmt.Errorf("query %v not justified by the preceding updates", l)
				}
				continue
			}
			prefixUpdates = append(prefixUpdates, l)
			if !Admits(spec, prefixUpdates) {
				return fmt.Errorf("update prefix rejected at %v", l)
			}
		}
		return nil
	}
	found := false
	var witness []*Label
	var ctxInc *Incomplete
	_, truncated := LinearExtensions(h, opts.MaxExtensions, func(seq []*Label) bool {
		if ctxInc = ContextIncomplete(opts.Context); ctxInc != nil {
			return false
		}
		res.Tried++
		if err := check(seq); err == nil {
			found = true
			witness = seq
			return false
		} else {
			res.LastErr = err
		}
		return true
	})
	if found {
		res.OK = true
		res.Complete = true
		res.Linearization = witness
		return res
	}
	if ctxInc != nil {
		res.Complete = false
		res.Incomplete = ctxInc
		return res
	}
	res.Complete = !truncated
	if truncated {
		res.Incomplete = &Incomplete{
			Reason: ReasonNodeBudget,
			Detail: fmt.Sprintf("legacy enumeration truncated at MaxExtensions=%d", opts.MaxExtensions),
		}
	}
	return res
}
