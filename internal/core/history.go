package core

import (
	"fmt"
	"sort"
	"strings"

	"ralin/internal/clock"
)

// labelAt pairs a label with its dense rank (insertion index); the value type
// of the identifier index.
type labelAt struct {
	label *Label
	rank  int32
}

// History is a pair (L, vis): a set of operation labels together with an
// acyclic visibility relation between them (Section 3.1). Labels are keyed by
// a dense rank (their insertion index); the relation is stored closure-free as
// the directly inserted edges (adjacency slices per rank, in edge insertion
// order) plus an explicit reachability index: one successor bitset per rank,
// maintained incrementally by AddVis. Vis and Concurrent are single bit
// probes, VisEdges/VisibleTo/SeenBy iterate the bitsets in rank order, and
// cycle detection is one bit probe — where the previous representation kept
// the whole transitive closure as map-of-maps entries and rescanned the full
// relation per inserted edge.
//
// Queries (Vis, Concurrent, VisEdges, VisibleTo, SeenBy, Label, Labels, ...)
// are read-only and safe for concurrent use; Add and AddVis mutate and
// require external synchronization.
type History struct {
	byID map[uint64]labelAt
	// seq holds the labels by rank, i.e. in insertion order.
	seq []*Label
	// adjOut[r] / adjIn[r] are the direct visibility edges inserted by AddVis
	// (successor and predecessor ranks), in edge insertion order. Edges whose
	// endpoints were already related transitively are not recorded — the
	// adjacency is a generating set of the relation, not its closure.
	adjOut [][]int32
	adjIn  [][]int32
	// reach[r] is the reachability row of rank r: bit s is set iff seq[r] is
	// (transitively) visible to seq[s].
	reach []bitset
	// mark/epoch/stack are AddVis's reverse-walk scratch: epoch-stamped
	// visited marks so propagation allocates nothing per edge.
	mark  []uint64
	epoch uint64
	stack []int32
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{byID: make(map[uint64]labelAt)}
}

// reserve pre-sizes the per-rank arrays (and the identifier index) for n
// labels, so construction code that knows the final size up front — the
// rewriting, cloning — pays no append growth per label.
func (h *History) reserve(n int) {
	if n <= len(h.seq) || len(h.seq) > 0 {
		return
	}
	h.byID = make(map[uint64]labelAt, n)
	h.seq = make([]*Label, 0, n)
	h.adjOut = make([][]int32, 0, n)
	h.adjIn = make([][]int32, 0, n)
	h.reach = make([]bitset, 0, n)
	h.mark = make([]uint64, 0, n)
}

// Add inserts a label into the history. Adding a label with a duplicate
// identifier is an error.
func (h *History) Add(l *Label) error {
	if l == nil {
		return fmt.Errorf("history: nil label")
	}
	if _, ok := h.byID[l.ID]; ok {
		return fmt.Errorf("history: duplicate label id %d", l.ID)
	}
	h.byID[l.ID] = labelAt{label: l, rank: int32(len(h.seq))}
	h.seq = append(h.seq, l)
	h.adjOut = append(h.adjOut, nil)
	h.adjIn = append(h.adjIn, nil)
	h.reach = append(h.reach, nil)
	h.mark = append(h.mark, 0)
	return nil
}

// MustAdd is Add for construction code where a duplicate identifier is a
// programming error.
func (h *History) MustAdd(l *Label) *Label {
	if err := h.Add(l); err != nil {
		panic(err)
	}
	return l
}

// Label returns the label with the given identifier, or nil.
func (h *History) Label(id uint64) *Label { return h.byID[id].label }

// Len returns the number of labels.
func (h *History) Len() int { return len(h.seq) }

// Labels returns the labels in insertion order.
func (h *History) Labels() []*Label {
	return append([]*Label(nil), h.seq...)
}

// AppendLabels appends the labels in insertion order to dst and returns the
// extended slice. It is Labels for callers that recycle the destination
// buffer across histories (the search engine's pooled prepare plans).
func (h *History) AppendLabels(dst []*Label) []*Label {
	return append(dst, h.seq...)
}

// VisEdges calls fn once for every edge (from, to) of the transitively closed
// visibility relation, in rank order on both endpoints (deterministic for a
// given history). Iterating the reachability rows is O(|vis| + n²/64), where
// the equivalent all-pairs scan over Vis is O(n²) probes regardless of how
// sparse the relation is.
func (h *History) VisEdges(fn func(from, to uint64)) {
	for r, row := range h.reach {
		from := h.seq[r].ID
		row.forEach(func(s int) {
			fn(from, h.seq[s].ID)
		})
	}
}

// DirectVisEdges calls fn once for every directly inserted edge — the
// generating set AddVis recorded, without its transitive consequences — in
// rank order per source and edge insertion order within one source.
// RewriteHistory transports exactly these edges; the rewritten history's own
// index re-derives the closure.
func (h *History) DirectVisEdges(fn func(from, to uint64)) {
	for r, outs := range h.adjOut {
		from := h.seq[r].ID
		for _, s := range outs {
			fn(from, h.seq[s].ID)
		}
	}
}

// AddVis records that the label with identifier from is visible to the label
// with identifier to, and maintains the reachability index. Adding an edge
// that would create a cycle is an error; adding an edge already implied by
// the relation is a no-op.
func (h *History) AddVis(from, to uint64) error {
	if from == to {
		return fmt.Errorf("history: visibility edge %d -> %d is reflexive", from, to)
	}
	fa, ok := h.byID[from]
	if !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", from)
	}
	ta, ok := h.byID[to]
	if !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", to)
	}
	rf, rt := int(fa.rank), int(ta.rank)
	if h.reach[rt].test(rf) {
		return fmt.Errorf("history: visibility edge %d -> %d creates a cycle", from, to)
	}
	if h.reach[rf].test(rt) {
		// Already implied transitively: the closure cannot change, so the
		// edge is not even recorded (the adjacency stays a generating set).
		return nil
	}
	h.adjOut[rf] = append(h.adjOut[rf], int32(rt))
	h.adjIn[rt] = append(h.adjIn[rt], int32(rf))
	h.propagate(rf, rt)
	return nil
}

// propagate folds the new edge rf -> rt into the reachability index: the
// target's successor row (plus the target itself) is OR-ed into the source's
// row and into every rank that reaches the source, found by walking the
// reverse adjacency — not by scanning the whole relation. A rank whose row
// already absorbed the delta stops the walk early: its own predecessors' rows
// are supersets of it by the index invariant.
func (h *History) propagate(rf, rt int) {
	delta := h.reach[rt]
	h.epoch++
	stack := append(h.stack[:0], int32(rf))
	h.mark[rf] = h.epoch
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := &h.reach[r]
		changed := row.set(rt)
		if row.orInto(delta) {
			changed = true
		}
		if !changed {
			continue
		}
		for _, p := range h.adjIn[r] {
			if h.mark[p] != h.epoch {
				h.mark[p] = h.epoch
				stack = append(stack, p)
			}
		}
	}
	h.stack = stack[:0]
}

// MustAddVis is AddVis for construction code.
func (h *History) MustAddVis(from, to uint64) {
	if err := h.AddVis(from, to); err != nil {
		panic(err)
	}
}

// Vis reports whether the label with identifier from is visible to the label
// with identifier to: one bit probe of the reachability index.
func (h *History) Vis(from, to uint64) bool {
	fa, ok := h.byID[from]
	if !ok {
		return false
	}
	ta, ok := h.byID[to]
	if !ok {
		return false
	}
	return h.reach[fa.rank].test(int(ta.rank))
}

// Concurrent reports whether the two labels are concurrent (neither is
// visible to the other), the relation ▷◁ of Section 4.1.
func (h *History) Concurrent(a, b uint64) bool {
	return a != b && !h.Vis(a, b) && !h.Vis(b, a)
}

// VisibleTo returns the labels visible to l (vis⁻¹(l)), in insertion order.
func (h *History) VisibleTo(l *Label) []*Label {
	la, ok := h.byID[l.ID]
	if !ok {
		return nil
	}
	t := int(la.rank)
	var out []*Label
	for r := range h.seq {
		if h.reach[r].test(t) {
			out = append(out, h.seq[r])
		}
	}
	return out
}

// SeenBy returns the labels that see l (vis(l)), in insertion order.
func (h *History) SeenBy(l *Label) []*Label {
	la, ok := h.byID[l.ID]
	if !ok {
		return nil
	}
	var out []*Label
	h.reach[la.rank].forEach(func(s int) {
		out = append(out, h.seq[s])
	})
	return out
}

// IsAcyclic reports whether the visibility relation is acyclic. Histories
// produced by the operational semantics are always acyclic — AddVis rejects
// cycles — but histories of object compositions (Section 5.1) may in
// principle contain cycles (tests plant them directly), and the checker
// rejects them.
func (h *History) IsAcyclic() bool {
	for r, row := range h.reach {
		if row.test(r) {
			return false
		}
		acyclic := true
		row.forEach(func(s int) {
			if h.reach[s].test(r) {
				acyclic = false
			}
		})
		if !acyclic {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the history (labels are cloned).
func (h *History) Clone() *History {
	c := &History{
		byID:   make(map[uint64]labelAt, len(h.byID)),
		seq:    make([]*Label, len(h.seq)),
		adjOut: make([][]int32, len(h.adjOut)),
		adjIn:  make([][]int32, len(h.adjIn)),
		reach:  make([]bitset, len(h.reach)),
		mark:   make([]uint64, len(h.mark)),
	}
	for r, l := range h.seq {
		cl := l.Clone()
		c.seq[r] = cl
		c.byID[cl.ID] = labelAt{label: cl, rank: int32(r)}
	}
	for r := range h.adjOut {
		if len(h.adjOut[r]) > 0 {
			c.adjOut[r] = append([]int32(nil), h.adjOut[r]...)
		}
		if len(h.adjIn[r]) > 0 {
			c.adjIn[r] = append([]int32(nil), h.adjIn[r]...)
		}
		c.reach[r] = h.reach[r].clone()
	}
	return c
}

// Project returns the sub-history containing only the labels for which keep
// returns true, with the visibility relation restricted accordingly. The
// restriction is taken on the closure, so labels related through a dropped
// label stay related in the projection.
func (h *History) Project(keep func(*Label) bool) *History {
	c := NewHistory()
	kept := make([]bool, len(h.seq))
	for r, l := range h.seq {
		if keep(l) {
			kept[r] = true
			c.MustAdd(l.Clone())
		}
	}
	for r, row := range h.reach {
		if !kept[r] {
			continue
		}
		from := h.seq[r].ID
		row.forEach(func(s int) {
			if kept[s] {
				c.MustAddVis(from, h.seq[s].ID)
			}
		})
	}
	return c
}

// ProjectObject returns the sub-history of operations on the named object.
func (h *History) ProjectObject(object string) *History {
	return h.Project(func(l *Label) bool { return l.Object == object })
}

// Objects returns the distinct object names appearing in the history, sorted.
func (h *History) Objects() []string {
	set := map[string]bool{}
	for _, l := range h.seq {
		set[l.Object] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// HistoryTimestamp returns ts_h(l): the label's own timestamp if it generated
// one, and otherwise the maximal timestamp among the operations visible to it
// (⊥ if none). This is the "virtual timestamp" of Section 4.2.
func (h *History) HistoryTimestamp(l *Label) clock.Timestamp {
	if !l.TS.IsBottom() {
		return l.TS
	}
	// The reachability index is transitively closed, so the maximum over the
	// predecessors' own timestamps is the maximum over the whole past.
	max := clock.Bottom
	la, ok := h.byID[l.ID]
	if !ok {
		return max
	}
	t := int(la.rank)
	for r := range h.seq {
		if h.reach[r].test(t) {
			max = max.Max(h.seq[r].TS)
		}
	}
	return max
}

// ConsistentWithVis reports whether the sequence seq (which must contain
// exactly the labels of h) is consistent with the visibility relation:
// vis ∪ seq is acyclic, which for a total order seq means no label is
// ordered before one of its visibility predecessors.
func (h *History) ConsistentWithVis(seq []*Label) error {
	if len(seq) != h.Len() {
		return fmt.Errorf("sequence has %d labels, history has %d", len(seq), h.Len())
	}
	pos := make(map[uint64]int, len(seq))
	for i, l := range seq {
		if h.byID[l.ID].label == nil {
			return fmt.Errorf("sequence label %v not in history", l)
		}
		if _, dup := pos[l.ID]; dup {
			return fmt.Errorf("sequence repeats label %v", l)
		}
		pos[l.ID] = i
	}
	for r, row := range h.reach {
		from := h.seq[r]
		var bad *Label
		row.forEach(func(s int) {
			if bad == nil && pos[from.ID] > pos[h.seq[s].ID] {
				bad = h.seq[s]
			}
		})
		if bad != nil {
			return fmt.Errorf("sequence orders %v before %v against visibility", bad, from)
		}
	}
	return nil
}

// String renders the history: one line per label with its visibility
// predecessors, in insertion order.
func (h *History) String() string {
	var b strings.Builder
	for _, l := range h.seq {
		fmt.Fprintf(&b, "%-4d %s  (origin %s", l.ID, l, l.Origin)
		preds := h.VisibleTo(l)
		if len(preds) > 0 {
			ids := make([]string, len(preds))
			for i, p := range preds {
				ids[i] = fmt.Sprintf("%d", p.ID)
			}
			fmt.Fprintf(&b, "; sees %s", strings.Join(ids, ","))
		}
		b.WriteString(")\n")
	}
	return b.String()
}
