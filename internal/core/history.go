package core

import (
	"fmt"
	"sort"
	"strings"

	"ralin/internal/clock"
)

// labelAt pairs a label with its dense rank (insertion index); the value type
// of the identifier index.
type labelAt struct {
	label *Label
	rank  int32
}

// History is a pair (L, vis): a set of operation labels together with an
// acyclic visibility relation between them (Section 3.1). Labels are keyed by
// a dense rank (their insertion index); the relation is stored closure-free as
// the directly inserted edges (adjacency slices per rank, in edge insertion
// order) plus an explicit reachability index: one successor bitset per rank,
// maintained incrementally by AddVis, mirrored by one predecessor bitset per
// rank so both directions are row sweeps. Vis and Concurrent are single bit
// probes, VisEdges/SeenBy iterate the successor rows and VisibleTo/indegree
// setup the predecessor rows in rank order (deterministic for a given
// history), and cycle detection is one bit probe — where the previous
// representation kept the whole transitive closure as map-of-maps entries and
// rescanned the full relation per inserted edge. Adjacency and index rows are
// carved from chunked per-history arenas (arena.go), so edge insertion
// allocates only when a chunk fills.
//
// Queries (Vis, Concurrent, VisEdges, VisibleTo, SeenBy, Label, Labels, ...)
// are read-only and safe for concurrent use; Add, AddVis and AddVisBatch
// mutate and require external synchronization.
type History struct {
	byID map[uint64]labelAt
	// seq holds the labels by rank, i.e. in insertion order.
	seq []*Label
	// adjOut[r] / adjIn[r] are the direct visibility edges inserted by AddVis
	// (successor and predecessor ranks), in edge insertion order. Edges whose
	// endpoints were already related transitively are not recorded — the
	// adjacency is a generating set of the relation, not its closure.
	adjOut [][]int32
	adjIn  [][]int32
	// nedges counts the recorded direct edges (the generating set, not the
	// closure) so incremental consumers can detect edge growth in O(1).
	nedges int
	// reach[r] is the reachability row of rank r: bit s is set iff seq[r] is
	// (transitively) visible to seq[s].
	reach []bitset
	// pred[r] is the mirrored predecessor row: bit s is set iff seq[s] is
	// (transitively) visible to seq[r] — the transpose of reach, maintained in
	// lockstep so predecessor queries (VisibleTo, HistoryTimestamp, indegree
	// setup during plan build) are row sweeps instead of column scans, at 2×
	// index memory.
	pred []bitset
	// mark/epoch/stack are the propagation walks' scratch: epoch-stamped
	// visited marks so propagating an edge allocates nothing.
	mark  []uint64
	epoch uint64
	stack []int32
	// words/edgeMem are the chunked arenas the index and adjacency rows are
	// carved from; runTargets and gain are AddVisBatch's per-run scratch (the
	// recorded targets, and the exact bits the run added to the source's
	// reach row — the delta the deferred ancestor flush distributes).
	words      wordArena
	edgeMem    int32Arena
	runTargets []int32
	gain       bitset
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{byID: make(map[uint64]labelAt)}
}

// reserve pre-sizes the per-rank arrays (and the identifier index) for n
// labels, so construction code that knows the final size up front — the
// rewriting, cloning — pays no append growth per label.
func (h *History) reserve(n int) {
	if n <= len(h.seq) || len(h.seq) > 0 {
		return
	}
	h.byID = make(map[uint64]labelAt, n)
	h.seq = make([]*Label, 0, n)
	h.adjOut = make([][]int32, 0, n)
	h.adjIn = make([][]int32, 0, n)
	h.reach = make([]bitset, 0, n)
	h.pred = make([]bitset, 0, n)
	h.mark = make([]uint64, 0, n)
}

// Add inserts a label into the history. Adding a label with a duplicate
// identifier is an error.
func (h *History) Add(l *Label) error {
	if l == nil {
		return fmt.Errorf("history: nil label")
	}
	if _, ok := h.byID[l.ID]; ok {
		return fmt.Errorf("history: duplicate label id %d", l.ID)
	}
	h.byID[l.ID] = labelAt{label: l, rank: int32(len(h.seq))}
	h.seq = append(h.seq, l)
	h.adjOut = append(h.adjOut, nil)
	h.adjIn = append(h.adjIn, nil)
	h.reach = append(h.reach, nil)
	h.pred = append(h.pred, nil)
	h.mark = append(h.mark, 0)
	return nil
}

// MustAdd is Add for construction code where a duplicate identifier is a
// programming error.
func (h *History) MustAdd(l *Label) *Label {
	if err := h.Add(l); err != nil {
		panic(err)
	}
	return l
}

// Label returns the label with the given identifier, or nil.
func (h *History) Label(id uint64) *Label { return h.byID[id].label }

// RankOf returns the insertion rank of the label with the given identifier
// and whether the history contains it. Incremental consumers use it to verify
// that claimed-new labels really are the history's tail.
func (h *History) RankOf(id uint64) (int, bool) {
	e, ok := h.byID[id]
	return int(e.rank), ok
}

// LabelAt returns the label at the given insertion rank (0 ≤ rank < Len).
func (h *History) LabelAt(rank int) *Label { return h.seq[rank] }

// Len returns the number of labels.
func (h *History) Len() int { return len(h.seq) }

// Labels returns the labels in insertion order.
func (h *History) Labels() []*Label {
	return append([]*Label(nil), h.seq...)
}

// AppendLabels appends the labels in insertion order to dst and returns the
// extended slice. It is Labels for callers that recycle the destination
// buffer across histories (the search engine's pooled prepare plans).
func (h *History) AppendLabels(dst []*Label) []*Label {
	return append(dst, h.seq...)
}

// VisEdges calls fn once for every edge (from, to) of the transitively closed
// visibility relation, in rank order on both endpoints (deterministic for a
// given history). Iterating the reachability rows is O(|vis| + n²/64), where
// the equivalent all-pairs scan over Vis is O(n²) probes regardless of how
// sparse the relation is.
func (h *History) VisEdges(fn func(from, to uint64)) {
	for r, row := range h.reach {
		from := h.seq[r].ID
		row.forEach(func(s int) {
			fn(from, h.seq[s].ID)
		})
	}
}

// DirectVisEdges calls fn once for every directly inserted edge — the
// generating set AddVis recorded, without its transitive consequences — in
// rank order per source and edge insertion order within one source.
// RewriteHistory transports exactly these edges; the rewritten history's own
// index re-derives the closure.
func (h *History) DirectVisEdges(fn func(from, to uint64)) {
	for r, outs := range h.adjOut {
		from := h.seq[r].ID
		for _, s := range outs {
			fn(from, h.seq[s].ID)
		}
	}
}

// touchRow re-carves an index row from the word arena when its capacity
// cannot hold words words: capacity for the whole current history (or double
// the old capacity, whichever is larger), so a row re-carves O(log n) times
// under interleaved Add/AddVis and bitset.grow then always extends in place —
// the propagation walks allocate nothing per row.
func (h *History) touchRow(row *bitset, words int) {
	if cap(*row) >= words {
		return
	}
	want := (len(h.seq) + 63) >> 6
	if c := 2 * cap(*row); c > want {
		want = c
	}
	if want < words {
		want = words
	}
	fresh := bitset(h.words.carve(want))[:len(*row)]
	copy(fresh, *row)
	*row = fresh
}

// recordEdge appends the direct edge rf -> rt to both adjacency mirrors,
// carving row growth from the edge arena.
func (h *History) recordEdge(rf, rt int) {
	h.adjOut[rf] = h.edgeMem.appendEdge(h.adjOut[rf], int32(rt))
	h.adjIn[rt] = h.edgeMem.appendEdge(h.adjIn[rt], int32(rf))
	h.nedges++
}

// DirectEdgeCount returns the number of directly recorded visibility edges —
// the generating set AddVis kept, not the closure. Incremental extension uses
// it to detect, in O(1), whether edges appeared between two snapshots beyond
// the ones counted into the appended suffix.
func (h *History) DirectEdgeCount() int { return h.nedges }

// DirectInDegree returns the number of directly recorded edges whose target
// is rank t (the length of the adjIn row, not the closed predecessor set).
func (h *History) DirectInDegree(t int) int { return len(h.adjIn[t]) }

// AddVis records that the label with identifier from is visible to the label
// with identifier to, and maintains the reachability index and its
// predecessor mirror. Adding an edge that would create a cycle is an error;
// adding an edge already implied by the relation is a no-op.
func (h *History) AddVis(from, to uint64) error {
	if from == to {
		return fmt.Errorf("history: visibility edge %d -> %d is reflexive", from, to)
	}
	fa, ok := h.byID[from]
	if !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", from)
	}
	ta, ok := h.byID[to]
	if !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", to)
	}
	rf, rt := int(fa.rank), int(ta.rank)
	if h.reach[rt].test(rf) {
		return fmt.Errorf("history: visibility edge %d -> %d creates a cycle", from, to)
	}
	if h.reach[rf].test(rt) {
		// Already implied transitively: the closure cannot change, so the
		// edge is not even recorded (the adjacency stays a generating set).
		return nil
	}
	h.recordEdge(rf, rt)
	h.propagateReach(rf, rt)
	h.propagatePred(rf, rt)
	return nil
}

// propagateReach folds the new edge rf -> rt into the reachability index: the
// target's successor row (plus the target itself) is OR-ed into the source's
// row and into every rank that reaches the source, found by walking the
// reverse adjacency — not by scanning the whole relation. A rank whose row
// already absorbed the delta stops the walk early: its own predecessors' rows
// are supersets of it by the index invariant.
func (h *History) propagateReach(rf, rt int) {
	delta := h.reach[rt]
	need := (rt >> 6) + 1
	if len(delta) > need {
		need = len(delta)
	}
	h.epoch++
	stack := append(h.stack[:0], int32(rf))
	h.mark[rf] = h.epoch
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := &h.reach[r]
		h.touchRow(row, need)
		changed := row.set(rt)
		if row.orInto(delta) {
			changed = true
		}
		if !changed {
			continue
		}
		for _, p := range h.adjIn[r] {
			if h.mark[p] != h.epoch {
				h.mark[p] = h.epoch
				stack = append(stack, p)
			}
		}
	}
	h.stack = stack[:0]
}

// propagatePred is propagateReach's mirror image for the predecessor index:
// the source's predecessor row (plus the source itself) is OR-ed into the
// target's row and into every rank the target reaches, walking the forward
// adjacency. The early stop is the transposed invariant: a successor's
// predecessor row is a superset of each of its parents'.
func (h *History) propagatePred(rf, rt int) {
	delta := h.pred[rf]
	need := (rf >> 6) + 1
	if len(delta) > need {
		need = len(delta)
	}
	h.epoch++
	stack := append(h.stack[:0], int32(rt))
	h.mark[rt] = h.epoch
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := &h.pred[r]
		h.touchRow(row, need)
		changed := row.set(rf)
		if row.orInto(delta) {
			changed = true
		}
		if !changed {
			continue
		}
		for _, s := range h.adjOut[r] {
			if h.mark[s] != h.epoch {
				h.mark[s] = h.epoch
				stack = append(stack, s)
			}
		}
	}
	h.stack = stack[:0]
}

// MustAddVis is AddVis for construction code.
func (h *History) MustAddVis(from, to uint64) {
	if err := h.AddVis(from, to); err != nil {
		panic(err)
	}
}

// VisEdge is one directed visibility edge by label identifier, the element
// type of AddVisBatch.
type VisEdge struct {
	// From is the label that becomes visible to To.
	From uint64
	// To is the observing label.
	To uint64
}

// AddVisBatch inserts a sequence of visibility edges with deferred, merged
// propagation: consecutive edges sharing a source form a run whose transitive
// fan-out is flushed once per run instead of once per edge. The observable
// outcome — recorded adjacency, skipped implied edges, the closure, errors
// and their messages — is identical to applying the same sequence through
// AddVis; on the first error the already-applied prefix is fully propagated
// and the error is returned (the remaining edges are not attempted). Bulk
// construction paths whose edges are naturally grouped by source (Project,
// scenario delivery) get the closure maintenance at one reverse walk and one
// forward walk per source instead of per edge.
func (h *History) AddVisBatch(edges []VisEdge) error {
	for i := 0; i < len(edges); {
		j := i + 1
		for j < len(edges) && edges[j].From == edges[i].From {
			j++
		}
		if err := h.addVisRun(edges[i].From, edges[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// eagerApply folds one recorded run edge rf -> rt into the rows the rest of
// the run reads: the source's reach row (so in-run implication checks see
// every consequence), the target's pred row (its full new ancestry, final
// because pred[rf] cannot change during the run), and the run-gain scratch
// (the delta the deferred ancestor flush will distribute).
func (h *History) eagerApply(rf, rt int) {
	rrow := &h.reach[rf]
	need := (rt >> 6) + 1
	if len(h.reach[rt]) > need {
		need = len(h.reach[rt])
	}
	h.touchRow(rrow, need)
	rrow.set(rt)
	rrow.orInto(h.reach[rt])
	h.gain.set(rt)
	h.gain.orInto(h.reach[rt])
	prow := &h.pred[rt]
	need = (rf >> 6) + 1
	if len(h.pred[rf]) > need {
		need = len(h.pred[rf])
	}
	h.touchRow(prow, need)
	prow.set(rf)
	prow.orInto(h.pred[rf])
}

// addVisRun applies one same-source run with deferred propagation. Per edge
// it performs the exact AddVis checks and records the adjacency; while only
// one edge has been recorded its propagation stays pending, so a run that
// records a single edge (every run of a chain replay) degrades to exactly
// the AddVis propagation pair. The moment a second candidate passes the
// cycle check the pending edge is materialized through eagerApply — the
// source's reach row must be current before the candidate's implication
// check — and the run switches to merged mode: per recorded edge only the
// eager rows are maintained, and the transitive fan-out is flushed once at
// the end. This is equivalent to sequential AddVis because every edge of the
// run leaves the source: no new path into the source (or into any other
// rank's ancestry of it) can form, so the cycle check's row is current
// wherever it matters, and the eagerly grown source row makes in-run
// implications visible exactly as full propagation would.
func (h *History) addVisRun(from uint64, run []VisEdge) error {
	var err error
	rf := -1
	pending := -1
	multi := false
	h.runTargets = h.runTargets[:0]
	h.gain = h.gain[:0]
	for _, e := range run {
		to := e.To
		if from == to {
			err = fmt.Errorf("history: visibility edge %d -> %d is reflexive", from, to)
			break
		}
		if rf < 0 {
			fa, ok := h.byID[from]
			if !ok {
				err = fmt.Errorf("history: unknown label %d in visibility edge", from)
				break
			}
			rf = int(fa.rank)
		}
		ta, ok := h.byID[to]
		if !ok {
			err = fmt.Errorf("history: unknown label %d in visibility edge", to)
			break
		}
		rt := int(ta.rank)
		if h.reach[rt].test(rf) {
			err = fmt.Errorf("history: visibility edge %d -> %d creates a cycle", from, to)
			break
		}
		if pending >= 0 {
			h.eagerApply(rf, pending)
			pending = -1
			multi = true
		}
		if h.reach[rf].test(rt) {
			continue
		}
		h.recordEdge(rf, rt)
		h.runTargets = append(h.runTargets, int32(rt))
		if !multi {
			pending = rt
			continue
		}
		h.eagerApply(rf, rt)
	}
	switch {
	case pending >= 0:
		h.propagateReach(rf, pending)
		h.propagatePred(rf, pending)
	case len(h.runTargets) > 0:
		h.flushReach(rf)
		h.flushPred(rf, h.runTargets)
	}
	h.runTargets = h.runTargets[:0]
	return err
}

// flushReach propagates a merged run's source-row gain to every ancestor of
// rf: a rank that reaches rf absorbs the run-gain scratch (exactly the bits
// the run added — using the full source row would make ancestors rescan
// everything the source already reached). The walk seeds from rf's direct
// predecessors with rf itself pre-marked — absorbing its own gain into
// itself would be a no-change and stop the walk before it started.
func (h *History) flushReach(rf int) {
	delta := h.gain
	h.epoch++
	h.mark[rf] = h.epoch
	stack := h.stack[:0]
	for _, p := range h.adjIn[rf] {
		if h.mark[p] != h.epoch {
			h.mark[p] = h.epoch
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := &h.reach[r]
		h.touchRow(row, len(delta))
		if !row.orInto(delta) {
			continue
		}
		for _, p := range h.adjIn[r] {
			if h.mark[p] != h.epoch {
				h.mark[p] = h.epoch
				stack = append(stack, p)
			}
		}
	}
	h.stack = stack[:0]
}

// flushPred propagates a run's predecessor delta — {rf} ∪ pred[rf], the
// exact set of new ancestors any rank can have gained, identical for every
// target because pred[rf] cannot change during the run — to the descendants
// of the recorded targets. The targets absorbed the delta eagerly and are
// pre-marked; rf is pre-marked too (it cannot be a target's descendant, that
// would be a cycle, but marking it keeps the self-bit unreachable even so).
func (h *History) flushPred(rf int, targets []int32) {
	delta := h.pred[rf]
	need := (rf >> 6) + 1
	if len(delta) > need {
		need = len(delta)
	}
	h.epoch++
	h.mark[rf] = h.epoch
	stack := h.stack[:0]
	for _, t := range targets {
		h.mark[t] = h.epoch
	}
	for _, t := range targets {
		for _, s := range h.adjOut[t] {
			if h.mark[s] != h.epoch {
				h.mark[s] = h.epoch
				stack = append(stack, s)
			}
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := &h.pred[r]
		h.touchRow(row, need)
		changed := row.set(rf)
		if row.orInto(delta) {
			changed = true
		}
		if !changed {
			continue
		}
		for _, s := range h.adjOut[r] {
			if h.mark[s] != h.epoch {
				h.mark[s] = h.epoch
				stack = append(stack, s)
			}
		}
	}
	h.stack = stack[:0]
}

// Vis reports whether the label with identifier from is visible to the label
// with identifier to: one bit probe of the reachability index.
func (h *History) Vis(from, to uint64) bool {
	fa, ok := h.byID[from]
	if !ok {
		return false
	}
	ta, ok := h.byID[to]
	if !ok {
		return false
	}
	return h.reach[fa.rank].test(int(ta.rank))
}

// Concurrent reports whether the two labels are concurrent (neither is
// visible to the other), the relation ▷◁ of Section 4.1.
func (h *History) Concurrent(a, b uint64) bool {
	return a != b && !h.Vis(a, b) && !h.Vis(b, a)
}

// VisibleTo returns the labels visible to l (vis⁻¹(l)), in insertion order:
// one row sweep of the predecessor mirror (the pre-mirror version scanned the
// reachability column, probing every rank's row).
func (h *History) VisibleTo(l *Label) []*Label {
	la, ok := h.byID[l.ID]
	if !ok {
		return nil
	}
	var out []*Label
	h.pred[la.rank].forEach(func(s int) {
		out = append(out, h.seq[s])
	})
	return out
}

// SeenBy returns the labels that see l (vis(l)), in insertion order.
func (h *History) SeenBy(l *Label) []*Label {
	la, ok := h.byID[l.ID]
	if !ok {
		return nil
	}
	var out []*Label
	h.reach[la.rank].forEach(func(s int) {
		out = append(out, h.seq[s])
	})
	return out
}

// PredRow calls fn for every rank whose label is visible to the label at
// rank t, in ascending rank order: the raw predecessor-mirror sweep, exported
// within the module for the search plan builder's indegree setup.
func (h *History) PredRow(t int, fn func(s int)) {
	h.pred[t].forEach(fn)
}

// SuccRow calls fn for every rank the label at rank f is visible to, in
// ascending rank order: the successor-row counterpart of PredRow. Together the
// two let the search plan builder fill its predecessor and successor index
// lists with one row sweep per label instead of a map-keyed pass over the
// whole closure edge set.
func (h *History) SuccRow(f int, fn func(s int)) {
	h.reach[f].forEach(fn)
}

// IsAcyclic reports whether the visibility relation is acyclic. Histories
// produced by the operational semantics are always acyclic — AddVis rejects
// cycles — but histories of object compositions (Section 5.1) may in
// principle contain cycles (tests plant them directly), and the checker
// rejects them.
func (h *History) IsAcyclic() bool {
	for r, row := range h.reach {
		if row.test(r) {
			return false
		}
		acyclic := true
		row.forEach(func(s int) {
			if h.reach[s].test(r) {
				acyclic = false
			}
		})
		if !acyclic {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the history (labels are cloned). The copy's
// adjacency and index rows are carved from its own fresh arenas, so cloning
// allocates per chunk, not per row.
func (h *History) Clone() *History {
	c := &History{
		byID:   make(map[uint64]labelAt, len(h.byID)),
		nedges: h.nedges,
		seq:    make([]*Label, len(h.seq)),
		adjOut: make([][]int32, len(h.adjOut)),
		adjIn:  make([][]int32, len(h.adjIn)),
		reach:  make([]bitset, len(h.reach)),
		pred:   make([]bitset, len(h.pred)),
		mark:   make([]uint64, len(h.mark)),
	}
	for r, l := range h.seq {
		cl := l.Clone()
		c.seq[r] = cl
		c.byID[cl.ID] = labelAt{label: cl, rank: int32(r)}
	}
	for r := range h.adjOut {
		if n := len(h.adjOut[r]); n > 0 {
			row := c.edgeMem.carve(n)[:n]
			copy(row, h.adjOut[r])
			c.adjOut[r] = row
		}
		if n := len(h.adjIn[r]); n > 0 {
			row := c.edgeMem.carve(n)[:n]
			copy(row, h.adjIn[r])
			c.adjIn[r] = row
		}
		if n := len(h.reach[r]); n > 0 {
			row := bitset(c.words.carve(n))[:n]
			copy(row, h.reach[r])
			c.reach[r] = row
		}
		if n := len(h.pred[r]); n > 0 {
			row := bitset(c.words.carve(n))[:n]
			copy(row, h.pred[r])
			c.pred[r] = row
		}
	}
	return c
}

// Project returns the sub-history containing only the labels for which keep
// returns true, with the visibility relation restricted accordingly. The
// restriction is taken on the closure, so labels related through a dropped
// label stay related in the projection. Each kept rank's closure row is
// inserted as one AddVisBatch run, so propagation in the projection is merged
// per source instead of per edge.
func (h *History) Project(keep func(*Label) bool) *History {
	c := NewHistory()
	kept := make([]bool, len(h.seq))
	nkept := 0
	for r, l := range h.seq {
		if keep(l) {
			kept[r] = true
			nkept++
		}
	}
	c.reserve(nkept)
	for r, l := range h.seq {
		if kept[r] {
			c.MustAdd(l.Clone())
		}
	}
	var run []VisEdge
	for r, row := range h.reach {
		if !kept[r] {
			continue
		}
		from := h.seq[r].ID
		run = run[:0]
		row.forEach(func(s int) {
			if kept[s] {
				run = append(run, VisEdge{From: from, To: h.seq[s].ID})
			}
		})
		if len(run) == 0 {
			continue
		}
		if err := c.AddVisBatch(run); err != nil {
			panic(err)
		}
	}
	return c
}

// ProjectObject returns the sub-history of operations on the named object.
func (h *History) ProjectObject(object string) *History {
	return h.Project(func(l *Label) bool { return l.Object == object })
}

// Objects returns the distinct object names appearing in the history, sorted.
func (h *History) Objects() []string {
	set := map[string]bool{}
	for _, l := range h.seq {
		set[l.Object] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// HistoryTimestamp returns ts_h(l): the label's own timestamp if it generated
// one, and otherwise the maximal timestamp among the operations visible to it
// (⊥ if none). This is the "virtual timestamp" of Section 4.2.
func (h *History) HistoryTimestamp(l *Label) clock.Timestamp {
	if !l.TS.IsBottom() {
		return l.TS
	}
	// The predecessor mirror is transitively closed, so the maximum over one
	// row sweep is the maximum over the whole past.
	max := clock.Bottom
	la, ok := h.byID[l.ID]
	if !ok {
		return max
	}
	h.pred[la.rank].forEach(func(s int) {
		max = max.Max(h.seq[s].TS)
	})
	return max
}

// ConsistentWithVis reports whether the sequence seq (which must contain
// exactly the labels of h) is consistent with the visibility relation:
// vis ∪ seq is acyclic, which for a total order seq means no label is
// ordered before one of its visibility predecessors.
func (h *History) ConsistentWithVis(seq []*Label) error {
	if len(seq) != h.Len() {
		return fmt.Errorf("sequence has %d labels, history has %d", len(seq), h.Len())
	}
	pos := make(map[uint64]int, len(seq))
	for i, l := range seq {
		if h.byID[l.ID].label == nil {
			return fmt.Errorf("sequence label %v not in history", l)
		}
		if _, dup := pos[l.ID]; dup {
			return fmt.Errorf("sequence repeats label %v", l)
		}
		pos[l.ID] = i
	}
	for r, row := range h.reach {
		from := h.seq[r]
		var bad *Label
		row.forEach(func(s int) {
			if bad == nil && pos[from.ID] > pos[h.seq[s].ID] {
				bad = h.seq[s]
			}
		})
		if bad != nil {
			return fmt.Errorf("sequence orders %v before %v against visibility", bad, from)
		}
	}
	return nil
}

// String renders the history: one line per label with its visibility
// predecessors, in insertion order.
func (h *History) String() string {
	var b strings.Builder
	for _, l := range h.seq {
		fmt.Fprintf(&b, "%-4d %s  (origin %s", l.ID, l, l.Origin)
		preds := h.VisibleTo(l)
		if len(preds) > 0 {
			ids := make([]string, len(preds))
			for i, p := range preds {
				ids[i] = fmt.Sprintf("%d", p.ID)
			}
			fmt.Fprintf(&b, "; sees %s", strings.Join(ids, ","))
		}
		b.WriteString(")\n")
	}
	return b.String()
}
