package core

import (
	"fmt"
	"sort"
	"strings"

	"ralin/internal/clock"
)

// History is a pair (L, vis): a set of operation labels together with an
// acyclic visibility relation between them (Section 3.1). The relation is
// stored transitively closed, matching the operational semantics where
// visibility is a strict partial order by construction.
type History struct {
	labels map[uint64]*Label
	order  []uint64
	// vis[a][b] holds when label a is visible to label b.
	vis map[uint64]map[uint64]bool
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{
		labels: make(map[uint64]*Label),
		vis:    make(map[uint64]map[uint64]bool),
	}
}

// Add inserts a label into the history. Adding a label with a duplicate
// identifier is an error.
func (h *History) Add(l *Label) error {
	if l == nil {
		return fmt.Errorf("history: nil label")
	}
	if _, ok := h.labels[l.ID]; ok {
		return fmt.Errorf("history: duplicate label id %d", l.ID)
	}
	h.labels[l.ID] = l
	h.order = append(h.order, l.ID)
	return nil
}

// MustAdd is Add for construction code where a duplicate identifier is a
// programming error.
func (h *History) MustAdd(l *Label) *Label {
	if err := h.Add(l); err != nil {
		panic(err)
	}
	return l
}

// Label returns the label with the given identifier, or nil.
func (h *History) Label(id uint64) *Label { return h.labels[id] }

// Len returns the number of labels.
func (h *History) Len() int { return len(h.order) }

// Labels returns the labels in insertion order.
func (h *History) Labels() []*Label {
	out := make([]*Label, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, h.labels[id])
	}
	return out
}

// AppendLabels appends the labels in insertion order to dst and returns the
// extended slice. It is Labels for callers that recycle the destination
// buffer across histories (the search engine's pooled prepare plans).
func (h *History) AppendLabels(dst []*Label) []*Label {
	for _, id := range h.order {
		dst = append(dst, h.labels[id])
	}
	return dst
}

// VisEdges calls fn once for every edge (from, to) of the (transitively
// closed) visibility relation. The edge order is unspecified — the relation
// is stored as adjacency maps — so callers that need determinism must sort.
// Iterating the edge set directly is O(|vis|), where the equivalent all-pairs
// scan over Vis is O(|L|²) regardless of how sparse the relation is.
func (h *History) VisEdges(fn func(from, to uint64)) {
	for _, from := range h.order {
		for to := range h.vis[from] {
			fn(from, to)
		}
	}
}

// AddVis records that the label with identifier from is visible to the label
// with identifier to, and maintains transitive closure. Adding an edge that
// would create a cycle is an error.
func (h *History) AddVis(from, to uint64) error {
	if from == to {
		return fmt.Errorf("history: visibility edge %d -> %d is reflexive", from, to)
	}
	if _, ok := h.labels[from]; !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", from)
	}
	if _, ok := h.labels[to]; !ok {
		return fmt.Errorf("history: unknown label %d in visibility edge", to)
	}
	if h.Vis(to, from) {
		return fmt.Errorf("history: visibility edge %d -> %d creates a cycle", from, to)
	}
	// Transitive closure: predecessors of from (and from itself) become
	// visible to successors of to (and to itself).
	preds := append(h.predecessorIDs(from), from)
	succs := append(h.successorIDs(to), to)
	for _, p := range preds {
		for _, s := range succs {
			if p == s {
				continue
			}
			if h.vis[p] == nil {
				h.vis[p] = make(map[uint64]bool)
			}
			h.vis[p][s] = true
		}
	}
	return nil
}

// MustAddVis is AddVis for construction code.
func (h *History) MustAddVis(from, to uint64) {
	if err := h.AddVis(from, to); err != nil {
		panic(err)
	}
}

// Vis reports whether the label with identifier from is visible to the label
// with identifier to.
func (h *History) Vis(from, to uint64) bool {
	return h.vis[from][to]
}

// Concurrent reports whether the two labels are concurrent (neither is
// visible to the other), the relation ▷◁ of Section 4.1.
func (h *History) Concurrent(a, b uint64) bool {
	return a != b && !h.Vis(a, b) && !h.Vis(b, a)
}

func (h *History) predecessorIDs(id uint64) []uint64 {
	var out []uint64
	for from, tos := range h.vis {
		if tos[id] {
			out = append(out, from)
		}
	}
	return out
}

func (h *History) successorIDs(id uint64) []uint64 {
	var out []uint64
	for to := range h.vis[id] {
		out = append(out, to)
	}
	return out
}

// VisibleTo returns the labels visible to l (vis⁻¹(l)), in insertion order.
func (h *History) VisibleTo(l *Label) []*Label {
	var out []*Label
	for _, id := range h.order {
		if h.Vis(id, l.ID) {
			out = append(out, h.labels[id])
		}
	}
	return out
}

// SeenBy returns the labels that see l (vis(l)), in insertion order.
func (h *History) SeenBy(l *Label) []*Label {
	var out []*Label
	for _, id := range h.order {
		if h.Vis(l.ID, id) {
			out = append(out, h.labels[id])
		}
	}
	return out
}

// IsAcyclic reports whether the visibility relation is acyclic. Histories
// produced by the operational semantics are always acyclic; histories of
// object compositions (Section 5.1) may in principle contain cycles, and the
// checker rejects them.
func (h *History) IsAcyclic() bool {
	for a, tos := range h.vis {
		for b := range tos {
			if h.vis[b][a] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the history (labels are cloned).
func (h *History) Clone() *History {
	c := NewHistory()
	for _, id := range h.order {
		c.MustAdd(h.labels[id].Clone())
	}
	for from, tos := range h.vis {
		for to := range tos {
			if c.vis[from] == nil {
				c.vis[from] = make(map[uint64]bool)
			}
			c.vis[from][to] = true
		}
	}
	return c
}

// Project returns the sub-history containing only the labels for which keep
// returns true, with the visibility relation restricted accordingly.
func (h *History) Project(keep func(*Label) bool) *History {
	c := NewHistory()
	for _, id := range h.order {
		if keep(h.labels[id]) {
			c.MustAdd(h.labels[id].Clone())
		}
	}
	for from, tos := range h.vis {
		if c.labels[from] == nil {
			continue
		}
		for to := range tos {
			if c.labels[to] == nil {
				continue
			}
			if c.vis[from] == nil {
				c.vis[from] = make(map[uint64]bool)
			}
			c.vis[from][to] = true
		}
	}
	return c
}

// ProjectObject returns the sub-history of operations on the named object.
func (h *History) ProjectObject(object string) *History {
	return h.Project(func(l *Label) bool { return l.Object == object })
}

// Objects returns the distinct object names appearing in the history, sorted.
func (h *History) Objects() []string {
	set := map[string]bool{}
	for _, l := range h.Labels() {
		set[l.Object] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// HistoryTimestamp returns ts_h(l): the label's own timestamp if it generated
// one, and otherwise the maximal timestamp among the operations visible to it
// (⊥ if none). This is the "virtual timestamp" of Section 4.2.
func (h *History) HistoryTimestamp(l *Label) clock.Timestamp {
	if !l.TS.IsBottom() {
		return l.TS
	}
	// The visibility relation is transitively closed, so the maximum over the
	// direct predecessors' own timestamps is the maximum over the whole past.
	max := clock.Bottom
	for _, p := range h.VisibleTo(l) {
		max = max.Max(p.TS)
	}
	return max
}

// ConsistentWithVis reports whether the sequence seq (which must contain
// exactly the labels of h) is consistent with the visibility relation:
// vis ∪ seq is acyclic, which for a total order seq means no label is
// ordered before one of its visibility predecessors.
func (h *History) ConsistentWithVis(seq []*Label) error {
	if len(seq) != h.Len() {
		return fmt.Errorf("sequence has %d labels, history has %d", len(seq), h.Len())
	}
	pos := make(map[uint64]int, len(seq))
	for i, l := range seq {
		if h.labels[l.ID] == nil {
			return fmt.Errorf("sequence label %v not in history", l)
		}
		if _, dup := pos[l.ID]; dup {
			return fmt.Errorf("sequence repeats label %v", l)
		}
		pos[l.ID] = i
	}
	for from, tos := range h.vis {
		for to := range tos {
			if pos[from] > pos[to] {
				return fmt.Errorf("sequence orders %v before %v against visibility",
					h.labels[to], h.labels[from])
			}
		}
	}
	return nil
}

// String renders the history: one line per label with its visibility
// predecessors, in insertion order.
func (h *History) String() string {
	var b strings.Builder
	for _, id := range h.order {
		l := h.labels[id]
		fmt.Fprintf(&b, "%-4d %s  (origin %s", l.ID, l, l.Origin)
		preds := h.VisibleTo(l)
		if len(preds) > 0 {
			ids := make([]string, len(preds))
			for i, p := range preds {
				ids[i] = fmt.Sprintf("%d", p.ID)
			}
			fmt.Fprintf(&b, "; sees %s", strings.Join(ids, ","))
		}
		b.WriteString(")\n")
	}
	return b.String()
}
