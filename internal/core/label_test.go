package core

import (
	"testing"

	"ralin/internal/clock"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindQuery:       "query",
		KindUpdate:      "update",
		KindQueryUpdate: "query-update",
		Kind(42):        "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestLabelString(t *testing.T) {
	l := &Label{
		ID:     1,
		Object: "o1",
		Method: "addAfter",
		Args:   []Value{"a", "b"},
		Ret:    "ok",
		TS:     clock.Timestamp{Time: 3, Replica: 1},
		Kind:   KindUpdate,
	}
	want := "o1.addAfter(a, b)[3@r1] => ok"
	if got := l.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	q := &Label{ID: 2, Method: "read", Ret: []string{"a", "b"}, Kind: KindQuery}
	if got := q.String(); got != "read() => [a b]" {
		t.Fatalf("got %q", got)
	}
}

func TestLabelCloneIndependence(t *testing.T) {
	l := &Label{ID: 1, Method: "add", Args: []Value{"a"}, Kind: KindUpdate}
	c := l.Clone()
	c.Args[0] = "b"
	c.Method = "remove"
	if l.Args[0] != "a" || l.Method != "add" {
		t.Fatal("Clone must not alias the original label")
	}
}

func TestLabelKindPredicates(t *testing.T) {
	q := &Label{Kind: KindQuery}
	u := &Label{Kind: KindUpdate}
	qu := &Label{Kind: KindQueryUpdate}
	if !q.IsQuery() || q.IsUpdate() || q.IsQueryUpdate() {
		t.Fatal("query predicates wrong")
	}
	if !u.IsUpdate() || u.IsQuery() || u.IsQueryUpdate() {
		t.Fatal("update predicates wrong")
	}
	if !qu.IsQueryUpdate() || qu.IsQuery() || qu.IsUpdate() {
		t.Fatal("query-update predicates wrong")
	}
}

func TestValueEqual(t *testing.T) {
	if !ValueEqual([]string{"a", "b"}, []string{"a", "b"}) {
		t.Fatal("equal slices must compare equal")
	}
	if ValueEqual([]string{"a"}, []string{"b"}) {
		t.Fatal("different slices must not compare equal")
	}
	if !ValueEqual(int64(3), int64(3)) || ValueEqual(int64(3), int64(4)) {
		t.Fatal("integer equality wrong")
	}
	if !ValueEqual(nil, nil) {
		t.Fatal("nil must equal nil")
	}
}

func TestSortedSet(t *testing.T) {
	got := SortedSet([]string{"b", "a", "b", "c", "a"})
	want := []string{"a", "b", "c"}
	if !ValueEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if len(SortedSet(nil)) != 0 {
		t.Fatal("empty input must give empty output")
	}
}

func TestSortPairs(t *testing.T) {
	ps := []Pair{{Elem: "b", ID: 1}, {Elem: "a", ID: 2}, {Elem: "a", ID: 1}}
	SortPairs(ps)
	want := []Pair{{Elem: "a", ID: 1}, {Elem: "a", ID: 2}, {Elem: "b", ID: 1}}
	if !ValueEqual(ps, want) {
		t.Fatalf("got %v want %v", ps, want)
	}
	if ps[0].String() != "a#1" {
		t.Fatalf("unexpected pair rendering %q", ps[0].String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{nil, "_"},
		{"x", "x"},
		{[]string{"a", "b"}, "[a b]"},
		{int64(7), "7"},
		{[]Pair{{Elem: "a", ID: 1}}, "[a#1]"},
		{map[string]int{"b": 2, "a": 1}, "{a:1 b:2}"},
	}
	for _, c := range cases {
		if got := FormatValue(c.in); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatLabels(t *testing.T) {
	a := &Label{ID: 1, Method: "inc", Kind: KindUpdate}
	b := &Label{ID: 2, Method: "read", Ret: int64(1), Kind: KindQuery}
	if got := FormatLabels([]*Label{a, b}); got != "inc() · read() => 1" {
		t.Fatalf("got %q", got)
	}
}
