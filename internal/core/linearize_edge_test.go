package core

import (
	"testing"
)

// Edge cases of the linear-extension enumerator and the checker entry points:
// empty histories, singletons, cyclic visibility relations and MaxExtensions
// truncation.

func TestLinearExtensionsEmptyHistory(t *testing.T) {
	h := NewHistory()
	var seqs [][]*Label
	produced, truncated := LinearExtensions(h, 0, func(seq []*Label) bool {
		seqs = append(seqs, seq)
		return true
	})
	if produced != 1 || truncated {
		t.Fatalf("empty history has exactly the empty extension: produced=%d truncated=%v", produced, truncated)
	}
	if len(seqs) != 1 || len(seqs[0]) != 0 {
		t.Fatalf("expected one empty sequence, got %v", seqs)
	}
	res := CheckRA(h, counterSpec{}, CheckOptions{Exhaustive: true})
	if !res.OK || !res.Complete || len(res.Linearization) != 0 {
		t.Fatalf("empty history must be RA-linearizable with the empty witness: %+v", res)
	}
}

func TestLinearExtensionsSingleLabel(t *testing.T) {
	h := NewHistory()
	h.MustAdd(mkLabel(1, "inc", KindUpdate))
	produced, truncated := LinearExtensions(h, 0, func(seq []*Label) bool {
		if len(seq) != 1 || seq[0].ID != 1 {
			t.Fatalf("unexpected extension %v", seq)
		}
		return true
	})
	if produced != 1 || truncated {
		t.Fatalf("singleton history has exactly one extension: produced=%d truncated=%v", produced, truncated)
	}
	res := CheckRA(h, counterSpec{}, CheckOptions{Exhaustive: true})
	if !res.OK || !res.Complete {
		t.Fatalf("single inc must be RA-linearizable: %+v", res)
	}
}

// plantVisUnchecked inserts a visibility edge directly into the history's
// adjacency and reachability index, bypassing AddVis's cycle check and
// closure propagation. Test-only: it lets tests build the cyclic relations
// AddVis rejects.
func plantVisUnchecked(h *History, from, to uint64) {
	rf, rt := h.byID[from].rank, h.byID[to].rank
	h.adjOut[rf] = append(h.adjOut[rf], rt)
	h.adjIn[rt] = append(h.adjIn[rt], rf)
	h.reach[rf].set(int(rt))
}

// cyclicHistory builds a two-label history whose visibility relation is a
// cycle. AddVis rejects cycles, so the relation is planted directly — the
// checker must still reject such histories (they can in principle arise from
// object compositions, Section 5.1).
func cyclicHistory() *History {
	h := NewHistory()
	h.MustAdd(mkLabel(1, "inc", KindUpdate))
	h.MustAdd(mkLabel(2, "inc", KindUpdate))
	plantVisUnchecked(h, 1, 2)
	plantVisUnchecked(h, 2, 1)
	return h
}

func TestCyclicVisibilityRejected(t *testing.T) {
	h := cyclicHistory()
	if h.IsAcyclic() {
		t.Fatal("test history must be cyclic")
	}
	produced, truncated := LinearExtensions(h, 0, func([]*Label) bool { return true })
	if produced != 0 || truncated {
		t.Fatalf("a cyclic relation has no linear extensions: produced=%d truncated=%v", produced, truncated)
	}
	res := CheckRA(h, counterSpec{}, DefaultCheckOptions())
	if res.OK || !res.Complete || res.LastErr == nil {
		t.Fatalf("cyclic history must be rejected definitively: %+v", res)
	}
	strong := CheckStrongLinearizable(h, counterSpec{}, CheckOptions{Exhaustive: true})
	if strong.OK || !strong.Complete || strong.LastErr == nil {
		t.Fatalf("cyclic history must fail the strong check definitively: %+v", strong)
	}
}

func TestMaxExtensionsTruncationIncomplete(t *testing.T) {
	// Three concurrent updates none of which the spec admits: every one of
	// the 3! extensions is rejected, so capping the enumeration below 6 must
	// report an incomplete (non-definitive) verdict.
	h := NewHistory()
	for id := uint64(1); id <= 3; id++ {
		h.MustAdd(mkLabel(id, "bogus", KindUpdate))
	}
	res := CheckRA(h, counterSpec{}, CheckOptions{Exhaustive: true, MaxExtensions: 2, Engine: EngineLegacy})
	if res.OK {
		t.Fatalf("bogus updates must not linearize: %+v", res)
	}
	if res.Complete {
		t.Fatal("a truncated search must report Complete == false")
	}
	if res.Tried != 2 {
		t.Fatalf("MaxExtensions=2 must try exactly 2 candidates, tried %d", res.Tried)
	}
	// Without the cap the same verdict becomes definitive.
	full := CheckRA(h, counterSpec{}, CheckOptions{Exhaustive: true, Engine: EngineLegacy})
	if full.OK || !full.Complete {
		t.Fatalf("uncapped search must be complete: %+v", full)
	}
	produced, truncated := LinearExtensions(h, 4, func([]*Label) bool { return true })
	if produced != 4 || !truncated {
		t.Fatalf("limit=4 of 6 extensions: produced=%d truncated=%v", produced, truncated)
	}
}
