package core

import (
	"fmt"
	"testing"
)

// orSetLikeRewriting splits remove(a) ⇒ R into readIds(a) ⇒ R · remove(R),
// mirroring Example 3.6.
var orSetLikeRewriting = RewriteFunc(func(l *Label) ([]*Label, error) {
	if l.Method != "remove" {
		return []*Label{l.Clone()}, nil
	}
	q := l.Clone()
	q.Method = "readIds"
	q.Kind = KindQuery
	u := l.Clone()
	u.Method = "removeIds"
	u.Args = []Value{l.Ret}
	u.Ret = nil
	u.Kind = KindUpdate
	return []*Label{q, u}, nil
})

func TestIdentityRewriting(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 10, Method: "add", Kind: KindUpdate, GenSeq: 1})
	b := h.MustAdd(&Label{ID: 20, Method: "read", Kind: KindQuery, GenSeq: 2})
	h.MustAddVis(a.ID, b.ID)

	rew, err := RewriteHistory(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rew.History.Len() != 2 {
		t.Fatalf("expected 2 labels, got %d", rew.History.Len())
	}
	qa, ua := rew.QueryPart(a.ID), rew.UpdatePart(a.ID)
	if qa != ua {
		t.Fatal("singleton image must have equal query and update parts")
	}
	if !rew.History.Vis(rew.UpdatePart(a.ID).ID, rew.QueryPart(b.ID).ID) {
		t.Fatal("visibility must be transported")
	}
}

func TestIdentityRewritingRejectsQueryUpdates(t *testing.T) {
	h := NewHistory()
	h.MustAdd(&Label{ID: 1, Method: "remove", Kind: KindQueryUpdate})
	if _, err := RewriteHistory(h, nil); err == nil {
		t.Fatal("identity rewriting must reject query-update labels")
	}
}

func TestQueryUpdateRewriting(t *testing.T) {
	h := NewHistory()
	add := h.MustAdd(&Label{ID: 1, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, GenSeq: 1, Origin: 1})
	rem := h.MustAdd(&Label{ID: 2, Method: "remove", Args: []Value{"a"}, Ret: []Pair{{Elem: "a", ID: 1}}, Kind: KindQueryUpdate, GenSeq: 2, Origin: 1})
	read := h.MustAdd(&Label{ID: 3, Method: "read", Ret: []string{}, Kind: KindQuery, GenSeq: 3, Origin: 2})
	h.MustAddVis(add.ID, rem.ID)
	h.MustAddVis(rem.ID, read.ID)

	rew, err := RewriteHistory(h, orSetLikeRewriting)
	if err != nil {
		t.Fatal(err)
	}
	if rew.History.Len() != 4 {
		t.Fatalf("expected 4 labels after splitting, got %d", rew.History.Len())
	}
	q, u := rew.QueryPart(rem.ID), rew.UpdatePart(rem.ID)
	if q.Method != "readIds" || u.Method != "removeIds" {
		t.Fatalf("unexpected split methods %q, %q", q.Method, u.Method)
	}
	if !rew.History.Vis(q.ID, u.ID) {
		t.Fatal("query part must be visible to update part")
	}
	// The query part sees what the original saw; anything that saw the
	// original must see the update part.
	if !rew.History.Vis(rew.UpdatePart(add.ID).ID, q.ID) {
		t.Fatal("add must be visible to the query part of remove")
	}
	if !rew.History.Vis(u.ID, rew.QueryPart(read.ID).ID) {
		t.Fatal("update part of remove must be visible to the read")
	}
	// Origins are preserved and generator order keeps the split adjacent.
	if q.Origin != rem.Origin || u.Origin != rem.Origin {
		t.Fatal("origins must be preserved")
	}
	if q.GenSeq >= u.GenSeq {
		t.Fatal("query part must precede update part in generation order")
	}
}

func TestRewriteHistoryValidatesKinds(t *testing.T) {
	badKind := RewriteFunc(func(l *Label) ([]*Label, error) {
		c := l.Clone()
		c.Kind = KindQuery
		return []*Label{c}, nil
	})
	h := NewHistory()
	h.MustAdd(&Label{ID: 1, Method: "add", Kind: KindUpdate})
	if _, err := RewriteHistory(h, badKind); err == nil {
		t.Fatal("kind-changing rewriting must be rejected")
	}

	badPair := RewriteFunc(func(l *Label) ([]*Label, error) {
		return []*Label{l.Clone(), l.Clone()}, nil
	})
	h2 := NewHistory()
	h2.MustAdd(&Label{ID: 1, Method: "add", Kind: KindUpdate})
	if _, err := RewriteHistory(h2, badPair); err == nil {
		t.Fatal("pair image of an update must be rejected")
	}

	badSplit := RewriteFunc(func(l *Label) ([]*Label, error) {
		q := l.Clone()
		q.Kind = KindUpdate
		u := l.Clone()
		u.Kind = KindUpdate
		return []*Label{q, u}, nil
	})
	h3 := NewHistory()
	h3.MustAdd(&Label{ID: 1, Method: "remove", Kind: KindQueryUpdate})
	if _, err := RewriteHistory(h3, badSplit); err == nil {
		t.Fatal("(update, update) split must be rejected")
	}

	erroring := RewriteFunc(func(l *Label) ([]*Label, error) {
		return nil, fmt.Errorf("boom")
	})
	h4 := NewHistory()
	h4.MustAdd(&Label{ID: 1, Method: "add", Kind: KindUpdate})
	if _, err := RewriteHistory(h4, erroring); err == nil {
		t.Fatal("rewriting errors must propagate")
	}
}
