package core

import (
	"fmt"
	"testing"
)

// orSetLikeRewriting splits remove(a) ⇒ R into readIds(a) ⇒ R · remove(R),
// mirroring Example 3.6.
var orSetLikeRewriting = RewriteFunc(func(l *Label) ([]*Label, error) {
	if l.Method != "remove" {
		return []*Label{l.Clone()}, nil
	}
	q := l.Clone()
	q.Method = "readIds"
	q.Kind = KindQuery
	u := l.Clone()
	u.Method = "removeIds"
	u.Args = []Value{l.Ret}
	u.Ret = nil
	u.Kind = KindUpdate
	return []*Label{q, u}, nil
})

func TestIdentityRewriting(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 10, Method: "add", Kind: KindUpdate, GenSeq: 1})
	b := h.MustAdd(&Label{ID: 20, Method: "read", Kind: KindQuery, GenSeq: 2})
	h.MustAddVis(a.ID, b.ID)

	rew, err := RewriteHistory(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rew.History.Len() != 2 {
		t.Fatalf("expected 2 labels, got %d", rew.History.Len())
	}
	qa, ua := rew.QueryPart(a.ID), rew.UpdatePart(a.ID)
	if qa != ua {
		t.Fatal("singleton image must have equal query and update parts")
	}
	if !rew.History.Vis(rew.UpdatePart(a.ID).ID, rew.QueryPart(b.ID).ID) {
		t.Fatal("visibility must be transported")
	}
}

func TestIdentityRewritingRejectsQueryUpdates(t *testing.T) {
	h := NewHistory()
	h.MustAdd(&Label{ID: 1, Method: "remove", Kind: KindQueryUpdate})
	if _, err := RewriteHistory(h, nil); err == nil {
		t.Fatal("identity rewriting must reject query-update labels")
	}
}

func TestQueryUpdateRewriting(t *testing.T) {
	h := NewHistory()
	add := h.MustAdd(&Label{ID: 1, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, GenSeq: 1, Origin: 1})
	rem := h.MustAdd(&Label{ID: 2, Method: "remove", Args: []Value{"a"}, Ret: []Pair{{Elem: "a", ID: 1}}, Kind: KindQueryUpdate, GenSeq: 2, Origin: 1})
	read := h.MustAdd(&Label{ID: 3, Method: "read", Ret: []string{}, Kind: KindQuery, GenSeq: 3, Origin: 2})
	h.MustAddVis(add.ID, rem.ID)
	h.MustAddVis(rem.ID, read.ID)

	rew, err := RewriteHistory(h, orSetLikeRewriting)
	if err != nil {
		t.Fatal(err)
	}
	if rew.History.Len() != 4 {
		t.Fatalf("expected 4 labels after splitting, got %d", rew.History.Len())
	}
	q, u := rew.QueryPart(rem.ID), rew.UpdatePart(rem.ID)
	if q.Method != "readIds" || u.Method != "removeIds" {
		t.Fatalf("unexpected split methods %q, %q", q.Method, u.Method)
	}
	if !rew.History.Vis(q.ID, u.ID) {
		t.Fatal("query part must be visible to update part")
	}
	// The query part sees what the original saw; anything that saw the
	// original must see the update part.
	if !rew.History.Vis(rew.UpdatePart(add.ID).ID, q.ID) {
		t.Fatal("add must be visible to the query part of remove")
	}
	if !rew.History.Vis(u.ID, rew.QueryPart(read.ID).ID) {
		t.Fatal("update part of remove must be visible to the read")
	}
	// Origins are preserved and generator order keeps the split adjacent.
	if q.Origin != rem.Origin || u.Origin != rem.Origin {
		t.Fatal("origins must be preserved")
	}
	if q.GenSeq >= u.GenSeq {
		t.Fatal("query part must precede update part in generation order")
	}
}

// TestNilRewritingAliasesWithoutTies pins the aliasing fast path's positive
// cases: distinct GenSeqs — monotone or not in insertion order — keep the
// input history aliased instead of cloned.
func TestNilRewritingAliasesWithoutTies(t *testing.T) {
	monotone := NewHistory()
	monotone.MustAdd(&Label{ID: 7, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, GenSeq: 1})
	monotone.MustAdd(&Label{ID: 3, Method: "add", Args: []Value{"b"}, Kind: KindUpdate, GenSeq: 2})
	rew, err := RewriteHistory(monotone, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rew.History != monotone {
		t.Fatal("distinct monotone GenSeqs must alias the input history")
	}

	shuffled := NewHistory()
	shuffled.MustAdd(&Label{ID: 7, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, GenSeq: 5})
	shuffled.MustAdd(&Label{ID: 3, Method: "add", Args: []Value{"b"}, Kind: KindUpdate, GenSeq: 2})
	shuffled.MustAdd(&Label{ID: 9, Method: "add", Args: []Value{"c"}, Kind: KindUpdate, GenSeq: 4})
	rew, err = RewriteHistory(shuffled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rew.History != shuffled {
		t.Fatal("distinct out-of-order GenSeqs must still alias the input history")
	}
}

// TestNilRewritingFallsBackOnGenSeqTies is the aliasing/cloning divergence
// regression test: candidate orders break GenSeq ties on label ID, which
// under aliasing is the original ID (here deliberately ordered against
// insertion order) while cloning assigns fresh insertion-order IDs. A tied
// history must therefore take the cloning path, making a nil rewriting
// byte-identical to an explicit IdentityRewriting on every input.
func TestNilRewritingFallsBackOnGenSeqTies(t *testing.T) {
	build := func() *History {
		h := NewHistory()
		// Insertion order "first", "second"; ID order the other way around.
		h.MustAdd(&Label{ID: 50, Method: "add", Args: []Value{"first"}, Kind: KindUpdate, GenSeq: 1, Origin: 1})
		h.MustAdd(&Label{ID: 10, Method: "add", Args: []Value{"second"}, Kind: KindUpdate, GenSeq: 1, Origin: 2})
		return h
	}
	rew, err := RewriteHistory(build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	aliased := build()
	if rew.History.Len() != aliased.Len() {
		t.Fatalf("fallback must preserve the labels: %d vs %d", rew.History.Len(), aliased.Len())
	}

	opts := CheckOptions{Strategies: []Strategy{StrategyExecutionOrder}, Exhaustive: true, Parallelism: 1}
	viaNil := CheckRA(build(), setSpec{}, opts)
	identOpts := opts
	identOpts.Rewriting = IdentityRewriting{}
	viaIdentity := CheckRA(build(), setSpec{}, identOpts)
	if !viaNil.OK || !viaIdentity.OK {
		t.Fatalf("two concurrent adds must linearize: nil=%+v identity=%+v", viaNil, viaIdentity)
	}
	if len(viaNil.Linearization) != len(viaIdentity.Linearization) {
		t.Fatalf("witness lengths differ: %d vs %d", len(viaNil.Linearization), len(viaIdentity.Linearization))
	}
	for i := range viaNil.Linearization {
		a, b := viaNil.Linearization[i], viaIdentity.Linearization[i]
		if a.Method != b.Method || !ValueEqual(a.Args, b.Args) || a.Origin != b.Origin {
			t.Fatalf("witness position %d diverged between nil rewriting and IdentityRewriting: %v vs %v", i, a, b)
		}
	}
}

// TestRewriteVisTransportMatchesAllPairs pins the edge-set visibility
// transport against the all-pairs definition it replaced: for every ordered
// label pair, (ℓ, ℓ') ∈ vis iff (upd(γ(ℓ)), qry(γ(ℓ'))) ∈ vis'.
func TestRewriteVisTransportMatchesAllPairs(t *testing.T) {
	h := NewHistory()
	n := 9
	for i := 1; i <= n; i++ {
		kind := KindUpdate
		method := "add"
		if i%3 == 0 {
			kind = KindQueryUpdate
			method = "remove"
		}
		h.MustAdd(&Label{ID: uint64(i * 11), Method: method, Args: []Value{"a"}, Ret: []Pair{}, Kind: kind, GenSeq: uint64(i)})
	}
	// A sparse relation: a chain over every third label plus two cross edges.
	h.MustAddVis(11, 44)
	h.MustAddVis(44, 77)
	h.MustAddVis(22, 77)
	h.MustAddVis(55, 99)

	rew, err := RewriteHistory(h, orSetLikeRewriting)
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range h.Labels() {
		for _, to := range h.Labels() {
			if from.ID == to.ID {
				continue
			}
			want := h.Vis(from.ID, to.ID)
			got := rew.History.Vis(rew.UpdatePart(from.ID).ID, rew.QueryPart(to.ID).ID)
			if want != got {
				t.Errorf("vis(%d, %d) = %v not transported faithfully (got %v)", from.ID, to.ID, want, got)
			}
		}
	}
}

// fakeCacherSession is a minimal EngineSession carrying a rewrite cache, so
// the cache plumbing can be tested without the search engine.
type fakeCacherSession struct{ cache RewriteCache }

func (*fakeCacherSession) EngineSessionKind() string     { return "test-cache" }
func (s *fakeCacherSession) RewriteCache() *RewriteCache { return &s.cache }

// tokenedCloneRewriting wraps a RewriteFunc — a non-comparable value that
// would bypass the cache — and opts back in through RewritingToken.
type tokenedCloneRewriting struct {
	fn    RewriteFunc
	token any
}

func (t tokenedCloneRewriting) Rewrite(l *Label) ([]*Label, error) { return t.fn(l) }
func (t tokenedCloneRewriting) RewritingToken() any                { return t.token }

// TestRewritingTokenOptsFuncRewritingsIntoCache covers the RewritingToken
// escape hatch next to the closure-bypass behaviour it relaxes: a func-backed
// rewriting with an explicit token is cached (second derivation served from
// the cache, same RewrittenHistory pointer), a different token misses, a nil
// token keeps the bypass, and an explicit token never aliases the value
// identity of a comparable rewriting type.
func TestRewritingTokenOptsFuncRewritingsIntoCache(t *testing.T) {
	h := NewHistory()
	a := h.MustAdd(&Label{ID: 1, Method: "add", Args: []Value{"a"}, Kind: KindUpdate, GenSeq: 1})
	b := h.MustAdd(&Label{ID: 2, Method: "read", Ret: []string{"a"}, Kind: KindQuery, GenSeq: 2})
	h.MustAddVis(a.ID, b.ID)

	clone := RewriteFunc(func(l *Label) ([]*Label, error) { return []*Label{l.Clone()}, nil })
	sess := &fakeCacherSession{}
	mk := func(token any) CheckOptions {
		return CheckOptions{Rewriting: tokenedCloneRewriting{fn: clone, token: token}, Session: sess}
	}

	first, cached, err := rewriteForCheck(h, mk("γ1"))
	if err != nil || cached {
		t.Fatalf("first derivation must miss the cache: cached=%v err=%v", cached, err)
	}
	// A separately constructed value with an equal token must hit.
	second, cached, err := rewriteForCheck(h, mk("γ1"))
	if err != nil || !cached {
		t.Fatalf("equal token must hit the cache: cached=%v err=%v", cached, err)
	}
	if first != second {
		t.Fatal("cache hit must return the stored RewrittenHistory, not a re-derivation")
	}
	// A different token for the same history must miss.
	if _, cached, err = rewriteForCheck(h, mk("γ2")); err != nil || cached {
		t.Fatalf("different token must miss: cached=%v err=%v", cached, err)
	}
	// A nil token opts out: never cached, even on repeat.
	for i := 0; i < 2; i++ {
		if _, cached, err = rewriteForCheck(h, mk(nil)); err != nil || cached {
			t.Fatalf("nil token must bypass the cache (run %d): cached=%v err=%v", i, cached, err)
		}
	}
	// An explicit token must not alias a comparable rewriting used as its own
	// identity, even when the token value equals that rewriting value.
	compRew := IdentityRewriting{}
	if _, cached, err = rewriteForCheck(h, CheckOptions{Rewriting: compRew, Session: sess}); err != nil || cached {
		t.Fatalf("comparable rewriting first use must miss: cached=%v err=%v", cached, err)
	}
	if _, cached, err = rewriteForCheck(h, mk(compRew)); err != nil || cached {
		t.Fatalf("token equal to a comparable rewriting value must not alias its entry: cached=%v err=%v", cached, err)
	}
}

func TestRewriteHistoryValidatesKinds(t *testing.T) {
	badKind := RewriteFunc(func(l *Label) ([]*Label, error) {
		c := l.Clone()
		c.Kind = KindQuery
		return []*Label{c}, nil
	})
	h := NewHistory()
	h.MustAdd(&Label{ID: 1, Method: "add", Kind: KindUpdate})
	if _, err := RewriteHistory(h, badKind); err == nil {
		t.Fatal("kind-changing rewriting must be rejected")
	}

	badPair := RewriteFunc(func(l *Label) ([]*Label, error) {
		return []*Label{l.Clone(), l.Clone()}, nil
	})
	h2 := NewHistory()
	h2.MustAdd(&Label{ID: 1, Method: "add", Kind: KindUpdate})
	if _, err := RewriteHistory(h2, badPair); err == nil {
		t.Fatal("pair image of an update must be rejected")
	}

	badSplit := RewriteFunc(func(l *Label) ([]*Label, error) {
		q := l.Clone()
		q.Kind = KindUpdate
		u := l.Clone()
		u.Kind = KindUpdate
		return []*Label{q, u}, nil
	})
	h3 := NewHistory()
	h3.MustAdd(&Label{ID: 1, Method: "remove", Kind: KindQueryUpdate})
	if _, err := RewriteHistory(h3, badSplit); err == nil {
		t.Fatal("(update, update) split must be rejected")
	}

	erroring := RewriteFunc(func(l *Label) ([]*Label, error) {
		return nil, fmt.Errorf("boom")
	})
	h4 := NewHistory()
	h4.MustAdd(&Label{ID: 1, Method: "add", Kind: KindUpdate})
	if _, err := RewriteHistory(h4, erroring); err == nil {
		t.Fatal("rewriting errors must propagate")
	}
}
