package core

import (
	"fmt"
	"testing"
)

// sparseHistory builds n mostly-concurrent update labels with n/2 disjoint
// visibility edges: the visibility relation stays Θ(n) even transitively
// closed, which is exactly the shape where the old all-pairs visibility
// transport (Θ(n²) Vis probes regardless of the edge count) dwarfed the real
// work of a rewriting.
func sparseHistory(n int) *History {
	h := NewHistory()
	for i := 1; i <= n; i++ {
		h.MustAdd(&Label{ID: uint64(i), Method: "add", Args: []Value{"a"}, Kind: KindUpdate, GenSeq: uint64(i)})
	}
	for i := 1; i+1 <= n; i += 2 {
		h.MustAddVis(uint64(i), uint64(i+1))
	}
	return h
}

// BenchmarkRewriteHistorySparse measures RewriteHistory under a cloning
// rewriting on sparse histories of growing size. The visibility transport
// walks the relation's actual edge set, so the cost per label stays flat as n
// grows — under the previous all-pairs loop this benchmark scaled
// quadratically (every doubling of n quadrupled ns/op beyond the linear clone
// cost).
func BenchmarkRewriteHistorySparse(b *testing.B) {
	clone := RewriteFunc(func(l *Label) ([]*Label, error) {
		return []*Label{l.Clone()}, nil
	})
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			h := sparseHistory(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RewriteHistory(h, clone); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
