package harness

import (
	"fmt"

	"ralin/internal/core"
)

// This package imports internal/search (workload.go uses its batch
// sessions), which registers the pruned engine with the core checker, so
// every experiment driven through this package (and through the cmd/ralin-*
// tools and benchmarks built on it) runs pruned by default.

// Package-level checker tuning applied to every RA-linearizability check
// issued by the experiments, tables and workloads in this package. The
// cmd/ralin-* tools set it from their -engine/-parallel/-batch-workers flags.
var (
	checkEngine      core.Engine
	checkParallelism int
	batchWorkers     int
)

// SetCheckEngine selects the exhaustive-search engine and its parallelism for
// every check run through this package. The zero values keep the defaults
// (EngineAuto — the pruned engine — at GOMAXPROCS parallelism).
func SetCheckEngine(e core.Engine, parallelism int) {
	checkEngine = e
	checkParallelism = parallelism
}

// SetBatchWorkers bounds the worker pool CheckRandomHistories (and the other
// batch entry points) fans trials across. Zero keeps the default
// (GOMAXPROCS); one forces the sequential per-trial loop.
func SetBatchWorkers(n int) { batchWorkers = n }

// searchEffort renders the work a check's exhaustive phase performed in the
// units of the engine that ran it: complete candidates for the legacy
// enumerator, prefix nodes for the pruned engine (whose refutations reach no
// complete candidate at all). Session amortizations that served this check —
// a pooled history plan, a cached rewriting — are appended so tool output
// shows when the per-check setup cost was skipped.
func searchEffort(res core.Result) string {
	if res.Nodes > 0 {
		s := fmt.Sprintf("explored %d prefixes, %d pruned", res.Nodes, res.Pruned)
		if res.Steals > 0 {
			s += fmt.Sprintf(", %d stolen branches", res.Steals)
		}
		if res.PlanReused {
			s += ", pooled plan"
		}
		if res.RewriteCached {
			s += ", cached rewrite"
		}
		return s
	}
	return fmt.Sprintf("tried %d linearizations", res.Tried)
}

// checkTuning applies the package-level engine selection to checker options.
func checkTuning(opts core.CheckOptions) core.CheckOptions {
	if checkEngine != core.EngineAuto {
		opts.Engine = checkEngine
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = checkParallelism
	}
	return opts
}
