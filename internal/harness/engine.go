package harness

import (
	"context"
	"fmt"
	"time"

	"ralin/internal/core"
	"ralin/internal/search"
)

// This package imports internal/search (workload.go uses its batch
// sessions), which registers the pruned engine with the core checker, so
// every experiment driven through this package (and through the cmd/ralin-*
// tools and benchmarks built on it) runs pruned by default.

// Options is the explicit checker/batch configuration threaded through every
// entry point of this package: the figure reproductions, the Figure 12 table,
// the random-workload batches and the generated-history batches. The zero
// value is the default configuration (pruned engine, GOMAXPROCS parallelism
// and batch workers, one shared session per batch). It replaces the former
// package-level SetCheckEngine/SetBatchWorkers globals, so two callers with
// different configurations no longer race on hidden state.
type Options struct {
	// Engine selects the exhaustive-search engine for every check
	// (EngineAuto keeps the registered default, the pruned engine).
	Engine core.Engine
	// Guidance selects the pruned engine's branch ordering for every check
	// (GuidanceAuto keeps the deterministic rank order; GuidanceGuided opts
	// into heuristic ordering — same verdicts, different node counts). See
	// core.Guidance.
	Guidance core.Guidance
	// Parallelism bounds the inner search parallelism of each check. Zero
	// leaves the choice to the engine (GOMAXPROCS, or the adaptive
	// batch/inner split inside a batch pool).
	Parallelism int
	// BatchWorkers bounds the worker pool the batch entry points fan trials
	// across. Zero uses GOMAXPROCS; one forces the sequential per-trial
	// loop.
	BatchWorkers int
	// FreshSessions disables the shared engine session inside batches,
	// giving every history fresh interner/memo/scratch state — the
	// pre-batch behaviour, kept for differential testing and debugging.
	FreshSessions bool
	// Context carries the caller's cancellation into every trial of a batch:
	// when it is cancelled (or its deadline expires), dispatch stops, running
	// checks are interrupted at their next node, and the skipped trials are
	// reported as Unknown — never silently dropped. Nil means no
	// cancellation.
	Context context.Context
	// Timeout, when positive, bounds the wall clock of the whole batch (a
	// deadline derived from Context, or from the background context when
	// Context is nil). Trials past the deadline report VerdictUnknown with
	// ReasonDeadline.
	Timeout time.Duration
	// Budget caps the memory of the batch's shared engine session; see
	// search.Budget for the graceful-degradation semantics. Ignored with
	// FreshSessions (fresh per-trial state is bounded by the trial itself).
	Budget search.Budget
	// Check overrides the descriptor-derived checker options for every
	// trial of the batch entry points that would otherwise derive them
	// (CheckRandomHistories, CheckGenerated). Entry points taking an
	// explicit opts parameter (CheckHistoryBatch, CheckGeneratedAgainst)
	// ignore it. Engine/Parallelism tuning is still applied on top.
	Check *core.CheckOptions
}

// Tune applies the engine selection, branch-ordering guidance and parallelism
// of the Options to checker options. A pinned opts.Parallelism wins over
// o.Parallelism; a pinned opts.Guidance wins over o.Guidance.
func (o Options) Tune(opts core.CheckOptions) core.CheckOptions {
	if o.Engine != core.EngineAuto {
		opts.Engine = o.Engine
	}
	if opts.Guidance == core.GuidanceAuto {
		opts.Guidance = o.Guidance
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = o.Parallelism
	}
	return opts
}

// searchEffort renders the work a check's exhaustive phase performed in the
// units of the engine that ran it: complete candidates for the legacy
// enumerator, prefix nodes for the pruned engine (whose refutations reach no
// complete candidate at all). Session amortizations that served this check —
// a pooled history plan, a cached rewriting — are appended so tool output
// shows when the per-check setup cost was skipped.
func searchEffort(res core.Result) string {
	if res.Nodes > 0 {
		s := fmt.Sprintf("explored %d prefixes, %d pruned", res.Nodes, res.Pruned)
		if res.Steals > 0 {
			s += fmt.Sprintf(", %d stolen branches", res.Steals)
		}
		if res.PlanReused {
			s += ", pooled plan"
		}
		if res.RewriteCached {
			s += ", cached rewrite"
		}
		if res.MemDegraded {
			s += ", degraded (mem budget)"
		}
		return s
	}
	return fmt.Sprintf("tried %d linearizations", res.Tried)
}
