package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// panicRet is the sentinel read() return value that makes trialPanicSpec blow
// up, so exactly the trials whose history carries it crash mid-search.
const panicRet = int64(-777)

// trialPanicSpec delegates to the counter specification but panics when asked
// to step a read returning panicRet. It does not implement StepAppender, so
// the panic fires through the generic StepInto path.
type trialPanicSpec struct{ inner spec.Counter }

func (p trialPanicSpec) Name() string        { return "Spec(trial-panic)" }
func (p trialPanicSpec) Init() core.AbsState { return p.inner.Init() }
func (p trialPanicSpec) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	if l.Kind == core.KindQuery {
		if ret, ok := l.Ret.(int64); ok && ret == panicRet {
			panic("trialPanicSpec: injected failure")
		}
	}
	return p.inner.Step(phi, l)
}

// slowSpec delegates to the counter specification with an artificial delay
// per step, so a deadline reliably lands mid-search.
type slowSpec struct{ inner spec.Counter }

func (p slowSpec) Name() string        { return "Spec(slow)" }
func (p slowSpec) Init() core.AbsState { return p.inner.Init() }
func (p slowSpec) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	time.Sleep(200 * time.Microsecond)
	return p.inner.Step(phi, l)
}

// TestBatchPanicIsolation checks the batch-level panic contract (run under
// the race detector in CI): one panicking trial becomes one Unknown outcome
// with the panic reason, every other trial of the batch keeps its verdict,
// and the result is identical whether the batch ran concurrently or
// sequentially.
func TestBatchPanicIsolation(t *testing.T) {
	const trials = 6
	gen := GeneratorFunc(func(trial int) (*core.History, int64, error) {
		if trial == 2 {
			return incsHistory(5, panicRet), int64(trial), nil
		}
		return incsHistory(5, 5), int64(trial), nil
	})
	opts := core.CheckOptions{Exhaustive: true, Parallelism: 1}
	for _, workers := range []int{1, 4} {
		res, err := CheckGeneratedAgainst("panic-batch", trialPanicSpec{}, opts, gen, trials, Options{BatchWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: a panicking trial must not fail the batch: %v", workers, err)
		}
		if res.Histories != trials || res.Linearizable != trials-1 || res.Invalid != 0 {
			t.Fatalf("workers=%d: other trials' verdicts must be unchanged: %+v", workers, res)
		}
		if res.Unknown != 1 || res.UnknownByReason[string(core.ReasonPanic)] != 1 {
			t.Fatalf("workers=%d: the panicking trial must report Unknown/panic: %+v", workers, res)
		}
		if !strings.Contains(res.UnknownExample, "injected failure") {
			t.Fatalf("workers=%d: panic message must surface in the example: %q", workers, res.UnknownExample)
		}
	}
}

// TestBatchPreCancelledContextReturnsImmediately checks the cancellation
// acceptance bound: a batch whose context is already dead dispatches nothing,
// marks every trial Unknown/cancelled, and returns well within 100ms.
func TestBatchPreCancelledContextReturnsImmediately(t *testing.T) {
	const trials = 8
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gen := GeneratorFunc(func(trial int) (*core.History, int64, error) {
		return incsHistory(6, 6), int64(trial), nil
	})
	start := time.Now()
	res, err := CheckGeneratedAgainst("cancelled-batch", spec.Counter{}, core.CheckOptions{Exhaustive: true, Parallelism: 1}, gen, trials, Options{BatchWorkers: 4, Context: ctx})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancellation is a verdict, not an error: %v", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled batch took %v, want <100ms", elapsed)
	}
	if res.Unknown != trials || res.UnknownByReason[string(core.ReasonCancelled)] != trials {
		t.Fatalf("every trial of a cancelled batch must be Unknown/cancelled: %+v", res)
	}
	if res.Linearizable != 0 || res.Invalid != 0 {
		t.Fatalf("cancelled batch must not claim verdicts: %+v", res)
	}
}

// TestBatchDeadlineInterruptsSlowTrials drives a deadline into the middle of
// a slow batch: the run returns promptly after expiry and the truncated
// trials report Unknown with a deadline (or cancellation) reason.
func TestBatchDeadlineInterruptsSlowTrials(t *testing.T) {
	const trials = 4
	gen := GeneratorFunc(func(trial int) (*core.History, int64, error) {
		return incsHistory(8, 99), int64(trial), nil
	})
	start := time.Now()
	res, err := CheckGeneratedAgainst("slow-batch", slowSpec{}, core.CheckOptions{Exhaustive: true, Parallelism: 1}, gen, trials, Options{BatchWorkers: 2, Timeout: 10 * time.Millisecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline expiry is a verdict, not an error: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bounded batch took %v, want prompt return after the 10ms deadline", elapsed)
	}
	if res.Unknown == 0 {
		t.Fatalf("10ms deadline over a deliberately slow search must truncate at least one trial: %+v", res)
	}
	for reason, n := range res.UnknownByReason {
		if reason != string(core.ReasonDeadline) && reason != string(core.ReasonCancelled) {
			t.Fatalf("unexpected unknown reason %q (x%d): %+v", reason, n, res)
		}
	}
	if res.Unknown+res.Linearizable+res.Invalid != res.Histories {
		t.Fatalf("verdict counts must partition the batch: %+v", res)
	}
}
