package harness

import (
	"fmt"
	"strings"
)

// Experiment is the outcome of reproducing one of the paper's figures or
// worked examples.
type Experiment struct {
	// ID is the experiment identifier (for example "fig-5a").
	ID string
	// Title describes the artefact being reproduced.
	Title string
	// Claim states what the paper claims about this artefact.
	Claim string
	// Observed states what this reproduction measured.
	Observed string
	// OK reports whether the observation matches the claim.
	OK bool
	// Output is a human-readable transcript (histories, linearizations,
	// replica states) backing the observation.
	Output string
}

// String renders the experiment as a report section.
func (e Experiment) String() string {
	status := "REPRODUCED"
	if !e.OK {
		status = "MISMATCH"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s — %s\n", e.ID, e.Title, status)
	fmt.Fprintf(&b, "  paper:    %s\n", e.Claim)
	fmt.Fprintf(&b, "  observed: %s\n", e.Observed)
	if e.Output != "" {
		for _, line := range strings.Split(strings.TrimRight(e.Output, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// Experiments runs every figure reproduction under the given options and
// returns them in paper order.
func Experiments(o Options) []Experiment {
	return []Experiment{
		Fig2(o),
		Fig3(o),
		Fig5a(o),
		Fig5b(o),
		Sec33(o),
		Fig8(o),
		Fig9(o),
		Fig10(o),
		Fig13(o),
		Fig14(o),
	}
}

// ExperimentByID runs and returns the experiment with the given identifier.
func ExperimentByID(id string, o Options) (Experiment, error) {
	for _, e := range Experiments(o) {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// ExperimentIDs lists the identifiers in paper order.
func ExperimentIDs() []string {
	return []string{
		"fig-2", "fig-3", "fig-5a", "fig-5b", "sec-3.3",
		"fig-8", "fig-9", "fig-10", "fig-13", "fig-14",
	}
}
