package harness

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/spec"
)

// normalizeBatch strips the fields that legitimately differ between a
// shared-session and a fresh-per-history run (pool geometry and session
// statistics — including the plan-pool, rewrite-cache and adaptive-split
// counters, which exist to differ between the two pipelines); everything
// else must be byte-identical.
func normalizeBatch(hc HistoryCheck) HistoryCheck {
	hc.BatchWorkers = 0
	hc.InternedStates = 0
	hc.MaxInnerParallelism = 0
	hc.PlanReuses = 0
	hc.RewriteHits = 0
	return hc
}

// incsHistory builds k concurrent inc() updates plus one read seeing all of
// them and returning ret: RA-linearizable iff ret == k.
func incsHistory(k int, ret int64) *core.History {
	h := core.NewHistory()
	for i := 1; i <= k; i++ {
		h.MustAdd(&core.Label{ID: uint64(i), Method: "inc", Kind: core.KindUpdate, GenSeq: uint64(i)})
	}
	r := h.MustAdd(&core.Label{ID: uint64(k + 1), Method: "read", Ret: ret, Kind: core.KindQuery, GenSeq: uint64(k + 1)})
	for i := 1; i <= k; i++ {
		h.MustAddVis(uint64(i), r.ID)
	}
	return h
}

// TestBatchSharedSessionDifferential is the cross-history differential: for
// every CRDT descriptor, a concurrent batch over one shared engine session
// must produce exactly the verdicts, strategies and search statistics of the
// sequential fresh-per-history pipeline (inner searches pinned sequential so
// node counts are deterministic on both sides).
func TestBatchSharedSessionDifferential(t *testing.T) {
	for _, d := range registry.All() {
		check := d.CheckOptions()
		check.Parallelism = 1
		cfg := WorkloadConfig{Seed: 9, Ops: 6, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40}
		shared, err := CheckRandomHistoriesWith(d, 6, cfg, Options{BatchWorkers: 4, Check: &check})
		if err != nil {
			t.Fatalf("%s shared: %v", d.Name, err)
		}
		fresh, err := CheckRandomHistoriesWith(d, 6, cfg, Options{BatchWorkers: 1, FreshSessions: true, Check: &check})
		if err != nil {
			t.Fatalf("%s fresh: %v", d.Name, err)
		}
		if !reflect.DeepEqual(normalizeBatch(shared), normalizeBatch(fresh)) {
			t.Errorf("%s: shared-session batch diverged from fresh-per-history:\nshared: %+v\nfresh:  %+v",
				d.Name, normalizeBatch(shared), normalizeBatch(fresh))
		}
		if shared.BatchWorkers != 4 || fresh.BatchWorkers != 1 {
			t.Errorf("%s: pool geometry not surfaced: shared=%d fresh=%d",
				d.Name, shared.BatchWorkers, fresh.BatchWorkers)
		}
	}
}

// TestBatchExhaustiveDifferential forces the exhaustive engine on every trial
// (no constructive strategies), so the shared interner, memo arena and
// searcher pools are actually exercised by each history — and must still
// match fresh state exactly, node count for node count.
func TestBatchExhaustiveDifferential(t *testing.T) {
	for _, name := range []string{"OR-Set", "RGA", "Counter"} {
		d, err := registry.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		check := d.CheckOptions()
		check.Strategies = nil
		check.Parallelism = 1
		check.DebugMemo = true // hash-compaction collisions panic instead of mis-pruning
		cfg := WorkloadConfig{Seed: 21, Ops: 6, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40}
		shared, err := CheckRandomHistoriesWith(d, 5, cfg, Options{BatchWorkers: 3, Check: &check})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := CheckRandomHistoriesWith(d, 5, cfg, Options{BatchWorkers: 1, FreshSessions: true, Check: &check})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeBatch(shared), normalizeBatch(fresh)) {
			t.Errorf("%s: exhaustive shared batch diverged:\nshared: %+v\nfresh:  %+v",
				name, normalizeBatch(shared), normalizeBatch(fresh))
		}
		if shared.Nodes == 0 {
			t.Errorf("%s: exhaustive batch explored no nodes — the engine never ran", name)
		}
		if shared.InternedStates == 0 {
			t.Errorf("%s: shared session interned no states", name)
		}
		if shared.PlanReuses == 0 {
			t.Errorf("%s: shared session reused no pooled plans", name)
		}
		if fresh.PlanReuses != 0 || fresh.RewriteHits != 0 {
			t.Errorf("%s: fresh sessions must not report session amortizations: %+v", name, fresh)
		}
	}
}

// TestBatchPolarityDifferentialAllDescriptors is the cross-history, cross-
// polarity differential for the session plan pool and rewrite cache: for
// every CRDT descriptor, a batch mixing RA-linearizable histories, corrupted
// (refuted) variants, and re-checked duplicates — the rewrite cache's hit
// case — must produce byte-identical verdicts and search statistics through a
// shared session (plan pool + rewrite cache + debug memo) and through fresh
// per-history state.
func TestBatchPolarityDifferentialAllDescriptors(t *testing.T) {
	for _, d := range registry.All() {
		opts := d.CheckOptions()
		opts.Strategies = nil // force the engine so plans and rewrites are exercised
		opts.Parallelism = 1
		opts.DebugMemo = true
		var hs []*core.History
		for trial := 0; trial < 3; trial++ {
			cfg := WorkloadConfig{Seed: int64(500*trial + 31), Ops: 5, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40}
			h, err := RunRandom(d, cfg)
			if err != nil {
				t.Fatalf("%s workload: %v", d.Name, err)
			}
			hs = append(hs, h)
			if bad := corruptQueryRet(h, int64(trial)); bad != nil {
				hs = append(hs, bad)
			}
		}
		// Re-check every history a second time through the same batch: on the
		// shared side the second occurrence must hit the rewrite cache (for
		// descriptors with a real rewriting) and still match fresh state.
		hs = append(hs, hs...)
		shared, err := CheckHistoryBatch(d.Name, d.Spec, opts, hs, Options{BatchWorkers: 3})
		if err != nil {
			t.Fatalf("%s shared: %v", d.Name, err)
		}
		fresh, err := CheckHistoryBatch(d.Name, d.Spec, opts, hs, Options{BatchWorkers: 1, FreshSessions: true})
		if err != nil {
			t.Fatalf("%s fresh: %v", d.Name, err)
		}
		if !reflect.DeepEqual(normalizeBatch(shared), normalizeBatch(fresh)) {
			t.Errorf("%s: mixed-polarity shared batch diverged from fresh:\nshared: %+v\nfresh:  %+v",
				d.Name, normalizeBatch(shared), normalizeBatch(fresh))
		}
		if shared.PlanReuses == 0 {
			t.Errorf("%s: shared session reused no pooled plans", d.Name)
		}
		if d.Rewriting != nil && shared.RewriteHits == 0 {
			t.Errorf("%s: duplicated histories must hit the rewrite cache", d.Name)
		}
		if fresh.RewriteHits != 0 {
			t.Errorf("%s: fresh runs must not hit a rewrite cache", d.Name)
		}
	}
}

// TestHistoryQueryRaceWithBatchRecheck pins the History concurrency
// contract the closure-free representation documents: Vis/Concurrent/
// VisibleTo/SeenBy/VisEdges are read-only and safe to issue from parallel
// search workers while a shared-session batch re-checks the very same
// history objects (rewrite cache, plan pool, inner parallel searches). CI
// runs the suite under -race, which turns any hidden mutation — scratch
// reuse inside a query, lazily grown index rows — into a failure here.
func TestHistoryQueryRaceWithBatchRecheck(t *testing.T) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		t.Fatal(err)
	}
	var hs []*core.History
	for trial := 0; trial < 4; trial++ {
		cfg := WorkloadConfig{Seed: int64(trial*977 + 5), Ops: 6, Replicas: 3, Elems: []string{"a", "b"}, DeliveryProb: 40}
		h, err := RunRandom(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	// Duplicate the batch so the shared session re-checks each history (the
	// rewrite cache's hit case) while the query hammers below keep reading it.
	batch := append(append([]*core.History(nil), hs...), hs...)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				h := hs[(w+i)%len(hs)]
				labels := h.Labels()
				for _, a := range labels {
					for _, b := range labels {
						h.Vis(a.ID, b.ID)
						h.Concurrent(a.ID, b.ID)
					}
					h.VisibleTo(a)
					h.SeenBy(a)
				}
				h.VisEdges(func(from, to uint64) {})
			}
		}(w)
	}

	check := d.CheckOptions()
	check.Strategies = nil // force the engine so parallel workers read the history plans
	check.Parallelism = 2
	check.DebugMemo = true
	out, err := CheckHistoryBatch(d.Name, d.Spec, check, batch, Options{BatchWorkers: 4})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("OR-Set histories must stay RA-linearizable under concurrent queries: %+v", out)
	}
}

// corruptQueryRet clones the history and breaks the return value of one query
// so the clone is (very likely) no longer RA-linearizable; nil when the
// history has no corruptible query.
func corruptQueryRet(h *core.History, seed int64) *core.History {
	rng := rand.New(rand.NewSource(seed))
	c := h.Clone()
	var queries []*core.Label
	for _, l := range c.Labels() {
		if l.IsQuery() && l.Ret != nil {
			queries = append(queries, l)
		}
	}
	if len(queries) == 0 {
		return nil
	}
	q := queries[rng.Intn(len(queries))]
	switch ret := q.Ret.(type) {
	case int64:
		q.Ret = ret + 1000
	case string:
		q.Ret = ret + "⊥corrupt"
	case []string:
		q.Ret = append(append([]string(nil), ret...), "⊥corrupt")
	default:
		return nil
	}
	return c
}

// TestAdaptiveParallelismPolicy pins the adaptive batch/inner split: wide
// batches get the static fair-share split (sequential once the batch covers
// the machine), and the inner parallelism re-widens as the batch drains below
// the worker count.
func TestAdaptiveParallelismPolicy(t *testing.T) {
	cases := []struct {
		gmp, workers int
		pending      int64
		want         int
	}{
		{gmp: 8, workers: 4, pending: 100, want: 2}, // wide batch: fair share
		{gmp: 8, workers: 8, pending: 100, want: 1}, // batch saturates the machine: sequential
		{gmp: 8, workers: 4, pending: 4, want: 2},   // boundary: still every worker busy
		{gmp: 8, workers: 4, pending: 2, want: 4},   // draining: idle cores handed back
		{gmp: 8, workers: 4, pending: 1, want: 8},   // last trial: the whole machine
		{gmp: 8, workers: 4, pending: 0, want: 8},   // defensive clamp
		{gmp: 1, workers: 4, pending: 1, want: 1},   // single core: nothing to widen
		{gmp: 4, workers: 3, pending: 2, want: 2},   // integer share rounds down
	}
	for _, c := range cases {
		if got := adaptiveParallelism(c.gmp, c.workers, c.pending, 0, 0); got != c.want {
			t.Errorf("adaptiveParallelism(gmp=%d, workers=%d, pending=%d) = %d, want %d",
				c.gmp, c.workers, c.pending, got, c.want)
		}
	}
}

// TestAdaptiveParallelismWeighted pins the ops²-weighted refinement: a trial
// carrying most of the in-flight work widens past its headcount share even
// while the batch is wide, equal weights reproduce the headcount split, and
// the grant never exceeds the machine.
func TestAdaptiveParallelismWeighted(t *testing.T) {
	cases := []struct {
		gmp, workers       int
		pending            int64
		weight, liveWeight int64
		want               int
	}{
		// Four equal trials in flight: weight share = headcount share.
		{gmp: 8, workers: 4, pending: 100, weight: 25, liveWeight: 100, want: 2},
		// One heavy trial among small ones: 100/115 of the work ⇒ ~7 cores
		// even though the headcount share is 2.
		{gmp: 8, workers: 4, pending: 100, weight: 100, liveWeight: 115, want: 7},
		// The heavy trial is everything in flight: the whole machine.
		{gmp: 8, workers: 4, pending: 100, weight: 100, liveWeight: 100, want: 8},
		// Light trial among heavies: weighting never shrinks below fair share.
		{gmp: 8, workers: 4, pending: 100, weight: 1, liveWeight: 1000, want: 2},
		// Zero weight (unknown cost) falls back to the headcount split.
		{gmp: 8, workers: 4, pending: 2, weight: 0, liveWeight: 50, want: 4},
		// Stale liveWeight below this trial's own weight is ignored.
		{gmp: 8, workers: 4, pending: 100, weight: 64, liveWeight: 10, want: 2},
	}
	for _, c := range cases {
		if got := adaptiveParallelism(c.gmp, c.workers, c.pending, c.weight, c.liveWeight); got != c.want {
			t.Errorf("adaptiveParallelism(gmp=%d, workers=%d, pending=%d, weight=%d, live=%d) = %d, want %d",
				c.gmp, c.workers, c.pending, c.weight, c.liveWeight, got, c.want)
		}
	}
}

// TestBatchBothPolarities runs a pre-built batch mixing RA-linearizable and
// refuted histories through CheckHistoryBatch: shared and fresh runs must
// agree verdict for verdict, and the failure example must be the first
// refuted trial by index regardless of completion order.
func TestBatchBothPolarities(t *testing.T) {
	var hs []*core.History
	for k := 3; k <= 6; k++ {
		hs = append(hs, incsHistory(k, int64(k)))   // linearizable
		hs = append(hs, incsHistory(k, int64(k)+7)) // refuted
	}
	opts := core.CheckOptions{Exhaustive: true, Parallelism: 1}
	shared, err := CheckHistoryBatch("counter-mix", spec.Counter{}, opts, hs, Options{BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := CheckHistoryBatch("counter-mix", spec.Counter{}, opts, hs, Options{BatchWorkers: 1, FreshSessions: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeBatch(shared), normalizeBatch(fresh)) {
		t.Fatalf("mixed-polarity batch diverged:\nshared: %+v\nfresh:  %+v",
			normalizeBatch(shared), normalizeBatch(fresh))
	}
	if shared.Linearizable != 4 || shared.Histories != 8 {
		t.Fatalf("expected 4/8 linearizable: %+v", shared)
	}
	// Trial 1 (the k=3, read⇒10 history) is the first refuted index.
	if !strings.HasPrefix(shared.FailureExample, "seed 1:") {
		t.Fatalf("failure example must be the first refuted trial by index: %q", shared.FailureExample)
	}
}

// TestBatchPoolRace saturates the batch pool (8 workers, inner parallelism 2,
// one shared session) so `go test -race` — the CI configuration — exercises
// the concurrent session pools, interner and memo stripes end to end.
func TestBatchPoolRace(t *testing.T) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		t.Fatal(err)
	}
	check := d.CheckOptions()
	check.Strategies = nil // force the engine on every trial
	check.Parallelism = 2  // inner parallel search on top of the batch pool
	check.DebugMemo = true // exercise the debug tuple store under -race too
	cfg := WorkloadConfig{Seed: 2, Ops: 6, Replicas: 3, Elems: []string{"a", "b"}, DeliveryProb: 40}
	out, err := CheckRandomHistoriesWith(d, 16, cfg, Options{BatchWorkers: 8, Check: &check})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("OR-Set histories must all be RA-linearizable: %+v", out)
	}
	if out.BatchWorkers != 8 {
		t.Fatalf("expected 8 batch workers: %+v", out)
	}
}
