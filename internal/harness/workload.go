// Package harness drives the experiments of the reproduction: random
// workloads over the CRDT runtimes, the Figure 12 verification table, the
// worked figures of the paper (2, 3, 5, 8, 9, 10, 13, 14 and the Section 3.3
// client-reasoning exercise), and an exhaustive schedule explorer for small
// programs. The cmd/ binaries and the benchmark suite are thin wrappers over
// this package.
package harness

import (
	"fmt"
	"math/rand"

	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
)

// WorkloadConfig describes a random workload over one CRDT object.
type WorkloadConfig struct {
	// Seed seeds the workload generator.
	Seed int64
	// Ops is the number of operations issued.
	Ops int
	// Replicas is the number of replicas.
	Replicas int
	// Elems is the element alphabet for set- and register-like types.
	Elems []string
	// DeliveryProb is the per-step probability (in percent) of performing a
	// propagation step between operations.
	DeliveryProb int
	// FinalDelivery delivers everything at the end of the workload.
	FinalDelivery bool
}

// DefaultWorkload returns a small workload suitable for checker experiments:
// exhaustive linearization search stays cheap below roughly a dozen
// operations.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Seed:          1,
		Ops:           8,
		Replicas:      3,
		Elems:         []string{"a", "b", "c"},
		DeliveryProb:  40,
		FinalDelivery: false,
	}
}

func (c *WorkloadConfig) fill() {
	if c.Ops <= 0 {
		c.Ops = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if len(c.Elems) == 0 {
		c.Elems = []string{"a", "b", "c"}
	}
	if c.DeliveryProb < 0 {
		c.DeliveryProb = 0
	}
	if c.DeliveryProb > 100 {
		c.DeliveryProb = 100
	}
}

// RunRandom executes one random workload against the descriptor's runtime
// (operation-based or state-based) and returns the resulting history.
func RunRandom(d crdt.Descriptor, cfg WorkloadConfig) (*core.History, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if d.OpType != nil {
		sys := d.NewOpSystem(runtime.Config{Replicas: cfg.Replicas})
		for i := 0; i < cfg.Ops; i++ {
			if _, err := d.RandomOp(rng, sys, cfg.Elems); err != nil {
				return nil, fmt.Errorf("%s workload: %w", d.Name, err)
			}
			if rng.Intn(100) < cfg.DeliveryProb {
				sys.DeliverRandom(rng)
			}
		}
		if cfg.FinalDelivery {
			if err := sys.DeliverAll(); err != nil {
				return nil, err
			}
		}
		return sys.History(), nil
	}
	sys := d.NewSBSystem(runtime.Config{Replicas: cfg.Replicas})
	for i := 0; i < cfg.Ops; i++ {
		if _, err := d.RandomOp(rng, sys, cfg.Elems); err != nil {
			return nil, fmt.Errorf("%s workload: %w", d.Name, err)
		}
		if rng.Intn(100) < cfg.DeliveryProb {
			sys.ExchangeRandom(rng)
		}
	}
	if cfg.FinalDelivery {
		if err := sys.DeliverAll(); err != nil {
			return nil, err
		}
	}
	return sys.History(), nil
}

// HistoryCheck summarises checking a batch of random histories of one CRDT.
type HistoryCheck struct {
	// CRDT is the data type name.
	CRDT string
	// Histories is the number of histories generated and checked.
	Histories int
	// Operations is the total number of operations across all histories.
	Operations int
	// Linearizable counts the histories found RA-linearizable.
	Linearizable int
	// ByStrategy counts witnesses per constructive strategy; histories
	// resolved only by the exhaustive search are counted under "exhaustive".
	ByStrategy map[string]int
	// Tried is the total number of candidate sequences examined.
	Tried int
	// Nodes, Pruned, MemoHits and Steals aggregate the pruned engine's
	// search statistics across all histories (zero under the legacy engine);
	// Shards is the stripe count of its shared memo table (zero when
	// memoization never ran).
	Nodes    int
	Pruned   int
	MemoHits int
	Steals   int
	Shards   int
	// FailureExample describes the first non-linearizable history, if any.
	FailureExample string
}

// OK reports whether every history was RA-linearizable.
func (h HistoryCheck) OK() bool { return h.Linearizable == h.Histories }

// CheckRandomHistories generates trials random histories of the CRDT and
// checks each for RA-linearizability with the descriptor's designated
// strategy (falling back to the other strategy and a bounded exhaustive
// search).
func CheckRandomHistories(d crdt.Descriptor, trials int, cfg WorkloadConfig) (HistoryCheck, error) {
	cfg.fill()
	out := HistoryCheck{CRDT: d.Name, ByStrategy: map[string]int{}}
	for i := 0; i < trials; i++ {
		trialCfg := cfg
		trialCfg.Seed = cfg.Seed + int64(i)*7919
		h, err := RunRandom(d, trialCfg)
		if err != nil {
			return out, err
		}
		out.Histories++
		out.Operations += h.Len()
		res := core.CheckRA(h, d.Spec, checkTuning(d.CheckOptions()))
		out.Tried += res.Tried
		out.Nodes += res.Nodes
		out.Pruned += res.Pruned
		out.MemoHits += res.MemoHits
		out.Steals += res.Steals
		if res.Shards > out.Shards {
			out.Shards = res.Shards
		}
		if !res.OK {
			if out.FailureExample == "" {
				out.FailureExample = fmt.Sprintf("seed %d: %v", trialCfg.Seed, res.LastErr)
			}
			continue
		}
		out.Linearizable++
		if res.Strategy != nil {
			out.ByStrategy[res.Strategy.String()]++
		} else {
			out.ByStrategy["exhaustive"]++
		}
	}
	return out, nil
}
