// Package harness drives the experiments of the reproduction: random
// workloads over the CRDT runtimes, the Figure 12 verification table, the
// worked figures of the paper (2, 3, 5, 8, 9, 10, 13, 14 and the Section 3.3
// client-reasoning exercise), and an exhaustive schedule explorer for small
// programs. The cmd/ binaries and the benchmark suite are thin wrappers over
// this package.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	gruntime "runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/search"
)

// WorkloadConfig describes a random workload over one CRDT object.
type WorkloadConfig struct {
	// Seed seeds the workload generator.
	Seed int64
	// Ops is the number of operations issued.
	Ops int
	// Replicas is the number of replicas.
	Replicas int
	// Elems is the element alphabet for set- and register-like types.
	Elems []string
	// DeliveryProb is the per-step probability (in percent) of performing a
	// propagation step between operations.
	DeliveryProb int
	// FinalDelivery delivers everything at the end of the workload.
	FinalDelivery bool
}

// DefaultWorkload returns a small workload suitable for checker experiments:
// exhaustive linearization search stays cheap below roughly a dozen
// operations.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Seed:          1,
		Ops:           8,
		Replicas:      3,
		Elems:         []string{"a", "b", "c"},
		DeliveryProb:  40,
		FinalDelivery: false,
	}
}

func (c *WorkloadConfig) fill() {
	if c.Ops <= 0 {
		c.Ops = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if len(c.Elems) == 0 {
		c.Elems = []string{"a", "b", "c"}
	}
	if c.DeliveryProb < 0 {
		c.DeliveryProb = 0
	}
	if c.DeliveryProb > 100 {
		c.DeliveryProb = 100
	}
}

// RunRandom executes one random workload against the descriptor's runtime
// (operation-based or state-based) and returns the resulting history.
func RunRandom(d crdt.Descriptor, cfg WorkloadConfig) (*core.History, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if d.OpType != nil {
		sys := d.NewOpSystem(runtime.Config{Replicas: cfg.Replicas})
		for i := 0; i < cfg.Ops; i++ {
			if _, err := d.RandomOp(rng, sys, cfg.Elems); err != nil {
				return nil, fmt.Errorf("%s workload: %w", d.Name, err)
			}
			if rng.Intn(100) < cfg.DeliveryProb {
				sys.DeliverRandom(rng)
			}
		}
		if cfg.FinalDelivery {
			if err := sys.DeliverAll(); err != nil {
				return nil, err
			}
		}
		return sys.History(), nil
	}
	sys := d.NewSBSystem(runtime.Config{Replicas: cfg.Replicas})
	for i := 0; i < cfg.Ops; i++ {
		if _, err := d.RandomOp(rng, sys, cfg.Elems); err != nil {
			return nil, fmt.Errorf("%s workload: %w", d.Name, err)
		}
		if rng.Intn(100) < cfg.DeliveryProb {
			sys.ExchangeRandom(rng)
		}
	}
	if cfg.FinalDelivery {
		if err := sys.DeliverAll(); err != nil {
			return nil, err
		}
	}
	return sys.History(), nil
}

// HistoryCheck summarises checking a batch of random histories of one CRDT.
type HistoryCheck struct {
	// CRDT is the data type name.
	CRDT string
	// Histories is the number of histories generated and checked.
	Histories int
	// Operations is the total number of operations across all histories.
	Operations int
	// Linearizable counts the histories with VerdictValid (a witness
	// RA-linearization was found).
	Linearizable int
	// Invalid counts the histories with VerdictInvalid (search space
	// exhausted, no witness) — definitive refutations, as opposed to the
	// Unknown trials below.
	Invalid int
	// Unknown counts the trials that reached no decision: truncated by a
	// deadline, a node or memory budget, cancellation, or a recovered panic —
	// including trials the batch never dispatched because it was cancelled
	// first. Unknown trials are never folded into Linearizable or Invalid.
	Unknown int
	// UnknownByReason breaks Unknown down by core.IncompleteReason string.
	UnknownByReason map[string]int
	// UnknownExample describes the first Unknown trial (by trial index).
	UnknownExample string
	// Degraded counts the trials whose check ran (partly) memo-less because
	// the session memory budget tripped; their verdicts are still sound.
	Degraded int
	// ByStrategy counts witnesses per constructive strategy; histories
	// resolved only by the exhaustive search are counted under "exhaustive".
	ByStrategy map[string]int
	// Tried is the total number of candidate sequences examined.
	Tried int
	// Nodes, Pruned, MemoHits and Steals aggregate the pruned engine's
	// search statistics across all histories (zero under the legacy engine);
	// Shards is the stripe count of its shared memo table (zero when
	// memoization never ran).
	Nodes    int
	Pruned   int
	MemoHits int
	Steals   int
	Shards   int
	// BatchWorkers is the number of goroutines the batch pool checked trials
	// across.
	BatchWorkers int
	// MaxInnerParallelism is the widest inner search parallelism any trial of
	// the batch ran with. Under the adaptive batch/inner split this grows as
	// the batch drains (a wide batch starts its searches sequential and the
	// tail re-widens them over the idling cores); for pinned options it is
	// just the pinned value, and 0 means unbounded (GOMAXPROCS).
	MaxInnerParallelism int
	// InternedStates is the number of distinct abstract states interned by
	// the batch's shared engine session — the state vocabulary reused across
	// histories instead of being rebuilt per check. Zero when sessions were
	// fresh per history or the exhaustive engine never ran.
	InternedStates int
	// PlanReuses counts the trials whose prepared history plan (the
	// preds/succs/affected/order index arrays) came from the session's plan
	// pool instead of being allocated. At most one trial per concurrently
	// running worker misses once the pool is warm.
	PlanReuses int
	// RewriteHits counts the trials whose γ-rewriting was served from the
	// session's rewrite cache — nonzero only when the same history object is
	// checked more than once through one session.
	RewriteHits int
	// FailureExample describes the first definitively non-linearizable
	// history (by trial index), if any.
	FailureExample string
	// Prefixes, Replayed, ExtendSearches and Rebuilds are the incremental
	// monitor's counters (MonitorGenerated): prefixes checked op-by-op,
	// verdicts produced by replaying the previous witness as a certificate,
	// extended fallback searches over the grown plan, and prefixes whose
	// extension preconditions failed (checked by a plain warm pass). All zero
	// for the batch entry points.
	Prefixes       int
	Replayed       int
	ExtendSearches int
	Rebuilds       int
}

// OK reports whether every history was RA-linearizable. Unknown trials count
// against OK — an undecided batch must not read as a clean one.
func (h HistoryCheck) OK() bool { return h.Linearizable == h.Histories }

// HistoryGenerator produces the histories a batch checks: trial i of the
// batch calls Generate(i). Implementations must be safe for concurrent calls
// with distinct trial indices (the batch pool fans trials across workers) and
// deterministic per trial index, so batch results do not depend on worker
// count. The returned seed is only reporting metadata (it labels the trial's
// FailureExample); the generator derives it from the trial index however it
// likes.
type HistoryGenerator interface {
	Generate(trial int) (h *core.History, seed int64, err error)
}

// GeneratorFunc adapts a function to the HistoryGenerator interface.
type GeneratorFunc func(trial int) (*core.History, int64, error)

// Generate calls the function.
func (f GeneratorFunc) Generate(trial int) (*core.History, int64, error) { return f(trial) }

// RandomGenerator is the uniform random workload generator behind
// CheckRandomHistories: trial i runs RunRandom with seed Cfg.Seed+i·7919.
type RandomGenerator struct {
	Desc crdt.Descriptor
	Cfg  WorkloadConfig
}

// Generate runs one random workload.
func (g RandomGenerator) Generate(trial int) (*core.History, int64, error) {
	cfg := g.Cfg
	cfg.fill()
	cfg.Seed = g.Cfg.Seed + int64(trial)*7919
	h, err := RunRandom(g.Desc, cfg)
	return h, cfg.Seed, err
}

// CheckGenerated checks trials histories drawn from the generator against the
// descriptor's specification, using the descriptor's designated checker
// options (overridable via o.Check). Trials are fanned across a bounded
// worker pool sharing one engine session, and the aggregation is folded in
// trial order, so the result is deterministic regardless of worker count or
// completion order (given deterministic per-check options).
func CheckGenerated(d crdt.Descriptor, gen HistoryGenerator, trials int, o Options) (HistoryCheck, error) {
	opts := d.CheckOptions()
	if o.Check != nil {
		opts = *o.Check
	}
	return runBatch(d.Name, d.Spec, opts, trials, gen.Generate, o)
}

// CheckGeneratedAgainst is CheckGenerated against an arbitrary specification
// and explicit checker options (o.Check is ignored) — the entry point for
// checking generated histories against a different specification than the
// generating descriptor's, such as the scenario library's naive-specification
// refutation probes.
func CheckGeneratedAgainst(name string, sp core.Spec, opts core.CheckOptions, gen HistoryGenerator, trials int, o Options) (HistoryCheck, error) {
	return runBatch(name, sp, opts, trials, gen.Generate, o)
}

// CheckRandomHistories generates trials random histories of the CRDT and
// checks each for RA-linearizability with the descriptor's designated
// strategy (falling back to the other strategy and a bounded exhaustive
// search), under the default Options.
func CheckRandomHistories(d crdt.Descriptor, trials int, cfg WorkloadConfig) (HistoryCheck, error) {
	return CheckRandomHistoriesWith(d, trials, cfg, Options{})
}

// CheckRandomHistoriesWith is CheckRandomHistories with explicit options: a
// thin wrapper plugging RandomGenerator into CheckGenerated. Trial i always
// uses seed cfg.Seed+i·7919.
func CheckRandomHistoriesWith(d crdt.Descriptor, trials int, cfg WorkloadConfig, o Options) (HistoryCheck, error) {
	cfg.fill()
	return CheckGenerated(d, RandomGenerator{Desc: d, Cfg: cfg}, trials, o)
}

// CheckHistoryBatch checks a batch of pre-built histories against one
// specification through the same shared-session worker pool as
// CheckRandomHistories. The explicit opts parameter is the per-trial checker
// configuration (o.Check is ignored here). The failure example of trial i is
// reported under "seed i" (the trial index).
func CheckHistoryBatch(name string, sp core.Spec, opts core.CheckOptions, hs []*core.History, o Options) (HistoryCheck, error) {
	gen := func(i int) (*core.History, int64, error) { return hs[i], int64(i), nil }
	return runBatch(name, sp, opts, len(hs), gen, o)
}

// adaptiveParallelism is the policy of the adaptive batch/inner split: the
// inner search parallelism granted to a trial starting while pending trials
// (including itself) remain unfinished, on a machine with gmp cores shared by
// workers batch goroutines. While the batch is wide (pending ≥ workers) every
// busy worker gets its fair core share — gmp/workers, the old static split,
// sequential on machines the batch already saturates. As the batch drains
// below the worker count the idle workers' cores are handed back, so the last
// heavy searches of a batch fan out instead of serializing on one core each.
//
// The split is additionally weighted by history size: weight is this trial's
// cost proxy (ops² — linearization search cost grows superlinearly in the
// operation count) and liveWeight the total over the in-flight trials. A
// trial carrying more than its headcount share of the live work gets cores
// proportional to its weight share instead, so heavy-tail histories widen
// while the batch is still wide — which matters once a deadline can expire
// mid-batch: the heavy trial is the one that would otherwise still be running
// sequentially when the clock runs out. Zero weights (pinned or unknown)
// fall back to the pure headcount split.
func adaptiveParallelism(gmp, workers int, pending, weight, liveWeight int64) int {
	active := int64(workers)
	if pending < active {
		active = pending
	}
	if active < 1 {
		active = 1
	}
	par := gmp / int(active)
	if weight > 0 && liveWeight >= weight {
		if wpar := int((int64(gmp)*weight + liveWeight - 1) / liveWeight); wpar > par {
			par = wpar
		}
	}
	if par > gmp {
		par = gmp
	}
	if par < 1 {
		par = 1
	}
	return par
}

// runBatch is the batch pipeline: a bounded worker pool generates and checks
// trials over one shared engine session, and the per-trial results are folded
// in trial order so stats, ByStrategy and the first FailureExample do not
// depend on completion order. The pipeline is fail-safe: a deadline or
// cancellation stops dispatch and interrupts running checks (skipped trials
// are reported Unknown, not dropped), and a panicking trial — a crashing
// spec, generator, or engine bug — is recovered into one Unknown outcome
// while every other trial's verdict is unaffected.
func runBatch(name string, sp core.Spec, opts core.CheckOptions, trials int, gen func(int) (*core.History, int64, error), o Options) (HistoryCheck, error) {
	workers := o.BatchWorkers
	if workers <= 0 {
		workers = gruntime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	opts = o.Tune(opts)
	// Wire the batch deadline/cancellation: o.Timeout derives a deadline from
	// o.Context (or the background context), and the resulting context is
	// threaded into every check that does not pin its own, so one expiry
	// interrupts the dispatch loop and all in-flight searches alike.
	ctx := o.Context
	if o.Timeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, o.Timeout)
		defer cancel()
	}
	if opts.Context == nil {
		opts.Context = ctx
	}
	ctxDead := func() bool { return ctx != nil && ctx.Err() != nil }
	// Adaptive batch/inner split: divide the cores between the batch pool
	// and each check's inner search rather than oversubscribing, and re-widen
	// the inner searches as the batch drains. A wide batch (pending trials ≥
	// workers) runs each search sequentially, exactly like the old static
	// GOMAXPROCS/workers split; once fewer trials remain than workers, the
	// idling cores are handed back to the remaining searches (say the last 2
	// heavy histories on 16 cores each get 8 workers), so the batch tail no
	// longer serializes on one core per trial. Callers pinning Parallelism
	// (or Workers ≤ 1) keep full control — and fully deterministic per-trial
	// search statistics, which the adaptive tail trades away (parallel node
	// counts track sequential but are not bit-stable).
	adaptiveInner := workers > 1 && opts.Parallelism == 0
	gmp := gruntime.GOMAXPROCS(0)
	var pending atomic.Int64
	pending.Store(int64(trials))
	// liveWeight sums the ops² cost proxy of the in-flight trials, feeding
	// the weighted adaptive split.
	var liveWeight atomic.Int64
	var sess *search.Session
	if !o.FreshSessions {
		sess = search.NewSessionWithBudget(o.Budget)
	}

	// trialResult keeps only the scalar fields the fold consumes: holding
	// full core.Results would pin every generated history (Result.Rewritten)
	// and witness until the batch finishes, where the sequential loop let
	// each trial's history become garbage immediately.
	type trialResult struct {
		seed       int64
		ops        int
		err        error
		verdict    core.Verdict
		incReason  string
		incDetail  string
		degraded   bool
		strategy   *core.Strategy
		lastErr    error
		tried      int
		nodes      int
		pruned     int
		memoHits   int
		steals     int
		shards     int
		innerPar   int
		planReuse  bool
		rewriteHit bool
	}
	results := make([]trialResult, trials)
	// failed stops the dispatch of further trials once any trial errors, so
	// a failing batch does not burn through its remaining histories first.
	// Only dispatch stops — already-dispatched trials drain normally, and
	// indices are dispatched in order, so every trial below the first
	// erroring index has run and the fold below still reports the
	// lowest-index error deterministically.
	var failed atomic.Bool
	runTrial := func(i int) {
		defer pending.Add(-1)
		// Panic isolation: a crashing spec step, generator, or engine bug in
		// one trial becomes that trial's Unknown outcome (stack captured in
		// the detail) instead of killing the batch; every other trial's
		// verdict is computed exactly as if this trial had merely timed out.
		defer func() {
			if r := recover(); r != nil {
				tr := &results[i]
				tr.verdict = core.VerdictUnknown
				tr.incReason = string(core.ReasonPanic)
				tr.incDetail = fmt.Sprintf("trial panicked: %v\n%s", r, debug.Stack())
			}
		}()
		h, seed, err := gen(i)
		results[i].seed = seed
		if err != nil {
			results[i].err = err
			failed.Store(true)
			return
		}
		ops := h.Len()
		results[i].ops = ops
		w := int64(ops) * int64(ops)
		if w < 1 {
			w = 1
		}
		liveWeight.Add(w)
		defer liveWeight.Add(-w)
		trialOpts := opts
		if adaptiveInner {
			trialOpts.Parallelism = adaptiveParallelism(gmp, workers, pending.Load(), w, liveWeight.Load())
		}
		results[i].innerPar = trialOpts.Parallelism
		res := core.CheckRAWith(h, sp, trialOpts, sess)
		tr := &results[i]
		tr.verdict = res.Verdict
		if res.Incomplete != nil {
			tr.incReason = string(res.Incomplete.Reason)
			tr.incDetail = res.Incomplete.String()
		}
		tr.degraded = res.MemDegraded
		tr.strategy = res.Strategy
		tr.lastErr = res.LastErr
		tr.tried = res.Tried
		tr.nodes = res.Nodes
		tr.pruned = res.Pruned
		tr.memoHits = res.MemoHits
		tr.steals = res.Steals
		tr.shards = res.Shards
		tr.planReuse = res.PlanReused
		tr.rewriteHit = res.RewriteCached
	}
	dispatched := 0
	if workers <= 1 {
		for i := 0; i < trials && !failed.Load() && !ctxDead(); i++ {
			runTrial(i)
			dispatched = i + 1
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runTrial(i)
				}
			}()
		}
		for i := 0; i < trials && !failed.Load() && !ctxDead(); i++ {
			idx <- i
			dispatched = i + 1
		}
		close(idx)
		wg.Wait()
	}
	// Trials the dead context kept from dispatching are recorded as Unknown
	// with the context's reason — skipped, never silently dropped.
	if dispatched < trials {
		skipInc := core.ContextIncomplete(ctx)
		for i := dispatched; i < trials; i++ {
			tr := &results[i]
			if tr.err != nil || tr.verdict != core.VerdictUnknown || tr.incReason != "" {
				continue
			}
			if skipInc != nil {
				tr.incReason = string(skipInc.Reason)
				tr.incDetail = "trial not dispatched: " + skipInc.Detail
			} else {
				tr.incReason = string(core.ReasonCancelled)
				tr.incDetail = "trial not dispatched: batch stopped early"
			}
		}
	}

	out := HistoryCheck{
		CRDT:            name,
		ByStrategy:      map[string]int{},
		UnknownByReason: map[string]int{},
		BatchWorkers:    workers,
	}
	for i := range results {
		tr := &results[i]
		if tr.err != nil {
			out.InternedStates = sess.InternedStates()
			return out, tr.err
		}
		out.Histories++
		out.Operations += tr.ops
		out.Tried += tr.tried
		out.Nodes += tr.nodes
		out.Pruned += tr.pruned
		out.MemoHits += tr.memoHits
		out.Steals += tr.steals
		if tr.shards > out.Shards {
			out.Shards = tr.shards
		}
		if tr.innerPar > out.MaxInnerParallelism {
			out.MaxInnerParallelism = tr.innerPar
		}
		if tr.planReuse {
			out.PlanReuses++
		}
		if tr.rewriteHit {
			out.RewriteHits++
		}
		if tr.degraded {
			out.Degraded++
		}
		switch tr.verdict {
		case core.VerdictValid:
			out.Linearizable++
			if tr.strategy != nil {
				out.ByStrategy[tr.strategy.String()]++
			} else {
				out.ByStrategy["exhaustive"]++
			}
		case core.VerdictInvalid:
			out.Invalid++
			if out.FailureExample == "" {
				out.FailureExample = fmt.Sprintf("seed %d: %v", tr.seed, tr.lastErr)
			}
		default:
			out.Unknown++
			out.UnknownByReason[tr.incReason]++
			if out.UnknownExample == "" {
				out.UnknownExample = fmt.Sprintf("trial %d (seed %d): %s", i, tr.seed, tr.incDetail)
			}
		}
	}
	out.InternedStates = sess.InternedStates()
	return out, nil
}
