package harness

import (
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/search"
)

// TestGuidedMatchesRankOrderAllDescriptors is the differential gate on guided
// branch ordering (core.GuidanceGuided), across every CRDT descriptor and
// both polarities: randomized histories plus their corrupted (refuted)
// variants are checked with rank order and with guided ordering, and the
// verdicts — OK, Complete, Verdict — must be byte-identical. Only Nodes and
// wall-clock may differ; on refutations the guided search must not explore
// more nodes than rank order (query commit only ever shrinks the refutation
// DAG). DebugMemo turns any hash-compaction collision into a panic instead of
// a silent mis-prune, so the gate is as strict as the engine can make it.
func TestGuidedMatchesRankOrderAllDescriptors(t *testing.T) {
	for _, d := range registry.All() {
		opts := d.CheckOptions()
		opts.Strategies = nil // force the search on both sides
		opts.Exhaustive = true
		opts.Parallelism = 1
		opts.DebugMemo = true
		var hs []*core.History
		for trial := 0; trial < 4; trial++ {
			cfg := WorkloadConfig{Seed: int64(700*trial + 17), Ops: 6, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40}
			h, err := RunRandom(d, cfg)
			if err != nil {
				t.Fatalf("%s workload: %v", d.Name, err)
			}
			hs = append(hs, h)
			if bad := corruptQueryRet(h, int64(trial)); bad != nil {
				hs = append(hs, bad)
			}
		}
		rankSess, guidedSess := search.NewSession(), search.NewSession()
		for k, h := range hs {
			rankOpts := opts
			rankOpts.Guidance = core.GuidanceRankOrder
			rank := core.CheckRAWith(h, d.Spec, rankOpts, rankSess)
			guidedOpts := opts
			guidedOpts.Guidance = core.GuidanceGuided
			guided := core.CheckRAWith(h, d.Spec, guidedOpts, guidedSess)
			if rank.OK != guided.OK || rank.Complete != guided.Complete || rank.Verdict != guided.Verdict {
				t.Errorf("%s history %d: guided verdict diverged from rank order:\nrank:   OK=%v Complete=%v Verdict=%v\nguided: OK=%v Complete=%v Verdict=%v",
					d.Name, k, rank.OK, rank.Complete, rank.Verdict, guided.OK, guided.Complete, guided.Verdict)
			}
			if rank.Complete && !rank.OK && guided.Nodes > rank.Nodes {
				t.Errorf("%s history %d: guided refutation explored more nodes than rank order: %d > %d",
					d.Name, k, guided.Nodes, rank.Nodes)
			}
		}
	}
}

// TestGuidanceThreadsThroughBatch checks the option plumbing end to end: a
// batch run with Options.Guidance = GuidanceGuided must report the same
// verdict tallies as a rank-order batch over the same workload (guidance is
// verdict-preserving through the whole harness pipeline too).
func TestGuidanceThreadsThroughBatch(t *testing.T) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		t.Fatal(err)
	}
	check := d.CheckOptions()
	check.Strategies = nil
	check.Parallelism = 1
	cfg := WorkloadConfig{Seed: 5, Ops: 6, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40}
	rank, err := CheckRandomHistoriesWith(d, 6, cfg, Options{BatchWorkers: 1, Check: &check})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := CheckRandomHistoriesWith(d, 6, cfg, Options{BatchWorkers: 1, Guidance: core.GuidanceGuided, Check: &check})
	if err != nil {
		t.Fatal(err)
	}
	if rank.Linearizable != guided.Linearizable || rank.Invalid != guided.Invalid || rank.Unknown != guided.Unknown {
		t.Errorf("guided batch verdicts diverged: rank %+v vs guided %+v", rank, guided)
	}
}
