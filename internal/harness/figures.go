package harness

import (
	"fmt"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/compose"
	"ralin/internal/core"
	"ralin/internal/crdt/orset"
	"ralin/internal/crdt/rga"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// Fig2 reproduces Figure 2: RGA conflict resolution. Starting from the list
// a·b·c, two replicas concurrently insert d and e after c (the insertion with
// the larger timestamp is ordered first), the replicas converge, and removing
// d hides it from subsequent reads.
func Fig2(o Options) Experiment {
	d := rga.Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	var out strings.Builder

	sys.MustInvoke(0, "addAfter", rga.Root, "a")
	sys.MustInvoke(0, "addAfter", "a", "c")
	sys.MustInvoke(0, "addAfter", "a", "b") // tb > tc: b is ordered before c
	must(sys.DeliverAll())
	initial := sys.MustInvoke(1, "read").Ret.([]string)
	fmt.Fprintf(&out, "initial list:            %s\n", strings.Join(initial, "·"))

	sys.MustInvoke(1, "addAfter", "c", "e") // te
	sys.MustInvoke(0, "addAfter", "c", "d") // td > te: d is ordered before e
	r0 := sys.MustInvoke(0, "read").Ret.([]string)
	r1 := sys.MustInvoke(1, "read").Ret.([]string)
	fmt.Fprintf(&out, "before propagation:      r1=%s  r2=%s\n", strings.Join(r0, "·"), strings.Join(r1, "·"))
	must(sys.DeliverAll())
	merged0 := sys.MustInvoke(0, "read").Ret.([]string)
	merged1 := sys.MustInvoke(1, "read").Ret.([]string)
	fmt.Fprintf(&out, "after propagation:       r1=%s  r2=%s\n", strings.Join(merged0, "·"), strings.Join(merged1, "·"))

	sys.MustInvoke(1, "remove", "d")
	must(sys.DeliverAll())
	final := sys.MustInvoke(0, "read").Ret.([]string)
	fmt.Fprintf(&out, "after remove(d):         %s\n", strings.Join(final, "·"))

	converged := core.ValueEqual(merged0, merged1)
	ok := converged &&
		core.ValueEqual(initial, []string{"a", "b", "c"}) &&
		core.ValueEqual(merged0, []string{"a", "b", "c", "d", "e"}) &&
		core.ValueEqual(final, []string{"a", "b", "c", "e"}) &&
		sys.Converged()
	return Experiment{
		ID:       "fig-2",
		Title:    "Figure 2: RGA conflict resolution",
		Claim:    "concurrent addAfter(c,d) and addAfter(c,e) converge to a·b·c·d·e; remove(d) yields a·b·c·e",
		Observed: fmt.Sprintf("converged to %s, after remove(d) %s", strings.Join(merged0, "·"), strings.Join(final, "·")),
		OK:       ok,
		Output:   out.String(),
	}
}

// Fig3 reproduces Figure 3: the history (visibility DAG) of the Figure 2
// execution, checked RA-linearizable with a timestamp-order witness.
func Fig3(o Options) Experiment {
	d := rga.Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addAfter", rga.Root, "a")
	sys.MustInvoke(0, "addAfter", "a", "c")
	sys.MustInvoke(0, "addAfter", "a", "b")
	must(sys.DeliverAll())
	sys.MustInvoke(1, "addAfter", "c", "e")
	sys.MustInvoke(0, "addAfter", "c", "d")
	must(sys.DeliverAll())
	sys.MustInvoke(1, "remove", "d")
	must(sys.DeliverAll())
	sys.MustInvoke(0, "read")

	h := sys.History()
	res := core.CheckRA(h, d.Spec, o.Tune(d.CheckOptions()))
	var out strings.Builder
	out.WriteString("history (label  origin  sees):\n")
	out.WriteString(h.String())
	if res.OK {
		fmt.Fprintf(&out, "RA-linearization (%s):\n  %s\n", res.Strategy, core.FormatLabels(res.Linearization))
	}
	return Experiment{
		ID:       "fig-3",
		Title:    "Figure 3: history of the RGA execution",
		Claim:    "the execution's history is RA-linearizable w.r.t. Spec(RGA)",
		Observed: fmt.Sprintf("RA-linearizable=%v (witness strategy %v)", res.OK, res.Strategy),
		OK:       res.OK,
		Output:   out.String(),
	}
}

// fig5System builds the Section 2.2 OR-Set execution in which the reads see
// every update yet return {a, b}: each remove observes only the add issued at
// its own replica, so the concurrent adds survive.
func fig5System() (*runtime.System, *core.History) {
	d := orset.Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "b")
	sys.MustInvoke(0, "add", "a")
	sys.MustInvoke(0, "remove", "a")
	sys.MustInvoke(1, "add", "a")
	sys.MustInvoke(1, "add", "b")
	sys.MustInvoke(1, "remove", "b")
	must(sys.DeliverAll())
	sys.MustInvoke(0, "read")
	sys.MustInvoke(1, "read")
	return sys, sys.History()
}

// naiveSetHistory reinterprets an OR-Set history over the plain Set
// specification: removes become ordinary updates and identifiers are dropped.
func naiveSetHistory(h *core.History) *core.History {
	naive := h.Clone()
	for _, l := range naive.Labels() {
		switch l.Method {
		case "add":
			l.Ret = nil
		case "remove":
			l.Kind = core.KindUpdate
			l.Ret = nil
		}
	}
	return naive
}

// Fig5a reproduces Figure 5a: the OR-Set execution is not linearizable with
// respect to the plain Set specification, even allowing visibility-based
// linearizations.
func Fig5a(o Options) Experiment {
	_, h := fig5System()
	naive := naiveSetHistory(h)
	strong := core.CheckStrongLinearizable(naive, spec.Set{}, o.Tune(core.CheckOptions{Exhaustive: true}))
	ra := core.CheckRA(naive, spec.Set{}, o.Tune(core.CheckOptions{Exhaustive: true}))
	var out strings.Builder
	out.WriteString("history (removes treated as plain Set updates):\n")
	out.WriteString(naive.String())
	fmt.Fprintf(&out, "strong linearizability: ok=%v (%s)\n", strong.OK, searchEffort(strong))
	fmt.Fprintf(&out, "RA-linearizability w.r.t. Spec(Set): ok=%v complete=%v\n", ra.OK, ra.Complete)
	ok := !strong.OK && strong.Complete && !ra.OK && ra.Complete
	return Experiment{
		ID:       "fig-5a",
		Title:    "Figure 5a: OR-Set execution vs the naive Set specification",
		Claim:    "no linearization of the visibility relation explains the reads returning {a,b} against Spec(Set)",
		Observed: fmt.Sprintf("strong linearizable=%v, RA-linearizable=%v (both complete searches)", strong.OK, ra.OK),
		OK:       ok,
		Output:   out.String(),
	}
}

// Fig5b reproduces Figure 5b: the same execution becomes RA-linearizable with
// respect to Spec(OR-Set) once the query-update rewriting splits removes into
// readIds · remove.
func Fig5b(o Options) Experiment {
	d := orset.Descriptor()
	_, h := fig5System()
	res := core.CheckRA(h, d.Spec, o.Tune(d.CheckOptions()))
	var out strings.Builder
	out.WriteString("rewritten history:\n")
	if res.Rewritten != nil {
		out.WriteString(res.Rewritten.String())
	}
	if res.OK {
		fmt.Fprintf(&out, "RA-linearization (%s):\n  %s\n", res.Strategy, core.FormatLabels(res.Linearization))
	}
	ok := res.OK && res.Strategy != nil && *res.Strategy == core.StrategyExecutionOrder
	return Experiment{
		ID:       "fig-5b",
		Title:    "Figure 5b: the same execution after the query-update rewriting",
		Claim:    "the rewritten history is RA-linearizable w.r.t. Spec(OR-Set) in execution order",
		Observed: fmt.Sprintf("RA-linearizable=%v via %v", res.OK, res.Strategy),
		OK:       ok,
		Output:   out.String(),
	}
}

// Sec33 reproduces the client-reasoning example of Section 3.3: for the
// program  add(a); rem(a); X=read()  ∥  add(a); Y=read()  the post-condition
// a ∈ X ⇒ a ∈ Y holds in every execution, and every execution is
// RA-linearizable.
func Sec33(o Options) Experiment {
	d := orset.Descriptor()
	program := Program{
		{{Method: "add", Args: []core.Value{"a"}}, {Method: "remove", Args: []core.Value{"a"}}, {Method: "read"}},
		{{Method: "add", Args: []core.Value{"a"}}, {Method: "read"}},
	}
	schedules := 0
	violations := 0
	nonLinearizable := 0
	_, err := ExploreSchedules(d, program, 0, func(run Run) bool {
		schedules++
		x := run.Label(0, 2).Ret.([]string)
		y := run.Label(1, 1).Ret.([]string)
		aInX := contains(x, "a")
		aInY := contains(y, "a")
		if aInX && !aInY {
			violations++
		}
		res := core.CheckRA(run.System.History(), d.Spec, o.Tune(d.CheckOptions()))
		if !res.OK {
			nonLinearizable++
		}
		return true
	})
	observed := fmt.Sprintf("%d schedules explored, %d post-condition violations, %d non-RA-linearizable histories",
		schedules, violations, nonLinearizable)
	output := fmt.Sprintf("program: r1: add(a)·rem(a)·X=read   r2: add(a)·Y=read\npost-condition: a∈X ⇒ a∈Y\n%s", observed)
	ok := err == nil && schedules > 0 && violations == 0 && nonLinearizable == 0
	if err != nil {
		output += "\nerror: " + err.Error()
	}
	return Experiment{
		ID:       "sec-3.3",
		Title:    "Section 3.3: client reasoning over RA-linearizations",
		Claim:    "a ∈ X ⇒ a ∈ Y holds in every execution of the two-replica OR-Set program",
		Observed: observed,
		OK:       ok,
		Output:   output,
	}
}

// Fig8 reproduces Figure 8: an RGA execution whose execution-order
// linearization is not an RA-linearization while the timestamp-order one is.
func Fig8(o Options) Experiment {
	d := rga.Descriptor()
	scripted := clock.NewScripted(
		clock.Timestamp{Time: 2, Replica: 1}, // tsb (generated first)
		clock.Timestamp{Time: 1, Replica: 0}, // tsa < tsb (generated second)
		clock.Timestamp{Time: 3, Replica: 1}, // tsc
	)
	sys := d.NewOpSystem(runtime.Config{Replicas: 2, Clock: scripted})
	sys.MustInvoke(1, "addAfter", rga.Root, "b") // ℓ2
	sys.MustInvoke(0, "addAfter", rga.Root, "a") // ℓ1, smaller timestamp
	must(sys.DeliverAll())
	read := sys.MustInvoke(0, "read") // ℓ4 ⇒ b·a
	sys.MustInvoke(1, "addAfter", "b", "c")

	h := sys.History()
	eo := core.CheckRA(h, d.Spec, o.Tune(core.CheckOptions{Strategies: []core.Strategy{core.StrategyExecutionOrder}}))
	to := core.CheckRA(h, d.Spec, o.Tune(core.CheckOptions{Strategies: []core.Strategy{core.StrategyTimestampOrder}}))
	var out strings.Builder
	fmt.Fprintf(&out, "read returned %s\n", core.FormatValue(read.Ret))
	fmt.Fprintf(&out, "execution-order linearization accepted: %v\n", eo.OK)
	fmt.Fprintf(&out, "timestamp-order linearization accepted: %v\n", to.OK)
	if to.OK {
		fmt.Fprintf(&out, "timestamp-order witness: %s\n", core.FormatLabels(to.Linearization))
	}
	ok := !eo.OK && to.OK && core.ValueEqual(read.Ret, []string{"b", "a"})
	return Experiment{
		ID:       "fig-8",
		Title:    "Figure 8: execution-order vs timestamp-order linearizations for RGA",
		Claim:    "the execution-order linearization fails while the timestamp-order one is an RA-linearization",
		Observed: fmt.Sprintf("execution-order ok=%v, timestamp-order ok=%v", eo.OK, to.OK),
		OK:       ok,
		Output:   out.String(),
	}
}

// Fig9 reproduces Figure 9: a composition of two OR-Sets in which specific
// per-object RA-linearizations cannot be combined into a global one, yet the
// composed history is RA-linearizable (Theorem 5.3).
func Fig9(o Options) Experiment {
	objects := []compose.Object{
		{Name: "o1", Descriptor: orset.Descriptor()},
		{Name: "o2", Descriptor: orset.Descriptor()},
	}
	sys := compose.MustNewSystem(compose.Unrestricted, 2, objects...)
	sys.MustInvoke("o1", 0, "add", "d")
	sys.MustInvoke("o2", 0, "add", "a")
	sys.MustInvoke("o2", 1, "add", "b")
	sys.MustInvoke("o1", 1, "add", "c")

	h := sys.History()
	specC := compose.SpecOf(sys)
	opts := compose.CheckOptions(sys)
	res := core.CheckRA(h, specC, o.Tune(opts))

	rew, err := core.RewriteHistory(h, opts.Rewriting)
	combinedBad, combinedGood := false, false
	if err == nil {
		find := func(object, elem string) *core.Label {
			for _, l := range rew.History.Labels() {
				if l.Object == object && l.Method == "add" && l.Args[0] == elem {
					return l
				}
			}
			return nil
		}
		bad := map[string][]*core.Label{
			"o1": {find("o1", "c"), find("o1", "d")},
			"o2": {find("o2", "a"), find("o2", "b")},
		}
		good := map[string][]*core.Label{
			"o1": {find("o1", "d"), find("o1", "c")},
			"o2": {find("o2", "a"), find("o2", "b")},
		}
		combinedBad, _, _ = compose.CombinePerObject(rew.History, bad, specC)
		combinedGood, _, _ = compose.CombinePerObject(rew.History, good, specC)
	}
	var out strings.Builder
	out.WriteString("composed history:\n")
	out.WriteString(h.String())
	fmt.Fprintf(&out, "composed history RA-linearizable: %v\n", res.OK)
	fmt.Fprintf(&out, "per-object linearizations o1: c·d, o2: a·b combine: %v\n", combinedBad)
	fmt.Fprintf(&out, "per-object linearizations o1: d·c, o2: a·b combine: %v\n", combinedGood)
	ok := res.OK && !combinedBad && combinedGood && err == nil
	return Experiment{
		ID:       "fig-9",
		Title:    "Figure 9: composition of two OR-Sets (execution-order objects)",
		Claim:    "the chosen per-object linearizations do not combine, yet the composition is RA-linearizable",
		Observed: fmt.Sprintf("composition RA-linearizable=%v, bad combination=%v, good combination=%v", res.OK, combinedBad, combinedGood),
		OK:       ok,
		Output:   out.String(),
	}
}

// Fig10 reproduces Figure 10: two RGAs under the unrestricted composition ⊗
// produce a history that is not RA-linearizable, while the shared timestamp
// generator composition ⊗ts rules the conflict out (Theorem 5.5).
func Fig10(o Options) Experiment {
	runOnce := func(mode compose.Mode) (*compose.System, *core.History) {
		var o1Clock clock.Generator
		if mode == compose.Unrestricted {
			o1Clock = clock.NewScripted(
				clock.Timestamp{Time: 2, Replica: 1},
				clock.Timestamp{Time: 1, Replica: 2},
			)
		}
		sys := compose.MustNewSystem(mode, 3,
			compose.Object{Name: "o1", Descriptor: rga.Descriptor(), Clock: o1Clock},
			compose.Object{Name: "o2", Descriptor: rga.Descriptor()},
		)
		c := sys.MustInvoke("o2", 0, "addAfter", rga.Root, "c")
		b := sys.MustInvoke("o1", 1, "addAfter", rga.Root, "b")
		d := sys.MustInvoke("o2", 1, "addAfter", rga.Root, "d")
		sys.MustInvoke("o2", 2, "addAfter", rga.Root, "e")
		sys.MustInvoke("o1", 2, "addAfter", rga.Root, "a")
		must(sys.Deliver("o2", 2, c.ID))
		must(sys.Deliver("o2", 2, d.ID))
		must(sys.Deliver("o1", 2, b.ID))
		sys.MustInvoke("o2", 2, "read")
		sys.MustInvoke("o1", 2, "read")
		return sys, sys.History()
	}
	unrSys, unrHist := runOnce(compose.Unrestricted)
	unr := core.CheckRA(unrHist, compose.SpecOf(unrSys), o.Tune(compose.CheckOptions(unrSys)))
	sharedSys, sharedHist := runOnce(compose.SharedTimestamps)
	shared := core.CheckRA(sharedHist, compose.SpecOf(sharedSys), o.Tune(compose.CheckOptions(sharedSys)))

	var out strings.Builder
	out.WriteString("history under ⊗ (independent timestamps):\n")
	out.WriteString(unrHist.String())
	fmt.Fprintf(&out, "RA-linearizable under ⊗:   %v (complete=%v)\n", unr.OK, unr.Complete)
	fmt.Fprintf(&out, "RA-linearizable under ⊗ts: %v\n", shared.OK)
	ok := !unr.OK && unr.Complete && shared.OK
	return Experiment{
		ID:       "fig-10",
		Title:    "Figure 10: composition of two RGAs (timestamp-order objects)",
		Claim:    "the history is not RA-linearizable under ⊗ but the shared-timestamp composition ⊗ts restores RA-linearizability",
		Observed: fmt.Sprintf("⊗ RA-linearizable=%v, ⊗ts RA-linearizable=%v", unr.OK, shared.OK),
		OK:       ok,
		Output:   out.String(),
	}
}

// Fig13 reproduces Figure 13 (Appendix A): the step-by-step evolution of the
// global configuration of an RGA deployment, showing the per-replica label
// sets, the replica state and the growth of the visibility relation.
func Fig13(o Options) Experiment {
	d := rga.Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	var out strings.Builder
	snapshot := func(caption string) {
		seen := sys.Seen(0)
		fmt.Fprintf(&out, "%s\n", caption)
		fmt.Fprintf(&out, "  |G(r1).L| = %d   G(r1).state = %s\n", len(seen), sys.ReplicaState(0))
		visEdges := 0
		h := sys.History()
		for _, l := range h.Labels() {
			visEdges += len(h.VisibleTo(l))
		}
		fmt.Fprintf(&out, "  |G.vis| = %d edges\n", visEdges)
	}
	a := sys.MustInvoke(0, "addAfter", rga.Root, "a")
	b := sys.MustInvoke(1, "addAfter", rga.Root, "b")
	must(sys.Deliver(0, b.ID))
	must(sys.Deliver(1, a.ID))
	sys.MustInvoke(0, "addAfter", "b", "c")
	dd := sys.MustInvoke(1, "addAfter", "b", "d")
	snapshot("(a) before the effector of addAfter(b,d) reaches r1:")
	seenBefore := len(sys.Seen(0))
	must(sys.Deliver(0, dd.ID))
	snapshot("(b) after delivering addAfter(b,d) at r1:")
	seenAfter := len(sys.Seen(0))
	sys.MustInvoke(0, "remove", "b")
	snapshot("(c) after r1 executes remove(b):")
	h := sys.History()
	removeLabel := h.Labels()[len(h.Labels())-1]
	ok := seenAfter == seenBefore+1 &&
		len(h.VisibleTo(removeLabel)) == 4 &&
		core.ValueEqual(sys.ReplicaState(0).(rga.State).Visible(), []string{"d", "c", "a"})
	return Experiment{
		ID:       "fig-13",
		Title:    "Figure 13: RGA operational semantics, step by step",
		Claim:    "delivery extends the replica's label set without changing vis; a new local operation sees all four prior updates",
		Observed: fmt.Sprintf("r1 label set grew %d→%d on delivery; remove(b) sees %d operations", seenBefore, seenAfter, len(h.VisibleTo(removeLabel))),
		OK:       ok,
		Output:   out.String(),
	}
}

// Fig14 reproduces Figure 14 (Appendix C): an execution of the RGA variant
// with an addAt interface whose history is RA-linearizable with respect to
// Spec(addAt3) but not with respect to Spec(addAt1) or Spec(addAt2).
func Fig14(o Options) Experiment {
	sys := runtime.NewSystem(rga.AddAtType{}, runtime.Config{Replicas: 3})
	a := sys.MustInvoke(2, "addAt", "a", 0)
	must(sys.Deliver(0, a.ID))
	must(sys.Deliver(1, a.ID))
	b := sys.MustInvoke(0, "addAt", "b", 0)
	remB := sys.MustInvoke(0, "remove", "b")
	c := sys.MustInvoke(0, "addAt", "c", 1)
	must(sys.Deliver(1, b.ID))
	dd := sys.MustInvoke(1, "addAt", "d", 0)
	remA := sys.MustInvoke(1, "remove", "a")
	e := sys.MustInvoke(1, "addAt", "e", 2)
	for _, l := range []*core.Label{remB, c} {
		must(sys.Deliver(1, l.ID))
	}
	for _, l := range []*core.Label{dd, remA, e} {
		must(sys.Deliver(0, l.ID))
	}
	read := sys.MustInvoke(1, "read")
	h := sys.History()

	opts := core.CheckOptions{Exhaustive: true}
	r1 := core.CheckRA(h, spec.AddAt1{}, o.Tune(opts))
	r2 := core.CheckRA(h, spec.AddAt2{}, o.Tune(opts))
	d3 := rga.AddAtDescriptor()
	r3 := core.CheckRA(h, spec.AddAt3{}, o.Tune(d3.CheckOptions()))

	var out strings.Builder
	fmt.Fprintf(&out, "final read: %s\n", core.FormatValue(read.Ret))
	out.WriteString("history:\n")
	out.WriteString(h.String())
	fmt.Fprintf(&out, "RA-linearizable w.r.t. Spec(addAt1): %v (complete=%v)\n", r1.OK, r1.Complete)
	fmt.Fprintf(&out, "RA-linearizable w.r.t. Spec(addAt2): %v (complete=%v)\n", r2.OK, r2.Complete)
	fmt.Fprintf(&out, "RA-linearizable w.r.t. Spec(addAt3): %v\n", r3.OK)
	ok := core.ValueEqual(read.Ret, []string{"d", "e", "c"}) &&
		!r1.OK && r1.Complete && !r2.OK && r2.Complete && r3.OK
	return Experiment{
		ID:       "fig-14",
		Title:    "Figure 14: the addAt interface separates the index-based list specifications",
		Claim:    "the read d·e·c is not explainable by Spec(addAt1)/Spec(addAt2) but is by Spec(addAt3)",
		Observed: fmt.Sprintf("read=%s, addAt1 ok=%v, addAt2 ok=%v, addAt3 ok=%v", core.FormatValue(read.Ret), r1.OK, r2.OK, r3.OK),
		OK:       ok,
		Output:   out.String(),
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
