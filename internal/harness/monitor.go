package harness

import (
	"context"
	"fmt"

	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/search"
)

// The incremental monitor loop: instead of checking one finished history from
// scratch, replay it as the op stream a live monitor would have seen — grow a
// history one operation at a time (with the visibility edges that had both
// endpoints by then) and re-verify every prefix through core.CheckRAExtend,
// so each step reuses the previous verdict as a certificate and costs ~the
// marginal work of the new operation. Verdicts at every prefix are
// byte-identical to a from-scratch check of that prefix (the corpus replay
// test asserts exactly this).

// MonitorReport summarises the op-by-op incremental verification of one
// history.
type MonitorReport struct {
	// Ops is the number of operations replayed (= prefixes checked).
	Ops int
	// Verdicts holds the verdict after each prefix, in replay order.
	Verdicts []core.Verdict
	// Replayed counts the prefixes whose verdict came from validating the
	// previous witness as a certificate (Result.WitnessReplayed) — no search.
	Replayed int
	// Searched counts the prefixes that fell back to the extended search
	// (Result.Extended without WitnessReplayed).
	Searched int
	// Rebuilt counts the prefixes the extension preconditions rejected —
	// checked by a plain warm from-scratch pass instead.
	Rebuilt int
	// Final is the verdict of the last prefix, i.e. of the whole history.
	Final core.Result
}

// MonitorHistory replays a finished history through the incremental checker:
// labels in insertion order, each followed by the direct visibility edges
// whose endpoints both exist by that step, checking every prefix via
// core.CheckRAExtend over one engine session. The per-prefix closure (and so
// every verdict) matches a from-scratch check of the same prefix.
func MonitorHistory(h *core.History, sp core.Spec, opts core.CheckOptions, o Options) (MonitorReport, error) {
	sess := search.NewSessionWithBudget(o.Budget)
	return monitorHistory(h, sp, opts, o, sess)
}

// monitorHistory is MonitorHistory over a caller-owned session, so a batch of
// monitored histories shares one warm session the way runBatch's trials do.
func monitorHistory(h *core.History, sp core.Spec, opts core.CheckOptions, o Options, sess *search.Session) (MonitorReport, error) {
	opts = o.Tune(opts)
	ctx := o.Context
	if o.Timeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, o.Timeout)
		defer cancel()
	}
	if opts.Context == nil {
		opts.Context = ctx
	}
	if !o.FreshSessions {
		opts.Session = sess
	} else {
		opts.Session = nil
	}

	rep := MonitorReport{Ops: h.Len()}
	n := h.Len()
	if n == 0 {
		rep.Final = core.CheckRA(h, sp, opts)
		return rep, nil
	}
	// Bucket each direct edge by the step at which both endpoints exist: the
	// larger insertion rank. Replaying label k and then bucket k grows the
	// prefix exactly as a monitor attached to the live store would have seen
	// it. Runtime histories generate a label before anything can observe it,
	// so in practice every edge of bucket k targets the newest label and the
	// stream obeys the extension path's edge discipline; an exotic history
	// with an edge into an older label still verifies correctly — the
	// extension detects the violation and that step re-checks from scratch
	// (counted in Rebuilt).
	buckets := make([][]core.VisEdge, n)
	var bucketErr error
	h.DirectVisEdges(func(from, to uint64) {
		rf, okf := h.RankOf(from)
		rt, okt := h.RankOf(to)
		if !okf || !okt {
			bucketErr = fmt.Errorf("monitor: edge endpoint missing from history (%d -> %d)", from, to)
			return
		}
		k := rf
		if rt > k {
			k = rt
		}
		buckets[k] = append(buckets[k], core.VisEdge{From: from, To: to})
	})
	if bucketErr != nil {
		return rep, bucketErr
	}

	g := core.NewHistory()
	newOps := make([]*core.Label, 1)
	rep.Verdicts = make([]core.Verdict, 0, n)
	for k := 0; k < n; k++ {
		l := h.LabelAt(k)
		if err := g.Add(l); err != nil {
			return rep, fmt.Errorf("monitor: replaying op %d: %w", k, err)
		}
		for _, e := range buckets[k] {
			if err := g.AddVis(e.From, e.To); err != nil {
				return rep, fmt.Errorf("monitor: replaying edges of op %d: %w", k, err)
			}
		}
		newOps[0] = l
		res := core.CheckRAExtend(g, sp, newOps, opts)
		rep.Verdicts = append(rep.Verdicts, res.Verdict)
		switch {
		case res.WitnessReplayed:
			rep.Replayed++
		case res.Extended:
			rep.Searched++
		default:
			rep.Rebuilt++
		}
		rep.Final = res
	}
	return rep, nil
}

// MonitorGenerated checks trials histories from the generator through the
// incremental monitor loop — each history replayed op-by-op via
// core.CheckRAExtend over one shared engine session — and aggregates the
// final (full-history) verdicts into the same HistoryCheck shape the batch
// entry points report, so tools can switch a batch to incremental mode
// without changing their reporting or exit-code logic. The monitor's own
// counters land in the Prefixes/Replayed/ExtendSearches/Rebuilds fields.
// Trials run sequentially: the monitor models a store observed live, and the
// session's certificate state is per-history anyway.
func MonitorGenerated(name string, sp core.Spec, opts core.CheckOptions, gen HistoryGenerator, trials int, o Options) (HistoryCheck, error) {
	out := HistoryCheck{
		CRDT:            name,
		ByStrategy:      map[string]int{},
		UnknownByReason: map[string]int{},
		BatchWorkers:    1,
	}
	sess := search.NewSessionWithBudget(o.Budget)
	for i := 0; i < trials; i++ {
		h, seed, err := gen.Generate(i)
		if err != nil {
			out.InternedStates = sess.InternedStates()
			return out, err
		}
		rep, err := monitorHistory(h, sp, opts, o, sess)
		if err != nil {
			out.InternedStates = sess.InternedStates()
			return out, err
		}
		res := rep.Final
		out.Histories++
		out.Operations += rep.Ops
		out.Prefixes += rep.Ops
		out.Replayed += rep.Replayed
		out.ExtendSearches += rep.Searched
		out.Rebuilds += rep.Rebuilt
		out.Tried += res.Tried
		out.Nodes += res.Nodes
		out.Pruned += res.Pruned
		out.MemoHits += res.MemoHits
		out.Steals += res.Steals
		if res.Shards > out.Shards {
			out.Shards = res.Shards
		}
		if res.PlanReused {
			out.PlanReuses++
		}
		if res.RewriteCached {
			out.RewriteHits++
		}
		if res.MemDegraded {
			out.Degraded++
		}
		switch res.Verdict {
		case core.VerdictValid:
			out.Linearizable++
			if res.Strategy != nil {
				out.ByStrategy[res.Strategy.String()]++
			} else {
				out.ByStrategy["exhaustive"]++
			}
		case core.VerdictInvalid:
			out.Invalid++
			if out.FailureExample == "" {
				out.FailureExample = fmt.Sprintf("seed %d: %v", seed, res.LastErr)
			}
		default:
			out.Unknown++
			reason := ""
			detail := "truncated"
			if res.Incomplete != nil {
				reason = string(res.Incomplete.Reason)
				detail = res.Incomplete.String()
			}
			out.UnknownByReason[reason]++
			if out.UnknownExample == "" {
				out.UnknownExample = fmt.Sprintf("trial %d (seed %d): %s", i, seed, detail)
			}
		}
	}
	out.InternedStates = sess.InternedStates()
	return out, nil
}

// MonitorRandomHistories is CheckRandomHistoriesWith through the incremental
// monitor loop: trials random histories of the CRDT, each replayed op-by-op
// via core.CheckRAExtend instead of checked whole. Trial i uses seed
// cfg.Seed+i·7919, matching the batch entry point, so the two modes check
// identical histories.
func MonitorRandomHistories(d crdt.Descriptor, trials int, cfg WorkloadConfig, o Options) (HistoryCheck, error) {
	cfg.fill()
	opts := d.CheckOptions()
	if o.Check != nil {
		opts = *o.Check
	}
	return MonitorGenerated(d.Name, d.Spec, opts, RandomGenerator{Desc: d, Cfg: cfg}, trials, o)
}
