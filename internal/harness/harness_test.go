package harness

import (
	"strings"
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt/counter"
	"ralin/internal/crdt/orset"
	"ralin/internal/crdt/registry"
	"ralin/internal/verify"
)

func TestRunRandomOpAndStateBased(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Ops = 6
	for _, name := range []string{"Counter", "PN-Counter", "RGA", "2P-Set"} {
		d, err := registry.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := RunRandom(d, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.Len() != 6 {
			t.Fatalf("%s: expected 6 labels, got %d", name, h.Len())
		}
	}
}

func TestCheckRandomHistories(t *testing.T) {
	d, _ := registry.Lookup("OR-Set")
	cfg := DefaultWorkload()
	cfg.Ops = 6
	res, err := CheckRandomHistories(d, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Histories != 5 || res.Operations != 30 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.ByStrategy["execution-order"] == 0 {
		t.Fatalf("OR-Set histories should linearize in execution order: %+v", res.ByStrategy)
	}
}

func TestFig12RowAndRendering(t *testing.T) {
	opts := Fig12Options{
		Verify:        verify.Options{Seed: 3, Trials: 3, Ops: 6, Replicas: 2, Elems: []string{"a", "b"}, MaxStates: 15},
		HistoryTrials: 3,
		Workload:      WorkloadConfig{Seed: 5, Ops: 6, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40},
	}
	row, err := Fig12RowFor(counter.Descriptor(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !row.OK() {
		t.Fatalf("counter row must verify:\n%s", row.Obligations)
	}
	text := RenderFig12([]Fig12Row{row})
	if !strings.Contains(text, "Counter") || !strings.Contains(text, "proved") {
		t.Fatalf("table rendering wrong:\n%s", text)
	}
	details := RenderFig12Details([]Fig12Row{row})
	if !strings.Contains(details, "random histories") {
		t.Fatalf("details rendering wrong:\n%s", details)
	}
}

func TestFig12TableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full table takes a few seconds")
	}
	opts := Fig12Options{
		Verify:        verify.Options{Seed: 3, Trials: 3, Ops: 7, Replicas: 2, Elems: []string{"a", "b"}, MaxStates: 15},
		HistoryTrials: 4,
		Workload:      WorkloadConfig{Seed: 5, Ops: 7, Replicas: 2, Elems: []string{"a", "b"}, DeliveryProb: 40},
	}
	rows, err := Fig12Table(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK() {
			t.Errorf("row %s failed:\n%s\nhistories: %+v", r.Name, r.Obligations, r.Histories)
		}
	}
}

func TestExploreSchedulesCounts(t *testing.T) {
	d := counter.Descriptor()
	program := Program{
		{{Method: "inc"}, {Method: "read"}},
		{{Method: "inc"}},
	}
	runs, err := ExploreSchedules(d, program, 0, func(run Run) bool {
		if run.Label(0, 1) == nil || run.Label(0, 1).Method != "read" {
			t.Fatal("labels not recorded")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Fatal("no schedules explored")
	}
	// The read must observe 1 or 2 depending on whether the remote inc was
	// delivered before it; both values must occur across schedules.
	seen := map[int64]bool{}
	_, err = ExploreSchedules(d, program, 0, func(run Run) bool {
		seen[run.Label(0, 1).Ret.(int64)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("schedule exploration missed delivery interleavings: %v", seen)
	}
	// Limits and early stops are honoured.
	n, err := ExploreSchedules(d, program, 2, func(Run) bool { return true })
	if err != nil || n != 2 {
		t.Fatalf("limit not honoured: %d %v", n, err)
	}
	n, err = ExploreSchedules(d, program, 0, func(Run) bool { return false })
	if err != nil || n != 1 {
		t.Fatalf("early stop not honoured: %d %v", n, err)
	}
}

func TestExploreSchedulesErrors(t *testing.T) {
	if _, err := ExploreSchedules(orset.Descriptor(), Program{}, 0, func(Run) bool { return true }); err == nil {
		t.Fatal("empty program must fail")
	}
	d, _ := registry.Lookup("PN-Counter")
	if _, err := ExploreSchedules(d, Program{{{Method: "inc"}}}, 0, func(Run) bool { return true }); err == nil {
		t.Fatal("state-based descriptors must be rejected")
	}
}

func TestExperimentsAllReproduce(t *testing.T) {
	for _, e := range Experiments(Options{}) {
		if !e.OK {
			t.Errorf("experiment %s did not reproduce:\n%s", e.ID, e)
		}
		if e.Claim == "" || e.Observed == "" || e.Title == "" {
			t.Errorf("experiment %s is missing descriptive fields", e.ID)
		}
	}
}

func TestExperimentLookupAndRendering(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(ids))
	}
	e, err := ExperimentByID("fig-8", Options{})
	if err != nil || e.ID != "fig-8" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := ExperimentByID("fig-99", Options{}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	text := e.String()
	if !strings.Contains(text, "REPRODUCED") || !strings.Contains(text, "paper:") {
		t.Fatalf("experiment rendering wrong:\n%s", text)
	}
	bad := Experiment{ID: "x", Title: "t", Claim: "c", Observed: "o", OK: false}
	if !strings.Contains(bad.String(), "MISMATCH") {
		t.Fatal("mismatch rendering wrong")
	}
}

func TestNaiveSetHistoryReinterpretation(t *testing.T) {
	_, h := fig5System()
	naive := naiveSetHistory(h)
	for _, l := range naive.Labels() {
		if l.Method == "remove" && (l.Kind != core.KindUpdate || l.Ret != nil) {
			t.Fatalf("remove not reinterpreted: %v", l)
		}
		if l.Method == "add" && l.Ret != nil {
			t.Fatalf("add identifier not dropped: %v", l)
		}
	}
	if naive.Len() != h.Len() {
		t.Fatal("label count changed")
	}
}

func TestWorkloadConfigFill(t *testing.T) {
	c := WorkloadConfig{DeliveryProb: 500}
	c.fill()
	if c.Ops == 0 || c.Replicas == 0 || len(c.Elems) == 0 || c.DeliveryProb != 100 {
		t.Fatalf("fill wrong: %+v", c)
	}
	c2 := WorkloadConfig{DeliveryProb: -3}
	c2.fill()
	if c2.DeliveryProb != 0 {
		t.Fatal("negative delivery probability must clamp to zero")
	}
}
