package harness

import (
	"fmt"
	"strings"

	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/verify"
)

// Fig12Row is one row of the regenerated Figure 12 table: the CRDT, its
// implementation class, its linearization class, and the verification
// verdicts produced by this reproduction (proof obligations plus random
// history checking).
type Fig12Row struct {
	// Name is the CRDT name.
	Name string
	// Source cites the algorithm's origin, as in the paper's table.
	Source string
	// Class is OB or SB.
	Class crdt.Class
	// Lin is EO or TO.
	Lin crdt.LinClass
	// Obligations is the proof-obligation report (Commutativity/Refinement
	// for operation-based types, Prop1..Prop6/Refinement for state-based
	// ones).
	Obligations verify.Report
	// Histories is the random-history RA-linearizability check.
	Histories HistoryCheck
}

// OK reports whether both the obligations and the history checks passed.
func (r Fig12Row) OK() bool { return r.Obligations.OK() && r.Histories.OK() }

// Fig12Options configures the table regeneration.
type Fig12Options struct {
	// Verify configures the proof-obligation checking.
	Verify verify.Options
	// HistoryTrials is the number of random histories checked per CRDT.
	HistoryTrials int
	// Workload configures each random history.
	Workload WorkloadConfig
	// Options is the checker/batch configuration for the history checks.
	Options Options
}

// DefaultFig12Options keeps the full table under a few seconds.
func DefaultFig12Options() Fig12Options {
	return Fig12Options{
		Verify:        verify.DefaultOptions(),
		HistoryTrials: 25,
		Workload:      DefaultWorkload(),
	}
}

// Fig12Table regenerates the Figure 12 table: every registered CRDT of the
// paper's table is verified (proof obligations) and checked on random
// histories.
func Fig12Table(opts Fig12Options) ([]Fig12Row, error) {
	if opts.HistoryTrials <= 0 {
		opts.HistoryTrials = 25
	}
	var rows []Fig12Row
	for _, d := range registry.Fig12() {
		row, err := Fig12RowFor(d, opts)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12RowFor verifies and checks one CRDT.
func Fig12RowFor(d crdt.Descriptor, opts Fig12Options) (Fig12Row, error) {
	if opts.HistoryTrials <= 0 {
		opts.HistoryTrials = 25
	}
	row := Fig12Row{Name: d.Name, Source: d.Source, Class: d.Class, Lin: d.Lin}
	if d.Class == crdt.OpBased {
		row.Obligations = verify.CheckOpBased(d, opts.Verify)
	} else {
		row.Obligations = verify.CheckStateBased(d, opts.Verify)
	}
	hist, err := CheckRandomHistoriesWith(d, opts.HistoryTrials, opts.Workload, opts.Options)
	if err != nil {
		return row, err
	}
	row.Histories = hist
	return row, nil
}

// RenderFig12 renders the regenerated table in the layout of the paper's
// Figure 12, extended with the verification verdict columns.
func RenderFig12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-28s %-4s %-4s %-12s %-14s\n",
		"CRDT", "Source", "Imp.", "Lin.", "Obligations", "RA-lin histories")
	fmt.Fprintln(&b, strings.Repeat("-", 86))
	for _, r := range rows {
		obl := "proved"
		if !r.Obligations.OK() {
			obl = "FAILED"
		}
		hist := fmt.Sprintf("%d/%d ok", r.Histories.Linearizable, r.Histories.Histories)
		if r.Histories.Unknown > 0 {
			hist += fmt.Sprintf(" (%d unknown)", r.Histories.Unknown)
		}
		fmt.Fprintf(&b, "%-18s %-28s %-4s %-4s %-12s %-14s\n",
			r.Name, r.Source, r.Class, r.Lin, obl, hist)
	}
	return b.String()
}

// RenderFig12Details renders the per-obligation details below the table, one
// block per CRDT.
func RenderFig12Details(rows []Fig12Row) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.Obligations.String())
		fmt.Fprintf(&b, "  random histories: %d/%d RA-linearizable (%d operations",
			r.Histories.Linearizable, r.Histories.Histories, r.Histories.Operations)
		for strategy, n := range r.Histories.ByStrategy {
			fmt.Fprintf(&b, ", %d via %s", n, strategy)
		}
		b.WriteString(")\n")
		fmt.Fprintf(&b, "  batch: %d workers, %d plan reuses, %d cached rewrites, inner parallelism <= %d\n",
			r.Histories.BatchWorkers, r.Histories.PlanReuses, r.Histories.RewriteHits, r.Histories.MaxInnerParallelism)
		if r.Histories.FailureExample != "" {
			fmt.Fprintf(&b, "  first failure: %s\n", r.Histories.FailureExample)
		}
		if r.Histories.Unknown > 0 {
			fmt.Fprintf(&b, "  unknown verdicts: %d (first: %s)\n",
				r.Histories.Unknown, r.Histories.UnknownExample)
		}
	}
	return b.String()
}
