package harness

import (
	"fmt"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
)

// Step is one operation of a scripted per-replica program.
type Step struct {
	// Method is the method name.
	Method string
	// Args are the call arguments.
	Args []core.Value
}

// Program assigns each replica (by index) the sequence of operations it
// issues.
type Program [][]Step

// Run is one completed execution of a program under a specific schedule.
type Run struct {
	// System is the final operation-based deployment.
	System *runtime.System
	// Labels maps (replica, step index) to the operation label it produced.
	Labels map[int]map[int]*core.Label
	// Schedule is the action sequence that was executed, for diagnostics.
	Schedule []string
}

// Label returns the label produced by the given replica's step.
func (r Run) Label(replica, step int) *core.Label { return r.Labels[replica][step] }

// scheduleAction is one action of a schedule during enumeration.
type scheduleAction struct {
	// kind is "op" or "deliver".
	kind string
	// replica is the acting replica.
	replica int
	// step is the program step index (op actions).
	step int
	// op identifies the delivered operation by (origin replica, step index)
	// (deliver actions).
	opReplica, opStep int
}

func (a scheduleAction) String() string {
	if a.kind == "op" {
		return fmt.Sprintf("r%d:op%d", a.replica, a.step)
	}
	return fmt.Sprintf("r%d:recv(r%d:op%d)", a.replica, a.opReplica, a.opStep)
}

// ExploreSchedules enumerates every interleaving of operation execution and
// causal effector delivery for the given program over an operation-based CRDT
// and calls visit with each completed run. Enumeration stops early when visit
// returns false or when limit runs have been produced (limit <= 0 means no
// limit). Deliveries that remain pending once every program step has executed
// are not explored further: they cannot affect any return value.
//
// The exploration tracks, purely symbolically, which operations have been
// generated and delivered where, so that only causally valid schedules are
// enumerated; each complete schedule is then replayed on a fresh system.
func ExploreSchedules(d crdt.Descriptor, program Program, limit int, visit func(Run) bool) (int, error) {
	if d.OpType == nil {
		return 0, fmt.Errorf("harness: schedule exploration requires an operation-based CRDT")
	}
	replicas := len(program)
	if replicas == 0 {
		return 0, fmt.Errorf("harness: empty program")
	}

	type opID struct{ replica, step int }
	methods := runtime.MethodTable(d.OpType.Methods())
	isQuery := func(id opID) bool {
		return methods[program[id.replica][id.step].Method].Kind == core.KindQuery
	}
	// Symbolic execution state.
	pc := make([]int, replicas)                // next step per replica
	applied := make([]map[opID]bool, replicas) // ops applied per replica
	origin := map[opID][]opID{}                // non-query ops visible at origin when generated
	var generated []opID                       // deliverable (non-query) operations
	for r := range applied {
		applied[r] = map[opID]bool{}
	}

	runs := 0
	stopped := false
	var schedule []scheduleAction

	replay := func(schedule []scheduleAction) (Run, error) {
		sys := d.NewOpSystem(runtime.Config{Replicas: replicas})
		labels := map[int]map[int]*core.Label{}
		for r := 0; r < replicas; r++ {
			labels[r] = map[int]*core.Label{}
		}
		var names []string
		for _, a := range schedule {
			names = append(names, a.String())
			if a.kind == "op" {
				step := program[a.replica][a.step]
				l, err := sys.Invoke(clock.ReplicaID(a.replica), step.Method, step.Args...)
				if err != nil {
					return Run{}, fmt.Errorf("replay %v: %w", a, err)
				}
				labels[a.replica][a.step] = l
				continue
			}
			l := labels[a.opReplica][a.opStep]
			if l == nil {
				return Run{}, fmt.Errorf("replay %v: delivered operation not yet generated", a)
			}
			if err := sys.Deliver(clock.ReplicaID(a.replica), l.ID); err != nil {
				return Run{}, fmt.Errorf("replay %v: %w", a, err)
			}
		}
		return Run{System: sys, Labels: labels, Schedule: names}, nil
	}

	var err error
	var rec func()
	rec = func() {
		if stopped || err != nil {
			return
		}
		// Completed when every program step has executed.
		done := true
		for r := 0; r < replicas; r++ {
			if pc[r] < len(program[r]) {
				done = false
				break
			}
		}
		if done {
			run, rerr := replay(schedule)
			if rerr != nil {
				err = rerr
				return
			}
			runs++
			if !visit(run) {
				stopped = true
			}
			if limit > 0 && runs >= limit {
				stopped = true
			}
			return
		}
		// Choice 1: a replica executes its next program step.
		for r := 0; r < replicas && !stopped; r++ {
			if pc[r] >= len(program[r]) {
				continue
			}
			id := opID{replica: r, step: pc[r]}
			visible := make([]opID, 0, len(applied[r]))
			for o := range applied[r] {
				if !isQuery(o) {
					visible = append(visible, o)
				}
			}
			origin[id] = visible
			deliverable := !isQuery(id)
			if deliverable {
				generated = append(generated, id)
			}
			applied[r][id] = true
			pc[r]++
			schedule = append(schedule, scheduleAction{kind: "op", replica: r, step: id.step})

			rec()

			schedule = schedule[:len(schedule)-1]
			pc[r]--
			delete(applied[r], id)
			if deliverable {
				generated = generated[:len(generated)-1]
			}
			delete(origin, id)
		}
		// Choice 2: deliver a generated operation to a replica that has not
		// applied it, provided causal delivery allows it.
		for _, o := range generated {
			if stopped {
				break
			}
			for r := 0; r < replicas; r++ {
				if stopped {
					break
				}
				if applied[r][o] {
					continue
				}
				causal := true
				for _, dep := range origin[o] {
					if !applied[r][dep] {
						causal = false
						break
					}
				}
				if !causal {
					continue
				}
				applied[r][o] = true
				schedule = append(schedule, scheduleAction{kind: "deliver", replica: r, opReplica: o.replica, opStep: o.step})

				rec()

				schedule = schedule[:len(schedule)-1]
				delete(applied[r], o)
			}
		}
	}
	rec()
	return runs, err
}
