package spec

import (
	"ralin/internal/core"
)

// The three list specifications with an index-based insertion interface
// (addAt) studied in Appendix C. The RGA variant with an addAt interface is
// RA-linearizable with respect to AddAt3 but not with respect to AddAt1 or
// AddAt2 (Lemmas C.1 and C.2); the Figure 14 experiment reproduces this
// separation.

// AddAt1 is Spec(addAt1) of Appendix C.2: a list without tombstones.
//
//	addAt(a, k)  inserts the fresh value a at index k (or at the end when the
//	             list is shorter than k);
//	remove(a)    removes a from the list;
//	read() ⇒ l   returns the list.
type AddAt1 struct{}

// Name returns "Spec(addAt1)".
func (AddAt1) Name() string { return "Spec(addAt1)" }

// Init returns the empty list.
func (AddAt1) Init() core.AbsState { return NewListState() }

// Step applies one label.
func (a AddAt1) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return a.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (AddAt1) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(ListState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "addAt":
		elem, k, ok := addAtArgs(l)
		if !ok || s.Contains(elem) {
			return dst
		}
		n := s.CloneAbs().(ListState)
		if k > len(n.Elems) {
			k = len(n.Elems)
		}
		n.Elems = insertAt(n.Elems, k, elem)
		return append(dst, n)
	case "remove":
		if len(l.Args) != 1 {
			return dst
		}
		elem, ok := l.Args[0].(string)
		if !ok {
			return dst
		}
		i := s.IndexOf(elem)
		if i < 0 {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Elems = append(append([]string{}, n.Elems[:i]...), n.Elems[i+1:]...)
		return append(dst, n)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Visible()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}

// AddAt2 is Spec(addAt2) of Appendix C.2: a list with tombstones. The index k
// counts only non-tombstoned elements, which makes insertion nondeterministic
// when tombstoned elements straddle the insertion point.
type AddAt2 struct{}

// Name returns "Spec(addAt2)".
func (AddAt2) Name() string { return "Spec(addAt2)" }

// Init returns the empty list.
func (AddAt2) Init() core.AbsState { return NewListState() }

// Step applies one label.
func (a AddAt2) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return a.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (AddAt2) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(ListState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "addAt":
		elem, k, ok := addAtArgs(l)
		if !ok || s.Contains(elem) {
			return dst
		}
		visible := len(s.Visible())
		if k <= visible {
			// Every split l1·l2 with |l1/T| = k yields a successor.
			for i := 0; i <= len(s.Elems); i++ {
				if visibleCount(s, i) != k {
					continue
				}
				n := s.CloneAbs().(ListState)
				n.Elems = insertAt(n.Elems, i, elem)
				dst = append(dst, n)
			}
			return dst
		}
		// |l/T| < k: the value goes at the end.
		n := s.CloneAbs().(ListState)
		n.Elems = append(append([]string{}, n.Elems...), elem)
		return append(dst, n)
	case "remove":
		if len(l.Args) != 1 {
			return dst
		}
		elem, ok := l.Args[0].(string)
		if !ok || !s.Contains(elem) {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Tomb[elem] = true
		return append(dst, n)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Visible()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}

// AddAt3 is Spec(addAt3) of Appendix C.5: the addAt and remove methods return
// the "local view" of the list (a subsequence of the global list l), which
// makes the specification constraining enough for RGA-addAt to be
// RA-linearizable with respect to it (Lemma C.2).
type AddAt3 struct{}

// Name returns "Spec(addAt3)".
func (AddAt3) Name() string { return "Spec(addAt3)" }

// Init returns the list holding only the root sentinel ◦, which is never
// removed and never returned.
func (AddAt3) Init() core.AbsState { return NewListState(Root) }

// Step applies one label.
func (a AddAt3) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return a.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (AddAt3) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(ListState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "addAt":
		elem, k, ok := addAtArgs(l)
		if !ok || s.Contains(elem) {
			return dst
		}
		ret, ok := l.Ret.([]string)
		if !ok {
			return dst
		}
		// The return value is the inserting replica's local view after the
		// insertion: the fresh element at index min(k, len(view)-1 before
		// insertion), with the rest a subsequence of l.
		pos := indexOf(ret, elem)
		if pos < 0 {
			return dst
		}
		view := append(append([]string{}, ret[:pos]...), ret[pos+1:]...)
		// The element must sit at index k, unless the view was shorter than k
		// in which case it sits at the end.
		if pos != k && pos != len(view) {
			return dst
		}
		if pos > k {
			return dst
		}
		// The local view must be a subsequence of the global list.
		if !isSubsequence(view, s.Elems) {
			return dst
		}
		// b is the element the fresh value is inserted after: the one just
		// before it in the returned view, or the root when it is first.
		after := Root
		if pos > 0 {
			after = ret[pos-1]
		}
		i := s.IndexOf(after)
		if i < 0 {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Elems = insertAfter(n.Elems, i, elem)
		return append(dst, n)
	case "remove":
		if len(l.Args) != 1 {
			return dst
		}
		elem, ok := l.Args[0].(string)
		if !ok || elem == Root || !s.Contains(elem) {
			return dst
		}
		ret, ok := l.Ret.([]string)
		if !ok {
			return dst
		}
		if indexOf(ret, elem) >= 0 {
			return dst
		}
		if !isSubsequence(ret, s.Elems) {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Tomb[elem] = true
		return append(dst, n)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Visible()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}

// addAtArgs extracts the (element, index) arguments of an addAt label.
func addAtArgs(l *core.Label) (string, int, bool) {
	if len(l.Args) != 2 {
		return "", 0, false
	}
	elem, okE := l.Args[0].(string)
	k, okK := l.Args[1].(int)
	if !okE || !okK || k < 0 {
		return "", 0, false
	}
	return elem, k, true
}

// insertAt returns a copy of elems with elem inserted at index i.
func insertAt(elems []string, i int, elem string) []string {
	out := make([]string, 0, len(elems)+1)
	out = append(out, elems[:i]...)
	out = append(out, elem)
	out = append(out, elems[i:]...)
	return out
}

// visibleCount returns the number of non-tombstoned, non-sentinel elements in
// the first i positions of the list.
func visibleCount(s ListState, i int) int {
	n := 0
	for j := 0; j < i && j < len(s.Elems); j++ {
		e := s.Elems[j]
		if e == Root || e == Begin || e == End || s.Tomb[e] {
			continue
		}
		n++
	}
	return n
}

// indexOf returns the index of elem in elems, or -1.
func indexOf(elems []string, elem string) int {
	for i, e := range elems {
		if e == elem {
			return i
		}
	}
	return -1
}
