package spec

import (
	"sort"
	"strings"

	"ralin/internal/core"
)

// Sentinel elements of the list specifications.
const (
	// Root is the pre-existing element ◦ of RGA (Listing 1) and of the addAt
	// specifications.
	Root = "◦"
	// Begin is the ◦begin sentinel of Wooki.
	Begin = "◦begin"
	// End is the ◦end sentinel of Wooki.
	End = "◦end"
)

// ListState is the abstract state (l, T) shared by the list specifications:
// the sequence l of every value ever inserted (including sentinels and
// removed values) and the tombstone set T of removed values.
type ListState struct {
	// Elems is the full list l, sentinels included.
	Elems []string
	// Tomb is the tombstone set T.
	Tomb map[string]bool
}

// NewListState returns a list state holding the given sentinel elements.
func NewListState(sentinels ...string) ListState {
	return ListState{Elems: append([]string(nil), sentinels...), Tomb: map[string]bool{}}
}

// CloneAbs deep-copies the state.
func (s ListState) CloneAbs() core.AbsState {
	c := ListState{Elems: append([]string(nil), s.Elems...), Tomb: make(map[string]bool, len(s.Tomb))}
	for k := range s.Tomb {
		c.Tomb[k] = true
	}
	return c
}

// EqualAbs reports equality of the list and the tombstone set.
func (s ListState) EqualAbs(o core.AbsState) bool {
	t, ok := o.(ListState)
	if !ok || len(s.Elems) != len(t.Elems) || len(s.Tomb) != len(t.Tomb) {
		return false
	}
	for i := range s.Elems {
		if s.Elems[i] != t.Elems[i] {
			return false
		}
	}
	for k := range s.Tomb {
		if !t.Tomb[k] {
			return false
		}
	}
	return true
}

// String renders the list with tombstoned elements struck through in
// brackets.
func (s ListState) String() string {
	parts := make([]string, 0, len(s.Elems))
	for _, e := range s.Elems {
		if s.Tomb[e] {
			parts = append(parts, "("+e+")")
			continue
		}
		parts = append(parts, e)
	}
	return strings.Join(parts, "·")
}

// StateKey returns the canonical key (the quoted element sequence plus the
// sorted tombstone set), enabling search memoization.
func (s ListState) StateKey() (string, bool) {
	tombs := make([]string, 0, len(s.Tomb))
	for e := range s.Tomb {
		tombs = append(tombs, e)
	}
	sort.Strings(tombs)
	return quoteJoin(s.Elems) + "|T:" + quoteJoin(tombs), true
}

// Contains reports whether the element occurs in l.
func (s ListState) Contains(elem string) bool {
	return s.IndexOf(elem) >= 0
}

// IndexOf returns the index of elem in l, or -1.
func (s ListState) IndexOf(elem string) int {
	for i, e := range s.Elems {
		if e == elem {
			return i
		}
	}
	return -1
}

// Visible returns l/T without sentinels: the value a read must return.
func (s ListState) Visible() []string {
	out := []string{}
	for _, e := range s.Elems {
		if e == Root || e == Begin || e == End || s.Tomb[e] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// insertAfter returns a copy of the list with elem placed immediately after
// position i.
func insertAfter(elems []string, i int, elem string) []string {
	out := make([]string, 0, len(elems)+1)
	out = append(out, elems[:i+1]...)
	out = append(out, elem)
	out = append(out, elems[i+1:]...)
	return out
}

// isSubsequence reports whether sub is a (not necessarily contiguous)
// subsequence of full.
func isSubsequence(sub, full []string) bool {
	j := 0
	for _, e := range full {
		if j < len(sub) && sub[j] == e {
			j++
		}
	}
	return j == len(sub)
}

// RGA is Spec(RGA) of Example 3.3: a list with an add-after interface.
//
//	addAfter(a, b)  inserts the fresh value b immediately after a;
//	remove(b)       tombstones b (b must be present and not ◦);
//	read() ⇒ l/T    returns the list contents without tombstones.
type RGA struct{}

// Name returns "Spec(RGA)".
func (RGA) Name() string { return "Spec(RGA)" }

// Init returns the list holding only the root element ◦.
func (RGA) Init() core.AbsState { return NewListState(Root) }

// Step applies one label.
func (r RGA) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return r.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (RGA) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(ListState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "addAfter":
		if len(l.Args) != 2 {
			return dst
		}
		after, okA := l.Args[0].(string)
		elem, okB := l.Args[1].(string)
		if !okA || !okB {
			return dst
		}
		i := s.IndexOf(after)
		if i < 0 || s.Contains(elem) {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Elems = insertAfter(n.Elems, i, elem)
		return append(dst, n)
	case "remove":
		if len(l.Args) != 1 {
			return dst
		}
		elem, ok := l.Args[0].(string)
		if !ok || elem == Root || !s.Contains(elem) {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Tomb[elem] = true
		return append(dst, n)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Visible()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}

// Wooki is Spec(Wooki) of Appendix B.3: a list with an add-between interface.
// addBetween(a, b, c) inserts the fresh value b at a nondeterministically
// chosen position strictly between a and c; remove(a) tombstones a;
// read() ⇒ l/T returns the contents. The nondeterminism of the specification
// is resolved deterministically by the implementation (Section 3.2).
type Wooki struct{}

// Name returns "Spec(Wooki)".
func (Wooki) Name() string { return "Spec(Wooki)" }

// Init returns the list holding the two sentinels.
func (Wooki) Init() core.AbsState { return NewListState(Begin, End) }

// Step applies one label.
func (w Wooki) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return w.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (Wooki) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(ListState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "addBetween":
		if len(l.Args) != 3 {
			return dst
		}
		a, okA := l.Args[0].(string)
		b, okB := l.Args[1].(string)
		c, okC := l.Args[2].(string)
		if !okA || !okB || !okC {
			return dst
		}
		if a == End || c == Begin || b == Begin || b == End || s.Contains(b) {
			return dst
		}
		ia, ic := s.IndexOf(a), s.IndexOf(c)
		if ia < 0 || ic < 0 || ia >= ic {
			return dst
		}
		// One successor per insertion point strictly between a and c.
		for i := ia; i < ic; i++ {
			n := s.CloneAbs().(ListState)
			n.Elems = insertAfter(n.Elems, i, b)
			dst = append(dst, n)
		}
		return dst
	case "remove":
		if len(l.Args) != 1 {
			return dst
		}
		elem, ok := l.Args[0].(string)
		if !ok || elem == Begin || elem == End || !s.Contains(elem) {
			return dst
		}
		n := s.CloneAbs().(ListState)
		n.Tomb[elem] = true
		return append(dst, n)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Visible()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}
