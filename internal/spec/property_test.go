package spec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ralin/internal/core"
)

// TestCounterSpecBalanceProperty: any sequence of incs and decs followed by a
// read of the running balance is admitted; a read of any other value is not.
func TestCounterSpecBalanceProperty(t *testing.T) {
	prop := func(flips []bool) bool {
		var seq []*core.Label
		balance := int64(0)
		for _, up := range flips {
			if up {
				seq = append(seq, upd("inc"))
				balance++
			} else {
				seq = append(seq, upd("dec"))
				balance--
			}
		}
		good := append(append([]*core.Label(nil), seq...), qry("read", balance))
		bad := append(append([]*core.Label(nil), seq...), qry("read", balance+1))
		return core.Admits(Counter{}, good) && !core.Admits(Counter{}, bad)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterSpecLastWriteProperty: a read after a sequence of writes must
// return the last written value.
func TestRegisterSpecLastWriteProperty(t *testing.T) {
	prop := func(values []string) bool {
		var seq []*core.Label
		last := ""
		for _, v := range values {
			seq = append(seq, upd("write", v))
			last = v
		}
		good := append(append([]*core.Label(nil), seq...), qry("read", last))
		return core.Admits(Register{}, good)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSetSpecModelProperty: Spec(Set) agrees with a map-based model on random
// add/remove/read sequences.
func TestSetSpecModelProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := map[string]bool{}
		var seq []*core.Label
		elems := []string{"a", "b", "c"}
		for i := 0; i < 12; i++ {
			e := elems[rng.Intn(len(elems))]
			switch rng.Intn(3) {
			case 0:
				seq = append(seq, upd("add", e))
				model[e] = true
			case 1:
				seq = append(seq, upd("remove", e))
				delete(model, e)
			default:
				var want []string
				for k := range model {
					want = append(want, k)
				}
				seq = append(seq, qry("read", core.SortedSet(want)))
			}
		}
		return core.Admits(Set{}, seq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRGASpecRandomInsertionsProperty: inserting fresh elements after random
// existing ones, interleaved with removals and exact reads, is always
// admitted, and the list keeps every inserted element (tombstoned or not).
func TestRGASpecRandomInsertionsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		state := core.AbsState(NewListState(Root))
		var inserted []string
		for i := 0; i < 10; i++ {
			ls := state.(ListState)
			var l *core.Label
			switch rng.Intn(4) {
			case 0, 1:
				after := Root
				if len(inserted) > 0 && rng.Intn(2) == 0 {
					after = inserted[rng.Intn(len(inserted))]
				}
				elem := fmt.Sprintf("e%d", i)
				inserted = append(inserted, elem)
				l = upd("addAfter", after, elem)
			case 2:
				if len(inserted) == 0 {
					l = qry("read", ls.Visible())
					break
				}
				victim := inserted[rng.Intn(len(inserted))]
				if ls.Tomb[victim] {
					l = qry("read", ls.Visible())
					break
				}
				l = upd("remove", victim)
			default:
				l = qry("read", ls.Visible())
			}
			next := (RGA{}).Step(state, l)
			if len(next) == 0 {
				return false
			}
			state = next[0]
		}
		final := state.(ListState)
		return len(final.Elems) == len(inserted)+1 // every insertion is retained (plus the root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAddAt1MatchesSliceModel: Spec(addAt1) agrees with a plain slice model.
func TestAddAt1MatchesSliceModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var model []string
		var seq []*core.Label
		for i := 0; i < 10; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				elem := fmt.Sprintf("x%d", i)
				k := rng.Intn(len(model) + 2)
				seq = append(seq, upd("addAt", elem, k))
				if k > len(model) {
					k = len(model)
				}
				model = append(model[:k:k], append([]string{elem}, model[k:]...)...)
			default:
				seq = append(seq, qry("read", append([]string{}, model...)))
			}
		}
		return core.Admits(AddAt1{}, seq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecsRejectMalformedLabels(t *testing.T) {
	// Every specification rejects labels with wrong state types, malformed
	// arguments, or unknown methods rather than panicking.
	specs := []core.Spec{Counter{}, Register{}, MVRegister{}, Set{}, ORSet{}, RGA{}, Wooki{}, AddAt1{}, AddAt2{}, AddAt3{}}
	badLabels := []*core.Label{
		{Method: "definitely-not-a-method"},
		{Method: "add"},
		{Method: "addAfter", Args: []core.Value{1, 2}},
		{Method: "addAt", Args: []core.Value{"x", "not-an-int"}},
		{Method: "addBetween", Args: []core.Value{1, 2, 3}},
		{Method: "write", Args: []core.Value{42}},
		{Method: "remove"},
		{Method: "removeIds", Args: []core.Value{"not-pairs"}},
		{Method: "readIds"},
		{Method: "read", Ret: 42},
	}
	for _, s := range specs {
		// Wrong abstract state type.
		if got := s.Step(CounterState(0), &core.Label{Method: "read"}); s.Name() != "Spec(Counter)" && len(got) != 0 {
			t.Errorf("%s accepted a foreign state type", s.Name())
		}
		for _, l := range badLabels {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s panicked on %v: %v", s.Name(), l, r)
					}
				}()
				s.Step(s.Init(), l)
			}()
		}
	}
}

func TestListSpecsRejectWrongIndexTypes(t *testing.T) {
	if core.Admits(AddAt2{}, []*core.Label{upd("addAt", "a", -2)}) {
		t.Fatal("negative index admitted by addAt2")
	}
	if core.Admits(AddAt3{}, []*core.Label{{Method: "addAt", Args: []core.Value{"a", 0}, Kind: core.KindUpdate}}) {
		t.Fatal("addAt3 must reject labels without a returned local view")
	}
	if core.Admits(AddAt3{}, []*core.Label{{Method: "remove", Args: []core.Value{"a"}, Ret: []string{}, Kind: core.KindUpdate}}) {
		t.Fatal("addAt3 must reject removing an absent element")
	}
	if core.Admits(AddAt3{}, []*core.Label{
		{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		{Method: "remove", Args: []core.Value{"a"}, Kind: core.KindUpdate},
	}) {
		t.Fatal("addAt3 remove must carry a returned local view")
	}
}

func TestWookiSpecReadTypeMismatch(t *testing.T) {
	if core.Admits(Wooki{}, []*core.Label{qry("read", "not-a-slice")}) {
		t.Fatal("mistyped read admitted")
	}
	if core.Admits(RGA{}, []*core.Label{qry("read", 42)}) {
		t.Fatal("mistyped read admitted")
	}
	if core.Admits(MVRegister{}, []*core.Label{qry("read", 42)}) {
		t.Fatal("mistyped read admitted")
	}
}
