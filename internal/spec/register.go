package spec

import (
	"sort"
	"strconv"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
)

// RegisterState is the abstract state of Spec(Reg): the current value of the
// register (Appendix B.2). The empty string is the initial, unwritten value.
type RegisterState string

// CloneAbs returns the state itself.
func (s RegisterState) CloneAbs() core.AbsState { return s }

// EqualAbs reports string equality.
func (s RegisterState) EqualAbs(o core.AbsState) bool {
	r, ok := o.(RegisterState)
	return ok && r == s
}

// String renders the register value.
func (s RegisterState) String() string { return string(s) }

// StateKey returns the canonical key (the value itself), enabling search
// memoization.
func (s RegisterState) StateKey() (string, bool) { return string(s), true }

// Register is Spec(Reg) of Appendix B.2: write(a) sets the value, read() ⇒ a
// returns it. It is the specification of the LWW-Register.
type Register struct{}

// Name returns "Spec(Reg)".
func (Register) Name() string { return "Spec(Reg)" }

// Init returns the empty register.
func (Register) Init() core.AbsState { return RegisterState("") }

// Step applies one label.
func (r Register) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return r.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (Register) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(RegisterState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "write":
		if len(l.Args) != 1 {
			return dst
		}
		v, ok := l.Args[0].(string)
		if !ok {
			return dst
		}
		return append(dst, RegisterState(v))
	case "read":
		ret, ok := l.Ret.(string)
		if ok && ret == string(s) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}

// MVPair is an element tagged with the version vector that wrote it, the
// identifiers of Spec(MV-Reg) in Appendix E.1.
type MVPair struct {
	Elem string
	VV   clock.VersionVector
}

// MVRegState is the abstract state of Spec(MV-Reg): a set of (element,
// version vector) pairs whose vectors are pairwise incomparable.
type MVRegState []MVPair

// CloneAbs deep-copies the pair set.
func (s MVRegState) CloneAbs() core.AbsState {
	c := make(MVRegState, len(s))
	for i, p := range s {
		c[i] = MVPair{Elem: p.Elem, VV: p.VV.Copy()}
	}
	return c
}

// EqualAbs reports set equality of the pairs.
func (s MVRegState) EqualAbs(o core.AbsState) bool {
	t, ok := o.(MVRegState)
	if !ok || len(s) != len(t) {
		return false
	}
	for _, p := range s {
		found := false
		for _, q := range t {
			if p.Elem == q.Elem && p.VV.Equal(q.VV) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Values returns the sorted set of element values currently held.
func (s MVRegState) Values() []string {
	elems := make([]string, 0, len(s))
	for _, p := range s {
		elems = append(elems, p.Elem)
	}
	return core.SortedSet(elems)
}

// String renders the state.
func (s MVRegState) String() string {
	return core.FormatValue(s.Values())
}

// StateKey returns the canonical key: the quoted elements with their writing
// version vectors (clock.VersionVector renders with replicas sorted), sorted
// lexicographically. Enables search memoization.
func (s MVRegState) StateKey() (string, bool) {
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = strconv.Quote(p.Elem) + "@" + p.VV.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ","), true
}

// MVRegister is Spec(MV-Reg) of Appendix E.1: write(a, id), where id is a
// version vector not dominated by any identifier in the state, replaces every
// dominated pair; read() ⇒ S returns the set of held values.
type MVRegister struct{}

// Name returns "Spec(MV-Reg)".
func (MVRegister) Name() string { return "Spec(MV-Reg)" }

// Init returns the empty register.
func (MVRegister) Init() core.AbsState { return MVRegState{} }

// Step applies one label. Writes are labels "write" with arguments
// (element, version vector); the runtime's query-update rewriting produces
// them from plain write(a) operations.
func (m MVRegister) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return m.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (MVRegister) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(MVRegState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "write":
		if len(l.Args) != 2 {
			return dst
		}
		elem, okE := l.Args[0].(string)
		vv, okV := l.Args[1].(clock.VersionVector)
		if !okE || !okV {
			return dst
		}
		// Precondition: the identifier is not less than or equal to any
		// identifier already present.
		for _, p := range s {
			if vv.Leq(p.VV) {
				return dst
			}
		}
		next := MVRegState{}
		for _, p := range s {
			if p.VV.Less(vv) {
				continue
			}
			next = append(next, MVPair{Elem: p.Elem, VV: p.VV.Copy()})
		}
		next = append(next, MVPair{Elem: elem, VV: vv.Copy()})
		return append(dst, next)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Values()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}
