// Package spec contains the sequential specifications of Section 3.2 and the
// appendices: Counter, LWW-Register, Set, OR-Set, Multi-Value Register, RGA,
// Wooki and the three addAt list specifications of Appendix C. Each
// specification implements core.Spec: an operational transition relation over
// abstract states, used by the RA-linearizability checker and by the
// refinement proof obligations.
package spec

import (
	"fmt"
	"strconv"

	"ralin/internal/core"
)

// CounterState is the abstract state of Spec(Counter): an integer
// (Example 3.2).
type CounterState int64

// CloneAbs returns the state itself (integers are immutable).
func (s CounterState) CloneAbs() core.AbsState { return s }

// EqualAbs reports integer equality.
func (s CounterState) EqualAbs(o core.AbsState) bool {
	c, ok := o.(CounterState)
	return ok && c == s
}

// String renders the counter value.
func (s CounterState) String() string { return fmt.Sprintf("%d", int64(s)) }

// StateKey returns the canonical key (the value itself), enabling search
// memoization.
func (s CounterState) StateKey() (string, bool) { return strconv.FormatInt(int64(s), 10), true }

// Counter is Spec(Counter) of Example 3.2 (and Appendix B.1): inc() increases
// the value, dec() decreases it, read() ⇒ k returns it.
type Counter struct{}

// Name returns "Spec(Counter)".
func (Counter) Name() string { return "Spec(Counter)" }

// Init returns the zero counter.
func (Counter) Init() core.AbsState { return CounterState(0) }

// Step applies one label.
func (c Counter) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return c.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path; dst is returned unchanged when the label is
// not admitted).
func (Counter) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(CounterState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "inc":
		return append(dst, s+1)
	case "dec":
		return append(dst, s-1)
	case "read":
		ret, ok := l.Ret.(int64)
		if ok && ret == int64(s) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}
