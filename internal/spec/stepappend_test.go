package spec

import (
	"fmt"
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
)

// stepAppendDriver describes how to fuzz one specification: randomLabel
// crafts a label — admitted, rejected or malformed — from the current state,
// so the equivalence is exercised on both polarities of every method.
type stepAppendDriver struct {
	spec        core.Spec
	randomLabel func(rng *rand.Rand, step int, phi core.AbsState) *core.Label
}

// sentinel is a state no specification under test can produce; its presence
// (by interface identity) proves StepAppend left the dst prefix untouched.
var sentinel = core.AbsState(CounterState(424242))

// checkStepAppendEquivalence compares Step and StepAppend on one transition:
// same successors in the same order, dst prefix preserved, nil-dst behaviour
// matching Step's.
func checkStepAppendEquivalence(t *testing.T, s core.Spec, phi core.AbsState, l *core.Label) []core.AbsState {
	t.Helper()
	sa, ok := s.(core.StepAppender)
	if !ok {
		t.Fatalf("%s does not implement core.StepAppender", s.Name())
	}
	want := s.Step(phi, l)
	bare := sa.StepAppend(nil, phi, l)
	if len(bare) != len(want) {
		t.Fatalf("%s %v: StepAppend(nil) returned %d states, Step %d", s.Name(), l, len(bare), len(want))
	}
	dst := sa.StepAppend([]core.AbsState{sentinel}, phi, l)
	if len(dst) != len(want)+1 || dst[0] != sentinel {
		t.Fatalf("%s %v: StepAppend clobbered the dst prefix (len %d, head %v)", s.Name(), l, len(dst), dst[0])
	}
	for i, w := range want {
		if !bare[i].EqualAbs(w) || !dst[i+1].EqualAbs(w) {
			t.Fatalf("%s %v: successor %d differs: Step=%v StepAppend=%v/%v", s.Name(), l, i, w, bare[i], dst[i+1])
		}
	}
	return want
}

// TestStepAppendMatchesStepEverySpec fuzzes every specification in this
// package with randomized (valid and invalid) labels and requires StepAppend
// to agree with Step transition for transition.
func TestStepAppendMatchesStepEverySpec(t *testing.T) {
	elems := []string{"a", "b", "c"}
	fresh := func(step int) string { return fmt.Sprintf("e%d", step) }
	pick := func(rng *rand.Rand, ss []string) string {
		if len(ss) == 0 {
			return "absent"
		}
		return ss[rng.Intn(len(ss))]
	}
	// maybeWrong perturbs a correct read return value half the time so
	// rejected reads are exercised too.
	maybeWrong := func(rng *rand.Rand, v []string) []string {
		if rng.Intn(2) == 0 {
			return append(append([]string{}, v...), "bogus")
		}
		return v
	}
	listLabel := func(addMethod string) func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
		return func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			s := phi.(ListState)
			switch rng.Intn(4) {
			case 0:
				switch addMethod {
				case "addAfter":
					return upd("addAfter", pick(rng, s.Elems), fresh(step))
				case "addBetween":
					return upd("addBetween", pick(rng, s.Elems), fresh(step), End)
				default: // addAt
					return upd("addAt", fresh(step), rng.Intn(len(s.Elems)+2))
				}
			case 1:
				return upd("remove", pick(rng, s.Elems))
			case 2:
				return qry("read", maybeWrong(rng, s.Visible()))
			default:
				return upd(addMethod, 7) // malformed arguments
			}
		}
	}
	drivers := []stepAppendDriver{
		{Counter{}, func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			v := int64(phi.(CounterState))
			switch rng.Intn(4) {
			case 0:
				return upd("inc")
			case 1:
				return upd("dec")
			case 2:
				return qry("read", v)
			default:
				return qry("read", v+int64(rng.Intn(3))-1)
			}
		}},
		{Register{}, func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			switch rng.Intn(3) {
			case 0:
				return upd("write", pick(rng, elems))
			case 1:
				return qry("read", string(phi.(RegisterState)))
			default:
				return qry("read", pick(rng, elems))
			}
		}},
		{MVRegister{}, func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			s := phi.(MVRegState)
			switch rng.Intn(3) {
			case 0:
				// A vector dominating everything present (admitted) or a
				// possibly-dominated one (often rejected).
				vv := clock.NewVersionVector()
				for _, p := range s {
					vv = vv.Merge(p.VV)
				}
				if rng.Intn(2) == 0 {
					vv = vv.Increment(clock.ReplicaID(rng.Intn(2)))
				}
				return upd("write", pick(rng, elems), vv)
			case 1:
				return qry("read", s.Values())
			default:
				return qry("read", maybeWrong(rng, s.Values()))
			}
		}},
		{Set{}, func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			s := phi.(SetState)
			switch rng.Intn(4) {
			case 0:
				return upd("add", pick(rng, elems))
			case 1:
				return upd("remove", pick(rng, elems))
			case 2:
				return qry("read", s.Values())
			default:
				return qry("read", maybeWrong(rng, s.Values()))
			}
		}},
		{ORSet{}, func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			s := phi.(ORSetState)
			switch rng.Intn(4) {
			case 0:
				return upd("add", pick(rng, elems), uint64(step+1))
			case 1:
				pairs := s.Pairs()
				if len(pairs) > 1 {
					pairs = pairs[:1+rng.Intn(len(pairs))]
				}
				return upd("removeIds", pairs)
			case 2:
				e := pick(rng, elems)
				var want []core.Pair
				for p := range s {
					if p.Elem == e {
						want = append(want, p)
					}
				}
				want = core.SortPairs(want)
				if len(want) == 0 {
					want = []core.Pair{}
				}
				return qry("readIds", e, want)
			default:
				return qry("read", maybeWrong(rng, s.Values()))
			}
		}},
		{RGA{}, listLabel("addAfter")},
		{Wooki{}, listLabel("addBetween")},
		{AddAt1{}, listLabel("addAt")},
		{AddAt2{}, listLabel("addAt")},
		{AddAt3{}, func(rng *rand.Rand, step int, phi core.AbsState) *core.Label {
			s := phi.(ListState)
			visible := s.Visible()
			switch rng.Intn(4) {
			case 0:
				// Craft the inserting replica's local view: the fresh element
				// at min(k, |view|) within the current visible subsequence.
				elem := fresh(step)
				k := rng.Intn(len(visible) + 2)
				pos := k
				if pos > len(visible) {
					pos = len(visible)
				}
				ret := make([]string, 0, len(visible)+1)
				ret = append(ret, visible[:pos]...)
				ret = append(ret, elem)
				ret = append(ret, visible[pos:]...)
				l := upd("addAt", elem, k)
				l.Ret = ret
				return l
			case 1:
				victim := pick(rng, s.Elems)
				var view []string
				for _, e := range visible {
					if e != victim {
						view = append(view, e)
					}
				}
				l := upd("remove", victim)
				l.Ret = view
				return l
			case 2:
				return qry("read", maybeWrong(rng, visible))
			default:
				return upd("addAt", fresh(step), -1) // malformed index
			}
		}},
	}

	for _, drv := range drivers {
		t.Run(drv.spec.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				phi := drv.spec.Init()
				admitted := 0
				for step := 0; step < 30; step++ {
					l := drv.randomLabel(rng, step, phi)
					succs := checkStepAppendEquivalence(t, drv.spec, phi, l)
					if len(succs) > 0 {
						admitted++
						phi = succs[rng.Intn(len(succs))]
					}
				}
				if admitted == 0 {
					t.Fatalf("seed %d: no admitted transitions — the generator is too weak", seed)
				}
			}
		})
	}
}
