package spec

import (
	"strconv"
	"strings"

	"ralin/internal/core"
)

// SetState is the abstract state of Spec(Set): a plain set of values
// (Appendix E.2). It is the specification of the LWW-Element-Set and the
// 2P-Set, and the specification against which the Figure 5a execution of the
// OR-Set is shown not to be linearizable.
type SetState map[string]bool

// CloneAbs deep-copies the set.
func (s SetState) CloneAbs() core.AbsState {
	c := make(SetState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// EqualAbs reports set equality.
func (s SetState) EqualAbs(o core.AbsState) bool {
	t, ok := o.(SetState)
	if !ok || len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// Values returns the sorted contents of the set.
func (s SetState) Values() []string {
	elems := make([]string, 0, len(s))
	for k := range s {
		elems = append(elems, k)
	}
	return core.SortedSet(elems)
}

// String renders the set.
func (s SetState) String() string { return core.FormatValue(s.Values()) }

// StateKey returns the canonical key (sorted quoted elements), enabling
// search memoization.
func (s SetState) StateKey() (string, bool) { return quoteJoin(s.Values()), true }

// quoteJoin renders a sorted string slice unambiguously (elements are quoted
// so separators inside values cannot collide).
func quoteJoin(elems []string) string {
	var b strings.Builder
	for _, e := range elems {
		b.WriteString(strconv.Quote(e))
		b.WriteByte(',')
	}
	return b.String()
}

// Set is Spec(Set) of Appendix E.2: add(a) inserts, remove(a) deletes,
// read() ⇒ S returns the sorted contents.
type Set struct{}

// Name returns "Spec(Set)".
func (Set) Name() string { return "Spec(Set)" }

// Init returns the empty set.
func (Set) Init() core.AbsState { return SetState{} }

// Step applies one label.
func (t Set) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return t.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (Set) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(SetState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "add":
		if len(l.Args) != 1 {
			return dst
		}
		v, ok := l.Args[0].(string)
		if !ok {
			return dst
		}
		n := s.CloneAbs().(SetState)
		n[v] = true
		return append(dst, n)
	case "remove":
		if len(l.Args) != 1 {
			return dst
		}
		v, ok := l.Args[0].(string)
		if !ok {
			return dst
		}
		n := s.CloneAbs().(SetState)
		delete(n, v)
		return append(dst, n)
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Values()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}

// ORSetState is the abstract state of Spec(OR-Set) (Example 3.4): a set of
// element-identifier pairs.
type ORSetState map[core.Pair]bool

// CloneAbs deep-copies the pair set.
func (s ORSetState) CloneAbs() core.AbsState {
	c := make(ORSetState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// EqualAbs reports set equality.
func (s ORSetState) EqualAbs(o core.AbsState) bool {
	t, ok := o.(ORSetState)
	if !ok || len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// Pairs returns the sorted element-identifier pairs.
func (s ORSetState) Pairs() []core.Pair {
	out := make([]core.Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	return core.SortPairs(out)
}

// Values returns the sorted set of element values.
func (s ORSetState) Values() []string {
	elems := make([]string, 0, len(s))
	for p := range s {
		elems = append(elems, p.Elem)
	}
	return core.SortedSet(elems)
}

// String renders the pair set.
func (s ORSetState) String() string { return core.FormatValue(s.Pairs()) }

// StateKey returns the canonical key (sorted quoted pairs), enabling search
// memoization.
func (s ORSetState) StateKey() (string, bool) {
	var b strings.Builder
	for _, p := range s.Pairs() {
		b.WriteString(strconv.Quote(p.Elem))
		b.WriteByte('#')
		b.WriteString(strconv.FormatUint(p.ID, 10))
		b.WriteByte(',')
	}
	return b.String(), true
}

// ORSet is Spec(OR-Set) of Example 3.4, the specification of the rewritten
// OR-Set operations:
//
//	add(a, id)        adds the pair (a, id), which must be fresh;
//	removeIds(S)      removes the pairs in S;
//	readIds(a) ⇒ S    returns the pairs with element a;
//	read() ⇒ A        returns the set of element values.
type ORSet struct{}

// Name returns "Spec(OR-Set)".
func (ORSet) Name() string { return "Spec(OR-Set)" }

// Init returns the empty pair set.
func (ORSet) Init() core.AbsState { return ORSetState{} }

// Step applies one label.
func (o ORSet) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	return o.StepAppend(nil, phi, l)
}

// StepAppend appends the successors of phi under l to dst (the
// core.StepAppender fast path).
func (ORSet) StepAppend(dst []core.AbsState, phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(ORSetState)
	if !ok {
		return dst
	}
	switch l.Method {
	case "add":
		if len(l.Args) != 2 {
			return dst
		}
		elem, okE := l.Args[0].(string)
		id, okI := l.Args[1].(uint64)
		if !okE || !okI {
			return dst
		}
		p := core.Pair{Elem: elem, ID: id}
		if s[p] {
			return dst // identifiers are unique; re-adding is not admitted
		}
		n := s.CloneAbs().(ORSetState)
		n[p] = true
		return append(dst, n)
	case "removeIds":
		if len(l.Args) != 1 {
			return dst
		}
		pairs, ok := l.Args[0].([]core.Pair)
		if !ok {
			return dst
		}
		n := s.CloneAbs().(ORSetState)
		for _, p := range pairs {
			delete(n, p)
		}
		return append(dst, n)
	case "readIds":
		if len(l.Args) != 1 {
			return dst
		}
		elem, ok := l.Args[0].(string)
		if !ok {
			return dst
		}
		var want []core.Pair
		for p := range s {
			if p.Elem == elem {
				want = append(want, p)
			}
		}
		want = core.SortPairs(want)
		if len(want) == 0 {
			want = []core.Pair{}
		}
		if core.ValueEqual(l.Ret, want) {
			return append(dst, s)
		}
		return dst
	case "read":
		ret, ok := l.Ret.([]string)
		if ok && core.ValueEqual(ret, s.Values()) {
			return append(dst, s)
		}
		return dst
	default:
		return dst
	}
}
