package spec

import (
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
)

func upd(method string, args ...core.Value) *core.Label {
	return &core.Label{Method: method, Args: args, Kind: core.KindUpdate}
}

func qry(method string, ret core.Value, args ...core.Value) *core.Label {
	return &core.Label{Method: method, Args: args, Ret: ret, Kind: core.KindQuery}
}

func TestCounterSpec(t *testing.T) {
	s := Counter{}
	if s.Name() != "Spec(Counter)" {
		t.Fatal("name wrong")
	}
	seq := []*core.Label{upd("inc"), upd("inc"), upd("dec"), qry("read", int64(1))}
	if !core.Admits(s, seq) {
		t.Fatal("valid counter sequence rejected")
	}
	if core.Admits(s, []*core.Label{qry("read", int64(3))}) {
		t.Fatal("wrong read admitted")
	}
	if core.Admits(s, []*core.Label{upd("bogus")}) {
		t.Fatal("unknown method admitted")
	}
	if core.Admits(s, []*core.Label{qry("read", "nan")}) {
		t.Fatal("mistyped return admitted")
	}
	st := CounterState(5)
	if !st.CloneAbs().EqualAbs(st) || st.String() != "5" {
		t.Fatal("counter state helpers wrong")
	}
	if st.EqualAbs(RegisterState("5")) {
		t.Fatal("cross-type equality must fail")
	}
}

func TestRegisterSpec(t *testing.T) {
	s := Register{}
	seq := []*core.Label{upd("write", "x"), upd("write", "y"), qry("read", "y")}
	if !core.Admits(s, seq) {
		t.Fatal("valid register sequence rejected")
	}
	if core.Admits(s, []*core.Label{upd("write", "x"), qry("read", "z")}) {
		t.Fatal("wrong read admitted")
	}
	if !core.Admits(s, []*core.Label{qry("read", "")}) {
		t.Fatal("initial read of the empty value must be admitted")
	}
	if core.Admits(s, []*core.Label{upd("write")}) {
		t.Fatal("write without argument admitted")
	}
	if core.Admits(s, []*core.Label{upd("write", 7)}) {
		t.Fatal("mistyped write admitted")
	}
	if core.Admits(s, []*core.Label{upd("mystery")}) {
		t.Fatal("unknown method admitted")
	}
}

func TestMVRegisterSpec(t *testing.T) {
	s := MVRegister{}
	v1 := clock.NewVersionVector()
	v1.Increment(1)
	v2 := clock.NewVersionVector()
	v2.Increment(2)
	v12 := v1.Merge(v2)
	v12.Increment(1)

	// Two concurrent writes are both kept.
	seq := []*core.Label{
		upd("write", "a", v1),
		upd("write", "b", v2),
		qry("read", []string{"a", "b"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("concurrent writes must both be visible")
	}
	// A dominating write replaces both.
	seq2 := []*core.Label{
		upd("write", "a", v1),
		upd("write", "b", v2),
		upd("write", "c", v12),
		qry("read", []string{"c"}),
	}
	if !core.Admits(s, seq2) {
		t.Fatal("dominating write must replace dominated values")
	}
	// Writing with a dominated identifier is not admitted.
	seq3 := []*core.Label{
		upd("write", "a", v12),
		upd("write", "b", v1),
	}
	if core.Admits(s, seq3) {
		t.Fatal("dominated identifier must be rejected")
	}
	// Malformed labels.
	if core.Admits(s, []*core.Label{upd("write", "a")}) {
		t.Fatal("write without identifier admitted")
	}
	if core.Admits(s, []*core.Label{upd("whatever")}) {
		t.Fatal("unknown method admitted")
	}
	// State helpers.
	st := MVRegState{{Elem: "a", VV: v1}}
	if !st.CloneAbs().EqualAbs(st) || st.String() != "[a]" {
		t.Fatal("state helpers wrong")
	}
	if st.EqualAbs(MVRegState{{Elem: "a", VV: v2}}) {
		t.Fatal("different vectors must not be equal")
	}
}

func TestSetSpec(t *testing.T) {
	s := Set{}
	seq := []*core.Label{
		upd("add", "a"), upd("add", "b"), upd("remove", "a"),
		qry("read", []string{"b"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("valid set sequence rejected")
	}
	if core.Admits(s, append(seq[:3:3], qry("read", []string{"a", "b"}))) {
		t.Fatal("stale read admitted")
	}
	if !core.Admits(s, []*core.Label{upd("remove", "ghost"), qry("read", []string{})}) {
		t.Fatal("removing an absent element is a no-op in Spec(Set)")
	}
	if core.Admits(s, []*core.Label{upd("add")}) || core.Admits(s, []*core.Label{upd("hm", "x")}) {
		t.Fatal("malformed labels admitted")
	}
	st := SetState{"a": true}
	if !st.CloneAbs().EqualAbs(st) || st.String() != "[a]" {
		t.Fatal("state helpers wrong")
	}
}

func TestORSetSpec(t *testing.T) {
	s := ORSet{}
	addA1 := upd("add", "a", uint64(1))
	addA2 := upd("add", "a", uint64(2))
	remA1 := upd("removeIds", []core.Pair{{Elem: "a", ID: 1}})
	seq := []*core.Label{
		addA1, addA2, remA1,
		qry("readIds", []core.Pair{{Elem: "a", ID: 2}}, "a"),
		qry("read", []string{"a"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("valid OR-Set sequence rejected")
	}
	// Removing both identifiers empties the set.
	seq2 := []*core.Label{
		addA1, addA2,
		upd("removeIds", []core.Pair{{Elem: "a", ID: 1}, {Elem: "a", ID: 2}}),
		qry("read", []string{}),
		qry("readIds", []core.Pair{}, "a"),
	}
	if !core.Admits(s, seq2) {
		t.Fatal("emptying the OR-Set rejected")
	}
	// Re-adding the same identifier is not admitted.
	if core.Admits(s, []*core.Label{addA1, addA1}) {
		t.Fatal("duplicate identifier admitted")
	}
	if core.Admits(s, []*core.Label{upd("add", "a")}) {
		t.Fatal("add without identifier admitted")
	}
	if core.Admits(s, []*core.Label{upd("huh", "a")}) {
		t.Fatal("unknown method admitted")
	}
	st := ORSetState{{Elem: "a", ID: 1}: true}
	if !st.CloneAbs().EqualAbs(st) || st.String() != "[a#1]" {
		t.Fatal("state helpers wrong")
	}
	if len(st.Values()) != 1 || st.Values()[0] != "a" {
		t.Fatal("Values wrong")
	}
}

func TestRGASpec(t *testing.T) {
	s := RGA{}
	seq := []*core.Label{
		upd("addAfter", Root, "a"),
		upd("addAfter", "a", "b"),
		upd("addAfter", "a", "c"),
		qry("read", []string{"a", "c", "b"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("add-after sequence rejected")
	}
	// Removing hides the element from reads but keeps it addressable.
	seq2 := []*core.Label{
		upd("addAfter", Root, "a"),
		upd("remove", "a"),
		upd("addAfter", "a", "b"),
		qry("read", []string{"b"}),
	}
	if !core.Admits(s, seq2) {
		t.Fatal("adding after a removed element must stay possible")
	}
	// Preconditions.
	if core.Admits(s, []*core.Label{upd("addAfter", "ghost", "x")}) {
		t.Fatal("adding after an absent element admitted")
	}
	if core.Admits(s, []*core.Label{upd("addAfter", Root, "a"), upd("addAfter", Root, "a")}) {
		t.Fatal("duplicate element admitted")
	}
	if core.Admits(s, []*core.Label{upd("remove", "ghost")}) {
		t.Fatal("removing an absent element admitted")
	}
	if core.Admits(s, []*core.Label{upd("remove", Root)}) {
		t.Fatal("removing the root admitted")
	}
	if core.Admits(s, []*core.Label{upd("addAfter", Root, "a"), qry("read", []string{})}) {
		t.Fatal("stale read admitted")
	}
	st := s.Init().(ListState)
	if st.String() != Root {
		t.Fatalf("unexpected initial state rendering %q", st.String())
	}
}

func TestWookiSpecNondeterminism(t *testing.T) {
	s := Wooki{}
	base := []*core.Label{
		upd("addBetween", Begin, "a", End),
		upd("addBetween", Begin, "c", End),
	}
	// c can land before or after a: both reads are admitted.
	for _, want := range [][]string{{"a", "c"}, {"c", "a"}} {
		seq := append(append([]*core.Label(nil), base...), qry("read", want))
		if !core.Admits(s, seq) {
			t.Fatalf("read %v must be admitted", want)
		}
	}
	// Inserting strictly between a and c cannot produce an order where b is
	// outside.
	seq := []*core.Label{
		upd("addBetween", Begin, "a", End),
		upd("addBetween", "a", "c", End),
		upd("addBetween", "a", "b", "c"),
		qry("read", []string{"a", "b", "c"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("in-between read rejected")
	}
	bad := append(append([]*core.Label(nil), seq[:3]...), qry("read", []string{"b", "a", "c"}))
	if core.Admits(s, bad) {
		t.Fatal("read placing b outside its bounds admitted")
	}
	// Preconditions.
	if core.Admits(s, []*core.Label{upd("addBetween", End, "x", Begin)}) {
		t.Fatal("inverted sentinels admitted")
	}
	if core.Admits(s, []*core.Label{upd("addBetween", Begin, Begin, End)}) {
		t.Fatal("inserting a sentinel admitted")
	}
	if core.Admits(s, []*core.Label{upd("remove", Begin)}) {
		t.Fatal("removing a sentinel admitted")
	}
	if core.Admits(s, []*core.Label{upd("remove", "nope")}) {
		t.Fatal("removing an absent element admitted")
	}
	// Remove hides the element from reads.
	seq3 := []*core.Label{
		upd("addBetween", Begin, "a", End),
		upd("remove", "a"),
		qry("read", []string{}),
	}
	if !core.Admits(s, seq3) {
		t.Fatal("read after remove rejected")
	}
}

func TestAddAt1Spec(t *testing.T) {
	s := AddAt1{}
	seq := []*core.Label{
		upd("addAt", "a", 0),
		upd("addAt", "b", 0),
		upd("addAt", "c", 1),
		qry("read", []string{"b", "c", "a"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("valid addAt1 sequence rejected")
	}
	// Index past the end appends.
	seq2 := []*core.Label{
		upd("addAt", "a", 5),
		qry("read", []string{"a"}),
	}
	if !core.Admits(s, seq2) {
		t.Fatal("append-at-large-index rejected")
	}
	// Remove actually deletes.
	seq3 := []*core.Label{
		upd("addAt", "a", 0),
		upd("addAt", "b", 1),
		upd("remove", "a"),
		qry("read", []string{"b"}),
	}
	if !core.Admits(s, seq3) {
		t.Fatal("remove sequence rejected")
	}
	if core.Admits(s, []*core.Label{upd("remove", "ghost")}) {
		t.Fatal("removing an absent element admitted")
	}
	if core.Admits(s, []*core.Label{upd("addAt", "a", -1)}) {
		t.Fatal("negative index admitted")
	}
	if core.Admits(s, []*core.Label{upd("addAt", "a", 0), upd("addAt", "a", 0)}) {
		t.Fatal("duplicate element admitted")
	}
}

func TestAddAt2SpecNondeterministicAroundTombstones(t *testing.T) {
	s := AddAt2{}
	// Build a·b, remove a; inserting at visible index 0 may land before or
	// after the tombstoned a.
	base := []*core.Label{
		upd("addAt", "a", 0),
		upd("addAt", "b", 1),
		upd("remove", "a"),
		upd("addAt", "c", 0),
	}
	if !core.Admits(s, append(append([]*core.Label(nil), base...), qry("read", []string{"c", "b"}))) {
		t.Fatal("insertion before b rejected")
	}
	states := core.StatesAfter(s, base)
	if len(states) < 2 {
		t.Fatalf("expected nondeterministic successors around the tombstone, got %d", len(states))
	}
	// Reads never show tombstoned elements.
	if core.Admits(s, append(append([]*core.Label(nil), base...), qry("read", []string{"a", "c", "b"}))) {
		t.Fatal("tombstoned element leaked into a read")
	}
	// Appending beyond the visible length.
	seq := []*core.Label{
		upd("addAt", "a", 0),
		upd("remove", "a"),
		upd("addAt", "b", 7),
		qry("read", []string{"b"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("append past the visible end rejected")
	}
}

func TestAddAt3Spec(t *testing.T) {
	s := AddAt3{}
	// The return values are the local views of the inserting replica.
	seq := []*core.Label{
		&core.Label{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"b", 0}, Ret: []string{"b", "a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"c", 1}, Ret: []string{"b", "c", "a"}, Kind: core.KindUpdate},
		qry("read", []string{"b", "c", "a"}),
	}
	if !core.Admits(s, seq) {
		t.Fatal("valid addAt3 sequence rejected")
	}
	// A local view that is not a subsequence of the global list is rejected.
	bad := []*core.Label{
		&core.Label{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"b", 1}, Ret: []string{"z", "b"}, Kind: core.KindUpdate},
	}
	if core.Admits(s, bad) {
		t.Fatal("foreign element in the local view admitted")
	}
	// A view that omits elements (a smaller local view) is fine.
	partial := []*core.Label{
		&core.Label{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"b", 0}, Ret: []string{"b", "a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"c", 0}, Ret: []string{"c", "b"}, Kind: core.KindUpdate},
	}
	if !core.Admits(s, partial) {
		t.Fatal("partial local view rejected")
	}
	// The element must sit at the index named by the argument (or the end of
	// a shorter view).
	wrongPos := []*core.Label{
		&core.Label{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"b", 0}, Ret: []string{"a", "b"}, Kind: core.KindUpdate},
	}
	if core.Admits(s, wrongPos) {
		t.Fatal("misplaced element admitted")
	}
	// Remove returns a view without the removed element.
	rem := []*core.Label{
		&core.Label{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		&core.Label{Method: "addAt", Args: []core.Value{"b", 1}, Ret: []string{"a", "b"}, Kind: core.KindUpdate},
		&core.Label{Method: "remove", Args: []core.Value{"a"}, Ret: []string{"b"}, Kind: core.KindUpdate},
		qry("read", []string{"b"}),
	}
	if !core.Admits(s, rem) {
		t.Fatal("remove with local view rejected")
	}
	badRem := []*core.Label{
		&core.Label{Method: "addAt", Args: []core.Value{"a", 0}, Ret: []string{"a"}, Kind: core.KindUpdate},
		&core.Label{Method: "remove", Args: []core.Value{"a"}, Ret: []string{"a"}, Kind: core.KindUpdate},
	}
	if core.Admits(s, badRem) {
		t.Fatal("remove view containing the removed element admitted")
	}
	if core.Admits(s, []*core.Label{&core.Label{Method: "remove", Args: []core.Value{Root}, Ret: []string{}, Kind: core.KindUpdate}}) {
		t.Fatal("removing the root admitted")
	}
}

func TestListStateHelpers(t *testing.T) {
	s := NewListState(Root)
	s.Elems = append(s.Elems, "a", "b")
	s.Tomb["a"] = true
	if got := s.Visible(); !core.ValueEqual(got, []string{"b"}) {
		t.Fatalf("Visible wrong: %v", got)
	}
	if s.IndexOf("b") != 2 || s.IndexOf("zzz") != -1 {
		t.Fatal("IndexOf wrong")
	}
	if !s.Contains("a") || s.Contains("zzz") {
		t.Fatal("Contains wrong")
	}
	if s.String() != "◦·(a)·b" {
		t.Fatalf("String wrong: %q", s.String())
	}
	clone := s.CloneAbs().(ListState)
	clone.Tomb["b"] = true
	clone.Elems[2] = "x"
	if s.Tomb["b"] || s.Elems[2] != "b" {
		t.Fatal("CloneAbs must not alias")
	}
	if s.EqualAbs(clone) {
		t.Fatal("mutated clone must differ")
	}
	if !isSubsequence([]string{"a", "b"}, []string{"x", "a", "y", "b"}) ||
		isSubsequence([]string{"b", "a"}, []string{"a", "b"}) {
		t.Fatal("isSubsequence wrong")
	}
}
