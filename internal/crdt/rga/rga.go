// Package rga implements the operation-based Replicated Growable Array of
// Listing 1: a timestamp tree plus a tombstone set, with an add-after
// interface. The RGA is RA-linearizable with respect to Spec(RGA) using
// timestamp-order linearizations (Figure 12). The package also implements the
// addAt (index-based) interface variant of Appendix C, which is
// RA-linearizable with respect to Spec(addAt3) but not with respect to
// Spec(addAt1) or Spec(addAt2).
package rga

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// Root is the pre-existing element ◦ after which the first real element is
// inserted.
const Root = spec.Root

// Node is one entry of the timestamp tree (Ti-Tree): the triple
// (parent, timestamp, element) of Listing 1.
type Node struct {
	// Parent is the element this node was inserted after (Root for the first
	// level).
	Parent string
	// TS is the timestamp assigned by the inserting operation.
	TS clock.Timestamp
	// Elem is the inserted element.
	Elem string
}

// State is the payload: the timestamp tree N (keyed by element — elements are
// unique) and the tombstone set Tomb.
type State struct {
	Nodes map[string]Node
	Tomb  map[string]bool
}

// NewState returns the initial RGA state (only the implicit root).
func NewState() State {
	return State{Nodes: map[string]Node{}, Tomb: map[string]bool{}}
}

// CloneState deep-copies the tree and the tombstone set.
func (s State) CloneState() runtime.State {
	c := State{Nodes: make(map[string]Node, len(s.Nodes)), Tomb: make(map[string]bool, len(s.Tomb))}
	for k, v := range s.Nodes {
		c.Nodes[k] = v
	}
	for k := range s.Tomb {
		c.Tomb[k] = true
	}
	return c
}

// EqualState reports equality of tree and tombstones.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	if !ok || len(s.Nodes) != len(t.Nodes) || len(s.Tomb) != len(t.Tomb) {
		return false
	}
	for k, v := range s.Nodes {
		if t.Nodes[k] != v {
			return false
		}
	}
	for k := range s.Tomb {
		if !t.Tomb[k] {
			return false
		}
	}
	return true
}

// Has reports whether the element is present in the tree (or is the root).
func (s State) Has(elem string) bool {
	if elem == Root {
		return true
	}
	_, ok := s.Nodes[elem]
	return ok
}

// children returns the children of parent ordered by descending timestamp
// (the sibling order of the pre-order traversal).
func (s State) children(parent string) []Node {
	var out []Node
	for _, n := range s.Nodes {
		if n.Parent == parent {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[j].TS.Less(out[i].TS) })
	return out
}

// Traverse performs the pre-order traversal of the timestamp tree, visiting
// siblings in decreasing timestamp order and skipping the elements of the
// given tombstone set (pass nil to keep every element).
func (s State) Traverse(tomb map[string]bool) []string {
	out := []string{}
	var walk func(parent string)
	walk = func(parent string) {
		for _, n := range s.children(parent) {
			if tomb == nil || !tomb[n.Elem] {
				out = append(out, n.Elem)
			}
			walk(n.Elem)
		}
	}
	walk(Root)
	return out
}

// Visible returns the list a read returns: the traversal without tombstoned
// elements.
func (s State) Visible() []string { return s.Traverse(s.Tomb) }

// Timestamps returns every timestamp stored in the tree.
func (s State) Timestamps() []clock.Timestamp {
	out := make([]clock.Timestamp, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		out = append(out, n.TS)
	}
	return out
}

// String renders the visible list and the tombstone set.
func (s State) String() string {
	return fmt.Sprintf("%s tomb=%s", strings.Join(s.Traverse(nil), "·"), core.FormatValue(tombElems(s.Tomb)))
}

func tombElems(tomb map[string]bool) []string {
	out := make([]string, 0, len(tomb))
	for e := range tomb {
		out = append(out, e)
	}
	return core.SortedSet(out)
}

// Type is the operation-based RGA CRDT with the add-after interface of
// Listing 1.
type Type struct{}

// Name returns "RGA".
func (Type) Name() string { return "RGA" }

// Methods lists addAfter, remove and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "addAfter", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "remove", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the initial state.
func (Type) Init() runtime.State { return NewState() }

// Generate implements the generators of Listing 1.
func (Type) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("rga: unexpected state %T", s)
	}
	switch method {
	case "addAfter":
		if len(args) != 2 {
			return nil, nil, fmt.Errorf("rga: addAfter expects two arguments")
		}
		after, okA := args[0].(string)
		elem, okB := args[1].(string)
		if !okA || !okB {
			return nil, nil, fmt.Errorf("rga: addAfter expects string arguments")
		}
		if err := checkAddAfter(st, after, elem); err != nil {
			return nil, nil, err
		}
		return nil, addEffector(after, ts, elem), nil
	case "remove":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("rga: remove expects one argument")
		}
		elem, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("rga: remove expects a string argument")
		}
		if err := checkRemove(st, elem); err != nil {
			return nil, nil, err
		}
		return nil, removeEffector(elem), nil
	case "read":
		return st.Visible(), nil, nil
	default:
		return nil, nil, fmt.Errorf("rga: unknown method %q", method)
	}
}

func checkAddAfter(st State, after, elem string) error {
	if after != Root {
		if !st.Has(after) {
			return fmt.Errorf("rga: addAfter precondition: %q not present", after)
		}
		if st.Tomb[after] {
			return fmt.Errorf("rga: addAfter precondition: %q is tombstoned", after)
		}
	}
	if elem == Root || st.Has(elem) {
		return fmt.Errorf("rga: addAfter precondition: %q is not fresh", elem)
	}
	return nil
}

func checkRemove(st State, elem string) error {
	if elem == Root {
		return fmt.Errorf("rga: remove precondition: cannot remove %q", Root)
	}
	if !st.Has(elem) {
		return fmt.Errorf("rga: remove precondition: %q not present", elem)
	}
	if st.Tomb[elem] {
		return fmt.Errorf("rga: remove precondition: %q already tombstoned", elem)
	}
	return nil
}

func addEffector(after string, ts clock.Timestamp, elem string) runtime.Effector {
	return runtime.EffectorFunc{
		Name: fmt.Sprintf("eff-addAfter(%s,%s,%s)", after, ts, elem),
		F: func(x runtime.State) runtime.State {
			n := x.(State).CloneState().(State)
			n.Nodes[elem] = Node{Parent: after, TS: ts, Elem: elem}
			return n
		},
	}
}

func removeEffector(elem string) runtime.Effector {
	return runtime.EffectorFunc{
		Name: fmt.Sprintf("eff-remove(%s)", elem),
		F: func(x runtime.State) runtime.State {
			n := x.(State).CloneState().(State)
			n.Tomb[elem] = true
			return n
		},
	}
}

// Abs is the refinement mapping of Example 4.5: the specification list is the
// traversal of the tree keeping tombstoned elements (they remain addressable)
// and the tombstone set is copied.
func Abs(s runtime.State) core.AbsState {
	st := s.(State)
	out := spec.NewListState(Root)
	out.Elems = append(out.Elems, st.Traverse(nil)...)
	for e := range st.Tomb {
		out.Tomb[e] = true
	}
	return out
}

// StateTimestamps lists the timestamps stored in the tree (Refinement_ts).
func StateTimestamps(s runtime.State) []clock.Timestamp { return s.(State).Timestamps() }

// FreshElem returns a fresh element name for workload generation, drawn from
// the workload's own generator so that equal seeds yield byte-identical
// histories (64 random bits make collisions within a history negligible).
func FreshElem(rng *rand.Rand) string {
	return fmt.Sprintf("v%x", rng.Uint64())
}

// RandomOp performs one random RGA operation that respects the generator
// preconditions at the chosen replica: an addAfter of a fresh element after a
// visible one (or the root), a remove of a visible element, or a read.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	st := sys.ReplicaState(r).(State)
	visible := st.Visible()
	switch rng.Intn(4) {
	case 0, 1:
		after := Root
		if len(visible) > 0 && rng.Intn(3) > 0 {
			after = visible[rng.Intn(len(visible))]
		}
		return sys.Invoke(r, "addAfter", after, FreshElem(rng))
	case 2:
		if len(visible) == 0 {
			return sys.Invoke(r, "read")
		}
		return sys.Invoke(r, "remove", visible[rng.Intn(len(visible))])
	default:
		return sys.Invoke(r, "read")
	}
}

// Descriptor describes the RGA (add-after interface) for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:            "RGA",
		Source:          "Roh et al. 2011",
		Class:           crdt.OpBased,
		Lin:             crdt.TimestampOrder,
		InFig12:         true,
		OpType:          Type{},
		Spec:            spec.RGA{},
		Abs:             Abs,
		StateTimestamps: StateTimestamps,
		RandomOp:        RandomOp,
	}
}
