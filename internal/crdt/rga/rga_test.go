package rga

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

func TestRGAFig2ConflictResolution(t *testing.T) {
	// The Figure 2 scenario: starting from a·b·c (with c and b concurrent
	// children of a and ta < tc < tb), two replicas concurrently insert d and
	// e after c; the one with the larger timestamp is ordered first; finally
	// d is removed.
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addAfter", Root, "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(0, "addAfter", "a", "c") // tc
	sys.MustInvoke(0, "addAfter", "a", "b") // tb > tc, so b comes first
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustInvoke(1, "read").Ret; !core.ValueEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("pre-state read %v, want [a b c]", got)
	}
	// Concurrent inserts after c at the two replicas.
	sys.MustInvoke(0, "addAfter", "c", "d") // td
	sys.MustInvoke(1, "addAfter", "c", "e") // te > td, so e is ordered first? No:
	// the element with the *higher* timestamp is visited first among siblings,
	// and here e got the larger timestamp, so the result is a·b·c·e·d unless
	// the paper's order td > te holds. Reproduce the paper's order by checking
	// convergence rather than a fixed literal.
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	r0 := sys.MustInvoke(0, "read").Ret.([]string)
	r1 := sys.MustInvoke(1, "read").Ret.([]string)
	if !core.ValueEqual(r0, r1) {
		t.Fatalf("replicas diverged: %v vs %v", r0, r1)
	}
	// The sibling with the larger timestamp (e) is traversed first.
	want := []string{"a", "b", "c", "e", "d"}
	if !core.ValueEqual(r0, want) {
		t.Fatalf("converged list %v, want %v", r0, want)
	}
	// Removing d hides it everywhere.
	sys.MustInvoke(1, "remove", "d")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustInvoke(0, "read").Ret; !core.ValueEqual(got, []string{"a", "b", "c", "e"}) {
		t.Fatalf("read after remove %v, want [a b c e]", got)
	}
	if !sys.Converged() {
		t.Fatal("RGA must converge")
	}
}

func TestRGAConcurrentSiblingsOrderedByTimestamp(t *testing.T) {
	// Figure 8's phenomenon: addAfter(◦, b) is generated first but carries
	// the larger timestamp tsb; the concurrent addAfter(◦, a) carries the
	// smaller tsa. A read that sees both returns b·a, which the
	// execution-order linearization (b before a) cannot explain against
	// Spec(RGA), while the timestamp-order linearization (a before b) can.
	d := Descriptor()
	scripted := clock.NewScripted(
		clock.Timestamp{Time: 2, Replica: 1}, // tsb, generated first
		clock.Timestamp{Time: 1, Replica: 0}, // tsa < tsb, generated second
	)
	sys := d.NewOpSystem(runtime.Config{Replicas: 2, Clock: scripted})
	sys.MustInvoke(1, "addAfter", Root, "b") // larger timestamp, generated first
	sys.MustInvoke(0, "addAfter", Root, "a") // smaller timestamp, generated second
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	got := sys.MustInvoke(0, "read").Ret
	if !core.ValueEqual(got, []string{"b", "a"}) {
		t.Fatalf("read %v, want [b a]", got)
	}
	// The execution-order strategy alone cannot explain this history, the
	// timestamp-order strategy can (Theorem 4.6).
	res := core.CheckRA(sys.History(), d.Spec, core.CheckOptions{
		Strategies: []core.Strategy{core.StrategyExecutionOrder},
	})
	if res.OK {
		t.Fatal("execution-order linearization should not explain this history")
	}
	res = core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
	if !res.OK {
		t.Fatalf("timestamp-order linearization must explain this history: %v", res.LastErr)
	}
	if res.Strategy == nil || *res.Strategy != core.StrategyTimestampOrder {
		t.Fatalf("expected a timestamp-order witness, got %v", res.Strategy)
	}
}

func TestRGAPreconditions(t *testing.T) {
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 1})
	if _, err := sys.Invoke(0, "addAfter", "missing", "x"); err == nil {
		t.Fatal("adding after an absent element must fail")
	}
	sys.MustInvoke(0, "addAfter", Root, "a")
	if _, err := sys.Invoke(0, "addAfter", Root, "a"); err == nil {
		t.Fatal("adding a duplicate element must fail")
	}
	if _, err := sys.Invoke(0, "addAfter", Root, Root); err == nil {
		t.Fatal("adding the root must fail")
	}
	if _, err := sys.Invoke(0, "remove", Root); err == nil {
		t.Fatal("removing the root must fail")
	}
	if _, err := sys.Invoke(0, "remove", "missing"); err == nil {
		t.Fatal("removing an absent element must fail")
	}
	sys.MustInvoke(0, "remove", "a")
	if _, err := sys.Invoke(0, "remove", "a"); err == nil {
		t.Fatal("removing twice must fail")
	}
	if _, err := sys.Invoke(0, "addAfter", "a", "b"); err == nil {
		t.Fatal("adding after a tombstoned element must fail at the origin")
	}
	if _, err := sys.Invoke(0, "addAfter"); err == nil {
		t.Fatal("addAfter without arguments must fail")
	}
	if _, err := sys.Invoke(0, "remove"); err == nil {
		t.Fatal("remove without arguments must fail")
	}
	if _, err := sys.Invoke(0, "pop"); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestRGATombstoneKeepsElementAddressable(t *testing.T) {
	// Concurrent remove(a) and addAfter(a, b): the tombstone keeps a in the
	// tree so the insertion still finds its parent.
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addAfter", Root, "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(0, "remove", "a")
	sys.MustInvoke(1, "addAfter", "a", "b")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"b"}) {
			t.Fatalf("replica %s read %v, want [b]", r, got)
		}
	}
}

func TestRGAAbsMapping(t *testing.T) {
	st := NewState()
	st.Nodes["a"] = Node{Parent: Root, TS: clock.Timestamp{Time: 1, Replica: 0}, Elem: "a"}
	st.Nodes["b"] = Node{Parent: Root, TS: clock.Timestamp{Time: 2, Replica: 0}, Elem: "b"}
	st.Tomb["a"] = true
	abs := Abs(st).(spec.ListState)
	if !core.ValueEqual(abs.Elems, []string{Root, "b", "a"}) {
		t.Fatalf("Abs element order wrong: %v", abs.Elems)
	}
	if !abs.Tomb["a"] || len(abs.Tomb) != 1 {
		t.Fatalf("Abs tombstones wrong: %v", abs.Tomb)
	}
	if len(StateTimestamps(st)) != 2 {
		t.Fatal("StateTimestamps wrong")
	}
	if !core.ValueEqual(st.Visible(), []string{"b"}) {
		t.Fatal("Visible wrong")
	}
	if st.String() == "" {
		t.Fatal("String must render something")
	}
}

func TestRGAStateClone(t *testing.T) {
	st := NewState()
	st.Nodes["a"] = Node{Parent: Root, TS: clock.Timestamp{Time: 1}, Elem: "a"}
	clone := st.CloneState().(State)
	clone.Tomb["a"] = true
	clone.Nodes["b"] = Node{Parent: Root, TS: clock.Timestamp{Time: 2}, Elem: "b"}
	if len(st.Tomb) != 0 || len(st.Nodes) != 1 {
		t.Fatal("CloneState must not alias")
	}
	if st.EqualState(clone) {
		t.Fatal("EqualState wrong after mutation")
	}
}

func TestRGARandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 7; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.DeliverRandom(rng) {
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random RGA history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}

func TestRGARandomWorkloadConverges(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 20; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				sys.DeliverRandom(rng)
			}
		}
		if err := sys.DeliverAll(); err != nil {
			t.Fatal(err)
		}
		if !sys.Converged() {
			t.Fatalf("trial %d: RGA replicas did not converge", trial)
		}
	}
}
