package rga

import (
	"fmt"
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// AddAtType is the RGA variant with the index-based interface of Appendix C.4
// ([Attiya et al. 2016]): addAt(a, k) inserts a at index k of the local list
// (appending when the list is shorter) and returns the updated local list;
// remove(a) removes a and returns the updated local list; read returns the
// local list. The state is the same timestamp tree as the add-after RGA.
//
// This variant is RA-linearizable with respect to Spec(addAt3) but not with
// respect to Spec(addAt1) or Spec(addAt2) (Lemmas C.1 and C.2), which the
// Figure 14 experiment reproduces.
type AddAtType struct{}

// Name returns "RGA-addAt".
func (AddAtType) Name() string { return "RGA-addAt" }

// Methods lists addAt, remove and read. addAt and remove return the updated
// local list, which is why they are treated as updates carrying a return
// value rather than query-updates (Section 4.2 notes that timestamp-order
// objects need no query-update rewriting).
func (AddAtType) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "addAt", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "remove", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the initial state.
func (AddAtType) Init() runtime.State { return NewState() }

// Generate implements the modified generators of Appendix C.4.
func (AddAtType) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("rga-addat: unexpected state %T", s)
	}
	switch method {
	case "addAt":
		if len(args) != 2 {
			return nil, nil, fmt.Errorf("rga-addat: addAt expects two arguments")
		}
		elem, okE := args[0].(string)
		k, okK := args[1].(int)
		if !okE || !okK || k < 0 {
			return nil, nil, fmt.Errorf("rga-addat: addAt expects (string, non-negative int)")
		}
		if elem == Root || st.Has(elem) {
			return nil, nil, fmt.Errorf("rga-addat: addAt precondition: %q is not fresh", elem)
		}
		visible := st.Visible()
		after := Root
		switch {
		case len(visible) == 0 || k == 0:
			after = Root
		case len(visible) >= k:
			after = visible[k-1]
		default:
			after = visible[len(visible)-1]
		}
		eff := addEffector(after, ts, elem)
		// The return value is the local list after the insertion.
		local := eff.Apply(st).(State)
		return local.Visible(), eff, nil
	case "remove":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("rga-addat: remove expects one argument")
		}
		elem, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("rga-addat: remove expects a string argument")
		}
		if err := checkRemove(st, elem); err != nil {
			return nil, nil, err
		}
		eff := removeEffector(elem)
		local := eff.Apply(st).(State)
		return local.Visible(), eff, nil
	case "read":
		return st.Visible(), nil, nil
	default:
		return nil, nil, fmt.Errorf("rga-addat: unknown method %q", method)
	}
}

// AddAtAbs is the refinement mapping used in the proof of Lemma C.2: identical
// to the add-after mapping.
func AddAtAbs(s runtime.State) core.AbsState { return Abs(s) }

// RandomAddAtOp performs one random addAt-interface operation respecting the
// preconditions at the chosen replica.
func RandomAddAtOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	st := sys.ReplicaState(r).(State)
	visible := st.Visible()
	switch rng.Intn(4) {
	case 0, 1:
		return sys.Invoke(r, "addAt", FreshElem(rng), rng.Intn(len(visible)+2))
	case 2:
		if len(visible) == 0 {
			return sys.Invoke(r, "read")
		}
		return sys.Invoke(r, "remove", visible[rng.Intn(len(visible))])
	default:
		return sys.Invoke(r, "read")
	}
}

// AddAtDescriptor describes the addAt variant checked against Spec(addAt3).
// It is not part of Figure 12 but backs the Figure 14 experiment.
func AddAtDescriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:            "RGA-addAt",
		Source:          "Attiya et al. 2016 (Appendix C)",
		Class:           crdt.OpBased,
		Lin:             crdt.TimestampOrder,
		InFig12:         false,
		OpType:          AddAtType{},
		Spec:            spec.AddAt3{},
		Abs:             AddAtAbs,
		StateTimestamps: StateTimestamps,
		RandomOp:        RandomAddAtOp,
	}
}
