package rga

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

func TestAddAtBasics(t *testing.T) {
	d := AddAtDescriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	l := sys.MustInvoke(0, "addAt", "a", 0)
	if !core.ValueEqual(l.Ret, []string{"a"}) {
		t.Fatalf("addAt must return the updated local list, got %v", l.Ret)
	}
	l = sys.MustInvoke(0, "addAt", "b", 0)
	if !core.ValueEqual(l.Ret, []string{"b", "a"}) {
		t.Fatalf("addAt at the front wrong: %v", l.Ret)
	}
	l = sys.MustInvoke(0, "addAt", "c", 1)
	if !core.ValueEqual(l.Ret, []string{"b", "c", "a"}) {
		t.Fatalf("addAt in the middle wrong: %v", l.Ret)
	}
	l = sys.MustInvoke(0, "addAt", "d", 99)
	if !core.ValueEqual(l.Ret, []string{"b", "c", "a", "d"}) {
		t.Fatalf("addAt past the end must append: %v", l.Ret)
	}
	l = sys.MustInvoke(0, "remove", "c")
	if !core.ValueEqual(l.Ret, []string{"b", "a", "d"}) {
		t.Fatalf("remove must return the updated local list, got %v", l.Ret)
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustInvoke(1, "read").Ret; !core.ValueEqual(got, []string{"b", "a", "d"}) {
		t.Fatalf("other replica read %v", got)
	}
	if !sys.Converged() {
		t.Fatal("RGA-addAt must converge")
	}
}

func TestAddAtPreconditions(t *testing.T) {
	sys := runtime.NewSystem(AddAtType{}, runtime.Config{Replicas: 1})
	sys.MustInvoke(0, "addAt", "a", 0)
	if _, err := sys.Invoke(0, "addAt", "a", 1); err == nil {
		t.Fatal("duplicate element must fail")
	}
	if _, err := sys.Invoke(0, "addAt", "b", -1); err == nil {
		t.Fatal("negative index must fail")
	}
	if _, err := sys.Invoke(0, "addAt", Root, 0); err == nil {
		t.Fatal("adding the root must fail")
	}
	if _, err := sys.Invoke(0, "addAt"); err == nil {
		t.Fatal("missing arguments must fail")
	}
	if _, err := sys.Invoke(0, "remove", "ghost"); err == nil {
		t.Fatal("removing an absent element must fail")
	}
	if _, err := sys.Invoke(0, "shuffle"); err == nil {
		t.Fatal("unknown method must fail")
	}
}

// fig14System replays the Figure 14 execution (Appendix C): r3 inserts a and
// broadcasts it; r1 inserts b at the front, removes it, then inserts c at
// index 1 of its local view [a]; r2, which has seen a and b but not the
// removal of b, inserts d at the front, removes a, and inserts e at index 2
// of its local view [d, b]; finally a read that saw everything returns d·e·c,
// a result no index-based global interpretation (Spec(addAt1)/Spec(addAt2))
// can produce, while the local-view specification Spec(addAt3) can.
func fig14System(t *testing.T) (*runtime.System, []string) {
	t.Helper()
	sys := runtime.NewSystem(AddAtType{}, runtime.Config{Replicas: 3})
	a := sys.MustInvoke(2, "addAt", "a", 0) // replica r3
	if err := sys.Deliver(0, a.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(1, a.ID); err != nil {
		t.Fatal(err)
	}
	b := sys.MustInvoke(0, "addAt", "b", 0)  // r1: b·a
	remB := sys.MustInvoke(0, "remove", "b") // r1: a
	c := sys.MustInvoke(0, "addAt", "c", 1)  // r1: a·c
	if err := sys.Deliver(1, b.ID); err != nil {
		t.Fatal(err) // r2 sees b but not its removal
	}
	d := sys.MustInvoke(1, "addAt", "d", 0)  // r2: d·b·a
	remA := sys.MustInvoke(1, "remove", "a") // r2: d·b
	e := sys.MustInvoke(1, "addAt", "e", 2)  // r2: d·b·e
	for _, l := range []*core.Label{remB, c} {
		if err := sys.Deliver(1, l.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []*core.Label{d, remA, e} {
		if err := sys.Deliver(0, l.ID); err != nil {
			t.Fatal(err)
		}
	}
	read := sys.MustInvoke(1, "read")
	return sys, read.Ret.([]string)
}

func TestAddAtFig14SpecSeparation(t *testing.T) {
	sys, got := fig14System(t)
	// The Figure 14 read is d·e·c: d has the largest root-level timestamp,
	// e hangs below b (removed), c hangs below a (removed).
	if !core.ValueEqual(got, []string{"d", "e", "c"}) {
		t.Fatalf("figure 14 read %v, want [d e c]", got)
	}
	h := sys.History()

	opts := core.CheckOptions{Exhaustive: true}
	if res := core.CheckRA(h, spec.AddAt1{}, opts); res.OK || !res.Complete {
		t.Fatalf("history must NOT be RA-linearizable w.r.t. Spec(addAt1): ok=%v complete=%v", res.OK, res.Complete)
	}
	if res := core.CheckRA(h, spec.AddAt2{}, opts); res.OK || !res.Complete {
		t.Fatalf("history must NOT be RA-linearizable w.r.t. Spec(addAt2): ok=%v complete=%v", res.OK, res.Complete)
	}
	d3 := AddAtDescriptor()
	if res := core.CheckRA(h, spec.AddAt3{}, d3.CheckOptions()); !res.OK {
		t.Fatalf("history must be RA-linearizable w.r.t. Spec(addAt3): %v", res.LastErr)
	}
}

func TestAddAtRandomWorkloadRALinearizableAddAt3(t *testing.T) {
	d := AddAtDescriptor()
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 6; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.DeliverRandom(rng) {
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random RGA-addAt history not RA-linearizable w.r.t. Spec(addAt3): %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}

func TestAddAtGenerateErrors(t *testing.T) {
	typ := AddAtType{}
	ts := clock.Timestamp{Time: 1, Replica: 0}
	if _, _, err := typ.Generate(NewState(), "addAt", []core.Value{"a", "zero"}, ts); err == nil {
		t.Fatal("mistyped index must fail")
	}
	if _, _, err := typ.Generate(NewState(), "remove", []core.Value{7}, ts); err == nil {
		t.Fatal("mistyped remove must fail")
	}
}
