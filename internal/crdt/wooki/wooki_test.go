package wooki

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

func TestWookiSequentialInsertions(t *testing.T) {
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addBetween", Begin, "a", End)
	sys.MustInvoke(0, "addBetween", "a", "b", End)
	sys.MustInvoke(0, "addBetween", "a", "c", "b")
	if got := sys.MustInvoke(0, "read").Ret; !core.ValueEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("read %v, want [a c b]", got)
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	if got := sys.MustInvoke(1, "read").Ret; !core.ValueEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("other replica read %v, want [a c b]", got)
	}
	if !sys.Converged() {
		t.Fatal("Wooki must converge")
	}
}

func TestWookiConcurrentInsertionsConverge(t *testing.T) {
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addBetween", Begin, "a", End)
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	// Concurrent insertions into the same gap.
	sys.MustInvoke(0, "addBetween", Begin, "x", "a")
	sys.MustInvoke(1, "addBetween", Begin, "y", "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	r0 := sys.MustInvoke(0, "read").Ret.([]string)
	r1 := sys.MustInvoke(1, "read").Ret.([]string)
	if !core.ValueEqual(r0, r1) {
		t.Fatalf("replicas diverged: %v vs %v", r0, r1)
	}
	if len(r0) != 3 || r0[2] != "a" {
		t.Fatalf("both insertions must land before a: %v", r0)
	}
	if !sys.Converged() {
		t.Fatal("Wooki must converge")
	}
}

func TestWookiRemoveHidesElement(t *testing.T) {
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addBetween", Begin, "a", End)
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	// Concurrent remove(a) and addBetween(a, b, ◦end): the hidden character
	// still anchors the insertion.
	sys.MustInvoke(0, "remove", "a")
	sys.MustInvoke(1, "addBetween", "a", "b", End)
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"b"}) {
			t.Fatalf("replica %s read %v, want [b]", r, got)
		}
	}
}

func TestWookiPreconditions(t *testing.T) {
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 1})
	if _, err := sys.Invoke(0, "addBetween", End, "x", Begin); err == nil {
		t.Fatal("inverted sentinels must fail")
	}
	if _, err := sys.Invoke(0, "addBetween", Begin, Begin, End); err == nil {
		t.Fatal("inserting a sentinel must fail")
	}
	if _, err := sys.Invoke(0, "addBetween", "ghost", "x", End); err == nil {
		t.Fatal("absent left bound must fail")
	}
	sys.MustInvoke(0, "addBetween", Begin, "a", End)
	if _, err := sys.Invoke(0, "addBetween", Begin, "a", End); err == nil {
		t.Fatal("duplicate element must fail")
	}
	if _, err := sys.Invoke(0, "addBetween", "a", "x", "a"); err == nil {
		t.Fatal("equal bounds must fail")
	}
	sys.MustInvoke(0, "addBetween", "a", "b", End)
	if _, err := sys.Invoke(0, "addBetween", "b", "x", "a"); err == nil {
		t.Fatal("reversed bounds must fail")
	}
	if _, err := sys.Invoke(0, "remove", Begin); err == nil {
		t.Fatal("removing a sentinel must fail")
	}
	if _, err := sys.Invoke(0, "remove", "ghost"); err == nil {
		t.Fatal("removing an absent element must fail")
	}
	if _, err := sys.Invoke(0, "addBetween", Begin, "x"); err == nil {
		t.Fatal("missing argument must fail")
	}
	if _, err := sys.Invoke(0, "remove"); err == nil {
		t.Fatal("missing argument must fail")
	}
	if _, err := sys.Invoke(0, "rotate"); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestWookiIntegrateInsDegreeOrdering(t *testing.T) {
	// Insert into a gap whose existing character has a higher degree: the
	// integrate procedure narrows the window using degrees, reproducing the
	// Woot ordering.
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "addBetween", Begin, "a", End) // degree 1
	sys.MustInvoke(0, "addBetween", Begin, "b", "a") // degree 2, between begin and a
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	// Concurrent insert into the same outer gap at the other replica.
	sys.MustInvoke(1, "addBetween", Begin, "c", "a")
	sys.MustInvoke(0, "addBetween", Begin, "d", "b")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	r0 := sys.MustInvoke(0, "read").Ret.([]string)
	r1 := sys.MustInvoke(1, "read").Ret.([]string)
	if !core.ValueEqual(r0, r1) {
		t.Fatalf("replicas diverged: %v vs %v", r0, r1)
	}
	// Relative orders requested at insertion time are preserved.
	idx := map[string]int{}
	for i, v := range r0 {
		idx[v] = i
	}
	if !(idx["b"] < idx["a"] && idx["c"] < idx["a"] && idx["d"] < idx["b"]) {
		t.Fatalf("insertion bounds violated: %v", r0)
	}
}

func TestWookiAbs(t *testing.T) {
	st := NewState()
	st = st.insertAt(1, WChar{ID: clock.Timestamp{Time: 1, Replica: 0}, Value: "a", Degree: 1, Visible: true})
	st = st.insertAt(2, WChar{ID: clock.Timestamp{Time: 2, Replica: 0}, Value: "b", Degree: 1, Visible: false})
	abs := Abs(st).(spec.ListState)
	if !core.ValueEqual(abs.Elems, []string{Begin, "a", "b", End}) {
		t.Fatalf("Abs elems wrong: %v", abs.Elems)
	}
	if !abs.Tomb["b"] || len(abs.Tomb) != 1 {
		t.Fatalf("Abs tombstones wrong: %v", abs.Tomb)
	}
	if !core.ValueEqual(st.Values(), []string{"a"}) || !core.ValueEqual(st.AllValues(), []string{"a", "b"}) {
		t.Fatal("Values/AllValues wrong")
	}
	if len(StateTimestamps(st)) != 2 {
		t.Fatal("StateTimestamps wrong")
	}
	if st.String() != "◦begin·a·(b)·◦end" {
		t.Fatalf("String wrong: %q", st.String())
	}
	clone := st.CloneState().(State)
	clone[1].Visible = false
	if !st[1].Visible {
		t.Fatal("CloneState must not alias")
	}
}

func TestWookiRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 6; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.DeliverRandom(rng) {
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random Wooki history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}

func TestWookiRandomWorkloadConverges(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 5; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 20; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				sys.DeliverRandom(rng)
			}
		}
		if err := sys.DeliverAll(); err != nil {
			t.Fatal(err)
		}
		if !sys.Converged() {
			t.Fatalf("trial %d: Wooki replicas did not converge", trial)
		}
	}
}
