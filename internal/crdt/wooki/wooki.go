// Package wooki implements the operation-based Wooki list CRDT of Listing 5
// (Appendix B.3), an optimised variant of Woot: every element is a
// W-character carrying a unique timestamp identifier, a degree and a
// visibility flag; addBetween(a, b, c) integrates b between a and c with the
// recursive integrateIns procedure; remove hides a character; read returns
// the visible values. Wooki is RA-linearizable with respect to the
// (nondeterministic) Spec(Wooki) using execution-order linearizations
// (Figure 12).
package wooki

import (
	"fmt"
	"math/rand"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// Sentinel values delimiting every W-string.
const (
	// Begin is the ◦begin sentinel.
	Begin = spec.Begin
	// End is the ◦end sentinel.
	End = spec.End
)

// WChar is a W-character: the tuple (id, value, degree, flag) of Listing 5.
type WChar struct {
	// ID is the unique identifier (a timestamp); sentinels use ⊥.
	ID clock.Timestamp
	// Value is the element value.
	Value string
	// Degree is fixed at insertion time and steers integrateIns.
	Degree int
	// Visible is false once the character has been removed.
	Visible bool
}

// State is the payload: the W-string, a sequence of W-characters starting
// with the ◦begin sentinel and ending with the ◦end sentinel.
type State []WChar

// NewState returns the initial W-string holding only the sentinels.
func NewState() State {
	return State{
		{Value: Begin, Degree: 0, Visible: true},
		{Value: End, Degree: 0, Visible: true},
	}
}

// CloneState copies the W-string.
func (s State) CloneState() runtime.State {
	return append(State(nil), s...)
}

// EqualState reports element-wise equality.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	if !ok || len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// pos returns the index of the character with the given value, or -1.
func (s State) pos(value string) int {
	for i, w := range s {
		if w.Value == value {
			return i
		}
	}
	return -1
}

// Contains reports whether a character with the given value exists
// (visible or not).
func (s State) Contains(value string) bool { return s.pos(value) >= 0 }

// Values returns the visible, non-sentinel values in order.
func (s State) Values() []string {
	out := []string{}
	for _, w := range s {
		if w.Value == Begin || w.Value == End || !w.Visible {
			continue
		}
		out = append(out, w.Value)
	}
	return out
}

// AllValues returns every non-sentinel value in order, visible or not.
func (s State) AllValues() []string {
	out := []string{}
	for _, w := range s {
		if w.Value == Begin || w.Value == End {
			continue
		}
		out = append(out, w.Value)
	}
	return out
}

// Hidden returns the values whose characters have been removed.
func (s State) Hidden() []string {
	out := []string{}
	for _, w := range s {
		if w.Value == Begin || w.Value == End || w.Visible {
			continue
		}
		out = append(out, w.Value)
	}
	return out
}

// Timestamps returns the identifiers of every non-sentinel character.
func (s State) Timestamps() []clock.Timestamp {
	out := []clock.Timestamp{}
	for _, w := range s {
		if w.Value == Begin || w.Value == End {
			continue
		}
		out = append(out, w.ID)
	}
	return out
}

// String renders the W-string; removed characters are parenthesised.
func (s State) String() string {
	parts := make([]string, 0, len(s))
	for _, w := range s {
		v := w.Value
		if !w.Visible {
			v = "(" + v + ")"
		}
		parts = append(parts, v)
	}
	return strings.Join(parts, "·")
}

// insertAt returns a copy of the W-string with w inserted at index i.
func (s State) insertAt(i int, w WChar) State {
	out := make(State, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, w)
	out = append(out, s[i:]...)
	return out
}

// integrateIns places w between the characters with values wp and wn,
// following the recursive procedure of Listing 5: among the candidates of
// minimal degree strictly between the bounds, the insertion point is chosen
// by comparing identifiers, recursing into the narrowed window.
func integrateIns(s State, wpValue string, w WChar, wnValue string) State {
	ip, in := s.pos(wpValue), s.pos(wnValue)
	if ip < 0 || in < 0 || ip >= in {
		// Causal delivery guarantees the bounds exist in order; reaching this
		// branch means the effector was applied outside its precondition.
		return s.insertAt(len(s)-1, w)
	}
	sub := s[ip+1 : in]
	if len(sub) == 0 {
		return s.insertAt(in, w)
	}
	dmin := sub[0].Degree
	for _, c := range sub {
		if c.Degree < dmin {
			dmin = c.Degree
		}
	}
	var f []WChar
	for _, c := range sub {
		if c.Degree == dmin {
			f = append(f, c)
		}
	}
	if w.ID.Less(f[0].ID) {
		return integrateIns(s, wpValue, w, f[0].Value)
	}
	i := 0
	for i < len(f)-1 && f[i].ID.Less(w.ID) {
		i++
	}
	if i == len(f)-1 && f[i].ID.Less(w.ID) {
		return integrateIns(s, f[i].Value, w, wnValue)
	}
	return integrateIns(s, f[i-1].Value, w, f[i].Value)
}

// Type is the operation-based Wooki CRDT.
type Type struct{}

// Name returns "Wooki".
func (Type) Name() string { return "Wooki" }

// Methods lists addBetween, remove and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "addBetween", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "remove", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the sentinel-only W-string.
func (Type) Init() runtime.State { return NewState() }

// Generate implements the generators of Listing 5.
func (Type) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("wooki: unexpected state %T", s)
	}
	switch method {
	case "addBetween":
		if len(args) != 3 {
			return nil, nil, fmt.Errorf("wooki: addBetween expects three arguments")
		}
		a, okA := args[0].(string)
		b, okB := args[1].(string)
		c, okC := args[2].(string)
		if !okA || !okB || !okC {
			return nil, nil, fmt.Errorf("wooki: addBetween expects string arguments")
		}
		if c == Begin || a == End || b == Begin || b == End {
			return nil, nil, fmt.Errorf("wooki: addBetween precondition: sentinel misuse")
		}
		if !st.Contains(a) || !st.Contains(c) {
			return nil, nil, fmt.Errorf("wooki: addBetween precondition: bounds %q, %q must exist", a, c)
		}
		if st.pos(c) <= st.pos(a) {
			return nil, nil, fmt.Errorf("wooki: addBetween precondition: %q must precede %q", a, c)
		}
		if st.Contains(b) {
			return nil, nil, fmt.Errorf("wooki: addBetween precondition: %q is not fresh", b)
		}
		wp, wn := st[st.pos(a)], st[st.pos(c)]
		deg := wp.Degree
		if wn.Degree > deg {
			deg = wn.Degree
		}
		w := WChar{ID: ts, Value: b, Degree: deg + 1, Visible: true}
		eff := runtime.EffectorFunc{
			Name: fmt.Sprintf("eff-addBetween(%s,%s,%s)[%s]", a, b, c, ts),
			F: func(x runtime.State) runtime.State {
				return integrateIns(x.(State).CloneState().(State), a, w, c)
			},
		}
		return nil, eff, nil
	case "remove":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("wooki: remove expects one argument")
		}
		a, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("wooki: remove expects a string argument")
		}
		if a == Begin || a == End {
			return nil, nil, fmt.Errorf("wooki: remove precondition: cannot remove a sentinel")
		}
		if !st.Contains(a) {
			return nil, nil, fmt.Errorf("wooki: remove precondition: %q not present", a)
		}
		eff := runtime.EffectorFunc{
			Name: fmt.Sprintf("eff-remove(%s)", a),
			F: func(x runtime.State) runtime.State {
				n := x.(State).CloneState().(State)
				if i := n.pos(a); i >= 0 {
					n[i].Visible = false
				}
				return n
			},
		}
		return nil, eff, nil
	case "read":
		return st.Values(), nil, nil
	default:
		return nil, nil, fmt.Errorf("wooki: unknown method %q", method)
	}
}

// Abs is the refinement mapping: the W-string read as a specification list
// state (all values in string order, removed ones recorded in the tombstone
// set).
func Abs(s runtime.State) core.AbsState {
	st := s.(State)
	out := spec.NewListState()
	for _, w := range st {
		out.Elems = append(out.Elems, w.Value)
	}
	for _, hidden := range st.Hidden() {
		out.Tomb[hidden] = true
	}
	return out
}

// StateTimestamps lists the identifiers stored in the W-string.
func StateTimestamps(s runtime.State) []clock.Timestamp { return s.(State).Timestamps() }

// FreshElem returns a fresh element name for workload generation, drawn from
// the workload's own generator so that equal seeds yield byte-identical
// histories (64 random bits make collisions within a history negligible).
func FreshElem(rng *rand.Rand) string {
	return fmt.Sprintf("w%x", rng.Uint64())
}

// RandomOp performs one random Wooki operation respecting the generator
// preconditions at the chosen replica.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	st := sys.ReplicaState(r).(State)
	switch rng.Intn(4) {
	case 0, 1:
		// Pick two positions i < j and insert between their values.
		i := rng.Intn(len(st) - 1)
		j := i + 1 + rng.Intn(len(st)-i-1)
		return sys.Invoke(r, "addBetween", st[i].Value, FreshElem(rng), st[j].Value)
	case 2:
		visible := st.Values()
		if len(visible) == 0 {
			return sys.Invoke(r, "read")
		}
		return sys.Invoke(r, "remove", visible[rng.Intn(len(visible))])
	default:
		return sys.Invoke(r, "read")
	}
}

// Descriptor describes Wooki for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:            "Wooki",
		Source:          "Weiss et al. 2007",
		Class:           crdt.OpBased,
		Lin:             crdt.ExecutionOrder,
		InFig12:         true,
		OpType:          Type{},
		Spec:            spec.Wooki{},
		Abs:             Abs,
		StateTimestamps: StateTimestamps,
		RandomOp:        RandomOp,
	}
}
