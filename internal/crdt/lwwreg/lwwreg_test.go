package lwwreg

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestLWWRegisterLastWriterWins(t *testing.T) {
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	w1 := sys.MustInvoke(0, "write", "a")
	w2 := sys.MustInvoke(1, "write", "b") // later timestamp
	if !w1.TS.Less(w2.TS) {
		t.Fatal("second write must carry a larger timestamp")
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		if got := sys.MustInvoke(r, "read").Ret; got != "b" {
			t.Fatalf("replica %s read %v, want b", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("register must converge")
	}
}

func TestLWWRegisterStaleEffectorIgnored(t *testing.T) {
	// Deliver the newer write first: the older one must not overwrite it.
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 2})
	w1 := sys.MustInvoke(0, "write", "old")
	w2 := sys.MustInvoke(1, "write", "new")
	if err := sys.Deliver(0, w2.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(1, w1.ID); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		if got := sys.MustInvoke(r, "read").Ret; got != "new" {
			t.Fatalf("replica %s read %v, want new", r, got)
		}
	}
}

func TestLWWRegisterTimestampOrderLinearization(t *testing.T) {
	// Two concurrent writes: the read sees both and returns the one with the
	// larger timestamp, which only the timestamp-order linearization explains.
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(1, "write", "late-generated-first")
	sys.MustInvoke(0, "write", "winner")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(0, "read")
	res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
	if !res.OK {
		t.Fatalf("LWW-Register history must be RA-linearizable: %v", res.LastErr)
	}
}

func TestLWWRegisterAbsAndTimestamps(t *testing.T) {
	st := State{Val: "x", TS: clock.Timestamp{Time: 4, Replica: 1}}
	if Abs(st).String() != "x" {
		t.Fatal("Abs wrong")
	}
	if got := StateTimestamps(st); len(got) != 1 || got[0] != st.TS {
		t.Fatal("StateTimestamps wrong")
	}
	if got := StateTimestamps(State{}); len(got) != 0 {
		t.Fatal("initial state must expose no timestamps")
	}
	if !st.EqualState(st) || st.EqualState(State{Val: "x"}) {
		t.Fatal("EqualState wrong")
	}
}

func TestLWWRegisterErrors(t *testing.T) {
	typ := Type{}
	if _, _, err := typ.Generate(State{}, "write", nil, clock.Bottom); err == nil {
		t.Fatal("write without argument must fail")
	}
	if _, _, err := typ.Generate(State{}, "write", []core.Value{42}, clock.Bottom); err == nil {
		t.Fatal("mistyped write must fail")
	}
	if _, _, err := typ.Generate(State{}, "swap", nil, clock.Bottom); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestLWWRegisterRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(5))
	elems := []string{"a", "b", "c"}
	for trial := 0; trial < 10; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 8; i++ {
			if _, err := d.RandomOp(rng, sys, elems); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.DeliverRandom(rng) {
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random LWW-Register history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
