// Package lwwreg implements the operation-based Last-Writer-Wins Register of
// Listing 4 (Appendix B.2): every write carries a fresh timestamp and a
// replica keeps the value with the largest timestamp it has seen. The
// LWW-Register is RA-linearizable with respect to Spec(Reg) using
// timestamp-order linearizations (Figure 12).
package lwwreg

import (
	"fmt"
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// State is the payload: the current value and the timestamp that wrote it.
type State struct {
	Val string
	TS  clock.Timestamp
}

// CloneState returns the state itself (it is a value type).
func (s State) CloneState() runtime.State { return s }

// EqualState reports equality of value and timestamp.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	return ok && s == t
}

// String renders the value and its timestamp.
func (s State) String() string { return fmt.Sprintf("%q@%s", s.Val, s.TS) }

// Type is the operation-based LWW-Register CRDT.
type Type struct{}

// Name returns "LWW-Register".
func (Type) Name() string { return "LWW-Register" }

// Methods lists write and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "write", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the unwritten register (empty value, ⊥ timestamp).
func (Type) Init() runtime.State { return State{} }

// Generate implements the generators of Listing 4. The effector of
// write(a) with timestamp ts installs (a, ts) only when ts is newer than the
// timestamp held by the receiving replica.
func (Type) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("lwwreg: unexpected state %T", s)
	}
	switch method {
	case "write":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("lwwreg: write expects one argument")
		}
		v, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("lwwreg: write expects a string, got %T", args[0])
		}
		eff := runtime.EffectorFunc{
			Name: fmt.Sprintf("eff-write(%s,%s)", v, ts),
			F: func(x runtime.State) runtime.State {
				cur := x.(State)
				if cur.TS.Less(ts) {
					return State{Val: v, TS: ts}
				}
				return cur
			},
		}
		return nil, eff, nil
	case "read":
		return st.Val, nil, nil
	default:
		return nil, nil, fmt.Errorf("lwwreg: unknown method %q", method)
	}
}

// Abs is the refinement mapping: the register's current value.
func Abs(s runtime.State) core.AbsState { return spec.RegisterState(s.(State).Val) }

// StateTimestamps returns the timestamp stored in the state (Refinement_ts).
func StateTimestamps(s runtime.State) []clock.Timestamp {
	st := s.(State)
	if st.TS.IsBottom() {
		return nil
	}
	return []clock.Timestamp{st.TS}
}

// RandomOp performs one random register operation.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	if rng.Intn(2) == 0 {
		return sys.Invoke(r, "write", crdt.PickElem(rng, elems))
	}
	return sys.Invoke(r, "read")
}

// Descriptor describes the LWW-Register for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:            "LWW-Register",
		Source:          "Johnson and Thomas 1975",
		Class:           crdt.OpBased,
		Lin:             crdt.TimestampOrder,
		InFig12:         true,
		OpType:          Type{},
		Spec:            spec.Register{},
		Abs:             Abs,
		StateTimestamps: StateTimestamps,
		RandomOp:        RandomOp,
	}
}
