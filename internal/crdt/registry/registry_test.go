package registry

import (
	"testing"

	"ralin/internal/crdt"
)

func TestRegistryContents(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("expected 10 registered CRDTs, got %d", len(all))
	}
	fig12 := Fig12()
	if len(fig12) != 9 {
		t.Fatalf("expected the 9 rows of Figure 12, got %d", len(fig12))
	}
	for _, d := range fig12 {
		if !d.InFig12 {
			t.Fatalf("%s leaked into Fig12()", d.Name)
		}
	}
}

func TestRegistryDescriptorsWellFormed(t *testing.T) {
	for _, d := range All() {
		if d.Name == "" || d.Source == "" {
			t.Fatalf("descriptor missing name or source: %+v", d)
		}
		if d.Spec == nil || d.Abs == nil || d.RandomOp == nil {
			t.Fatalf("%s: descriptor missing spec, abs or workload", d.Name)
		}
		switch d.Class {
		case crdt.OpBased:
			if d.OpType == nil || d.SBType != nil {
				t.Fatalf("%s: operation-based descriptor must carry exactly an OpType", d.Name)
			}
		case crdt.StateBased:
			if d.SBType == nil || d.OpType != nil {
				t.Fatalf("%s: state-based descriptor must carry exactly an SBType", d.Name)
			}
			if d.SB == nil {
				t.Fatalf("%s: state-based descriptor must carry Appendix D proof artefacts", d.Name)
			}
			if d.SB.EffClass == crdt.UniquelyIdentified && d.SB.ArgLess == nil {
				t.Fatalf("%s: uniquely-identified class requires an argument order", d.Name)
			}
		}
		if d.Lin == crdt.TimestampOrder && d.StateTimestamps == nil {
			t.Fatalf("%s: timestamp-order descriptor must expose state timestamps", d.Name)
		}
	}
}

func TestRegistryFig12Classes(t *testing.T) {
	// The Imp./Lin. columns of Figure 12.
	want := map[string]struct {
		class crdt.Class
		lin   crdt.LinClass
	}{
		"Counter":          {crdt.OpBased, crdt.ExecutionOrder},
		"PN-Counter":       {crdt.StateBased, crdt.ExecutionOrder},
		"LWW-Register":     {crdt.OpBased, crdt.TimestampOrder},
		"Multi-Value Reg.": {crdt.StateBased, crdt.ExecutionOrder},
		"LWW-Element Set":  {crdt.StateBased, crdt.TimestampOrder},
		"2P-Set":           {crdt.StateBased, crdt.ExecutionOrder},
		"OR-Set":           {crdt.OpBased, crdt.ExecutionOrder},
		"RGA":              {crdt.OpBased, crdt.TimestampOrder},
		"Wooki":            {crdt.OpBased, crdt.ExecutionOrder},
	}
	got := map[string]bool{}
	for _, d := range Fig12() {
		w, ok := want[d.Name]
		if !ok {
			t.Fatalf("unexpected Figure 12 row %q", d.Name)
		}
		if d.Class != w.class || d.Lin != w.lin {
			t.Fatalf("%s: got (%s, %s), want (%s, %s)", d.Name, d.Class, d.Lin, w.class, w.lin)
		}
		got[d.Name] = true
	}
	if len(got) != len(want) {
		t.Fatalf("missing Figure 12 rows: got %d of %d", len(got), len(want))
	}
}

func TestRegistryLookup(t *testing.T) {
	d, err := Lookup("RGA")
	if err != nil || d.Name != "RGA" {
		t.Fatalf("Lookup(RGA) failed: %v", err)
	}
	if _, err := Lookup("B-Tree"); err == nil {
		t.Fatal("unknown name must fail")
	}
	names := Names()
	if len(names) != 10 || names[0] != "Counter" {
		t.Fatalf("Names wrong: %v", names)
	}
}

func TestClassAndLinStrings(t *testing.T) {
	if crdt.OpBased.String() != "OB" || crdt.StateBased.String() != "SB" || crdt.Class(9).String() != "?" {
		t.Fatal("Class rendering wrong")
	}
	if crdt.ExecutionOrder.String() != "EO" || crdt.TimestampOrder.String() != "TO" || crdt.LinClass(9).String() != "?" {
		t.Fatal("LinClass rendering wrong")
	}
	if crdt.UniquelyIdentified.String() != "uniquely-identified" ||
		crdt.Cumulative.String() != "cumulative" ||
		crdt.Idempotent.String() != "idempotent" ||
		crdt.EffClass(9).String() != "?" {
		t.Fatal("EffClass rendering wrong")
	}
}
