// Package registry gathers the descriptors of every CRDT implemented in this
// repository. The Figure 12 table, the verification harness and the random
// history experiments all iterate over this registry.
package registry

import (
	"fmt"

	"ralin/internal/crdt"
	"ralin/internal/crdt/counter"
	"ralin/internal/crdt/lwwreg"
	"ralin/internal/crdt/lwwset"
	"ralin/internal/crdt/mvreg"
	"ralin/internal/crdt/orset"
	"ralin/internal/crdt/pncounter"
	"ralin/internal/crdt/rga"
	"ralin/internal/crdt/twopset"
	"ralin/internal/crdt/wooki"
)

// All returns the descriptors of every implemented CRDT, in the row order of
// Figure 12, followed by the extra types that are not part of the table (the
// RGA addAt variant of Appendix C).
func All() []crdt.Descriptor {
	return []crdt.Descriptor{
		counter.Descriptor(),
		pncounter.Descriptor(),
		lwwreg.Descriptor(),
		mvreg.Descriptor(),
		lwwset.Descriptor(),
		twopset.Descriptor(),
		orset.Descriptor(),
		rga.Descriptor(),
		wooki.Descriptor(),
		rga.AddAtDescriptor(),
	}
}

// Fig12 returns only the nine descriptors that form the rows of Figure 12.
func Fig12() []crdt.Descriptor {
	var out []crdt.Descriptor
	for _, d := range All() {
		if d.InFig12 {
			out = append(out, d)
		}
	}
	return out
}

// Lookup returns the descriptor with the given name.
func Lookup(name string) (crdt.Descriptor, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return crdt.Descriptor{}, fmt.Errorf("registry: unknown CRDT %q", name)
}

// Names returns the names of all registered CRDTs in registry order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}
