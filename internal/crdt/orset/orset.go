// Package orset implements the operation-based Observed-Remove Set of
// Listing 2: add tags the element with a unique identifier; remove deletes
// only the element-identifier pairs its generator observed; read returns the
// element values. The OR-Set is RA-linearizable with respect to Spec(OR-Set)
// under the query-update rewriting of Example 3.6, using execution-order
// linearizations (Figure 12).
package orset

import (
	"fmt"
	"math/rand"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// State is the payload: the set S of element-identifier pairs.
type State map[core.Pair]bool

// NewState returns an empty OR-Set state.
func NewState() State { return State{} }

// CloneState deep-copies the pair set.
func (s State) CloneState() runtime.State {
	c := make(State, len(s))
	for p := range s {
		c[p] = true
	}
	return c
}

// EqualState reports set equality.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	if !ok || len(s) != len(t) {
		return false
	}
	for p := range s {
		if !t[p] {
			return false
		}
	}
	return true
}

// Pairs returns the sorted element-identifier pairs.
func (s State) Pairs() []core.Pair {
	out := make([]core.Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	return core.SortPairs(out)
}

// Values returns the sorted element values.
func (s State) Values() []string {
	elems := make([]string, 0, len(s))
	for p := range s {
		elems = append(elems, p.Elem)
	}
	return core.SortedSet(elems)
}

// PairsOf returns the sorted pairs whose element is a (the set R observed by
// remove's generator).
func (s State) PairsOf(a string) []core.Pair {
	out := []core.Pair{}
	for p := range s {
		if p.Elem == a {
			out = append(out, p)
		}
	}
	return core.SortPairs(out)
}

// String renders the pair set.
func (s State) String() string {
	parts := make([]string, 0, len(s))
	for _, p := range s.Pairs() {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Type is the operation-based OR-Set CRDT.
type Type struct{}

// Name returns "OR-Set".
func (Type) Name() string { return "OR-Set" }

// Methods lists add (an update that consumes a unique identifier), remove
// (a query-update) and read (a query).
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "add", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "remove", Kind: core.KindQueryUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the empty set.
func (Type) Init() runtime.State { return NewState() }

// Generate implements the generators of Listing 2. The fresh timestamp's
// counter value serves as the unique identifier k returned by add.
func (Type) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("orset: unexpected state %T", s)
	}
	switch method {
	case "add":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("orset: add expects one argument")
		}
		a, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("orset: add expects a string, got %T", args[0])
		}
		k := ts.Time
		pair := core.Pair{Elem: a, ID: k}
		eff := runtime.EffectorFunc{
			Name: fmt.Sprintf("eff-add(%s)", pair),
			F: func(x runtime.State) runtime.State {
				n := x.(State).CloneState().(State)
				n[pair] = true
				return n
			},
		}
		return k, eff, nil
	case "remove":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("orset: remove expects one argument")
		}
		a, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("orset: remove expects a string, got %T", args[0])
		}
		observed := st.PairsOf(a)
		eff := runtime.EffectorFunc{
			Name: fmt.Sprintf("eff-remove(%s)", core.FormatValue(observed)),
			F: func(x runtime.State) runtime.State {
				n := x.(State).CloneState().(State)
				for _, p := range observed {
					delete(n, p)
				}
				return n
			},
		}
		return observed, eff, nil
	case "read":
		return st.Values(), nil, nil
	default:
		return nil, nil, fmt.Errorf("orset: unknown method %q", method)
	}
}

// Abs is the refinement mapping: the pair set itself, read as a specification
// state (Example 4.3 uses the identity mapping).
func Abs(s runtime.State) core.AbsState {
	st := s.(State)
	out := spec.ORSetState{}
	for p := range st {
		out[p] = true
	}
	return out
}

// rewriting is the query-update rewriting γ of Example 3.6. It is a named
// zero-size (comparable) type rather than a RewriteFunc closure so engine
// sessions can key their rewrite cache on its value (core.rewritingToken).
type rewriting struct{}

// Rewrite implements core.Rewriting:
//
//	add(a) ⇒ k      becomes  add(a, k)
//	remove(a) ⇒ R   becomes  readIds(a) ⇒ R · removeIds(R)
//	read() ⇒ A      stays    read() ⇒ A
func (rewriting) Rewrite(l *core.Label) ([]*core.Label, error) {
	switch l.Method {
	case "add":
		id, ok := l.Ret.(uint64)
		if !ok {
			return nil, fmt.Errorf("orset: add label %v has no identifier return", l)
		}
		c := l.Clone()
		c.Args = []core.Value{l.Args[0], id}
		c.Ret = nil
		return []*core.Label{c}, nil
	case "remove":
		observed, ok := l.Ret.([]core.Pair)
		if !ok {
			return nil, fmt.Errorf("orset: remove label %v has no observed-pairs return", l)
		}
		q := l.Clone()
		q.Method = "readIds"
		q.Kind = core.KindQuery
		q.TS = clock.Bottom
		u := l.Clone()
		u.Method = "removeIds"
		u.Args = []core.Value{observed}
		u.Ret = nil
		u.Kind = core.KindUpdate
		return []*core.Label{q, u}, nil
	default:
		return []*core.Label{l.Clone()}, nil
	}
}

// Rewriting returns the query-update rewriting γ of Example 3.6.
func Rewriting() core.Rewriting {
	return rewriting{}
}

// RandomOp performs one random OR-Set operation.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	switch rng.Intn(4) {
	case 0, 1:
		return sys.Invoke(r, "add", crdt.PickElem(rng, elems))
	case 2:
		return sys.Invoke(r, "remove", crdt.PickElem(rng, elems))
	default:
		return sys.Invoke(r, "read")
	}
}

// Descriptor describes the OR-Set for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:      "OR-Set",
		Source:    "Shapiro et al. 2011",
		Class:     crdt.OpBased,
		Lin:       crdt.ExecutionOrder,
		InFig12:   true,
		OpType:    Type{},
		Spec:      spec.ORSet{},
		Rewriting: Rewriting(),
		Abs:       Abs,
		RandomOp:  RandomOp,
	}
}
