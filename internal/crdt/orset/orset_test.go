package orset

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestORSetAddWinsOverConcurrentRemove(t *testing.T) {
	// The add/remove conflict of Figure 4: a remove only erases the
	// identifiers it observed, so a concurrent add survives.
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(0, "remove", "a") // observes only the first add
	sys.MustInvoke(1, "add", "a")    // concurrent add with a fresh identifier
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"a"}) {
			t.Fatalf("replica %s read %v, want [a]", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("OR-Set must converge")
	}
}

func TestORSetRemoveErasesObservedOnly(t *testing.T) {
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 2})
	add := sys.MustInvoke(0, "add", "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	rem := sys.MustInvoke(1, "remove", "a")
	observed := rem.Ret.([]core.Pair)
	if len(observed) != 1 || observed[0].ID != add.Ret.(uint64) {
		t.Fatalf("remove must observe exactly the delivered add, got %v", observed)
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	got := sys.MustInvoke(0, "read").Ret
	if !core.ValueEqual(got, []string{}) {
		t.Fatalf("read %v, want []", got)
	}
}

func TestORSetRemoveOfAbsentElement(t *testing.T) {
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 1})
	rem := sys.MustInvoke(0, "remove", "ghost")
	if got := rem.Ret.([]core.Pair); len(got) != 0 {
		t.Fatalf("removing an absent element observes nothing, got %v", got)
	}
	got := sys.MustInvoke(0, "read").Ret
	if !core.ValueEqual(got, []string{}) {
		t.Fatalf("read %v, want []", got)
	}
}

func TestORSetAddIdentifiersUnique(t *testing.T) {
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 2})
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		l := sys.MustInvoke(clock.ReplicaID(i%2), "add", "a")
		id := l.Ret.(uint64)
		if seen[id] {
			t.Fatalf("identifier %d reused", id)
		}
		seen[id] = true
	}
}

func TestORSetRewriting(t *testing.T) {
	rw := Rewriting()
	add := &core.Label{ID: 1, Method: "add", Args: []core.Value{"a"}, Ret: uint64(7), Kind: core.KindUpdate}
	imgs, err := rw.Rewrite(add)
	if err != nil || len(imgs) != 1 {
		t.Fatalf("add rewriting failed: %v %v", imgs, err)
	}
	if imgs[0].Args[1] != uint64(7) || imgs[0].Ret != nil {
		t.Fatalf("rewritten add wrong: %v", imgs[0])
	}
	rem := &core.Label{ID: 2, Method: "remove", Args: []core.Value{"a"}, Ret: []core.Pair{{Elem: "a", ID: 7}}, Kind: core.KindQueryUpdate}
	imgs, err = rw.Rewrite(rem)
	if err != nil || len(imgs) != 2 {
		t.Fatalf("remove rewriting failed: %v %v", imgs, err)
	}
	if imgs[0].Method != "readIds" || !imgs[0].IsQuery() {
		t.Fatalf("query part wrong: %v", imgs[0])
	}
	if imgs[1].Method != "removeIds" || !imgs[1].IsUpdate() {
		t.Fatalf("update part wrong: %v", imgs[1])
	}
	if _, err := rw.Rewrite(&core.Label{Method: "add", Args: []core.Value{"a"}}); err == nil {
		t.Fatal("add without identifier return must fail to rewrite")
	}
	if _, err := rw.Rewrite(&core.Label{Method: "remove", Args: []core.Value{"a"}}); err == nil {
		t.Fatal("remove without observed-pairs return must fail to rewrite")
	}
	read := &core.Label{Method: "read", Ret: []string{}, Kind: core.KindQuery}
	if imgs, err := rw.Rewrite(read); err != nil || len(imgs) != 1 {
		t.Fatal("read must pass through")
	}
}

func TestORSetFig5StyleHistoryRALinearizable(t *testing.T) {
	// The Section 2.2 phenomenon: reads that saw every update return {a, b}
	// even though every plain-Set linearization would end with a remove.
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "b")
	sys.MustInvoke(0, "add", "a")
	sys.MustInvoke(0, "remove", "a") // observes only its own add of a
	sys.MustInvoke(1, "add", "a")
	sys.MustInvoke(1, "add", "b")
	sys.MustInvoke(1, "remove", "b") // observes only its own add of b
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"a", "b"}) {
			t.Fatalf("replica %s read %v, want [a b]", r, got)
		}
	}
	res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
	if !res.OK {
		t.Fatalf("OR-Set history must be RA-linearizable after rewriting: %v", res.LastErr)
	}
	if res.Strategy == nil || *res.Strategy != core.StrategyExecutionOrder {
		t.Fatalf("OR-Set must linearize in execution order, got %v", res.Strategy)
	}
}

func TestORSetStateHelpers(t *testing.T) {
	st := NewState()
	st[core.Pair{Elem: "b", ID: 2}] = true
	st[core.Pair{Elem: "a", ID: 1}] = true
	if !core.ValueEqual(st.Values(), []string{"a", "b"}) {
		t.Fatal("Values wrong")
	}
	if got := st.PairsOf("a"); len(got) != 1 || got[0].ID != 1 {
		t.Fatal("PairsOf wrong")
	}
	if st.String() != "{a#1 b#2}" {
		t.Fatalf("String wrong: %q", st.String())
	}
	clone := st.CloneState().(State)
	delete(clone, core.Pair{Elem: "a", ID: 1})
	if len(st) != 2 {
		t.Fatal("CloneState must not alias")
	}
	if st.EqualState(clone) {
		t.Fatal("EqualState wrong after mutation")
	}
	if Abs(st).String() != "[a#1 b#2]" {
		t.Fatalf("Abs wrong: %v", Abs(st))
	}
}

func TestORSetErrors(t *testing.T) {
	typ := Type{}
	ts := clock.Timestamp{Time: 1, Replica: 0}
	if _, _, err := typ.Generate(NewState(), "add", nil, ts); err == nil {
		t.Fatal("add without argument must fail")
	}
	if _, _, err := typ.Generate(NewState(), "add", []core.Value{1}, ts); err == nil {
		t.Fatal("mistyped add must fail")
	}
	if _, _, err := typ.Generate(NewState(), "remove", nil, ts); err == nil {
		t.Fatal("remove without argument must fail")
	}
	if _, _, err := typ.Generate(NewState(), "remove", []core.Value{1}, ts); err == nil {
		t.Fatal("mistyped remove must fail")
	}
	if _, _, err := typ.Generate(NewState(), "pop", nil, ts); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestORSetRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(41))
	elems := []string{"a", "b"}
	for trial := 0; trial < 10; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 7; i++ {
			if _, err := d.RandomOp(rng, sys, elems); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.DeliverRandom(rng) {
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random OR-Set history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
