package mvreg

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestMVRegisterConcurrentWritesBothKept(t *testing.T) {
	d := Descriptor()
	sys := d.NewSBSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "write", "a")
	sys.MustInvoke(1, "write", "b")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"a", "b"}) {
			t.Fatalf("replica %s read %v, want [a b]", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("register must converge")
	}
	// A subsequent write dominates both concurrent values.
	sys.MustInvoke(0, "write", "c")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"c"}) {
			t.Fatalf("replica %s read %v, want [c]", r, got)
		}
	}
}

func TestMVRegisterWriteVectorDominatesSeenWrites(t *testing.T) {
	sys := runtime.NewSBSystem(Type{}, runtime.Config{Replicas: 2})
	w1 := sys.MustInvoke(0, "write", "a")
	if err := sys.Broadcast(0); err != nil {
		t.Fatal(err)
	}
	w2 := sys.MustInvoke(1, "write", "b")
	v1 := w1.Ret.(clock.VersionVector)
	v2 := w2.Ret.(clock.VersionVector)
	if !v1.Less(v2) {
		t.Fatalf("a write that saw another must dominate it: %v vs %v", v1, v2)
	}
}

func TestMVRegisterConcurrentVectorsIncomparable(t *testing.T) {
	sys := runtime.NewSBSystem(Type{}, runtime.Config{Replicas: 2})
	w1 := sys.MustInvoke(0, "write", "a")
	w2 := sys.MustInvoke(1, "write", "b")
	v1 := w1.Ret.(clock.VersionVector)
	v2 := w2.Ret.(clock.VersionVector)
	if !v1.Concurrent(v2) {
		t.Fatalf("concurrent writes must carry incomparable vectors: %v vs %v", v1, v2)
	}
}

func TestMVRegisterMergeAndLeq(t *testing.T) {
	typ := Type{}
	v1 := clock.NewVersionVector()
	v1.Increment(0)
	v2 := clock.NewVersionVector()
	v2.Increment(1)
	v12 := v1.Merge(v2)
	v12.Increment(0)

	a := State{{Elem: "a", VV: v1}}
	b := State{{Elem: "b", VV: v2}}
	c := State{{Elem: "c", VV: v12}}

	m := typ.Merge(a, b).(State)
	if len(m) != 2 {
		t.Fatalf("concurrent entries must both survive merge: %v", m)
	}
	m2 := typ.Merge(m, c).(State)
	if len(m2) != 1 || m2[0].Elem != "c" {
		t.Fatalf("dominating entry must win the merge: %v", m2)
	}
	if !typ.Leq(a, m) || !typ.Leq(b, m) || typ.Leq(c, a) {
		t.Fatal("Leq wrong")
	}
	// Merge is idempotent and commutative.
	if !typ.Merge(a, a).EqualState(a) {
		t.Fatal("merge must be idempotent")
	}
	if !typ.Merge(a, b).EqualState(typ.Merge(b, a)) {
		t.Fatal("merge must be commutative")
	}
}

func TestMVRegisterLocalApplyFreshAndArgs(t *testing.T) {
	v1 := clock.NewVersionVector()
	v1.Increment(0)
	v2 := clock.NewVersionVector()
	v2.Increment(1)
	v12 := v1.Merge(v2)
	v12.Increment(0)

	w1 := &core.Label{Method: "write", Args: []core.Value{"a"}, Ret: v1, Origin: 0}
	w2 := &core.Label{Method: "write", Args: []core.Value{"b"}, Ret: v2, Origin: 1}
	w3 := &core.Label{Method: "write", Args: []core.Value{"c"}, Ret: v12, Origin: 0}

	st := NewState()
	st = LocalApply(st, w1).(State)
	st = LocalApply(st, w2).(State)
	if len(st) != 2 {
		t.Fatalf("concurrent local effectors must both survive: %v", st)
	}
	if !Fresh(st, w3) {
		t.Fatal("dominating write must be fresh")
	}
	st = LocalApply(st, w3).(State)
	if len(st) != 1 || st[0].Elem != "c" {
		t.Fatalf("dominating local effector must replace dominated entries: %v", st)
	}
	if Fresh(st, w1) {
		t.Fatal("dominated write must not be fresh")
	}
	if !ArgLess(w1, w3) || ArgLess(w3, w1) || ArgLess(w1, w2) {
		t.Fatal("ArgLess wrong")
	}
	if !ArgEqual(w1, w1) || ArgEqual(w1, w2) {
		t.Fatal("ArgEqual wrong")
	}
}

func TestMVRegisterRewriting(t *testing.T) {
	v := clock.NewVersionVector()
	v.Increment(2)
	l := &core.Label{ID: 1, Method: "write", Args: []core.Value{"a"}, Ret: v, Kind: core.KindUpdate}
	imgs, err := Rewriting().Rewrite(l)
	if err != nil || len(imgs) != 1 {
		t.Fatalf("rewrite failed: %v %v", imgs, err)
	}
	if len(imgs[0].Args) != 2 || imgs[0].Ret != nil {
		t.Fatalf("rewritten write wrong: %v", imgs[0])
	}
	if _, err := Rewriting().Rewrite(&core.Label{Method: "write", Args: []core.Value{"a"}}); err == nil {
		t.Fatal("write without vector return must fail to rewrite")
	}
	read := &core.Label{Method: "read", Ret: []string{"a"}, Kind: core.KindQuery}
	imgs, err = Rewriting().Rewrite(read)
	if err != nil || len(imgs) != 1 || imgs[0].Method != "read" {
		t.Fatal("read must be left unchanged")
	}
}

func TestMVRegisterErrors(t *testing.T) {
	typ := Type{}
	if _, _, err := typ.Apply(NewState(), "write", nil, clock.Bottom, 0); err == nil {
		t.Fatal("write without argument must fail")
	}
	if _, _, err := typ.Apply(NewState(), "write", []core.Value{1}, clock.Bottom, 0); err == nil {
		t.Fatal("mistyped write must fail")
	}
	if _, _, err := typ.Apply(NewState(), "wat", nil, clock.Bottom, 0); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestMVRegisterRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(17))
	elems := []string{"a", "b", "c"}
	for trial := 0; trial < 10; trial++ {
		sys := d.NewSBSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 7; i++ {
			if _, err := d.RandomOp(rng, sys, elems); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				sys.ExchangeRandom(rng)
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random MV-Register history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
