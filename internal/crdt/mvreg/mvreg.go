// Package mvreg implements the state-based Multi-Value Register of Listing 7
// (Appendix E.1): every write is tagged with a version vector; a replica
// keeps the set of writes with pairwise-incomparable vectors, so concurrent
// writes survive side by side until a later write dominates them. The
// MV-Register is RA-linearizable with respect to Spec(MV-Reg) using
// execution-order linearizations (Figure 12); its local effectors fall in the
// "uniquely-identified" class of Appendix D.3.
package mvreg

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// Entry is one (value, version vector) pair held by the register.
type Entry struct {
	Elem string
	VV   clock.VersionVector
}

// State is the payload: the set S of entries.
type State []Entry

// NewState returns the empty register.
func NewState() State { return State{} }

// CloneState deep-copies the entries.
func (s State) CloneState() runtime.State {
	c := make(State, len(s))
	for i, e := range s {
		c[i] = Entry{Elem: e.Elem, VV: e.VV.Copy()}
	}
	return c
}

// EqualState reports set equality of the entries.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	if !ok || len(s) != len(t) {
		return false
	}
	for _, e := range s {
		if !t.contains(e) {
			return false
		}
	}
	return true
}

func (s State) contains(e Entry) bool {
	for _, f := range s {
		if f.Elem == e.Elem && f.VV.Equal(e.VV) {
			return true
		}
	}
	return false
}

// Values returns the sorted set of held values.
func (s State) Values() []string {
	elems := make([]string, 0, len(s))
	for _, e := range s {
		elems = append(elems, e.Elem)
	}
	return core.SortedSet(elems)
}

// String renders the entries sorted by value.
func (s State) String() string {
	parts := make([]string, 0, len(s))
	for _, e := range s {
		parts = append(parts, fmt.Sprintf("%s%s", e.Elem, e.VV))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " ") + "}"
}

// Type is the state-based Multi-Value Register CRDT.
type Type struct{}

// Name returns "MV-Register".
func (Type) Name() string { return "MV-Register" }

// Methods lists write and read. write returns the version vector it
// generated; the query-update rewriting moves it into the arguments.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "write", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the empty register.
func (Type) Init() runtime.State { return NewState() }

// Apply implements the local methods of Listing 7.
func (Type) Apply(s runtime.State, method string, args []core.Value, ts clock.Timestamp, r clock.ReplicaID) (core.Value, runtime.State, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("mvreg: unexpected state %T", s)
	}
	switch method {
	case "write":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("mvreg: write expects one argument")
		}
		v, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("mvreg: write expects a string, got %T", args[0])
		}
		vv := writeVector(st, r)
		return vv, State{{Elem: v, VV: vv}}, nil
	case "read":
		return st.Values(), st, nil
	default:
		return nil, nil, fmt.Errorf("mvreg: unknown method %q", method)
	}
}

// writeVector computes the version vector of a write originating at replica
// r: the component-wise maximum of all vectors in the state, with r's
// component incremented.
func writeVector(st State, r clock.ReplicaID) clock.VersionVector {
	vv := clock.NewVersionVector()
	for _, e := range st {
		vv = vv.Merge(e.VV)
	}
	vv.Increment(r)
	return vv
}

// Merge keeps, from both sides, the entries that are not strictly dominated
// by an entry of the other side (Listing 7).
func (Type) Merge(a, b runtime.State) runtime.State {
	x, y := a.(State), b.(State)
	out := State{}
	keep := func(e Entry, other State) bool {
		for _, f := range other {
			if e.VV.Less(f.VV) {
				return false
			}
		}
		return true
	}
	for _, e := range x {
		if keep(e, y) && !out.contains(e) {
			out = append(out, Entry{Elem: e.Elem, VV: e.VV.Copy()})
		}
	}
	for _, e := range y {
		if keep(e, x) && !out.contains(e) {
			out = append(out, Entry{Elem: e.Elem, VV: e.VV.Copy()})
		}
	}
	return out
}

// Leq is the compare method of Listing 7: every entry of a is dominated by
// (or equal to) some entry of b.
func (Type) Leq(a, b runtime.State) bool {
	x, y := a.(State), b.(State)
	for _, e := range x {
		ok := false
		for _, f := range y {
			if e.VV.Leq(f.VV) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Abs is the refinement mapping: the entries read as a specification state.
func Abs(s runtime.State) core.AbsState {
	st := s.(State)
	out := make(spec.MVRegState, 0, len(st))
	for _, e := range st {
		out = append(out, spec.MVPair{Elem: e.Elem, VV: e.VV.Copy()})
	}
	return out
}

// rewriting moves the version vector returned by write into its arguments
// (Appendix E.1: write(a) becomes write(a, V')). A named zero-size
// (comparable) type rather than a RewriteFunc closure, so engine sessions can
// key their rewrite cache on its value.
type rewriting struct{}

// Rewrite implements core.Rewriting.
func (rewriting) Rewrite(l *core.Label) ([]*core.Label, error) {
	if l.Method != "write" {
		return []*core.Label{l.Clone()}, nil
	}
	vv, ok := l.Ret.(clock.VersionVector)
	if !ok {
		return nil, fmt.Errorf("mvreg: write label %v has no version-vector return", l)
	}
	c := l.Clone()
	c.Args = []core.Value{l.Args[0], vv}
	c.Ret = nil
	return []*core.Label{c}, nil
}

// Rewriting returns the Appendix E.1 query-update rewriting.
func Rewriting() core.Rewriting {
	return rewriting{}
}

// LocalApply is the Appendix E.1 local effector: add the written entry and
// drop every strictly dominated entry.
func LocalApply(s runtime.State, l *core.Label) runtime.State {
	st := s.(State)
	vv, ok := l.Ret.(clock.VersionVector)
	if !ok {
		return st.CloneState()
	}
	elem, _ := l.Args[0].(string)
	out := State{}
	for _, e := range st {
		if e.VV.Less(vv) {
			continue
		}
		out = append(out, Entry{Elem: e.Elem, VV: e.VV.Copy()})
	}
	written := Entry{Elem: elem, VV: vv.Copy()}
	if !out.contains(written) {
		out = append(out, written)
	}
	return out
}

// ArgEqual: local-effector arguments coincide when value and vector coincide.
func ArgEqual(a, b *core.Label) bool {
	va, okA := a.Ret.(clock.VersionVector)
	vb, okB := b.Ret.(clock.VersionVector)
	if !okA || !okB {
		return false
	}
	return a.Args[0] == b.Args[0] && va.Equal(vb)
}

// ArgLess is the strict order on local-effector arguments: version-vector
// domination.
func ArgLess(a, b *core.Label) bool {
	va, okA := a.Ret.(clock.VersionVector)
	vb, okB := b.Ret.(clock.VersionVector)
	if !okA || !okB {
		return false
	}
	return va.Less(vb)
}

// Fresh is the P1 predicate of Appendix E.1: the write's vector is not
// dominated by any vector already in the state.
func Fresh(s runtime.State, l *core.Label) bool {
	vv, ok := l.Ret.(clock.VersionVector)
	if !ok {
		return true
	}
	for _, e := range s.(State) {
		if vv.Less(e.VV) {
			return false
		}
	}
	return true
}

// RandomOp performs one random register operation.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	if rng.Intn(2) == 0 {
		return sys.Invoke(r, "write", crdt.PickElem(rng, elems))
	}
	return sys.Invoke(r, "read")
}

// Descriptor describes the MV-Register for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:      "Multi-Value Reg.",
		Source:    "DeCandia et al. 2007",
		Class:     crdt.StateBased,
		Lin:       crdt.ExecutionOrder,
		InFig12:   true,
		SBType:    Type{},
		Spec:      spec.MVRegister{},
		Rewriting: Rewriting(),
		Abs:       Abs,
		RandomOp:  RandomOp,
		SB: &crdt.SBProofs{
			EffClass:   crdt.UniquelyIdentified,
			LocalApply: LocalApply,
			ArgEqual:   ArgEqual,
			ArgLess:    ArgLess,
			Fresh:      Fresh,
		},
	}
}
