// Package crdt defines the descriptor through which every CRDT implementation
// in this repository exposes the artefacts needed by the paper's methodology:
// the executable object type (operation-based or state-based), the sequential
// specification, the query-update rewriting γ, the refinement mapping abs, the
// timestamps stored in a state (for Refinement_ts), the linearization class of
// Figure 12, and — for state-based types — the Appendix D proof artefacts
// (local effectors, argument orders, freshness predicates).
//
// The concrete data types live in the sub-packages (counter, pncounter,
// lwwreg, mvreg, lwwset, twopset, orset, rga, wooki); the registry package
// gathers their descriptors into the Figure 12 table.
package crdt

import (
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

// Class says whether a CRDT is operation-based or state-based (the "Imp."
// column of Figure 12).
type Class int

const (
	// OpBased marks operation-based CRDTs (replicas exchange effectors).
	OpBased Class = iota
	// StateBased marks state-based CRDTs (replicas exchange states).
	StateBased
)

// String renders the class using the paper's abbreviations.
func (c Class) String() string {
	switch c {
	case OpBased:
		return "OB"
	case StateBased:
		return "SB"
	default:
		return "?"
	}
}

// LinClass is the class of linearizations used in the RA-linearizability
// proof (the "Lin." column of Figure 12).
type LinClass int

const (
	// ExecutionOrder: operations are linearized in the order their
	// generators executed (Section 4.1).
	ExecutionOrder LinClass = iota
	// TimestampOrder: operations are linearized by their (virtual)
	// timestamps (Section 4.2).
	TimestampOrder
)

// String renders the linearization class using the paper's abbreviations.
func (c LinClass) String() string {
	switch c {
	case ExecutionOrder:
		return "EO"
	case TimestampOrder:
		return "TO"
	default:
		return "?"
	}
}

// Strategy returns the corresponding constructive checker strategy.
func (c LinClass) Strategy() core.Strategy {
	if c == TimestampOrder {
		return core.StrategyTimestampOrder
	}
	return core.StrategyExecutionOrder
}

// EffClass classifies the local effectors of a state-based CRDT following
// Appendix D.3–D.5.
type EffClass int

const (
	// UniquelyIdentified: every local effector has a unique argument and the
	// arguments carry a partial order consistent with visibility
	// (MV-Register, LWW-Element-Set).
	UniquelyIdentified EffClass = iota
	// Cumulative: arguments coincide exactly for operations with the same
	// method, arguments, return value and origin replica (PN-Counter).
	Cumulative
	// Idempotent: arguments coincide exactly for operations with the same
	// method, arguments and return value (2P-Set).
	Idempotent
)

// String renders the effector class.
func (c EffClass) String() string {
	switch c {
	case UniquelyIdentified:
		return "uniquely-identified"
	case Cumulative:
		return "cumulative"
	case Idempotent:
		return "idempotent"
	default:
		return "?"
	}
}

// SBProofs bundles the Appendix D proof artefacts of a state-based CRDT.
// They are consumed by the verify package to check Prop1..Prop6.
type SBProofs struct {
	// EffClass selects which property set applies.
	EffClass EffClass
	// LocalApply applies the "local effector" of label l (a proof artefact,
	// not part of the state-based semantics) to state s and returns the new
	// state without modifying s.
	LocalApply func(s runtime.State, l *core.Label) runtime.State
	// ArgEqual reports whether two labels carry the same local-effector
	// argument.
	ArgEqual func(a, b *core.Label) bool
	// ArgLess is the strict partial order on local-effector arguments
	// (uniquely-identified class only; nil otherwise).
	ArgLess func(a, b *core.Label) bool
	// Fresh is the predicate P1 (uniquely-identified class: the argument is
	// not dominated by anything in the state) or P2 (cumulative and
	// idempotent classes: the argument has not been incorporated into the
	// state yet).
	Fresh func(s runtime.State, l *core.Label) bool
}

// Invoker is the common surface of runtime.System and runtime.SBSystem used
// by workload generators.
type Invoker interface {
	// Replicas lists the replica identifiers.
	Replicas() []clock.ReplicaID
	// ReplicaState returns a copy of a replica's state.
	ReplicaState(r clock.ReplicaID) runtime.State
	// Invoke performs one operation at a replica.
	Invoke(r clock.ReplicaID, method string, args ...core.Value) (*core.Label, error)
}

// Descriptor describes one CRDT implementation and everything the checking
// and verification harnesses need to know about it.
type Descriptor struct {
	// Name is the data type name as it appears in Figure 12.
	Name string
	// Source cites the origin of the algorithm (the reference in Figure 12).
	Source string
	// Class is operation-based or state-based.
	Class Class
	// Lin is the linearization class used in the proof.
	Lin LinClass
	// InFig12 reports whether the type is one of the nine rows of Figure 12
	// (the RGA addAt variant of Appendix C is not).
	InFig12 bool

	// OpType is the operation-based implementation (nil for state-based
	// types).
	OpType runtime.OpType
	// SBType is the state-based implementation (nil for operation-based
	// types).
	SBType runtime.SBType

	// Spec is the sequential specification used for RA-linearizability.
	Spec core.Spec
	// Rewriting is the query-update rewriting γ (nil means identity).
	Rewriting core.Rewriting
	// Abs is the refinement mapping from replica states to specification
	// states.
	Abs func(runtime.State) core.AbsState
	// StateTimestamps lists the timestamps stored in a replica state; it is
	// required by Refinement_ts and may be nil for types proved with plain
	// Refinement.
	StateTimestamps func(runtime.State) []clock.Timestamp

	// RandomOp performs one randomly chosen, precondition-respecting
	// operation on the given system and returns its label. It is the
	// workload generator used by the random-history experiments.
	RandomOp func(rng *rand.Rand, sys Invoker, elems []string) (*core.Label, error)

	// SB carries the Appendix D proof artefacts (state-based types only).
	SB *SBProofs
}

// NewOpSystem builds an operation-based deployment of the described type.
// It panics when called on a state-based descriptor.
func (d Descriptor) NewOpSystem(cfg runtime.Config) *runtime.System {
	if d.OpType == nil {
		panic("crdt: " + d.Name + " is not operation-based")
	}
	return runtime.NewSystem(d.OpType, cfg)
}

// NewSBSystem builds a state-based deployment of the described type. It
// panics when called on an operation-based descriptor.
func (d Descriptor) NewSBSystem(cfg runtime.Config) *runtime.SBSystem {
	if d.SBType == nil {
		panic("crdt: " + d.Name + " is not state-based")
	}
	return runtime.NewSBSystem(d.SBType, cfg)
}

// CheckOptions returns checker options tailored to the descriptor: its
// rewriting, its designated linearization strategy first, the other strategy
// second, and a bounded exhaustive fallback. The zero Engine value selects
// the pruned search engine whenever internal/search is linked in.
func (d Descriptor) CheckOptions() core.CheckOptions {
	first := d.Lin.Strategy()
	second := core.StrategyTimestampOrder
	if first == core.StrategyTimestampOrder {
		second = core.StrategyExecutionOrder
	}
	return core.CheckOptions{
		Rewriting:     d.Rewriting,
		Strategies:    []core.Strategy{first, second},
		Exhaustive:    true,
		MaxExtensions: 200000,
	}
}

// PickReplica returns a uniformly chosen replica of the system.
func PickReplica(rng *rand.Rand, sys Invoker) clock.ReplicaID {
	rs := sys.Replicas()
	return rs[rng.Intn(len(rs))]
}

// PickElem returns a uniformly chosen element of the alphabet.
func PickElem(rng *rand.Rand, elems []string) string {
	if len(elems) == 0 {
		return "x"
	}
	return elems[rng.Intn(len(elems))]
}
