package twopset

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestTwoPSetAddRemove(t *testing.T) {
	d := Descriptor()
	sys := d.NewSBSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "a")
	sys.MustInvoke(1, "add", "b")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(0, "remove", "b")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"a"}) {
			t.Fatalf("replica %s read %v, want [a]", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("2P-Set must converge")
	}
}

func TestTwoPSetRemoveWinsForever(t *testing.T) {
	// Once removed, an element can never come back, even if an add is
	// delivered afterwards.
	sys := runtime.NewSBSystem(Type{}, runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(1, "remove", "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	got := sys.MustInvoke(0, "read").Ret
	if !core.ValueEqual(got, []string{}) {
		t.Fatalf("read %v, want []", got)
	}
}

func TestTwoPSetRemovePrecondition(t *testing.T) {
	sys := runtime.NewSBSystem(Type{}, runtime.Config{Replicas: 1})
	if _, err := sys.Invoke(0, "remove", "ghost"); err == nil {
		t.Fatal("removing an element never added must fail")
	}
	sys.MustInvoke(0, "add", "a")
	sys.MustInvoke(0, "remove", "a")
	if _, err := sys.Invoke(0, "remove", "a"); err == nil {
		t.Fatal("removing twice must fail")
	}
}

func TestTwoPSetMergeLattice(t *testing.T) {
	typ := Type{}
	a := NewState()
	a.Adds["x"] = true
	b := NewState()
	b.Adds["x"] = true
	b.Removes["x"] = true
	m := typ.Merge(a, b).(State)
	if !typ.Leq(a, m) || !typ.Leq(b, m) || typ.Leq(b, a) {
		t.Fatal("Leq wrong")
	}
	if got := m.Values(); len(got) != 0 {
		t.Fatalf("merge must keep the removal: %v", got)
	}
	if !typ.Merge(a, a).EqualState(a) || !typ.Merge(a, b).EqualState(typ.Merge(b, a)) {
		t.Fatal("merge must be idempotent and commutative")
	}
}

func TestTwoPSetLocalApplyFreshArgs(t *testing.T) {
	add := &core.Label{Method: "add", Args: []core.Value{"a"}}
	rem := &core.Label{Method: "remove", Args: []core.Value{"a"}}
	st := NewState()
	if !Fresh(st, add) || !Fresh(st, rem) {
		t.Fatal("empty state must be fresh")
	}
	st2 := LocalApply(st, add).(State)
	if len(st.Adds) != 0 {
		t.Fatal("LocalApply must not mutate its input")
	}
	if Fresh(st2, add) {
		t.Fatal("re-adding the same element is not fresh")
	}
	st3 := LocalApply(st2, rem).(State)
	if Fresh(st3, rem) {
		t.Fatal("re-removing the same element is not fresh")
	}
	// Idempotence of local effectors (Prop6).
	if !LocalApply(st3, add).(runtime.State).EqualState(st3) ||
		!LocalApply(st3, rem).(runtime.State).EqualState(st3) {
		t.Fatal("local effectors must be idempotent")
	}
	if !ArgEqual(add, add) || ArgEqual(add, rem) ||
		ArgEqual(add, &core.Label{Method: "add", Args: []core.Value{"b"}}) {
		t.Fatal("ArgEqual wrong")
	}
	if Abs(st3).String() != "[]" {
		t.Fatal("Abs wrong")
	}
}

func TestTwoPSetErrors(t *testing.T) {
	typ := Type{}
	if _, _, err := typ.Apply(NewState(), "add", nil, clock.Bottom, 0); err == nil {
		t.Fatal("add without argument must fail")
	}
	if _, _, err := typ.Apply(NewState(), "add", []core.Value{3}, clock.Bottom, 0); err == nil {
		t.Fatal("mistyped add must fail")
	}
	if _, _, err := typ.Apply(NewState(), "clear", nil, clock.Bottom, 0); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestTwoPSetRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		sys := d.NewSBSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 7; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				sys.ExchangeRandom(rng)
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random 2P-Set history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
