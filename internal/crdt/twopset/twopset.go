// Package twopset implements the state-based Two-Phase Set of Listing 10
// (Appendix E.4): an add set and a remove (tombstone) set, merged by union.
// An element can be added once and removed once; once removed it can never be
// re-added. The 2P-Set is RA-linearizable with respect to Spec(Set) using
// execution-order linearizations (Figure 12); its local effectors fall in the
// "idempotent" class of Appendix D.5.
package twopset

import (
	"fmt"
	"math/rand"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// State is the payload: the add set A and the remove set R.
type State struct {
	Adds    map[string]bool
	Removes map[string]bool
}

// NewState returns the empty 2P-Set.
func NewState() State {
	return State{Adds: map[string]bool{}, Removes: map[string]bool{}}
}

// CloneState deep-copies both sets.
func (s State) CloneState() runtime.State {
	c := NewState()
	for e := range s.Adds {
		c.Adds[e] = true
	}
	for e := range s.Removes {
		c.Removes[e] = true
	}
	return c
}

// EqualState reports equality of both sets.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	if !ok || len(s.Adds) != len(t.Adds) || len(s.Removes) != len(t.Removes) {
		return false
	}
	for e := range s.Adds {
		if !t.Adds[e] {
			return false
		}
	}
	for e := range s.Removes {
		if !t.Removes[e] {
			return false
		}
	}
	return true
}

// Values returns A \ R, sorted.
func (s State) Values() []string {
	var out []string
	for e := range s.Adds {
		if !s.Removes[e] {
			out = append(out, e)
		}
	}
	return core.SortedSet(out)
}

// String renders both sets.
func (s State) String() string {
	set := func(m map[string]bool) string {
		out := make([]string, 0, len(m))
		for e := range m {
			out = append(out, e)
		}
		return "{" + strings.Join(core.SortedSet(out), " ") + "}"
	}
	return fmt.Sprintf("A=%s R=%s", set(s.Adds), set(s.Removes))
}

// Type is the state-based 2P-Set CRDT.
type Type struct{}

// Name returns "2P-Set".
func (Type) Name() string { return "2P-Set" }

// Methods lists add, remove and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "add", Kind: core.KindUpdate},
		{Name: "remove", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the empty set.
func (Type) Init() runtime.State { return NewState() }

// Apply implements the local methods of Listing 10.
func (Type) Apply(s runtime.State, method string, args []core.Value, ts clock.Timestamp, r clock.ReplicaID) (core.Value, runtime.State, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("twopset: unexpected state %T", s)
	}
	switch method {
	case "add":
		a, err := oneString(method, args)
		if err != nil {
			return nil, nil, err
		}
		n := st.CloneState().(State)
		n.Adds[a] = true
		return nil, n, nil
	case "remove":
		a, err := oneString(method, args)
		if err != nil {
			return nil, nil, err
		}
		if !st.Adds[a] || st.Removes[a] {
			return nil, nil, fmt.Errorf("twopset: remove precondition: %q not currently in the set", a)
		}
		n := st.CloneState().(State)
		n.Removes[a] = true
		return nil, n, nil
	case "read":
		return st.Values(), st, nil
	default:
		return nil, nil, fmt.Errorf("twopset: unknown method %q", method)
	}
}

func oneString(method string, args []core.Value) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("twopset: %s expects one argument", method)
	}
	a, ok := args[0].(string)
	if !ok {
		return "", fmt.Errorf("twopset: %s expects a string, got %T", method, args[0])
	}
	return a, nil
}

// Merge takes the union of both sets.
func (Type) Merge(a, b runtime.State) runtime.State {
	x, y := a.(State), b.(State)
	out := x.CloneState().(State)
	for e := range y.Adds {
		out.Adds[e] = true
	}
	for e := range y.Removes {
		out.Removes[e] = true
	}
	return out
}

// Leq is set inclusion on both components.
func (Type) Leq(a, b runtime.State) bool {
	x, y := a.(State), b.(State)
	for e := range x.Adds {
		if !y.Adds[e] {
			return false
		}
	}
	for e := range x.Removes {
		if !y.Removes[e] {
			return false
		}
	}
	return true
}

// Abs is the refinement mapping: A \ R.
func Abs(s runtime.State) core.AbsState {
	out := spec.SetState{}
	for _, v := range s.(State).Values() {
		out[v] = true
	}
	return out
}

// LocalApply is the Appendix E.4 local effector: insert the element into A
// (add) or R (remove).
func LocalApply(s runtime.State, l *core.Label) runtime.State {
	st := s.(State).CloneState().(State)
	elem, _ := l.Args[0].(string)
	switch l.Method {
	case "add":
		st.Adds[elem] = true
	case "remove":
		st.Removes[elem] = true
	}
	return st
}

// ArgEqual: local-effector arguments coincide when method and element
// coincide (idempotent class).
func ArgEqual(a, b *core.Label) bool {
	return a.Method == b.Method && core.ValueEqual(a.Args, b.Args)
}

// Fresh is the P2 predicate of Appendix E.4: the element has not been added
// (for add) or removed (for remove) in the state yet.
func Fresh(s runtime.State, l *core.Label) bool {
	st := s.(State)
	elem, _ := l.Args[0].(string)
	switch l.Method {
	case "add":
		return !st.Adds[elem]
	case "remove":
		return !st.Removes[elem]
	default:
		return true
	}
}

// RandomOp performs one random 2P-Set operation respecting the usage
// discipline: each element is added at most once (globally, by drawing fresh
// names) and removed at most once.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	st := sys.ReplicaState(r).(State)
	switch rng.Intn(4) {
	case 0, 1:
		return sys.Invoke(r, "add", FreshElem(rng))
	case 2:
		candidates := st.Values()
		if len(candidates) == 0 {
			return sys.Invoke(r, "read")
		}
		return sys.Invoke(r, "remove", candidates[rng.Intn(len(candidates))])
	default:
		return sys.Invoke(r, "read")
	}
}

// FreshElem returns a fresh element name for workload generation, honouring
// the 2P-Set usage assumption that a value is never added twice. Names come
// from the workload's own generator so that equal seeds yield byte-identical
// histories (64 random bits make collisions within a history negligible).
func FreshElem(rng *rand.Rand) string {
	return fmt.Sprintf("p%x", rng.Uint64())
}

// Descriptor describes the 2P-Set for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:     "2P-Set",
		Source:   "Shapiro et al. 2011",
		Class:    crdt.StateBased,
		Lin:      crdt.ExecutionOrder,
		InFig12:  true,
		SBType:   Type{},
		Spec:     spec.Set{},
		Abs:      Abs,
		RandomOp: RandomOp,
		SB: &crdt.SBProofs{
			EffClass:   crdt.Idempotent,
			LocalApply: LocalApply,
			ArgEqual:   ArgEqual,
			Fresh:      Fresh,
		},
	}
}
