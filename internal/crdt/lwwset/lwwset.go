// Package lwwset implements the state-based Last-Writer-Wins Element Set of
// Listing 8 (Appendix E.2): adds and removes are tagged with timestamps and
// an element is present when its latest add is newer than every remove of it.
// The LWW-Element-Set is RA-linearizable with respect to Spec(Set) using
// timestamp-order linearizations (Figure 12); its local effectors fall in the
// "uniquely-identified" class of Appendix D.3.
package lwwset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// Tagged is an element tagged with the timestamp of the add or remove that
// produced it.
type Tagged struct {
	Elem string
	TS   clock.Timestamp
}

// State is the payload: the add set A and the remove set R.
type State struct {
	Adds    map[Tagged]bool
	Removes map[Tagged]bool
}

// NewState returns the empty LWW-Element-Set.
func NewState() State {
	return State{Adds: map[Tagged]bool{}, Removes: map[Tagged]bool{}}
}

// CloneState deep-copies both sets.
func (s State) CloneState() runtime.State {
	c := NewState()
	for t := range s.Adds {
		c.Adds[t] = true
	}
	for t := range s.Removes {
		c.Removes[t] = true
	}
	return c
}

// EqualState reports equality of both sets.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	if !ok || len(s.Adds) != len(t.Adds) || len(s.Removes) != len(t.Removes) {
		return false
	}
	for x := range s.Adds {
		if !t.Adds[x] {
			return false
		}
	}
	for x := range s.Removes {
		if !t.Removes[x] {
			return false
		}
	}
	return true
}

// Values returns the visible elements: those with an add newer than every
// remove of the same element.
func (s State) Values() []string {
	var out []string
	for a := range s.Adds {
		visible := true
		for r := range s.Removes {
			if r.Elem == a.Elem && !r.TS.Less(a.TS) {
				visible = false
				break
			}
		}
		if visible {
			out = append(out, a.Elem)
		}
	}
	return core.SortedSet(out)
}

// Timestamps returns every timestamp stored in the state.
func (s State) Timestamps() []clock.Timestamp {
	out := make([]clock.Timestamp, 0, len(s.Adds)+len(s.Removes))
	for a := range s.Adds {
		out = append(out, a.TS)
	}
	for r := range s.Removes {
		out = append(out, r.TS)
	}
	return out
}

// String renders the two tag sets.
func (s State) String() string {
	format := func(m map[Tagged]bool) string {
		parts := make([]string, 0, len(m))
		for t := range m {
			parts = append(parts, fmt.Sprintf("%s@%s", t.Elem, t.TS))
		}
		sort.Strings(parts)
		return "{" + strings.Join(parts, " ") + "}"
	}
	return fmt.Sprintf("A=%s R=%s", format(s.Adds), format(s.Removes))
}

// Type is the state-based LWW-Element-Set CRDT.
type Type struct{}

// Name returns "LWW-Element-Set".
func (Type) Name() string { return "LWW-Element-Set" }

// Methods lists add and remove (both consume timestamps) and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "add", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "remove", Kind: core.KindUpdate, GeneratesTimestamp: true},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the empty set.
func (Type) Init() runtime.State { return NewState() }

// Apply implements the local methods of Listing 8.
func (Type) Apply(s runtime.State, method string, args []core.Value, ts clock.Timestamp, r clock.ReplicaID) (core.Value, runtime.State, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("lwwset: unexpected state %T", s)
	}
	switch method {
	case "add", "remove":
		if len(args) != 1 {
			return nil, nil, fmt.Errorf("lwwset: %s expects one argument", method)
		}
		a, ok := args[0].(string)
		if !ok {
			return nil, nil, fmt.Errorf("lwwset: %s expects a string, got %T", method, args[0])
		}
		n := st.CloneState().(State)
		if method == "add" {
			n.Adds[Tagged{Elem: a, TS: ts}] = true
		} else {
			n.Removes[Tagged{Elem: a, TS: ts}] = true
		}
		return nil, n, nil
	case "read":
		return st.Values(), st, nil
	default:
		return nil, nil, fmt.Errorf("lwwset: unknown method %q", method)
	}
}

// Merge takes the union of both tag sets.
func (Type) Merge(a, b runtime.State) runtime.State {
	x, y := a.(State), b.(State)
	out := x.CloneState().(State)
	for t := range y.Adds {
		out.Adds[t] = true
	}
	for t := range y.Removes {
		out.Removes[t] = true
	}
	return out
}

// Leq is set inclusion on both components.
func (Type) Leq(a, b runtime.State) bool {
	x, y := a.(State), b.(State)
	for t := range x.Adds {
		if !y.Adds[t] {
			return false
		}
	}
	for t := range x.Removes {
		if !y.Removes[t] {
			return false
		}
	}
	return true
}

// Abs is the refinement mapping: the set of visible elements.
func Abs(s runtime.State) core.AbsState {
	out := spec.SetState{}
	for _, v := range s.(State).Values() {
		out[v] = true
	}
	return out
}

// StateTimestamps lists the timestamps stored in the state (Refinement_ts).
func StateTimestamps(s runtime.State) []clock.Timestamp { return s.(State).Timestamps() }

// LocalApply is the Appendix E.2 local effector: insert the tagged element
// into A (add) or R (remove).
func LocalApply(s runtime.State, l *core.Label) runtime.State {
	st := s.(State).CloneState().(State)
	elem, _ := l.Args[0].(string)
	switch l.Method {
	case "add":
		st.Adds[Tagged{Elem: elem, TS: l.TS}] = true
	case "remove":
		st.Removes[Tagged{Elem: elem, TS: l.TS}] = true
	}
	return st
}

// ArgEqual: local-effector arguments coincide when method, element and
// timestamp coincide.
func ArgEqual(a, b *core.Label) bool {
	return a.Method == b.Method && core.ValueEqual(a.Args, b.Args) && a.TS == b.TS
}

// ArgLess orders local-effector arguments by their timestamps.
func ArgLess(a, b *core.Label) bool { return a.TS.Less(b.TS) }

// Fresh is the P1 predicate of Appendix E.2: the operation's timestamp is not
// smaller than any timestamp stored in the state.
func Fresh(s runtime.State, l *core.Label) bool {
	for _, ts := range s.(State).Timestamps() {
		if l.TS.Less(ts) {
			return false
		}
	}
	return true
}

// RandomOp performs one random LWW-Element-Set operation.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	switch rng.Intn(4) {
	case 0, 1:
		return sys.Invoke(r, "add", crdt.PickElem(rng, elems))
	case 2:
		return sys.Invoke(r, "remove", crdt.PickElem(rng, elems))
	default:
		return sys.Invoke(r, "read")
	}
}

// Descriptor describes the LWW-Element-Set for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:            "LWW-Element Set",
		Source:          "Shapiro et al. 2011",
		Class:           crdt.StateBased,
		Lin:             crdt.TimestampOrder,
		InFig12:         true,
		SBType:          Type{},
		Spec:            spec.Set{},
		Abs:             Abs,
		StateTimestamps: StateTimestamps,
		RandomOp:        RandomOp,
		SB: &crdt.SBProofs{
			EffClass:   crdt.UniquelyIdentified,
			LocalApply: LocalApply,
			ArgEqual:   ArgEqual,
			ArgLess:    ArgLess,
			Fresh:      Fresh,
		},
	}
}
