package lwwset

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestLWWSetAddRemoveByTimestamp(t *testing.T) {
	d := Descriptor()
	sys := d.NewSBSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "a")
	sys.MustInvoke(0, "remove", "a") // remove has the larger timestamp
	sys.MustInvoke(1, "add", "b")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"b"}) {
			t.Fatalf("replica %s read %v, want [b]", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("set must converge")
	}
	// A later add re-inserts the element.
	sys.MustInvoke(1, "add", "a")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	got := sys.MustInvoke(0, "read").Ret
	if !core.ValueEqual(got, []string{"a", "b"}) {
		t.Fatalf("read %v, want [a b]", got)
	}
}

func TestLWWSetConcurrentAddRemoveResolvedByTimestamp(t *testing.T) {
	// The operation with the larger timestamp wins, regardless of delivery
	// order.
	d := Descriptor()
	sys := d.NewSBSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "add", "x")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	rem := sys.MustInvoke(0, "remove", "x")
	add := sys.MustInvoke(1, "add", "x")
	if !rem.TS.Less(add.TS) {
		t.Fatalf("expected the concurrent add to carry the larger timestamp (%v vs %v)", rem.TS, add.TS)
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		got := sys.MustInvoke(r, "read").Ret
		if !core.ValueEqual(got, []string{"x"}) {
			t.Fatalf("replica %s read %v, want [x]", r, got)
		}
	}
}

func TestLWWSetMergeLattice(t *testing.T) {
	typ := Type{}
	a := NewState()
	a.Adds[Tagged{Elem: "x", TS: clock.Timestamp{Time: 1, Replica: 0}}] = true
	b := NewState()
	b.Removes[Tagged{Elem: "x", TS: clock.Timestamp{Time: 2, Replica: 1}}] = true
	m := typ.Merge(a, b).(State)
	if len(m.Adds) != 1 || len(m.Removes) != 1 {
		t.Fatalf("merge must union both components: %v", m)
	}
	if !typ.Leq(a, m) || !typ.Leq(b, m) || typ.Leq(m, a) {
		t.Fatal("Leq wrong")
	}
	if !typ.Merge(a, a).EqualState(a) || !typ.Merge(a, b).EqualState(typ.Merge(b, a)) {
		t.Fatal("merge must be idempotent and commutative")
	}
	if got := m.Values(); len(got) != 0 {
		t.Fatalf("newer remove must hide the element, got %v", got)
	}
}

func TestLWWSetLocalApplyFreshArgs(t *testing.T) {
	add := &core.Label{Method: "add", Args: []core.Value{"a"}, TS: clock.Timestamp{Time: 1, Replica: 0}}
	rem := &core.Label{Method: "remove", Args: []core.Value{"a"}, TS: clock.Timestamp{Time: 2, Replica: 1}}
	st := NewState()
	if !Fresh(st, add) {
		t.Fatal("empty state must be fresh")
	}
	st2 := LocalApply(st, add).(State)
	if len(st.Adds) != 0 {
		t.Fatal("LocalApply must not mutate its input")
	}
	if !Fresh(st2, rem) {
		t.Fatal("later remove must be fresh")
	}
	st3 := LocalApply(st2, rem).(State)
	if Fresh(st3, add) {
		t.Fatal("older add must not be fresh in a newer state")
	}
	if got := st3.Values(); len(got) != 0 {
		t.Fatalf("remove with larger timestamp must hide the element: %v", got)
	}
	if !ArgEqual(add, add) || ArgEqual(add, rem) {
		t.Fatal("ArgEqual wrong")
	}
	if !ArgLess(add, rem) || ArgLess(rem, add) {
		t.Fatal("ArgLess wrong")
	}
	if got := StateTimestamps(st3); len(got) != 2 {
		t.Fatalf("StateTimestamps wrong: %v", got)
	}
	if Abs(st3).String() != "[]" {
		t.Fatalf("Abs wrong: %v", Abs(st3))
	}
}

func TestLWWSetErrors(t *testing.T) {
	typ := Type{}
	if _, _, err := typ.Apply(NewState(), "add", nil, clock.Bottom, 0); err == nil {
		t.Fatal("add without argument must fail")
	}
	if _, _, err := typ.Apply(NewState(), "add", []core.Value{1}, clock.Bottom, 0); err == nil {
		t.Fatal("mistyped add must fail")
	}
	if _, _, err := typ.Apply(NewState(), "clear", nil, clock.Bottom, 0); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestLWWSetRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(23))
	elems := []string{"a", "b"}
	for trial := 0; trial < 10; trial++ {
		sys := d.NewSBSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 7; i++ {
			if _, err := d.RandomOp(rng, sys, elems); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				sys.ExchangeRandom(rng)
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random LWW-Element-Set history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
