package counter

import (
	"math/rand"
	"testing"

	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestCounterBasics(t *testing.T) {
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "inc")
	sys.MustInvoke(0, "inc")
	sys.MustInvoke(1, "dec")
	if got := sys.MustInvoke(0, "read").Ret; got != int64(2) {
		t.Fatalf("origin read %v, want 2", got)
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		if got := sys.MustInvoke(r, "read").Ret; got != int64(1) {
			t.Fatalf("replica %s read %v, want 1", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("counter must converge")
	}
}

func TestCounterUnknownMethod(t *testing.T) {
	sys := runtime.NewSystem(Type{}, runtime.Config{Replicas: 1})
	if _, err := sys.Invoke(0, "mul"); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestCounterAbs(t *testing.T) {
	if got := Abs(State(7)).String(); got != "7" {
		t.Fatalf("Abs rendering %q", got)
	}
	if !State(3).EqualState(State(3)) || State(3).EqualState(State(4)) {
		t.Fatal("EqualState wrong")
	}
	if State(3).EqualState(nil) {
		t.Fatal("EqualState with nil must be false")
	}
}

func TestCounterRALinearizableScripted(t *testing.T) {
	d := Descriptor()
	sys := d.NewOpSystem(runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "inc")
	sys.MustInvoke(1, "inc")
	sys.MustInvoke(0, "read") // sees only one inc
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	sys.MustInvoke(1, "read") // sees both
	res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
	if !res.OK {
		t.Fatalf("counter history must be RA-linearizable: %v", res.LastErr)
	}
	if res.Strategy == nil || *res.Strategy != core.StrategyExecutionOrder {
		t.Fatalf("counter must linearize in execution order, got %v", res.Strategy)
	}
}

func TestCounterRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 8; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.DeliverRandom(rng) {
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random counter history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
