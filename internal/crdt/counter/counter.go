// Package counter implements the operation-based Counter of Listing 3
// (Appendix B.1): inc and dec produce effectors that add or subtract one,
// read returns the local value. The Counter is RA-linearizable with respect
// to Spec(Counter) using execution-order linearizations (Figure 12).
package counter

import (
	"fmt"
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// State is the payload of the operation-based counter: a single integer.
type State int64

// CloneState returns the state itself (integers are immutable).
func (s State) CloneState() runtime.State { return s }

// EqualState reports integer equality.
func (s State) EqualState(o runtime.State) bool {
	c, ok := o.(State)
	return ok && c == s
}

// String renders the counter value.
func (s State) String() string { return fmt.Sprintf("%d", int64(s)) }

// Type is the operation-based counter CRDT.
type Type struct{}

// Name returns "Counter".
func (Type) Name() string { return "Counter" }

// Methods lists inc, dec and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "inc", Kind: core.KindUpdate},
		{Name: "dec", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the zero counter.
func (Type) Init() runtime.State { return State(0) }

// Generate implements the generators of Listing 3.
func (Type) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("counter: unexpected state %T", s)
	}
	switch method {
	case "inc":
		return nil, runtime.EffectorFunc{Name: "eff-inc", F: func(x runtime.State) runtime.State {
			return x.(State) + 1
		}}, nil
	case "dec":
		return nil, runtime.EffectorFunc{Name: "eff-dec", F: func(x runtime.State) runtime.State {
			return x.(State) - 1
		}}, nil
	case "read":
		return int64(st), nil, nil
	default:
		return nil, nil, fmt.Errorf("counter: unknown method %q", method)
	}
}

// Abs is the refinement mapping: a counter state is its own specification
// state.
func Abs(s runtime.State) core.AbsState { return spec.CounterState(s.(State)) }

// RandomOp performs one random counter operation.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	switch rng.Intn(3) {
	case 0:
		return sys.Invoke(r, "inc")
	case 1:
		return sys.Invoke(r, "dec")
	default:
		return sys.Invoke(r, "read")
	}
}

// Descriptor describes the operation-based counter for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:     "Counter",
		Source:   "Shapiro et al. 2011",
		Class:    crdt.OpBased,
		Lin:      crdt.ExecutionOrder,
		InFig12:  true,
		OpType:   Type{},
		Spec:     spec.Counter{},
		Abs:      Abs,
		RandomOp: RandomOp,
	}
}
