package pncounter

import (
	"math/rand"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/runtime"
)

func TestPNCounterBasics(t *testing.T) {
	d := Descriptor()
	sys := d.NewSBSystem(runtime.Config{Replicas: 3})
	sys.MustInvoke(0, "inc")
	sys.MustInvoke(1, "inc")
	sys.MustInvoke(2, "dec")
	if got := sys.MustInvoke(0, "read").Ret; got != int64(1) {
		t.Fatalf("local read %v, want 1", got)
	}
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Replicas() {
		if got := sys.MustInvoke(r, "read").Ret; got != int64(1) {
			t.Fatalf("replica %s read %v, want 1", r, got)
		}
	}
	if !sys.Converged() {
		t.Fatal("PN-Counter must converge")
	}
}

func TestPNCounterMergeIsLub(t *testing.T) {
	typ := Type{}
	a := NewState()
	a.P.Set(0, 3)
	a.N.Set(1, 1)
	b := NewState()
	b.P.Set(0, 1)
	b.P.Set(1, 2)
	m := typ.Merge(a, b).(State)
	if m.P.Get(0) != 3 || m.P.Get(1) != 2 || m.N.Get(1) != 1 {
		t.Fatalf("merge wrong: %v", m)
	}
	if !typ.Leq(a, m) || !typ.Leq(b, m) {
		t.Fatal("merge must be an upper bound")
	}
	if typ.Leq(m, a) {
		t.Fatal("Leq must not hold downwards")
	}
	// Idempotence and commutativity.
	if !typ.Merge(a, a).EqualState(a) {
		t.Fatal("merge must be idempotent")
	}
	if !typ.Merge(a, b).EqualState(typ.Merge(b, a)) {
		t.Fatal("merge must be commutative")
	}
}

func TestPNCounterDuplicateDelivery(t *testing.T) {
	sys := runtime.NewSBSystem(Type{}, runtime.Config{Replicas: 2})
	sys.MustInvoke(0, "inc")
	m, err := sys.Send(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.Receive(1, m.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.MustInvoke(1, "read").Ret; got != int64(1) {
		t.Fatalf("duplicate state delivery must not double-count: got %v", got)
	}
}

func TestPNCounterLocalApplyAndFresh(t *testing.T) {
	st := NewState()
	inc := &core.Label{Method: "inc", Origin: 1}
	dec := &core.Label{Method: "dec", Origin: 2}
	if !Fresh(st, inc) || !Fresh(st, dec) {
		t.Fatal("empty state must be fresh for any operation")
	}
	st2 := LocalApply(st, inc).(State)
	if st2.Value() != 1 || st.Value() != 0 {
		t.Fatal("LocalApply must not mutate its input")
	}
	if Fresh(st2, inc) {
		t.Fatal("second inc from the same replica is not fresh")
	}
	if !Fresh(st2, dec) {
		t.Fatal("dec from another replica must stay fresh")
	}
	st3 := LocalApply(st2, dec).(State)
	if st3.Value() != 0 {
		t.Fatalf("value after inc+dec = %d, want 0", st3.Value())
	}
	if !ArgEqual(inc, &core.Label{Method: "inc", Origin: 1}) ||
		ArgEqual(inc, dec) ||
		ArgEqual(inc, &core.Label{Method: "inc", Origin: 3}) {
		t.Fatal("ArgEqual wrong")
	}
	if Abs(st3).String() != "0" {
		t.Fatal("Abs wrong")
	}
}

func TestPNCounterErrors(t *testing.T) {
	typ := Type{}
	if _, _, err := typ.Apply(NewState(), "pow", nil, clock.Bottom, 0); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestPNCounterRandomWorkloadRALinearizable(t *testing.T) {
	d := Descriptor()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		sys := d.NewSBSystem(runtime.Config{Replicas: 3})
		for i := 0; i < 8; i++ {
			if _, err := d.RandomOp(rng, sys, nil); err != nil {
				t.Fatal(err)
			}
			for rng.Intn(2) == 0 && sys.ExchangeRandom(rng) {
				break
			}
		}
		res := core.CheckRA(sys.History(), d.Spec, d.CheckOptions())
		if !res.OK {
			t.Fatalf("trial %d: random PN-Counter history not RA-linearizable: %v\n%s",
				trial, res.LastErr, sys.History())
		}
	}
}
