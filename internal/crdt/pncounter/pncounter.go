// Package pncounter implements the state-based PN-Counter of Listing 9
// (Appendix E.3): one increment vector and one decrement vector per replica,
// merged component-wise. The PN-Counter is RA-linearizable with respect to
// Spec(Counter) using execution-order linearizations (Figure 12); its local
// effectors fall in the "cumulative" class of Appendix D.4.
package pncounter

import (
	"fmt"
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

// State is the payload: the P (increments) and N (decrements) vectors.
type State struct {
	P clock.VersionVector
	N clock.VersionVector
}

// NewState returns an empty PN-Counter state.
func NewState() State {
	return State{P: clock.NewVersionVector(), N: clock.NewVersionVector()}
}

// CloneState deep-copies both vectors.
func (s State) CloneState() runtime.State {
	return State{P: s.P.Copy(), N: s.N.Copy()}
}

// EqualState reports component-wise equality.
func (s State) EqualState(o runtime.State) bool {
	t, ok := o.(State)
	return ok && s.P.Equal(t.P) && s.N.Equal(t.N)
}

// Value returns ΣP − ΣN.
func (s State) Value() int64 {
	var v int64
	for _, n := range s.P {
		v += int64(n)
	}
	for _, n := range s.N {
		v -= int64(n)
	}
	return v
}

// String renders the two vectors and the value.
func (s State) String() string {
	return fmt.Sprintf("P=%s N=%s (=%d)", s.P, s.N, s.Value())
}

// Type is the state-based PN-Counter CRDT.
type Type struct{}

// Name returns "PN-Counter".
func (Type) Name() string { return "PN-Counter" }

// Methods lists inc, dec and read.
func (Type) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "inc", Kind: core.KindUpdate},
		{Name: "dec", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}

// Init returns the zero counter.
func (Type) Init() runtime.State { return NewState() }

// Apply implements the local methods of Listing 9.
func (Type) Apply(s runtime.State, method string, args []core.Value, ts clock.Timestamp, r clock.ReplicaID) (core.Value, runtime.State, error) {
	st, ok := s.(State)
	if !ok {
		return nil, nil, fmt.Errorf("pncounter: unexpected state %T", s)
	}
	switch method {
	case "inc":
		n := st.CloneState().(State)
		n.P.Increment(r)
		return nil, n, nil
	case "dec":
		n := st.CloneState().(State)
		n.N.Increment(r)
		return nil, n, nil
	case "read":
		return st.Value(), st, nil
	default:
		return nil, nil, fmt.Errorf("pncounter: unknown method %q", method)
	}
}

// Merge takes the component-wise maximum of both vectors.
func (Type) Merge(a, b runtime.State) runtime.State {
	x, y := a.(State), b.(State)
	return State{P: x.P.Merge(y.P), N: x.N.Merge(y.N)}
}

// Leq is the product order of the two vector lattices.
func (Type) Leq(a, b runtime.State) bool {
	x, y := a.(State), b.(State)
	return x.P.Leq(y.P) && x.N.Leq(y.N)
}

// Abs is the refinement mapping: the counter value ΣP − ΣN.
func Abs(s runtime.State) core.AbsState { return spec.CounterState(s.(State).Value()) }

// LocalApply is the Appendix E.3 local effector: increment the origin
// replica's component of P (inc) or N (dec).
func LocalApply(s runtime.State, l *core.Label) runtime.State {
	st := s.(State).CloneState().(State)
	switch l.Method {
	case "inc":
		st.P.Increment(l.Origin)
	case "dec":
		st.N.Increment(l.Origin)
	}
	return st
}

// ArgEqual: two labels carry the same local-effector argument when they use
// the same method and originate at the same replica (cumulative class).
func ArgEqual(a, b *core.Label) bool {
	return a.Method == b.Method && a.Origin == b.Origin
}

// Fresh is the P2 predicate of Appendix E.3: the origin replica's component
// of the relevant vector is still zero.
func Fresh(s runtime.State, l *core.Label) bool {
	st := s.(State)
	switch l.Method {
	case "inc":
		return st.P.Get(l.Origin) == 0
	case "dec":
		return st.N.Get(l.Origin) == 0
	default:
		return true
	}
}

// RandomOp performs one random PN-Counter operation.
func RandomOp(rng *rand.Rand, sys crdt.Invoker, elems []string) (*core.Label, error) {
	r := crdt.PickReplica(rng, sys)
	switch rng.Intn(3) {
	case 0:
		return sys.Invoke(r, "inc")
	case 1:
		return sys.Invoke(r, "dec")
	default:
		return sys.Invoke(r, "read")
	}
}

// Descriptor describes the PN-Counter for the harnesses.
func Descriptor() crdt.Descriptor {
	return crdt.Descriptor{
		Name:     "PN-Counter",
		Source:   "Shapiro et al. 2011",
		Class:    crdt.StateBased,
		Lin:      crdt.ExecutionOrder,
		InFig12:  true,
		SBType:   Type{},
		Spec:     spec.Counter{},
		Abs:      Abs,
		RandomOp: RandomOp,
		SB: &crdt.SBProofs{
			EffClass:   crdt.Cumulative,
			LocalApply: LocalApply,
			ArgEqual:   ArgEqual,
			Fresh:      Fresh,
		},
	}
}
