package search

import (
	"sync"
	"testing"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// sessOpts builds deterministic (sequential) check options carrying the
// session.
func sessOpts(sess *Session) core.CheckOptions {
	return core.CheckOptions{Parallelism: 1, Session: sess}
}

// TestSessionReuseMatchesFresh re-checks the same histories through one
// session and requires byte-identical outcomes to fresh-state runs: session
// reuse is a pure performance change.
func TestSessionReuseMatchesFresh(t *testing.T) {
	sess := NewSession()
	for _, ret := range []int64{6, 99} {
		h := concurrentIncsHistory(6, ret)
		fresh := Run(h, spec.Counter{}, false, sessOpts(nil))
		for rep := 0; rep < 3; rep++ {
			got := Run(h, spec.Counter{}, false, sessOpts(sess))
			if got.OK != fresh.OK || got.Complete != fresh.Complete ||
				got.Nodes != fresh.Nodes || got.Pruned != fresh.Pruned || got.MemoHits != fresh.MemoHits {
				t.Fatalf("ret=%d rep=%d: session outcome %+v differs from fresh %+v", ret, rep, got, fresh)
			}
		}
	}
}

// TestSessionMemoResetBetweenHistories guards the arena's soundness: a
// refuted history followed by an identically-shaped linearizable one must
// still find its witness. Both histories produce the same placed-set bitsets
// and (mostly) the same interned counter states, so any memo entry surviving
// the first check would wrongly prune the second.
func TestSessionMemoResetBetweenHistories(t *testing.T) {
	sess := NewSession()
	bad := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	if bad.OK || !bad.Complete {
		t.Fatalf("read⇒99 must be refuted: %+v", bad)
	}
	good := Run(concurrentIncsHistory(6, 6), spec.Counter{}, false, sessOpts(sess))
	if !good.OK {
		t.Fatalf("read⇒6 after 6 incs must linearize despite the prior refutation: %+v", good)
	}
}

// TestSessionInternerIsShared checks the point of the session: state IDs
// interned by one check are reused by the next, so re-checking the same
// history grows the interner not at all.
func TestSessionInternerIsShared(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(6, 99)
	Run(h, spec.Counter{}, false, sessOpts(sess))
	after1 := sess.InternedStates()
	if after1 == 0 {
		t.Fatal("counter states must intern")
	}
	Run(h, spec.Counter{}, false, sessOpts(sess))
	if after2 := sess.InternedStates(); after2 != after1 {
		t.Fatalf("re-checking the same history must not grow the interner: %d -> %d", after1, after2)
	}
}

// TestSessionConcurrentChecks runs many checks of different polarities (and a
// parallel inner search) concurrently over one session; under `go test -race`
// this is the data-race check for the session pools and the shared interner.
func TestSessionConcurrentChecks(t *testing.T) {
	sess := NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				ret := int64(5)
				wantOK := true
				if (g+rep)%2 == 1 {
					ret, wantOK = 99, false
				}
				opts := sessOpts(sess)
				if g%4 == 3 {
					opts.Parallelism = 2
				}
				out := Run(concurrentIncsHistory(5, ret), spec.Counter{}, false, opts)
				if out.OK != wantOK || !out.Complete {
					t.Errorf("g=%d rep=%d: got %+v, want OK=%v", g, rep, out, wantOK)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionPlanPoolReuse checks the plan pool end to end: the first check
// of a session builds its plan fresh, later checks draw recycled plans
// (surfaced as PlanReused), and a recycled plan rebuilt for a history of a
// different size produces exactly the outcome of a fresh plan.
func TestSessionPlanPoolReuse(t *testing.T) {
	sess := NewSession()
	first := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	if first.PlanReused {
		t.Fatalf("first check of a session cannot reuse a plan: %+v", first)
	}
	for _, k := range []int{6, 3, 8} { // shrink and grow across reuses
		fresh := Run(concurrentIncsHistory(k, 99), spec.Counter{}, false, sessOpts(nil))
		got := Run(concurrentIncsHistory(k, 99), spec.Counter{}, false, sessOpts(sess))
		if !got.PlanReused {
			t.Fatalf("k=%d: warm session must reuse a pooled plan: %+v", k, got)
		}
		if fresh.PlanReused {
			t.Fatalf("k=%d: sessionless run cannot reuse a plan: %+v", k, fresh)
		}
		got.PlanReused = false
		if got.OK != fresh.OK || got.Complete != fresh.Complete || got.Nodes != fresh.Nodes ||
			got.Pruned != fresh.Pruned || got.MemoHits != fresh.MemoHits {
			t.Fatalf("k=%d: pooled-plan outcome %+v differs from fresh %+v", k, got, fresh)
		}
	}
}

// TestSessionPlanPoolConcurrent hammers the plan pool with concurrent checks
// of different history sizes, so `go test -race` exercises concurrent
// getPlan/putPlan and the clear-not-reallocate resize paths of the pooled
// index slices.
func TestSessionPlanPoolConcurrent(t *testing.T) {
	sess := NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 6; rep++ {
				k := 3 + (g+rep)%4 // sizes 3..6 interleave shrink and grow
				ret := int64(k)
				wantOK := true
				if rep%2 == 1 {
					ret, wantOK = 99, false
				}
				out := Run(concurrentIncsHistory(k, ret), spec.Counter{}, false, sessOpts(sess))
				if out.OK != wantOK || !out.Complete {
					t.Errorf("g=%d rep=%d k=%d: got %+v, want OK=%v", g, rep, k, out, wantOK)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// cloneRewriting is a comparable cloning rewriting for the cache tests; tag
// distinguishes rewriting *values* of the same type.
type cloneRewriting struct{ tag int }

func (cloneRewriting) Rewrite(l *core.Label) ([]*core.Label, error) {
	return []*core.Label{l.Clone()}, nil
}

// TestSessionRewriteCache checks the rewrite cache through the full
// core.CheckRA plumbing: the first check of a history under a cloning
// rewriting derives the rewriting, the second is served from the session
// cache (same Rewritten pointer, RewriteCached set), a different rewriting
// value for the same history misses, and function-typed rewritings — which
// have no safe identity — bypass the cache entirely.
func TestSessionRewriteCache(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(5, 5)
	opts := core.CheckOptions{Rewriting: cloneRewriting{tag: 1}, Exhaustive: true, Parallelism: 1}
	first := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if !first.OK || first.RewriteCached {
		t.Fatalf("first check must derive the rewriting itself: %+v", first)
	}
	second := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if !second.OK || !second.RewriteCached {
		t.Fatalf("second check of the same history must hit the rewrite cache: %+v", second)
	}
	if first.Rewritten != second.Rewritten {
		t.Fatal("cached rewriting must be the same derived history, not a re-clone")
	}
	if hits, misses := sess.RewriteCache().Stats(); hits != 1 || misses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %d / %d", hits, misses)
	}
	// A different rewriting value must not be served the first one's clone.
	otherOpts := opts
	otherOpts.Rewriting = cloneRewriting{tag: 2}
	third := core.CheckRAWith(h, spec.Counter{}, otherOpts, sess)
	if third.RewriteCached {
		t.Fatalf("a different rewriting value must miss the cache: %+v", third)
	}
	// RewriteFunc closures have no comparable identity (a code pointer would
	// alias same-body closures with different captured state, e.g. two
	// composed systems), so they must never be cached — not even for the
	// exact same func value.
	fn := core.RewriteFunc(func(l *core.Label) ([]*core.Label, error) {
		return []*core.Label{l.Clone()}, nil
	})
	fnOpts := opts
	fnOpts.Rewriting = fn
	for i := 0; i < 2; i++ {
		res := core.CheckRAWith(h, spec.Counter{}, fnOpts, sess)
		if !res.OK || res.RewriteCached {
			t.Fatalf("func-typed rewriting must bypass the cache (run %d): %+v", i, res)
		}
	}
	// Nil sessions and fresh runs never report cache hits.
	plain := core.CheckRA(h, spec.Counter{}, opts)
	if plain.RewriteCached {
		t.Fatalf("sessionless check cannot hit a rewrite cache: %+v", plain)
	}
}

// tokenedRewriting is a func-backed (non-comparable) rewriting opting into
// the cache via core.RewritingTokener; token carries the semantic identity.
type tokenedRewriting struct {
	fn    core.RewriteFunc
	token string
}

func (r tokenedRewriting) Rewrite(l *core.Label) ([]*core.Label, error) { return r.fn(l) }
func (r tokenedRewriting) RewritingToken() any                          { return r.token }

// TestSessionRewriteCacheTokenedClosure is the cache-hit counterpart of the
// closure-bypass assertions above: a RewriteFunc-style rewriting that
// implements RewritingToken is cached across checks — even across distinct
// closure values — as long as the tokens agree, and distinct tokens still
// miss.
func TestSessionRewriteCacheTokenedClosure(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(5, 5)
	mk := func(token string) core.Rewriting {
		// A fresh closure per call: only the token can make these hit.
		return tokenedRewriting{fn: func(l *core.Label) ([]*core.Label, error) {
			return []*core.Label{l.Clone()}, nil
		}, token: token}
	}
	opts := core.CheckOptions{Rewriting: mk("γ"), Exhaustive: true, Parallelism: 1}
	first := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if !first.OK || first.RewriteCached {
		t.Fatalf("first tokened check must derive the rewriting: %+v", first)
	}
	opts.Rewriting = mk("γ")
	second := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if !second.OK || !second.RewriteCached {
		t.Fatalf("equal-token closure must hit the rewrite cache: %+v", second)
	}
	if first.Rewritten != second.Rewritten {
		t.Fatal("tokened cache hit must serve the stored rewriting")
	}
	opts.Rewriting = mk("δ")
	third := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if third.RewriteCached {
		t.Fatalf("a different token must miss the cache: %+v", third)
	}
}

// TestDebugMemoDetectsCollision pins the debug memo invariant at the table
// level: re-claiming a key with the tuple it was stored under is a normal
// duplicate, re-claiming it with a different tuple — a hash collision — must
// panic.
func TestDebugMemoDetectsCollision(t *testing.T) {
	m := newMemoTable()
	m.debug = true
	k := key128{hi: 1, lo: 2}
	legacy := key128{hi: 7, lo: 8}
	if !m.claim(k, []uint64{10, 20}, legacy) {
		t.Fatal("first claim must succeed")
	}
	if m.claim(k, []uint64{10, 20}, legacy) {
		t.Fatal("second claim of the same configuration must report duplicate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("claiming the same key for a distinct tuple must panic")
		}
	}()
	m.claim(k, []uint64{10, 21}, legacy)
}

// TestDebugMemoDualKeyBijection pins the old-key/new-key agreement assertion:
// in debug mode every configuration carries both its word-folded key and its
// legacy sorted-ID key, and the table panics as soon as the two schemes
// disagree on configuration equality in either direction.
func TestDebugMemoDualKeyBijection(t *testing.T) {
	t.Run("split", func(t *testing.T) {
		// Two distinct word-folded keys claiming one legacy key: the bitset
		// representation split a configuration the ID walk considered equal.
		m := newMemoTable()
		m.debug = true
		legacy := key128{hi: 7, lo: 8}
		m.claim(key128{hi: 1, lo: 2}, []uint64{10}, legacy)
		defer func() {
			if recover() == nil {
				t.Fatal("a second word-folded key for the same legacy key must panic")
			}
		}()
		m.claim(key128{hi: 1, lo: 3}, []uint64{11}, legacy)
	})
	t.Run("merge", func(t *testing.T) {
		// One word-folded key claimed under two distinct legacy keys: the new
		// representation merged configurations the ID walk distinguished.
		m := newMemoTable()
		m.debug = true
		k := key128{hi: 1, lo: 2}
		m.claim(k, []uint64{10}, key128{hi: 7, lo: 8})
		defer func() {
			if recover() == nil {
				t.Fatal("a second legacy key for the same word-folded key must panic")
			}
		}()
		m.claim(k, []uint64{10}, key128{hi: 7, lo: 9})
	})
}

// TestDebugMemoMatchesPlainMemo runs the same refutation with and without
// debug memo mode: the stored tuples must change nothing about the search
// outcome (and a full refutation under debug mode doubles as a soak of the
// collision invariant).
func TestDebugMemoMatchesPlainMemo(t *testing.T) {
	h := concurrentIncsHistory(6, 99)
	plain := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1})
	debug := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1, DebugMemo: true})
	if plain.OK != debug.OK || plain.Complete != debug.Complete ||
		plain.Nodes != debug.Nodes || plain.MemoHits != debug.MemoHits {
		t.Fatalf("debug memo changed the search: plain %+v debug %+v", plain, debug)
	}
	if debug.MemoHits == 0 {
		t.Fatal("refutation must exercise the memo table")
	}
}

// TestSessionThroughCheckRAWith exercises the full core → engine plumbing:
// CheckRAWith must deliver the session to the pruned engine and behave like
// CheckRA otherwise.
func TestSessionThroughCheckRAWith(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(5, 99)
	opts := core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned, Parallelism: 1}
	plain := core.CheckRA(h, spec.Counter{}, opts)
	with := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if with.OK != plain.OK || with.Complete != plain.Complete || with.Nodes != plain.Nodes {
		t.Fatalf("CheckRAWith %+v differs from CheckRA %+v", with, plain)
	}
	if sess.InternedStates() == 0 {
		t.Fatal("the session must have been used (interner still empty)")
	}
}
