package search

import (
	"sync"
	"testing"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// sessOpts builds deterministic (sequential) check options carrying the
// session.
func sessOpts(sess *Session) core.CheckOptions {
	return core.CheckOptions{Parallelism: 1, Session: sess}
}

// TestSessionReuseMatchesFresh re-checks the same histories through one
// session and requires byte-identical outcomes to fresh-state runs: session
// reuse is a pure performance change.
func TestSessionReuseMatchesFresh(t *testing.T) {
	sess := NewSession()
	for _, ret := range []int64{6, 99} {
		h := concurrentIncsHistory(6, ret)
		fresh := Run(h, spec.Counter{}, false, sessOpts(nil))
		for rep := 0; rep < 3; rep++ {
			got := Run(h, spec.Counter{}, false, sessOpts(sess))
			if got.OK != fresh.OK || got.Complete != fresh.Complete ||
				got.Nodes != fresh.Nodes || got.Pruned != fresh.Pruned || got.MemoHits != fresh.MemoHits {
				t.Fatalf("ret=%d rep=%d: session outcome %+v differs from fresh %+v", ret, rep, got, fresh)
			}
		}
	}
}

// TestSessionMemoResetBetweenHistories guards the arena's soundness: a
// refuted history followed by an identically-shaped linearizable one must
// still find its witness. Both histories produce the same placed-set bitsets
// and (mostly) the same interned counter states, so any memo entry surviving
// the first check would wrongly prune the second.
func TestSessionMemoResetBetweenHistories(t *testing.T) {
	sess := NewSession()
	bad := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	if bad.OK || !bad.Complete {
		t.Fatalf("read⇒99 must be refuted: %+v", bad)
	}
	good := Run(concurrentIncsHistory(6, 6), spec.Counter{}, false, sessOpts(sess))
	if !good.OK {
		t.Fatalf("read⇒6 after 6 incs must linearize despite the prior refutation: %+v", good)
	}
}

// TestSessionInternerIsShared checks the point of the session: state IDs
// interned by one check are reused by the next, so re-checking the same
// history grows the interner not at all.
func TestSessionInternerIsShared(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(6, 99)
	Run(h, spec.Counter{}, false, sessOpts(sess))
	after1 := sess.InternedStates()
	if after1 == 0 {
		t.Fatal("counter states must intern")
	}
	Run(h, spec.Counter{}, false, sessOpts(sess))
	if after2 := sess.InternedStates(); after2 != after1 {
		t.Fatalf("re-checking the same history must not grow the interner: %d -> %d", after1, after2)
	}
}

// TestSessionConcurrentChecks runs many checks of different polarities (and a
// parallel inner search) concurrently over one session; under `go test -race`
// this is the data-race check for the session pools and the shared interner.
func TestSessionConcurrentChecks(t *testing.T) {
	sess := NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				ret := int64(5)
				wantOK := true
				if (g+rep)%2 == 1 {
					ret, wantOK = 99, false
				}
				opts := sessOpts(sess)
				if g%4 == 3 {
					opts.Parallelism = 2
				}
				out := Run(concurrentIncsHistory(5, ret), spec.Counter{}, false, opts)
				if out.OK != wantOK || !out.Complete {
					t.Errorf("g=%d rep=%d: got %+v, want OK=%v", g, rep, out, wantOK)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionThroughCheckRAWith exercises the full core → engine plumbing:
// CheckRAWith must deliver the session to the pruned engine and behave like
// CheckRA otherwise.
func TestSessionThroughCheckRAWith(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(5, 99)
	opts := core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned, Parallelism: 1}
	plain := core.CheckRA(h, spec.Counter{}, opts)
	with := core.CheckRAWith(h, spec.Counter{}, opts, sess)
	if with.OK != plain.OK || with.Complete != plain.Complete || with.Nodes != plain.Nodes {
		t.Fatalf("CheckRAWith %+v differs from CheckRA %+v", with, plain)
	}
	if sess.InternedStates() == 0 {
		t.Fatal("the session must have been used (interner still empty)")
	}
}
