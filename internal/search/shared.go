package search

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ralin/internal/core"
)

// shared is the coordination state of one search: counters, the node budget,
// the cancellation flag, the witness slot and the global keyability flag,
// shared by all workers.
type shared struct {
	stop      atomic.Bool
	truncated atomic.Bool
	// unkeyable flips to true permanently once any worker encounters a state
	// without a canonical key; memoization is then off for the whole search.
	unkeyable atomic.Bool
	charged   atomic.Int64
	budget    int64 // 0 = unlimited
	// shards is the stripe count of the shared memo table (0 when
	// memoization is disabled), reported in the outcome.
	shards int

	// memDegraded flips to true once the session memory budget trips
	// (interner at MaxInternedStates, or memo entries past MaxMemoBytes):
	// the search keeps running memo-less, the verdict stays sound, and the
	// outcome reports the degradation. Only set when a budget is configured.
	memDegraded atomic.Bool
	// memoCount points at the session's live memo-entry counter and memoLimit
	// is the entry cap derived from Budget.MaxMemoBytes; both are nil/zero
	// without a configured memo budget, in which case the claim path pays
	// nothing.
	memoCount *atomic.Int64
	memoLimit int64
	// sess is notified on a memory-budget trip so it can evict its caches
	// once the check (and any concurrent siblings) finish; nil-safe.
	sess *Session

	nodes    atomic.Int64
	leaves   atomic.Int64
	pruned   atomic.Int64
	memoHits atomic.Int64
	steals   atomic.Int64
	donated  atomic.Int64

	mu      sync.Mutex
	witness []*core.Label
	lastErr error
	// inc records the first interruption cause (deadline, cancellation,
	// recovered panic); node-budget truncation is derived in outcome() when
	// no explicit cause was recorded.
	inc *core.Incomplete
}

func newShared(budget int64) *shared {
	return &shared{budget: budget}
}

// interrupt flags the search truncated for the given cause and cancels all
// workers. The first recorded cause wins; later interrupts only reinforce the
// stop flag.
func (sh *shared) interrupt(inc *core.Incomplete) {
	sh.mu.Lock()
	if sh.inc == nil {
		sh.inc = inc
	}
	sh.mu.Unlock()
	sh.truncated.Store(true)
	sh.stop.Store(true)
}

// panicked converts a recovered worker panic into an interruption carrying
// the panic message and captured stack.
func (sh *shared) panicked(r any, stack []byte) {
	sh.interrupt(&core.Incomplete{
		Reason: core.ReasonPanic,
		Detail: fmt.Sprintf("search worker panicked: %v", r),
		Stack:  string(stack),
	})
}

// tripMemBudget records that the session memory budget was hit. The search
// continues memo-less (graceful degradation, not an abort); the session is
// told so it evicts its caches when idle.
func (sh *shared) tripMemBudget() {
	if sh.memDegraded.CompareAndSwap(false, true) {
		sh.sess.noteTrip()
	}
}

// chargeNode consumes one unit of the node budget. It returns false — after
// flagging the search truncated and cancelling all workers — when the budget
// is exhausted.
func (sh *shared) chargeNode() bool {
	if sh.budget <= 0 {
		return true
	}
	if sh.charged.Add(1) > sh.budget {
		sh.truncated.Store(true)
		sh.stop.Store(true)
		return false
	}
	return true
}

// recordWitness stores the first witness found and cancels all workers.
func (sh *shared) recordWitness(seq []*core.Label) {
	sh.mu.Lock()
	if sh.witness == nil {
		sh.witness = seq
	}
	sh.mu.Unlock()
	sh.stop.Store(true)
}

// setErr keeps a representative prune error.
func (sh *shared) setErr(err error) {
	sh.mu.Lock()
	if sh.lastErr == nil {
		sh.lastErr = err
	}
	sh.mu.Unlock()
}

// outcome assembles the engine outcome once every worker has flushed.
func (sh *shared) outcome(workers int) core.EngineOutcome {
	sh.mu.Lock()
	witness, lastErr, inc := sh.witness, sh.lastErr, sh.inc
	sh.mu.Unlock()
	out := core.EngineOutcome{
		OK:       witness != nil,
		Witness:  witness,
		LastErr:  lastErr,
		Leaves:   int(sh.leaves.Load()),
		Nodes:    int(sh.nodes.Load()),
		Pruned:   int(sh.pruned.Load()),
		MemoHits: int(sh.memoHits.Load()),
		Steals:   int(sh.steals.Load()),
		Shards:   sh.shards,
		Workers:  workers,
	}
	out.Complete = out.OK || !sh.truncated.Load()
	out.MemDegraded = sh.memDegraded.Load()
	if !out.Complete {
		if inc == nil {
			// No explicit interruption was recorded: the node budget cut the
			// search. Attribute it to the memory budget when the truncation
			// happened after degradation — the memo-less search is the reason
			// the node budget no longer sufficed.
			inc = &core.Incomplete{
				Reason: core.ReasonNodeBudget,
				Detail: fmt.Sprintf("node budget exhausted after %d nodes", sh.nodes.Load()),
			}
			if out.MemDegraded {
				inc = &core.Incomplete{
					Reason: core.ReasonMemBudget,
					Detail: fmt.Sprintf("memory budget tripped (search degraded to memo-less mode) and the node budget then truncated after %d nodes", sh.nodes.Load()),
				}
			}
		}
		out.Incomplete = inc
	}
	return out
}
