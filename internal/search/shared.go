package search

import (
	"sync"
	"sync/atomic"

	"ralin/internal/core"
)

// shared is the coordination state of one search: counters, the node budget,
// the cancellation flag, the witness slot and the global keyability flag,
// shared by all workers.
type shared struct {
	stop      atomic.Bool
	truncated atomic.Bool
	// unkeyable flips to true permanently once any worker encounters a state
	// without a canonical key; memoization is then off for the whole search.
	unkeyable atomic.Bool
	charged   atomic.Int64
	budget    int64 // 0 = unlimited
	// shards is the stripe count of the shared memo table (0 when
	// memoization is disabled), reported in the outcome.
	shards int

	nodes    atomic.Int64
	leaves   atomic.Int64
	pruned   atomic.Int64
	memoHits atomic.Int64
	steals   atomic.Int64
	donated  atomic.Int64

	mu      sync.Mutex
	witness []*core.Label
	lastErr error
}

func newShared(budget int64) *shared {
	return &shared{budget: budget}
}

// chargeNode consumes one unit of the node budget. It returns false — after
// flagging the search truncated and cancelling all workers — when the budget
// is exhausted.
func (sh *shared) chargeNode() bool {
	if sh.budget <= 0 {
		return true
	}
	if sh.charged.Add(1) > sh.budget {
		sh.truncated.Store(true)
		sh.stop.Store(true)
		return false
	}
	return true
}

// recordWitness stores the first witness found and cancels all workers.
func (sh *shared) recordWitness(seq []*core.Label) {
	sh.mu.Lock()
	if sh.witness == nil {
		sh.witness = seq
	}
	sh.mu.Unlock()
	sh.stop.Store(true)
}

// setErr keeps a representative prune error.
func (sh *shared) setErr(err error) {
	sh.mu.Lock()
	if sh.lastErr == nil {
		sh.lastErr = err
	}
	sh.mu.Unlock()
}

// outcome assembles the engine outcome once every worker has flushed.
func (sh *shared) outcome(workers int) core.EngineOutcome {
	sh.mu.Lock()
	witness, lastErr := sh.witness, sh.lastErr
	sh.mu.Unlock()
	out := core.EngineOutcome{
		OK:       witness != nil,
		Witness:  witness,
		LastErr:  lastErr,
		Leaves:   int(sh.leaves.Load()),
		Nodes:    int(sh.nodes.Load()),
		Pruned:   int(sh.pruned.Load()),
		MemoHits: int(sh.memoHits.Load()),
		Steals:   int(sh.steals.Load()),
		Shards:   sh.shards,
		Workers:  workers,
	}
	out.Complete = out.OK || !sh.truncated.Load()
	return out
}
