package search

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ralin/internal/core"
)

// compactor assigns dense check-local IDs to session-interner IDs, in first-
// contact order. The searchers' state-set bitsets and word-folded memo keys
// index by compact ID, so their width tracks the states this check actually
// reaches instead of the session's whole interned vocabulary. Assignment is a
// bijection for the duration of one check, so any assignment order —
// including the racy first-contact order of a parallel search — preserves set
// equality exactly: two sets get equal word sequences iff they held equal
// session IDs.
//
// Interner IDs are themselves dense from 0, so the forwarding table is a
// slice indexed by interner ID, not a map — compact is an array load on the
// hot path. Each entry is stamped with the check's epoch, making reset O(1):
// bumping the epoch invalidates every stale entry at once.
type compactor struct {
	mu sync.RWMutex
	// seq marks a single-worker check: exactly one goroutine calls compact,
	// so the lock is skipped entirely. Run sets it per check.
	seq   bool
	epoch uint32
	next  uint32
	// fwd[id] = epoch<<32 | cid, valid only when the stamp matches the
	// current epoch. Entries never shrink; stale stamps are dead weight until
	// the slice is reused.
	fwd []uint64
}

// compact returns the check-local ID of session-interner ID id, assigning the
// next dense ID on first contact.
func (c *compactor) compact(id uint32) uint32 {
	if c.seq {
		if int(id) < len(c.fwd) {
			if e := c.fwd[id]; uint32(e>>32) == c.epoch {
				return uint32(e)
			}
		}
		return c.assign(id)
	}
	c.mu.RLock()
	if int(id) < len(c.fwd) {
		if e := c.fwd[id]; uint32(e>>32) == c.epoch {
			c.mu.RUnlock()
			return uint32(e)
		}
	}
	c.mu.RUnlock()
	c.mu.Lock()
	var cid uint32
	if int(id) < len(c.fwd) && uint32(c.fwd[id]>>32) == c.epoch {
		cid = uint32(c.fwd[id])
	} else {
		cid = c.assign(id)
	}
	c.mu.Unlock()
	return cid
}

// assign stamps the next dense ID for id. The caller must hold the write
// lock (or be the only worker, seq mode).
func (c *compactor) assign(id uint32) uint32 {
	for int(id) >= len(c.fwd) {
		c.fwd = append(c.fwd, 0)
	}
	cid := c.next
	c.next++
	c.fwd[id] = uint64(c.epoch)<<32 | uint64(cid)
	return cid
}

// reset starts a fresh dense ID space for the next check by bumping the
// epoch; the forwarding slice is kept but every stale entry's stamp stops
// matching. Epoch 0 is reserved as "never stamped" (the zero value of a grown
// entry), so a wrap skips it after zeroing the slice.
func (c *compactor) reset() {
	c.mu.Lock()
	c.epoch++
	if c.epoch == 0 {
		clear(c.fwd)
		c.epoch = 1
	}
	c.next = 0
	c.seq = false
	c.mu.Unlock()
}

// shared is the coordination state of one search: counters, the node budget,
// the cancellation flag, the witness slot and the global keyability flag,
// shared by all workers.
type shared struct {
	stop      atomic.Bool
	truncated atomic.Bool
	// unkeyable flips to true permanently once any worker encounters a state
	// without a canonical key; memoization is then off for the whole search.
	unkeyable atomic.Bool
	charged   atomic.Int64
	budget    int64 // 0 = unlimited
	// shards is the stripe count of the shared memo table (0 when
	// memoization is disabled), reported in the outcome.
	shards int

	// memDegraded flips to true once the session memory budget trips
	// (interner at MaxInternedStates, or memo entries past MaxMemoBytes):
	// the search keeps running memo-less, the verdict stays sound, and the
	// outcome reports the degradation. Only set when a budget is configured.
	memDegraded atomic.Bool
	// memoCount points at the session's live memo-entry counter and memoLimit
	// is the entry cap derived from Budget.MaxMemoBytes; both are nil/zero
	// without a configured memo budget, in which case the claim path pays
	// nothing.
	memoCount *atomic.Int64
	memoLimit int64
	// sess is notified on a memory-budget trip so it can evict its caches
	// once the check (and any concurrent siblings) finish; nil-safe.
	sess *Session
	// steps is the session's transition cache for this check's specification
	// (Session.stepCacheFor), nil when the check runs sessionless or the spec
	// is not cacheable; every worker reads it through its searcher.
	steps *stepCache
	// compact is the check-local dense ID space over the session interner's
	// IDs, shared by every worker and cleared when the block is pooled.
	compact compactor

	nodes    atomic.Int64
	leaves   atomic.Int64
	pruned   atomic.Int64
	memoHits atomic.Int64
	steals   atomic.Int64
	donated  atomic.Int64

	mu      sync.Mutex
	witness []*core.Label
	lastErr error
	// inc records the first interruption cause (deadline, cancellation,
	// recovered panic); node-budget truncation is derived in outcome() when
	// no explicit cause was recorded.
	inc *core.Incomplete
}

func newShared(budget int64) *shared {
	sh := &shared{budget: budget}
	// Epoch 0 means "never stamped" in the compactor's forwarding entries;
	// a live compactor always runs at epoch >= 1.
	sh.compact.epoch = 1
	return sh
}

// reset re-arms a pooled coordination block for a new check with the given
// node budget. Reference-holding fields were already dropped by release; this
// clears the flags and counters the next check starts from.
func (sh *shared) reset(budget int64) {
	sh.stop.Store(false)
	sh.truncated.Store(false)
	sh.unkeyable.Store(false)
	sh.memDegraded.Store(false)
	sh.charged.Store(0)
	sh.budget = budget
	sh.shards = 0
	sh.memoCount = nil
	sh.memoLimit = 0
	sh.nodes.Store(0)
	sh.leaves.Store(0)
	sh.pruned.Store(0)
	sh.memoHits.Store(0)
	sh.steals.Store(0)
	sh.donated.Store(0)
	sh.compact.reset()
}

// release drops every reference the finished check left in the block —
// witness labels, the prune error, the interruption record, the session and
// step-cache pointers — so a pooled block pins nothing. The compact map and
// counters are cleared by the next reset.
func (sh *shared) release() {
	sh.mu.Lock()
	sh.witness = nil
	sh.lastErr = nil
	sh.inc = nil
	sh.mu.Unlock()
	sh.sess = nil
	sh.steps = nil
	sh.memoCount = nil
}

// wantErr reports whether the search still needs a representative prune error
// (no witness, none recorded yet); flush uses it to skip rendering prune
// reasons on witness-producing searches.
func (sh *shared) wantErr() bool {
	sh.mu.Lock()
	want := sh.witness == nil && sh.lastErr == nil
	sh.mu.Unlock()
	return want
}

// interrupt flags the search truncated for the given cause and cancels all
// workers. The first recorded cause wins; later interrupts only reinforce the
// stop flag.
func (sh *shared) interrupt(inc *core.Incomplete) {
	sh.mu.Lock()
	if sh.inc == nil {
		sh.inc = inc
	}
	sh.mu.Unlock()
	sh.truncated.Store(true)
	sh.stop.Store(true)
}

// panicked converts a recovered worker panic into an interruption carrying
// the panic message and captured stack.
func (sh *shared) panicked(r any, stack []byte) {
	sh.interrupt(&core.Incomplete{
		Reason: core.ReasonPanic,
		Detail: fmt.Sprintf("search worker panicked: %v", r),
		Stack:  string(stack),
	})
}

// tripMemBudget records that the session memory budget was hit. The search
// continues memo-less (graceful degradation, not an abort); the session is
// told so it evicts its caches when idle.
func (sh *shared) tripMemBudget() {
	if sh.memDegraded.CompareAndSwap(false, true) {
		sh.sess.noteTrip()
	}
}

// chargeNode consumes one unit of the node budget. It returns false — after
// flagging the search truncated and cancelling all workers — when the budget
// is exhausted.
func (sh *shared) chargeNode() bool {
	if sh.budget <= 0 {
		return true
	}
	if sh.charged.Add(1) > sh.budget {
		sh.truncated.Store(true)
		sh.stop.Store(true)
		return false
	}
	return true
}

// recordWitness stores the first witness found and cancels all workers.
func (sh *shared) recordWitness(seq []*core.Label) {
	sh.mu.Lock()
	if sh.witness == nil {
		sh.witness = seq
	}
	sh.mu.Unlock()
	sh.stop.Store(true)
}

// setErr keeps a representative prune error.
func (sh *shared) setErr(err error) {
	sh.mu.Lock()
	if sh.lastErr == nil {
		sh.lastErr = err
	}
	sh.mu.Unlock()
}

// outcome assembles the engine outcome once every worker has flushed.
func (sh *shared) outcome(workers int) core.EngineOutcome {
	sh.mu.Lock()
	witness, lastErr, inc := sh.witness, sh.lastErr, sh.inc
	sh.mu.Unlock()
	out := core.EngineOutcome{
		OK:       witness != nil,
		Witness:  witness,
		LastErr:  lastErr,
		Leaves:   int(sh.leaves.Load()),
		Nodes:    int(sh.nodes.Load()),
		Pruned:   int(sh.pruned.Load()),
		MemoHits: int(sh.memoHits.Load()),
		Steals:   int(sh.steals.Load()),
		Shards:   sh.shards,
		Workers:  workers,
	}
	out.Complete = out.OK || !sh.truncated.Load()
	out.MemDegraded = sh.memDegraded.Load()
	if !out.Complete {
		if inc == nil {
			// No explicit interruption was recorded: the node budget cut the
			// search. Attribute it to the memory budget when the truncation
			// happened after degradation — the memo-less search is the reason
			// the node budget no longer sufficed.
			inc = &core.Incomplete{
				Reason: core.ReasonNodeBudget,
				Detail: fmt.Sprintf("node budget exhausted after %d nodes", sh.nodes.Load()),
			}
			if out.MemDegraded {
				inc = &core.Incomplete{
					Reason: core.ReasonMemBudget,
					Detail: fmt.Sprintf("memory budget tripped (search degraded to memo-less mode) and the node budget then truncated after %d nodes", sh.nodes.Load()),
				}
			}
		}
		out.Incomplete = inc
	}
	return out
}
