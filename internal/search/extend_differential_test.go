package search_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
	"ralin/internal/search"
)

// prefixBuckets groups h's direct visibility edges by the step at which both
// endpoints exist (the larger insertion rank), so a test can replay h the way
// a live monitor would have observed it: label k, then bucket k.
func prefixBuckets(t *testing.T, h *core.History) [][]core.VisEdge {
	t.Helper()
	buckets := make([][]core.VisEdge, h.Len())
	h.DirectVisEdges(func(from, to uint64) {
		rf, okf := h.RankOf(from)
		rt, okt := h.RankOf(to)
		if !okf || !okt {
			t.Fatalf("edge endpoint missing from history (%d -> %d)", from, to)
		}
		k := rf
		if rt > k {
			k = rt
		}
		buckets[k] = append(buckets[k], core.VisEdge{From: from, To: to})
	})
	return buckets
}

// replayCompare replays h op-by-op through core.CheckRAExtend over sess and,
// at every prefix, compares the incremental verdict against a from-scratch
// sessionless check of a clone of the same prefix. It returns the final
// result and the number of prefixes whose certificate replayed.
func replayCompare(t *testing.T, ctx string, h *core.History, sp core.Spec, opts core.CheckOptions, sess *search.Session) (core.Result, int) {
	t.Helper()
	opts.Session = sess
	buckets := prefixBuckets(t, h)
	g := core.NewHistory()
	var last core.Result
	replayed := 0
	for k := 0; k < h.Len(); k++ {
		l := h.LabelAt(k)
		if err := g.Add(l); err != nil {
			t.Fatalf("%s: replaying op %d: %v", ctx, k, err)
		}
		for _, e := range buckets[k] {
			if err := g.AddVis(e.From, e.To); err != nil {
				t.Fatalf("%s: replaying edges of op %d: %v", ctx, k, err)
			}
		}
		res := core.CheckRAExtend(g, sp, []*core.Label{l}, opts)
		scratch := opts
		scratch.Session = nil
		fresh := core.CheckRA(g.Clone(), sp, scratch)
		if res.Verdict != fresh.Verdict || res.OK != fresh.OK || res.Complete != fresh.Complete {
			t.Fatalf("%s: prefix %d/%d: incremental verdict %v (OK=%v Complete=%v, replayed=%v) diverges from from-scratch %v (OK=%v Complete=%v)\nprefix:\n%s",
				ctx, k+1, h.Len(), res.Verdict, res.OK, res.Complete, res.WitnessReplayed,
				fresh.Verdict, fresh.OK, fresh.Complete, g)
		}
		if res.WitnessReplayed {
			replayed++
		}
		last = res
	}
	return last, replayed
}

// TestExtendMatchesFromScratchAllDescriptors is the tentpole differential: for
// every registered CRDT, in both verdict polarities (as generated and with a
// corrupted query), the incremental op-by-op replay must report the exact
// from-scratch verdict at every prefix. DebugMemo is on throughout, so each
// replay also soaks the memo collision invariant across the warm extended
// plans.
func TestExtendMatchesFromScratchAllDescriptors(t *testing.T) {
	const trials = 4
	for _, d := range registry.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			sess := search.NewSession()
			for trial := 0; trial < trials; trial++ {
				cfg := harness.WorkloadConfig{
					Seed:         int64(4000*trial + 23),
					Ops:          6,
					Replicas:     3,
					Elems:        []string{"a", "b"},
					DeliveryProb: 40,
				}
				h, err := harness.RunRandom(d, cfg)
				if err != nil {
					t.Fatalf("workload: %v", err)
				}
				opts := core.CheckOptions{
					Rewriting:     d.Rewriting,
					Exhaustive:    true,
					Parallelism:   1,
					MaxExtensions: 2_000_000,
					DebugMemo:     true,
				}
				_, replayed := replayCompare(t, fmt.Sprintf("trial %d", trial), h, d.Spec, opts, sess)
				if h.Len() > 1 && replayed == 0 {
					t.Errorf("trial %d: no prefix replayed its certificate over %d ops — the incremental path never engaged", trial, h.Len())
				}
				if bad := corruptQuery(h, int64(trial)); bad != nil {
					replayCompare(t, fmt.Sprintf("trial %d (corrupted)", trial), bad, d.Spec, opts, sess)
				}
			}
		})
	}
}

// TestExtendPropertyUnderPressure interleaves the op-by-op extension stream
// with the failure modes a long-lived monitor session meets: cancelled
// contexts on random steps and a memory budget small enough to trip and evict
// repeatedly. Soundness contract: a pressured step may report Unknown, but
// any definite verdict must match the from-scratch check of the same prefix,
// and the session must keep working after every disruption.
func TestExtendPropertyUnderPressure(t *testing.T) {
	d, err := registry.Lookup("OR-Set")
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		sess := search.NewSessionWithBudget(search.Budget{MaxInternedStates: 8, MaxMemoBytes: 1 << 12})
		cfg := harness.WorkloadConfig{
			Seed:         int64(5000*trial + 31),
			Ops:          8,
			Replicas:     3,
			Elems:        []string{"a", "b"},
			DeliveryProb: 40,
		}
		h, err := harness.RunRandom(d, cfg)
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
		buckets := prefixBuckets(t, h)
		g := core.NewHistory()
		for k := 0; k < h.Len(); k++ {
			l := h.LabelAt(k)
			if err := g.Add(l); err != nil {
				t.Fatalf("replaying op %d: %v", k, err)
			}
			for _, e := range buckets[k] {
				if err := g.AddVis(e.From, e.To); err != nil {
					t.Fatalf("replaying edges of op %d: %v", k, err)
				}
			}
			opts := core.CheckOptions{
				Rewriting:   d.Rewriting,
				Exhaustive:  true,
				Parallelism: 1,
				Session:     sess,
			}
			cancelled := rng.Intn(3) == 0
			if cancelled {
				opts.Context = dead
			}
			res := core.CheckRAExtend(g, d.Spec, []*core.Label{l}, opts)
			if cancelled {
				if res.Verdict != core.VerdictUnknown {
					t.Fatalf("trial %d prefix %d: cancelled step must be Unknown, got %v", trial, k, res.Verdict)
				}
				continue
			}
			if res.Verdict == core.VerdictUnknown {
				// Budget trips degrade but never truncate by themselves here
				// (no node/time budget is set), so a definite verdict is
				// expected — but Unknown would still only be sound, not wrong.
				t.Fatalf("trial %d prefix %d: unexpected Unknown without a truncating budget: %+v", trial, k, res.Incomplete)
			}
			scratch := core.CheckRA(g.Clone(), d.Spec, core.CheckOptions{
				Rewriting:   d.Rewriting,
				Exhaustive:  true,
				Parallelism: 1,
			})
			if res.Verdict != scratch.Verdict {
				t.Fatalf("trial %d prefix %d: verdict %v diverges from from-scratch %v", trial, k, res.Verdict, scratch.Verdict)
			}
		}
	}
}

// TestMonitorHistoryMatchesFromScratch closes the loop at the harness layer:
// the verdict sequence harness.MonitorHistory reports must equal from-scratch
// checks of every prefix it constructs, and its path counters must cover all
// prefixes.
func TestMonitorHistoryMatchesFromScratch(t *testing.T) {
	d, err := registry.Lookup("PN-Counter")
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.WorkloadConfig{Seed: 77, Ops: 8, Replicas: 3, Elems: []string{"a", "b"}, DeliveryProb: 40}
	h, err := harness.RunRandom(d, cfg)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	opts := core.CheckOptions{Rewriting: d.Rewriting, Exhaustive: true, Parallelism: 1}
	rep, err := harness.MonitorHistory(h, d.Spec, opts, harness.Options{BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != h.Len() || len(rep.Verdicts) != h.Len() {
		t.Fatalf("monitor covered %d/%d ops, %d verdicts", rep.Ops, h.Len(), len(rep.Verdicts))
	}
	if rep.Replayed+rep.Searched+rep.Rebuilt != rep.Ops {
		t.Fatalf("path counters %d+%d+%d must cover %d prefixes", rep.Replayed, rep.Searched, rep.Rebuilt, rep.Ops)
	}
	buckets := prefixBuckets(t, h)
	g := core.NewHistory()
	for k := 0; k < h.Len(); k++ {
		if err := g.Add(h.LabelAt(k)); err != nil {
			t.Fatal(err)
		}
		for _, e := range buckets[k] {
			if err := g.AddVis(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
		fresh := core.CheckRA(g.Clone(), d.Spec, opts)
		if rep.Verdicts[k] != fresh.Verdict {
			t.Fatalf("prefix %d: monitor verdict %v diverges from from-scratch %v", k, rep.Verdicts[k], fresh.Verdict)
		}
	}
	if rep.Final.Verdict != rep.Verdicts[h.Len()-1] {
		t.Fatalf("Final %v must be the last prefix verdict %v", rep.Final.Verdict, rep.Verdicts[h.Len()-1])
	}
}
