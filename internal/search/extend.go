package search

import (
	"fmt"

	"ralin/internal/core"
)

// Incremental extension (core.CheckRAExtend → Session.Extend): re-verify a
// history that grew at the end in ~the marginal cost of the new operations.
//
// The key observation is that appending operations under the *edge
// discipline* — every direct visibility edge recorded since the last check
// targets a newly appended label — cannot change anything the previous
// verdict already established about the old prefix: no old query gains a
// visible update, no old label gains a predecessor, and the old part of any
// witness linearization stays a witness prefix. The previous verdict is
// therefore a certificate:
//
//   - previously Valid: append the new (rewritten) operations to the stored
//     witness in rank order and re-check only them — frontier admissibility
//     (all predecessors already placed), update-projection stepping on the
//     cached post-witness state set, and per-query justification. No search.
//   - certificate fails, or previously Invalid/Unknown: fall back to the full
//     pruned search — but over the session's *extended* plan (grown in place,
//     old index rows untouched), with the session's warm interner and step
//     cache, and with the old witness (when there is one) seeded as the DFS's
//     first branch via the guided-mode scores.
//
// Every incremental precondition is verified, and any violation — new edges
// into old labels, a tail mismatch, a changed rewriting, an in-place
// rewriting extension failure — degrades to a plain warm core.CheckRA, so the
// verdict is byte-identical to a from-scratch check in every case. The only
// intentional asymmetry: under a truncating node/time budget the certificate
// can prove Valid where a from-scratch search would have stopped at Unknown —
// a strict improvement, never a flip of a definite verdict.
//
// Invalid does NOT persist under extension (a spec may reject [a] but admit
// [b, a]), so a previously-Invalid history re-searches; only Valid carries a
// certificate.

// extensionCap bounds the number of histories the session tracks extension
// state for: each entry pins its history, its rewritten clone, a grown plan
// and a witness. A monitor follows one (or a few) live histories, so the cap
// is small; at the cap an arbitrary entry is evicted to make room.
const extensionCap = 64

// extension is the per-history incremental state of Session.Extend: the
// snapshot of how much of h the last verdict covered, the rewriting and plan
// grown alongside it, and the witness certificate when that verdict was
// Valid.
type extension struct {
	// token identifies the rewriting the state was built under
	// (core.RewritingIdentity); a call with a different rewriting rebuilds.
	token any
	// rew is the γ-rewriting of h's first nOld labels: the session-cached
	// clone on the cloning path or an alias wrapper (rew.History == h) on the
	// identity fast path.
	rew *core.RewrittenHistory
	// nOld is h.Len() at the last verdict; rewLen is rew.History.Len() then.
	nOld   int
	rewLen int
	// edgeCount is h.DirectEdgeCount() at the last verdict; the edge
	// discipline is verified by comparing growth against the direct in-degrees
	// of the new ranks.
	edgeCount int
	// maxGenSeq is the largest generator sequence number across h's labels,
	// maintained so the aliasing fast path's precondition (no GenSeq ties, as
	// implied by strictly increasing continuation) is checked per new label
	// instead of per history.
	maxGenSeq uint64
	// plan is the session-owned prepared plan over rew.History, grown lazily:
	// built on the first fallback search and extended in place afterwards.
	// planN is the rew.History length it currently covers (0 = not built).
	plan  *prepared
	planN int
	// valid reports the last verdict was Valid; witness is then its
	// linearization in exact-size backing (never a carved arena sub-slice —
	// a long-lived certificate must not pin a searcher's witness chunk), and
	// states is the spec state set reachable after witness's update
	// projection, from which new updates step.
	valid   bool
	witness []*core.Label
	states  []core.AbsState
	// witBuf/stateBuf/stepBuf/justBuf/seedBuf are the certificate replay's
	// reusable scratch, so a replay allocates only what the spec itself does.
	witBuf   []*core.Label
	stateBuf []core.AbsState
	stepBuf  []core.AbsState
	justBuf  []*core.Label
	seedBuf  []int
}

// safeTokenEqual compares rewriting identities, treating a comparison panic
// (run-time uncomparable values inside an interface) as "not equal".
func safeTokenEqual(a, b any) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// getExt returns the session's extension entry for h, or nil.
func (s *Session) getExt(h *core.History) *extension {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exts[h]
}

// storeExt records an extension entry for h, evicting an arbitrary entry at
// the cap (and un-pinning its rewritten clone from the seen set).
func (s *Session) storeExt(h *core.History, ext *extension) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exts == nil {
		s.exts = make(map[*core.History]*extension)
	}
	if _, ok := s.exts[h]; !ok && len(s.exts) >= extensionCap {
		for old, e := range s.exts {
			delete(s.exts, old)
			if e.rew != nil && !e.rew.Aliased() {
				delete(s.seen, e.rew.History)
			}
			break
		}
	}
	s.exts[h] = ext
}

// dropExt removes h's extension entry, un-pinning the superseded rewritten
// clone from the re-check seen set (it can never be checked again).
func (s *Session) dropExt(h *core.History) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.exts[h]
	if !ok {
		return
	}
	delete(s.exts, h)
	if e.rew != nil && !e.rew.Aliased() {
		delete(s.seen, e.rew.History)
	}
}

// Extend implements core.Extender: check h — which gained newOps as its final
// labels since this session last checked it — reusing the previous verdict as
// a certificate and the session's plan, interner and caches for the prefix.
// The result is finalized and byte-identical in verdict to core.CheckRA on
// the full history; see the package comment at the top of this file for the
// certificate-first flow and the degradation ladder.
//
// Calls for the same history must be externally serialized (they mutate the
// per-history state, exactly like History.Add itself); calls for different
// histories may run concurrently.
func (s *Session) Extend(h *core.History, spec core.Spec, newOps []*core.Label, opts core.CheckOptions) core.Result {
	if s == nil {
		return core.CheckRA(h, spec, opts)
	}
	if inc := core.ContextIncomplete(opts.Context); inc != nil {
		res := core.Result{Incomplete: inc}
		res.Finalize()
		return res
	}
	// Without the exhaustive phase the certificate could prove Valid where a
	// from-scratch check reports Unknown (no-search), breaking verdict parity
	// — and a rewriting without a comparable identity cannot be matched
	// against the stored entry at all. Both degrade to the plain warm check.
	token, tokenOK := core.RewritingIdentity(opts.Rewriting)
	if !opts.Exhaustive || !tokenOK {
		s.rewrites.Invalidate(h)
		s.dropExt(h)
		return core.CheckRA(h, spec, opts)
	}
	// Pin the session's cache generation for the whole extension: budget
	// eviction only runs while no check is in flight, so the entry, its plan
	// and the interner stay coherent until we return.
	intern := ensureInterner(s.beginCheck())
	defer s.endCheck()

	ext := s.getExt(h)
	if ext == nil || !s.extendable(ext, h, token, newOps) {
		return s.rebuildExt(h, spec, opts, token)
	}
	// Grow the rewriting over the new operations. The aliasing fast path
	// grows by itself (rew.History is h); the cloning path appends the new
	// images and transports their edges in place — on failure the clone is
	// partially extended and everything is rebuilt from scratch, which
	// reproduces the same rewriting error a from-scratch check reports.
	if !ext.rew.Aliased() {
		if err := core.ExtendRewriting(ext.rew, h, ext.nOld, opts.Rewriting); err != nil {
			return s.rebuildExt(h, spec, opts, token)
		}
	}
	rh := ext.rew.History
	rhN := rh.Len()

	res := core.Result{
		Rewritten:     rh,
		RewriteCached: !ext.rew.Aliased(),
		Engine:        core.EnginePruned,
		Extended:      true,
	}
	if ext.valid && s.replayCertificate(ext, rh, spec) {
		res.OK = true
		res.Complete = true
		res.WitnessReplayed = true
		res.Tried = 1
		wit := make([]*core.Label, rhN)
		copy(wit, ext.witness)
		for t := ext.rewLen; t < rhN; t++ {
			wit[t] = rh.LabelAt(t)
		}
		ext.witness = wit
		ext.states = append(ext.states[:0], ext.stateBuf...)
		res.Linearization = wit
		s.commitSnapshot(ext, h, rhN, newOps)
		res.Finalize()
		return res
	}

	// Certificate unavailable or refuted: full pruned search over the plan
	// grown in place, seeded (when a witness exists) so the DFS tries the old
	// witness order first and the PR 8 score table orders the rest.
	if ext.plan == nil {
		ext.plan = &prepared{}
		if err := ext.plan.build(rh, false); err != nil {
			res.LastErr = err
			res.Complete = true
			res.Finalize()
			return res
		}
	} else if ext.planN < rhN {
		if err := ext.plan.extend(rh, ext.planN, false); err != nil {
			res.LastErr = err
			res.Complete = true
			res.Finalize()
			return res
		}
	}
	ext.planN = rhN

	guided := core.ResolveGuidance(opts.Guidance) == core.GuidanceGuided || len(ext.witness) > 0
	var guideTab *scoreTable
	if guided {
		guideTab = s.guideScores()
		ext.plan.buildGuide(guideTab, false)
		if len(ext.witness) > 0 {
			ext.seedBuf = ext.seedBuf[:0]
			for _, l := range ext.witness {
				if r, ok := rh.RankOf(l.ID); ok {
					ext.seedBuf = append(ext.seedBuf, r)
				}
			}
			ext.plan.seedWitness(ext.seedBuf)
		}
	}
	out := runPrepared(s, intern, ext.plan, rh, spec, false, guided, guideTab, true, opts)
	res.Tried += out.Leaves
	res.Nodes = out.Nodes
	res.Pruned = out.Pruned
	res.MemoHits = out.MemoHits
	res.Steals = out.Steals
	res.Shards = out.Shards
	res.Workers = out.Workers
	res.PlanReused = out.PlanReused
	res.MemDegraded = out.MemDegraded
	if out.LastErr != nil {
		res.LastErr = out.LastErr
	}
	switch {
	case out.OK:
		res.OK = true
		res.Complete = true
		res.Linearization = out.Witness
		// Store the certificate in exact-size backing: the engine's witness is
		// carved from a 512-label arena chunk, and a long-lived certificate
		// must pin only itself.
		ext.witness = append(make([]*core.Label, 0, len(out.Witness)), out.Witness...)
		ext.states = statesAfterUpdates(spec, ext.witness, ext.states[:0])
		ext.valid = true
		s.commitSnapshot(ext, h, rhN, newOps)
	case out.Complete:
		res.Complete = true
		ext.valid = false
		ext.witness = nil
		ext.states = nil
		s.commitSnapshot(ext, h, rhN, newOps)
	default:
		res.Complete = false
		res.Incomplete = out.Incomplete
		// Truncated: no certificate, but keep the stale witness as a seed for
		// the next attempt's branch order. The snapshot still advances — the
		// plan and rewriting already cover the new operations.
		ext.valid = false
		s.commitSnapshot(ext, h, rhN, newOps)
	}
	if res.Complete && !res.OK && res.LastErr != nil {
		res.LastErr = fmt.Errorf("%w: %v", core.ErrNotRALinearizable, res.LastErr)
	}
	res.Finalize()
	return res
}

// commitSnapshot advances the entry's coverage markers to h's current state
// after a successful extension (whatever the verdict).
func (s *Session) commitSnapshot(ext *extension, h *core.History, rhN int, newOps []*core.Label) {
	ext.nOld = h.Len()
	ext.rewLen = rhN
	ext.edgeCount = h.DirectEdgeCount()
	for _, l := range newOps {
		if l.GenSeq > ext.maxGenSeq {
			ext.maxGenSeq = l.GenSeq
		}
	}
}

// extendable verifies every incremental precondition for reusing ext on h:
//
//   - same rewriting identity as the entry was built with;
//   - newOps are exactly h's tail beyond the entry's snapshot (length, label
//     identity and rank all match);
//   - the edge discipline: every direct edge recorded since the snapshot
//     targets a new rank, verified in O(new) by comparing the edge-count
//     growth against the direct in-degrees of the new ranks;
//   - on the aliasing fast path additionally: no new query-updates (the nil
//     rewriting rejects them) and strictly increasing GenSeq continuation (so
//     a from-scratch check would still alias rather than clone).
//
// Any failure reports false and the caller rebuilds from scratch.
func (s *Session) extendable(ext *extension, h *core.History, token any, newOps []*core.Label) bool {
	if !safeTokenEqual(ext.token, token) {
		return false
	}
	if h.Len() != ext.nOld+len(newOps) {
		return false
	}
	newEdges := 0
	for i, l := range newOps {
		r, ok := h.RankOf(l.ID)
		if !ok || r != ext.nOld+i || h.LabelAt(r) != l {
			return false
		}
		newEdges += h.DirectInDegree(r)
	}
	if ext.edgeCount+newEdges != h.DirectEdgeCount() {
		return false
	}
	if ext.rew.Aliased() {
		max := ext.maxGenSeq
		for _, l := range newOps {
			if l.IsQueryUpdate() || l.GenSeq <= max {
				return false
			}
			max = l.GenSeq
		}
	}
	return true
}

// rebuildExt is the degradation ladder's bottom rung: drop the stale entry
// and the (possibly stale) cached rewriting of the mutated h, run a plain
// warm core.CheckRA over the full history, and record a fresh extension entry
// for the next call.
func (s *Session) rebuildExt(h *core.History, spec core.Spec, opts core.CheckOptions, token any) core.Result {
	s.dropExt(h)
	s.rewrites.Invalidate(h)
	res := core.CheckRA(h, spec, opts)
	rew, _, err := core.RewriteForCheck(h, opts)
	if err != nil || !rew.History.IsAcyclic() {
		// The check failed before (or at) the rewriting; there is nothing
		// incremental to track. Every later Extend repeats the plain check
		// and reproduces the same error result.
		return res
	}
	ext := &extension{
		token:  token,
		rew:    rew,
		nOld:   h.Len(),
		rewLen: rew.History.Len(),
	}
	ext.edgeCount = h.DirectEdgeCount()
	for t := 0; t < h.Len(); t++ {
		if gs := h.LabelAt(t).GenSeq; gs > ext.maxGenSeq {
			ext.maxGenSeq = gs
		}
	}
	if res.Verdict == core.VerdictValid {
		ext.valid = true
		ext.witness = append(make([]*core.Label, 0, len(res.Linearization)), res.Linearization...)
		ext.states = statesAfterUpdates(spec, ext.witness, nil)
	}
	s.storeExt(h, ext)
	return res
}

// replayCertificate checks whether appending the new rewritten labels (ranks
// ext.rewLen..rh.Len()) to the stored witness in rank order yields an
// RA-linearization, without any search:
//
//	(i)  frontier admissibility — every predecessor of a new label has a
//	     smaller rank, so it is already placed when the label is appended;
//	(ii) the update projection stays admitted — new updates step the cached
//	     post-witness state set, which must stay non-empty;
//	(iii) each new query is justified by its visible updates in witness
//	     order (old queries cannot have gained visible updates under the
//	     edge discipline, so only the new ones need checking).
//
// On success the stepped state set is left in ext.stateBuf for the caller to
// commit; on failure ext's certificate state is untouched and the caller
// falls back to the search.
func (s *Session) replayCertificate(ext *extension, rh *core.History, spec core.Spec) bool {
	rhN := rh.Len()
	admissible := true
	for t := ext.rewLen; t < rhN; t++ {
		rh.PredRow(t, func(f int) {
			if f >= t {
				admissible = false
			}
		})
		if !admissible {
			return false
		}
	}
	// Copy-on-write replay state: the working sets live in the entry's scratch
	// so a successful replay of k updates costs k spec steps and no growth
	// allocations after the first extension.
	work := append(ext.stateBuf[:0], ext.states...)
	wit := append(ext.witBuf[:0], ext.witness...)
	defer func() { ext.witBuf = wit[:0] }()
	for t := ext.rewLen; t < rhN; t++ {
		l := rh.LabelAt(t)
		if l.IsUpdate() {
			step := ext.stepBuf[:0]
			for _, phi := range work {
				step = core.StepInto(spec, step, phi, l)
			}
			step = core.DedupStates(step)
			ext.stepBuf = step[:0]
			if len(step) == 0 {
				return false
			}
			work = append(work[:0], step...)
		} else {
			ext.justBuf = ext.justBuf[:0]
			for _, u := range wit {
				if u.IsUpdate() && rh.Vis(u.ID, l.ID) {
					ext.justBuf = append(ext.justBuf, u)
				}
			}
			ext.justBuf = append(ext.justBuf, l)
			if !core.Admits(spec, ext.justBuf) {
				return false
			}
		}
		wit = append(wit, l)
	}
	ext.stateBuf = work
	return true
}

// statesAfterUpdates folds the update projection of seq through the spec from
// its initial state into dst, returning the deduplicated reachable set — the
// certificate's resumption point for future update steps.
func statesAfterUpdates(spec core.Spec, seq []*core.Label, dst []core.AbsState) []core.AbsState {
	dst = append(dst[:0], spec.Init())
	var scratch []core.AbsState
	for _, l := range seq {
		if !l.IsUpdate() {
			continue
		}
		scratch = scratch[:0]
		for _, phi := range dst {
			scratch = core.StepInto(spec, scratch, phi, l)
		}
		scratch = core.DedupStates(scratch)
		dst = append(dst[:0], scratch...)
		if len(dst) == 0 {
			return dst
		}
	}
	return dst
}
