package search

import (
	"testing"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// mkUpdate / mkQuery build minimal labels for hand-rolled histories.
func mkUpdate(id uint64, method string, args ...core.Value) *core.Label {
	return &core.Label{ID: id, Method: method, Args: args, Kind: core.KindUpdate, GenSeq: id}
}

func mkRead(id uint64, ret core.Value) *core.Label {
	return &core.Label{ID: id, Method: "read", Ret: ret, Kind: core.KindQuery, GenSeq: id}
}

// concurrentIncsHistory builds k concurrent inc() updates plus one read that
// sees all of them and returns ret.
func concurrentIncsHistory(k int, ret int64) *core.History {
	h := core.NewHistory()
	for i := 1; i <= k; i++ {
		h.MustAdd(mkUpdate(uint64(i), "inc"))
	}
	r := h.MustAdd(mkRead(uint64(k+1), ret))
	for i := 1; i <= k; i++ {
		h.MustAddVis(uint64(i), r.ID)
	}
	return h
}

func TestEmptyHistory(t *testing.T) {
	out := Run(core.NewHistory(), spec.Counter{}, false, core.CheckOptions{})
	if !out.OK || !out.Complete || len(out.Witness) != 0 {
		t.Fatalf("empty history must linearize trivially: %+v", out)
	}
}

func TestSingleLabel(t *testing.T) {
	h := core.NewHistory()
	h.MustAdd(mkUpdate(1, "inc"))
	out := Run(h, spec.Counter{}, false, core.CheckOptions{})
	if !out.OK || len(out.Witness) != 1 {
		t.Fatalf("single update must linearize: %+v", out)
	}
}

func TestFindsWitness(t *testing.T) {
	h := concurrentIncsHistory(5, 5)
	out := Run(h, spec.Counter{}, false, core.CheckOptions{})
	if !out.OK || !out.Complete {
		t.Fatalf("read⇒5 after 5 incs must be RA-linearizable: %+v", out)
	}
	if err := core.IsRALinearization(h, out.Witness, spec.Counter{}); err != nil {
		t.Fatalf("returned witness is not an RA-linearization: %v", err)
	}
}

func TestRejectsImpossibleRead(t *testing.T) {
	h := concurrentIncsHistory(5, 99)
	out := Run(h, spec.Counter{}, false, core.CheckOptions{})
	if out.OK || !out.Complete {
		t.Fatalf("read⇒99 after 5 incs must be rejected definitively: %+v", out)
	}
	if out.LastErr == nil {
		t.Fatal("a definitive rejection must carry a prune reason")
	}
}

func TestQueryUpdateRejected(t *testing.T) {
	h := core.NewHistory()
	h.MustAdd(&core.Label{ID: 1, Method: "remove", Kind: core.KindQueryUpdate, GenSeq: 1})
	out := Run(h, spec.Set{}, false, core.CheckOptions{})
	if out.OK || !out.Complete || out.LastErr == nil {
		t.Fatalf("RA mode must reject unrewritten query-updates: %+v", out)
	}
}

func TestMemoizationCollapsesCommutingUpdates(t *testing.T) {
	h := concurrentIncsHistory(7, 99)
	memo := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1})
	nomemo := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1, DisableMemo: true})
	if memo.OK || nomemo.OK {
		t.Fatalf("history must be rejected: memo=%+v nomemo=%+v", memo, nomemo)
	}
	if memo.MemoHits == 0 {
		t.Fatalf("commuting counter increments must produce memo hits, got %+v", memo)
	}
	if memo.Nodes >= nomemo.Nodes {
		t.Fatalf("memoization must shrink the tree: %d nodes with memo, %d without", memo.Nodes, nomemo.Nodes)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, ret := range []int64{6, 99} {
		h := concurrentIncsHistory(6, ret)
		seq := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1})
		par := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 4})
		if seq.OK != par.OK || seq.Complete != par.Complete {
			t.Fatalf("ret=%d: sequential %+v and parallel %+v verdicts differ", ret, seq, par)
		}
		if par.OK {
			if err := core.IsRALinearization(h, par.Witness, spec.Counter{}); err != nil {
				t.Fatalf("parallel witness invalid: %v", err)
			}
		}
	}
}

func TestNodeBudgetTruncates(t *testing.T) {
	h := concurrentIncsHistory(8, 99)
	out := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1, MaxNodes: 5, DisableMemo: true})
	if out.OK || out.Complete {
		t.Fatalf("a 5-node budget on a 9-label history must truncate: %+v", out)
	}
}

// TestPrunedBeatsLegacyFivefold is the committed evidence for the acceptance
// criterion: on a non-RA-linearizable history the pruned engine must examine
// at least 5× fewer prefixes than the legacy enumerator examines complete
// candidates. Parallelism is deliberately left at the default (GOMAXPROCS):
// since the memo table is shared and claimed on node entry, parallel node
// counts no longer depend on the host's core count beyond scheduling noise
// (TestParallelNodesMatchSequential bounds that noise explicitly). See
// BENCHMARKS.md for measured numbers.
func TestPrunedBeatsLegacyFivefold(t *testing.T) {
	h := concurrentIncsHistory(7, 99)
	legacy := core.CheckRA(h, spec.Counter{}, core.CheckOptions{Exhaustive: true, Engine: core.EngineLegacy})
	pruned := core.CheckRA(h, spec.Counter{}, core.CheckOptions{Exhaustive: true, Engine: core.EnginePruned})
	if legacy.OK || pruned.OK {
		t.Fatalf("history must be rejected by both engines: legacy=%v pruned=%v", legacy.OK, pruned.OK)
	}
	if !legacy.Complete || !pruned.Complete {
		t.Fatalf("both searches must be complete: legacy=%v pruned=%v", legacy.Complete, pruned.Complete)
	}
	if legacy.Tried < 5*pruned.Nodes {
		t.Fatalf("pruned engine must do ≥5× fewer candidate checks: legacy tried %d, pruned explored %d nodes",
			legacy.Tried, pruned.Nodes)
	}
	t.Logf("legacy tried %d candidates; pruned explored %d nodes (%d pruned, %d memo hits): %.0f× fewer",
		legacy.Tried, pruned.Nodes, pruned.Pruned, pruned.MemoHits, float64(legacy.Tried)/float64(pruned.Nodes))
}

// TestParallelNodesMatchSequential asserts the shared claim-on-entry memo
// table closes the gap between parallel and sequential node counts: with
// per-worker tables, parallel workers re-explored configurations other
// workers had already exhausted (449 sequential vs 635 parallel nodes on this
// history in PR 1); with a shared table a configuration claimed by anyone
// prunes everyone, so the parallel count must stay within 25% of sequential.
func TestParallelNodesMatchSequential(t *testing.T) {
	h := concurrentIncsHistory(7, 99)
	seq := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1})
	if seq.OK || !seq.Complete {
		t.Fatalf("history must be refuted sequentially: %+v", seq)
	}
	for _, workers := range []int{2, 4, 8} {
		par := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: workers})
		if par.OK || !par.Complete {
			t.Fatalf("workers=%d: history must be refuted: %+v", workers, par)
		}
		if limit := seq.Nodes + seq.Nodes/4; par.Nodes > limit {
			t.Fatalf("workers=%d: parallel search explored %d nodes, more than 1.25× the sequential %d",
				workers, par.Nodes, seq.Nodes)
		}
		t.Logf("workers=%d: %d nodes (sequential %d), %d memo hits, %d steals across %d shards",
			workers, par.Nodes, seq.Nodes, par.MemoHits, par.Steals, par.Shards)
	}
}

// TestSharedMemoUnderContention hammers the shared lock-striped memo table
// and the work-stealing queue with many workers over many repetitions on the
// non-linearizable flagship history; under `go test -race` (the CI
// configuration) this doubles as the data-race check for the interner, the
// memo stripes and the queue.
func TestSharedMemoUnderContention(t *testing.T) {
	h := concurrentIncsHistory(7, 99)
	for rep := 0; rep < 10; rep++ {
		out := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 8})
		if out.OK || !out.Complete {
			t.Fatalf("rep %d: history must be refuted definitively: %+v", rep, out)
		}
		if out.Workers != 8 {
			t.Fatalf("rep %d: expected 8 workers, got %d", rep, out.Workers)
		}
		if out.Shards != memoShardCount {
			t.Fatalf("rep %d: expected %d memo shards, got %d", rep, memoShardCount, out.Shards)
		}
		if out.MemoHits == 0 {
			t.Fatalf("rep %d: commuting increments must produce memo hits: %+v", rep, out)
		}
	}
}

// TestStatsSurfaced checks the scheduler statistics reach the engine outcome:
// a sequential run reports no steals and the shard count of the (still
// shared-shaped) memo table; disabling memoization zeroes the shard count.
func TestStatsSurfaced(t *testing.T) {
	h := concurrentIncsHistory(5, 99)
	seq := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1})
	if seq.Steals != 0 {
		t.Fatalf("sequential search cannot steal: %+v", seq)
	}
	if seq.Shards != memoShardCount {
		t.Fatalf("memo shard count must be surfaced: %+v", seq)
	}
	nomemo := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 1, DisableMemo: true})
	if nomemo.Shards != 0 {
		t.Fatalf("disabled memo must report zero shards: %+v", nomemo)
	}
}

func TestStrongModeMatchesLegacy(t *testing.T) {
	// Strongly linearizable: the read sees both incs and returns 2.
	ok := concurrentIncsHistory(2, 2)
	// Not strongly linearizable: visibility forces both incs before the
	// read, whose full prefix then sums to 2, not 1.
	bad := concurrentIncsHistory(2, 1)
	for name, h := range map[string]*core.History{"ok": ok, "bad": bad} {
		legacy := core.CheckStrongLinearizable(h, spec.Counter{}, core.CheckOptions{Engine: core.EngineLegacy})
		pruned := core.CheckStrongLinearizable(h, spec.Counter{}, core.CheckOptions{Engine: core.EnginePruned})
		if legacy.OK != pruned.OK || legacy.Complete != pruned.Complete {
			t.Fatalf("%s: strong verdicts differ: legacy=%+v pruned=%+v", name, legacy, pruned)
		}
	}
}
