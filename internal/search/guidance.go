package search

import (
	"strconv"
	"sync"

	"ralin/internal/core"
)

// Guided branch ordering (core.GuidanceGuided) layers two heuristics on the
// pruned DFS, both differentially gated to be verdict-preserving:
//
//   - Query commit: in RA mode, once a query reaches the frontier every one
//     of its visibility predecessors is placed, so its justification set is
//     final — placing it can neither change the main update projection nor any
//     other pending query's justification. Committing to the enabled query
//     (exploring only that branch) is therefore a sound exchange-argument
//     reduction: any witness that places the query later can be reordered to
//     place it now, and if the query's final justification is inadmissible, no
//     extension of the prefix can ever place it. This is where guided mode's
//     refutation wins come from — pure sibling *re*ordering cannot shrink a
//     complete (refuting) search, whose explored configuration DAG is a
//     property of the history, not of the visit order.
//
//   - Composite-score ordering of the remaining candidates: novel spec states
//     first (the step lands on a state key the session interner has not seen —
//     probed read-only, so ordering never grows the interner), then ops that
//     justify more pending queries (condition (iii) progress), then a
//     per-label-class success score learned across a session's batch. Ties
//     keep rank order, so the ordering is deterministic given the session
//     state.

// guideClassBits is the width of the success-score field in a composite
// branch score; the query-justification count sits above it and the novelty
// bit above that.
const (
	guideClassBits   = 20
	guideClassMax    = int64(1)<<guideClassBits - 1
	guideJustifyBits = 10
	guideJustifyMax  = int64(1)<<guideJustifyBits - 1
	guideNoveltyBit  = int64(1) << (guideClassBits + guideJustifyBits)
)

// scoreDecay and scoreEpsilon shape the success counters: each recorded check
// outcome halves every counter before crediting, so the table tracks the
// recent batch, and counters that decay below epsilon are dropped so the
// table's size is bounded by the label classes of recent checks.
const (
	scoreDecay   = 0.5
	scoreEpsilon = 1.0 / 1024
)

// scoreTable is the session's guided-mode success memory: a decayed counter
// per label class (method + kind), credited with the classes of every witness
// a guided check finds and decayed on every completed guided check — so a
// class that keeps appearing in witnesses sorts before one that never does.
// It lives beside the session's plan pool and is dropped with the other
// caches on budget eviction. All methods are safe for concurrent use and
// nil-safe (a nil table scores everything zero and records nothing), so
// sessionless guided checks pay no lookups.
type scoreTable struct {
	mu     sync.RWMutex
	scores map[string]float64
}

func newScoreTable() *scoreTable {
	return &scoreTable{scores: make(map[string]float64)}
}

// guideClass is the success-score key of a label: its method name and kind.
// Object is deliberately excluded — scores should transfer across the many
// objects of a batch, not fragment per key.
func guideClass(l *core.Label) string {
	if l.Kind == core.KindUpdate {
		return l.Method
	}
	return l.Method + "|" + strconv.Itoa(int(l.Kind))
}

// score returns the clamped integer success score of one label class, scaled
// into the low guideClassBits of a composite branch score.
func (t *scoreTable) score(class string) int64 {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	v := t.scores[class]
	t.mu.RUnlock()
	s := int64(v * 1024)
	if s > guideClassMax {
		return guideClassMax
	}
	return s
}

// record folds one completed guided check into the table: every counter
// decays, then the classes appearing in the witness (deduplicated — a class
// is credited once per check, however often it occurs) are credited. A
// refutation records with a nil witness: decay only, so stale credit fades
// across a refutation-heavy batch.
func (t *scoreTable) record(witness []*core.Label) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.scores {
		v *= scoreDecay
		if v < scoreEpsilon {
			delete(t.scores, k)
		} else {
			t.scores[k] = v
		}
	}
	var credited []string
	for _, l := range witness {
		class := guideClass(l)
		dup := false
		for _, c := range credited {
			if c == class {
				dup = true
				break
			}
		}
		if !dup {
			credited = append(credited, class)
			t.scores[class]++
		}
	}
}

// buildGuide fills p.guide with the static (per-check) component of every
// label's branch score: the pending-query justification count (RA mode —
// strong mode judges queries against the whole prefix, so the count carries
// no (iii) progress there) and the session success score of the label's
// class. The dynamic novelty bit is added per node by the searcher. Called
// once per guided check, after build; the slice is pooled with the plan.
func (p *prepared) buildGuide(tab *scoreTable, strong bool) {
	p.guide = resizeInt64s(p.guide, len(p.labels))
	for i, l := range p.labels {
		var sc int64
		if !strong {
			j := int64(len(p.affected[i]))
			if j > guideJustifyMax {
				j = guideJustifyMax
			}
			sc = j << guideClassBits
		}
		p.guide[i] = sc | tab.score(guideClass(l))
	}
}

// guideWitnessBase is the per-position step of the witness-seed bonus the
// extension fallback layers onto the guided scores. It sits far above the
// novelty bit (1<<30), so among seeded labels the certificate order always
// wins over every dynamic signal, and any seeded label beats any unseeded
// one.
const guideWitnessBase = int64(1) << 32

// seedWitness adds the certificate bonus for the failed witness linearization
// to an already-built guide: the k-th label of the witness outscores the
// (k+1)-th and every unseeded label, so the fallback search's first branch is
// exactly the old witness order and exploration diverges from it as late as
// possible. seed holds plan label indices in witness order. Ordering is a
// heuristic only — verdicts are unchanged (see the package differential
// gates).
func (p *prepared) seedWitness(seed []int) {
	n := len(seed)
	for k, i := range seed {
		p.guide[i] += guideWitnessBase * int64(n-k)
	}
}

// resizeInt64s returns a length-n int64 slice, reusing s's backing array when
// it is large enough. Contents are unspecified; callers overwrite every entry.
func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
