package search

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// normalizeOutcome strips the fields that legitimately differ between a warm
// session and a fresh one (plan pooling, the representative prune error's
// identity, witness label pointers) so the rest of the outcome can be
// compared byte for byte.
func normalizeOutcome(out core.EngineOutcome) core.EngineOutcome {
	out.PlanReused = false
	out.LastErr = nil
	out.Witness = nil
	return out
}

// requireByteIdentical asserts that a check through the recovered session is
// indistinguishable from the same check through a brand-new session.
func requireByteIdentical(t *testing.T, got, fresh core.EngineOutcome) {
	t.Helper()
	if !reflect.DeepEqual(normalizeOutcome(got), normalizeOutcome(fresh)) {
		t.Fatalf("session not reusable: recovered-session outcome %+v differs from fresh-session outcome %+v", got, fresh)
	}
}

// TestSessionReusableAfterCancelledContext checks the fail-safe contract for
// caller cancellation: the cancelled check reports Unknown/cancelled, and the
// next check through the same session behaves exactly like a fresh session.
func TestSessionReusableAfterCancelledContext(t *testing.T) {
	sess := NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := sessOpts(sess)
	opts.Context = ctx
	dead := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, opts)
	if dead.OK || dead.Complete {
		t.Fatalf("cancelled check must not claim a verdict: %+v", dead)
	}
	if dead.Incomplete == nil || dead.Incomplete.Reason != core.ReasonCancelled {
		t.Fatalf("cancelled check must carry ReasonCancelled: %+v", dead.Incomplete)
	}

	fresh := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(NewSession()))
	got := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	requireByteIdentical(t, got, fresh)
}

// TestSessionReusableAfterExpiredDeadline is the deadline variant: an already
// expired context yields Unknown/deadline and leaves the session intact.
func TestSessionReusableAfterExpiredDeadline(t *testing.T) {
	sess := NewSession()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	opts := sessOpts(sess)
	opts.Context = ctx
	dead := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, opts)
	if dead.OK || dead.Complete {
		t.Fatalf("expired-deadline check must not claim a verdict: %+v", dead)
	}
	if dead.Incomplete == nil || dead.Incomplete.Reason != core.ReasonDeadline {
		t.Fatalf("expired-deadline check must carry ReasonDeadline: %+v", dead.Incomplete)
	}

	fresh := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(NewSession()))
	got := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	requireByteIdentical(t, got, fresh)
}

// TestInternerBudgetDegradesSoundly checks graceful degradation at the
// interner: with a tiny MaxInternedStates the search loses memoization but
// still decides the history, the outcome reports MemDegraded, the session
// evicts once idle, and the next check is byte-identical to a fresh session
// with the same budget.
func TestInternerBudgetDegradesSoundly(t *testing.T) {
	b := Budget{MaxInternedStates: 2}
	sess := NewSessionWithBudget(b)
	first := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	if first.OK || !first.Complete {
		t.Fatalf("degraded search must still refute read⇒99: %+v", first)
	}
	if !first.MemDegraded {
		t.Fatalf("tiny interner budget must report degradation: %+v", first)
	}
	if first.MemoHits != 0 {
		t.Fatalf("degraded search cannot score memo hits: %+v", first)
	}
	if got := sess.Evictions(); got != 1 {
		t.Fatalf("tripped session must evict once idle: evictions=%d", got)
	}

	fresh := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(NewSessionWithBudget(b)))
	got := Run(concurrentIncsHistory(6, 99), spec.Counter{}, false, sessOpts(sess))
	requireByteIdentical(t, got, fresh)
	if got := sess.Evictions(); got != 2 {
		t.Fatalf("second tripped check must evict again: evictions=%d", got)
	}
}

// TestMemoBudgetDegradesSoundly is the memo-arena variant: MaxMemoBytes caps
// the live memo entries; past the cap the worker drops to memo-less mode but
// the verdict is unchanged.
func TestMemoBudgetDegradesSoundly(t *testing.T) {
	b := Budget{MaxMemoBytes: 1} // rounds up to a one-entry cap
	sess := NewSessionWithBudget(b)
	first := Run(concurrentIncsHistory(7, 99), spec.Counter{}, false, sessOpts(sess))
	if first.OK || !first.Complete {
		t.Fatalf("memo-capped search must still refute read⇒99: %+v", first)
	}
	if !first.MemDegraded {
		t.Fatalf("one-entry memo budget must report degradation: %+v", first)
	}
	if got := sess.Evictions(); got != 1 {
		t.Fatalf("tripped session must evict once idle: evictions=%d", got)
	}

	fresh := Run(concurrentIncsHistory(7, 99), spec.Counter{}, false, sessOpts(NewSessionWithBudget(b)))
	got := Run(concurrentIncsHistory(7, 99), spec.Counter{}, false, sessOpts(sess))
	requireByteIdentical(t, got, fresh)
}

// TestBudgetedSessionMatchesUnbudgetedVerdicts asserts the soundness half of
// the budget contract across polarities: a heavily budgeted session may lose
// memoization but never flips a verdict.
func TestBudgetedSessionMatchesUnbudgetedVerdicts(t *testing.T) {
	sess := NewSessionWithBudget(Budget{MaxInternedStates: 1, MaxMemoBytes: 1})
	for _, ret := range []int64{6, 99} {
		want := Run(concurrentIncsHistory(6, ret), spec.Counter{}, false, sessOpts(nil))
		got := Run(concurrentIncsHistory(6, ret), spec.Counter{}, false, sessOpts(sess))
		if got.OK != want.OK || got.Complete != want.Complete {
			t.Fatalf("ret=%d: budgeted verdict %+v differs from unbudgeted %+v", ret, got, want)
		}
	}
}

// panicSpec wraps the counter specification and blows up on the first query
// step. It deliberately does not implement StepAppender so the panic fires
// through the generic StepInto path in every engine configuration.
type panicSpec struct{ inner spec.Counter }

func (p panicSpec) Name() string        { return "Spec(panic)" }
func (p panicSpec) Init() core.AbsState { return p.inner.Init() }
func (p panicSpec) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	if l.Kind == core.KindQuery {
		panic("panicSpec: injected failure")
	}
	return p.inner.Step(phi, l)
}

// TestPanickingSpecIsIsolated checks panic isolation inside the engine: a
// specification that panics mid-search (sequentially and across a parallel
// worker pool) terminates cleanly with Unknown/panic and a captured stack —
// no deadlock, no crash of the caller.
func TestPanickingSpecIsIsolated(t *testing.T) {
	for _, par := range []int{1, 4} {
		out := Run(concurrentIncsHistory(5, 5), panicSpec{}, false, core.CheckOptions{Parallelism: par})
		if out.OK || out.Complete {
			t.Fatalf("parallelism=%d: panicking spec must not produce a verdict: %+v", par, out)
		}
		if out.Incomplete == nil || out.Incomplete.Reason != core.ReasonPanic {
			t.Fatalf("parallelism=%d: want ReasonPanic, got %+v", par, out.Incomplete)
		}
		if !strings.Contains(out.Incomplete.Detail, "injected failure") {
			t.Fatalf("parallelism=%d: panic message must survive into the detail: %q", par, out.Incomplete.Detail)
		}
		if out.Incomplete.Stack == "" {
			t.Fatalf("parallelism=%d: panic stack must be captured", par)
		}
	}
}

// TestPanickingSpecLeavesSessionUsable checks that a panic inside one check
// does not poison the shared session: the panicking searcher is discarded
// (not pooled) and the next check through the same session succeeds.
func TestPanickingSpecLeavesSessionUsable(t *testing.T) {
	sess := NewSession()
	opts := sessOpts(sess)
	out := Run(concurrentIncsHistory(5, 5), panicSpec{}, false, opts)
	if out.Incomplete == nil || out.Incomplete.Reason != core.ReasonPanic {
		t.Fatalf("want ReasonPanic, got %+v", out.Incomplete)
	}
	fresh := Run(concurrentIncsHistory(5, 5), spec.Counter{}, false, sessOpts(NewSession()))
	got := Run(concurrentIncsHistory(5, 5), spec.Counter{}, false, sessOpts(sess))
	if got.OK != fresh.OK || got.Complete != fresh.Complete || got.Nodes != fresh.Nodes {
		t.Fatalf("session after panic differs from fresh: got %+v want %+v", got, fresh)
	}
}
