package search

import (
	"context"
	"errors"
	"testing"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// extOpts builds the deterministic incremental-check options used by the
// extension tests: exhaustive (the certificate's parity precondition),
// sequential, carrying the session.
func extOpts(sess *Session) core.CheckOptions {
	return core.CheckOptions{Exhaustive: true, Parallelism: 1, Session: sess}
}

// scratchVerdict checks h from scratch — fresh state, same options minus the
// session — for the parity assertions.
func scratchVerdict(h *core.History, sp core.Spec, opts core.CheckOptions) core.Result {
	opts.Session = nil
	return core.CheckRA(h, sp, opts)
}

// TestExtendCertificateReplay walks one history through the monitor protocol
// — add an op, Extend with it — and pins the expected path at every step:
// first contact rebuilds, growth under the edge discipline replays the
// certificate without a search, a refuted certificate falls back to the
// search, and every verdict matches a from-scratch check of the same prefix.
func TestExtendCertificateReplay(t *testing.T) {
	sess := NewSession()
	h := core.NewHistory()
	opts := extOpts(sess)

	step := func(ctx string, l *core.Label, wantReplayed bool, wantVerdict core.Verdict) core.Result {
		t.Helper()
		res := sess.Extend(h, spec.Counter{}, []*core.Label{l}, opts)
		if res.Verdict != wantVerdict {
			t.Fatalf("%s: verdict %v, want %v (%+v)", ctx, res.Verdict, wantVerdict, res)
		}
		if res.WitnessReplayed != wantReplayed {
			t.Fatalf("%s: WitnessReplayed=%v, want %v (%+v)", ctx, res.WitnessReplayed, wantReplayed, res)
		}
		if fresh := scratchVerdict(h, spec.Counter{}, opts); fresh.Verdict != res.Verdict {
			t.Fatalf("%s: incremental verdict %v diverges from from-scratch %v", ctx, res.Verdict, fresh.Verdict)
		}
		return res
	}

	l1 := mkUpdate(1, "inc")
	h.MustAdd(l1)
	first := step("first contact", l1, false, core.VerdictValid)
	if first.Extended {
		t.Fatalf("first contact must go through the plain rebuild, not the extension: %+v", first)
	}

	l2 := mkUpdate(2, "inc")
	h.MustAdd(l2)
	rep := step("second inc", l2, true, core.VerdictValid)
	if !rep.Extended || rep.Nodes != 0 {
		t.Fatalf("certificate replay must not search: %+v", rep)
	}

	r3 := mkRead(3, int64(2))
	h.MustAdd(r3)
	h.MustAddVis(1, 3)
	h.MustAddVis(2, 3)
	step("justified read", r3, true, core.VerdictValid)

	// A read returning nonsense refutes the certificate; the fallback search
	// must deliver the Invalid verdict the from-scratch check reports.
	r4 := mkRead(4, int64(99))
	h.MustAdd(r4)
	h.MustAddVis(1, 4)
	h.MustAddVis(2, 4)
	bad := step("corrupt read", r4, false, core.VerdictInvalid)
	if !bad.Extended {
		t.Fatalf("refuted certificate must fall back to the extended search: %+v", bad)
	}
	if !errors.Is(bad.LastErr, core.ErrNotRALinearizable) {
		t.Fatalf("complete refutation must wrap ErrNotRALinearizable: %v", bad.LastErr)
	}

	// Invalid carries no certificate: the next extension re-searches and the
	// verdict stays Invalid (the corrupt read is still there).
	l5 := mkUpdate(5, "inc")
	h.MustAdd(l5)
	again := step("inc after refutation", l5, false, core.VerdictInvalid)
	if !again.Extended {
		t.Fatalf("extension after Invalid must re-search, not rebuild: %+v", again)
	}
}

// TestExtendFallbackSeededSearch forces a certificate failure whose history
// is still linearizable — a new read that must be placed after a new update
// inserted behind it — and checks the fallback search recovers the Valid
// verdict, stores the found witness in exact-size backing (satellite: a
// long-lived certificate must not pin a searcher's 512-label arena chunk),
// and that the stored witness then replays on the next growth step.
func TestExtendFallbackSeededSearch(t *testing.T) {
	sess := NewSession()
	h := core.NewHistory()
	opts := extOpts(sess)

	var ops []*core.Label
	for i := 1; i <= 4; i++ {
		l := mkUpdate(uint64(i), "inc")
		h.MustAdd(l)
		ops = append(ops, l)
	}
	if res := sess.Extend(h, spec.Counter{}, ops, opts); res.Verdict != core.VerdictValid {
		t.Fatalf("four incs must be valid: %+v", res)
	}

	// The read lands at rank 4, the update it must see at rank 5: rank-order
	// replay places the read first and fails condition (iii), but the search
	// can reorder within the new suffix.
	r5 := mkRead(5, int64(5))
	u6 := mkUpdate(6, "inc")
	h.MustAdd(r5)
	h.MustAdd(u6)
	for i := uint64(1); i <= 4; i++ {
		h.MustAddVis(i, 5)
	}
	h.MustAddVis(6, 5)
	res := sess.Extend(h, spec.Counter{}, []*core.Label{r5, u6}, opts)
	if res.Verdict != core.VerdictValid || !res.Extended || res.WitnessReplayed {
		t.Fatalf("fallback search must recover Valid without a certificate replay: %+v", res)
	}
	if res.Nodes == 0 {
		t.Fatalf("fallback must actually search: %+v", res)
	}
	if fresh := scratchVerdict(h, spec.Counter{}, opts); fresh.Verdict != res.Verdict {
		t.Fatalf("fallback verdict %v diverges from from-scratch %v", res.Verdict, fresh.Verdict)
	}

	sess.mu.Lock()
	ext := sess.exts[h]
	sess.mu.Unlock()
	if ext == nil || !ext.valid {
		t.Fatal("a Valid fallback must store a fresh certificate")
	}
	if cap(ext.witness) != len(ext.witness) {
		t.Fatalf("stored witness must use exact-size backing, got len %d cap %d", len(ext.witness), cap(ext.witness))
	}

	// The searched witness is now the certificate: the next growth replays it.
	l7 := mkUpdate(7, "inc")
	h.MustAdd(l7)
	rep := sess.Extend(h, spec.Counter{}, []*core.Label{l7}, opts)
	if rep.Verdict != core.VerdictValid || !rep.WitnessReplayed {
		t.Fatalf("searched witness must replay as the next certificate: %+v", rep)
	}
}

// TestExtendEdgeDisciplineViolationRebuilds grows a refuted history with an
// edge into an old query — the one growth the extension path must not absorb,
// because the old query's justification set changes. The call must degrade to
// the plain rebuild and flip the verdict to the (now correct) Valid.
func TestExtendEdgeDisciplineViolationRebuilds(t *testing.T) {
	sess := NewSession()
	h := core.NewHistory()
	opts := extOpts(sess)

	for i := 1; i <= 2; i++ {
		l := mkUpdate(uint64(i), "inc")
		h.MustAdd(l)
		sess.Extend(h, spec.Counter{}, []*core.Label{l}, opts)
	}
	r3 := mkRead(3, int64(3)) // sees 2 incs, claims 3: Invalid for now
	h.MustAdd(r3)
	h.MustAddVis(1, 3)
	h.MustAddVis(2, 3)
	if res := sess.Extend(h, spec.Counter{}, []*core.Label{r3}, opts); res.Verdict != core.VerdictInvalid {
		t.Fatalf("read⇒3 over 2 incs must be Invalid: %+v", res)
	}

	// The third inc becomes visible to the old read: Invalid does not persist
	// under extension, and this particular growth is not even an extension —
	// the new edge targets an old rank.
	l4 := mkUpdate(4, "inc")
	h.MustAdd(l4)
	h.MustAddVis(4, 3)
	res := sess.Extend(h, spec.Counter{}, []*core.Label{l4}, opts)
	if res.Verdict != core.VerdictValid {
		t.Fatalf("read⇒3 over 3 visible incs must be Valid: %+v", res)
	}
	if res.Extended {
		t.Fatalf("an edge into an old query must force the plain rebuild: %+v", res)
	}
	if fresh := scratchVerdict(h, spec.Counter{}, opts); fresh.Verdict != res.Verdict {
		t.Fatalf("rebuild verdict %v diverges from from-scratch %v", res.Verdict, fresh.Verdict)
	}
}

// TestExtendEvictionDropsState trips the session memory budget mid-extension
// stream and checks the eviction story: the extension entries are dropped
// with the other caches (their plans and witnesses belong to the evicted
// generation), and the stream continues correctly through rebuilds.
func TestExtendEvictionDropsState(t *testing.T) {
	sess := NewSessionWithBudget(Budget{MaxInternedStates: 1})
	h := concurrentIncsHistory(3, 3)
	opts := extOpts(sess)
	if res := sess.Extend(h, spec.Counter{}, h.Labels(), opts); res.Verdict != core.VerdictValid {
		t.Fatalf("budget pressure must not change the verdict: %+v", res)
	}
	sess.mu.Lock()
	exts := sess.exts
	sess.mu.Unlock()
	if exts != nil {
		t.Fatalf("tripped budget must evict the extension state with the other caches, still tracking %d", len(exts))
	}
	// The next growth finds no entry and rebuilds — same verdict as scratch.
	l5 := mkUpdate(5, "inc")
	h.MustAdd(l5)
	res := sess.Extend(h, spec.Counter{}, []*core.Label{l5}, opts)
	if res.Verdict != core.VerdictValid || res.Extended {
		t.Fatalf("post-eviction growth must rebuild cleanly: %+v", res)
	}
	if fresh := scratchVerdict(h, spec.Counter{}, opts); fresh.Verdict != res.Verdict {
		t.Fatalf("post-eviction verdict %v diverges from from-scratch %v", res.Verdict, fresh.Verdict)
	}
}

// TestExtendDeadContextLeavesStateCoherent checks the fail-safe path: a
// cancelled context yields Unknown without advancing the entry's snapshot, so
// the next call (whose newOps no longer line up with the stale snapshot)
// degrades to the rebuild and still reports the right verdict.
func TestExtendDeadContextLeavesStateCoherent(t *testing.T) {
	sess := NewSession()
	h := core.NewHistory()
	opts := extOpts(sess)

	l1 := mkUpdate(1, "inc")
	h.MustAdd(l1)
	sess.Extend(h, spec.Counter{}, []*core.Label{l1}, opts)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := opts
	dead.Context = ctx
	l2 := mkUpdate(2, "inc")
	h.MustAdd(l2)
	if res := sess.Extend(h, spec.Counter{}, []*core.Label{l2}, dead); res.Verdict != core.VerdictUnknown {
		t.Fatalf("cancelled context must yield Unknown: %+v", res)
	}

	// l2 was never absorbed; extending with only l3 must not silently skip it.
	l3 := mkUpdate(3, "inc")
	h.MustAdd(l3)
	res := sess.Extend(h, spec.Counter{}, []*core.Label{l3}, opts)
	if res.Verdict != core.VerdictValid || res.Extended {
		t.Fatalf("stale snapshot after a cancelled step must rebuild: %+v", res)
	}
	if fresh := scratchVerdict(h, spec.Counter{}, opts); fresh.Verdict != res.Verdict {
		t.Fatalf("verdict %v diverges from from-scratch %v", res.Verdict, fresh.Verdict)
	}
}

// TestExtendNonExhaustiveDegrades pins the verdict-parity guard: without the
// exhaustive phase the certificate could prove Valid where a from-scratch
// check reports Unknown, so Extend must hand such calls to the plain checker
// unchanged.
func TestExtendNonExhaustiveDegrades(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(3, 3)
	opts := extOpts(sess)
	opts.Exhaustive = false
	res := sess.Extend(h, spec.Counter{}, h.Labels(), opts)
	plain := scratchVerdict(h, spec.Counter{}, opts)
	if res.Extended || res.WitnessReplayed {
		t.Fatalf("non-exhaustive calls must not use the extension path: %+v", res)
	}
	if res.Verdict != plain.Verdict {
		t.Fatalf("degraded verdict %v diverges from plain %v", res.Verdict, plain.Verdict)
	}
}

// TestExtendDropUnpinsSeen is the satellite regression for the re-check seen
// set: when a history's extension entry is superseded, its rewritten clone —
// which can never be checked again — must be dropped from the seen set
// instead of pinning a dead history for the rest of the session.
func TestExtendDropUnpinsSeen(t *testing.T) {
	sess := NewSession()
	h := concurrentIncsHistory(4, 4)
	opts := extOpts(sess)
	opts.Rewriting = cloneRewriting{tag: 1}
	if res := sess.Extend(h, spec.Counter{}, h.Labels(), opts); res.Verdict != core.VerdictValid {
		t.Fatalf("setup check failed: %+v", res)
	}
	sess.mu.Lock()
	ext := sess.exts[h]
	sess.mu.Unlock()
	if ext == nil || ext.rew == nil || ext.rew.Aliased() {
		t.Fatal("a cloning rewriting must store a non-aliased extension entry")
	}
	clone := ext.rew.History
	sess.mu.Lock()
	_, pinned := sess.seen[clone]
	sess.mu.Unlock()
	if !pinned {
		t.Fatal("the rewritten clone must be in the seen set after its check")
	}

	// A different rewriting identity supersedes the entry; the old clone must
	// be unpinned by the rebuild.
	opts.Rewriting = cloneRewriting{tag: 2}
	if res := sess.Extend(h, spec.Counter{}, h.Labels(), opts); res.Verdict != core.VerdictValid {
		t.Fatalf("rebuild under the new rewriting failed: %+v", res)
	}
	sess.mu.Lock()
	_, pinned = sess.seen[clone]
	sess.mu.Unlock()
	if pinned {
		t.Fatal("superseding an extension entry must unpin its rewritten clone from the seen set")
	}
}

// TestStepCachePutDupAndCap is the satellite regression for stepCache.put:
// the first writer wins (a duplicate put must not replace the stored entry),
// a full cache refuses new entries without copying them first, and stored
// entries are copies — later mutation of the caller's scratch must not leak
// into the cache.
func TestStepCachePutDupAndCap(t *testing.T) {
	c := &stepCache{}
	l := mkUpdate(1, "inc")

	ids := []uint32{7}
	c.put(5, l, nil, ids)
	ids[0] = 99 // callers recycle their scratch; the cache must hold a copy
	c.put(5, l, nil, []uint32{42})
	e, ok := c.get(5, l)
	if !ok || len(e.ids) != 1 || e.ids[0] != 7 {
		t.Fatalf("first writer must win and must be copied: %+v ok=%v", e, ok)
	}

	// Fill to the cap and check a put of a fresh key is refused.
	c.mu.Lock()
	for i := len(c.entries); i < stepCacheCap; i++ {
		c.entries[stepKey{state: uint32(i + 1000)}] = stepEntry{}
	}
	c.mu.Unlock()
	fresh := mkUpdate(2, "inc")
	c.put(6, fresh, nil, []uint32{1})
	if _, ok := c.get(6, fresh); ok {
		t.Fatal("a full cache must refuse new entries")
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n != stepCacheCap {
		t.Fatalf("cache grew past the cap: %d", n)
	}
}
