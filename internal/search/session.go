package search

import (
	"math/bits"
	"reflect"
	"sync"
	"sync/atomic"

	"ralin/internal/core"
)

// memoEntryBytes is the accounting weight of one memo-table entry: a key128
// plus its share of map bucket overhead. Budget.MaxMemoBytes is converted to
// an entry cap with it, so the budget check on the claim path stays a single
// integer comparison instead of a size calculation.
const memoEntryBytes = 64

// poolClasses is the number of size classes the plan and searcher pools are
// split into. Class c holds entries whose label capacity has bit length c
// (i.e. capacities in [2^(c-1), 2^c)), so a batch mixing small and large
// histories hands each check scratch within a factor of two of its size
// instead of ping-ponging one pool between shapes.
const poolClasses = 16

// sizeClass maps a label count to its pool class.
func sizeClass(n int) int {
	if c := bits.Len(uint(n)); c < poolClasses {
		return c
	}
	return poolClasses - 1
}

// stepCacheCap bounds the entries of one per-spec transition cache: a
// runaway batch of ever-new histories stops filling the cache past the cap
// (lookups continue; new transitions are just recomputed).
const stepCacheCap = 1 << 18

// stepKey identifies one cached transition: the source state's session-
// interner ID and the label stepped over. The label is keyed by pointer —
// re-checks of one history through a session see the same label pointers
// (the session's rewrite cache returns the cached rewriting), which is
// exactly the warm path the cache exists for; fresh histories miss and fill.
type stepKey struct {
	state uint32
	label *core.Label
}

// stepEntry is one cached transition result: the successor states in raw
// emission order with their interner IDs, duplicates included, so a cache
// replay feeds the set-insert path the exact sequence the live spec call
// would.
type stepEntry struct {
	states []core.AbsState
	ids    []uint32
}

// stepCache memoizes a specification's transition function across the checks
// of a session: (source-state ID, label) → interned successors. It also
// caches the spec's initial state and its ID (searcher.cachedInit), the last
// per-check allocation of a warm re-check. Entries are only stored when every
// successor interned, so replaying an entry never needs a StateKey rendering
// or an interner probe. Dropped whole on budget eviction — its IDs belong to
// the evicted interner generation.
type stepCache struct {
	mu        sync.RWMutex
	initState core.AbsState
	initID    uint32
	entries   map[stepKey]stepEntry
}

// get returns the cached transition for (id, l), if present.
func (c *stepCache) get(id uint32, l *core.Label) (stepEntry, bool) {
	k := stepKey{state: id, label: l}
	c.mu.RLock()
	e, ok := c.entries[k]
	c.mu.RUnlock()
	return e, ok
}

// put stores one transition result, copying both slices (callers pass
// scratch). First writer wins; at the cap the cache stops growing. The copies
// are built before the write lock is taken — and skipped entirely when a
// read-locked probe already sees the cache full or the entry present — so
// parallel workers filling the cache contend only on the map insert, not on
// the allocation and copy of every entry.
func (c *stepCache) put(id uint32, l *core.Label, states []core.AbsState, ids []uint32) {
	k := stepKey{state: id, label: l}
	c.mu.RLock()
	full := len(c.entries) >= stepCacheCap
	_, dup := c.entries[k]
	c.mu.RUnlock()
	if full || dup {
		return
	}
	e := stepEntry{
		states: append([]core.AbsState(nil), states...),
		ids:    append([]uint32(nil), ids...),
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[stepKey]stepEntry)
	}
	if _, dup := c.entries[k]; !dup && len(c.entries) < stepCacheCap {
		c.entries[k] = e
	}
	c.mu.Unlock()
}

// specStep pairs a specification with its transition cache; the session keeps
// one per distinct (comparable) spec value, found by linear scan — batches
// use a handful of specs at most.
type specStep struct {
	spec  core.Spec
	cache *stepCache
}

// Budget caps the memory-consuming structures of a Session. The zero value
// (and any zero field) means unlimited. Tripping a budget never aborts a
// check and never changes a verdict's polarity: the search degrades to
// memo-less mode (the DisableMemo path) for the remainder of the check, and
// once the session is idle it evicts its caches — interner, memo arena,
// plan/searcher pools, rewrite cache, guidance scores — so the next check
// starts exactly like one on a fresh session.
type Budget struct {
	// MaxInternedStates caps the number of distinct abstract states the
	// session interner assigns IDs to.
	MaxInternedStates int
	// MaxMemoBytes caps the approximate bytes of live memoization entries
	// across the session's in-flight checks (each entry is accounted at
	// memoEntryBytes).
	MaxMemoBytes int64
	// MaxPlanPoolEntries caps the prepared-plan pool (and, with it, the
	// searcher scratch pool) so an adversarial batch of many distinct
	// history shapes cannot grow the pools without bound.
	MaxPlanPoolEntries int
}

// Session is the cross-check state of one batch of searches: the interner
// assigning dense IDs to canonical state keys, an arena of lock-striped memo
// tables, a pool of prepared history plans, a rewrite cache, and a pool of
// per-worker searcher scratch (undo frames, state-set buffers, candidate
// slices). A single check pays for all of these as warm-up; a batch that
// threads one Session through every check
// (core.CheckRAWith / CheckOptions.Session) pays once and then only resets.
//
// Sharing is safe because the pieces have different lifetimes:
//
//   - the interner is append-only and concurrency-safe, and interned IDs stay
//     valid for the whole session — states recur across the histories of a
//     batch, so later checks mostly hit the read lock;
//   - memo tables are per-check (their keys mix per-history label indices, so
//     reusing *contents* across histories would alias configurations of
//     different histories); the arena recycles the tables themselves, cleared
//     with their buckets kept, so a check allocates no shard maps after the
//     arena warms up;
//   - history plans (the preds/succs/affected/order index arrays prepare()
//     derives) are per-check; the pool recycles the plan structs with their
//     index slices cleared-not-reallocated, so a check's setup stops paying
//     the per-history index allocations once the pool warms up;
//   - the rewrite cache is keyed by history identity and survives the whole
//     session: a history re-checked through the session clones and
//     re-derives its γ-rewriting once, not once per check (consulted by
//     core.CheckRA through the core.RewriteCacher interface);
//   - searchers are per-worker-per-check; the pool recycles their backing
//     arrays and buffer pools, re-initialized for each history's label count.
//
// A Session may serve concurrent checks and checks of different
// specifications. Interner IDs are only ever compared within one check, and a
// check only reaches states of its own specification, so cross-spec key
// collisions in the shared interner are harmless.
type Session struct {
	rewrites core.RewriteCache
	budget   Budget
	// memoEntries counts live memo-table entries across the session's
	// in-flight checks; maintained only when a memo budget is configured.
	memoEntries atomic.Int64
	// tripped latches a memory-budget trip; endCheck evicts the session's
	// caches (and clears the latch) once no check is in flight.
	tripped atomic.Bool

	mu sync.Mutex
	// intern is guarded by mu only for the pointer swap during eviction;
	// the interner itself is concurrency-safe and checks pin it for their
	// whole run through beginCheck/endCheck.
	intern    *interner
	active    int
	evictions int
	// internedHigh is the high-water interned-state count across evictions,
	// so InternedStates keeps reporting the vocabulary actually built.
	internedHigh int
	memos        []*memoTable
	// searchers and plans are pooled in size classes (sizeClass over the label
	// count they were last sized for); searcherCount/planCount track the
	// totals across classes for the MaxPlanPoolEntries budget.
	searchers     [poolClasses][]*searcher
	plans         [poolClasses][]*prepared
	searcherCount int
	planCount     int
	// shareds pools the per-check coordination blocks (counters, compactor,
	// stop flags) released by Run.
	shareds []*shared
	// steps holds one transition cache per distinct comparable specification
	// checked through the session (stepCacheFor).
	steps []specStep
	// seen tracks the (rewritten) history pointers checked through the
	// session, so Run attaches the transition cache only to re-checks: a
	// first-contact history would fill the cache with entries keyed by its
	// label pointers — copies that can never be hit again unless that very
	// history object returns. Capped at seenHistoryCap pointers; like the
	// rewrite cache, the pins are dropped on budget eviction.
	seen map[*core.History]struct{}
	// exts tracks per-history incremental-extension state (Session.Extend):
	// the length, rewriting and prepared plan of each history's last verdict,
	// plus the witness certificate when that verdict was Valid. Entries are
	// capped at extensionCap and dropped wholesale on budget eviction — their
	// plans index the evicted generation's pooled shapes and their witnesses
	// pin rewritten labels.
	exts map[*core.History]*extension
	// guidance is the guided-mode success-score table (core.GuidanceGuided):
	// decayed per-label-class counters credited from the witnesses of the
	// session's guided checks. It lives beside the plan pool and is dropped
	// with the other caches on budget eviction; rank-order checks never touch
	// it, and it is allocated lazily on the first guided check so rank-order
	// sessions never pay for it. The table is internally synchronized —
	// checks read and record through the pointer pinned at beginCheck time.
	guidance *scoreTable
}

// NewSession creates an empty, unbudgeted batch session. It implements
// core.EngineSession; pass it to core.CheckRAWith (or set
// CheckOptions.Session) on every check of a batch.
func NewSession() *Session {
	return NewSessionWithBudget(Budget{})
}

// NewSessionWithBudget creates a batch session whose interner, memo arena and
// plan pool are capped by b. See Budget for the degradation semantics.
func NewSessionWithBudget(b Budget) *Session {
	return &Session{intern: newInternerLimited(b.MaxInternedStates), budget: b}
}

// guideScores returns the session's guided-mode success-score table,
// allocating it on first use; nil on a nil session (sessionless guided checks
// run with zero success scores). Like the interner, the pointer is stable for
// the duration of any in-flight check because eviction only runs when the
// session is idle.
func (s *Session) guideScores() *scoreTable {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.guidance == nil {
		s.guidance = newScoreTable()
	}
	return s.guidance
}

// Budget returns the session's configured memory budget (the zero Budget for
// an unbudgeted session).
func (s *Session) Budget() Budget {
	if s == nil {
		return Budget{}
	}
	return s.budget
}

// Evictions returns how many times a tripped memory budget made the idle
// session drop its caches and start a fresh generation.
func (s *Session) Evictions() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// noteTrip latches a memory-budget trip; nil-safe (sessionless searches have
// no budget, but the call sites stay unconditional).
func (s *Session) noteTrip() {
	if s != nil {
		s.tripped.Store(true)
	}
}

// beginCheck pins the session's current cache generation for the duration of
// one check: eviction only happens when no check is in flight, so interned
// IDs stay stable while any search references them.
func (s *Session) beginCheck() *interner {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active++
	return s.intern
}

// endCheck releases the pin taken by beginCheck and — when a budget tripped
// and this was the last in-flight check — evicts the session's caches so the
// next check starts from a fresh generation.
func (s *Session) endCheck() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	if s.active == 0 && s.tripped.Load() {
		s.evictLocked()
		s.tripped.Store(false)
	}
}

// evictLocked is the memory-budget fail-safe: drop every cache the session
// accumulated — interner, pooled memo tables, plans and searcher scratch, the
// rewrite cache and the guidance score table — so the memory is reclaimable
// and the next check is
// indistinguishable from one on a fresh session with the same budget. Called
// with s.mu held and no check in flight.
func (s *Session) evictLocked() {
	if n := s.intern.size(); n > s.internedHigh {
		s.internedHigh = n
	}
	s.intern = newInternerLimited(s.budget.MaxInternedStates)
	s.memos = nil
	for c := range s.plans {
		s.plans[c] = nil
		s.searchers[c] = nil
	}
	s.planCount, s.searcherCount = 0, 0
	s.shareds = nil
	// The step caches hold IDs of the evicted interner generation; replaying
	// them against the fresh generation would alias unrelated states.
	s.steps = nil
	s.seen = nil
	// Extension state is rebuilt on the next Extend of each history: the
	// cached plans belong to the evicted pool generation and the witness
	// certificates pin rewritten labels the fresh session should not.
	s.exts = nil
	s.memoEntries.Store(0)
	s.rewrites.Clear()
	s.guidance = nil
	s.evictions++
}

// EngineSessionKind identifies the owning engine (core.EngineSession).
func (s *Session) EngineSessionKind() string { return "pruned" }

// InternedStates returns the number of distinct abstract states interned so
// far — the state vocabulary the session's checks have shared instead of
// rebuilding per history. Across budget evictions it reports the high-water
// mark of any generation.
func (s *Session) InternedStates() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	in, high := s.intern, s.internedHigh
	s.mu.Unlock()
	if n := in.size(); n > high {
		return n
	}
	return high
}

// RewriteCache exposes the session's γ-rewriting cache; it implements
// core.RewriteCacher, which core.CheckRA consults so re-checked histories
// clone their rewriting once per session instead of once per check. Returns
// nil on a nil session (no caching).
func (s *Session) RewriteCache() *core.RewriteCache {
	if s == nil {
		return nil
	}
	return &s.rewrites
}

// getPlan takes a recycled history plan sized for n labels — its index slices
// are cleared-not-reallocated by the next build — or a fresh one when the
// session is nil or no suitable class has an entry. The plan's own size class
// is tried first, then larger classes (their entries fit with room to spare);
// smaller classes would only re-grow. The second result reports whether the
// plan was recycled (surfaced as Result.PlanReused).
func (s *Session) getPlan(n int) (*prepared, bool) {
	if s == nil {
		return &prepared{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := takeClassed(s.plans[:], sizeClass(n), &s.planCount); p != nil {
		return p, true
	}
	return &prepared{}, false
}

// takeClassed pops an entry from a size-classed pool: the wanted class first,
// then larger classes (their entries fit with room to spare), then smaller
// ones (reuse with regrowth beats a cold allocation). count is the pool's
// cross-class total. Returns the zero T when every class is empty.
func takeClassed[T comparable](classes [][]T, want int, count *int) T {
	var zero T
	take := func(c int) (T, bool) {
		if k := len(classes[c]); k > 0 {
			e := classes[c][k-1]
			classes[c][k-1] = zero
			classes[c] = classes[c][:k-1]
			*count--
			return e, true
		}
		return zero, false
	}
	for c := want; c < poolClasses; c++ {
		if e, ok := take(c); ok {
			return e
		}
	}
	for c := want - 1; c >= 0; c-- {
		if e, ok := take(c); ok {
			return e
		}
	}
	return zero
}

// putPlan drops the plan's label references (so a pooled plan pins nothing of
// the finished check's history) and returns it to its size class — unless the
// budget caps the pool and it is full, in which case the plan is dropped for
// the collector (cold-plan eviction). No-op on a nil session.
func (s *Session) putPlan(p *prepared) {
	if s == nil || p == nil {
		return
	}
	p.release()
	s.mu.Lock()
	if max := s.budget.MaxPlanPoolEntries; max > 0 && s.planCount >= max {
		s.mu.Unlock()
		return
	}
	c := sizeClass(cap(p.order))
	s.plans[c] = append(s.plans[c], p)
	s.planCount++
	s.mu.Unlock()
}

// seenHistoryCap bounds the re-check tracking set: past it, first contacts
// are no longer recorded (their later re-checks just lose transition
// caching), so an unbounded stream of distinct histories cannot grow the set
// — or pin its histories — without limit.
const seenHistoryCap = 1 << 16

// recheck reports whether h was already checked through this session, and
// records it for the next check if not. Run gates the transition cache on it:
// only a history seen before is worth filling the cache for, because the
// cache keys transitions by label pointer and distinct histories never share
// labels. Nil-safe (sessionless checks are never re-checks).
func (s *Session) recheck(h *core.History) bool {
	if s == nil || h == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.seen[h]; ok {
		return true
	}
	if s.seen == nil {
		s.seen = make(map[*core.History]struct{})
	}
	if len(s.seen) < seenHistoryCap {
		s.seen[h] = struct{}{}
	}
	return false
}

// stepCacheFor returns the session's transition cache for spec, creating it
// on first contact. Only comparable spec values are cacheable (the cache is
// found by interface equality); a non-comparable spec — or a nil session —
// gets nil, and the search falls back to live stepping.
func (s *Session) stepCacheFor(spec core.Spec) *stepCache {
	if s == nil || spec == nil {
		return nil
	}
	if t := reflect.TypeOf(spec); t == nil || !t.Comparable() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.steps {
		if e.spec == spec {
			return e.cache
		}
	}
	c := &stepCache{}
	s.steps = append(s.steps, specStep{spec: spec, cache: c})
	return c
}

// getShared takes a pooled per-check coordination block re-armed with the
// given node budget, or a fresh one when the session is nil or the pool is
// empty.
func (s *Session) getShared(budget int64) *shared {
	if s == nil {
		return newShared(budget)
	}
	s.mu.Lock()
	var sh *shared
	if n := len(s.shareds); n > 0 {
		sh = s.shareds[n-1]
		s.shareds[n-1] = nil
		s.shareds = s.shareds[:n-1]
	}
	s.mu.Unlock()
	if sh == nil {
		return newShared(budget)
	}
	sh.reset(budget)
	return sh
}

// putShared releases the block's references into the finished check and pools
// it. Run only calls this when no context watcher goroutine can still touch
// the block. No-op on a nil session.
func (s *Session) putShared(sh *shared) {
	if s == nil || sh == nil {
		return
	}
	sh.release()
	s.mu.Lock()
	s.shareds = append(s.shareds, sh)
	s.mu.Unlock()
}

// getMemo takes a cleared memo table from the arena (allocating only when the
// arena is empty). When the session carries a memo budget, the table is wired
// to the session's live-entry counter so claims are accounted. Safe on a nil
// session, which always allocates.
func (s *Session) getMemo() *memoTable {
	if s == nil {
		return newMemoTable()
	}
	s.mu.Lock()
	var m *memoTable
	if n := len(s.memos); n > 0 {
		m = s.memos[n-1]
		s.memos[n-1] = nil
		s.memos = s.memos[:n-1]
	}
	s.mu.Unlock()
	if m == nil {
		m = newMemoTable()
	}
	if s.budget.MaxMemoBytes > 0 {
		m.live = &s.memoEntries
	}
	return m
}

// putMemo clears the table (keeping its shard maps' buckets) and returns it
// to the arena. No-op on a nil session.
func (s *Session) putMemo(m *memoTable) {
	if s == nil || m == nil {
		return
	}
	m.reset()
	s.mu.Lock()
	s.memos = append(s.memos, m)
	s.mu.Unlock()
}

// getSearcher takes a recycled searcher sized for n labels (its own size
// class first, then larger), or returns nil (which newSearcher treats as
// "allocate fresh") when the session is nil or no suitable class has one.
func (s *Session) getSearcher(n int) *searcher {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return takeClassed(s.searchers[:], sizeClass(n), &s.searcherCount)
}

// putSearcher unwinds the searcher, drops its references to the finished
// check's history and specification, and pools its backing arrays in their
// size class for the next check. No-op on a nil session.
func (s *Session) putSearcher(w *searcher) {
	if s == nil || w == nil {
		return
	}
	w.release()
	s.mu.Lock()
	// The searcher pool rides on the plan-pool budget: searcher scratch is
	// sized by the same history shapes the plans index.
	if max := s.budget.MaxPlanPoolEntries; max > 0 && s.searcherCount >= max {
		s.mu.Unlock()
		return
	}
	c := sizeClass(cap(w.indegree))
	s.searchers[c] = append(s.searchers[c], w)
	s.searcherCount++
	s.mu.Unlock()
}
