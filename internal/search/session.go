package search

import (
	"sync"

	"ralin/internal/core"
)

// Session is the cross-check state of one batch of searches: the interner
// assigning dense IDs to canonical state keys, an arena of lock-striped memo
// tables, a pool of prepared history plans, a rewrite cache, and a pool of
// per-worker searcher scratch (undo frames, state-set buffers, candidate
// slices). A single check pays for all of these as warm-up; a batch that
// threads one Session through every check
// (core.CheckRAWith / CheckOptions.Session) pays once and then only resets.
//
// Sharing is safe because the pieces have different lifetimes:
//
//   - the interner is append-only and concurrency-safe, and interned IDs stay
//     valid for the whole session — states recur across the histories of a
//     batch, so later checks mostly hit the read lock;
//   - memo tables are per-check (their keys mix per-history label indices, so
//     reusing *contents* across histories would alias configurations of
//     different histories); the arena recycles the tables themselves, cleared
//     with their buckets kept, so a check allocates no shard maps after the
//     arena warms up;
//   - history plans (the preds/succs/affected/order index arrays prepare()
//     derives) are per-check; the pool recycles the plan structs with their
//     index slices cleared-not-reallocated, so a check's setup stops paying
//     the per-history index allocations once the pool warms up;
//   - the rewrite cache is keyed by history identity and survives the whole
//     session: a history re-checked through the session clones and
//     re-derives its γ-rewriting once, not once per check (consulted by
//     core.CheckRA through the core.RewriteCacher interface);
//   - searchers are per-worker-per-check; the pool recycles their backing
//     arrays and buffer pools, re-initialized for each history's label count.
//
// A Session may serve concurrent checks and checks of different
// specifications. Interner IDs are only ever compared within one check, and a
// check only reaches states of its own specification, so cross-spec key
// collisions in the shared interner are harmless.
type Session struct {
	intern   *interner
	rewrites core.RewriteCache

	mu        sync.Mutex
	memos     []*memoTable
	searchers []*searcher
	plans     []*prepared
}

// NewSession creates an empty batch session. It implements
// core.EngineSession; pass it to core.CheckRAWith (or set
// CheckOptions.Session) on every check of a batch.
func NewSession() *Session {
	return &Session{intern: newInterner()}
}

// EngineSessionKind identifies the owning engine (core.EngineSession).
func (s *Session) EngineSessionKind() string { return "pruned" }

// InternedStates returns the number of distinct abstract states interned so
// far — the state vocabulary the session's checks have shared instead of
// rebuilding per history.
func (s *Session) InternedStates() int {
	if s == nil {
		return 0
	}
	return s.intern.size()
}

// RewriteCache exposes the session's γ-rewriting cache; it implements
// core.RewriteCacher, which core.CheckRA consults so re-checked histories
// clone their rewriting once per session instead of once per check. Returns
// nil on a nil session (no caching).
func (s *Session) RewriteCache() *core.RewriteCache {
	if s == nil {
		return nil
	}
	return &s.rewrites
}

// getPlan takes a recycled history plan from the pool — its index slices are
// cleared-not-reallocated by the next build — or a fresh one when the session
// is nil or the pool is empty. The second result reports whether the plan was
// recycled (surfaced as Result.PlanReused).
func (s *Session) getPlan() (*prepared, bool) {
	if s == nil {
		return &prepared{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.plans); n > 0 {
		p := s.plans[n-1]
		s.plans[n-1] = nil
		s.plans = s.plans[:n-1]
		return p, true
	}
	return &prepared{}, false
}

// putPlan drops the plan's label references (so a pooled plan pins nothing of
// the finished check's history) and returns it to the pool. No-op on a nil
// session.
func (s *Session) putPlan(p *prepared) {
	if s == nil || p == nil {
		return
	}
	p.release()
	s.mu.Lock()
	s.plans = append(s.plans, p)
	s.mu.Unlock()
}

// getMemo takes a cleared memo table from the arena (allocating only when the
// arena is empty). Safe on a nil session, which always allocates.
func (s *Session) getMemo() *memoTable {
	if s == nil {
		return newMemoTable()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.memos); n > 0 {
		m := s.memos[n-1]
		s.memos[n-1] = nil
		s.memos = s.memos[:n-1]
		return m
	}
	return newMemoTable()
}

// putMemo clears the table (keeping its shard maps' buckets) and returns it
// to the arena. No-op on a nil session.
func (s *Session) putMemo(m *memoTable) {
	if s == nil || m == nil {
		return
	}
	m.reset()
	s.mu.Lock()
	s.memos = append(s.memos, m)
	s.mu.Unlock()
}

// getSearcher takes a recycled searcher from the pool, or returns nil (which
// newSearcher treats as "allocate fresh") when the session is nil or empty.
func (s *Session) getSearcher() *searcher {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.searchers); n > 0 {
		w := s.searchers[n-1]
		s.searchers[n-1] = nil
		s.searchers = s.searchers[:n-1]
		return w
	}
	return nil
}

// putSearcher unwinds the searcher, drops its references to the finished
// check's history and specification, and pools its backing arrays for the
// next check. No-op on a nil session.
func (s *Session) putSearcher(w *searcher) {
	if s == nil || w == nil {
		return
	}
	w.release()
	s.mu.Lock()
	s.searchers = append(s.searchers, w)
	s.mu.Unlock()
}
