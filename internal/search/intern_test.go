package search

import (
	"fmt"
	"sync"
	"testing"

	"ralin/internal/core"
	"ralin/internal/spec"
)

func TestInternerDenseAndStable(t *testing.T) {
	in := newInterner()
	keys := []string{"a", "b", "c", "a", "b", "d", ""}
	first := make(map[string]uint32)
	for _, k := range keys {
		id, ok := in.id(k)
		if !ok {
			t.Fatalf("unbudgeted interner rejected key %q", k)
		}
		if prev, ok := first[k]; ok && prev != id {
			t.Fatalf("id of %q changed: %d then %d", k, prev, id)
		}
		first[k] = id
	}
	if in.size() != 5 {
		t.Fatalf("expected 5 distinct keys, got %d", in.size())
	}
	seen := make(map[uint32]string)
	for k, id := range first {
		if id >= 5 {
			t.Fatalf("IDs must be dense 0..4, %q got %d", k, id)
		}
		if other, dup := seen[id]; dup {
			t.Fatalf("keys %q and %q share ID %d", k, other, id)
		}
		seen[id] = k
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := newInterner()
	const workers, keysN = 8, 200
	var wg sync.WaitGroup
	got := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		w := w
		got[w] = make([]uint32, keysN)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keysN; k++ {
				got[w][k], _ = in.id(fmt.Sprintf("key-%d", k))
			}
		}()
	}
	wg.Wait()
	if in.size() != keysN {
		t.Fatalf("expected %d distinct keys, got %d", keysN, in.size())
	}
	for w := 1; w < workers; w++ {
		for k := 0; k < keysN; k++ {
			if got[w][k] != got[0][k] {
				t.Fatalf("worker %d saw ID %d for key %d, worker 0 saw %d", w, got[w][k], k, got[0][k])
			}
		}
	}
}

func TestHash128Deterministic(t *testing.T) {
	sum := func(words []uint64) key128 {
		h := newHash128()
		for _, w := range words {
			h.mix(w)
		}
		return h.sum()
	}
	a := sum([]uint64{1, 2, 3})
	if b := sum([]uint64{1, 2, 3}); a != b {
		t.Fatalf("same input hashed differently: %v vs %v", a, b)
	}
	if b := sum([]uint64{3, 2, 1}); a == b {
		t.Fatalf("order must matter: %v", a)
	}
	if b := sum([]uint64{1, 2}); a == b {
		t.Fatalf("length must matter: %v", a)
	}
	if b := sum([]uint64{1, 2, 4}); a == b {
		t.Fatalf("content must matter: %v", a)
	}
	if z := sum(nil); z == (key128{}) {
		t.Fatal("empty hash must not be the zero key")
	}
}

// TestMemoKeyStableAcrossWorkers checks the configuration hash is a function
// of the configuration alone: two independent searchers sharing one interner
// must compute identical keys for identical prefixes, regardless of the
// order in which each interned other states first.
func TestMemoKeyStableAcrossWorkers(t *testing.T) {
	h := concurrentIncsHistory(4, 4)
	pre := &prepared{}
	if err := pre.build(h, false); err != nil {
		t.Fatal(err)
	}
	sh := newShared(0)
	intern := newInterner()
	memo := newMemoTable()
	a := newSearcher(nil, pre, spec.Counter{}, false, intern, memo, sh, nil, 0)
	b := newSearcher(nil, pre, spec.Counter{}, false, intern, memo, sh, nil, 1)
	// Warm b's view of the interner in a different order: place 1 then 0.
	if !b.enter(1) || !b.enter(0) {
		t.Fatal("prefix [1 0] must be admissible")
	}
	b.reset()
	for _, s := range []*searcher{a, b} {
		if !s.enter(0) || !s.enter(1) {
			t.Fatal("prefix [0 1] must be admissible")
		}
	}
	ka, oka := a.memoKey()
	kb, okb := b.memoKey()
	if !oka || !okb {
		t.Fatalf("counter states are keyable: oka=%v okb=%v", oka, okb)
	}
	if ka != kb {
		t.Fatalf("same configuration hashed differently: %v vs %v", ka, kb)
	}
	// And a genuinely different configuration must (overwhelmingly) differ.
	b.reset()
	if !b.enter(0) || !b.enter(2) {
		t.Fatal("prefix [0 2] must be admissible")
	}
	if kc, _ := b.memoKey(); kc == ka {
		t.Fatalf("distinct placed sets hashed equal: %v", kc)
	}
}

// TestUnkeyableStateDisablesMemo checks the shared keyability flag: a spec
// whose states expose no canonical key must flip memoization off globally and
// still refute correctly via the EqualAbs dedup fallback.
func TestUnkeyableStateDisablesMemo(t *testing.T) {
	h := concurrentIncsHistory(4, 99)
	out := Run(h, unkeyedCounter{}, false, core.CheckOptions{Parallelism: 1})
	if out.OK || !out.Complete {
		t.Fatalf("history must be refuted: %+v", out)
	}
	if out.MemoHits != 0 {
		t.Fatalf("unkeyable states must disable memoization, got %d hits", out.MemoHits)
	}
}

// unkeyedCounter wraps spec.Counter in states that hide StateKey.
type unkeyedCounter struct{ spec.Counter }

type unkeyedState struct{ v spec.CounterState }

func (s unkeyedState) CloneAbs() core.AbsState { return s }
func (s unkeyedState) EqualAbs(o core.AbsState) bool {
	t, ok := o.(unkeyedState)
	return ok && t.v == s.v
}
func (s unkeyedState) String() string { return s.v.String() }

func (unkeyedCounter) Init() core.AbsState { return unkeyedState{v: 0} }

func (c unkeyedCounter) Step(phi core.AbsState, l *core.Label) []core.AbsState {
	s, ok := phi.(unkeyedState)
	if !ok {
		return nil
	}
	var out []core.AbsState
	for _, nxt := range (spec.Counter{}).Step(s.v, l) {
		out = append(out, unkeyedState{v: nxt.(spec.CounterState)})
	}
	return out
}
