package search

import (
	"testing"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// guidedOpts builds deterministic (sequential) guided check options carrying
// the session.
func guidedOpts(sess *Session) core.CheckOptions {
	o := sessOpts(sess)
	o.Guidance = core.GuidanceGuided
	return o
}

// witnessIDs renders an engine outcome's witness as a label-ID sequence (nil
// for refutations); identical sequences mean identical branch orders reached
// the witness.
func witnessIDs(out core.EngineOutcome) []uint64 {
	if out.Witness == nil {
		return nil
	}
	ids := make([]uint64, len(out.Witness))
	for i, l := range out.Witness {
		ids[i] = l.ID
	}
	return ids
}

// TestGuidedDeterminism pins the guided-mode determinism contract: the same
// history batch through two identically fresh sessions (sequential searches)
// must produce identical branch orders — observed as identical witness
// sequences — and identical node counts, check for check.
func TestGuidedDeterminism(t *testing.T) {
	batch := []int64{6, 99, 6, 5, 99} // positives, refutations, and a re-check
	run := func() ([]int, [][]uint64) {
		sess := NewSession()
		var nodes []int
		var wits [][]uint64
		for _, ret := range batch {
			out := Run(concurrentIncsHistory(6, ret), spec.Counter{}, false, guidedOpts(sess))
			if !out.Complete {
				t.Fatalf("ret=%d: guided check truncated: %+v", ret, out)
			}
			nodes = append(nodes, out.Nodes)
			wits = append(wits, witnessIDs(out))
		}
		return nodes, wits
	}
	nodes1, wits1 := run()
	nodes2, wits2 := run()
	for k := range batch {
		if nodes1[k] != nodes2[k] {
			t.Errorf("check %d: node counts diverged across identical sessions: %d vs %d", k, nodes1[k], nodes2[k])
		}
		if len(wits1[k]) != len(wits2[k]) {
			t.Fatalf("check %d: witness lengths diverged: %v vs %v", k, wits1[k], wits2[k])
		}
		for i := range wits1[k] {
			if wits1[k][i] != wits2[k][i] {
				t.Errorf("check %d: branch order diverged at witness position %d: %v vs %v", k, i, wits1[k], wits2[k])
				break
			}
		}
	}
}

// TestGuidedMatchesRankOrderVerdicts is the in-package differential gate:
// guided and rank-order searches of the same histories must reach identical
// verdicts and completeness; only node counts may differ. On refutations the
// query-commit reduction must never explore more nodes than rank order (the
// rank-order refutation DAG is a superset of the committed one).
func TestGuidedMatchesRankOrderVerdicts(t *testing.T) {
	for _, ret := range []int64{4, 5, 99} {
		h := concurrentIncsHistory(5, ret)
		rank := Run(h, spec.Counter{}, false, sessOpts(nil))
		guided := Run(h, spec.Counter{}, false, guidedOpts(nil))
		if rank.OK != guided.OK || rank.Complete != guided.Complete {
			t.Errorf("ret=%d: guided verdict diverged: rank %+v vs guided %+v", ret, rank, guided)
		}
		if !rank.OK && guided.Nodes > rank.Nodes {
			t.Errorf("ret=%d: guided refutation explored more nodes than rank order: %d > %d",
				ret, guided.Nodes, rank.Nodes)
		}
	}
}

// TestGuidedStrongMode checks that guided ordering is sound in strong mode,
// where the query-commit reduction must stay off (a strong-mode query is
// judged against the full preceding prefix, so committing to it at enablement
// would be unsound): verdicts match rank order on both polarities.
func TestGuidedStrongMode(t *testing.T) {
	for _, ret := range []int64{4, 99} {
		h := concurrentIncsHistory(4, ret)
		rank := Run(h, spec.Counter{}, true, sessOpts(nil))
		guided := Run(h, spec.Counter{}, true, guidedOpts(nil))
		if rank.OK != guided.OK || rank.Complete != guided.Complete {
			t.Errorf("strong ret=%d: guided verdict diverged: rank %+v vs guided %+v", ret, rank, guided)
		}
	}
}

// TestGuidedParallelAgrees runs the guided search with the work-stealing
// scheduler: parallel guided verdicts must match the sequential ones (node
// counts are scheduling-dependent and exempt).
func TestGuidedParallelAgrees(t *testing.T) {
	for _, ret := range []int64{7, 99} {
		h := concurrentIncsHistory(7, ret)
		seq := Run(h, spec.Counter{}, false, guidedOpts(nil))
		par := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: 4, Guidance: core.GuidanceGuided})
		if seq.OK != par.OK || seq.Complete != par.Complete {
			t.Errorf("ret=%d: parallel guided diverged: seq %+v vs par %+v", ret, seq, par)
		}
	}
}

// TestScoreTable pins the success-memory semantics: witnesses credit their
// label classes once each, every recorded outcome decays existing counters,
// refutations (nil witness) decay without crediting, and counters below
// epsilon are dropped so the table stays bounded.
func TestScoreTable(t *testing.T) {
	tab := newScoreTable()
	inc := &core.Label{Method: "inc", Kind: core.KindUpdate}
	read := &core.Label{Method: "read", Kind: core.KindQuery}
	if got := tab.score(guideClass(inc)); got != 0 {
		t.Fatalf("empty table must score 0, got %d", got)
	}
	tab.record([]*core.Label{inc, inc, read}) // inc credited once despite appearing twice
	incScore := tab.score(guideClass(inc))
	if incScore == 0 || incScore != tab.score(guideClass(read)) {
		t.Fatalf("one credit each: inc=%d read=%d", incScore, tab.score(guideClass(read)))
	}
	tab.record(nil) // refutation: decay only
	if got := tab.score(guideClass(inc)); got >= incScore || got == 0 {
		t.Fatalf("decay must shrink without zeroing: %d (was %d)", got, incScore)
	}
	for i := 0; i < 20; i++ {
		tab.record(nil)
	}
	tab.mu.RLock()
	n := len(tab.scores)
	tab.mu.RUnlock()
	if n != 0 {
		t.Fatalf("sub-epsilon counters must be dropped, %d remain", n)
	}
	var nilTab *scoreTable
	nilTab.record([]*core.Label{inc}) // nil-safety
	if got := nilTab.score("inc"); got != 0 {
		t.Fatalf("nil table must score 0, got %d", got)
	}
}

// TestGuidedScoresLearnedAcrossBatch checks the learning loop end to end:
// guided checks through a session populate the success table from their
// witnesses, and a budget eviction drops it with the other caches.
func TestGuidedScoresLearnedAcrossBatch(t *testing.T) {
	sess := NewSession()
	out := Run(concurrentIncsHistory(5, 5), spec.Counter{}, false, guidedOpts(sess))
	if !out.OK {
		t.Fatalf("read⇒5 after 5 incs must linearize: %+v", out)
	}
	if got := sess.guideScores().score("inc"); got == 0 {
		t.Fatal("witness completion must credit the inc class")
	}
	// Rank-order checks must not touch the table.
	before := sess.guideScores().score("inc")
	Run(concurrentIncsHistory(5, 5), spec.Counter{}, false, sessOpts(sess))
	if got := sess.guideScores().score("inc"); got != before {
		t.Fatalf("rank-order check changed the score table: %d -> %d", before, got)
	}
	// Eviction starts a fresh generation: scores gone with the other caches.
	sess.noteTrip()
	sess.beginCheck()
	sess.endCheck()
	if got := sess.guideScores().score("inc"); got != 0 {
		t.Fatalf("eviction must drop guidance scores, still %d", got)
	}
}
