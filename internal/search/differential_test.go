// Package search_test hosts the differential property test in an external
// test package: it drives random workloads through internal/harness, which
// itself imports internal/search, so an in-package test would be a cycle.
package search_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ralin/internal/core"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
)

// TestDifferentialAgainstLegacy is the differential property test of the
// pruned engine: on randomized small histories of every registered CRDT, the
// pruned engine and the legacy generate-then-test enumerator must return
// identical verdicts, and every witness the pruned engine produces must be an
// RA-linearization under the legacy validator. Histories are checked both
// as generated (usually RA-linearizable) and with a corrupted query return
// value (usually not), so both verdict polarities are exercised.
func TestDifferentialAgainstLegacy(t *testing.T) {
	const trials = 6
	for _, d := range registry.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				cfg := harness.WorkloadConfig{
					Seed:         int64(1000*trial + 17),
					Ops:          6,
					Replicas:     3,
					Elems:        []string{"a", "b"},
					DeliveryProb: 40,
				}
				h, err := harness.RunRandom(d, cfg)
				if err != nil {
					t.Fatalf("workload: %v", err)
				}
				compareEngines(t, fmt.Sprintf("trial %d", trial), h, d.Spec, d.Rewriting)
				if bad := corruptQuery(h, int64(trial)); bad != nil {
					compareEngines(t, fmt.Sprintf("trial %d (corrupted)", trial), bad, d.Spec, d.Rewriting)
				}
			}
		})
	}
}

// compareEngines checks one history with both engines, constructive
// strategies disabled so the exhaustive phase always runs.
func compareEngines(t *testing.T, ctx string, h *core.History, spec core.Spec, rw core.Rewriting) {
	t.Helper()
	base := core.CheckOptions{Rewriting: rw, Exhaustive: true, MaxExtensions: 2_000_000}
	legacyOpts := base
	legacyOpts.Engine = core.EngineLegacy
	prunedOpts := base
	prunedOpts.Engine = core.EnginePruned
	// Differential runs are exactly where a silent memo hash collision would
	// masquerade as an engine bug; make it a loud invariant instead.
	prunedOpts.DebugMemo = true
	legacy := core.CheckRA(h, spec, legacyOpts)
	pruned := core.CheckRA(h, spec, prunedOpts)
	if !legacy.Complete || !pruned.Complete {
		t.Fatalf("%s: truncated search (legacy complete=%v, pruned complete=%v)", ctx, legacy.Complete, pruned.Complete)
	}
	if legacy.OK != pruned.OK {
		t.Fatalf("%s: verdicts differ: legacy=%v pruned=%v\nhistory:\n%slegacy err: %v\npruned err: %v",
			ctx, legacy.OK, pruned.OK, h, legacy.LastErr, pruned.LastErr)
	}
	if pruned.OK {
		if err := core.IsRALinearization(pruned.Rewritten, pruned.Linearization, spec); err != nil {
			t.Fatalf("%s: pruned witness rejected by the legacy validator: %v", ctx, err)
		}
	}
}

// corruptQuery clones the history and breaks the return value of one query so
// that the history is (very likely) no longer RA-linearizable. Returns nil
// when the history has no corruptible query.
func corruptQuery(h *core.History, seed int64) *core.History {
	rng := rand.New(rand.NewSource(seed))
	c := h.Clone()
	var queries []*core.Label
	for _, l := range c.Labels() {
		if l.IsQuery() && l.Ret != nil {
			queries = append(queries, l)
		}
	}
	if len(queries) == 0 {
		return nil
	}
	q := queries[rng.Intn(len(queries))]
	switch ret := q.Ret.(type) {
	case int64:
		q.Ret = ret + 1000
	case string:
		q.Ret = ret + "⊥corrupt"
	case []string:
		q.Ret = append(append([]string(nil), ret...), "⊥corrupt")
	default:
		return nil
	}
	return c
}
