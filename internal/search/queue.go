package search

import (
	"sync"
	"sync/atomic"
)

// workItem is one unit of stealable work: an admissible prefix of label
// indices whose subtree has not been explored. The donor recorded it instead
// of descending into it; whichever worker pops it replays the prefix and runs
// the DFS from there.
type workItem struct {
	prefix []int
	// donor is the worker that published the item, or -1 for the seed item
	// (the empty prefix).
	donor int
}

// workQueue is the shared pool of donated search prefixes behind the
// work-stealing scheduler. Workers pop items to explore; a worker whose DFS
// is at a shallow node donates unexplored sibling branches whenever some
// other worker is starving (hungry() is a lock-free read on the hot path).
// The queue detects global termination: when every worker is waiting and no
// items remain, no one can produce more work, so pop returns false
// everywhere.
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []workItem
	waiting int
	workers int
	done    bool
	// starving mirrors waiting for lock-free reads by busy workers deciding
	// whether to donate.
	starving atomic.Int32
}

func newWorkQueue(workers int) *workQueue {
	q := &workQueue{workers: workers}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// hungry reports, without locking, whether some worker is currently waiting
// for work. Donation is pointless (and costs a prefix copy plus a lock) when
// everyone is busy, so the DFS consults this before donating.
func (q *workQueue) hungry() bool { return q.starving.Load() > 0 }

// retire removes one worker from the termination accounting. A worker that
// dies on a recovered panic never re-enters pop, so without this the
// surviving workers would wait for it forever (pop's termination condition
// is "every worker is waiting"). Retiring re-evaluates that condition and
// broadcasts when the dead worker was the last piece holding it open.
func (q *workQueue) retire() {
	q.mu.Lock()
	q.workers--
	if !q.done && len(q.items) == 0 && q.waiting >= q.workers {
		q.done = true
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// push publishes one item and wakes a waiting worker.
func (q *workQueue) push(it workItem) {
	q.mu.Lock()
	q.items = append(q.items, it)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop returns the next item to explore, blocking while the queue is empty but
// some worker is still busy (and may yet donate). It returns ok=false once
// the search is globally done: no items remain and every worker is waiting.
func (q *workQueue) pop() (workItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if n := len(q.items); n > 0 {
			it := q.items[n-1]
			q.items[n-1] = workItem{}
			q.items = q.items[:n-1]
			return it, true
		}
		if q.done {
			return workItem{}, false
		}
		q.waiting++
		q.starving.Store(int32(q.waiting))
		if q.waiting == q.workers {
			// Every worker is here and the queue is empty: nothing can
			// produce more work.
			q.done = true
			q.cond.Broadcast()
			return workItem{}, false
		}
		q.cond.Wait()
		q.waiting--
		q.starving.Store(int32(q.waiting))
	}
}
