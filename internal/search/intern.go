package search

import "sync"

// interner maps canonical state keys (core.StateKeyer.StateKey strings) to
// dense uint32 IDs, shared by every worker of one search. Interning a state
// key once per distinct abstract state replaces all downstream string work:
// state sets become sorted ID slices, set equality becomes ID equality, and
// memo keys become fixed-size hashes over integers instead of quoted,
// re-sorted string renderings. IDs are dense (0..n-1 in first-seen order),
// stable for the lifetime of the search, and equal exactly when the keys are
// equal, so ID-based deduplication is collision-free.
//
// The table is read-mostly after warm-up (a search touches a bounded set of
// abstract states), so lookups take the read lock and only a genuinely new
// key upgrades to the write lock.
type interner struct {
	mu  sync.RWMutex
	ids map[string]uint32
	// limit caps the number of distinct keys (Budget.MaxInternedStates);
	// 0 means unlimited. At the cap, id rejects new keys instead of growing,
	// and the search degrades to unkeyed (memo-less) mode.
	limit int
	// seq marks a check-local interner used by a single-worker search:
	// exactly one goroutine touches the table, so every method skips the
	// lock. Never set on a session's shared interner — sessions admit
	// concurrent checks.
	seq bool
}

func newInterner() *interner { return newInternerLimited(0) }

func newInternerLimited(limit int) *interner {
	return &interner{ids: make(map[string]uint32, 64), limit: limit}
}

// id returns the dense ID of key, assigning the next free ID on first sight.
// The second result is false when the key is new but the interner is at its
// memory budget; known keys always resolve. The budget check lives on the
// write path only — the read-lock fast path taken for every recurring state
// is unchanged.
func (in *interner) id(key string) (uint32, bool) {
	if in.seq {
		if id, ok := in.ids[key]; ok {
			return id, true
		}
		return in.assign(key)
	}
	in.mu.RLock()
	id, ok := in.ids[key]
	in.mu.RUnlock()
	if ok {
		return id, true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[key]; ok {
		return id, true
	}
	return in.assign(key)
}

// assign inserts a new key under the budget check. The caller must hold the
// write lock (or own the table exclusively, seq mode).
func (in *interner) assign(key string) (uint32, bool) {
	if in.limit > 0 && len(in.ids) >= in.limit {
		return 0, false
	}
	id := uint32(len(in.ids))
	in.ids[key] = id
	return id, true
}

// has reports whether key is already interned, without inserting it. The
// guided searcher uses it as its novelty probe, so branch ordering never
// grows the interner and never consumes its memory budget.
func (in *interner) has(key string) bool {
	if in.seq {
		_, ok := in.ids[key]
		return ok
	}
	in.mu.RLock()
	_, ok := in.ids[key]
	in.mu.RUnlock()
	return ok
}

// size returns the number of distinct keys interned so far.
func (in *interner) size() int {
	if in.seq {
		return len(in.ids)
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}

// key128 is a 128-bit memo key: the hash of a search configuration. Two
// distinct configurations colliding requires ~2^64 distinct keys by the
// birthday bound; searches explore at most millions, so a collision —
// which would wrongly prune one subtree — is vanishingly unlikely. This is
// the standard hash-compaction trade of explicit-state model checkers.
type key128 struct{ hi, lo uint64 }

// hash128 accumulates a key128 from a sequence of uint64 words. Both lanes
// run the splitmix64 finalizer over differently-seeded streams, so every
// input bit diffuses into all 128 output bits at each step and sequences
// differing in any word (or word order, or length) hash apart.
type hash128 struct{ a, b uint64 }

func newHash128() hash128 {
	return hash128{a: 0x9e3779b97f4a7c15, b: 0xd1b54a32d192ed03}
}

// splitmix64 is the finalizer of the splitmix64 generator: a bijective
// mixing of all 64 bits.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mix folds one word into the accumulator.
func (h *hash128) mix(x uint64) {
	h.a = splitmix64(h.a ^ x)
	h.b = splitmix64(h.b + x + 0x9e3779b97f4a7c15)
}

// mixID folds one interned state ID into the accumulator.
func (h *hash128) mixID(id uint32) { h.mix(uint64(id)) }

// sum finalizes the accumulated key. Cross-mixing the lanes makes the two
// halves independent functions of the whole input.
func (h hash128) sum() key128 {
	return key128{hi: splitmix64(h.a ^ (h.b << 1)), lo: splitmix64(h.b ^ (h.a >> 1))}
}
