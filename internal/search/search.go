// Package search implements the pruned search engine behind the
// RA-linearizability checker: an incremental backtracking DFS over the linear
// extensions of a history's visibility relation.
//
// The legacy enumerator in internal/core generates every complete linear
// extension and re-validates each candidate from scratch, so a rejected
// prefix is rediscovered in every one of its (factorially many) extensions.
// This engine instead maintains a frontier of vis-minimal labels and extends
// the candidate one label at a time, checking the conditions of
// Definition 3.5 per prefix:
//
//   - condition (i) — consistency with visibility — holds by construction,
//     because only frontier labels (all visibility predecessors placed) are
//     ever appended;
//   - condition (ii) — the update projection is admitted by the
//     specification — is maintained incrementally as the set of abstract
//     states reachable after the placed updates; an empty set prunes the
//     whole subtree;
//   - condition (iii) — every query is justified by its visible updates in
//     sequence order — is tracked per query: each pending query carries the
//     state set of its justification so far, advanced whenever one of its
//     visible updates is placed. A query whose justification dies prunes the
//     subtree as soon as the dooming update is placed, before the query
//     itself is even reachable.
//
// Because all three conditions are enforced on every prefix, every leaf of
// the search tree is a witness RA-linearization, and the first leaf ends the
// search. On top of the pruning the engine shares one memoization layer
// across all workers: canonical state keys (core.StateKeyer) are interned to
// dense IDs, each visited (placed-set, spec-state) configuration is hashed to
// a 128-bit key over those IDs, and the key is claimed in a lock-striped
// table on node entry — a configuration claimed by any worker prunes every
// other worker. Scheduling is work-stealing: the search starts from a single
// seed prefix, and a worker at a shallow node donates unexplored sibling
// branches to a shared queue whenever another worker is starving, so
// utilization does not depend on the top-level branching factor. Early
// cancellation stops everyone once any worker finds a witness.
//
// The engine registers itself with internal/core at init time (core cannot
// import this package without a cycle), so importing internal/search — even
// blank — makes core.CheckRA and core.CheckStrongLinearizable use it for
// CheckOptions with Engine auto or pruned.
package search

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"ralin/internal/core"
)

func init() {
	core.RegisterPrunedEngine(Run)
}

// Run searches for a linearization of h admitted by spec. In RA mode (strong
// false) h must be an already rewritten history — queries and updates only —
// and the conditions of Definition 3.5 apply; in strong mode every query must
// be justified by the full preceding update prefix, as in
// core.CheckStrongLinearizable. The visibility relation of h must be acyclic
// (core checks this before dispatching).
//
// When opts.Session carries a *Session (created by NewSession and threaded
// through core.CheckRAWith), the search draws its interner, memo table and
// searcher scratch from the session instead of allocating them: interned
// state IDs are shared across every check of the session, while the memo
// table and searchers are recycled through the session's pools — reset, not
// reallocated — when the search finishes.
func Run(h *core.History, spec core.Spec, strong bool, opts core.CheckOptions) core.EngineOutcome {
	sess, _ := opts.Session.(*Session)
	// Pin the session's cache generation for the whole check: budget eviction
	// only runs between checks, so interned IDs stay stable while any worker
	// references them.
	// Single assignment (no reassignment below): the parallel path's worker
	// closures capture intern and memo, and a reassigned capture is taken by
	// reference — which would heap-allocate both variables on every check,
	// sequential path included.
	intern := ensureInterner(sess.beginCheck())
	defer sess.endCheck()
	pre, planReused := sess.getPlan(h.Len())
	defer sess.putPlan(pre)
	if err := pre.build(h, strong); err != nil {
		return core.EngineOutcome{Complete: true, LastErr: err}
	}
	// Guided mode (core.GuidanceGuided): precompute the static branch scores
	// once per check; the searcher adds the dynamic novelty bit per node. The
	// score table is read through the pointer pinned for this check — eviction
	// only runs while the session is idle.
	guided := core.ResolveGuidance(opts.Guidance) == core.GuidanceGuided
	var guideTab *scoreTable
	if guided {
		guideTab = sess.guideScores()
		pre.buildGuide(guideTab, strong)
	}
	return runPrepared(sess, intern, pre, h, spec, strong, guided, guideTab, planReused, opts)
}

// runPrepared executes the search phase of Run over an already-built plan:
// shared-block arming, transition-cache gating, context watching, and the
// sequential or work-stealing worker pool. It is split from Run so the
// incremental extension path (Session.Extend) can run a search over a plan it
// grew in place — with witness-seeded guide scores — instead of rebuilding
// one; Run's own call passes the plan it just built. The caller owns pre's
// lifetime (Run pools it, Extend keeps it in the extension entry) and must
// hold the session's check pin (beginCheck) for the duration.
func runPrepared(sess *Session, intern *interner, pre *prepared, h *core.History, spec core.Spec, strong, guided bool, guideTab *scoreTable, planReused bool, opts core.CheckOptions) core.EngineOutcome {
	// The shared coordination block is pooled per session like the plans and
	// searchers — but only when no context watcher goroutine can outlive the
	// check and touch it after release (poolable below).
	sh := sess.getShared(nodeBudget(opts))
	sh.sess = sess
	// The transition cache only serves re-checks (its keys are label
	// pointers, so a first-contact history could only fill it with copies
	// nothing will ever hit); attach it only when the session has seen this
	// history before. One-shot histories then skip the cache's per-transition
	// lock probes entirely.
	if sess.recheck(h) {
		sh.steps = sess.stepCacheFor(spec)
	}
	poolable := opts.Context == nil || opts.Context.Done() == nil
	if sess != nil {
		if max := sess.budget.MaxMemoBytes; max > 0 {
			sh.memoCount = &sess.memoEntries
			sh.memoLimit = max / memoEntryBytes
			if sh.memoLimit < 1 {
				sh.memoLimit = 1
			}
		}
	}
	memo := sessionMemo(sess, opts)
	defer sess.putMemo(memo)
	if memo != nil {
		sh.shards = memoShardCount
	}

	// Watch the caller's context (when there is one): deadline expiry or
	// cancellation interrupts every worker through the shared stop flag each
	// of them already checks on node entry. A context that is already dead
	// skips the search entirely.
	if ctx := opts.Context; ctx != nil {
		if inc := core.ContextIncomplete(ctx); inc != nil {
			sh.interrupt(inc)
			out := sh.outcome(0)
			out.PlanReused = planReused
			// No watcher goroutine was started yet, so the block is safe to
			// pool regardless of the context's shape.
			sess.putShared(sh)
			return out
		}
		if done := ctx.Done(); done != nil {
			finished := make(chan struct{})
			defer close(finished)
			go func() {
				select {
				case <-done:
					sh.interrupt(core.ContextIncomplete(ctx))
				case <-finished:
				}
			}()
		}
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := len(pre.labels); workers > n {
		// More workers than labels can never all be busy (the deepest
		// donation still leaves at most n live branches of useful size).
		workers = n
	}
	if workers <= 1 {
		// Single worker: the compactor — and, sessionless, the check-local
		// interner — is touched by exactly one goroutine, so both run in
		// their lock-free sequential modes. A session's interner stays
		// locked: sessions admit concurrent checks. (compactor.reset clears
		// the flag when the block is pooled.)
		sh.compact.seq = true
		if sess == nil {
			intern.seq = true
		}
		if memo != nil {
			memo.seq = true
		}
		s := newSearcher(sess.getSearcher(len(pre.labels)), pre, spec, strong, intern, memo, sh, nil, 0)
		s.guided = guided
		if runGuarded(sh, func() { s.dfs() }) {
			s.flush()
			sess.putSearcher(s)
		}
		out := sh.outcome(1)
		out.PlanReused = planReused
		if guided && out.Complete {
			guideTab.record(out.Witness)
		}
		if poolable {
			sess.putShared(sh)
		}
		return out
	}

	// Work-stealing: the queue is seeded with the single empty prefix; the
	// worker that pops it donates shallow sibling branches whenever another
	// worker is starving, so all workers become busy within a few donations
	// regardless of the top-level branching factor, and imbalanced subtrees
	// re-balance the same way for the rest of the search.
	queue := newWorkQueue(workers)
	queue.push(workItem{donor: -1})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := newSearcher(sess.getSearcher(len(pre.labels)), pre, spec, strong, intern, memo, sh, queue, id)
			s.guided = guided
			ok := runGuarded(sh, func() {
				for {
					item, ok := queue.pop()
					if !ok {
						return
					}
					if item.donor >= 0 && item.donor != id {
						s.steals++
					}
					if sh.stop.Load() {
						continue
					}
					s.reset()
					if s.replay(item.prefix) {
						s.dfs()
					}
				}
			})
			if !ok {
				// The worker died mid-DFS: take it out of the queue's
				// termination accounting so the survivors don't wait for it
				// forever. Its counters and scratch are abandoned (a panicking
				// searcher's frames are not trustworthy enough to flush or
				// pool).
				queue.retire()
				return
			}
			s.flush()
			sess.putSearcher(s)
		}(w)
	}
	wg.Wait()
	out := sh.outcome(workers)
	out.PlanReused = planReused
	if guided && out.Complete {
		guideTab.record(out.Witness)
	}
	if poolable {
		sess.putShared(sh)
	}
	return out
}

// ensureInterner returns in, or a fresh private interner when the check runs
// sessionless (in nil).
func ensureInterner(in *interner) *interner {
	if in != nil {
		return in
	}
	return newInterner()
}

// sessionMemo draws a cleared memo table from the session arena with the
// check's debug flag applied, or nil when memoization is disabled.
func sessionMemo(sess *Session, opts core.CheckOptions) *memoTable {
	if opts.DisableMemo {
		return nil
	}
	m := sess.getMemo()
	m.debug = opts.DebugMemo
	return m
}

// runGuarded runs f, converting a panic into a search interruption (reason
// panic, stack captured) instead of crashing the process: the batch the check
// belongs to keeps running and this check reports VerdictUnknown. It returns
// false when f panicked — the caller must treat the searcher's state as
// poisoned.
func runGuarded(sh *shared, f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicked(r, debug.Stack())
			ok = false
		}
	}()
	f()
	return true
}

// nodeBudget derives the prefix-node budget from the options: MaxNodes wins;
// zero falls back to 3×MaxExtensions (an unpruned prefix tree has at most
// e·n! internal nodes against the n! complete extensions the legacy cap
// bounds); negative means unlimited.
func nodeBudget(opts core.CheckOptions) int64 {
	if opts.MaxNodes > 0 {
		return int64(opts.MaxNodes)
	}
	if opts.MaxNodes < 0 || opts.MaxExtensions <= 0 {
		return 0
	}
	return 3 * int64(opts.MaxExtensions)
}

// prepared is the immutable, index-based view of the history shared by all
// workers of one check: the history's "plan". Plans are pooled per session in
// size classes (Session.getPlan/putPlan): build clears-not-reallocates every
// index slice, so after the first few checks of a batch a plan rebuild
// allocates nothing at all — the same arena discipline the session's memo
// tables use.
type prepared struct {
	labels []*core.Label
	// preds[i] / succs[i] are the (transitive) visibility predecessors and
	// successors of labels[i], as indices. Label index equals history rank
	// (AppendLabels yields insertion order), so both lists are filled by one
	// History.PredRow/SuccRow bitset sweep per label, entries in ascending
	// rank order; the search only ever counts and iterates them.
	preds [][]int
	succs [][]int
	// affected[i] lists, for an update labels[i], the indices of the queries
	// it is visible to, in ascending query order (RA mode only).
	affected [][]int
	// queries lists the query indices in ascending order (RA mode only).
	queries []int
	// order lists all label indices sorted by generator sequence; candidates
	// are tried in this order so the search reaches execution-order-like
	// witnesses first (and it is the deterministic tie-break of guided mode).
	order []int
	// pos is order's inverse permutation: pos[i] is label i's position in
	// order, and therefore its bit in the searcher's frontier bitset.
	pos []int
	// guide[i] is the static component of label i's guided branch score
	// (pending-query justification count and session success score), filled by
	// buildGuide only for guided checks; the searcher ORs in the per-node
	// novelty bit. Pooled like every other slice here.
	guide []int64
	// sorter is the reusable sort.Interface state of build's order sort; a
	// struct field (rather than a slices.SortFunc closure) so a pooled plan's
	// rebuild does not allocate the comparator.
	sorter orderSorter
}

// orderSorter sorts a label-index permutation by generator sequence, then
// label ID. Both tie-breaks are total (IDs are unique within a history), so
// the result is a unique permutation even under an unstable sort.
type orderSorter struct {
	order  []int
	labels []*core.Label
}

func (o *orderSorter) Len() int      { return len(o.order) }
func (o *orderSorter) Swap(i, j int) { o.order[i], o.order[j] = o.order[j], o.order[i] }
func (o *orderSorter) Less(i, j int) bool {
	la, lb := o.labels[o.order[i]], o.labels[o.order[j]]
	if la.GenSeq != lb.GenSeq {
		return la.GenSeq < lb.GenSeq
	}
	return la.ID < lb.ID
}

// build populates the plan for h, reusing the backing arrays of whatever
// check used this plan before. The visibility indexes are filled by one
// predecessor-row and one successor-row bitset sweep per label
// (core.History.PredRow/SuccRow) — label index equals rank, so no
// ID-to-index map is needed at all, where the previous closure-edge pass
// keyed every edge endpoint through one.
func (p *prepared) build(h *core.History, strong bool) error {
	p.labels = h.AppendLabels(p.labels[:0])
	labels := p.labels
	n := len(labels)
	for _, l := range labels {
		if !strong && l.IsQueryUpdate() {
			return fmt.Errorf("label %v is a query-update; apply a rewriting first", l)
		}
	}
	p.preds = resizeIndexSets(p.preds, n)
	p.succs = resizeIndexSets(p.succs, n)
	p.affected = resizeIndexSets(p.affected, n)
	p.queries = p.queries[:0]
	for i := 0; i < n; i++ {
		h.PredRow(i, func(f int) {
			p.preds[i] = append(p.preds[i], f)
		})
		h.SuccRow(i, func(t int) {
			p.succs[i] = append(p.succs[i], t)
		})
	}
	if !strong {
		for i, l := range labels {
			if l.IsQuery() {
				p.queries = append(p.queries, i)
				for _, u := range p.preds[i] {
					if labels[u].IsUpdate() {
						p.affected[u] = append(p.affected[u], i)
					}
				}
			}
		}
	}
	p.order = resizeInts(p.order, n)
	for i := range p.order {
		p.order[i] = i
	}
	p.sorter.order, p.sorter.labels = p.order, labels
	sort.Sort(&p.sorter)
	p.sorter.order, p.sorter.labels = nil, nil
	p.pos = resizeInts(p.pos, n)
	for pi, i := range p.order {
		p.pos[i] = pi
	}
	return nil
}

// extend grows an already-built plan in place after h gained labels at the
// end: only the new ranks' index rows are derived, and every existing row is
// kept rather than cleared and refilled the way build would. The caller (the
// incremental extension path) guarantees the edge discipline — every direct
// visibility edge recorded since the plan was built targets a new rank — so
// the old rows are still exact: an old label can gain new successors (new
// queries seeing it, appended here) but never new predecessors. oldN is the
// label count the plan was built for.
func (p *prepared) extend(h *core.History, oldN int, strong bool) error {
	p.labels = h.AppendLabels(p.labels[:0])
	labels := p.labels
	n := len(labels)
	for _, l := range labels[oldN:] {
		if !strong && l.IsQueryUpdate() {
			return fmt.Errorf("label %v is a query-update; apply a rewriting first", l)
		}
	}
	p.preds = growIndexSets(p.preds, n)
	p.succs = growIndexSets(p.succs, n)
	p.affected = growIndexSets(p.affected, n)
	// One predecessor-row sweep per new label fills its preds row and extends
	// the successor rows of everything that reaches it; processing new ranks in
	// ascending order keeps every succs row ascending, matching build's SuccRow
	// fill order.
	for t := oldN; t < n; t++ {
		h.PredRow(t, func(f int) {
			p.preds[t] = append(p.preds[t], f)
			p.succs[f] = append(p.succs[f], t)
		})
	}
	if !strong {
		for t := oldN; t < n; t++ {
			if labels[t].IsQuery() {
				p.queries = append(p.queries, t)
				for _, u := range p.preds[t] {
					if labels[u].IsUpdate() {
						p.affected[u] = append(p.affected[u], t)
					}
				}
			}
		}
	}
	// Candidate order: sort the new indices among themselves, then either
	// append (the common case — a live stream's new GenSeqs follow the old
	// maximum) or fall back to a full re-sort when a new label sorts before the
	// old tail. Frontier bit positions (pos) move only in the re-sort case.
	for i := oldN; i < n; i++ {
		p.order = append(p.order, i)
	}
	p.sorter.order, p.sorter.labels = p.order[oldN:], labels
	sort.Sort(&p.sorter)
	p.sorter.order, p.sorter.labels = nil, nil
	if oldN > 0 && n > oldN && orderLess(labels, p.order[oldN], labels, p.order[oldN-1]) {
		p.sorter.order, p.sorter.labels = p.order, labels
		sort.Sort(&p.sorter)
		p.sorter.order, p.sorter.labels = nil, nil
		p.pos = growInts(p.pos, n)
		for pi, i := range p.order {
			p.pos[i] = pi
		}
		return nil
	}
	p.pos = growInts(p.pos, n)
	for pi := oldN; pi < n; pi++ {
		p.pos[p.order[pi]] = pi
	}
	return nil
}

// orderLess is orderSorter's comparison over explicit label slices, shared
// with extend's append-or-resort decision.
func orderLess(las []*core.Label, a int, lbs []*core.Label, b int) bool {
	la, lb := las[a], lbs[b]
	if la.GenSeq != lb.GenSeq {
		return la.GenSeq < lb.GenSeq
	}
	return la.ID < lb.ID
}

// release drops the plan's references into the finished check's history so a
// pooled plan pins no labels; the index arrays (ints only) stay for the next
// build.
func (p *prepared) release() {
	clear(p.labels)
	p.labels = p.labels[:0]
}

// resizeIndexSets returns a length-n slice of empty index lists, carrying
// over the backing array and every already-allocated inner list (truncated,
// capacity kept) from earlier checks.
func resizeIndexSets(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// growIndexSets extends s to length n keeping every existing row intact —
// the incremental counterpart of resizeIndexSets, which clears all rows —
// and truncates only the newly exposed tail rows.
func growIndexSets(s [][]int, n int) [][]int {
	old := len(s)
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s)
		s = grown
	} else {
		s = s[:n]
	}
	for i := old; i < n; i++ {
		s[i] = s[i][:0]
	}
	return s
}

// growInts extends s to length n preserving its prefix (resizeInts zeroes on
// regrowth; extension needs the old values).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		grown := make([]int, n)
		copy(grown, s)
		return grown
	}
	return s[:n]
}
