// Package search implements the pruned search engine behind the
// RA-linearizability checker: an incremental backtracking DFS over the linear
// extensions of a history's visibility relation.
//
// The legacy enumerator in internal/core generates every complete linear
// extension and re-validates each candidate from scratch, so a rejected
// prefix is rediscovered in every one of its (factorially many) extensions.
// This engine instead maintains a frontier of vis-minimal labels and extends
// the candidate one label at a time, checking the conditions of
// Definition 3.5 per prefix:
//
//   - condition (i) — consistency with visibility — holds by construction,
//     because only frontier labels (all visibility predecessors placed) are
//     ever appended;
//   - condition (ii) — the update projection is admitted by the
//     specification — is maintained incrementally as the set of abstract
//     states reachable after the placed updates; an empty set prunes the
//     whole subtree;
//   - condition (iii) — every query is justified by its visible updates in
//     sequence order — is tracked per query: each pending query carries the
//     state set of its justification so far, advanced whenever one of its
//     visible updates is placed. A query whose justification dies prunes the
//     subtree as soon as the dooming update is placed, before the query
//     itself is even reachable.
//
// Because all three conditions are enforced on every prefix, every leaf of
// the search tree is a witness RA-linearization, and the first leaf ends the
// search. On top of the pruning the engine shares one memoization layer
// across all workers: canonical state keys (core.StateKeyer) are interned to
// dense IDs, each visited (placed-set, spec-state) configuration is hashed to
// a 128-bit key over those IDs, and the key is claimed in a lock-striped
// table on node entry — a configuration claimed by any worker prunes every
// other worker. Scheduling is work-stealing: the search starts from a single
// seed prefix, and a worker at a shallow node donates unexplored sibling
// branches to a shared queue whenever another worker is starving, so
// utilization does not depend on the top-level branching factor. Early
// cancellation stops everyone once any worker finds a witness.
//
// The engine registers itself with internal/core at init time (core cannot
// import this package without a cycle), so importing internal/search — even
// blank — makes core.CheckRA and core.CheckStrongLinearizable use it for
// CheckOptions with Engine auto or pruned.
package search

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"

	"ralin/internal/core"
)

func init() {
	core.RegisterPrunedEngine(Run)
}

// Run searches for a linearization of h admitted by spec. In RA mode (strong
// false) h must be an already rewritten history — queries and updates only —
// and the conditions of Definition 3.5 apply; in strong mode every query must
// be justified by the full preceding update prefix, as in
// core.CheckStrongLinearizable. The visibility relation of h must be acyclic
// (core checks this before dispatching).
//
// When opts.Session carries a *Session (created by NewSession and threaded
// through core.CheckRAWith), the search draws its interner, memo table and
// searcher scratch from the session instead of allocating them: interned
// state IDs are shared across every check of the session, while the memo
// table and searchers are recycled through the session's pools — reset, not
// reallocated — when the search finishes.
func Run(h *core.History, spec core.Spec, strong bool, opts core.CheckOptions) core.EngineOutcome {
	sess, _ := opts.Session.(*Session)
	// Pin the session's cache generation for the whole check: budget eviction
	// only runs between checks, so interned IDs stay stable while any worker
	// references them.
	intern := sess.beginCheck()
	defer sess.endCheck()
	if intern == nil {
		intern = newInterner()
	}
	pre, planReused := sess.getPlan()
	defer sess.putPlan(pre)
	if err := pre.build(h, strong); err != nil {
		return core.EngineOutcome{Complete: true, LastErr: err}
	}
	// Guided mode (core.GuidanceGuided): precompute the static branch scores
	// once per check; the searcher adds the dynamic novelty bit per node. The
	// score table is read through the pointer pinned for this check — eviction
	// only runs while the session is idle.
	guided := core.ResolveGuidance(opts.Guidance) == core.GuidanceGuided
	var guideTab *scoreTable
	if guided {
		guideTab = sess.guideScores()
		pre.buildGuide(guideTab, strong)
	}
	sh := newShared(nodeBudget(opts))
	sh.sess = sess
	if sess != nil {
		if max := sess.budget.MaxMemoBytes; max > 0 {
			sh.memoCount = &sess.memoEntries
			sh.memoLimit = max / memoEntryBytes
			if sh.memoLimit < 1 {
				sh.memoLimit = 1
			}
		}
	}
	var memo *memoTable
	if !opts.DisableMemo {
		memo = sess.getMemo()
		memo.debug = opts.DebugMemo
		defer sess.putMemo(memo)
		sh.shards = memoShardCount
	}

	// Watch the caller's context (when there is one): deadline expiry or
	// cancellation interrupts every worker through the shared stop flag each
	// of them already checks on node entry. A context that is already dead
	// skips the search entirely.
	if ctx := opts.Context; ctx != nil {
		if inc := core.ContextIncomplete(ctx); inc != nil {
			sh.interrupt(inc)
			out := sh.outcome(0)
			out.PlanReused = planReused
			return out
		}
		if done := ctx.Done(); done != nil {
			finished := make(chan struct{})
			defer close(finished)
			go func() {
				select {
				case <-done:
					sh.interrupt(core.ContextIncomplete(ctx))
				case <-finished:
				}
			}()
		}
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := len(pre.labels); workers > n {
		// More workers than labels can never all be busy (the deepest
		// donation still leaves at most n live branches of useful size).
		workers = n
	}
	if workers <= 1 {
		s := newSearcher(sess.getSearcher(), pre, spec, strong, intern, memo, sh, nil, 0)
		s.guided = guided
		if runGuarded(sh, func() { s.dfs() }) {
			s.flush()
			sess.putSearcher(s)
		}
		out := sh.outcome(1)
		out.PlanReused = planReused
		if guided && out.Complete {
			guideTab.record(out.Witness)
		}
		return out
	}

	// Work-stealing: the queue is seeded with the single empty prefix; the
	// worker that pops it donates shallow sibling branches whenever another
	// worker is starving, so all workers become busy within a few donations
	// regardless of the top-level branching factor, and imbalanced subtrees
	// re-balance the same way for the rest of the search.
	queue := newWorkQueue(workers)
	queue.push(workItem{donor: -1})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := newSearcher(sess.getSearcher(), pre, spec, strong, intern, memo, sh, queue, id)
			s.guided = guided
			ok := runGuarded(sh, func() {
				for {
					item, ok := queue.pop()
					if !ok {
						return
					}
					if item.donor >= 0 && item.donor != id {
						s.steals++
					}
					if sh.stop.Load() {
						continue
					}
					s.reset()
					if s.replay(item.prefix) {
						s.dfs()
					}
				}
			})
			if !ok {
				// The worker died mid-DFS: take it out of the queue's
				// termination accounting so the survivors don't wait for it
				// forever. Its counters and scratch are abandoned (a panicking
				// searcher's frames are not trustworthy enough to flush or
				// pool).
				queue.retire()
				return
			}
			s.flush()
			sess.putSearcher(s)
		}(w)
	}
	wg.Wait()
	out := sh.outcome(workers)
	out.PlanReused = planReused
	if guided && out.Complete {
		guideTab.record(out.Witness)
	}
	return out
}

// runGuarded runs f, converting a panic into a search interruption (reason
// panic, stack captured) instead of crashing the process: the batch the check
// belongs to keeps running and this check reports VerdictUnknown. It returns
// false when f panicked — the caller must treat the searcher's state as
// poisoned.
func runGuarded(sh *shared, f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicked(r, debug.Stack())
			ok = false
		}
	}()
	f()
	return true
}

// nodeBudget derives the prefix-node budget from the options: MaxNodes wins;
// zero falls back to 3×MaxExtensions (an unpruned prefix tree has at most
// e·n! internal nodes against the n! complete extensions the legacy cap
// bounds); negative means unlimited.
func nodeBudget(opts core.CheckOptions) int64 {
	if opts.MaxNodes > 0 {
		return int64(opts.MaxNodes)
	}
	if opts.MaxNodes < 0 || opts.MaxExtensions <= 0 {
		return 0
	}
	return 3 * int64(opts.MaxExtensions)
}

// prepared is the immutable, index-based view of the history shared by all
// workers of one check: the history's "plan". Plans are pooled per session
// (Session.getPlan/putPlan): build clears-not-reallocates every index slice,
// so after the first few checks of a batch a plan rebuild allocates nothing
// but the sort closure — the same arena discipline the session's memo tables
// use.
type prepared struct {
	labels []*core.Label
	// preds[i] / succs[i] are the (transitive) visibility predecessors and
	// successors of labels[i], as indices. Entries arrive in rank order
	// (History.VisEdges iterates the reachability bitsets deterministically);
	// the search only ever counts and iterates them.
	preds [][]int
	succs [][]int
	// affected[i] lists, for an update labels[i], the indices of the queries
	// it is visible to, in ascending query order (RA mode only).
	affected [][]int
	// queries lists the query indices in ascending order (RA mode only).
	queries []int
	// order lists all label indices sorted by generator sequence; candidates
	// are tried in this order so the search reaches execution-order-like
	// witnesses first (and it is the deterministic tie-break of guided mode).
	order []int
	// guide[i] is the static component of label i's guided branch score
	// (pending-query justification count and session success score), filled by
	// buildGuide only for guided checks; the searcher ORs in the per-node
	// novelty bit. Pooled like every other slice here.
	guide []int64
	// idx maps label identifiers to indices while building; reused across
	// checks like every other slice here.
	idx map[uint64]int
}

// build populates the plan for h, reusing the backing arrays of whatever
// check used this plan before. The visibility indexes are filled from the
// relation's closure edge set (core.History.VisEdges, one bitset sweep over
// the reachability index) instead of per-label VisibleTo/SeenBy scans, which
// allocate two fresh slices per label and probe all n² ordered pairs.
func (p *prepared) build(h *core.History, strong bool) error {
	p.labels = h.AppendLabels(p.labels[:0])
	labels := p.labels
	n := len(labels)
	if p.idx == nil {
		p.idx = make(map[uint64]int, n)
	} else {
		clear(p.idx)
	}
	for i, l := range labels {
		if !strong && l.IsQueryUpdate() {
			return fmt.Errorf("label %v is a query-update; apply a rewriting first", l)
		}
		p.idx[l.ID] = i
	}
	p.preds = resizeIndexSets(p.preds, n)
	p.succs = resizeIndexSets(p.succs, n)
	p.affected = resizeIndexSets(p.affected, n)
	p.queries = p.queries[:0]
	h.VisEdges(func(from, to uint64) {
		fi, ti := p.idx[from], p.idx[to]
		p.preds[ti] = append(p.preds[ti], fi)
		p.succs[fi] = append(p.succs[fi], ti)
	})
	if !strong {
		for i, l := range labels {
			if l.IsQuery() {
				p.queries = append(p.queries, i)
				for _, u := range p.preds[i] {
					if labels[u].IsUpdate() {
						p.affected[u] = append(p.affected[u], i)
					}
				}
			}
		}
	}
	p.order = resizeInts(p.order, n)
	for i := range p.order {
		p.order[i] = i
	}
	slices.SortFunc(p.order, func(x, y int) int {
		la, lb := labels[x], labels[y]
		if la.GenSeq != lb.GenSeq {
			if la.GenSeq < lb.GenSeq {
				return -1
			}
			return 1
		}
		if la.ID < lb.ID {
			return -1
		}
		if la.ID > lb.ID {
			return 1
		}
		return 0
	})
	return nil
}

// release drops the plan's references into the finished check's history so a
// pooled plan pins no labels; the index arrays (ints only) stay for the next
// build.
func (p *prepared) release() {
	clear(p.labels)
	p.labels = p.labels[:0]
}

// resizeIndexSets returns a length-n slice of empty index lists, carrying
// over the backing array and every already-allocated inner list (truncated,
// capacity kept) from earlier checks.
func resizeIndexSets(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
