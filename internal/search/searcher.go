package search

import (
	"fmt"

	"ralin/internal/core"
)

// status is the outcome of exploring one subtree.
type status int

const (
	// sExhausted: the subtree was fully explored (locally or, for donated
	// branches, by whichever worker pops them before the search can
	// terminate) and the local exploration found no witness.
	sExhausted status = iota
	// sFound: a witness was found (and recorded in the shared state).
	sFound
	// sStopped: the search was cancelled (witness found elsewhere) or the
	// node budget ran out; the subtree may contain unexplored nodes.
	sStopped
)

// maxDonateDepth bounds the prefix depth at which a worker donates sibling
// branches to the work queue. Shallow branches carry the largest subtrees
// (the best units of stealable work) and keep the replay cost of a stolen
// prefix trivial; deeper nodes use the scratch-free fast path.
const maxDonateDepth = 4

// pruneReason records why a prefix was rejected, kept cheap so the hot path
// does no formatting; searcher.flush renders the last one per worker.
type pruneReason struct {
	label *core.Label
	cond  string
	// query is the pending query whose justification died (condition iii
	// pruned at an update), nil otherwise.
	query *core.Label
}

func (r pruneReason) err() error {
	if r.label == nil {
		return nil
	}
	if r.query != nil {
		return fmt.Errorf("condition (%s): placing %v leaves query %v unjustifiable by its visible updates",
			r.cond, r.label, r.query)
	}
	return fmt.Errorf("condition (%s): prefix rejected at %v", r.cond, r.label)
}

// setBuf is one reusable state-set buffer: the abstract states and, while the
// specification is keyable, the parallel slice of their interned IDs kept
// sorted ascending. The sorted ID order is the set's canonical form — memo
// hashing walks it without re-sorting — and makes ID-based deduplication a
// short ordered-insert scan.
type setBuf struct {
	states []core.AbsState
	ids    []uint32
}

// searcher is the per-worker mutable search state.
type searcher struct {
	pre    *prepared
	spec   core.Spec
	strong bool
	sh     *shared
	intern *interner
	memo   *memoTable
	queue  *workQueue
	worker int

	// stepper is spec's allocation-free fast path, nil for foreign specs
	// (stepAll then falls back to Step).
	stepper core.StepAppender
	// stepScratch is the reusable buffer StepAppend fills per transition.
	stepScratch []core.AbsState

	// indegree[i] counts the not-yet-placed visibility predecessors of
	// labels[i]; a label is in the frontier when its count is zero.
	indegree []int
	placed   bitset
	seq      []int
	// main is the set of abstract states reachable after the placed updates
	// (RA mode) or the placed prefix (strong mode); mainIDs are its interned
	// IDs, sorted, or nil once keying is off.
	main    []core.AbsState
	mainIDs []uint32
	// qstates[q] / qids[q] are, for each unplaced query index q, the state
	// set of its justification so far (RA mode only); non-query indices stay
	// nil.
	qstates [][]core.AbsState
	qids    [][]uint32
	// keyable caches whether every state seen by this worker interned; it
	// flips off (together with the shared flag that disables memoization for
	// everyone) at the first state without a canonical key.
	keyable bool
	// initStates/initIDs back the bottom-of-stack main set ({ϕ0}); they are
	// owned by the searcher (never pooled by putBuf) and reused across the
	// checks of a session.
	initStates []core.AbsState
	initIDs    []uint32
	// keyTuple is the debug-memo scratch: the exact word sequence the last
	// memoKey hashed, stored by claim as the collision-check witness. Unused
	// (and never grown) outside debug mode.
	keyTuple []uint64

	frames []frame
	// pool recycles state-set buffers released by leave; after warm-up the
	// inner loop allocates nothing here.
	pool []setBuf
	// stepped stages the advanced query sets of one enter so the searcher is
	// left untouched when a later query's justification dies.
	stepped []setBuf
	// cands[d] is the frontier scratch of donation-eligible depth d.
	cands [maxDonateDepth][]int

	// guided enables heuristic branch ordering (core.GuidanceGuided): enabled
	// queries are committed to immediately (RA mode), remaining candidates are
	// ordered by pre.guide plus the per-node novelty bit. Set by Run right
	// after construction; false is rank order, the byte-identical historical
	// behaviour.
	guided bool
	// ord[d] is the guided frontier scratch of depth d (grown lazily, only in
	// guided mode — the donation-eligible depths keep using cands).
	ord [][]int
	// scoreBuf is the transient per-node score scratch orderCands sorts
	// alongside the candidates; only live during one ordering.
	scoreBuf []int64

	reason  pruneReason
	nodes   int64
	leaves  int64
	pruned  int64
	memoHit int64
	steals  int64
	donated int64
}

// newSearcher builds a search state over the empty prefix, reusing the
// backing arrays and buffer pools of recycled (a searcher released into a
// Session by an earlier check; nil allocates fresh). intern and memo are
// shared by every worker of the search (memo may be nil when memoization is
// disabled); queue is nil for a sequential search.
func newSearcher(recycled *searcher, pre *prepared, spec core.Spec, strong bool, intern *interner, memo *memoTable, sh *shared, queue *workQueue, worker int) *searcher {
	s := recycled
	if s == nil {
		s = &searcher{}
	}
	n := len(pre.labels)
	s.pre = pre
	s.spec = spec
	s.stepper, _ = spec.(core.StepAppender)
	s.strong = strong
	s.sh = sh
	s.intern = intern
	s.memo = memo
	s.queue = queue
	s.worker = worker
	s.indegree = resizeInts(s.indegree, n)
	for i := range s.indegree {
		s.indegree[i] = len(pre.preds[i])
	}
	s.placed = resizeBitset(s.placed, n)
	s.seq = s.seq[:0]
	s.keyable = !sh.unkeyable.Load()
	s.reason = pruneReason{}
	s.nodes, s.leaves, s.pruned, s.memoHit, s.steals, s.donated = 0, 0, 0, 0, 0, 0
	init := spec.Init()
	s.initStates = append(s.initStates[:0], init)
	s.main = s.initStates
	s.mainIDs = nil
	if id, ok := s.internState(init); ok {
		s.initIDs = append(s.initIDs[:0], id)
		s.mainIDs = s.initIDs
	}
	s.qstates = resizeStateSets(s.qstates, n)
	s.qids = resizeIDSets(s.qids, n)
	if !strong {
		for _, q := range pre.queries {
			// All pending justifications start at the initial state; the
			// shared slice is safe because sets are never mutated in place
			// and only enter-created buffers are ever recycled.
			s.qstates[q] = s.main
			s.qids[q] = s.mainIDs
		}
	}
	return s
}

// release unwinds the searcher and drops every reference into the finished
// check (history, specification, shared state, live state sets) so a pooled
// searcher pins nothing; the backing arrays, undo frames and buffer pool stay
// for the next check.
func (s *searcher) release() {
	s.reset()
	s.reason = pruneReason{} // flush already rendered it; drop its labels
	s.guided = false
	s.pre = nil
	s.spec = nil
	s.stepper = nil
	s.sh = nil
	s.intern = nil
	s.memo = nil
	s.queue = nil
	clear(s.stepScratch[:cap(s.stepScratch)])
	s.stepScratch = s.stepScratch[:0]
	clear(s.initStates[:cap(s.initStates)])
	s.initStates = s.initStates[:0]
	s.main, s.mainIDs = nil, nil
	clear(s.qstates[:cap(s.qstates)])
	clear(s.qids[:cap(s.qids)])
	frames := s.frames[:cap(s.frames)]
	for i := range frames {
		frames[i].main, frames[i].mainIDs = nil, nil
		saved := frames[i].saved[:cap(frames[i].saved)]
		for k := range saved {
			saved[k] = savedQuery{}
		}
	}
}

// resizeInts returns a length-n int slice, reusing s's backing array when it
// is large enough. Contents are unspecified; callers overwrite every entry.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// resizeBitset returns a zeroed bitset with capacity for n bits, reusing b's
// backing array when it is large enough.
func resizeBitset(b bitset, n int) bitset {
	words := (n + 63) / 64
	if cap(b) < words {
		return newBitset(n)
	}
	b = b[:words]
	clear(b)
	return b
}

// resizeStateSets returns a length-n slice of nil state sets, reusing s's
// backing array (scrubbed over its full capacity so no stale sets survive).
func resizeStateSets(s [][]core.AbsState, n int) [][]core.AbsState {
	if cap(s) < n {
		return make([][]core.AbsState, n)
	}
	clear(s[:cap(s)])
	return s[:n]
}

// resizeIDSets is resizeStateSets for the parallel interned-ID sets.
func resizeIDSets(s [][]uint32, n int) [][]uint32 {
	if cap(s) < n {
		return make([][]uint32, n)
	}
	clear(s[:cap(s)])
	return s[:n]
}

// reset unwinds the searcher back to the empty prefix by leaving every placed
// label, recycling the state-set buffers along the way. Workers call it
// between work items.
func (s *searcher) reset() {
	for len(s.seq) > 0 {
		s.leave(s.seq[len(s.seq)-1])
	}
}

// replay re-places the labels of a donated prefix. The donor entered every
// element but the last before donating, and enter is deterministic, so only
// the final element can prune; a false return means the whole branch was
// refuted during replay (accounted here, exactly once — the donor never
// explored it).
func (s *searcher) replay(prefix []int) bool {
	for _, i := range prefix {
		if !s.enter(i) {
			return false
		}
	}
	return true
}

// internState interns the canonical key of one abstract state. A state
// without a key permanently disables keying for this worker and memoization
// for the whole search; an interner at its memory budget does the same and
// additionally trips the session budget, so the search finishes memo-less
// and the session evicts once idle. Either way the verdict stays sound —
// keying only feeds deduplication and memoization, never admissibility.
func (s *searcher) internState(phi core.AbsState) (uint32, bool) {
	if !s.keyable {
		return 0, false
	}
	if keyer, ok := phi.(core.StateKeyer); ok {
		if key, ok := keyer.StateKey(); ok {
			if id, ok := s.intern.id(key); ok {
				return id, true
			}
			s.sh.tripMemBudget()
		}
	}
	s.keyable = false
	s.sh.unkeyable.Store(true)
	return 0, false
}

// flush merges the worker-local counters and prune reason into the shared
// state; call once when the worker is done.
func (s *searcher) flush() {
	s.sh.nodes.Add(s.nodes)
	s.sh.leaves.Add(s.leaves)
	s.sh.pruned.Add(s.pruned)
	s.sh.memoHits.Add(s.memoHit)
	s.sh.steals.Add(s.steals)
	s.sh.donated.Add(s.donated)
	if err := s.reason.err(); err != nil {
		s.sh.setErr(err)
	}
}

// dfs explores the subtree under the current prefix.
func (s *searcher) dfs() status {
	if s.sh.stop.Load() {
		return sStopped
	}
	s.nodes++
	if !s.sh.chargeNode() {
		return sStopped
	}
	if len(s.seq) == len(s.pre.labels) {
		// Conditions (i)–(iii) were enforced on every prefix, so a complete
		// sequence is a witness.
		s.leaves++
		s.sh.recordWitness(s.witness())
		return sFound
	}
	if key, keyed := s.memoKey(); keyed {
		if !s.memo.claim(key, s.keyTuple) {
			// An equal configuration is being (or has been) explored by some
			// worker; its subtree equals ours, so skip.
			s.memoHit++
			return sExhausted
		}
		// Memo-budget accounting rides the store path only (a claimed entry
		// was just added): past the limit this worker stops memoizing — a
		// local, allocation-free degradation; other workers degrade the same
		// way as they store. Zero cost per node when no budget is set.
		if lim := s.sh.memoLimit; lim > 0 && s.sh.memoCount.Load() > lim {
			s.memo = nil
			s.sh.tripMemBudget()
		}
	}
	if s.guided && !s.strong {
		// Query commit: a frontier query's justification is final (every
		// visible update is placed), and placing it touches neither the main
		// update projection nor any other pending query's justification — so
		// by an exchange argument the subtree that places it right now covers
		// the whole node: any witness placing it later reorders to one placing
		// it now, and an inadmissible final justification refutes every
		// extension. Exploring only this branch is the reduction that shrinks
		// complete (refuting) searches, which pure sibling reordering cannot.
		if q := s.enabledQuery(); q >= 0 {
			return s.explore(q)
		}
	}
	if depth := len(s.seq); s.queue != nil && depth < maxDonateDepth {
		return s.exploreSplit(depth)
	}
	if s.guided {
		return s.exploreGuided(len(s.seq))
	}
	for _, i := range s.pre.order {
		if s.indegree[i] != 0 || s.placed.get(i) {
			continue
		}
		if st := s.explore(i); st != sExhausted {
			return st
		}
	}
	return sExhausted
}

// enabledQuery returns the first frontier query in ascending query order, or
// -1 when no query is enabled (RA mode only; strong-mode plans have no query
// index).
func (s *searcher) enabledQuery() int {
	for _, q := range s.pre.queries {
		if s.indegree[q] == 0 && !s.placed.get(q) {
			return q
		}
	}
	return -1
}

// exploreGuided is the guided deep-node candidate loop: collect the frontier
// into per-depth scratch, order it by composite score (orderCands), and
// explore in that order. The recursion under explore uses strictly deeper
// scratch slots, so the slice iterated here stays intact.
func (s *searcher) exploreGuided(depth int) status {
	for len(s.ord) <= depth {
		s.ord = append(s.ord, nil)
	}
	cands := s.ord[depth][:0]
	for _, i := range s.pre.order {
		if s.indegree[i] == 0 && !s.placed.get(i) {
			cands = append(cands, i)
		}
	}
	s.orderCands(cands)
	s.ord[depth] = cands
	for _, i := range cands {
		if st := s.explore(i); st != sExhausted {
			return st
		}
	}
	return sExhausted
}

// orderCands sorts frontier candidates in place by descending composite
// score: the novelty bit (the step reaches a spec state the interner has not
// seen) above the static pre.guide score (pending-query justification count,
// then session success score). The insertion sort is stable, so equal scores
// keep rank order — ordering is a deterministic function of the session state
// at node entry.
func (s *searcher) orderCands(cands []int) {
	if len(cands) < 2 {
		return
	}
	sb := s.scoreBuf[:0]
	for _, i := range cands {
		sc := s.pre.guide[i]
		if s.novel(i) {
			sc |= guideNoveltyBit
		}
		sb = append(sb, sc)
	}
	s.scoreBuf = sb
	for k := 1; k < len(cands); k++ {
		ci, cs := cands[k], sb[k]
		j := k - 1
		for ; j >= 0 && sb[j] < cs; j-- {
			cands[j+1], sb[j+1] = cands[j], sb[j]
		}
		cands[j+1], sb[j+1] = ci, cs
	}
}

// novel reports whether placing label i reaches at least one spec state whose
// canonical key the interner has not seen. The probe is read-only (interner
// peek, no insertion), so ordering neither grows the interner nor consumes
// its budget; queries never advance the main set and are never novel. Once
// keying is off the signal degrades to false for everyone — ordering then
// rests on the static scores alone.
func (s *searcher) novel(i int) bool {
	l := s.pre.labels[i]
	if !s.keyable || l.IsQuery() {
		return false
	}
	if s.stepper != nil {
		for _, phi := range s.main {
			sc := s.stepper.StepAppend(s.stepScratch[:0], phi, l)
			s.stepScratch = sc
			if s.anyNovel(sc) {
				return true
			}
		}
		return false
	}
	for _, phi := range s.main {
		if s.anyNovel(s.spec.Step(phi, l)) {
			return true
		}
	}
	return false
}

// anyNovel reports whether any of the states has a canonical key the interner
// has not seen yet.
func (s *searcher) anyNovel(states []core.AbsState) bool {
	for _, nxt := range states {
		keyer, ok := nxt.(core.StateKeyer)
		if !ok {
			continue
		}
		key, ok := keyer.StateKey()
		if !ok {
			continue
		}
		if !s.intern.has(key) {
			return true
		}
	}
	return false
}

// exploreSplit is the shallow-depth candidate loop of the work-stealing
// scheduler: it collects the frontier into per-depth scratch and, when some
// worker is starving, keeps only the first branch for itself and donates the
// rest to the queue before descending — so idle workers are fed immediately
// instead of after this worker finishes its first subtree.
func (s *searcher) exploreSplit(depth int) status {
	cands := s.cands[depth][:0]
	for _, i := range s.pre.order {
		if s.indegree[i] == 0 && !s.placed.get(i) {
			cands = append(cands, i)
		}
	}
	if s.guided {
		// Guided ordering applies before the split, so the branch this worker
		// keeps for itself is the best-scored one and donations drain in score
		// order.
		s.orderCands(cands)
	}
	s.cands[depth] = cands
	if len(cands) > 1 && s.queue.hungry() {
		for _, i := range cands[1:] {
			s.donate(i)
		}
		cands = cands[:1]
	}
	for _, i := range cands {
		if st := s.explore(i); st != sExhausted {
			return st
		}
	}
	return sExhausted
}

// explore descends into candidate i: enter, recurse, leave.
func (s *searcher) explore(i int) status {
	if !s.enter(i) {
		return sExhausted
	}
	st := s.dfs()
	s.leave(i)
	return st
}

// donate publishes the branch (current prefix + candidate i) to the work
// queue for an idle worker to pick up.
func (s *searcher) donate(i int) {
	prefix := make([]int, len(s.seq)+1)
	copy(prefix, s.seq)
	prefix[len(s.seq)] = i
	s.queue.push(workItem{prefix: prefix, donor: s.worker})
	s.donated++
}

// enter tries to extend the prefix with label index i. It returns false —
// leaving the searcher unchanged — when the extended prefix is inadmissible
// or unjustifiable, and records the prune.
func (s *searcher) enter(i int) bool {
	l := s.pre.labels[i]
	if s.strong {
		next := s.stepAll(s.main, l)
		if len(next.states) == 0 {
			s.putBuf(next)
			s.pruned++
			s.reason = pruneReason{label: l, cond: "prefix"}
			return false
		}
		fr := s.pushFrame()
		fr.main, fr.mainIDs = s.main, s.mainIDs
		if !l.IsQuery() {
			// Updates (and query-updates, which strong mode treats as
			// updates) advance the prefix state; queries only have to be
			// admitted at it.
			fr.advanced = true
			s.main, s.mainIDs = next.states, next.ids
		} else {
			s.putBuf(next)
		}
	} else if l.IsUpdate() {
		next := s.stepAll(s.main, l)
		if len(next.states) == 0 {
			s.putBuf(next)
			s.pruned++
			s.reason = pruneReason{label: l, cond: "ii"}
			return false
		}
		// Advance every pending query this update is visible to; a dead
		// justification dooms every completion of the prefix, so prune now
		// instead of when the query is placed. The advanced sets are staged
		// in s.stepped so a late death leaves the searcher untouched.
		s.stepped = s.stepped[:0]
		for _, q := range s.pre.affected[i] {
			if s.placed.get(q) {
				continue
			}
			nq := s.stepAll(s.qstates[q], l)
			if len(nq.states) == 0 {
				s.putBuf(nq)
				for _, b := range s.stepped {
					s.putBuf(b)
				}
				s.stepped = s.stepped[:0]
				s.putBuf(next)
				s.pruned++
				s.reason = pruneReason{label: l, cond: "iii", query: s.pre.labels[q]}
				return false
			}
			s.stepped = append(s.stepped, nq)
		}
		fr := s.pushFrame()
		fr.main, fr.mainIDs = s.main, s.mainIDs
		fr.advanced = true
		k := 0
		for _, q := range s.pre.affected[i] {
			if s.placed.get(q) {
				continue
			}
			fr.saved = append(fr.saved, savedQuery{q: q, states: s.qstates[q], ids: s.qids[q]})
			s.qstates[q], s.qids[q] = s.stepped[k].states, s.stepped[k].ids
			k++
		}
		s.stepped = s.stepped[:0]
		s.main, s.mainIDs = next.states, next.ids
	} else {
		// Queries: the justification (visible updates in placed order,
		// then the query) must be admitted. All visible updates are
		// necessarily placed already, so qstates[i] is final.
		res := s.stepAll(s.qstates[i], l)
		admitted := len(res.states) > 0
		s.putBuf(res)
		if !admitted {
			s.pruned++
			s.reason = pruneReason{label: l, cond: "iii", query: nil}
			return false
		}
		fr := s.pushFrame()
		fr.main, fr.mainIDs = s.main, s.mainIDs
	}
	s.placed.set(i)
	s.seq = append(s.seq, i)
	for _, j := range s.pre.succs[i] {
		s.indegree[j]--
	}
	return true
}

// leave undoes enter(i), recycling the state-set buffers the matching enter
// created.
func (s *searcher) leave(i int) {
	for _, j := range s.pre.succs[i] {
		s.indegree[j]++
	}
	s.seq = s.seq[:len(s.seq)-1]
	s.placed.clear(i)
	fr := &s.frames[len(s.frames)-1]
	for k := len(fr.saved) - 1; k >= 0; k-- {
		sv := fr.saved[k]
		s.putBuf(setBuf{states: s.qstates[sv.q], ids: s.qids[sv.q]})
		s.qstates[sv.q], s.qids[sv.q] = sv.states, sv.ids
	}
	if fr.advanced {
		s.putBuf(setBuf{states: s.main, ids: s.mainIDs})
	}
	s.main, s.mainIDs = fr.main, fr.mainIDs
	s.frames = s.frames[:len(s.frames)-1]
}

// frame is the undo record of one placement. State-set slices are never
// mutated in place once published (stepAll dedups inside the buffer before it
// becomes visible), so saving the old slice headers restores them exactly;
// advanced records whether enter replaced the main set (and leave must
// recycle the replacement).
type frame struct {
	main     []core.AbsState
	mainIDs  []uint32
	advanced bool
	saved    []savedQuery
}

type savedQuery struct {
	q      int
	states []core.AbsState
	ids    []uint32
}

// pushFrame returns the next frame slot, reusing the backing array (and each
// frame's saved slice) across placements so the steady-state DFS allocates no
// frames at all.
func (s *searcher) pushFrame() *frame {
	if len(s.frames) == cap(s.frames) {
		s.frames = append(s.frames, frame{})
	} else {
		s.frames = s.frames[:len(s.frames)+1]
	}
	fr := &s.frames[len(s.frames)-1]
	fr.main, fr.mainIDs = nil, nil
	fr.advanced = false
	fr.saved = fr.saved[:0]
	return fr
}

// getBuf takes a recycled state-set buffer from the pool (or a zero one).
func (s *searcher) getBuf() setBuf {
	if n := len(s.pool); n > 0 {
		b := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return b
	}
	return setBuf{}
}

// putBuf returns a buffer to the pool, dropping its state references so the
// pool does not pin dead abstract states.
func (s *searcher) putBuf(b setBuf) {
	for i := range b.states {
		b.states[i] = nil
	}
	s.pool = append(s.pool, setBuf{states: b.states[:0], ids: b.ids[:0]})
}

// stepAll applies label l to every state of the set and returns the deduped
// successor set in a pooled buffer. Specs implementing core.StepAppender are
// stepped through the allocation-free fast path into a reused scratch buffer;
// foreign specs fall back to Step's fresh slice per transition. While the
// specification is keyable, deduplication is by interned ID with the IDs kept
// sorted (the canonical order memo hashing relies on); otherwise it falls
// back to pairwise EqualAbs.
func (s *searcher) stepAll(states []core.AbsState, l *core.Label) setBuf {
	buf := s.getBuf()
	if s.stepper != nil {
		for _, phi := range states {
			sc := s.stepper.StepAppend(s.stepScratch[:0], phi, l)
			s.stepScratch = sc
			for _, nxt := range sc {
				s.insert(&buf, nxt)
			}
		}
		return buf
	}
	for _, phi := range states {
		for _, nxt := range s.spec.Step(phi, l) {
			s.insert(&buf, nxt)
		}
	}
	return buf
}

// insert adds one successor state to the buffer, deduplicating by interned ID
// (ordered insert into the sorted ID slice) or, once keying is off, by
// EqualAbs scan.
func (s *searcher) insert(buf *setBuf, phi core.AbsState) {
	if s.keyable {
		if id, ok := s.internState(phi); ok {
			pos := len(buf.ids)
			for k, existing := range buf.ids {
				if existing == id {
					return
				}
				if existing > id {
					pos = k
					break
				}
			}
			buf.ids = append(buf.ids, 0)
			copy(buf.ids[pos+1:], buf.ids[pos:])
			buf.ids[pos] = id
			buf.states = append(buf.states, nil)
			copy(buf.states[pos+1:], buf.states[pos:])
			buf.states[pos] = phi
			return
		}
		// Keying just flipped off: the states inserted so far were deduped
		// consistently (equal IDs iff equal states); continue with EqualAbs
		// and drop the now-meaningless ID slice.
		buf.ids = buf.ids[:0]
	}
	for _, t := range buf.states {
		if t.EqualAbs(phi) {
			return
		}
	}
	buf.states = append(buf.states, phi)
}

// witness materializes the current (complete) prefix as a label sequence.
func (s *searcher) witness() []*core.Label {
	out := make([]*core.Label, len(s.seq))
	for k, i := range s.seq {
		out[k] = s.pre.labels[i]
	}
	return out
}
