package search

import (
	"fmt"
	"math/bits"

	"ralin/internal/core"
)

// status is the outcome of exploring one subtree.
type status int

const (
	// sExhausted: the subtree was fully explored (locally or, for donated
	// branches, by whichever worker pops them before the search can
	// terminate) and the local exploration found no witness.
	sExhausted status = iota
	// sFound: a witness was found (and recorded in the shared state).
	sFound
	// sStopped: the search was cancelled (witness found elsewhere) or the
	// node budget ran out; the subtree may contain unexplored nodes.
	sStopped
)

// maxDonateDepth bounds the prefix depth at which a worker donates sibling
// branches to the work queue. Shallow branches carry the largest subtrees
// (the best units of stealable work) and keep the replay cost of a stolen
// prefix trivial; deeper nodes use the scratch-free fast path.
const maxDonateDepth = 4

// witnessChunkLabels is the allocation unit of the witness arena: witness
// slices are carved out of chunks this large, so a session re-checking
// histories amortizes the per-witness slice allocation to ~0 (one chunk per
// ~chunk/len witnesses). Carved regions are never recycled — the caller owns
// its witness — so a handed-out witness keeps at most one chunk alive.
const witnessChunkLabels = 512

// pruneReason records why a prefix was rejected, kept cheap so the hot path
// does no formatting; searcher.flush renders the last one per worker.
type pruneReason struct {
	label *core.Label
	cond  string
	// query is the pending query whose justification died (condition iii
	// pruned at an update), nil otherwise.
	query *core.Label
}

func (r pruneReason) err() error {
	if r.label == nil {
		return nil
	}
	if r.query != nil {
		return fmt.Errorf("condition (%s): placing %v leaves query %v unjustifiable by its visible updates",
			r.cond, r.label, r.query)
	}
	return fmt.Errorf("condition (%s): prefix rejected at %v", r.cond, r.label)
}

// setBuf is one reusable state-set buffer. While the specification is keyable
// it carries three parallel views of the set: the abstract states in arrival
// order, their session-interner IDs (the step-cache keys), and a bitset over
// check-local compact IDs (shared.compact) — the set's canonical form.
// Membership is a single word test on the bitset, and memo hashing folds the
// words directly instead of walking IDs one at a time. The bitset is kept in
// canonical trimmed form (its last word is always nonzero), so two buffers
// hold equal sets exactly when their word slices are equal.
type setBuf struct {
	states []core.AbsState
	ids    []uint32
	words  []uint64
}

// searcher is the per-worker mutable search state.
type searcher struct {
	pre    *prepared
	spec   core.Spec
	strong bool
	sh     *shared
	intern *interner
	memo   *memoTable
	queue  *workQueue
	worker int
	// compact assigns dense check-local IDs to session-interner IDs; shared by
	// every worker of the check (points into sh).
	compact *compactor
	// steps is the session's per-spec transition cache, nil when the check
	// runs sessionless or the spec is not cacheable. On a warm session the
	// stepAll fast path replays cached (state, label) transitions without
	// re-entering the spec (no StateKey rendering, no interner probe).
	steps *stepCache

	// stepper is spec's allocation-free fast path, nil for foreign specs
	// (stepAll then falls back to Step).
	stepper core.StepAppender
	// stepScratch is the reusable buffer StepAppend fills per transition.
	stepScratch []core.AbsState
	// fillIDs is the scratch slice of successor IDs fillStep interns before a
	// transition is stored in the step cache.
	fillIDs []uint32

	// indegree[i] counts the not-yet-placed visibility predecessors of
	// labels[i]; a label is in the frontier when its count is zero and it is
	// not placed.
	indegree []int
	placed   bitset
	// frontier is the candidate set as a bitset over order positions
	// (pre.pos[i] is label i's bit): bit p is set exactly when the label at
	// order position p has indegree zero and is not placed. Candidate
	// enumeration walks the set bits word by word — ascending position is
	// ascending rank order, the historical candidate order — instead of
	// scanning all of pre.order and testing indegree/placed per label.
	// enter/leave maintain it with single word operations.
	frontier bitset
	seq      []int
	// main is the set of abstract states reachable after the placed updates
	// (RA mode) or the placed prefix (strong mode); mainIDs/mainWords are its
	// interner-ID and compact-bitset views, nil once keying is off.
	main      []core.AbsState
	mainIDs   []uint32
	mainWords []uint64
	// qstates[q] / qids[q] / qwords[q] are, for each unplaced query index q,
	// the three views of its justification set so far (RA mode only);
	// non-query indices stay nil.
	qstates [][]core.AbsState
	qids    [][]uint32
	qwords  [][]uint64
	// keyable caches whether every state seen by this worker interned; it
	// flips off (together with the shared flag that disables memoization for
	// everyone) at the first state without a canonical key.
	keyable bool
	// initStates/initIDs/initWords back the bottom-of-stack main set ({ϕ0});
	// they are owned by the searcher (never pooled by putBuf) and reused
	// across the checks of a session.
	initStates []core.AbsState
	initIDs    []uint32
	initWords  []uint64
	// keyTuple is the debug-memo scratch: the exact word sequence the last
	// memoKey hashed, stored by claim as the collision-check witness. Unused
	// (and never grown) outside debug mode.
	keyTuple []uint64
	// legacyKey is the debug-memo transition witness: the pre-bitset memo key
	// (hash over sorted interned-ID walks) of the last configuration, so
	// claim can assert that the word-folded key and the legacy key induce the
	// same equality on configurations. Unused outside debug mode.
	legacyKey key128
	// dbgIDs is the sort scratch legacyMemoKey uses to re-derive the sorted
	// ID walks the legacy key hashed; debug mode only.
	dbgIDs []uint32

	frames []frame
	// pool recycles state-set buffers released by leave; after warm-up the
	// inner loop allocates nothing here.
	pool []setBuf
	// stepped stages the advanced query sets of one enter so the searcher is
	// left untouched when a later query's justification dies.
	stepped []setBuf
	// cands[d] is the frontier scratch of donation-eligible depth d.
	cands [maxDonateDepth][]int

	// witMem is the witness arena: the current chunk witness() carves
	// complete linearizations from. Carved regions are caller-owned and never
	// recycled; the chunk advances and a new one is allocated only when full.
	witMem []*core.Label

	// guided enables heuristic branch ordering (core.GuidanceGuided): enabled
	// queries are committed to immediately (RA mode), remaining candidates are
	// ordered by pre.guide plus the per-node novelty bit. Set by Run right
	// after construction; false is rank order, the byte-identical historical
	// behaviour.
	guided bool
	// ord[d] is the guided frontier scratch of depth d (grown lazily, only in
	// guided mode — the donation-eligible depths keep using cands).
	ord [][]int
	// scoreBuf is the transient per-node score scratch orderCands sorts
	// alongside the candidates; only live during one ordering.
	scoreBuf []int64

	reason  pruneReason
	nodes   int64
	leaves  int64
	pruned  int64
	memoHit int64
	steals  int64
	donated int64
}

// newSearcher builds a search state over the empty prefix, reusing the
// backing arrays and buffer pools of recycled (a searcher released into a
// Session by an earlier check; nil allocates fresh). intern and memo are
// shared by every worker of the search (memo may be nil when memoization is
// disabled); queue is nil for a sequential search.
func newSearcher(recycled *searcher, pre *prepared, spec core.Spec, strong bool, intern *interner, memo *memoTable, sh *shared, queue *workQueue, worker int) *searcher {
	s := recycled
	if s == nil {
		s = &searcher{}
	}
	n := len(pre.labels)
	s.pre = pre
	s.spec = spec
	s.stepper, _ = spec.(core.StepAppender)
	s.strong = strong
	s.sh = sh
	s.intern = intern
	s.memo = memo
	s.queue = queue
	s.worker = worker
	s.compact = &sh.compact
	s.steps = sh.steps
	s.indegree = resizeInts(s.indegree, n)
	s.placed = resizeBitset(s.placed, n)
	s.frontier = resizeBitset(s.frontier, n)
	for i := range s.indegree {
		s.indegree[i] = len(pre.preds[i])
		if s.indegree[i] == 0 {
			s.frontier.set(pre.pos[i])
		}
	}
	s.seq = s.seq[:0]
	s.keyable = !sh.unkeyable.Load()
	s.reason = pruneReason{}
	s.nodes, s.leaves, s.pruned, s.memoHit, s.steals, s.donated = 0, 0, 0, 0, 0, 0
	init, initID, initOK := s.cachedInit()
	s.initStates = append(s.initStates[:0], init)
	s.main = s.initStates
	s.mainIDs, s.mainWords = nil, nil
	if initOK {
		s.initIDs = append(s.initIDs[:0], initID)
		s.mainIDs = s.initIDs
		cid := s.compact.compact(initID)
		s.initWords = appendBit(s.initWords[:0], cid)
		s.mainWords = s.initWords
	}
	s.qstates = resizeStateSets(s.qstates, n)
	s.qids = resizeIDSets(s.qids, n)
	s.qwords = resizeWordSets(s.qwords, n)
	if !strong {
		for _, q := range pre.queries {
			// All pending justifications start at the initial state; the
			// shared slice is safe because sets are never mutated in place
			// and only enter-created buffers are ever recycled.
			s.qstates[q] = s.main
			s.qids[q] = s.mainIDs
			s.qwords[q] = s.mainWords
		}
	}
	return s
}

// cachedInit returns the specification's initial state and its interned ID.
// With a session step cache the pair is served from the cache after the first
// check, skipping both spec.Init's fresh state and the StateKey rendering the
// interner probe needs — the last per-check allocations of a warm re-check.
// Interning failures (unkeyable spec, interner at budget) are never cached.
func (s *searcher) cachedInit() (core.AbsState, uint32, bool) {
	if c := s.steps; c != nil {
		c.mu.RLock()
		init, id := c.initState, c.initID
		c.mu.RUnlock()
		if init != nil {
			return init, id, true
		}
	}
	init := s.spec.Init()
	id, ok := s.internState(init)
	if ok && s.steps != nil {
		c := s.steps
		c.mu.Lock()
		if c.initState == nil {
			c.initState, c.initID = init, id
		}
		c.mu.Unlock()
	}
	return init, id, ok
}

// appendBit extends words so bit id is set, growing to exactly the word that
// holds it — which keeps the slice in canonical trimmed form (last word
// nonzero) when building a fresh single-bit set.
func appendBit(words []uint64, id uint32) []uint64 {
	w, m := int(id>>6), uint64(1)<<(id&63)
	for len(words) < w {
		words = append(words, 0)
	}
	return append(words, m)
}

// release unwinds the searcher and drops every reference into the finished
// check (history, specification, shared state, live state sets) so a pooled
// searcher pins nothing; the backing arrays, undo frames and buffer pool stay
// for the next check. The witness arena chunk is kept: its carved prefix is
// caller-owned and its free tail is clean.
func (s *searcher) release() {
	s.reset()
	s.reason = pruneReason{} // flush already rendered it; drop its labels
	s.guided = false
	s.pre = nil
	s.spec = nil
	s.stepper = nil
	s.sh = nil
	s.intern = nil
	s.memo = nil
	s.queue = nil
	s.compact = nil
	s.steps = nil
	clear(s.stepScratch[:cap(s.stepScratch)])
	s.stepScratch = s.stepScratch[:0]
	clear(s.initStates[:cap(s.initStates)])
	s.initStates = s.initStates[:0]
	s.main, s.mainIDs, s.mainWords = nil, nil, nil
	clear(s.qstates[:cap(s.qstates)])
	clear(s.qids[:cap(s.qids)])
	clear(s.qwords[:cap(s.qwords)])
	frames := s.frames[:cap(s.frames)]
	for i := range frames {
		frames[i].main, frames[i].mainIDs, frames[i].mainWords = nil, nil, nil
		saved := frames[i].saved[:cap(frames[i].saved)]
		for k := range saved {
			saved[k] = savedQuery{}
		}
	}
}

// resizeInts returns a length-n int slice, reusing s's backing array when it
// is large enough. Contents are unspecified; callers overwrite every entry.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// resizeBitset returns a zeroed bitset with capacity for n bits, reusing b's
// backing array when it is large enough.
func resizeBitset(b bitset, n int) bitset {
	words := (n + 63) / 64
	if cap(b) < words {
		return newBitset(n)
	}
	b = b[:words]
	clear(b)
	return b
}

// resizeStateSets returns a length-n slice of nil state sets, reusing s's
// backing array (scrubbed over its full capacity so no stale sets survive).
func resizeStateSets(s [][]core.AbsState, n int) [][]core.AbsState {
	if cap(s) < n {
		return make([][]core.AbsState, n)
	}
	clear(s[:cap(s)])
	return s[:n]
}

// resizeIDSets is resizeStateSets for the parallel interned-ID sets.
func resizeIDSets(s [][]uint32, n int) [][]uint32 {
	if cap(s) < n {
		return make([][]uint32, n)
	}
	clear(s[:cap(s)])
	return s[:n]
}

// resizeWordSets is resizeStateSets for the parallel compact-bitset sets.
func resizeWordSets(s [][]uint64, n int) [][]uint64 {
	if cap(s) < n {
		return make([][]uint64, n)
	}
	clear(s[:cap(s)])
	return s[:n]
}

// reset unwinds the searcher back to the empty prefix by leaving every placed
// label, recycling the state-set buffers along the way. Workers call it
// between work items.
func (s *searcher) reset() {
	for len(s.seq) > 0 {
		s.leave(s.seq[len(s.seq)-1])
	}
}

// replay re-places the labels of a donated prefix. The donor entered every
// element but the last before donating, and enter is deterministic, so only
// the final element can prune; a false return means the whole branch was
// refuted during replay (accounted here, exactly once — the donor never
// explored it).
func (s *searcher) replay(prefix []int) bool {
	for _, i := range prefix {
		if !s.enter(i) {
			return false
		}
	}
	return true
}

// internState interns the canonical key of one abstract state. A state
// without a key permanently disables keying for this worker and memoization
// for the whole search; an interner at its memory budget does the same and
// additionally trips the session budget, so the search finishes memo-less
// and the session evicts once idle. Either way the verdict stays sound —
// keying only feeds deduplication and memoization, never admissibility.
func (s *searcher) internState(phi core.AbsState) (uint32, bool) {
	if !s.keyable {
		return 0, false
	}
	if keyer, ok := phi.(core.StateKeyer); ok {
		if key, ok := keyer.StateKey(); ok {
			if id, ok := s.intern.id(key); ok {
				return id, true
			}
			s.sh.tripMemBudget()
		}
	}
	s.keyable = false
	s.sh.unkeyable.Store(true)
	return 0, false
}

// flush merges the worker-local counters and prune reason into the shared
// state; call once when the worker is done. The prune reason is only rendered
// (one fmt.Errorf) when the search still needs one — a witness-producing
// search never reads it, so the warm re-check path skips the formatting
// allocation entirely.
func (s *searcher) flush() {
	s.sh.nodes.Add(s.nodes)
	s.sh.leaves.Add(s.leaves)
	s.sh.pruned.Add(s.pruned)
	s.sh.memoHits.Add(s.memoHit)
	s.sh.steals.Add(s.steals)
	s.sh.donated.Add(s.donated)
	if s.reason.label != nil && s.sh.wantErr() {
		s.sh.setErr(s.reason.err())
	}
}

// dfs explores the subtree under the current prefix.
func (s *searcher) dfs() status {
	if s.sh.stop.Load() {
		return sStopped
	}
	s.nodes++
	if !s.sh.chargeNode() {
		return sStopped
	}
	if len(s.seq) == len(s.pre.labels) {
		// Conditions (i)–(iii) were enforced on every prefix, so a complete
		// sequence is a witness.
		s.leaves++
		s.sh.recordWitness(s.witness())
		return sFound
	}
	if key, keyed := s.memoKey(); keyed {
		if !s.memo.claim(key, s.keyTuple, s.legacyKey) {
			// An equal configuration is being (or has been) explored by some
			// worker; its subtree equals ours, so skip.
			s.memoHit++
			return sExhausted
		}
		// Memo-budget accounting rides the store path only (a claimed entry
		// was just added): past the limit this worker stops memoizing — a
		// local, allocation-free degradation; other workers degrade the same
		// way as they store. Zero cost per node when no budget is set.
		if lim := s.sh.memoLimit; lim > 0 && s.sh.memoCount.Load() > lim {
			s.memo = nil
			s.sh.tripMemBudget()
		}
	}
	if s.guided && !s.strong {
		// Query commit: a frontier query's justification is final (every
		// visible update is placed), and placing it touches neither the main
		// update projection nor any other pending query's justification — so
		// by an exchange argument the subtree that places it right now covers
		// the whole node: any witness placing it later reorders to one placing
		// it now, and an inadmissible final justification refutes every
		// extension. Exploring only this branch is the reduction that shrinks
		// complete (refuting) searches, which pure sibling reordering cannot.
		if q := s.enabledQuery(); q >= 0 {
			return s.explore(q)
		}
	}
	if depth := len(s.seq); s.queue != nil && depth < maxDonateDepth {
		return s.exploreSplit(depth)
	}
	if s.guided {
		return s.exploreGuided(len(s.seq))
	}
	// Rank-order deep nodes: walk the frontier bitset directly. Each word is
	// copied once; explore restores the searcher (frontier included) to its
	// node-entry state before returning, so the remaining bits of the copy
	// stay the not-yet-tried candidates. Ascending bit position is ascending
	// order position — exactly the historical pre.order scan, without the
	// O(n) indegree/placed probing per node.
	for w, word := range s.frontier {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			if st := s.explore(s.pre.order[base|b]); st != sExhausted {
				return st
			}
		}
	}
	return sExhausted
}

// enabledQuery returns the first frontier query in ascending query order, or
// -1 when no query is enabled (RA mode only; strong-mode plans have no query
// index). Frontier membership is one bit probe per query.
func (s *searcher) enabledQuery() int {
	for _, q := range s.pre.queries {
		if s.frontier.get(s.pre.pos[q]) {
			return q
		}
	}
	return -1
}

// collectFrontier appends the frontier's label indices, in ascending order
// position (= candidate rank order), to cands.
func (s *searcher) collectFrontier(cands []int) []int {
	for w, word := range s.frontier {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			cands = append(cands, s.pre.order[base|b])
		}
	}
	return cands
}

// exploreGuided is the guided deep-node candidate loop: collect the frontier
// into per-depth scratch, order it by composite score (orderCands), and
// explore in that order. The recursion under explore uses strictly deeper
// scratch slots, so the slice iterated here stays intact.
func (s *searcher) exploreGuided(depth int) status {
	for len(s.ord) <= depth {
		s.ord = append(s.ord, nil)
	}
	cands := s.collectFrontier(s.ord[depth][:0])
	s.orderCands(cands)
	s.ord[depth] = cands
	for _, i := range cands {
		if st := s.explore(i); st != sExhausted {
			return st
		}
	}
	return sExhausted
}

// orderCands sorts frontier candidates in place by descending composite
// score: the novelty bit (the step reaches a spec state the interner has not
// seen) above the static pre.guide score (pending-query justification count,
// then session success score). The insertion sort is stable, so equal scores
// keep rank order — ordering is a deterministic function of the session state
// at node entry.
func (s *searcher) orderCands(cands []int) {
	if len(cands) < 2 {
		return
	}
	sb := s.scoreBuf[:0]
	for _, i := range cands {
		sc := s.pre.guide[i]
		if s.novel(i) {
			sc |= guideNoveltyBit
		}
		sb = append(sb, sc)
	}
	s.scoreBuf = sb
	for k := 1; k < len(cands); k++ {
		ci, cs := cands[k], sb[k]
		j := k - 1
		for ; j >= 0 && sb[j] < cs; j-- {
			cands[j+1], sb[j+1] = cands[j], sb[j]
		}
		cands[j+1], sb[j+1] = ci, cs
	}
}

// novel reports whether placing label i reaches at least one spec state whose
// canonical key the interner has not seen. The probe is read-only (interner
// peek, no insertion), so ordering neither grows the interner nor consumes
// its budget; queries never advance the main set and are never novel. A
// source state whose transition is in the session step cache is skipped: its
// successors were interned when the entry was filled, so none can be novel —
// the same answer the StepAppend probe would compute. Once keying is off the
// signal degrades to false for everyone — ordering then rests on the static
// scores alone.
func (s *searcher) novel(i int) bool {
	l := s.pre.labels[i]
	if !s.keyable || l.IsQuery() {
		return false
	}
	cached := s.steps != nil && len(s.mainIDs) == len(s.main)
	if s.stepper != nil {
		for si, phi := range s.main {
			if cached {
				if _, ok := s.steps.get(s.mainIDs[si], l); ok {
					continue
				}
			}
			sc := s.stepper.StepAppend(s.stepScratch[:0], phi, l)
			s.stepScratch = sc
			if s.anyNovel(sc) {
				return true
			}
		}
		return false
	}
	for si, phi := range s.main {
		if cached {
			if _, ok := s.steps.get(s.mainIDs[si], l); ok {
				continue
			}
		}
		if s.anyNovel(s.spec.Step(phi, l)) {
			return true
		}
	}
	return false
}

// anyNovel reports whether any of the states has a canonical key the interner
// has not seen yet.
func (s *searcher) anyNovel(states []core.AbsState) bool {
	for _, nxt := range states {
		keyer, ok := nxt.(core.StateKeyer)
		if !ok {
			continue
		}
		key, ok := keyer.StateKey()
		if !ok {
			continue
		}
		if !s.intern.has(key) {
			return true
		}
	}
	return false
}

// exploreSplit is the shallow-depth candidate loop of the work-stealing
// scheduler: it collects the frontier into per-depth scratch and, when some
// worker is starving, keeps only the first branch for itself and donates the
// rest to the queue before descending — so idle workers are fed immediately
// instead of after this worker finishes its first subtree.
func (s *searcher) exploreSplit(depth int) status {
	cands := s.collectFrontier(s.cands[depth][:0])
	if s.guided {
		// Guided ordering applies before the split, so the branch this worker
		// keeps for itself is the best-scored one and donations drain in score
		// order.
		s.orderCands(cands)
	}
	s.cands[depth] = cands
	if len(cands) > 1 && s.queue.hungry() {
		for _, i := range cands[1:] {
			s.donate(i)
		}
		cands = cands[:1]
	}
	for _, i := range cands {
		if st := s.explore(i); st != sExhausted {
			return st
		}
	}
	return sExhausted
}

// explore descends into candidate i: enter, recurse, leave.
func (s *searcher) explore(i int) status {
	if !s.enter(i) {
		return sExhausted
	}
	st := s.dfs()
	s.leave(i)
	return st
}

// donate publishes the branch (current prefix + candidate i) to the work
// queue for an idle worker to pick up.
func (s *searcher) donate(i int) {
	prefix := make([]int, len(s.seq)+1)
	copy(prefix, s.seq)
	prefix[len(s.seq)] = i
	s.queue.push(workItem{prefix: prefix, donor: s.worker})
	s.donated++
}

// enter tries to extend the prefix with label index i. It returns false —
// leaving the searcher unchanged — when the extended prefix is inadmissible
// or unjustifiable, and records the prune.
func (s *searcher) enter(i int) bool {
	l := s.pre.labels[i]
	if s.strong {
		next := s.stepAll(s.main, s.mainIDs, l)
		if len(next.states) == 0 {
			s.putBuf(next)
			s.pruned++
			s.reason = pruneReason{label: l, cond: "prefix"}
			return false
		}
		fr := s.pushFrame()
		fr.main, fr.mainIDs, fr.mainWords = s.main, s.mainIDs, s.mainWords
		if !l.IsQuery() {
			// Updates (and query-updates, which strong mode treats as
			// updates) advance the prefix state; queries only have to be
			// admitted at it.
			fr.advanced = true
			s.main, s.mainIDs, s.mainWords = next.states, next.ids, next.words
		} else {
			s.putBuf(next)
		}
	} else if l.IsUpdate() {
		next := s.stepAll(s.main, s.mainIDs, l)
		if len(next.states) == 0 {
			s.putBuf(next)
			s.pruned++
			s.reason = pruneReason{label: l, cond: "ii"}
			return false
		}
		// Advance every pending query this update is visible to; a dead
		// justification dooms every completion of the prefix, so prune now
		// instead of when the query is placed. The advanced sets are staged
		// in s.stepped so a late death leaves the searcher untouched.
		s.stepped = s.stepped[:0]
		for _, q := range s.pre.affected[i] {
			if s.placed.get(q) {
				continue
			}
			nq := s.stepAll(s.qstates[q], s.qids[q], l)
			if len(nq.states) == 0 {
				s.putBuf(nq)
				for _, b := range s.stepped {
					s.putBuf(b)
				}
				s.stepped = s.stepped[:0]
				s.putBuf(next)
				s.pruned++
				s.reason = pruneReason{label: l, cond: "iii", query: s.pre.labels[q]}
				return false
			}
			s.stepped = append(s.stepped, nq)
		}
		fr := s.pushFrame()
		fr.main, fr.mainIDs, fr.mainWords = s.main, s.mainIDs, s.mainWords
		fr.advanced = true
		k := 0
		for _, q := range s.pre.affected[i] {
			if s.placed.get(q) {
				continue
			}
			fr.saved = append(fr.saved, savedQuery{q: q, states: s.qstates[q], ids: s.qids[q], words: s.qwords[q]})
			s.qstates[q], s.qids[q], s.qwords[q] = s.stepped[k].states, s.stepped[k].ids, s.stepped[k].words
			k++
		}
		s.stepped = s.stepped[:0]
		s.main, s.mainIDs, s.mainWords = next.states, next.ids, next.words
	} else {
		// Queries: the justification (visible updates in placed order,
		// then the query) must be admitted. All visible updates are
		// necessarily placed already, so qstates[i] is final.
		res := s.stepAll(s.qstates[i], s.qids[i], l)
		admitted := len(res.states) > 0
		s.putBuf(res)
		if !admitted {
			s.pruned++
			s.reason = pruneReason{label: l, cond: "iii", query: nil}
			return false
		}
		fr := s.pushFrame()
		fr.main, fr.mainIDs, fr.mainWords = s.main, s.mainIDs, s.mainWords
	}
	s.placed.set(i)
	s.frontier.clear(s.pre.pos[i])
	s.seq = append(s.seq, i)
	for _, j := range s.pre.succs[i] {
		s.indegree[j]--
		if s.indegree[j] == 0 {
			s.frontier.set(s.pre.pos[j])
		}
	}
	return true
}

// leave undoes enter(i), recycling the state-set buffers the matching enter
// created.
func (s *searcher) leave(i int) {
	for _, j := range s.pre.succs[i] {
		if s.indegree[j] == 0 {
			s.frontier.clear(s.pre.pos[j])
		}
		s.indegree[j]++
	}
	s.seq = s.seq[:len(s.seq)-1]
	s.placed.clear(i)
	s.frontier.set(s.pre.pos[i])
	fr := &s.frames[len(s.frames)-1]
	for k := len(fr.saved) - 1; k >= 0; k-- {
		sv := fr.saved[k]
		s.putBuf(setBuf{states: s.qstates[sv.q], ids: s.qids[sv.q], words: s.qwords[sv.q]})
		s.qstates[sv.q], s.qids[sv.q], s.qwords[sv.q] = sv.states, sv.ids, sv.words
	}
	if fr.advanced {
		s.putBuf(setBuf{states: s.main, ids: s.mainIDs, words: s.mainWords})
	}
	s.main, s.mainIDs, s.mainWords = fr.main, fr.mainIDs, fr.mainWords
	s.frames = s.frames[:len(s.frames)-1]
}

// frame is the undo record of one placement. State-set slices are never
// mutated in place once published (stepAll dedups inside the buffer before it
// becomes visible), so saving the old slice headers restores them exactly;
// advanced records whether enter replaced the main set (and leave must
// recycle the replacement).
type frame struct {
	main      []core.AbsState
	mainIDs   []uint32
	mainWords []uint64
	advanced  bool
	saved     []savedQuery
}

type savedQuery struct {
	q      int
	states []core.AbsState
	ids    []uint32
	words  []uint64
}

// pushFrame returns the next frame slot, reusing the backing array (and each
// frame's saved slice) across placements so the steady-state DFS allocates no
// frames at all.
func (s *searcher) pushFrame() *frame {
	if len(s.frames) == cap(s.frames) {
		s.frames = append(s.frames, frame{})
	} else {
		s.frames = s.frames[:len(s.frames)+1]
	}
	fr := &s.frames[len(s.frames)-1]
	fr.main, fr.mainIDs, fr.mainWords = nil, nil, nil
	fr.advanced = false
	fr.saved = fr.saved[:0]
	return fr
}

// getBuf takes a recycled state-set buffer from the pool (or a zero one).
func (s *searcher) getBuf() setBuf {
	if n := len(s.pool); n > 0 {
		b := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return b
	}
	return setBuf{}
}

// putBuf returns a buffer to the pool, dropping its state references so the
// pool does not pin dead abstract states.
func (s *searcher) putBuf(b setBuf) {
	for i := range b.states {
		b.states[i] = nil
	}
	s.pool = append(s.pool, setBuf{states: b.states[:0], ids: b.ids[:0], words: b.words[:0]})
}

// stepAll applies label l to every state of the set and returns the deduped
// successor set in a pooled buffer; ids is the set's parallel interner-ID
// view (nil or shorter once keying is off, which routes around the cache).
// With a session step cache each (source state, label) transition is replayed
// from the cache when present — no spec call, no StateKey rendering, no
// interner probe — and computed-and-cached otherwise. Without a cache, specs
// implementing core.StepAppender are stepped through the allocation-free fast
// path into a reused scratch buffer; foreign specs fall back to Step's fresh
// slice per transition. While the specification is keyable, deduplication is
// a single bit test on the compact-ID bitset; otherwise it falls back to
// pairwise EqualAbs.
func (s *searcher) stepAll(states []core.AbsState, ids []uint32, l *core.Label) setBuf {
	buf := s.getBuf()
	if s.steps != nil && s.keyable && len(ids) == len(states) {
		for si := 0; si < len(states); si++ {
			e, hit := s.steps.get(ids[si], l)
			if !hit {
				if !s.fillStep(states[si], ids[si], l, &buf) {
					// Keying flipped off mid-transition: the buffer already
					// fell back to EqualAbs dedup; route the remaining source
					// states through the uncached path.
					s.stepUncached(&buf, states[si+1:], l)
					return buf
				}
				continue
			}
			for k := range e.states {
				s.insertKnown(&buf, e.states[k], e.ids[k])
			}
		}
		return buf
	}
	s.stepUncached(&buf, states, l)
	return buf
}

// fillStep computes the successors of one (state, label) transition, inserts
// them into buf, and — when every successor interned — stores the raw
// transition (successors in emission order, duplicates included, so a cache
// replay inserts the exact sequence the live path would) in the session step
// cache. It returns false when keying flipped off mid-transition.
func (s *searcher) fillStep(phi core.AbsState, id uint32, l *core.Label, buf *setBuf) bool {
	var raw []core.AbsState
	if s.stepper != nil {
		raw = s.stepper.StepAppend(s.stepScratch[:0], phi, l)
		s.stepScratch = raw
	} else {
		raw = s.spec.Step(phi, l)
	}
	s.fillIDs = s.fillIDs[:0]
	for _, nxt := range raw {
		nid, ok := s.internState(nxt)
		if !ok {
			// The buffer's keyed views are meaningless now; drop them and
			// re-insert everything via the EqualAbs fallback (the states
			// inserted so far were deduped consistently).
			buf.ids = buf.ids[:0]
			buf.words = buf.words[:0]
			for _, r := range raw {
				s.insert(buf, r)
			}
			return false
		}
		s.fillIDs = append(s.fillIDs, nid)
	}
	for k := range raw {
		s.insertKnown(buf, raw[k], s.fillIDs[k])
	}
	s.steps.put(id, l, raw, s.fillIDs)
	return true
}

// stepUncached is the cache-less transition loop of stepAll.
func (s *searcher) stepUncached(buf *setBuf, states []core.AbsState, l *core.Label) {
	if s.stepper != nil {
		for _, phi := range states {
			sc := s.stepper.StepAppend(s.stepScratch[:0], phi, l)
			s.stepScratch = sc
			for _, nxt := range sc {
				s.insert(buf, nxt)
			}
		}
		return
	}
	for _, phi := range states {
		for _, nxt := range s.spec.Step(phi, l) {
			s.insert(buf, nxt)
		}
	}
}

// insert adds one successor state to the buffer, deduplicating by compact-ID
// bit test or, once keying is off, by EqualAbs scan.
func (s *searcher) insert(buf *setBuf, phi core.AbsState) {
	if s.keyable {
		if id, ok := s.internState(phi); ok {
			s.insertKnown(buf, phi, id)
			return
		}
		// Keying just flipped off: the states inserted so far were deduped
		// consistently (equal IDs iff equal states); continue with EqualAbs
		// and drop the now-meaningless ID and word views.
		buf.ids = buf.ids[:0]
		buf.words = buf.words[:0]
	}
	for _, t := range buf.states {
		if t.EqualAbs(phi) {
			return
		}
	}
	buf.states = append(buf.states, phi)
}

// insertKnown adds one already-interned successor: the session ID is mapped
// to its check-local compact ID and membership is a single word test on the
// buffer's bitset. The bitset grows to exactly the word holding the new bit,
// preserving the canonical trimmed form (last word nonzero).
func (s *searcher) insertKnown(buf *setBuf, phi core.AbsState, id uint32) {
	cid := s.compact.compact(id)
	w, m := int(cid>>6), uint64(1)<<(cid&63)
	if w < len(buf.words) {
		if buf.words[w]&m != 0 {
			return
		}
		buf.words[w] |= m
	} else {
		for len(buf.words) < w {
			buf.words = append(buf.words, 0)
		}
		buf.words = append(buf.words, m)
	}
	buf.states = append(buf.states, phi)
	buf.ids = append(buf.ids, id)
}

// witness materializes the current (complete) prefix as a label sequence,
// carved from the witness arena: the slice is caller-owned (it becomes
// Result.Linearization), the chunk it came from is never recycled, and a new
// chunk is allocated only when the current one is full — so a warm session
// amortizes the per-witness allocation to ~0.
func (s *searcher) witness() []*core.Label {
	n := len(s.seq)
	if s.witMem == nil || len(s.witMem)+n > cap(s.witMem) {
		size := witnessChunkLabels
		if n > size {
			size = n
		}
		s.witMem = make([]*core.Label, 0, size)
	}
	off := len(s.witMem)
	s.witMem = s.witMem[:off+n]
	out := s.witMem[off : off+n : off+n]
	for k, i := range s.seq {
		out[k] = s.pre.labels[i]
	}
	return out
}
