package search

import (
	"fmt"

	"ralin/internal/core"
)

// status is the outcome of exploring one subtree.
type status int

const (
	// sExhausted: the subtree was fully explored and contains no witness.
	sExhausted status = iota
	// sFound: a witness was found (and recorded in the shared state).
	sFound
	// sStopped: the search was cancelled (witness found elsewhere) or the
	// node budget ran out; the subtree may contain unexplored nodes.
	sStopped
)

// pruneReason records why a prefix was rejected, kept cheap so the hot path
// does no formatting; searcher.flush renders the last one per worker.
type pruneReason struct {
	label *core.Label
	cond  string
	// query is the pending query whose justification died (condition iii
	// pruned at an update), nil otherwise.
	query *core.Label
}

func (r pruneReason) err() error {
	if r.label == nil {
		return nil
	}
	if r.query != nil {
		return fmt.Errorf("condition (%s): placing %v leaves query %v unjustifiable by its visible updates",
			r.cond, r.label, r.query)
	}
	return fmt.Errorf("condition (%s): prefix rejected at %v", r.cond, r.label)
}

// searcher is the per-worker mutable search state.
type searcher struct {
	pre    *prepared
	spec   core.Spec
	strong bool
	sh     *shared

	// indegree[i] counts the not-yet-placed visibility predecessors of
	// labels[i]; a label is in the frontier when its count is zero.
	indegree []int
	placed   bitset
	seq      []int
	// main is the set of abstract states reachable after the placed updates
	// (RA mode) or the placed prefix (strong mode).
	main []core.AbsState
	// qstates[q] is, for each unplaced query index q, the set of states of
	// its justification so far (RA mode only).
	qstates map[int][]core.AbsState

	frames []frame

	memo    *memoTable
	reason  pruneReason
	nodes   int64
	leaves  int64
	pruned  int64
	memoHit int64
}

// newSearcher builds a fresh search state over the empty prefix. memo may be
// shared across several searchers of the same worker (memo keys describe the
// full configuration, so exhausted entries are valid across root subtrees);
// nil disables memoization.
func newSearcher(pre *prepared, spec core.Spec, strong bool, memo *memoTable, sh *shared) *searcher {
	n := len(pre.labels)
	s := &searcher{
		pre:      pre,
		spec:     spec,
		strong:   strong,
		sh:       sh,
		indegree: make([]int, n),
		placed:   newBitset(n),
		seq:      make([]int, 0, n),
		main:     []core.AbsState{spec.Init()},
		memo:     memo,
	}
	for i := range s.indegree {
		s.indegree[i] = len(pre.preds[i])
	}
	if !strong {
		s.qstates = make(map[int][]core.AbsState, len(pre.queries))
		for _, q := range pre.queries {
			s.qstates[q] = []core.AbsState{spec.Init()}
		}
	}
	return s
}

// flush merges the worker-local counters and prune reason into the shared
// state; call once when the worker is done.
func (s *searcher) flush() {
	s.sh.nodes.Add(s.nodes)
	s.sh.leaves.Add(s.leaves)
	s.sh.pruned.Add(s.pruned)
	s.sh.memoHits.Add(s.memoHit)
	if err := s.reason.err(); err != nil {
		s.sh.setErr(err)
	}
}

// dfs explores the subtree under the current prefix.
func (s *searcher) dfs() status {
	if s.sh.stop.Load() {
		return sStopped
	}
	s.nodes++
	if !s.sh.chargeNode() {
		return sStopped
	}
	if len(s.seq) == len(s.pre.labels) {
		// Conditions (i)–(iii) were enforced on every prefix, so a complete
		// sequence is a witness.
		s.leaves++
		s.sh.recordWitness(s.witness())
		return sFound
	}
	key, keyed := "", false
	if s.memo != nil {
		key, keyed = s.memoKey()
		if keyed && s.memo.seen(key) {
			s.memoHit++
			return sExhausted
		}
	}
	for _, i := range s.pre.order {
		if s.indegree[i] != 0 || s.placed.get(i) {
			continue
		}
		if !s.enter(i) {
			continue
		}
		st := s.dfs()
		s.leave(i)
		if st != sExhausted {
			return st
		}
	}
	if keyed {
		// The subtree is fully explored and witness-free; any later prefix
		// reaching the same (placed-set, spec-state) configuration can skip
		// it.
		s.memo.mark(key)
	}
	return sExhausted
}

// enter tries to extend the prefix with label index i. It returns false —
// leaving the searcher unchanged — when the extended prefix is inadmissible
// or unjustifiable, and records the prune.
func (s *searcher) enter(i int) bool {
	l := s.pre.labels[i]
	if s.strong {
		next := s.stepAll(s.main, l)
		if len(next) == 0 {
			s.pruned++
			s.reason = pruneReason{label: l, cond: "prefix"}
			return false
		}
		if !l.IsQuery() {
			// Updates (and query-updates, which strong mode treats as
			// updates) advance the prefix state; queries only have to be
			// admitted at it.
			s.pushFrame(frame{main: s.main})
			s.main = next
		} else {
			s.pushFrame(frame{main: s.main})
		}
	} else if l.IsUpdate() {
		next := s.stepAll(s.main, l)
		if len(next) == 0 {
			s.pruned++
			s.reason = pruneReason{label: l, cond: "ii"}
			return false
		}
		// Advance every pending query this update is visible to; a dead
		// justification dooms every completion of the prefix, so prune now
		// instead of when the query is placed.
		fr := frame{main: s.main}
		var stepped [][]core.AbsState
		for _, q := range s.pre.affected[i] {
			if s.placed.get(q) {
				continue
			}
			nq := s.stepAll(s.qstates[q], l)
			if len(nq) == 0 {
				s.pruned++
				s.reason = pruneReason{label: l, cond: "iii", query: s.pre.labels[q]}
				return false
			}
			fr.saved = append(fr.saved, savedQuery{q: q, states: s.qstates[q]})
			stepped = append(stepped, nq)
		}
		for k, sv := range fr.saved {
			s.qstates[sv.q] = stepped[k]
		}
		s.pushFrame(fr)
		s.main = next
	} else {
		// Queries: the justification (visible updates in placed order,
		// then the query) must be admitted. All visible updates are
		// necessarily placed already, so qstates[i] is final.
		if len(s.stepAll(s.qstates[i], l)) == 0 {
			s.pruned++
			s.reason = pruneReason{label: l, cond: "iii", query: nil}
			return false
		}
		s.pushFrame(frame{main: s.main})
	}
	s.placed.set(i)
	s.seq = append(s.seq, i)
	for _, j := range s.pre.succs[i] {
		s.indegree[j]--
	}
	return true
}

// leave undoes enter(i).
func (s *searcher) leave(i int) {
	for _, j := range s.pre.succs[i] {
		s.indegree[j]++
	}
	s.seq = s.seq[:len(s.seq)-1]
	s.placed.clear(i)
	fr := s.popFrame()
	s.main = fr.main
	for _, sv := range fr.saved {
		s.qstates[sv.q] = sv.states
	}
}

// frame is the undo record of one placement. State-set slices are never
// mutated in place (stepAll builds fresh ones), so saving the old slice
// headers restores them exactly.
type frame struct {
	main  []core.AbsState
	saved []savedQuery
}

type savedQuery struct {
	q      int
	states []core.AbsState
}

func (s *searcher) pushFrame(f frame) { s.frames = append(s.frames, f) }

func (s *searcher) popFrame() frame {
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	return f
}

// stepAll applies label l to every state of the set and dedups the result.
func (s *searcher) stepAll(states []core.AbsState, l *core.Label) []core.AbsState {
	var next []core.AbsState
	for _, phi := range states {
		next = append(next, s.spec.Step(phi, l)...)
	}
	return core.DedupStates(next)
}

// witness materializes the current (complete) prefix as a label sequence.
func (s *searcher) witness() []*core.Label {
	out := make([]*core.Label, len(s.seq))
	for k, i := range s.seq {
		out[k] = s.pre.labels[i]
	}
	return out
}
