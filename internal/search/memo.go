package search

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// bitset is a fixed-capacity bit vector over label indices; histories can
// exceed 64 labels after rewriting, so one word is not enough in general.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }

// memoShardCount is the number of independent locks (and maps) the shared
// memo table is striped across. 64 stripes keep the collision probability of
// two workers hitting the same lock at the same time negligible for the
// worker counts the engine runs (≤ GOMAXPROCS).
const memoShardCount = 64

// memoTable is the shared, lock-striped memoization table of one search: the
// set of (placed-set, spec-state) configurations some worker has started
// exploring. All workers share one table, so a configuration claimed — and,
// since a claimant's DFS only returns after exhausting its subtree, sooner or
// later fully explored — by any worker prunes every other worker.
//
// Claims are made on node entry ("claim-on-entry"), not on subtree
// completion. This is sound because a configuration determines its entire
// subtree: the first claimant explores it to exhaustion (or the search stops
// globally, in which case the overall result is a witness or a truncation and
// memo contents are moot; donated sub-branches are drained by the work queue
// before the search can terminate), so any later visitor of an equal
// configuration may skip immediately. Sequentially this is equivalent to
// marking on completion — a DFS cannot re-reach a configuration that is still
// on its own stack, because the placed set grows strictly with depth — while
// in parallel it removes the window in which two workers duplicate a subtree
// that neither has finished.
//
// In debug mode (core.CheckOptions.DebugMemo) every claimed key additionally
// stores the full word tuple it was hashed from, and a duplicate key arriving
// with a different tuple — a genuine 128-bit hash collision, which would
// silently prune a subtree that was never explored — panics instead of
// pruning. Debug mode also carries each configuration's legacy memo key (the
// pre-bitset hash over sorted interned-ID walks) and asserts the two key
// schemes induce the same equality on configurations: a legacy key mapping to
// two distinct word-folded keys means the bitset representation split a
// configuration the ID walk considered equal (or a legacy 128-bit collision),
// and a word-folded key carrying two distinct legacy keys is the converse.
// This turns the ~2⁻⁶⁴ hash-compaction risk — and the old-key/new-key
// agreement during the representation transition — into checked invariants
// for differential and soak runs, at the cost of one tuple allocation and two
// map insertions per memoized node.
type memoTable struct {
	// debug is set by Run from the check's options before any worker touches
	// the table, and is only read afterwards.
	debug bool
	// seq marks a single-worker search: every claim routes through stripe 0
	// with no locking — the striping exists only for worker concurrency, and
	// one lazily-built map allocates far less than 64. Set by Run per check,
	// cleared by reset.
	seq bool
	// live, when non-nil, points at the session's live memo-entry counter:
	// claim increments it per stored entry and reset hands the table's
	// entries back. Session.getMemo sets it only when a memo budget
	// (Budget.MaxMemoBytes) is configured, so the unbudgeted claim path pays
	// nothing beyond a nil check.
	live   *atomic.Int64
	shards [memoShardCount]memoShard

	// dbgMu guards the debug-only dual-key maps below. They live at table
	// level (not per shard) because the legacy-key direction must see every
	// stripe: two word-folded keys sharing one legacy key land in different
	// shards.
	dbgMu sync.Mutex
	// dbgLegacy maps each claimed word-folded key to the legacy key of its
	// configuration; dbgNew is the inverse direction. Both nil outside debug
	// mode.
	dbgLegacy map[key128]key128
	dbgNew    map[key128]key128
}

type memoShard struct {
	mu sync.Mutex
	// seen is built lazily on the shard's first claim, so a sequential check
	// (which only ever touches stripe 0) allocates one map, not 64, and a
	// parallel check allocates only the stripes its keys actually hit.
	seen map[key128]struct{}
	// tuples holds the full hashed word sequence per key in debug mode
	// (nil otherwise).
	tuples map[key128][]uint64
	// count tracks len(seen) under mu, so reset can return the table's total
	// to the session's memo-budget counter without walking the maps.
	count int
	// Pad the 32 bytes of mutex + two map headers + count to a full 64-byte
	// cache line so neighboring stripes don't false-share.
	_ [32]byte
}

func newMemoTable() *memoTable { return &memoTable{} }

// reset clears every stripe while keeping the maps' allocated buckets, so a
// session's memo arena allocates its shard maps once per batch instead of
// once per history. Keys mix per-history label indices, so stale entries must
// never survive into the next check — clearing, not reuse of contents, is the
// point. Must not be called while a search is still using the table.
func (m *memoTable) reset() {
	m.debug = false
	m.seq = false
	var drained int64
	for i := range m.shards {
		drained += int64(m.shards[i].count)
		m.shards[i].count = 0
		clear(m.shards[i].seen)
		clear(m.shards[i].tuples)
	}
	clear(m.dbgLegacy)
	clear(m.dbgNew)
	if m.live != nil {
		m.live.Add(-drained)
		m.live = nil
	}
}

// claim records the configuration key and reports whether this call was the
// first to do so. A false return means an equal configuration is already
// being (or has been) explored elsewhere and the caller must skip its
// subtree. tuple is the word sequence the key was hashed from and legacy the
// configuration's legacy (sorted-ID walk) key; both are ignored outside debug
// mode, where a duplicate key with a non-equal tuple is a hash collision and
// panics, and a violated key-scheme bijection (see the type comment) panics
// likewise.
func (m *memoTable) claim(k key128, tuple []uint64, legacy key128) bool {
	sh := &m.shards[0]
	if !m.seq {
		sh = &m.shards[k.lo%memoShardCount]
		sh.mu.Lock()
	}
	dup := false
	if sh.seen == nil {
		sh.seen = make(map[key128]struct{}, 64)
	} else {
		_, dup = sh.seen[k]
	}
	if !dup {
		sh.seen[k] = struct{}{}
		sh.count++
		if m.debug {
			if sh.tuples == nil {
				sh.tuples = make(map[key128][]uint64)
			}
			sh.tuples[k] = append([]uint64(nil), tuple...)
		}
	} else if m.debug {
		if stored, ok := sh.tuples[k]; ok && !slices.Equal(stored, tuple) {
			if !m.seq {
				sh.mu.Unlock()
			}
			panic(fmt.Sprintf(
				"search: 128-bit memo key collision: key %016x%016x first claimed for configuration %v, re-claimed for distinct configuration %v",
				k.hi, k.lo, stored, tuple))
		}
	}
	if !m.seq {
		sh.mu.Unlock()
	}
	if m.debug {
		m.checkDualKey(k, legacy)
	}
	if !dup && m.live != nil {
		m.live.Add(1)
	}
	return !dup
}

// checkDualKey asserts the bijection between the word-folded and the legacy
// key of every configuration seen so far (debug mode only).
func (m *memoTable) checkDualKey(k, legacy key128) {
	m.dbgMu.Lock()
	defer m.dbgMu.Unlock()
	if m.dbgLegacy == nil {
		m.dbgLegacy = make(map[key128]key128)
		m.dbgNew = make(map[key128]key128)
	}
	if prev, ok := m.dbgLegacy[k]; ok {
		if prev != legacy {
			panic(fmt.Sprintf(
				"search: word-folded memo key %016x%016x claimed for two configurations with distinct legacy keys %016x%016x and %016x%016x",
				k.hi, k.lo, prev.hi, prev.lo, legacy.hi, legacy.lo))
		}
	} else {
		m.dbgLegacy[k] = legacy
	}
	if prev, ok := m.dbgNew[legacy]; ok {
		if prev != k {
			panic(fmt.Sprintf(
				"search: legacy memo key %016x%016x maps to two distinct word-folded keys %016x%016x and %016x%016x — the bitset representation split a configuration the ID walk considered equal",
				legacy.hi, legacy.lo, prev.hi, prev.lo, k.hi, k.lo))
		}
	} else {
		m.dbgNew[legacy] = k
	}
}

// memoKey hashes the current search configuration into a fixed-size 128-bit
// key: the placed-label bitset, the compact-ID bitset of the main state set,
// and — in RA mode — the compact-ID bitset of every pending query's
// justification set. The future subtree is a function of exactly these (the
// placed set determines the remaining labels and their frontier structure;
// the state sets determine every further admissibility check), so pruning on
// a repeated key is sound up to hash collision. The bitsets are maintained in
// canonical trimmed form by insertKnown, so equal sets fold to equal word
// sequences — the key is whole-word mixing over data that already exists, a
// word per 64 states where the pre-bitset key mixed one word per state.
//
// The second return value is false when memoization is off: the table is
// disabled, or some reachable state does not implement core.StateKeyer (the
// shared unkeyable flag, set by the insert path, covers every worker).
//
// In debug mode the walk additionally records the exact word sequence into
// s.keyTuple and the legacy (sorted-ID walk) key into s.legacyKey (claim
// stores and cross-checks both); the hot path keeps its append-free loop.
func (s *searcher) memoKey() (key128, bool) {
	if s.memo == nil || s.sh.unkeyable.Load() {
		return key128{}, false
	}
	if s.memo.debug {
		return s.memoKeyDebug()
	}
	h := newHash128()
	for _, w := range s.placed {
		h.mix(w)
	}
	h.mix(uint64(len(s.mainWords)))
	for _, w := range s.mainWords {
		h.mix(w)
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			words := s.qwords[q]
			h.mix(uint64(q)<<32 | uint64(len(words)))
			for _, w := range words {
				h.mix(w)
			}
		}
	}
	return h.sum(), true
}

// memoKeyDebug is memoKey with the hashed words captured in s.keyTuple and
// the legacy key recomputed into s.legacyKey. The tuple walk must stay in
// lockstep with memoKey: the tuple is the collision-check witness for exactly
// the words the hash consumed.
func (s *searcher) memoKeyDebug() (key128, bool) {
	h := newHash128()
	t := s.keyTuple[:0]
	for _, w := range s.placed {
		h.mix(w)
		t = append(t, w)
	}
	w0 := uint64(len(s.mainWords))
	h.mix(w0)
	t = append(t, w0)
	for _, w := range s.mainWords {
		h.mix(w)
		t = append(t, w)
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			words := s.qwords[q]
			wq := uint64(q)<<32 | uint64(len(words))
			h.mix(wq)
			t = append(t, wq)
			for _, w := range words {
				h.mix(w)
				t = append(t, w)
			}
		}
	}
	s.keyTuple = t
	s.legacyKey = s.legacyMemoKey()
	return h.sum(), true
}

// legacyMemoKey recomputes the pre-bitset memo key — the hash over the
// sorted interned-ID walk of every state set — so debug mode can assert that
// the word-folded key and the legacy key agree on configuration equality
// (memoTable.checkDualKey). The set IDs are kept in arrival order now, so the
// walk sorts a scratch copy per set; this runs in debug mode only.
func (s *searcher) legacyMemoKey() key128 {
	h := newHash128()
	for _, w := range s.placed {
		h.mix(w)
	}
	h.mix(uint64(len(s.mainIDs)))
	for _, id := range s.sortedIDs(s.mainIDs) {
		h.mixID(id)
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			ids := s.qids[q]
			h.mix(uint64(q)<<32 | uint64(len(ids)))
			for _, id := range s.sortedIDs(ids) {
				h.mixID(id)
			}
		}
	}
	return h.sum()
}

// sortedIDs copies ids into the debug scratch and sorts it ascending — the
// canonical order the legacy memo key hashed. The scratch is reused per call;
// callers consume the result before calling again.
func (s *searcher) sortedIDs(ids []uint32) []uint32 {
	s.dbgIDs = append(s.dbgIDs[:0], ids...)
	slices.Sort(s.dbgIDs)
	return s.dbgIDs
}
