package search

import (
	"sort"
	"strconv"
	"strings"

	"ralin/internal/core"
)

// bitset is a fixed-capacity bit vector over label indices; histories can
// exceed 64 labels after rewriting, so one word is not enough in general.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }

// memoTable records (placed-set, spec-state) configurations whose subtrees
// were fully explored without finding a witness. Each worker owns one table:
// sharing would need locking on the hot path, and the top-level branches
// explore mostly disjoint regions anyway.
type memoTable struct {
	seenSet map[string]struct{}
	// keyable flips to false permanently once a state without a canonical
	// key is encountered; memoization is then disabled for this worker.
	keyable bool
}

func newMemoTable() *memoTable {
	return &memoTable{seenSet: make(map[string]struct{}), keyable: true}
}

func (m *memoTable) seen(key string) bool {
	_, ok := m.seenSet[key]
	return ok
}

func (m *memoTable) mark(key string) { m.seenSet[key] = struct{}{} }

// memoKey renders the current search configuration: the placed-label set,
// the main state set, and — in RA mode — the justification state set of
// every pending query. The future subtree is a function of exactly these
// (the placed set determines the remaining labels and their frontier
// structure; the state sets determine every further admissibility check), so
// pruning on a repeated key is sound. The second return value is false when
// some state does not expose a canonical key, in which case memoization is
// disabled.
func (s *searcher) memoKey() (string, bool) {
	if !s.memo.keyable {
		return "", false
	}
	var b strings.Builder
	for _, w := range s.placed {
		b.WriteString(strconv.FormatUint(w, 16))
		b.WriteByte('.')
	}
	b.WriteByte('|')
	if !writeStateSet(&b, s.main) {
		s.memo.keyable = false
		return "", false
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			b.WriteByte('q')
			b.WriteString(strconv.Itoa(q))
			b.WriteByte(':')
			if !writeStateSet(&b, s.qstates[q]) {
				s.memo.keyable = false
				return "", false
			}
		}
	}
	return b.String(), true
}

// writeStateSet appends a canonical rendering of a state set (sorted keys) to
// b, returning false when some state is not keyable.
func writeStateSet(b *strings.Builder, states []core.AbsState) bool {
	keys := make([]string, len(states))
	for i, st := range states {
		keyer, ok := st.(core.StateKeyer)
		if !ok {
			return false
		}
		key, ok := keyer.StateKey()
		if !ok {
			return false
		}
		keys[i] = key
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(strconv.Quote(k))
		b.WriteByte(';')
	}
	b.WriteByte('|')
	return true
}
