package search

import "sync"

// bitset is a fixed-capacity bit vector over label indices; histories can
// exceed 64 labels after rewriting, so one word is not enough in general.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }

// memoShardCount is the number of independent locks (and maps) the shared
// memo table is striped across. 64 stripes keep the collision probability of
// two workers hitting the same lock at the same time negligible for the
// worker counts the engine runs (≤ GOMAXPROCS).
const memoShardCount = 64

// memoTable is the shared, lock-striped memoization table of one search: the
// set of (placed-set, spec-state) configurations some worker has started
// exploring. All workers share one table, so a configuration claimed — and,
// since a claimant's DFS only returns after exhausting its subtree, sooner or
// later fully explored — by any worker prunes every other worker.
//
// Claims are made on node entry ("claim-on-entry"), not on subtree
// completion. This is sound because a configuration determines its entire
// subtree: the first claimant explores it to exhaustion (or the search stops
// globally, in which case the overall result is a witness or a truncation and
// memo contents are moot; donated sub-branches are drained by the work queue
// before the search can terminate), so any later visitor of an equal
// configuration may skip immediately. Sequentially this is equivalent to
// marking on completion — a DFS cannot re-reach a configuration that is still
// on its own stack, because the placed set grows strictly with depth — while
// in parallel it removes the window in which two workers duplicate a subtree
// that neither has finished.
type memoTable struct {
	shards [memoShardCount]memoShard
}

type memoShard struct {
	mu   sync.Mutex
	seen map[key128]struct{}
	// Pad the 16 bytes of mutex + map header to a full 64-byte cache line so
	// neighboring stripes don't false-share.
	_ [48]byte
}

func newMemoTable() *memoTable {
	m := &memoTable{}
	for i := range m.shards {
		m.shards[i].seen = make(map[key128]struct{})
	}
	return m
}

// reset clears every stripe while keeping the maps' allocated buckets, so a
// session's memo arena allocates its shard maps once per batch instead of
// once per history. Keys mix per-history label indices, so stale entries must
// never survive into the next check — clearing, not reuse of contents, is the
// point. Must not be called while a search is still using the table.
func (m *memoTable) reset() {
	for i := range m.shards {
		clear(m.shards[i].seen)
	}
}

// claim records the configuration key and reports whether this call was the
// first to do so. A false return means an equal configuration is already
// being (or has been) explored elsewhere and the caller must skip its
// subtree.
func (m *memoTable) claim(k key128) bool {
	sh := &m.shards[k.lo%memoShardCount]
	sh.mu.Lock()
	_, dup := sh.seen[k]
	if !dup {
		sh.seen[k] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// memoKey hashes the current search configuration into a fixed-size 128-bit
// key: the placed-label bitset, the interned IDs of the main state set, and —
// in RA mode — the interned IDs of every pending query's justification set.
// The future subtree is a function of exactly these (the placed set
// determines the remaining labels and their frontier structure; the state
// sets determine every further admissibility check), so pruning on a repeated
// key is sound up to hash collision. The ID slices are maintained sorted by
// stepAll, so no per-node sorting, quoting or string building happens here —
// the key is a pass of integer mixing over data that already exists.
//
// The second return value is false when memoization is off: the table is
// disabled, or some reachable state does not implement core.StateKeyer (the
// shared unkeyable flag, set by stepAll, covers every worker).
func (s *searcher) memoKey() (key128, bool) {
	if s.memo == nil || s.sh.unkeyable.Load() {
		return key128{}, false
	}
	h := newHash128()
	for _, w := range s.placed {
		h.mix(w)
	}
	h.mix(uint64(len(s.mainIDs)))
	for _, id := range s.mainIDs {
		h.mixID(id)
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			ids := s.qids[q]
			h.mix(uint64(q)<<32 | uint64(len(ids)))
			for _, id := range ids {
				h.mixID(id)
			}
		}
	}
	return h.sum(), true
}
