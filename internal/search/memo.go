package search

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// bitset is a fixed-capacity bit vector over label indices; histories can
// exceed 64 labels after rewriting, so one word is not enough in general.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }

// memoShardCount is the number of independent locks (and maps) the shared
// memo table is striped across. 64 stripes keep the collision probability of
// two workers hitting the same lock at the same time negligible for the
// worker counts the engine runs (≤ GOMAXPROCS).
const memoShardCount = 64

// memoTable is the shared, lock-striped memoization table of one search: the
// set of (placed-set, spec-state) configurations some worker has started
// exploring. All workers share one table, so a configuration claimed — and,
// since a claimant's DFS only returns after exhausting its subtree, sooner or
// later fully explored — by any worker prunes every other worker.
//
// Claims are made on node entry ("claim-on-entry"), not on subtree
// completion. This is sound because a configuration determines its entire
// subtree: the first claimant explores it to exhaustion (or the search stops
// globally, in which case the overall result is a witness or a truncation and
// memo contents are moot; donated sub-branches are drained by the work queue
// before the search can terminate), so any later visitor of an equal
// configuration may skip immediately. Sequentially this is equivalent to
// marking on completion — a DFS cannot re-reach a configuration that is still
// on its own stack, because the placed set grows strictly with depth — while
// in parallel it removes the window in which two workers duplicate a subtree
// that neither has finished.
// In debug mode (core.CheckOptions.DebugMemo) every claimed key additionally
// stores the full word tuple it was hashed from, and a duplicate key arriving
// with a different tuple — a genuine 128-bit hash collision, which would
// silently prune a subtree that was never explored — panics instead of
// pruning. This turns the ~2⁻⁶⁴ hash-compaction risk into a checked
// invariant for differential and soak runs, at the cost of one tuple
// allocation per memoized node.
type memoTable struct {
	// debug is set by Run from the check's options before any worker touches
	// the table, and is only read afterwards.
	debug bool
	// live, when non-nil, points at the session's live memo-entry counter:
	// claim increments it per stored entry and reset hands the table's
	// entries back. Session.getMemo sets it only when a memo budget
	// (Budget.MaxMemoBytes) is configured, so the unbudgeted claim path pays
	// nothing beyond a nil check.
	live   *atomic.Int64
	shards [memoShardCount]memoShard
}

type memoShard struct {
	mu   sync.Mutex
	seen map[key128]struct{}
	// tuples holds the full hashed word sequence per key in debug mode
	// (nil otherwise).
	tuples map[key128][]uint64
	// count tracks len(seen) under mu, so reset can return the table's total
	// to the session's memo-budget counter without walking the maps.
	count int
	// Pad the 32 bytes of mutex + two map headers + count to a full 64-byte
	// cache line so neighboring stripes don't false-share.
	_ [32]byte
}

func newMemoTable() *memoTable {
	m := &memoTable{}
	for i := range m.shards {
		m.shards[i].seen = make(map[key128]struct{})
	}
	return m
}

// reset clears every stripe while keeping the maps' allocated buckets, so a
// session's memo arena allocates its shard maps once per batch instead of
// once per history. Keys mix per-history label indices, so stale entries must
// never survive into the next check — clearing, not reuse of contents, is the
// point. Must not be called while a search is still using the table.
func (m *memoTable) reset() {
	m.debug = false
	var drained int64
	for i := range m.shards {
		drained += int64(m.shards[i].count)
		m.shards[i].count = 0
		clear(m.shards[i].seen)
		clear(m.shards[i].tuples)
	}
	if m.live != nil {
		m.live.Add(-drained)
		m.live = nil
	}
}

// claim records the configuration key and reports whether this call was the
// first to do so. A false return means an equal configuration is already
// being (or has been) explored elsewhere and the caller must skip its
// subtree. tuple is the word sequence the key was hashed from; it is ignored
// outside debug mode, where a duplicate key with a non-equal tuple is a hash
// collision and panics.
func (m *memoTable) claim(k key128, tuple []uint64) bool {
	sh := &m.shards[k.lo%memoShardCount]
	sh.mu.Lock()
	_, dup := sh.seen[k]
	if !dup {
		sh.seen[k] = struct{}{}
		sh.count++
		if m.debug {
			if sh.tuples == nil {
				sh.tuples = make(map[key128][]uint64)
			}
			sh.tuples[k] = append([]uint64(nil), tuple...)
		}
	} else if m.debug {
		if stored, ok := sh.tuples[k]; ok && !slices.Equal(stored, tuple) {
			sh.mu.Unlock()
			panic(fmt.Sprintf(
				"search: 128-bit memo key collision: key %016x%016x first claimed for configuration %v, re-claimed for distinct configuration %v",
				k.hi, k.lo, stored, tuple))
		}
	}
	sh.mu.Unlock()
	if !dup && m.live != nil {
		m.live.Add(1)
	}
	return !dup
}

// memoKey hashes the current search configuration into a fixed-size 128-bit
// key: the placed-label bitset, the interned IDs of the main state set, and —
// in RA mode — the interned IDs of every pending query's justification set.
// The future subtree is a function of exactly these (the placed set
// determines the remaining labels and their frontier structure; the state
// sets determine every further admissibility check), so pruning on a repeated
// key is sound up to hash collision. The ID slices are maintained sorted by
// stepAll, so no per-node sorting, quoting or string building happens here —
// the key is a pass of integer mixing over data that already exists.
//
// The second return value is false when memoization is off: the table is
// disabled, or some reachable state does not implement core.StateKeyer (the
// shared unkeyable flag, set by stepAll, covers every worker).
//
// In debug mode the walk additionally records the exact word sequence into
// s.keyTuple (claim stores it next to the key); the hot path keeps its
// append-free loop.
func (s *searcher) memoKey() (key128, bool) {
	if s.memo == nil || s.sh.unkeyable.Load() {
		return key128{}, false
	}
	if s.memo.debug {
		return s.memoKeyDebug()
	}
	h := newHash128()
	for _, w := range s.placed {
		h.mix(w)
	}
	h.mix(uint64(len(s.mainIDs)))
	for _, id := range s.mainIDs {
		h.mixID(id)
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			ids := s.qids[q]
			h.mix(uint64(q)<<32 | uint64(len(ids)))
			for _, id := range ids {
				h.mixID(id)
			}
		}
	}
	return h.sum(), true
}

// memoKeyDebug is memoKey with the hashed words captured in s.keyTuple. The
// two walks must stay in lockstep: the tuple is the collision-check witness
// for exactly the words the hash consumed.
func (s *searcher) memoKeyDebug() (key128, bool) {
	h := newHash128()
	t := s.keyTuple[:0]
	for _, w := range s.placed {
		h.mix(w)
		t = append(t, w)
	}
	w := uint64(len(s.mainIDs))
	h.mix(w)
	t = append(t, w)
	for _, id := range s.mainIDs {
		h.mixID(id)
		t = append(t, uint64(id))
	}
	if !s.strong {
		for _, q := range s.pre.queries {
			if s.placed.get(q) {
				continue
			}
			ids := s.qids[q]
			w := uint64(q)<<32 | uint64(len(ids))
			h.mix(w)
			t = append(t, w)
			for _, id := range ids {
				h.mixID(id)
				t = append(t, uint64(id))
			}
		}
	}
	s.keyTuple = t
	return h.sum(), true
}
