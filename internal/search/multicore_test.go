package search

import (
	"os"
	"runtime"
	"testing"
	"time"

	"ralin/internal/core"
	"ralin/internal/spec"
)

// TestWorkStealingMulticoreSpeedup is the CI multi-core scaling assertion for
// the work-stealing scheduler: on the flagship refutation (every node of the
// search space must be visited, so the work is real and the memo table keeps
// parallel node counts at the sequential level) a parallel search must
// actually steal branches and must not be slower than the sequential search.
//
// Wall-clock assertions are meaningless on single-core runners (where Steals
// is structurally 0) and flaky on loaded interactive machines, so the test
// only runs when RALIN_MULTICORE_BENCH=1 — the CI multicore job sets it.
// Timings are best-of-5 to shave scheduler noise.
func TestWorkStealingMulticoreSpeedup(t *testing.T) {
	if os.Getenv("RALIN_MULTICORE_BENCH") == "" {
		t.Skip("set RALIN_MULTICORE_BENCH=1 to run the wall-clock scaling assertion")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs at least 2 CPUs")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	// k=10 scales the flagship refutation up (~10x the k=7 benchmark
	// history, low-single-digit milliseconds sequential) so each worker
	// holds a subtree worth stealing and scheduling noise is small relative
	// to the measured work.
	h := concurrentIncsHistory(10, 99)
	measure := func(par int) (time.Duration, core.EngineOutcome) {
		var best time.Duration
		var out core.EngineOutcome
		for i := 0; i < 5; i++ {
			start := time.Now()
			o := Run(h, spec.Counter{}, false, core.CheckOptions{Parallelism: par})
			d := time.Since(start)
			if o.OK || !o.Complete {
				t.Fatalf("parallelism=%d: history must be refuted definitively: %+v", par, o)
			}
			if best == 0 || d < best {
				best, out = d, o
			}
		}
		return best, out
	}
	seqT, seqOut := measure(1)
	parT, parOut := measure(workers)
	if parOut.Steals == 0 {
		t.Fatalf("a %d-worker refutation must steal donated branches: %+v", workers, parOut)
	}
	// 10% tolerance: "not slower than sequential" should not hard-fail CI on
	// a noisy shared runner's scheduling jitter.
	if parT > seqT+seqT/10 {
		t.Fatalf("parallel refutation slower than sequential: %v with %d workers vs %v sequential (nodes %d vs %d)",
			parT, workers, seqT, parOut.Nodes, seqOut.Nodes)
	}
	t.Logf("sequential %v (%d nodes); %d workers %v (%d nodes, %d steals): %.2fx",
		seqT, seqOut.Nodes, workers, parT, parOut.Nodes, parOut.Steals,
		float64(seqT)/float64(parT))
}
