package verify

import (
	"fmt"
	"strings"
	"testing"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/crdt/counter"
	"ralin/internal/crdt/registry"
	"ralin/internal/runtime"
	"ralin/internal/spec"
)

func quickOptions() Options {
	return Options{Seed: 7, Trials: 6, Ops: 8, Replicas: 3, Elems: []string{"a", "b"}, MaxStates: 25}
}

func TestCheckOpBasedAllFig12OpTypes(t *testing.T) {
	for _, d := range registry.Fig12() {
		if d.Class != crdt.OpBased {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			report := CheckOpBased(d, quickOptions())
			if !report.OK() {
				t.Fatalf("proof obligations failed:\n%s", report)
			}
			for _, o := range report.Obligations {
				if o.Checked == 0 && !strings.Contains(o.Name, "generators") {
					t.Fatalf("obligation %q checked nothing", o.Name)
				}
			}
		})
	}
}

func TestCheckStateBasedAllFig12SBTypes(t *testing.T) {
	for _, d := range registry.Fig12() {
		if d.Class != crdt.StateBased {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			report := CheckStateBased(d, quickOptions())
			if !report.OK() {
				t.Fatalf("proof obligations failed:\n%s", report)
			}
			if _, ok := report.Find("Prop5 (local effector = local step)"); !ok {
				t.Fatal("Prop5 missing from the report")
			}
		})
	}
}

func TestCheckOpBasedRejectsStateBasedDescriptor(t *testing.T) {
	for _, d := range registry.Fig12() {
		if d.Class == crdt.StateBased {
			if r := CheckOpBased(d, quickOptions()); r.OK() {
				t.Fatalf("%s: CheckOpBased must reject a state-based descriptor", d.Name)
			}
			break
		}
	}
}

func TestCheckStateBasedRejectsOpBasedDescriptor(t *testing.T) {
	if r := CheckStateBased(counter.Descriptor(), quickOptions()); r.OK() {
		t.Fatal("CheckStateBased must reject an operation-based descriptor")
	}
}

// brokenCounter is a deliberately wrong op-based counter whose inc effector is
// not simulated by Spec(Counter): it adds two instead of one. The Refinement
// obligation must catch it.
type brokenCounter struct{ counter.Type }

func (brokenCounter) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	if method == "inc" {
		return nil, runtime.EffectorFunc{Name: "eff-inc2", F: func(x runtime.State) runtime.State {
			return x.(counter.State) + 2
		}}, nil
	}
	return counter.Type{}.Generate(s, method, args, ts)
}

func TestRefinementCatchesWrongEffector(t *testing.T) {
	d := counter.Descriptor()
	d.OpType = brokenCounter{}
	report := CheckOpBased(d, quickOptions())
	if report.OK() {
		t.Fatal("broken counter must fail verification")
	}
	o, ok := report.Find("Refinement (effectors)")
	if !ok || o.OK() {
		t.Fatalf("the effector refinement obligation must be the one failing:\n%s", report)
	}
}

// nonCommutativeType is a deliberately wrong op-based register whose writes
// last-write-wins by *arrival order*, so concurrent effectors do not commute
// and replicas diverge.
type nonCommutativeType struct{}

type ncState string

func (s ncState) CloneState() runtime.State       { return s }
func (s ncState) EqualState(o runtime.State) bool { c, ok := o.(ncState); return ok && c == s }
func (s ncState) String() string                  { return string(s) }

func (nonCommutativeType) Name() string { return "ArrivalOrderRegister" }
func (nonCommutativeType) Methods() []runtime.MethodInfo {
	return []runtime.MethodInfo{
		{Name: "write", Kind: core.KindUpdate},
		{Name: "read", Kind: core.KindQuery},
	}
}
func (nonCommutativeType) Init() runtime.State { return ncState("") }
func (nonCommutativeType) Generate(s runtime.State, method string, args []core.Value, ts clock.Timestamp) (core.Value, runtime.Effector, error) {
	switch method {
	case "write":
		v := args[0].(string)
		return nil, runtime.EffectorFunc{Name: "eff-write", F: func(runtime.State) runtime.State {
			return ncState(v)
		}}, nil
	case "read":
		return string(s.(ncState)), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown method %q", method)
	}
}

func TestCommutativityCatchesArrivalOrderRegister(t *testing.T) {
	d := crdt.Descriptor{
		Name:   "ArrivalOrderRegister",
		Source: "verify test",
		Class:  crdt.OpBased,
		Lin:    crdt.ExecutionOrder,
		OpType: nonCommutativeType{},
		Spec:   spec.Register{},
		Abs:    func(s runtime.State) core.AbsState { return spec.RegisterState(s.(ncState)) },
	}
	// Two concurrent writes form the smallest witness: their effectors do not
	// commute and, after full delivery, the replicas disagree.
	sys := runtime.NewSystem(d.OpType, runtime.Config{Replicas: 2, RecordEvents: true})
	sys.MustInvoke(0, "write", "left")
	sys.MustInvoke(1, "write", "right")
	if err := sys.DeliverAll(); err != nil {
		t.Fatal(err)
	}
	commutativity := newObligation("Commutativity")
	convergence := newObligation("Convergence")
	convergence.check(sys.Converged(), "replicas diverged")
	checkOpCommutativity(d, sys, sys.History(), sys.Events(), commutativity)
	report := Report{CRDT: d.Name, Obligations: []Obligation{commutativity.build(), convergence.build()}}
	if report.OK() {
		t.Fatalf("arrival-order register must fail verification:\n%s", report)
	}
	c, _ := report.Find("Commutativity")
	v, _ := report.Find("Convergence")
	if c.OK() && v.OK() {
		t.Fatalf("expected commutativity or convergence to fail:\n%s", report)
	}
}

func TestObligationAndReportRendering(t *testing.T) {
	ob := newObligation("Example")
	ob.check(true, "never shown")
	ob.check(false, "bad thing %d", 7)
	built := ob.build()
	if built.OK() || built.Checked != 2 {
		t.Fatalf("builder wrong: %+v", built)
	}
	if !strings.Contains(built.String(), "FAILED") || !strings.Contains(built.String(), "bad thing 7") {
		t.Fatalf("rendering wrong: %s", built)
	}
	okOb := Obligation{Name: "Fine", Checked: 3}
	if !strings.Contains(okOb.String(), "ok") {
		t.Fatal("ok rendering wrong")
	}
	rep := Report{CRDT: "X", Obligations: []Obligation{okOb, built}}
	if rep.OK() {
		t.Fatal("report with a failed obligation must not be OK")
	}
	if !strings.Contains(rep.String(), "X:") || !strings.Contains(rep.String(), "Example") {
		t.Fatalf("report rendering wrong: %s", rep)
	}
	if _, ok := rep.Find("Missing"); ok {
		t.Fatal("Find must miss unknown obligations")
	}
}

func TestViolationListIsBounded(t *testing.T) {
	ob := newObligation("Bounded")
	for i := 0; i < 100; i++ {
		ob.check(false, "violation %d", i)
	}
	built := ob.build()
	if built.Checked != 100 {
		t.Fatalf("checked count wrong: %d", built.Checked)
	}
	if len(built.Violations) > 11 {
		t.Fatalf("violation list must stay bounded, got %d", len(built.Violations))
	}
}

func TestDefaultOptionsFill(t *testing.T) {
	var o Options
	o.fill()
	if o.Trials == 0 || o.Ops == 0 || o.Replicas == 0 || len(o.Elems) == 0 || o.MaxStates == 0 {
		t.Fatalf("fill left zero values: %+v", o)
	}
	d := DefaultOptions()
	if d.Trials == 0 || d.MaxStates == 0 {
		t.Fatal("DefaultOptions wrong")
	}
}
