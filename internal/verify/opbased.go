package verify

import (
	"fmt"
	"math/rand"

	"ralin/internal/clock"
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
)

// CheckOpBased checks the Section 4 proof obligations (Commutativity,
// Refinement or Refinement_ts, convergence) for an operation-based CRDT by
// exploring random executions of its operational semantics.
func CheckOpBased(d crdt.Descriptor, opts Options) Report {
	opts.fill()
	if d.OpType == nil {
		return Report{CRDT: d.Name, Obligations: []Obligation{{
			Name:       "setup",
			Violations: []string{"descriptor is not operation-based"},
		}}}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	commutativity := newObligation("Commutativity")
	refinementEff := newObligation(refinementName(d) + " (effectors)")
	refinementGen := newObligation(refinementName(d) + " (generators)")
	convergence := newObligation("Convergence")

	for trial := 0; trial < opts.Trials; trial++ {
		sys := d.NewOpSystem(runtime.Config{Replicas: opts.Replicas, RecordEvents: true})
		for i := 0; i < opts.Ops; i++ {
			if _, err := d.RandomOp(rng, sys, opts.Elems); err != nil {
				// Workload generators respect preconditions; an error here is
				// a genuine defect worth reporting.
				refinementGen.check(false, "workload operation failed: %v", err)
				continue
			}
			for rng.Intn(3) == 0 && sys.DeliverRandom(rng) {
			}
		}
		if err := sys.DeliverAll(); err != nil {
			convergence.check(false, "delivery failed: %v", err)
			continue
		}
		convergence.check(sys.Converged(), "replicas diverged after full delivery")

		events := sys.Events()
		hist := sys.History()
		checkOpCommutativity(d, sys, hist, events, commutativity)
		checkOpRefinement(d, events, refinementEff, refinementGen)
	}

	return Report{CRDT: d.Name, Obligations: []Obligation{
		commutativity.build(),
		refinementEff.build(),
		refinementGen.build(),
		convergence.build(),
	}}
}

func refinementName(d crdt.Descriptor) string {
	if d.Lin == crdt.TimestampOrder {
		return "Refinement_ts"
	}
	return "Refinement"
}

// checkOpCommutativity replays the execution's events and, at every point
// where two concurrent effectors are simultaneously deliverable at a replica,
// checks that applying them in either order yields the same state.
func checkOpCommutativity(d crdt.Descriptor, sys *runtime.System, hist *core.History, events []runtime.Event, ob *obligationBuilder) {
	// Identify the non-query labels and their visibility predecessors.
	type opInfo struct {
		label *core.Label
		eff   runtime.Effector
		preds []uint64
	}
	var ops []opInfo
	for _, l := range hist.Labels() {
		if l.IsQuery() {
			continue
		}
		var preds []uint64
		for _, p := range hist.VisibleTo(l) {
			if !p.IsQuery() {
				preds = append(preds, p.ID)
			}
		}
		ops = append(ops, opInfo{label: l, eff: sys.EffectorOf(l.ID), preds: preds})
	}
	// Replay per-replica seen sets along the event log.
	seen := map[clock.ReplicaID]map[uint64]bool{}
	stateAt := map[clock.ReplicaID]runtime.State{}
	for _, r := range sys.Replicas() {
		seen[r] = map[uint64]bool{}
		stateAt[r] = d.OpType.Init()
	}
	checkPoint := func(replica clock.ReplicaID) {
		st := stateAt[replica]
		sn := seen[replica]
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := ops[i], ops[j]
				if !hist.Concurrent(a.label.ID, b.label.ID) {
					continue
				}
				if sn[a.label.ID] || sn[b.label.ID] {
					continue
				}
				if !allSeen(sn, a.preds) || !allSeen(sn, b.preds) {
					continue
				}
				ab := b.eff.Apply(a.eff.Apply(st))
				ba := a.eff.Apply(b.eff.Apply(st))
				ob.check(ab.EqualState(ba),
					"effectors of %v and %v do not commute on state %s: %s vs %s",
					a.label, b.label, st, ab, ba)
			}
		}
	}
	for _, r := range sys.Replicas() {
		checkPoint(r)
	}
	for _, ev := range events {
		if ev.Label != nil {
			seen[ev.Replica][ev.Label.ID] = true
		}
		stateAt[ev.Replica] = ev.Post
		checkPoint(ev.Replica)
	}
}

func allSeen(seen map[uint64]bool, ids []uint64) bool {
	for _, id := range ids {
		if !seen[id] {
			return false
		}
	}
	return true
}

// checkOpRefinement checks that every effector application and every query
// generator recorded in the event log is simulated by the corresponding
// specification operation through the refinement mapping.
func checkOpRefinement(d crdt.Descriptor, events []runtime.Event, effOb, genOb *obligationBuilder) {
	for _, ev := range events {
		if ev.Label == nil {
			continue
		}
		l := ev.Label
		qry, upd, err := rewriteParts(d, l)
		if err != nil {
			genOb.check(false, "rewriting %v failed: %v", l, err)
			continue
		}
		switch {
		case l.IsQuery():
			if ev.Kind != runtime.EventGenerator {
				continue
			}
			genOb.check(simulatedQuery(d, ev.Pre, qry),
				"query %v is not simulated by %s on abstract state %s",
				l, d.Spec.Name(), d.Abs(ev.Pre))
		default:
			// Generator events of query-updates also discharge the
			// "simulating generators" obligation for their query part.
			if ev.Kind == runtime.EventGenerator && l.IsQueryUpdate() && qry != nil {
				genOb.check(simulatedQuery(d, ev.Pre, qry),
					"query part of %v is not simulated by %s on abstract state %s",
					l, d.Spec.Name(), d.Abs(ev.Pre))
			}
			// Effector simulation; for timestamp-order objects only when the
			// operation's timestamp is not dominated by the state.
			if d.Lin == crdt.TimestampOrder && dominated(d, ev.Pre, l) {
				continue
			}
			effOb.check(simulatedUpdate(d, ev.Pre, ev.Post, upd),
				"effector of %v is not simulated by %s: abs(pre)=%s abs(post)=%s",
				l, d.Spec.Name(), d.Abs(ev.Pre), d.Abs(ev.Post))
		}
	}
}

// rewriteParts returns the query and update parts of γ(ℓ) (either may be nil).
func rewriteParts(d crdt.Descriptor, l *core.Label) (qry, upd *core.Label, err error) {
	rw := d.Rewriting
	if rw == nil {
		rw = core.IdentityRewriting{}
	}
	imgs, err := rw.Rewrite(l)
	if err != nil {
		return nil, nil, err
	}
	switch len(imgs) {
	case 1:
		if imgs[0].IsQuery() {
			return imgs[0], nil, nil
		}
		return nil, imgs[0], nil
	case 2:
		return imgs[0], imgs[1], nil
	default:
		return nil, nil, fmt.Errorf("image of %v has %d labels", l, len(imgs))
	}
}

// simulatedQuery reports whether the query label is admitted by the
// specification in the abstract image of the state and leaves it unchanged.
func simulatedQuery(d crdt.Descriptor, pre runtime.State, qry *core.Label) bool {
	if qry == nil {
		return true
	}
	absPre := d.Abs(pre)
	for _, next := range d.Spec.Step(absPre, qry) {
		if next.EqualAbs(absPre) {
			return true
		}
	}
	return false
}

// simulatedUpdate reports whether applying the update label in the abstract
// image of the pre-state can reach the abstract image of the post-state.
func simulatedUpdate(d crdt.Descriptor, pre, post runtime.State, upd *core.Label) bool {
	if upd == nil {
		return true
	}
	absPost := d.Abs(post)
	for _, next := range d.Spec.Step(d.Abs(pre), upd) {
		if next.EqualAbs(absPost) {
			return true
		}
	}
	return false
}

// dominated reports whether the state stores a timestamp larger than the
// label's (the side condition of Refinement_ts).
func dominated(d crdt.Descriptor, st runtime.State, l *core.Label) bool {
	if d.StateTimestamps == nil || l.TS.IsBottom() {
		return false
	}
	for _, ts := range d.StateTimestamps(st) {
		if l.TS.Less(ts) {
			return true
		}
	}
	return false
}
