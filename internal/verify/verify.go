// Package verify checks the proof obligations of the paper's RA-linearizability
// methodology directly on the executable CRDT implementations. It replaces the
// Boogie mechanisation of Section 6: instead of discharging the obligations
// deductively, it checks them on exhaustively explored small executions and on
// randomized reachable states.
//
// For operation-based CRDTs (Section 4) it checks:
//
//   - Commutativity: effectors of concurrent operations commute on every
//     reachable state at which both could be delivered next;
//   - Refinement / Refinement_ts: every effector application and every query
//     generator is simulated by the corresponding specification operation
//     through the refinement mapping abs;
//   - Convergence: replicas that have applied the same operations hold equal
//     states.
//
// For state-based CRDTs (Appendix D) it checks the properties Prop1..Prop6
// appropriate to the CRDT's local-effector class (uniquely-identified,
// cumulative or idempotent), the consistency of the argument order with
// visibility, and the refinement obligations expressed with local effectors.
package verify

import (
	"fmt"
	"strings"
)

// Options configures a verification run.
type Options struct {
	// Seed seeds the workload generator.
	Seed int64
	// Trials is the number of random executions explored.
	Trials int
	// Ops is the number of operations per execution.
	Ops int
	// Replicas is the number of replicas per execution.
	Replicas int
	// Elems is the element alphabet handed to workload generators.
	Elems []string
	// MaxStates caps the number of reachable states sampled for the
	// state-pair obligations (Prop2/Prop3 and friends).
	MaxStates int
}

// DefaultOptions returns a configuration that keeps every check under a
// fraction of a second per CRDT while still exploring thousands of states.
func DefaultOptions() Options {
	return Options{
		Seed:      1,
		Trials:    20,
		Ops:       10,
		Replicas:  3,
		Elems:     []string{"a", "b", "c"},
		MaxStates: 40,
	}
}

func (o *Options) fill() {
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.Ops <= 0 {
		o.Ops = 10
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if len(o.Elems) == 0 {
		o.Elems = []string{"a", "b", "c"}
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 40
	}
}

// Obligation is the outcome of checking one proof obligation.
type Obligation struct {
	// Name identifies the obligation (for example "Commutativity").
	Name string
	// Checked counts the instances examined.
	Checked int
	// Violations lists descriptions of failed instances (empty when the
	// obligation holds on everything examined).
	Violations []string
}

// OK reports whether no violation was found.
func (o Obligation) OK() bool { return len(o.Violations) == 0 }

// String renders the obligation outcome on one line.
func (o Obligation) String() string {
	status := "ok"
	if !o.OK() {
		status = fmt.Sprintf("FAILED (%d violations, e.g. %s)", len(o.Violations), o.Violations[0])
	}
	return fmt.Sprintf("%-28s %6d checked  %s", o.Name, o.Checked, status)
}

// Report is the outcome of verifying one CRDT.
type Report struct {
	// CRDT is the data type name.
	CRDT string
	// Obligations are the individual obligation outcomes.
	Obligations []Obligation
}

// OK reports whether every obligation holds.
func (r Report) OK() bool {
	for _, o := range r.Obligations {
		if !o.OK() {
			return false
		}
	}
	return true
}

// Find returns the obligation with the given name.
func (r Report) Find(name string) (Obligation, bool) {
	for _, o := range r.Obligations {
		if o.Name == name {
			return o, true
		}
	}
	return Obligation{}, false
}

// String renders the report, one obligation per line.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.CRDT)
	for _, o := range r.Obligations {
		fmt.Fprintf(&b, "  %s\n", o)
	}
	return b.String()
}

// obligationBuilder accumulates check counts and violations.
type obligationBuilder struct {
	name       string
	checked    int
	violations []string
}

func newObligation(name string) *obligationBuilder { return &obligationBuilder{name: name} }

func (b *obligationBuilder) check(ok bool, format string, args ...any) {
	b.checked++
	if !ok && len(b.violations) < 10 {
		b.violations = append(b.violations, fmt.Sprintf(format, args...))
	} else if !ok {
		// Keep counting silently beyond the first few examples.
		b.violations = append(b.violations, "…")
		b.violations = b.violations[:11]
	}
}

func (b *obligationBuilder) build() Obligation {
	return Obligation{Name: b.name, Checked: b.checked, Violations: b.violations}
}
