package verify

import (
	"math/rand"

	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/runtime"
)

// CheckStateBased checks the Appendix D proof obligations for a state-based
// CRDT by exploring random executions (with message duplication and
// reordering) of its semantics. The exact property set depends on the CRDT's
// local-effector class:
//
//   - uniquely-identified (D.3): Prop1 (concurrent local effectors commute),
//     Prop2, Prop3 under the P1 freshness predicate, Prop4, Prop5, plus the
//     consistency of the argument order with visibility;
//   - cumulative (D.4): Prop'1 (all local effectors commute), Prop'2 under P2,
//     Prop'3 unconditionally, Prop4, Prop5;
//   - idempotent (D.5): the cumulative properties plus Prop6 (idempotence).
//
// In every class it also checks the refinement obligations (effector and
// generator simulation through abs) and convergence.
func CheckStateBased(d crdt.Descriptor, opts Options) Report {
	opts.fill()
	if d.SBType == nil || d.SB == nil {
		return Report{CRDT: d.Name, Obligations: []Obligation{{
			Name:       "setup",
			Violations: []string{"descriptor is not state-based or lacks Appendix D artefacts"},
		}}}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sb := d.SB

	prop1 := newObligation("Prop1 (local effectors commute)")
	prop2 := newObligation("Prop2 (merge vs fresh effector)")
	prop3 := newObligation("Prop3 (merge of equal effectors)")
	prop4 := newObligation("Prop4 (merge lattice laws)")
	prop5 := newObligation("Prop5 (local effector = local step)")
	prop6 := newObligation("Prop6 (idempotent effectors)")
	argOrder := newObligation("Argument order vs visibility")
	refinementEff := newObligation("Refinement (effectors)")
	refinementGen := newObligation("Refinement (generators)")
	convergence := newObligation("Convergence")

	for trial := 0; trial < opts.Trials; trial++ {
		sys := d.NewSBSystem(runtime.Config{Replicas: opts.Replicas, RecordEvents: true})
		for i := 0; i < opts.Ops; i++ {
			if _, err := d.RandomOp(rng, sys, opts.Elems); err != nil {
				refinementGen.check(false, "workload operation failed: %v", err)
				continue
			}
			for rng.Intn(3) == 0 && sys.ExchangeRandom(rng) {
				break
			}
		}
		if err := sys.DeliverAll(); err != nil {
			convergence.check(false, "delivery failed: %v", err)
			continue
		}
		convergence.check(sys.Converged(), "replicas diverged after full state exchange")

		events := sys.Events()
		hist := sys.History()
		states := sampleStates(d, events, opts.MaxStates, rng)
		updates := updateLabels(hist)

		checkSBProp1(d, hist, states, updates, prop1)
		checkSBProp23(d, states, updates, rng, prop2, prop3)
		checkSBProp4(d, states, rng, prop4)
		checkSBProp5(d, events, prop5)
		if sb.EffClass == crdt.Idempotent {
			checkSBProp6(d, states, updates, prop6)
		}
		if sb.EffClass == crdt.UniquelyIdentified {
			checkSBArgOrder(d, hist, updates, argOrder)
		}
		checkSBRefinement(d, events, states, updates, refinementEff, refinementGen)
	}

	obligations := []Obligation{
		prop1.build(), prop2.build(), prop3.build(), prop4.build(), prop5.build(),
	}
	if sb.EffClass == crdt.Idempotent {
		obligations = append(obligations, prop6.build())
	}
	if sb.EffClass == crdt.UniquelyIdentified {
		obligations = append(obligations, argOrder.build())
	}
	obligations = append(obligations, refinementEff.build(), refinementGen.build(), convergence.build())
	return Report{CRDT: d.Name, Obligations: obligations}
}

// sampleStates collects reachable replica states from the event log (pre,
// post and incoming message states), capped at max.
func sampleStates(d crdt.Descriptor, events []runtime.Event, max int, rng *rand.Rand) []runtime.State {
	states := []runtime.State{d.SBType.Init()}
	for _, ev := range events {
		states = append(states, ev.Pre, ev.Post)
		if ev.Incoming != nil {
			states = append(states, ev.Incoming)
		}
	}
	if len(states) <= max {
		return states
	}
	rng.Shuffle(len(states), func(i, j int) { states[i], states[j] = states[j], states[i] })
	return states[:max]
}

// updateLabels returns the non-query labels of the history.
func updateLabels(hist *core.History) []*core.Label {
	var out []*core.Label
	for _, l := range hist.Labels() {
		if !l.IsQuery() {
			out = append(out, l)
		}
	}
	return out
}

// checkSBProp1 checks commutativity of local effectors: for the
// uniquely-identified class only concurrent pairs are required to commute; for
// the other classes every pair must.
func checkSBProp1(d crdt.Descriptor, hist *core.History, states []runtime.State, updates []*core.Label, ob *obligationBuilder) {
	sb := d.SB
	for i := 0; i < len(updates); i++ {
		for j := i + 1; j < len(updates); j++ {
			a, b := updates[i], updates[j]
			if sb.EffClass == crdt.UniquelyIdentified && !hist.Concurrent(a.ID, b.ID) {
				continue
			}
			for _, st := range states {
				ab := sb.LocalApply(sb.LocalApply(st, a), b)
				ba := sb.LocalApply(sb.LocalApply(st, b), a)
				ob.check(ab.EqualState(ba),
					"local effectors of %v and %v do not commute on %s", a, b, st)
			}
		}
	}
}

// checkSBProp23 checks the two merge-versus-effector laws on sampled state
// pairs.
func checkSBProp23(d crdt.Descriptor, states []runtime.State, updates []*core.Label, rng *rand.Rand, prop2, prop3 *obligationBuilder) {
	sb := d.SB
	if len(states) == 0 || len(updates) == 0 {
		return
	}
	pairs := len(states)
	for k := 0; k < pairs; k++ {
		s1 := states[rng.Intn(len(states))]
		s2 := states[rng.Intn(len(states))]
		l := updates[rng.Intn(len(updates))]
		// Prop2: merging a state with a state extended by a fresh effector is
		// the same as extending the merge.
		if sb.Fresh(s1, l) && sb.Fresh(s2, l) {
			left := d.SBType.Merge(s1, sb.LocalApply(s2, l))
			right := sb.LocalApply(d.SBType.Merge(s1, s2), l)
			prop2.check(left.EqualState(right),
				"Prop2 fails for %v on states %s and %s", l, s1, s2)
		}
		// Prop3: merging two states extended by the same effector is the same
		// as extending the merge. For the uniquely-identified class this is
		// required under the freshness predicate only.
		if sb.EffClass != crdt.UniquelyIdentified || (sb.Fresh(s1, l) && sb.Fresh(s2, l)) {
			left := d.SBType.Merge(sb.LocalApply(s1, l), sb.LocalApply(s2, l))
			right := sb.LocalApply(d.SBType.Merge(s1, s2), l)
			prop3.check(left.EqualState(right),
				"Prop3 fails for %v on states %s and %s", l, s1, s2)
		}
	}
}

// checkSBProp4 checks the lattice laws of merge: commutativity, idempotence
// and neutrality of the initial state with itself.
func checkSBProp4(d crdt.Descriptor, states []runtime.State, rng *rand.Rand, ob *obligationBuilder) {
	init := d.SBType.Init()
	ob.check(d.SBType.Merge(init, init).EqualState(init), "merge(σ0, σ0) ≠ σ0")
	for k := 0; k < len(states); k++ {
		s1 := states[rng.Intn(len(states))]
		s2 := states[rng.Intn(len(states))]
		ob.check(d.SBType.Merge(s1, s2).EqualState(d.SBType.Merge(s2, s1)),
			"merge not commutative on %s and %s", s1, s2)
		ob.check(d.SBType.Merge(s1, s1).EqualState(s1),
			"merge not idempotent on %s", s1)
		// Merge is an upper bound in the compare order.
		m := d.SBType.Merge(s1, s2)
		ob.check(d.SBType.Leq(s1, m) && d.SBType.Leq(s2, m),
			"merge of %s and %s is not an upper bound", s1, s2)
	}
}

// checkSBProp5 checks that executing an operation at its origin replica has
// the same effect as its local effector.
func checkSBProp5(d crdt.Descriptor, events []runtime.Event, ob *obligationBuilder) {
	for _, ev := range events {
		if ev.Kind != runtime.EventGenerator || ev.Label == nil || ev.Label.IsQuery() {
			continue
		}
		got := d.SB.LocalApply(ev.Pre, ev.Label)
		ob.check(got.EqualState(ev.Post),
			"local effector of %v disagrees with the implementation: %s vs %s",
			ev.Label, got, ev.Post)
	}
}

// checkSBProp6 checks idempotence of local effectors (idempotent class only).
func checkSBProp6(d crdt.Descriptor, states []runtime.State, updates []*core.Label, ob *obligationBuilder) {
	sb := d.SB
	for _, l := range updates {
		for _, st := range states {
			once := sb.LocalApply(st, l)
			twice := sb.LocalApply(once, l)
			ob.check(twice.EqualState(once), "local effector of %v is not idempotent on %s", l, st)
		}
	}
}

// checkSBArgOrder checks, for the uniquely-identified class, that distinct
// operations carry distinct local-effector arguments and that the order on
// arguments is consistent with visibility (Lemma E.1).
func checkSBArgOrder(d crdt.Descriptor, hist *core.History, updates []*core.Label, ob *obligationBuilder) {
	sb := d.SB
	for i := 0; i < len(updates); i++ {
		for j := 0; j < len(updates); j++ {
			if i == j {
				continue
			}
			a, b := updates[i], updates[j]
			if i < j {
				ob.check(!sb.ArgEqual(a, b),
					"distinct operations %v and %v carry equal arguments", a, b)
			}
			if hist.Vis(a.ID, b.ID) {
				ob.check(sb.ArgLess(a, b),
					"visibility %v -> %v not reflected in the argument order", a, b)
			}
		}
	}
}

// checkSBRefinement checks the refinement obligations: generator events are
// simulated through abs, and fresh local effectors are simulated by the
// rewritten specification operation on sampled reachable states.
func checkSBRefinement(d crdt.Descriptor, events []runtime.Event, states []runtime.State, updates []*core.Label, effOb, genOb *obligationBuilder) {
	for _, ev := range events {
		if ev.Kind != runtime.EventGenerator || ev.Label == nil {
			continue
		}
		l := ev.Label
		qry, upd, err := rewriteParts(d, l)
		if err != nil {
			genOb.check(false, "rewriting %v failed: %v", l, err)
			continue
		}
		if l.IsQuery() {
			genOb.check(simulatedQuery(d, ev.Pre, qry),
				"query %v is not simulated by %s on abstract state %s", l, d.Spec.Name(), d.Abs(ev.Pre))
			continue
		}
		effOb.check(simulatedUpdate(d, ev.Pre, ev.Post, upd),
			"origin step of %v is not simulated by %s: abs(pre)=%s abs(post)=%s",
			l, d.Spec.Name(), d.Abs(ev.Pre), d.Abs(ev.Post))
	}
	// Local effectors applied to arbitrary fresh states are simulated too
	// (the Refinement_v obligation of Appendix D.3). States that already
	// incorporate the operation's effect are skipped: re-applying an effector
	// is outside the obligation (each effector contributes once per state in
	// Lemma D.1's decomposition).
	for _, l := range updates {
		_, upd, err := rewriteParts(d, l)
		if err != nil || upd == nil {
			continue
		}
		for _, st := range states {
			if !d.SB.Fresh(st, l) {
				continue
			}
			post := d.SB.LocalApply(st, l)
			if post.EqualState(st) {
				continue
			}
			effOb.check(simulatedUpdate(d, st, post, upd),
				"fresh local effector of %v is not simulated by %s on %s", l, d.Spec.Name(), st)
		}
	}
}
