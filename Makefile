GO ?= go

.PHONY: build test bench lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark, asserting the figure reproductions still
# match the paper (the CI smoke run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
