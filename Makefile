GO ?= go

# Benchmarks RUN by `make bench-gate`: the refutation and batch-checking hot
# paths this repository optimizes. ralin-benchdiff's default -match then
# gates only their scheduling-independent variants (sequential searches,
# single-worker batches) — the GOMAXPROCS-dependent variants are measured
# and reported but would gate on the host's core count, not the code. The
# gate fails on a >1% allocs/op increase and (same-CPU runs, NS_THRESHOLD>0)
# on a >$(NS_THRESHOLD)% ns/op regression vs the committed BENCH_results.json.
# On top of the relative diffs, ZERO_ALLOC_PATTERN is an absolute assertion:
# the warm-session re-check steady state must report exactly 0 allocs/op,
# baseline regardless, so a reintroduced per-check allocation fails the gate
# even if the committed baseline carried it too.
BENCH_GATE_PATTERN = BenchmarkEngineNonLinearizable|BenchmarkBatchCheckRandomHistories|BenchmarkBatchRefutations|BenchmarkSessionRecheck|BenchmarkScenarioCorpus|BenchmarkGuidedVsRankOrder|BenchmarkIncrementalExtend
NS_THRESHOLD ?= 25
ZERO_ALLOC_PATTERN = ^BenchmarkSessionRecheck/session\b
# NS_BASELINE optionally names a second, same-runner baseline JSON (the CI
# cache regenerated on every merge to main): when set, bench-gate runs an
# additional ns/op-only diff against it with NS_BASELINE_THRESHOLD, so
# wall-clock regressions gate in CI even though the committed baseline's CPU
# string cannot be trusted across runner hardware.
NS_BASELINE ?=
NS_BASELINE_THRESHOLD ?= 25

.PHONY: build test bench bench-json bench-gate bench-ns-baseline scenarios lint lint-docs fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark, asserting the figure reproductions still
# match the paper (the CI smoke run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The same pass with -benchmem, converted to machine-readable JSON. CI runs
# this and uploads BENCH_results.json as an artifact on every build, so the
# benchmark trajectory (ns/op, allocs/op, checks/refute, ...) accumulates
# over time. BENCH_results.json is also committed as the current baseline
# snapshot: running this target overwrites it on purpose — refresh it (and
# the BENCHMARKS.md tables) deliberately when an engine change moves the
# numbers, otherwise discard the local diff. The gated benchmarks are
# re-measured at 50 iterations and appended — ralin-benchdiff keeps the last
# occurrence per name, so the baseline the gate diffs against is a
# multi-iteration reading (a 1x ns/op sample is noisy enough to trip the
# same-machine 25% gate on its own; it also records session benchmarks
# cold). The intermediate text output is kept out of the tree.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench-raw.txt
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchmem -benchtime 50x -count 1 . >> bench-raw.txt
	$(GO) run ./cmd/ralin-bench2json < bench-raw.txt > BENCH_results.json
	@rm -f bench-raw.txt
	@echo "wrote BENCH_results.json"

# The benchmark regression gate: re-run the gated benchmarks (several
# iterations so ns/op is not a single-sample reading) and diff them against
# the committed baseline. Run it BEFORE bench-json in any pipeline — the
# bench-json target overwrites BENCH_results.json, which is the baseline this
# gate compares against. The temporary files are left behind on failure for
# inspection.
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchmem -benchtime 50x -count 1 . > bench-gate-raw.txt
	$(GO) run ./cmd/ralin-bench2json < bench-gate-raw.txt > bench-gate.json
	$(GO) run ./cmd/ralin-benchdiff -baseline BENCH_results.json -candidate bench-gate.json -max-ns-regression $(NS_THRESHOLD) -max-allocs-regression 1 -assert-zero-allocs '$(ZERO_ALLOC_PATTERN)'
	@if [ -n "$(NS_BASELINE)" ]; then \
		echo "ns/op gate against same-runner baseline $(NS_BASELINE):"; \
		$(GO) run ./cmd/ralin-benchdiff -baseline "$(NS_BASELINE)" -candidate bench-gate.json -max-ns-regression $(NS_BASELINE_THRESHOLD) -max-allocs-regression -1; \
	fi
	@rm -f bench-gate-raw.txt bench-gate.json

# One 50x run of the gated benchmarks converted to JSON, written to
# bench-ns-baseline.json: the same-runner ns/op baseline CI regenerates and
# caches on every merge to main (see .github/workflows/ci.yml), and that PR
# builds gate against via NS_BASELINE.
bench-ns-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchmem -benchtime 50x -count 1 . > bench-ns-raw.txt
	$(GO) run ./cmd/ralin-bench2json < bench-ns-raw.txt > bench-ns-baseline.json
	@rm -f bench-ns-raw.txt
	@echo "wrote bench-ns-baseline.json"

# Re-harvest the committed scenario corpus (testdata/corpus/): run every
# named fault-schedule scenario for 40 trials and keep the 2 most interesting
# histories each (refutations first, then highest node count). The harvest is
# deterministic for a fixed seed, so this only changes the tree when the
# scenario library or the workload generators change — review the diff before
# committing, since corpus_test.go and BenchmarkScenarioCorpus replay these
# files as a regression set.
scenarios:
	$(GO) run ./cmd/ralin-scenario -all -harvest testdata/corpus -trials 40 -keep 2

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs the pinned version)"; \
	fi
	$(MAKE) lint-docs

# The documentation gates (dependency-free, stdlib-only scripts): every
# exported symbol of the engine packages carries a doc comment, and every
# intra-repo markdown link resolves. CI runs both (the docs job runs mdlinks).
lint-docs:
	$(GO) run ./scripts/lintgodoc ./internal/search ./internal/core
	$(GO) run ./scripts/mdlinks .

fmt:
	gofmt -w .
