GO ?= go

# Benchmarks RUN by `make bench-gate`: the refutation and batch-checking hot
# paths this repository optimizes. ralin-benchdiff's default -match then
# gates only their scheduling-independent variants (sequential searches,
# single-worker batches) — the GOMAXPROCS-dependent variants are measured
# and reported but would gate on the host's core count, not the code. The
# gate fails on a >1% allocs/op increase and (same-CPU runs, NS_THRESHOLD>0)
# on a >$(NS_THRESHOLD)% ns/op regression vs the committed BENCH_results.json.
BENCH_GATE_PATTERN = BenchmarkEngineNonLinearizable|BenchmarkBatchCheckRandomHistories|BenchmarkBatchRefutations
NS_THRESHOLD ?= 25

.PHONY: build test bench bench-json bench-gate lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark, asserting the figure reproductions still
# match the paper (the CI smoke run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The same pass with -benchmem, converted to machine-readable JSON. CI runs
# this and uploads BENCH_results.json as an artifact on every build, so the
# benchmark trajectory (ns/op, allocs/op, checks/refute, ...) accumulates
# over time. BENCH_results.json is also committed as the current baseline
# snapshot: running this target overwrites it on purpose — refresh it (and
# the BENCHMARKS.md tables) deliberately when an engine change moves the
# numbers, otherwise discard the local diff. The intermediate text output is
# kept out of the tree.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench-raw.txt
	$(GO) run ./cmd/ralin-bench2json < bench-raw.txt > BENCH_results.json
	@rm -f bench-raw.txt
	@echo "wrote BENCH_results.json"

# The benchmark regression gate: re-run the gated benchmarks (several
# iterations so ns/op is not a single-sample reading) and diff them against
# the committed baseline. Run it BEFORE bench-json in any pipeline — the
# bench-json target overwrites BENCH_results.json, which is the baseline this
# gate compares against. The temporary files are left behind on failure for
# inspection.
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE_PATTERN)' -benchmem -benchtime 10x -count 1 . > bench-gate-raw.txt
	$(GO) run ./cmd/ralin-bench2json < bench-gate-raw.txt > bench-gate.json
	$(GO) run ./cmd/ralin-benchdiff -baseline BENCH_results.json -candidate bench-gate.json -max-ns-regression $(NS_THRESHOLD) -max-allocs-regression 1
	@rm -f bench-gate-raw.txt bench-gate.json

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs the pinned version)"; \
	fi

fmt:
	gofmt -w .
