GO ?= go

.PHONY: build test bench bench-json lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark, asserting the figure reproductions still
# match the paper (the CI smoke run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The same pass with -benchmem, converted to machine-readable JSON. CI runs
# this and uploads BENCH_results.json as an artifact on every build, so the
# benchmark trajectory (ns/op, allocs/op, checks/refute, ...) accumulates
# over time. BENCH_results.json is also committed as the current baseline
# snapshot: running this target overwrites it on purpose — refresh it (and
# the BENCHMARKS.md tables) deliberately when an engine change moves the
# numbers, otherwise discard the local diff. The intermediate text output is
# kept out of the tree.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench-raw.txt
	$(GO) run ./cmd/ralin-bench2json < bench-raw.txt > BENCH_results.json
	@rm -f bench-raw.txt
	@echo "wrote BENCH_results.json"

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
