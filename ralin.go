// Package ralin is the public façade of the Replication-Aware Linearizability
// reproduction (Enea, Mutluergil, Petri, Wang — PLDI 2019). It re-exports the
// most common entry points of the library:
//
//   - Check: decide whether a history of a CRDT object is RA-linearizable
//     with respect to its sequential specification (Definition 3.7), using
//     the object's designated linearization strategy;
//   - Verify: discharge the paper's proof obligations (Commutativity,
//     Refinement / Refinement_ts, and the Appendix D properties for
//     state-based objects) on randomized executions;
//   - Table: regenerate the Figure 12 verification table;
//   - Experiments: regenerate the worked figures (2, 3, 5a/5b, 8, 9, 10, 13,
//     14 and the Section 3.3 client-reasoning exercise).
//
// The building blocks live in the internal packages:
//
//	internal/clock     timestamps, version vectors, identifier sources
//	internal/core      labels, histories, specifications, the checker
//	internal/search    the pruned (incremental, memoizing, parallel) engine
//	internal/runtime   the operation-based and state-based semantics
//	internal/spec      the sequential specifications of every data type
//	internal/crdt/...  the nine CRDTs of Figure 12 plus the RGA addAt variant
//	internal/verify    the executable proof obligations
//	internal/compose   the ⊗ and ⊗ts object compositions
//	internal/harness   workloads, experiments, figure reproductions
package ralin

import (
	"ralin/internal/core"
	"ralin/internal/crdt"
	"ralin/internal/crdt/registry"
	"ralin/internal/harness"
	"ralin/internal/verify"
)

// Descriptor describes one CRDT implementation: its executable type, its
// sequential specification, its query-update rewriting, its refinement
// mapping and its linearization class.
type Descriptor = crdt.Descriptor

// History is a set of operation labels with their visibility relation.
type History = core.History

// Result is the outcome of an RA-linearizability check.
type Result = core.Result

// Verdict is the three-valued outcome of a check: Valid, Invalid, or Unknown
// when a deadline, budget, cancellation or recovered panic truncated it.
type Verdict = core.Verdict

// Incomplete explains an Unknown verdict (reason, detail, panic stack).
type Incomplete = core.Incomplete

// Re-exported verdict constants.
const (
	VerdictUnknown = core.VerdictUnknown
	VerdictValid   = core.VerdictValid
	VerdictInvalid = core.VerdictInvalid
)

// Experiment is the outcome of reproducing one of the paper's figures.
type Experiment = harness.Experiment

// Report is the outcome of checking a CRDT's proof obligations.
type Report = verify.Report

// CRDTs returns the descriptors of every implemented CRDT (the nine rows of
// Figure 12 followed by the RGA addAt variant of Appendix C).
func CRDTs() []Descriptor { return registry.All() }

// Lookup returns the descriptor of the named CRDT (for example "RGA",
// "OR-Set", "PN-Counter").
func Lookup(name string) (Descriptor, error) { return registry.Lookup(name) }

// Check decides whether the history is RA-linearizable with respect to the
// CRDT's sequential specification, trying the type's designated linearization
// strategy first and falling back to a bounded exhaustive search.
func Check(d Descriptor, h *History) Result {
	return core.CheckRA(h, d.Spec, d.CheckOptions())
}

// Verify discharges the paper's proof obligations for the CRDT on randomized
// executions: Commutativity and Refinement(_ts) for operation-based types,
// the Appendix D properties for state-based ones.
func Verify(d Descriptor) Report {
	if d.Class == crdt.StateBased {
		return verify.CheckStateBased(d, verify.DefaultOptions())
	}
	return verify.CheckOpBased(d, verify.DefaultOptions())
}

// Table regenerates the Figure 12 table with default workloads.
func Table() ([]harness.Fig12Row, error) {
	return harness.Fig12Table(harness.DefaultFig12Options())
}

// Experiments regenerates every worked figure of the paper.
func Experiments() []Experiment { return harness.Experiments(harness.Options{}) }
