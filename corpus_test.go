package ralin

// Regression tests over the committed scenario corpus (testdata/corpus/):
// the most interesting histories harvested from the fault-schedule scenario
// library — naive-specification refutations and the highest-node positive
// checks. Every entry is replayed against its recorded verdict, and checked
// under both exhaustive engines, so a checker change that flips a verdict or
// an engine divergence shows up here before it ships.

import (
	"testing"

	"ralin/internal/core"
	"ralin/internal/scenario"
)

const corpusDir = "testdata/corpus"

func loadCorpus(t testing.TB) ([]scenario.Entry, []string) {
	t.Helper()
	entries, paths, err := scenario.LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no corpus entries under %s; regenerate with `make scenarios`", corpusDir)
	}
	return entries, paths
}

// TestScenarioCorpusReplay replays every committed corpus entry and asserts
// the verdict recorded at harvest time.
func TestScenarioCorpusReplay(t *testing.T) {
	entries, paths := loadCorpus(t)
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		res := core.CheckRA(h, plan.Spec, plan.Options)
		if res.OK != e.RALinearizable {
			t.Errorf("%s: replay verdict %v, corpus recorded %v (scenario %s seed %d vs %s)",
				paths[i], res.OK, e.RALinearizable, e.Scenario, e.Seed, e.Spec)
		}
	}
}

// TestScenarioCorpusEnginesAgree checks every corpus entry with the pruned
// and legacy exhaustive engines (constructive strategies disabled, so both
// engines actually search) and asserts they reach the recorded verdict.
func TestScenarioCorpusEnginesAgree(t *testing.T) {
	entries, paths := loadCorpus(t)
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		opts := plan.Options
		opts.Strategies = nil
		opts.Exhaustive = true
		opts.MaxExtensions = 500000
		for _, engine := range []core.Engine{core.EnginePruned, core.EngineLegacy} {
			opts.Engine = engine
			res := core.CheckRA(h, plan.Spec, opts)
			if !res.OK && !res.Complete {
				t.Errorf("%s: engine %v did not decide the entry within budget", paths[i], engine)
				continue
			}
			if res.OK != e.RALinearizable {
				t.Errorf("%s: engine %v verdict %v, corpus recorded %v", paths[i], engine, res.OK, e.RALinearizable)
			}
		}
	}
}
