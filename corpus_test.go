package ralin

// Regression tests over the committed scenario corpus (testdata/corpus/):
// the most interesting histories harvested from the fault-schedule scenario
// library — naive-specification refutations and the highest-node positive
// checks. Every entry is replayed against its recorded verdict, and checked
// under both exhaustive engines, so a checker change that flips a verdict or
// an engine divergence shows up here before it ships.

import (
	"context"
	"testing"
	"time"

	"ralin/internal/core"
	"ralin/internal/scenario"
	"ralin/internal/search"
)

const corpusDir = "testdata/corpus"

func loadCorpus(t testing.TB) ([]scenario.Entry, []string) {
	t.Helper()
	entries, paths, err := scenario.LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no corpus entries under %s; regenerate with `make scenarios`", corpusDir)
	}
	return entries, paths
}

// TestScenarioCorpusReplay replays every committed corpus entry and asserts
// the verdict recorded at harvest time.
func TestScenarioCorpusReplay(t *testing.T) {
	entries, paths := loadCorpus(t)
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		res := core.CheckRA(h, plan.Spec, plan.Options)
		if res.OK != e.RALinearizable {
			t.Errorf("%s: replay verdict %v, corpus recorded %v (scenario %s seed %d vs %s)",
				paths[i], res.OK, e.RALinearizable, e.Scenario, e.Seed, e.Spec)
		}
	}
}

// TestScenarioCorpusFailSafe replays the whole corpus under hostile resource
// limits and asserts the fail-safe contract: no crash, no wrong verdict —
// every entry comes back Unknown with a populated Incomplete reason. The CI
// workflow runs this under the race detector.
func TestScenarioCorpusFailSafe(t *testing.T) {
	entries, paths := loadCorpus(t)

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		<-ctx.Done() // expire first, so every entry deterministically hits it
		for i, e := range entries {
			h, err := e.History()
			if err != nil {
				t.Fatalf("%s: %v", paths[i], err)
			}
			plan, err := e.Plan()
			if err != nil {
				t.Fatalf("%s: %v", paths[i], err)
			}
			opts := plan.Options
			opts.Context = ctx
			res := core.CheckRA(h, plan.Spec, opts)
			if res.Verdict != core.VerdictUnknown {
				t.Errorf("%s: expired deadline must yield Unknown, got %v (%+v)", paths[i], res.Verdict, res.Incomplete)
				continue
			}
			if res.Incomplete == nil || res.Incomplete.Reason != core.ReasonDeadline {
				t.Errorf("%s: want ReasonDeadline, got %+v", paths[i], res.Incomplete)
			}
		}
	})

	t.Run("mem-budget", func(t *testing.T) {
		sess := search.NewSessionWithBudget(search.Budget{MaxInternedStates: 1, MaxMemoBytes: 1})
		for i, e := range entries {
			h, err := e.History()
			if err != nil {
				t.Fatalf("%s: %v", paths[i], err)
			}
			plan, err := e.Plan()
			if err != nil {
				t.Fatalf("%s: %v", paths[i], err)
			}
			opts := plan.Options
			opts.Strategies = nil // force the search; a constructive witness would dodge the budget
			opts.Exhaustive = true
			opts.Engine = core.EnginePruned
			opts.Parallelism = 1
			opts.MaxNodes = 1 // the degraded, memo-less search must then truncate
			opts.Session = sess
			res := core.CheckRA(h, plan.Spec, opts)
			if res.Verdict != core.VerdictUnknown {
				t.Errorf("%s: tripped budget must yield Unknown, got %v (%+v)", paths[i], res.Verdict, res.Incomplete)
				continue
			}
			if res.Incomplete == nil || res.Incomplete.Reason == "" {
				t.Errorf("%s: Unknown verdict must carry a reason: %+v", paths[i], res.Incomplete)
				continue
			}
			if r := res.Incomplete.Reason; r != core.ReasonMemBudget && r != core.ReasonNodeBudget {
				t.Errorf("%s: want mem-budget/node-budget reason, got %q", paths[i], r)
			}
		}
	})
}

// TestScenarioCorpusGuidedDifferential is the corpus-wide differential gate
// on guided branch ordering: every committed entry is checked with rank order
// and with guided ordering (sequential, strategies disabled so the engine
// actually searches), and the verdicts must be byte-identical — only Nodes
// may change. On refutations guided must never explore more nodes than rank
// order: the query-commit reduction only ever shrinks the refutation DAG,
// while pure sibling reordering leaves it untouched. DebugMemo is on for
// every replay, so the run doubles as the corpus-wide soak of the memo
// table's collision check and of the word-folded/legacy key bijection (a
// bitset memo key that split or merged configurations the sorted-ID key
// distinguished would panic here).
func TestScenarioCorpusGuidedDifferential(t *testing.T) {
	entries, paths := loadCorpus(t)
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		opts := plan.Options
		opts.Strategies = nil
		opts.Exhaustive = true
		opts.Engine = core.EnginePruned
		opts.Parallelism = 1
		opts.DebugMemo = true
		opts.Guidance = core.GuidanceRankOrder
		rank := core.CheckRA(h, plan.Spec, opts)
		opts.Guidance = core.GuidanceGuided
		guided := core.CheckRA(h, plan.Spec, opts)
		if rank.OK != guided.OK || rank.Complete != guided.Complete || rank.Verdict != guided.Verdict {
			t.Errorf("%s: guided verdict diverged from rank order: rank OK=%v/%v guided OK=%v/%v",
				paths[i], rank.OK, rank.Verdict, guided.OK, guided.Verdict)
			continue
		}
		if rank.OK != e.RALinearizable {
			t.Errorf("%s: verdict %v does not match corpus record %v", paths[i], rank.OK, e.RALinearizable)
		}
		if !rank.OK && guided.Nodes > rank.Nodes {
			t.Errorf("%s: guided refutation explored more nodes than rank order: %d > %d",
				paths[i], guided.Nodes, rank.Nodes)
		}
	}
}

// TestScenarioCorpusEnginesAgree checks every corpus entry with the pruned
// and legacy exhaustive engines (constructive strategies disabled, so both
// engines actually search) and asserts they reach the recorded verdict.
func TestScenarioCorpusEnginesAgree(t *testing.T) {
	entries, paths := loadCorpus(t)
	for i, e := range entries {
		h, err := e.History()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		plan, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
		opts := plan.Options
		opts.Strategies = nil
		opts.Exhaustive = true
		opts.MaxExtensions = 500000
		for _, engine := range []core.Engine{core.EnginePruned, core.EngineLegacy} {
			opts.Engine = engine
			res := core.CheckRA(h, plan.Spec, opts)
			if !res.OK && !res.Complete {
				t.Errorf("%s: engine %v did not decide the entry within budget", paths[i], engine)
				continue
			}
			if res.OK != e.RALinearizable {
				t.Errorf("%s: engine %v verdict %v, corpus recorded %v", paths[i], engine, res.OK, e.RALinearizable)
			}
		}
	}
}
